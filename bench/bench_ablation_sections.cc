// bench_ablation_sections: the §3.1/§3.2 design ablation. What happens to
// pre-post differencing without -ffunction-sections/-fdata-sections?
//
// Without them, each unit is a single .text whose internal relative jumps
// are resolved at assembly time: one changed function shifts offsets
// through the whole file, so the monolithic sections differ wholesale and
// nothing smaller than the entire unit can be extracted. With them, every
// function is its own section referenced through relocations, and the
// difference collapses to exactly the functions the patch touched.
//
// Measured across all 64 corpus patches: bytes of text that byte-level
// differencing would have to replace, monolithic vs sectioned.

#include <cstdio>

#include "corpus/corpus.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/prepost.h"

namespace {

struct Tally {
  uint64_t text_total = 0;
  uint64_t text_changed = 0;
  int sections_total = 0;
  int sections_changed = 0;
};

// Compares pre/post builds of `unit` in the given mode.
Tally DiffUnit(const kdiff::SourceTree& pre_tree,
               const kdiff::SourceTree& post_tree, const std::string& unit,
               bool function_sections) {
  Tally tally;
  kcc::CompileOptions options = corpus::RunBuildOptions();
  options.function_sections = function_sections;
  options.data_sections = function_sections;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(pre_tree, unit, options);
  ks::Result<kelf::ObjectFile> post =
      kcc::CompileUnit(post_tree, unit, options);
  if (!pre.ok() || !post.ok()) {
    return tally;
  }
  for (const kelf::Section& post_sec : post->sections()) {
    if (post_sec.kind != kelf::SectionKind::kText) {
      continue;
    }
    ++tally.sections_total;
    tally.text_total += post_sec.bytes.size();
    std::optional<int> pre_idx = pre->FindSection(post_sec.name);
    bool changed =
        !pre_idx.has_value() ||
        !ksplice::SectionsEquivalent(
            *pre, pre->sections()[static_cast<size_t>(*pre_idx)], *post,
            post_sec);
    if (changed) {
      ++tally.sections_changed;
      tally.text_changed += post_sec.bytes.size();
    }
  }
  return tally;
}

// Same comparison for howto table sections (.extable.*/.bug_table.*):
// how many tables would byte-level extraction have to replace?
Tally DiffHowtoTables(const kdiff::SourceTree& pre_tree,
                      const kdiff::SourceTree& post_tree,
                      const std::string& unit, bool function_sections) {
  Tally tally;
  kcc::CompileOptions options = corpus::RunBuildOptions();
  options.function_sections = function_sections;
  options.data_sections = function_sections;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(pre_tree, unit, options);
  ks::Result<kelf::ObjectFile> post =
      kcc::CompileUnit(post_tree, unit, options);
  if (!pre.ok() || !post.ok()) {
    return tally;
  }
  for (const kelf::Section& post_sec : post->sections()) {
    if (post_sec.howto != kelf::Howto::kExtable &&
        post_sec.howto != kelf::Howto::kBug) {
      continue;
    }
    ++tally.sections_total;
    tally.text_total += post_sec.bytes.size();
    std::optional<int> pre_idx = pre->FindSection(post_sec.name);
    bool changed =
        !pre_idx.has_value() ||
        !ksplice::SectionsEquivalent(
            *pre, pre->sections()[static_cast<size_t>(*pre_idx)], *post,
            post_sec);
    if (changed) {
      ++tally.sections_changed;
      tally.text_changed += post_sec.bytes.size();
    }
  }
  return tally;
}

}  // namespace

int main() {
  std::printf("=== Ablation: pre-post differencing with and without "
              "-ffunction-sections ===\n\n");

  Tally mono_sum;
  Tally split_sum;
  int mono_total_units = 0;
  int mono_changed_units = 0;

  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    ks::Result<std::string> patch = corpus::PatchFor(vuln);
    if (!patch.ok()) {
      return 1;
    }
    ks::Result<kdiff::Patch> parsed = kdiff::ParseUnifiedDiff(*patch);
    ks::Result<kdiff::SourceTree> post =
        kdiff::ApplyPatch(corpus::KernelSource(), *parsed);
    if (!post.ok()) {
      return 1;
    }
    for (const std::string& path : parsed->TouchedPaths()) {
      if (!kcc::IsCompilationUnit(path)) {
        continue;
      }
      Tally mono = DiffUnit(corpus::KernelSource(), *post, path, false);
      Tally split = DiffUnit(corpus::KernelSource(), *post, path, true);
      mono_sum.text_total += mono.text_total;
      mono_sum.text_changed += mono.text_changed;
      mono_sum.sections_total += mono.sections_total;
      mono_sum.sections_changed += mono.sections_changed;
      split_sum.text_total += split.text_total;
      split_sum.text_changed += split.text_changed;
      split_sum.sections_total += split.sections_total;
      split_sum.sections_changed += split.sections_changed;
      ++mono_total_units;
      if (mono.sections_changed > 0) {
        ++mono_changed_units;
      }
    }
  }

  std::printf("%-36s %14s %14s\n", "", "monolithic", "per-function");
  std::printf("%-36s %14s %14s\n", "granularity of a 'section'",
              "whole unit", "one function");
  std::printf("%-36s %11d/%2d %11d/%d\n", "text sections flagged changed",
              mono_sum.sections_changed, mono_sum.sections_total,
              split_sum.sections_changed, split_sum.sections_total);
  std::printf("%-36s %13.1f%% %13.1f%%\n",
              "fraction of text bytes to replace",
              100.0 * mono_sum.text_changed /
                  static_cast<double>(mono_sum.text_total),
              100.0 * split_sum.text_changed /
                  static_cast<double>(split_sum.text_total));
  std::printf("\n%d of the %d patched units differ wholesale in the "
              "monolithic build — the\npaper's single-.text relative-jump "
              "churn (§3.1); the remainder are the pure\ndata-initializer "
              "patches. Per-function sections cut the replacement surface\n"
              "by %.1fx even on these tiny units.\n",
              mono_changed_units, mono_total_units,
              (100.0 * mono_sum.text_changed /
               static_cast<double>(mono_sum.text_total)) /
                  (100.0 * split_sum.text_changed /
                   static_cast<double>(split_sum.text_total)));

  // ------------------------------------------------------------------
  // Scaling: real kernel units have dozens of functions. Patch exactly
  // one function in a synthetic unit of n and measure the replacement
  // surface both ways: monolithic scales with the unit, sectioned with
  // the patch.
  std::printf("\n--- Scaling with unit size (one function patched) ---\n");
  std::printf("%10s %18s %18s\n", "functions", "monolithic bytes",
              "sectioned bytes");
  for (int n : {4, 16, 64, 128}) {
    kdiff::SourceTree tree;
    std::string src = "int acc = 0;\n";
    for (int i = 0; i < n; ++i) {
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "int fn_%d(int x) {\n"
                    "  int y = x + %d;\n"
                    "  while (y > 7) {\n"
                    "    y = y - 7;\n"
                    "  }\n"
                    "  acc = acc + y;\n"
                    "  return y;\n"
                    "}\n",
                    i, i * 3 + 1);
      src += buf;
    }
    tree.Write("unit.kc", src);
    kdiff::SourceTree post = tree;
    std::string contents = src;
    size_t at = contents.find("int y = x + 1;");  // fn_0's body
    contents.replace(at, std::string("int y = x + 1;").size(),
                     "int y = x + 2;");
    post.Write("unit.kc", contents);

    Tally mono = DiffUnit(tree, post, "unit.kc", false);
    Tally split = DiffUnit(tree, post, "unit.kc", true);
    std::printf("%10d %11llu/%-6llu %11llu/%-6llu\n", n,
                static_cast<unsigned long long>(mono.text_changed),
                static_cast<unsigned long long>(mono.text_total),
                static_cast<unsigned long long>(split.text_changed),
                static_cast<unsigned long long>(split.text_total));
  }
  std::printf("\nMonolithic differencing must replace the entire unit no "
              "matter how small the\npatch; with sections the surface stays "
              "constant at the one patched function.\n");

  // ------------------------------------------------------------------
  // Special sections (§4.3 howtos): exception tables are emitted
  // per-function with function-relative entries, so they diff like
  // sectioned text even in the monolithic build — only the patched
  // function's table moves, and a patch that leaves the faulting load's
  // offsets alone changes no table at all.
  std::printf("\n--- Exception tables under ablation (%d guarded "
              "functions, one patched) ---\n", 8);
  kdiff::SourceTree guarded_tree;
  std::string guarded_src = "int sink = 0;\n";
  for (int i = 0; i < 8; ++i) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "int peek_%d(int p) {\n"
                  "  sink = sink + %d;\n"
                  "  return try_load(p, %d);\n"
                  "}\n",
                  i, i + 1, i * 100);
    guarded_src += buf;
  }
  guarded_tree.Write("unit.kc", guarded_src);

  // Patch A inserts code ahead of peek_0's faulting load: its table entry
  // moves with the code. Patch B only changes the fallback constant after
  // the load: every entry survives byte-identical.
  struct TableCase {
    const char* label;
    const char* from;
    const char* to;
  };
  for (const TableCase& table_case :
       {TableCase{"entry-moving patch (peek_0)", "sink = sink + 1;",
                  "sink = sink + 1 + 1;"},
        TableCase{"entry-preserving patch (peek_0)", "try_load(p, 0)",
                  "try_load(p, 7)"}}) {
    kdiff::SourceTree post_tree = guarded_tree;
    std::string contents = guarded_src;
    size_t at = contents.find(table_case.from);
    if (at == std::string::npos) {
      return 1;
    }
    contents.replace(at, std::string(table_case.from).size(),
                     table_case.to);
    post_tree.Write("unit.kc", contents);
    Tally mono =
        DiffHowtoTables(guarded_tree, post_tree, "unit.kc", false);
    Tally split =
        DiffHowtoTables(guarded_tree, post_tree, "unit.kc", true);
    std::printf("%-36s %11d/%-2d %13d/%d\n", table_case.label,
                mono.sections_changed, mono.sections_total,
                split.sections_changed, split.sections_total);
    if (mono.sections_total == 0 || split.sections_total == 0) {
      std::fprintf(stderr, "FAIL: no howto tables emitted\n");
      return 1;
    }
    if (split.sections_changed > 1 || mono.sections_changed > 1) {
      std::fprintf(stderr,
                   "FAIL: a one-function patch moved more than one "
                   "exception table\n");
      return 1;
    }
  }
  std::printf("\nFunction-relative table entries keep unrelated tables "
              "byte-equivalent under\nmonolithic text churn; only an entry "
              "whose own code moved is replaced.\n");
  return 0;
}
