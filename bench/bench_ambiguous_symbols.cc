// bench_ambiguous_symbols: reproduces the §6.3 symbol-ambiguity census
// and the run-pre resolution demonstration.
//
// Paper: 7.9% of Linux 2.6.27 symbols share their name with another
// symbol; 21.1% of compilation units contain such a symbol; 5 of 64
// patches modify a function containing one; a symbol table alone cannot
// resolve them (the dst.c/dst_ca.c "debug" example, CVE-2005-4639).

#include <cstdio>

#include "corpus/corpus.h"
#include "srcpatch/srcpatch.h"

int main() {
  ks::Result<corpus::SymbolCensus> census = corpus::CensusKernelSymbols();
  if (!census.ok()) {
    std::printf("census failed: %s\n", census.status().ToString().c_str());
    return 1;
  }
  std::printf("=== §6.3 ambiguous-symbol census ===\n\n");
  std::printf("total symbols                  : %d\n",
              census->total_symbols);
  std::printf("symbols sharing a name         : %d (%.1f%%)   (paper: "
              "6164, 7.9%%)\n",
              census->ambiguous_symbols,
              100.0 * census->ambiguous_symbols / census->total_symbols);
  std::printf("compilation units              : %d\n", census->total_units);
  std::printf("units containing such a symbol : %d (%.1f%%)   (paper: "
              "21.1%%)\n\n",
              census->units_with_ambiguous,
              100.0 * census->units_with_ambiguous / census->total_units);

  // Which patches touch a function referencing an ambiguous symbol, and
  // what does the source-level baseline do with them?
  std::printf("%-15s %-10s %-32s\n", "CVE", "ambiguous",
              "source-level baseline outcome");
  int ambiguous_patches = 0;
  int baseline_failures = 0;
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    corpus::EvalOptions options;
    options.run_stress = false;
    ks::Result<corpus::EvalOutcome> outcome =
        corpus::Evaluate(vuln, options);
    if (!outcome.ok() || !outcome->references_ambiguous_symbol) {
      continue;
    }
    ++ambiguous_patches;

    // Run the baseline against a live kernel for the definitive verdict.
    const char* verdict = "n/a";
    ks::Result<std::string> patch = corpus::PatchFor(vuln);
    ks::Result<std::unique_ptr<kvm::Machine>> machine =
        corpus::BootKernel();
    if (patch.ok() && machine.ok()) {
      srcpatch::SourcePatchOptions sp_options;
      sp_options.compile = corpus::RunBuildOptions();
      ks::Result<srcpatch::Report> report = srcpatch::SourceLevelApply(
          **machine, corpus::KernelSource(), *patch, sp_options);
      if (report.ok()) {
        verdict = srcpatch::OutcomeName(report->outcome);
        if (report->outcome != srcpatch::Outcome::kApplied) {
          ++baseline_failures;
        }
      }
    }
    std::printf("%-15s %-10s %-32s\n", vuln.cve.c_str(), "yes", verdict);
  }
  std::printf("\n--- Shape check (measured vs paper) ---\n");
  std::printf("patches touching ambiguous symbols : %d / 64   (paper: 5)\n",
              ambiguous_patches);
  std::printf("of those, baseline failures        : %d (Ksplice resolves "
              "all via run-pre matching)\n",
              baseline_failures);
  return 0;
}
