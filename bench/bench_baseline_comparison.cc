// bench_baseline_comparison: Ksplice vs a source-level hot updater (the
// OPUS-style baseline of §7.1) across all 64 patches.
//
// The paper argues (§3, §4, §6.3) that a source-level system for legacy
// binaries must fail on assembly patches, signature changes, and static
// locals; cannot resolve ambiguous symbols; and silently misses inline
// expansions and header-driven caller changes. This bench measures each
// failure class and contrasts it with Ksplice's outcome on the same patch.

#include <cstdio>
#include <map>

#include "corpus/corpus.h"
#include "srcpatch/srcpatch.h"

int main() {
  std::map<std::string, int> outcomes;
  int unsafe_applied = 0;  // "applied" but missed object-level changes
  int clean_applied = 0;
  int ksplice_ok = 0;

  std::printf("=== Source-level baseline vs Ksplice over 64 patches ===\n\n");
  std::printf("%-15s %-20s %7s %-24s\n", "CVE", "baseline outcome",
              "missed", "ksplice");

  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    ks::Result<std::string> patch = corpus::PatchFor(vuln);
    if (!patch.ok()) {
      return 1;
    }
    srcpatch::SourcePatchOptions sp_options;
    sp_options.compile = corpus::RunBuildOptions();

    ks::Result<std::unique_ptr<kvm::Machine>> machine =
        corpus::BootKernel();
    if (!machine.ok()) {
      return 1;
    }
    ks::Result<srcpatch::Report> report = srcpatch::SourceLevelApply(
        **machine, corpus::KernelSource(), *patch, sp_options);
    const char* baseline = "error";
    size_t missed = 0;
    if (report.ok()) {
      baseline = srcpatch::OutcomeName(report->outcome);
      missed = report->missed.size();
      outcomes[baseline]++;
      if (report->outcome == srcpatch::Outcome::kApplied) {
        if (missed > 0) {
          ++unsafe_applied;
        } else {
          ++clean_applied;
        }
      }
    }

    corpus::EvalOptions options;
    options.run_stress = false;
    ks::Result<corpus::EvalOutcome> outcome =
        corpus::Evaluate(vuln, options);
    bool ks_ok = outcome.ok() && outcome->apply_ok &&
                 (!outcome->exploit_before || !outcome->exploit_after);
    if (ks_ok) {
      ++ksplice_ok;
    }
    std::printf("%-15s %-20s %7zu %-24s\n", vuln.cve.c_str(), baseline,
                missed,
                ks_ok ? (outcome->needed_custom_code ? "ok (custom code)"
                                                     : "ok")
                      : "FAILED");
  }

  std::printf("\n--- Baseline outcome classes ---\n");
  for (const auto& [name, count] : outcomes) {
    std::printf("%-22s : %d\n", name.c_str(), count);
  }
  std::printf("\n--- Summary ---\n");
  std::printf("baseline clean applies            : %2d / 64\n",
              clean_applied);
  std::printf("baseline applied but INCOMPLETE   : %2d / 64 "
              "(missed inline/header copies — unsafe, §4.2)\n",
              unsafe_applied);
  std::printf("baseline hard failures            : %2d / 64\n",
              64 - clean_applied - unsafe_applied);
  std::printf("ksplice end-to-end                : %2d / 64 "
              "(paper: 64/64 counting custom code)\n",
              ksplice_ok);
  return 0;
}
