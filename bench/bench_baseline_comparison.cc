// bench_baseline_comparison: Ksplice vs a source-level hot updater (the
// OPUS-style baseline of §7.1) across all 64 patches.
//
// The paper argues (§3, §4, §6.3) that a source-level system for legacy
// binaries must fail on assembly patches, signature changes, and static
// locals; cannot resolve ambiguous symbols; and silently misses inline
// expansions and header-driven caller changes. This bench measures each
// failure class and contrasts it with Ksplice's outcome on the same patch.
//
// Entries fan out across workers (-j N, default all hardware threads);
// each worker boots its own machines and writes one pre-assigned row, and
// rows print in corpus order, so stdout is byte-identical for every
// worker count. Timing goes to stderr.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "base/threadpool.h"
#include "corpus/corpus.h"
#include "srcpatch/srcpatch.h"

namespace {

struct Row {
  bool error = false;          // patch/boot infrastructure failure
  std::string baseline = "error";
  size_t missed = 0;
  bool counted_outcome = false;
  bool applied_clean = false;
  bool applied_unsafe = false;
  bool ks_ok = false;
  bool ks_custom = false;
};

Row EvaluateOne(const corpus::Vulnerability& vuln) {
  Row row;
  ks::Result<std::string> patch = corpus::PatchFor(vuln);
  if (!patch.ok()) {
    row.error = true;
    return row;
  }
  srcpatch::SourcePatchOptions sp_options;
  sp_options.compile = corpus::RunBuildOptions();
  sp_options.compile.cache = &corpus::SharedObjectCache();

  ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
  if (!machine.ok()) {
    row.error = true;
    return row;
  }
  ks::Result<srcpatch::Report> report = srcpatch::SourceLevelApply(
      **machine, corpus::KernelSource(), *patch, sp_options);
  if (report.ok()) {
    row.baseline = srcpatch::OutcomeName(report->outcome);
    row.missed = report->missed.size();
    row.counted_outcome = true;
    if (report->outcome == srcpatch::Outcome::kApplied) {
      if (row.missed > 0) {
        row.applied_unsafe = true;
      } else {
        row.applied_clean = true;
      }
    }
  }

  corpus::EvalOptions options;
  options.run_stress = false;
  ks::Result<corpus::EvalOutcome> outcome = corpus::Evaluate(vuln, options);
  row.ks_ok = outcome.ok() && outcome->apply_ok &&
              (!outcome->exploit_before || !outcome->exploit_after);
  row.ks_custom = outcome.ok() && outcome->needed_custom_code;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = one worker per hardware thread
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-j" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      jobs = std::atoi(arg.c_str() + 2);
    }
  }

  const std::vector<corpus::Vulnerability>& vulns =
      corpus::Vulnerabilities();

  std::printf("=== Source-level baseline vs Ksplice over 64 patches ===\n\n");
  std::printf("%-15s %-20s %7s %-24s\n", "CVE", "baseline outcome",
              "missed", "ksplice");

  auto t0 = std::chrono::steady_clock::now();
  std::vector<Row> rows(vulns.size());
  ks::ParallelFor(jobs == 0 ? ks::ThreadPool::DefaultWorkers() : jobs,
                  vulns.size(),
                  [&](size_t i) { rows[i] = EvaluateOne(vulns[i]); });
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::map<std::string, int> outcomes;
  int unsafe_applied = 0;  // "applied" but missed object-level changes
  int clean_applied = 0;
  int ksplice_ok = 0;
  for (size_t i = 0; i < vulns.size(); ++i) {
    const Row& row = rows[i];
    if (row.error) {
      return 1;
    }
    if (row.counted_outcome) {
      outcomes[row.baseline]++;
    }
    clean_applied += row.applied_clean ? 1 : 0;
    unsafe_applied += row.applied_unsafe ? 1 : 0;
    ksplice_ok += row.ks_ok ? 1 : 0;
    std::printf("%-15s %-20s %7zu %-24s\n", vulns[i].cve.c_str(),
                row.baseline.c_str(), row.missed,
                row.ks_ok ? (row.ks_custom ? "ok (custom code)" : "ok")
                          : "FAILED");
  }

  std::printf("\n--- Baseline outcome classes ---\n");
  for (const auto& [name, count] : outcomes) {
    std::printf("%-22s : %d\n", name.c_str(), count);
  }
  std::printf("\n--- Summary ---\n");
  std::printf("baseline clean applies            : %2d / 64\n",
              clean_applied);
  std::printf("baseline applied but INCOMPLETE   : %2d / 64 "
              "(missed inline/header copies — unsafe, §4.2)\n",
              unsafe_applied);
  std::printf("baseline hard failures            : %2d / 64\n",
              64 - clean_applied - unsafe_applied);
  std::printf("ksplice end-to-end                : %2d / 64 "
              "(paper: 64/64 counting custom code)\n",
              ksplice_ok);
  std::fprintf(stderr, "[timing] comparison wall-clock %.3f s at -j %d\n",
               seconds, jobs);
  return 0;
}
