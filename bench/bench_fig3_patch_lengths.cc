// bench_fig3_patch_lengths: reproduces Figure 3, "Number of patches by
// patch length" — the histogram of changed source lines across the 64
// security patches, in buckets of five with an overflow bucket.
//
// Paper shape: 35 of 64 patches within 5 lines, 53 within 15 lines, a
// long thin tail beyond.

#include <cstdio>
#include <vector>

#include "corpus/corpus.h"
#include "kdiff/diff.h"

int main() {
  std::vector<int> lengths;
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    ks::Result<std::string> patch = corpus::PatchFor(vuln);
    if (!patch.ok()) {
      std::printf("%s: patch generation failed: %s\n", vuln.cve.c_str(),
                  patch.status().ToString().c_str());
      return 1;
    }
    ks::Result<kdiff::Patch> parsed = kdiff::ParseUnifiedDiff(*patch);
    if (!parsed.ok()) {
      return 1;
    }
    lengths.push_back(parsed->ChangedLines());
  }

  std::printf("=== Figure 3: number of patches by patch length ===\n\n");
  constexpr int kBuckets = 16;  // 5-wide buckets to 80, then infinity
  int histogram[kBuckets + 1] = {0};
  for (int len : lengths) {
    int bucket = (len - 1) / 5;
    if (bucket >= kBuckets) {
      bucket = kBuckets;
    }
    histogram[bucket]++;
  }
  std::printf("%-10s %8s  histogram\n", "lines", "patches");
  for (int b = 0; b <= kBuckets; ++b) {
    if (histogram[b] == 0 && b != kBuckets) {
      continue;
    }
    char label[32];
    if (b == kBuckets) {
      std::snprintf(label, sizeof(label), ">%d", kBuckets * 5);
    } else {
      std::snprintf(label, sizeof(label), "%d-%d", b * 5 + 1, b * 5 + 5);
    }
    std::printf("%-10s %8d  ", label, histogram[b]);
    for (int i = 0; i < histogram[b]; ++i) {
      std::printf("#");
    }
    std::printf("\n");
  }

  int within5 = 0;
  int within15 = 0;
  for (int len : lengths) {
    if (len <= 5) {
      ++within5;
    }
    if (len <= 15) {
      ++within15;
    }
  }
  std::printf("\n--- Shape check (measured vs paper) ---\n");
  std::printf("patches within  5 lines : %2d / 64   (paper: 35)\n", within5);
  std::printf("patches within 15 lines : %2d / 64   (paper: 53)\n", within15);
  return 0;
}
