// bench_fleet_rollout: the deployment story at fleet scale.
//
// The paper hot-patches one machine; a distro pushes the same package to
// thousands. This bench drives the fleet orchestrator (src/fleet) over
// mixed-release fleets of 10, 100 and 1000 machines — releases assigned
// round-robin from the corpus kernel line, so run-pre matching skips the
// stale nodes — and reports rollout throughput (machines/sec) and the
// per-machine stop-window p99 read back from the metrics registry
// (fleet.node_pause_ns, Histogram::ApproxPercentile). The registry is
// reset between sizes so each row is one rollout's distribution.
//
// It then drills the canary-failure path on a 16-node fleet: the canary
// wave applies with an armed fault plan, trips the abort threshold, and
// the orchestrator rolls every patched node back. The bench snapshots
// every machine's kernel image before the doomed rollout and exits
// nonzero unless the rollout aborted AND every node's image is
// byte-identical afterward — zero partially patched machines.
//
// --report-dir=DIR writes per-size rollout reports (RolloutReport::ToJson)
// plus a metrics.json snapshot of the final drill.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "corpus/corpus.h"
#include "fleet/corpus_fleet.h"
#include "fleet/rollout.h"
#include "ksplice/create.h"

namespace {

std::vector<uint8_t> KernelImage(const kvm::Machine& machine) {
  ks::Result<std::vector<uint8_t>> bytes = machine.ReadBytes(
      machine.config().kernel_base,
      machine.kernel_end() - machine.config().kernel_base);
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

ks::Result<ksplice::UpdatePackage> BuildPackage(const char* cve) {
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    if (vuln.cve != cve) {
      continue;
    }
    KS_ASSIGN_OR_RETURN(std::string patch, corpus::PatchFor(vuln));
    ksplice::CreateOptions options;
    options.compile = corpus::RunBuildOptions();
    options.compile.cache = &corpus::SharedObjectCache();
    options.id = vuln.cve;
    KS_ASSIGN_OR_RETURN(
        ksplice::CreateResult created,
        ksplice::CreateUpdate(corpus::KernelSource(), patch, options));
    return std::move(created.package);
  }
  return ks::NotFound(std::string("no corpus entry for ") + cve);
}

void WriteReport(const std::string& dir, const std::string& name,
                 const std::string& json) {
  if (dir.empty()) {
    return;
  }
  std::ofstream out(dir + "/" + name);
  out << json << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--report-dir=", 0) == 0) {
      report_dir = arg.substr(13);
    }
  }

  // CVE-2008-0600 (vmsplice): no corpus release drifted its unit, so the
  // throughput rollouts patch the whole fleet.
  ks::Result<ksplice::UpdatePackage> package = BuildPackage("CVE-2008-0600");
  if (!package.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 package.status().ToString().c_str());
    return 1;
  }
  std::vector<ksplice::UpdatePackage> packages = {*package};

  std::printf("=== Fleet rollout: one package, mixed-release fleets ===\n\n");
  std::printf("%7s %8s %8s %6s %7s %13s %12s %12s\n", "nodes", "patched",
              "stale", "waves", "wall s", "machines/sec", "p99 pause",
              "max pause");

  for (size_t nodes : {size_t{10}, size_t{100}, size_t{1000}}) {
    // Each size is its own distribution in the registry histogram.
    ks::Metrics().ResetAll();

    fleet::CorpusFleetOptions fleet_options;
    fleet_options.nodes = nodes;
    fleet_options.seed = 42;
    ks::Result<fleet::Fleet> fleet = fleet::MakeCorpusFleet(fleet_options);
    if (!fleet.ok()) {
      std::fprintf(stderr, "fleet boot failed: %s\n",
                   fleet.status().ToString().c_str());
      return 1;
    }

    fleet::RolloutPlan plan;
    plan.canary_fraction = 0.05;
    plan.wave_size = 32;
    plan.max_in_flight = 8;
    plan.seed = 42;
    ks::Result<ksplice::RolloutReport> report =
        fleet::RunRollout(*fleet, packages, plan);
    if (!report.ok()) {
      std::fprintf(stderr, "rollout failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (report->aborted || report->failed != 0 ||
        report->patched + report->already_applied + report->skipped_stale !=
            report->fleet_size) {
      std::fprintf(stderr, "unexpected outcome at %zu nodes:\n%s\n", nodes,
                   report->ToJson().c_str());
      return 1;
    }

    // The acceptance numbers come from the registry, not the report: the
    // per-node stop windows land in fleet.node_pause_ns.
    const ks::Histogram& pauses =
        ks::Metrics().GetHistogram("fleet.node_pause_ns");
    // ApproxPercentile reports the containing bucket's upper bound, which
    // can exceed the exact max; clamp for a sane table.
    uint64_t p99_ns =
        std::min(pauses.ApproxPercentile(0.99), pauses.max());
    std::printf("%7zu %8u %8u %6u %7.3f %13.1f %9.3f ms %9.3f ms\n", nodes,
                report->patched, report->skipped_stale, report->waves,
                static_cast<double>(report->wall_ns) / 1e9,
                report->nodes_per_sec,
                static_cast<double>(p99_ns) / 1e6,
                static_cast<double>(pauses.max()) / 1e6);
    WriteReport(report_dir,
                "rollout-" + std::to_string(nodes) + ".json",
                report->ToJson());
  }

  // ---- Canary-failure drill: abort must leave zero partially patched.
  std::printf("\n=== Canary failure drill: 16 nodes, doomed canary ===\n");
  ks::Metrics().ResetAll();
  fleet::CorpusFleetOptions drill_options;
  drill_options.nodes = 16;
  drill_options.doomed = 1;  // the first node in rollout order
  drill_options.seed = 7;
  ks::Result<fleet::Fleet> drill = fleet::MakeCorpusFleet(drill_options);
  if (!drill.ok()) {
    std::fprintf(stderr, "drill fleet boot failed: %s\n",
                 drill.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint8_t>> images;
  for (size_t i = 0; i < drill->size(); ++i) {
    images.push_back(KernelImage(drill->machine(i)));
  }

  fleet::RolloutPlan doomed_plan;
  doomed_plan.canary_fraction = 0.25;  // 4-node canary wave
  doomed_plan.wave_size = 4;
  doomed_plan.max_in_flight = 4;
  doomed_plan.seed = 7;
  doomed_plan.canary_fault_plan = "ksplice.txn.pre_apply=always";
  ks::Result<ksplice::RolloutReport> aborted =
      fleet::RunRollout(*drill, packages, doomed_plan);
  if (!aborted.ok()) {
    std::fprintf(stderr, "drill rollout failed: %s\n",
                 aborted.status().ToString().c_str());
    return 1;
  }
  WriteReport(report_dir, "rollout-drill.json", aborted->ToJson());
  if (!report_dir.empty()) {
    (void)ks::Metrics().WriteJson(report_dir + "/metrics.json");
  }

  int violations = 0;
  if (!aborted->aborted || aborted->tripped_wave != 0) {
    std::fprintf(stderr, "drill did not trip the canary wave\n");
    ++violations;
  }
  if (aborted->patched != 0) {
    std::fprintf(stderr, "%u node(s) left patched after abort\n",
                 aborted->patched);
    ++violations;
  }
  for (size_t i = 0; i < drill->size(); ++i) {
    if (KernelImage(drill->machine(i)) != images[i]) {
      std::fprintf(stderr, "node %s not byte-identical after rollback\n",
                   drill->spec(i).id.c_str());
      ++violations;
    }
    if (!drill->core(i).AppliedIds().empty()) {
      std::fprintf(stderr, "node %s still has applied updates\n",
                   drill->spec(i).id.c_str());
      ++violations;
    }
  }
  std::printf("aborted at wave %d: %u failed, %u rolled back, %u never "
              "attempted; %s\n",
              aborted->tripped_wave, aborted->failed, aborted->rolled_back,
              aborted->not_attempted,
              violations == 0
                  ? "every machine byte-identical to its pre-rollout image"
                  : "RESTORE VIOLATIONS — see stderr");
  return violations == 0 ? 0 : 1;
}
