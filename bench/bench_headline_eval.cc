// bench_headline_eval: the paper's headline result (§6.3).
//
// Runs the full evaluation pipeline over all 64 corpus vulnerabilities:
// boot the kernel, confirm the exploit, ksplice-create from the fix,
// apply, re-run the exploit and the stress workload. Prints one row per
// CVE and the summary the paper reports: how many patches apply with no
// new code, how many need custom code (Table 1), and whether every
// exploit is blocked.
//
// The sweep fans out per entry (-j N, default all hardware threads) over
// a shared content-addressed object cache; rows are printed in corpus
// order, so stdout is byte-identical for every worker count. Wall-clock
// and pipeline statistics (from the metrics registry) go to stderr.
//
// --report-dir=DIR writes one JSON report per corpus entry
// (EvalOutcome::ToJson: the per-phase create/apply/undo reports included)
// plus a metrics.json snapshot of the whole-process registry.
//
// Paper: "56 of the 64 patches can be applied by Ksplice without writing
// any new code. The remaining eight ... require 17 new lines each, on
// average." All 64 ultimately apply; exploits stop working.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "base/metrics.h"
#include "corpus/corpus.h"

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = one worker per hardware thread
  std::string report_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-j" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      jobs = std::atoi(arg.c_str() + 2);
    } else if (arg.rfind("--report-dir=", 0) == 0) {
      report_dir = arg.substr(13);
    }
  }

  const std::vector<corpus::Vulnerability>& vulns =
      corpus::Vulnerabilities();

  std::printf("=== Headline evaluation: all %zu corpus vulnerabilities "
              "(paper §6.2/§6.3) ===\n\n",
              vulns.size());
  std::printf("%-15s %5s %6s %7s %7s %8s %7s %7s\n", "CVE", "lines",
              "funcs", "custom", "applied", "exploit", "blocked", "stress");
  std::printf("%-15s %5s %6s %7s %7s %8s %7s %7s\n", "", "", "", "", "",
              "before", "after", "");

  int success = 0;
  int no_new_code = 0;
  int custom = 0;
  int custom_lines = 0;
  int blocked = 0;
  int exploits_before = 0;

  corpus::SweepOptions sweep;
  sweep.jobs = jobs;
  sweep.eval.stress_rounds = 1;

  auto t0 = std::chrono::steady_clock::now();
  std::vector<ks::Result<corpus::EvalOutcome>> outcomes =
      corpus::EvaluateAll(vulns, sweep);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (size_t i = 0; i < vulns.size(); ++i) {
    const ks::Result<corpus::EvalOutcome>& outcome = outcomes[i];
    if (!outcome.ok()) {
      std::printf("%-15s EVALUATION ERROR: %s\n", vulns[i].cve.c_str(),
                  outcome.status().ToString().c_str());
      continue;
    }
    if (!report_dir.empty()) {
      std::ofstream out(report_dir + "/" + outcome->cve + ".json");
      out << outcome->ToJson() << "\n";
    }
    std::printf("%-15s %5d %6d %7s %7s %8s %7s %7s\n", outcome->cve.c_str(),
                outcome->patch_lines, outcome->targets,
                outcome->needed_custom_code ? "yes" : "-",
                outcome->apply_ok ? "yes" : "NO",
                outcome->exploit_before ? "works" : "-",
                outcome->exploit_before
                    ? (outcome->exploit_after ? "STILL!" : "yes")
                    : "-",
                outcome->stress_ok ? "ok" : "FAIL");
    if (outcome->Success()) {
      ++success;
    }
    if (outcome->apply_ok && !outcome->needed_custom_code) {
      ++no_new_code;
    }
    if (outcome->needed_custom_code) {
      ++custom;
      custom_lines += outcome->custom_code_lines;
    }
    if (outcome->exploit_before) {
      ++exploits_before;
      if (!outcome->exploit_after) {
        ++blocked;
      }
    }
  }

  std::printf("\n--- Summary (measured vs paper) ---\n");
  std::printf("updates applied without new code : %2d / %zu   (paper: 56/64, 88%%)\n",
              no_new_code, vulns.size());
  std::printf("updates needing custom code      : %2d / %zu   (paper:  8/64)\n",
              custom, vulns.size());
  if (custom > 0) {
    std::printf("custom code lines, mean          : %5.1f      (paper: ~17)\n",
                static_cast<double>(custom_lines) / custom);
  }
  std::printf("exploits blocked by hot update   : %2d / %2d   (paper: all tested)\n",
              blocked, exploits_before);
  std::printf("end-to-end successes             : %2d / %zu   (paper: 64/64)\n",
              success, vulns.size());

  // Pipeline statistics from the metrics registry — the same counters the
  // instrumented code publishes, no private tallies.
  std::map<std::string, uint64_t> counters = ks::Metrics().CounterValues();
  auto counter = [&counters](const char* name) -> unsigned long long {
    auto it = counters.find(name);
    return it == counters.end() ? 0ull : it->second;
  };
  std::fprintf(stderr,
               "[timing] sweep wall-clock %.3f s at -j %d; object cache "
               "%llu hits / %llu misses\n",
               seconds, jobs, counter("kcc.objcache.hits"),
               counter("kcc.objcache.misses"));
  std::fprintf(stderr, "[metrics] %-28s %12s\n", "counter", "value");
  for (const char* name :
       {"kcc.units_compiled", "kcc.objcache.hits", "kcc.objcache.misses",
        "prepost.units_rebuilt", "prepost.sections_changed",
        "runpre.units_matched", "runpre.bytes_matched",
        "runpre.reloc_sites_inverted", "ksplice.applies", "ksplice.undos",
        "ksplice.quiescence_retries", "kvm.instructions",
        "kvm.context_switches", "kvm.stop_machine_calls",
        "kvm.extable_fixups", "runpre.howto.extable_sections_matched",
        "runpre.howto.bug_table_sections_matched",
        "runpre.howto.date_time_sections_matched"}) {
    std::fprintf(stderr, "[metrics] %-28s %12llu\n", name, counter(name));
  }

  // Fault-dispatch sanity: the stress workload's wild kcore read (via
  // CVE-2005-4605's try_load path) must have recovered through exception
  // tables during the sweep, and the sweep must have matched extable
  // sections structurally — otherwise the headline numbers silently
  // stopped covering the special-section machinery.
  if (counter("kvm.extable_fixups") == 0) {
    std::fprintf(stderr,
                 "FAIL: no exception-table fixups dispatched during the "
                 "sweep\n");
    return 1;
  }
  if (counter("runpre.howto.extable_sections_matched") == 0) {
    std::fprintf(stderr,
                 "FAIL: no extable sections matched structurally during "
                 "the sweep\n");
    return 1;
  }
  if (!report_dir.empty()) {
    ks::Status written =
        ks::Metrics().WriteJson(report_dir + "/metrics.json");
    if (!written.ok()) {
      std::fprintf(stderr, "[metrics] write failed: %s\n",
                   written.ToString().c_str());
    }
  }
  return success == static_cast<int>(vulns.size()) ? 0 : 1;
}
