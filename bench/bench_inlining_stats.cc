// bench_inlining_stats: reproduces the §6.3 inlining statistics.
//
// Paper: "20 of the 64 patches from the evaluation modify a function that
// has been inlined in the run code, despite the fact that only 4 of the
// 64 patches modify a function that is explicitly declared inline."
// Source-level systems cannot even see this (§4.2); Ksplice replaces the
// inline expansions automatically because the callers' object code
// changed too.

#include <cstdio>

#include "corpus/corpus.h"

int main() {
  int modified_inlined = 0;
  int declared_inline = 0;
  int both = 0;
  std::printf("=== §6.3 inlining statistics over the 64 patches ===\n\n");
  std::printf("%-15s %-18s %-15s\n", "CVE", "inlined-in-run", "says-inline");
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    corpus::EvalOptions options;
    options.run_stress = false;  // characteristics only
    ks::Result<corpus::EvalOutcome> outcome =
        corpus::Evaluate(vuln, options);
    if (!outcome.ok()) {
      std::printf("%-15s error: %s\n", vuln.cve.c_str(),
                  outcome.status().ToString().c_str());
      continue;
    }
    if (outcome->modified_inlined_function || outcome->declared_inline) {
      std::printf("%-15s %-18s %-15s\n", vuln.cve.c_str(),
                  outcome->modified_inlined_function ? "yes" : "-",
                  outcome->declared_inline ? "inline" : "-");
    }
    if (outcome->modified_inlined_function) {
      ++modified_inlined;
    }
    if (outcome->declared_inline) {
      ++declared_inline;
    }
    if (outcome->modified_inlined_function && outcome->declared_inline) {
      ++both;
    }
  }
  std::printf("\n--- Shape check (measured vs paper) ---\n");
  std::printf("patches touching a function inlined in run code : %2d / 64  "
              "(paper: 20)\n",
              modified_inlined);
  std::printf("patches touching a declared-inline function     : %2d / 64  "
              "(paper:  4)\n",
              declared_inline);
  std::printf("inlining without the keyword                    : %2d\n",
              modified_inlined - both);
  return 0;
}
