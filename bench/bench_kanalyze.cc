// bench_kanalyze: corpus-wide static-analysis throughput.
//
// Builds the update package for every corpus vulnerability (the amended,
// hook-carrying patch for Table-1 entries), then sweeps the full kanalyze
// pipeline over all packages in four configurations: -j 1 and -j 8, each
// with the per-function summary cache cold and then warm. Per
// configuration it prints wall-clock, the summary-phase time (the
// kanalyze.summary_ns histogram delta — the part the cache accelerates)
// and the kanalyze.summary.* counter deltas.
//
// Hard checks, enforced with exit 1:
//   - every package is analyzed and gets pre/post summaries
//   - the corpus sweep is clean at error severity (the lint gate in
//     front of fleet rollouts must not refuse a known-good update)
//   - all four configurations produce byte-identical reports
//   - the warm summary phase is at least 2x faster than the cold one

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "corpus/corpus.h"
#include "kanalyze/kanalyze.h"
#include "kcc/objcache.h"
#include "ksplice/create.h"

namespace {

uint64_t SummaryNs() {
  return ks::Metrics().GetHistogram("kanalyze.summary_ns").sum();
}

uint64_t CounterValue(const char* name) {
  return ks::Metrics().GetCounter(name).value();
}

}  // namespace

int main() {
  const std::vector<corpus::Vulnerability>& vulns =
      corpus::Vulnerabilities();

  // Build every package once (shared object cache, lint off — linting is
  // what we are here to measure).
  kcc::ObjectCache build_cache;
  ksplice::CreateOptions create_options;
  create_options.compile = corpus::RunBuildOptions();
  create_options.compile.cache = &build_cache;
  create_options.lint = ksplice::LintMode::kOff;

  std::vector<ksplice::UpdatePackage> packages;
  std::vector<std::string> ids;
  for (const corpus::Vulnerability& vuln : vulns) {
    ks::Result<std::string> patch = vuln.needs_custom_code
                                        ? corpus::AmendedPatchFor(vuln)
                                        : corpus::PatchFor(vuln);
    if (!patch.ok()) {
      std::printf("%s: patch generation failed: %s\n", vuln.cve.c_str(),
                  patch.status().ToString().c_str());
      return 1;
    }
    create_options.id = vuln.cve;
    ks::Result<ksplice::CreateResult> created =
        ksplice::CreateUpdate(corpus::KernelSource(), *patch,
                              create_options);
    if (!created.ok()) {
      std::printf("%s: create failed: %s\n", vuln.cve.c_str(),
                  created.status().ToString().c_str());
      return 1;
    }
    ids.push_back(vuln.cve);
    packages.push_back(std::move(created->package));
  }
  std::printf("=== kanalyze throughput: %zu corpus packages ===\n\n",
              packages.size());

  struct Run {
    const char* label = "";
    int jobs = 1;
    bool warm = false;
    double wall_s = 0;
    uint64_t summary_ns = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t functions = 0;
    uint64_t errors = 0;
    std::string reports;  // concatenated per-package report JSON
  };
  std::vector<Run> runs(4);
  runs[0].label = "-j 1 cold";
  runs[0].jobs = 1;
  runs[1].label = "-j 1 warm";
  runs[1].jobs = 1;
  runs[1].warm = true;
  runs[2].label = "-j 8 cold";
  runs[2].jobs = 8;
  runs[3].label = "-j 8 warm";
  runs[3].jobs = 8;
  runs[3].warm = true;

  kcc::ObjectCache summary_cache_j1;
  kcc::ObjectCache summary_cache_j8;
  for (Run& run : runs) {
    kanalyze::AnalyzeOptions options;
    options.jobs = run.jobs;
    options.cache = run.jobs == 1 ? &summary_cache_j1 : &summary_cache_j8;

    uint64_t ns0 = SummaryNs();
    uint64_t hits0 = CounterValue("kanalyze.summary.cache_hits");
    uint64_t misses0 = CounterValue("kanalyze.summary.cache_misses");
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < packages.size(); ++i) {
      ks::Result<ksplice::LintReport> report =
          kanalyze::AnalyzePackage(packages[i], options);
      if (!report.ok()) {
        std::printf("%s: analysis failed (%s): %s\n", ids[i].c_str(),
                    run.label, report.status().ToString().c_str());
        return 1;
      }
      if (report->functions_summarized == 0) {
        std::printf("%s: no functions summarized (%s)\n", ids[i].c_str(),
                    run.label);
        return 1;
      }
      run.functions += report->functions_summarized;
      run.errors += report->errors();
      run.reports += report->ToJson();
      run.reports += "\n";
    }
    run.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    run.summary_ns = SummaryNs() - ns0;
    run.hits = CounterValue("kanalyze.summary.cache_hits") - hits0;
    run.misses = CounterValue("kanalyze.summary.cache_misses") - misses0;
  }

  std::printf("%-10s %9s %12s %9s %9s %10s\n", "config", "wall ms",
              "summary ms", "hits", "misses", "functions");
  for (const Run& run : runs) {
    std::printf("%-10s %9.2f %12.3f %9llu %9llu %10llu\n", run.label,
                run.wall_s * 1e3, run.summary_ns / 1e6,
                static_cast<unsigned long long>(run.hits),
                static_cast<unsigned long long>(run.misses),
                static_cast<unsigned long long>(run.functions));
  }

  int failures = 0;
  bool identical = true;
  for (const Run& run : runs) {
    if (run.errors != 0) {
      std::printf("FAIL: %s saw %llu error-severity finding(s); the "
                  "corpus sweep must be clean\n",
                  run.label, static_cast<unsigned long long>(run.errors));
      ++failures;
    }
    if (run.reports != runs[0].reports) {
      std::printf("FAIL: %s reports differ from %s (findings must be "
                  "byte-identical for any jobs/cache configuration)\n",
                  run.label, runs[0].label);
      identical = false;
      ++failures;
    }
    if (run.warm && run.misses != 0) {
      std::printf("FAIL: %s had %llu cache misses on a warm cache\n",
                  run.label, static_cast<unsigned long long>(run.misses));
      ++failures;
    }
  }

  // The cache exists to amortize abstract interpretation: the warm
  // summary phase must run at least 2x faster than the cold one. The gate
  // applies at -j 1, where the phase time is the interpretation itself;
  // at -j 8 corpus packages are so small (a handful of functions) that
  // per-package worker spawn dominates both sides, so that ratio is
  // reported but not gated.
  for (size_t i = 0; i + 1 < runs.size(); i += 2) {
    const Run& cold = runs[i];
    const Run& warm = runs[i + 1];
    double speedup = warm.summary_ns == 0
                         ? 0
                         : static_cast<double>(cold.summary_ns) /
                               static_cast<double>(warm.summary_ns);
    std::printf("\nwarm-cache summary-phase speedup at -j %d: %.2fx "
                "(cold %.3f ms, warm %.3f ms)%s\n",
                cold.jobs, speedup, cold.summary_ns / 1e6,
                warm.summary_ns / 1e6,
                cold.jobs == 1 ? "" : " [informational]");
    if (cold.jobs == 1 && speedup < 2.0) {
      std::printf("FAIL: warm summary cache must be >= 2x faster\n");
      ++failures;
    }
  }

  std::printf("\n%zu packages analyzed; reports byte-identical across "
              "4 configurations: %s; error-severity findings: %llu\n",
              packages.size(), identical ? "yes" : "NO",
              static_cast<unsigned long long>(runs[0].errors));
  return failures == 0 ? 0 : 1;
}
