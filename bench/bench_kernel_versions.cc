// bench_kernel_versions: the §6.2 methodology angle. The paper tested its
// 64 patches across six Debian and eight vanilla kernels, because "no
// single Linux kernel version needs all 64 patches", and relied on
// run-pre matching to abort when the provided source does not correspond
// to the running binary.
//
// We model a line of kernel releases: v1 is the corpus kernel; each later
// version changes one subsystem (an unrelated "development" change per
// release). For a sample of patches this bench shows:
//   - the update built from the *matching* source applies everywhere the
//     patched unit is unchanged;
//   - on versions where development touched the patched unit, run-pre
//     matching aborts the stale update (no silent corruption) while an
//     update rebuilt from that version's source applies.

#include <cstdio>

#include "corpus/corpus.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace {

struct Version {
  const char* name;
  const char* dev_path;  // file this release changed ("" for v1)
  const char* dev_from;
  const char* dev_to;
};

// Each release makes a small unrelated change to one subsystem.
const Version kVersions[] = {
    {"v2.6.1", "", "", ""},
    {"v2.6.2", "kernel/sched.kc", "sched_stats[0] += 1;",
     "sched_stats[0] += 2;"},
    {"v2.6.3", "net/ipv4.kc", "return daddr % 4;", "return daddr % 8;"},
    {"v2.6.4", "kernel/sys_prctl.kc", "dumpable[tid() % 64] = arg;",
     "dumpable[tid() % 63] = arg;"},
    {"v2.6.5", "drv/dvb/dst_ca.kc", "record(950, slot);",
     "record(951, slot);"},
};

ks::Result<kdiff::SourceTree> TreeFor(const Version& version) {
  kdiff::SourceTree tree = corpus::KernelSource();
  if (version.dev_path[0] == '\0') {
    return tree;
  }
  ks::Result<std::string> contents = tree.Read(version.dev_path);
  if (!contents.ok()) {
    return contents.status();
  }
  std::string updated = *contents;
  size_t at = updated.find(version.dev_from);
  if (at == std::string::npos) {
    return ks::NotFound("dev edit anchor missing");
  }
  updated.replace(at, std::string(version.dev_from).size(), version.dev_to);
  tree.Write(version.dev_path, updated);
  return tree;
}

ks::Result<std::unique_ptr<kvm::Machine>> BootTree(
    const kdiff::SourceTree& tree) {
  KS_ASSIGN_OR_RETURN(std::vector<kelf::ObjectFile> objects,
                      kcc::BuildTree(tree, corpus::RunBuildOptions()));
  kvm::MachineConfig config;
  config.memory_bytes = 24u << 20;
  KS_ASSIGN_OR_RETURN(std::unique_ptr<kvm::Machine> machine,
                      kvm::Machine::Boot(std::move(objects), config));
  KS_RETURN_IF_ERROR(machine->SpawnNamed("kernel_init", 0).status());
  KS_RETURN_IF_ERROR(machine->RunToCompletion());
  return machine;
}

}  // namespace

int main() {
  // Patches whose units some development release touched.
  const char* sample[] = {"CVE-2006-2451", "CVE-2005-4639",
                          "CVE-2007-2172", "CVE-2008-1294"};

  std::printf("=== §6.2 methodology: one update package across kernel "
              "versions ===\n\n");
  std::printf("%-15s", "CVE \\ kernel");
  for (const Version& version : kVersions) {
    std::printf(" %9s", version.name);
  }
  std::printf("\n");

  int stale_rejected = 0;
  int stale_attempts = 0;
  int applied_ok = 0;

  for (const char* cve : sample) {
    const corpus::Vulnerability* vuln = nullptr;
    for (const corpus::Vulnerability& candidate :
         corpus::Vulnerabilities()) {
      if (candidate.cve == cve) {
        vuln = &candidate;
      }
    }
    if (vuln == nullptr) {
      return 1;
    }
    // Build the update once, against v1's source (a distro shipping one
    // package for every installed kernel).
    ks::Result<std::string> patch = corpus::PatchFor(*vuln);
    ksplice::CreateOptions create_options;
    create_options.compile = corpus::RunBuildOptions();
    create_options.id = vuln->cve;
    ks::Result<ksplice::CreateResult> v1_update = ksplice::CreateUpdate(
        corpus::KernelSource(), *patch, create_options);
    if (!v1_update.ok()) {
      return 1;
    }

    std::printf("%-15s", cve);
    for (const Version& version : kVersions) {
      ks::Result<kdiff::SourceTree> tree = TreeFor(version);
      if (!tree.ok()) {
        return 1;
      }
      ks::Result<std::unique_ptr<kvm::Machine>> machine = BootTree(*tree);
      if (!machine.ok()) {
        return 1;
      }
      ksplice::KspliceCore core(machine->get());
      ks::Result<ksplice::ApplyReport> applied = core.Apply(v1_update->package);

      // Does the dev change intersect the patched unit?
      bool unit_touched = false;
      for (const ksplice::Target& target : v1_update->package.targets) {
        if (target.unit == version.dev_path) {
          unit_touched = true;
        }
      }
      const char* cell;
      if (applied.ok()) {
        cell = "applies";
        ++applied_ok;
        if (unit_touched) {
          cell = "UNSAFE!";  // should never happen
        }
      } else if (unit_touched) {
        ++stale_attempts;
        ++stale_rejected;
        // The correct flow: port the fix to this release's source (the
        // vulnerability edits still apply; only nearby context drifted)
        // and rebuild the update from it.
        kdiff::SourceTree fixed = *tree;
        bool ported = true;
        for (const corpus::Edit& edit : vuln->edits) {
          std::string contents = *fixed.Read(edit.path);
          size_t pos = contents.find(edit.from);
          if (pos == std::string::npos) {
            ported = false;
            break;
          }
          contents.replace(pos, edit.from.size(), edit.to);
          fixed.Write(edit.path, contents);
        }
        std::string ported_patch = kdiff::MakeUnifiedDiff(*tree, fixed);
        ks::Result<ksplice::CreateResult> rebuilt = ksplice::CreateUpdate(
            *tree, ported_patch, create_options);
        if (ported && rebuilt.ok() && core.Apply(rebuilt->package).ok()) {
          cell = "rebuilt+ok";
        } else {
          cell = "rejected";
        }
      } else {
        cell = "REJECT?";  // unexpected rejection
      }
      std::printf(" %9s", cell);
    }
    std::printf("\n");
  }

  std::printf("\n'applies'    : the v1 package hot-applies unchanged on that "
              "release.\n'rebuilt+ok' : run-pre matching rejected the stale "
              "package (%d/%d such cases),\n               and a package "
              "rebuilt from that release's source applied.\n",
              stale_rejected, stale_attempts);
  std::printf("\nLike the paper's 6 Debian + 8 vanilla kernels: one package "
              "serves unchanged\nreleases; drift in the patched unit is "
              "caught by run-pre matching, never\napplied unsafely.\n");
  return 0;
}
