// bench_kernel_versions: the §6.2 methodology angle. The paper tested its
// 64 patches across six Debian and eight vanilla kernels, because "no
// single Linux kernel version needs all 64 patches", and relied on
// run-pre matching to abort when the provided source does not correspond
// to the running binary.
//
// We model a line of kernel releases: v1 is the corpus kernel; each later
// version changes one subsystem (an unrelated "development" change per
// release). For a sample of patches this bench shows:
//   - the update built from the *matching* source applies everywhere the
//     patched unit is unchanged;
//   - on versions where development touched the patched unit, run-pre
//     matching aborts the stale update (no silent corruption) while an
//     update rebuilt from that version's source applies.

#include <cstdio>

#include "corpus/corpus.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

int main() {
  // The release line lives in the corpus (corpus::KernelVersions) so the
  // fleet orchestrator, its tests and this bench share one drift model.
  const std::vector<corpus::KernelVersion>& versions =
      corpus::KernelVersions();
  // Patches whose units some development release touched.
  const char* sample[] = {"CVE-2006-2451", "CVE-2005-4639",
                          "CVE-2007-2172", "CVE-2008-1294"};

  std::printf("=== §6.2 methodology: one update package across kernel "
              "versions ===\n\n");
  std::printf("%-15s", "CVE \\ kernel");
  for (const corpus::KernelVersion& version : versions) {
    std::printf(" %9s", version.name.c_str());
  }
  std::printf("\n");

  int stale_rejected = 0;
  int stale_attempts = 0;
  int applied_ok = 0;

  for (const char* cve : sample) {
    const corpus::Vulnerability* vuln = nullptr;
    for (const corpus::Vulnerability& candidate :
         corpus::Vulnerabilities()) {
      if (candidate.cve == cve) {
        vuln = &candidate;
      }
    }
    if (vuln == nullptr) {
      return 1;
    }
    // Build the update once, against v1's source (a distro shipping one
    // package for every installed kernel).
    ks::Result<std::string> patch = corpus::PatchFor(*vuln);
    ksplice::CreateOptions create_options;
    create_options.compile = corpus::RunBuildOptions();
    create_options.id = vuln->cve;
    ks::Result<ksplice::CreateResult> v1_update = ksplice::CreateUpdate(
        corpus::KernelSource(), *patch, create_options);
    if (!v1_update.ok()) {
      return 1;
    }

    std::printf("%-15s", cve);
    for (size_t vi = 0; vi < versions.size(); ++vi) {
      const corpus::KernelVersion& version = versions[vi];
      ks::Result<kdiff::SourceTree> tree = corpus::KernelSourceAt(vi);
      if (!tree.ok()) {
        return 1;
      }
      ks::Result<std::unique_ptr<kvm::Machine>> machine =
          corpus::BootKernelVersion(vi);
      if (!machine.ok()) {
        return 1;
      }
      ksplice::KspliceCore core(machine->get());
      ks::Result<ksplice::ApplyReport> applied = core.Apply(v1_update->package);

      // Does the dev change intersect the patched unit?
      bool unit_touched = false;
      for (const ksplice::Target& target : v1_update->package.targets) {
        if (target.unit == version.dev_path) {
          unit_touched = true;
        }
      }
      const char* cell;
      if (applied.ok()) {
        cell = "applies";
        ++applied_ok;
        if (unit_touched) {
          cell = "UNSAFE!";  // should never happen
        }
      } else if (unit_touched) {
        ++stale_attempts;
        ++stale_rejected;
        // The correct flow: port the fix to this release's source (the
        // vulnerability edits still apply; only nearby context drifted)
        // and rebuild the update from it.
        kdiff::SourceTree fixed = *tree;
        bool ported = true;
        for (const corpus::Edit& edit : vuln->edits) {
          std::string contents = *fixed.Read(edit.path);
          size_t pos = contents.find(edit.from);
          if (pos == std::string::npos) {
            ported = false;
            break;
          }
          contents.replace(pos, edit.from.size(), edit.to);
          fixed.Write(edit.path, contents);
        }
        std::string ported_patch = kdiff::MakeUnifiedDiff(*tree, fixed);
        ks::Result<ksplice::CreateResult> rebuilt = ksplice::CreateUpdate(
            *tree, ported_patch, create_options);
        if (ported && rebuilt.ok() && core.Apply(rebuilt->package).ok()) {
          cell = "rebuilt+ok";
        } else {
          cell = "rejected";
        }
      } else {
        cell = "REJECT?";  // unexpected rejection
      }
      std::printf(" %9s", cell);
    }
    std::printf("\n");
  }

  std::printf("\n'applies'    : the v1 package hot-applies unchanged on that "
              "release.\n'rebuilt+ok' : run-pre matching rejected the stale "
              "package (%d/%d such cases),\n               and a package "
              "rebuilt from that release's source applied.\n",
              stale_rejected, stale_attempts);
  std::printf("\nLike the paper's 6 Debian + 8 vanilla kernels: one package "
              "serves unchanged\nreleases; drift in the patched unit is "
              "caught by run-pre matching, never\napplied unsafely.\n");
  return 0;
}
