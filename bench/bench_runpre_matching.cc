// bench_runpre_matching: cost of run-pre matching (§4.3), which "passes
// over every byte of the pre code". Measures MatchUnit throughput against
// synthetic compilation units of increasing size and relocation density,
// and reports bytes matched per second.
//
// Reported work counts (bytes matched, relocation inversions, candidate
// attempts) are read back from the "runpre." counters the matcher
// publishes to the metrics registry, not recomputed locally.

#include <benchmark/benchmark.h>

#include "base/metrics.h"
#include "base/strings.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/runpre.h"
#include "kvm/machine.h"

namespace {

// The per-iteration mean growth of a registry counter across the timed
// loop (the counters are process-wide monotonic aggregates).
struct RunpreDeltas {
  uint64_t bytes_matched = 0;
  uint64_t pre_bytes_walked = 0;
  uint64_t candidates_tried = 0;
  uint64_t reloc_sites_inverted = 0;
  uint64_t ambiguity_deferrals = 0;

  static RunpreDeltas Snapshot() {
    RunpreDeltas s;
    s.bytes_matched =
        ks::Metrics().GetCounter("runpre.bytes_matched").value();
    s.pre_bytes_walked =
        ks::Metrics().GetCounter("runpre.pre_bytes_walked").value();
    s.candidates_tried =
        ks::Metrics().GetCounter("runpre.candidates_tried").value();
    s.reloc_sites_inverted =
        ks::Metrics().GetCounter("runpre.reloc_sites_inverted").value();
    s.ambiguity_deferrals =
        ks::Metrics().GetCounter("runpre.ambiguity_deferrals").value();
    return s;
  }
};

// Generates a unit with `n` functions that call each other and touch
// shared globals — plenty of relocations for the matcher to invert.
std::string MakeUnit(int n) {
  std::string src = "int shared_a = 1;\nint shared_b = 2;\n";
  for (int i = 0; i < n; ++i) {
    src += ks::StrPrintf(
        "int fn_%d(int x) {\n"
        "  int acc = x + %d;\n"
        "  shared_a = shared_a + acc;\n"
        "  if (acc > 100) {\n"
        "    shared_b = shared_b + 1;\n"
        "    return shared_b;\n"
        "  }\n"
        "  while (acc > 3) {\n"
        "    acc = acc - 3;\n"
        "  }\n"
        "%s"
        "  return acc + shared_a;\n"
        "}\n",
        i, i * 7,
        i > 0 ? ks::StrPrintf("  acc = acc + fn_%d(acc);\n", i - 1).c_str()
              : "");
  }
  return src;
}

void BM_MatchUnit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  kdiff::SourceTree tree;
  tree.Write("unit.kc", MakeUnit(n));

  kcc::CompileOptions run_options;  // monolithic, like a real kernel
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  if (!objects.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    state.SkipWithError("boot failed");
    return;
  }

  kcc::CompileOptions pre_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "unit.kc", pre_options);
  if (!pre.ok()) {
    state.SkipWithError("pre build failed");
    return;
  }
  ksplice::RunPreMatcher matcher(**machine);
  RunpreDeltas before = RunpreDeltas::Snapshot();
  for (auto _ : state) {
    ks::Result<ksplice::UnitMatch> match = matcher.MatchUnit(*pre);
    if (!match.ok()) {
      state.SkipWithError(match.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(match);
  }
  RunpreDeltas after = RunpreDeltas::Snapshot();
  uint64_t iterations = static_cast<uint64_t>(state.iterations());
  state.SetBytesProcessed(
      static_cast<int64_t>(after.bytes_matched - before.bytes_matched));
  state.counters["functions"] = n;
  state.counters["bytes_matched"] = static_cast<double>(
      (after.bytes_matched - before.bytes_matched) / iterations);
  state.counters["pre_bytes_walked"] = static_cast<double>(
      (after.pre_bytes_walked - before.pre_bytes_walked) / iterations);
  state.counters["reloc_inversions"] = static_cast<double>(
      (after.reloc_sites_inverted - before.reloc_sites_inverted) /
      iterations);
}
BENCHMARK(BM_MatchUnit)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

// Ambiguity resolution cost: many same-named candidates force the matcher
// to try each (fixpoint disambiguation).
void BM_MatchAmbiguous(benchmark::State& state) {
  int copies = static_cast<int>(state.range(0));
  kdiff::SourceTree tree;
  // `copies` units, each with a local symbol `handler` of identical name
  // but different body constants.
  for (int i = 0; i < copies; ++i) {
    tree.Write(ks::StrPrintf("unit%d.kc", i),
               ks::StrPrintf("static int handler(int x) {\n"
                             "  return x * %d + %d;\n}\n"
                             "int entry_%d(int x) {\n"
                             "  return handler(x) + handler(x + 1) + "
                             "handler(x + 2) + handler(x + 3) + "
                             "handler(x + 4) + handler(x + 5);\n}\n",
                             i + 3, i + 11, i));
  }
  kcc::CompileOptions run_options;
  run_options.inline_threshold = 0;  // keep the calls real
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  if (!objects.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  kcc::CompileOptions pre_options = run_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "unit0.kc", pre_options);
  if (!pre.ok()) {
    state.SkipWithError("pre build failed");
    return;
  }
  ksplice::RunPreMatcher matcher(**machine);
  RunpreDeltas before = RunpreDeltas::Snapshot();
  for (auto _ : state) {
    ks::Result<ksplice::UnitMatch> match = matcher.MatchUnit(*pre);
    if (!match.ok()) {
      state.SkipWithError(match.status().message().c_str());
      return;
    }
  }
  RunpreDeltas after = RunpreDeltas::Snapshot();
  uint64_t iterations = static_cast<uint64_t>(state.iterations());
  state.counters["same_named_candidates"] = copies;
  state.counters["candidates_tried"] = static_cast<double>(
      (after.candidates_tried - before.candidates_tried) / iterations);
  state.counters["ambiguity_deferrals"] = static_cast<double>(
      (after.ambiguity_deferrals - before.ambiguity_deferrals) /
      iterations);
}
BENCHMARK(BM_MatchAmbiguous)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
