// bench_runpre_matching: cost of run-pre matching (§4.3), which "passes
// over every byte of the pre code". Measures MatchUnit throughput against
// synthetic compilation units of increasing size and relocation density,
// and reports bytes matched per second.

#include <benchmark/benchmark.h>

#include "base/strings.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/runpre.h"
#include "kvm/machine.h"

namespace {

// Generates a unit with `n` functions that call each other and touch
// shared globals — plenty of relocations for the matcher to invert.
std::string MakeUnit(int n) {
  std::string src = "int shared_a = 1;\nint shared_b = 2;\n";
  for (int i = 0; i < n; ++i) {
    src += ks::StrPrintf(
        "int fn_%d(int x) {\n"
        "  int acc = x + %d;\n"
        "  shared_a = shared_a + acc;\n"
        "  if (acc > 100) {\n"
        "    shared_b = shared_b + 1;\n"
        "    return shared_b;\n"
        "  }\n"
        "  while (acc > 3) {\n"
        "    acc = acc - 3;\n"
        "  }\n"
        "%s"
        "  return acc + shared_a;\n"
        "}\n",
        i, i * 7,
        i > 0 ? ks::StrPrintf("  acc = acc + fn_%d(acc);\n", i - 1).c_str()
              : "");
  }
  return src;
}

void BM_MatchUnit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  kdiff::SourceTree tree;
  tree.Write("unit.kc", MakeUnit(n));

  kcc::CompileOptions run_options;  // monolithic, like a real kernel
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  if (!objects.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    state.SkipWithError("boot failed");
    return;
  }

  kcc::CompileOptions pre_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "unit.kc", pre_options);
  if (!pre.ok()) {
    state.SkipWithError("pre build failed");
    return;
  }
  uint64_t text_bytes = 0;
  uint64_t relocs = 0;
  for (const kelf::Section& section : pre->sections()) {
    if (section.kind == kelf::SectionKind::kText) {
      text_bytes += section.bytes.size();
      relocs += section.relocs.size();
    }
  }

  ksplice::RunPreMatcher matcher(**machine);
  for (auto _ : state) {
    ks::Result<ksplice::UnitMatch> match = matcher.MatchUnit(*pre);
    if (!match.ok()) {
      state.SkipWithError(match.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(match);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text_bytes));
  state.counters["functions"] = n;
  state.counters["text_bytes"] = static_cast<double>(text_bytes);
  state.counters["relocations"] = static_cast<double>(relocs);
}
BENCHMARK(BM_MatchUnit)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

// Ambiguity resolution cost: many same-named candidates force the matcher
// to try each (fixpoint disambiguation).
void BM_MatchAmbiguous(benchmark::State& state) {
  int copies = static_cast<int>(state.range(0));
  kdiff::SourceTree tree;
  // `copies` units, each with a local symbol `handler` of identical name
  // but different body constants.
  for (int i = 0; i < copies; ++i) {
    tree.Write(ks::StrPrintf("unit%d.kc", i),
               ks::StrPrintf("static int handler(int x) {\n"
                             "  return x * %d + %d;\n}\n"
                             "int entry_%d(int x) {\n"
                             "  return handler(x) + handler(x + 1) + "
                             "handler(x + 2) + handler(x + 3) + "
                             "handler(x + 4) + handler(x + 5);\n}\n",
                             i + 3, i + 11, i));
  }
  kcc::CompileOptions run_options;
  run_options.inline_threshold = 0;  // keep the calls real
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  if (!objects.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  kcc::CompileOptions pre_options = run_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "unit0.kc", pre_options);
  if (!pre.ok()) {
    state.SkipWithError("pre build failed");
    return;
  }
  ksplice::RunPreMatcher matcher(**machine);
  for (auto _ : state) {
    ks::Result<ksplice::UnitMatch> match = matcher.MatchUnit(*pre);
    if (!match.ok()) {
      state.SkipWithError(match.status().message().c_str());
      return;
    }
  }
  state.counters["same_named_candidates"] = copies;
}
BENCHMARK(BM_MatchAmbiguous)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
