// bench_runpre_matching: cost of run-pre matching (§4.3), which "passes
// over every byte of the pre code". Measures MatchUnit throughput against
// synthetic compilation units of increasing size and relocation density,
// and reports bytes matched per second.
//
// Every benchmark runs in two modes, selected by the second argument:
// 1 = the indexed two-stage matcher (canonical n-gram prefilter + decode
// cache, the default), 0 = the linear fallback that walks every candidate
// per attempt (`--no-index`). Match decisions are identical; the headline
// comparison is pre_bytes_walked (linear) against the decode-once
// pre/run_bytes_canonicalized counters (indexed).
//
// Reported work counts (bytes matched, relocation inversions, candidate
// attempts) are read back from the "runpre." counters the matcher
// publishes to the metrics registry, not recomputed locally.

#include <benchmark/benchmark.h>

#include "base/metrics.h"
#include "base/strings.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/runpre.h"
#include "kvm/machine.h"

namespace {

// The per-iteration mean growth of a registry counter across the timed
// loop (the counters are process-wide monotonic aggregates).
struct RunpreDeltas {
  uint64_t bytes_matched = 0;
  uint64_t pre_bytes_walked = 0;
  uint64_t candidates_tried = 0;
  uint64_t reloc_sites_inverted = 0;
  uint64_t ambiguity_deferrals = 0;
  uint64_t index_hits = 0;
  uint64_t index_misses = 0;
  uint64_t pre_bytes_canonicalized = 0;
  uint64_t run_bytes_canonicalized = 0;

  static RunpreDeltas Snapshot() {
    RunpreDeltas s;
    s.bytes_matched =
        ks::Metrics().GetCounter("runpre.bytes_matched").value();
    s.pre_bytes_walked =
        ks::Metrics().GetCounter("runpre.pre_bytes_walked").value();
    s.candidates_tried =
        ks::Metrics().GetCounter("runpre.candidates_tried").value();
    s.reloc_sites_inverted =
        ks::Metrics().GetCounter("runpre.reloc_sites_inverted").value();
    s.ambiguity_deferrals =
        ks::Metrics().GetCounter("runpre.ambiguity_deferrals").value();
    s.index_hits = ks::Metrics().GetCounter("runpre.index.hits").value();
    s.index_misses = ks::Metrics().GetCounter("runpre.index.misses").value();
    s.pre_bytes_canonicalized =
        ks::Metrics()
            .GetCounter("runpre.index.pre_bytes_canonicalized")
            .value();
    s.run_bytes_canonicalized =
        ks::Metrics()
            .GetCounter("runpre.index.run_bytes_canonicalized")
            .value();
    return s;
  }
};

ksplice::MatcherOptions ModeOptions(benchmark::State& state) {
  ksplice::MatcherOptions options;
  options.use_index = state.range(1) != 0;
  return options;
}

// Emits the per-iteration work counters common to both benches.
void ReportDeltas(benchmark::State& state, const RunpreDeltas& before,
                  const RunpreDeltas& after) {
  uint64_t iterations = static_cast<uint64_t>(state.iterations());
  state.counters["pre_bytes_walked"] = static_cast<double>(
      (after.pre_bytes_walked - before.pre_bytes_walked) / iterations);
  state.counters["pre_bytes_canonicalized"] = static_cast<double>(
      (after.pre_bytes_canonicalized - before.pre_bytes_canonicalized) /
      iterations);
  state.counters["run_bytes_canonicalized"] = static_cast<double>(
      (after.run_bytes_canonicalized - before.run_bytes_canonicalized) /
      iterations);
  state.counters["index_hits"] = static_cast<double>(
      (after.index_hits - before.index_hits) / iterations);
  state.counters["index_misses"] = static_cast<double>(
      (after.index_misses - before.index_misses) / iterations);
  state.counters["candidates_tried"] = static_cast<double>(
      (after.candidates_tried - before.candidates_tried) / iterations);
}

// Generates a unit with `n` functions that call each other and touch
// shared globals — plenty of relocations for the matcher to invert.
std::string MakeUnit(int n) {
  std::string src = "int shared_a = 1;\nint shared_b = 2;\n";
  for (int i = 0; i < n; ++i) {
    src += ks::StrPrintf(
        "int fn_%d(int x) {\n"
        "  int acc = x + %d;\n"
        "  shared_a = shared_a + acc;\n"
        "  if (acc > 100) {\n"
        "    shared_b = shared_b + 1;\n"
        "    return shared_b;\n"
        "  }\n"
        "  while (acc > 3) {\n"
        "    acc = acc - 3;\n"
        "  }\n"
        "%s"
        "  return acc + shared_a;\n"
        "}\n",
        i, i * 7,
        i > 0 ? ks::StrPrintf("  acc = acc + fn_%d(acc);\n", i - 1).c_str()
              : "");
  }
  return src;
}

void BM_MatchUnit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  kdiff::SourceTree tree;
  tree.Write("unit.kc", MakeUnit(n));

  kcc::CompileOptions run_options;  // monolithic, like a real kernel
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  if (!objects.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    state.SkipWithError("boot failed");
    return;
  }

  kcc::CompileOptions pre_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "unit.kc", pre_options);
  if (!pre.ok()) {
    state.SkipWithError("pre build failed");
    return;
  }
  ksplice::RunPreMatcher matcher(**machine, nullptr, ModeOptions(state));
  RunpreDeltas before = RunpreDeltas::Snapshot();
  for (auto _ : state) {
    ks::Result<ksplice::UnitMatch> match = matcher.MatchUnit(*pre);
    if (!match.ok()) {
      state.SkipWithError(match.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(match);
  }
  RunpreDeltas after = RunpreDeltas::Snapshot();
  uint64_t iterations = static_cast<uint64_t>(state.iterations());
  state.SetBytesProcessed(
      static_cast<int64_t>(after.bytes_matched - before.bytes_matched));
  state.counters["functions"] = n;
  state.counters["bytes_matched"] = static_cast<double>(
      (after.bytes_matched - before.bytes_matched) / iterations);
  state.counters["reloc_inversions"] = static_cast<double>(
      (after.reloc_sites_inverted - before.reloc_sites_inverted) /
      iterations);
  ReportDeltas(state, before, after);
}
BENCHMARK(BM_MatchUnit)
    ->ArgNames({"functions", "indexed"})
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({4, 0})
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({128, 0});

// Ambiguity resolution cost: many same-named candidates force the matcher
// to try each (fixpoint disambiguation). The bodies differ only in imm32
// constants — which canonicalization wildcards — so the prefilter cannot
// prune here and the indexed win is the decode cache, not the index.
void BM_MatchAmbiguous(benchmark::State& state) {
  int copies = static_cast<int>(state.range(0));
  kdiff::SourceTree tree;
  // `copies` units, each with a local symbol `handler` of identical name
  // but different body constants.
  for (int i = 0; i < copies; ++i) {
    tree.Write(ks::StrPrintf("unit%d.kc", i),
               ks::StrPrintf("static int handler(int x) {\n"
                             "  return x * %d + %d;\n}\n"
                             "int entry_%d(int x) {\n"
                             "  return handler(x) + handler(x + 1) + "
                             "handler(x + 2) + handler(x + 3) + "
                             "handler(x + 4) + handler(x + 5);\n}\n",
                             i + 3, i + 11, i));
  }
  kcc::CompileOptions run_options;
  run_options.inline_threshold = 0;  // keep the calls real
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  if (!objects.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  kcc::CompileOptions pre_options = run_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "unit0.kc", pre_options);
  if (!pre.ok()) {
    state.SkipWithError("pre build failed");
    return;
  }
  ksplice::RunPreMatcher matcher(**machine, nullptr, ModeOptions(state));
  RunpreDeltas before = RunpreDeltas::Snapshot();
  for (auto _ : state) {
    ks::Result<ksplice::UnitMatch> match = matcher.MatchUnit(*pre);
    if (!match.ok()) {
      state.SkipWithError(match.status().message().c_str());
      return;
    }
  }
  RunpreDeltas after = RunpreDeltas::Snapshot();
  uint64_t iterations = static_cast<uint64_t>(state.iterations());
  state.counters["same_named_candidates"] = copies;
  state.counters["ambiguity_deferrals"] = static_cast<double>(
      (after.ambiguity_deferrals - before.ambiguity_deferrals) /
      iterations);
  ReportDeltas(state, before, after);
}
BENCHMARK(BM_MatchAmbiguous)
    ->ArgNames({"copies", "indexed"})
    ->Args({2, 1})
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({2, 0})
    ->Args({8, 0})
    ->Args({32, 0});

// Structurally diverse ambiguity: same-named candidates whose bodies
// differ in shape, not just constants — the case the n-gram prefilter
// actually prunes. Indexed mode should try far fewer candidates.
void BM_MatchDiverseAmbiguous(benchmark::State& state) {
  int copies = static_cast<int>(state.range(0));
  kdiff::SourceTree tree;
  // Six handler shapes whose first 16 canonical bytes are pairwise
  // distinct.  Divergence must land *inside* the gram window, which the
  // shared prologue and argument-load boilerplate nearly fill — varying
  // trailing statements or immediate constants (wildcarded imm32s) is not
  // enough.  These shapes differ in frame allocation, control flow,
  // arity, or an early call, so each lands in its own gram bucket.
  struct Shape {
    const char* def;
    const char* call;
  };
  static const Shape kShapes[] = {
      {"static int handler(int x) { return x; }", "handler(x)"},
      {"static int handler(int x) { return x + 1; }", "handler(x)"},
      {"static int handler(int x) {\n  int acc = x;\n  acc = acc * 3;\n"
       "  return acc;\n}",
       "handler(x)"},
      {"static int helper(int x) { return x * 2; }\n"
       "static int handler(int x) { return helper(x) + 1; }",
       "handler(x)"},
      {"static int handler(int x) {\n  if (x) { return 1; }\n  return 0;\n}",
       "handler(x)"},
      {"static int handler(int x, int y) { return x + y; }", "handler(x, x)"},
  };
  constexpr int kShapeCount = 6;
  for (int i = 0; i < copies; ++i) {
    const Shape& shape = kShapes[i % kShapeCount];
    tree.Write(ks::StrPrintf("unit%d.kc", i),
               ks::StrPrintf("%s\n"
                             "int entry_%d(int x) {\n"
                             "  return %s + %s;\n}\n",
                             shape.def, i, shape.call, shape.call));
  }
  kcc::CompileOptions run_options;
  run_options.inline_threshold = 0;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  if (!objects.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  kcc::CompileOptions pre_options = run_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "unit0.kc", pre_options);
  if (!pre.ok()) {
    state.SkipWithError("pre build failed");
    return;
  }
  ksplice::RunPreMatcher matcher(**machine, nullptr, ModeOptions(state));
  RunpreDeltas before = RunpreDeltas::Snapshot();
  for (auto _ : state) {
    ks::Result<ksplice::UnitMatch> match = matcher.MatchUnit(*pre);
    if (!match.ok()) {
      state.SkipWithError(match.status().message().c_str());
      return;
    }
  }
  RunpreDeltas after = RunpreDeltas::Snapshot();
  state.counters["same_named_candidates"] = copies;
  ReportDeltas(state, before, after);
}
BENCHMARK(BM_MatchDiverseAmbiguous)
    ->ArgNames({"copies", "indexed"})
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({8, 0})
    ->Args({32, 0});

}  // namespace

BENCHMARK_MAIN();
