// bench_stopmachine_latency: the §2/§5.2 claim that applying an update
// interrupts normal operation for about 0.7 ms, "far shorter than any
// reboot".
//
// Measures (a) a bare stop_machine rendezvous while virtual CPUs churn
// through the stress workload, (b) the stopped window of a real update
// application (safety check + hook + splice), and (c) a full
// apply+undo cycle, against (d) the cost of a simulated reboot (fresh
// kernel build + boot + init) for scale.
//
// All reported numbers come from the metrics registry (base/metrics.h) —
// the same "kvm.stop_rendezvous_ns" / "ksplice.stop_pause_ns" series the
// instrumented code publishes — not from private stopwatches.

#include <benchmark/benchmark.h>

#include "base/metrics.h"
#include "corpus/corpus.h"
#include "kcc/compile.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace {

// Snapshot of one registry histogram, for before/after deltas.
struct HistSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
};

HistSnapshot Snapshot(const char* name) {
  ks::Histogram& hist = ks::Metrics().GetHistogram(name);
  return HistSnapshot{hist.count(), hist.sum()};
}

// Mean of the observations made since `before`, in nanoseconds.
double MeanSince(const char* name, const HistSnapshot& before) {
  HistSnapshot now = Snapshot(name);
  uint64_t count = now.count - before.count;
  if (count == 0) {
    return 0.0;
  }
  return static_cast<double>(now.sum - before.sum) /
         static_cast<double>(count);
}

std::unique_ptr<kvm::Machine> BootBusyKernel(int cpus) {
  ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
  if (!machine.ok()) {
    return nullptr;
  }
  // Endless background load.
  for (int i = 0; i < 4; ++i) {
    (void)(*machine)->SpawnNamed("stress_main", 1'000'000);
  }
  if (cpus > 0) {
    (*machine)->StartCpus(cpus);
  }
  return std::move(machine).value();
}

void BM_StopMachineRendezvous(benchmark::State& state) {
  std::unique_ptr<kvm::Machine> machine =
      BootBusyKernel(static_cast<int>(state.range(0)));
  if (machine == nullptr) {
    state.SkipWithError("boot failed");
    return;
  }
  ks::Counter& calls = ks::Metrics().GetCounter("kvm.stop_machine_calls");
  uint64_t calls_before = calls.value();
  HistSnapshot rendezvous_before = Snapshot("kvm.stop_rendezvous_ns");
  for (auto _ : state) {
    ks::Status status = machine->StopMachine(
        [](kvm::Machine&) { return ks::OkStatus(); });
    if (!status.ok()) {
      state.SkipWithError("stop_machine failed");
      return;
    }
  }
  machine->StopCpus();
  state.counters["stop_calls"] =
      static_cast<double>(calls.value() - calls_before);
  state.counters["rendezvous_ns"] =
      MeanSince("kvm.stop_rendezvous_ns", rendezvous_before);
}
BENCHMARK(BM_StopMachineRendezvous)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

// The full stopped window of one update application: stack-safety check
// over the patched ranges plus the trampoline splice. The pause is read
// back from the "ksplice.stop_pause_ns" histogram that KspliceCore
// publishes for every successful stop window.
void BM_ApplyUndoCycle(benchmark::State& state) {
  const corpus::Vulnerability* vuln = nullptr;
  for (const corpus::Vulnerability& candidate : corpus::Vulnerabilities()) {
    if (candidate.cve == "CVE-2006-2451") {
      vuln = &candidate;
    }
  }
  ks::Result<std::string> patch = corpus::PatchFor(*vuln);
  ksplice::CreateOptions create_options;
  create_options.compile = corpus::RunBuildOptions();
  create_options.id = vuln->cve;
  ks::Result<ksplice::CreateResult> created = ksplice::CreateUpdate(
      corpus::KernelSource(), *patch, create_options);
  if (!created.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  std::unique_ptr<kvm::Machine> machine = BootBusyKernel(0);
  if (machine == nullptr) {
    state.SkipWithError("boot failed");
    return;
  }
  ksplice::KspliceCore core(machine.get());
  ks::Counter& retries =
      ks::Metrics().GetCounter("ksplice.quiescence_retries");
  uint64_t retries_before = retries.value();
  HistSnapshot pause_before = Snapshot("ksplice.stop_pause_ns");
  uint64_t trampoline_bytes = 0;
  for (auto _ : state) {
    ks::Result<ksplice::ApplyReport> applied = core.Apply(created->package);
    if (!applied.ok()) {
      state.SkipWithError(applied.status().message().c_str());
      return;
    }
    trampoline_bytes = applied->trampoline_bytes;
    ks::Result<ksplice::UndoReport> undone = core.Undo(vuln->cve);
    if (!undone.ok()) {
      state.SkipWithError(undone.status().message().c_str());
      return;
    }
  }
  state.counters["stop_pause_ns"] =
      MeanSince("ksplice.stop_pause_ns", pause_before);
  state.counters["quiescence_retries"] =
      static_cast<double>(retries.value() - retries_before);
  state.counters["trampoline_bytes"] =
      static_cast<double>(trampoline_bytes);
}
BENCHMARK(BM_ApplyUndoCycle);

// Scale reference: a "reboot" — rebuilding, relinking, booting and
// re-initializing the kernel — versus the sub-millisecond hot update.
void BM_SimulatedReboot(benchmark::State& state) {
  for (auto _ : state) {
    ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
    if (!machine.ok()) {
      state.SkipWithError("boot failed");
      return;
    }
    benchmark::DoNotOptimize(machine);
  }
}
BENCHMARK(BM_SimulatedReboot);

}  // namespace

BENCHMARK_MAIN();
