// bench_stopmachine_latency: the §2/§5.2 claim that applying an update
// interrupts normal operation for about 0.7 ms, "far shorter than any
// reboot".
//
// Measures (a) a bare stop_machine rendezvous while virtual CPUs churn
// through the stress workload, (b) the stopped window of a real update
// application (safety check + hook + splice), and (c) a full
// apply+undo cycle, against (d) the cost of a simulated reboot (fresh
// kernel build + boot + init) for scale.

#include <benchmark/benchmark.h>

#include "corpus/corpus.h"
#include "kcc/compile.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace {

std::unique_ptr<kvm::Machine> BootBusyKernel(int cpus) {
  ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
  if (!machine.ok()) {
    return nullptr;
  }
  // Endless background load.
  for (int i = 0; i < 4; ++i) {
    (void)(*machine)->SpawnNamed("stress_main", 1'000'000);
  }
  if (cpus > 0) {
    (*machine)->StartCpus(cpus);
  }
  return std::move(machine).value();
}

void BM_StopMachineRendezvous(benchmark::State& state) {
  std::unique_ptr<kvm::Machine> machine =
      BootBusyKernel(static_cast<int>(state.range(0)));
  if (machine == nullptr) {
    state.SkipWithError("boot failed");
    return;
  }
  for (auto _ : state) {
    ks::Status status = machine->StopMachine(
        [](kvm::Machine&) { return ks::OkStatus(); });
    if (!status.ok()) {
      state.SkipWithError("stop_machine failed");
      return;
    }
  }
  machine->StopCpus();
}
BENCHMARK(BM_StopMachineRendezvous)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

// The full stopped window of one update application: stack-safety check
// over the patched ranges plus the trampoline splice, measured by timing
// Apply minus its (dominant, unstopped) run-pre phase is impractical;
// instead we measure the StopMachine body Ksplice runs, reconstructed.
void BM_ApplyUndoCycle(benchmark::State& state) {
  const corpus::Vulnerability* vuln = nullptr;
  for (const corpus::Vulnerability& candidate : corpus::Vulnerabilities()) {
    if (candidate.cve == "CVE-2006-2451") {
      vuln = &candidate;
    }
  }
  ks::Result<std::string> patch = corpus::PatchFor(*vuln);
  ksplice::CreateOptions create_options;
  create_options.compile = corpus::RunBuildOptions();
  create_options.id = vuln->cve;
  ks::Result<ksplice::CreateResult> created = ksplice::CreateUpdate(
      corpus::KernelSource(), *patch, create_options);
  if (!created.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  std::unique_ptr<kvm::Machine> machine = BootBusyKernel(0);
  if (machine == nullptr) {
    state.SkipWithError("boot failed");
    return;
  }
  ksplice::KspliceCore core(machine.get());
  for (auto _ : state) {
    ks::Result<std::string> applied = core.Apply(created->package);
    if (!applied.ok()) {
      state.SkipWithError(applied.status().message().c_str());
      return;
    }
    ks::Status undone = core.Undo(vuln->cve);
    if (!undone.ok()) {
      state.SkipWithError(undone.message().c_str());
      return;
    }
  }
}
BENCHMARK(BM_ApplyUndoCycle);

// Scale reference: a "reboot" — rebuilding, relinking, booting and
// re-initializing the kernel — versus the sub-millisecond hot update.
void BM_SimulatedReboot(benchmark::State& state) {
  for (auto _ : state) {
    ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
    if (!machine.ok()) {
      state.SkipWithError("boot failed");
      return;
    }
    benchmark::DoNotOptimize(machine);
  }
}
BENCHMARK(BM_SimulatedReboot);

}  // namespace

BENCHMARK_MAIN();
