// bench_table1_custom_code: reproduces Table 1, "Patches that cannot be
// applied without new code" — the eight fixes that change the semantics
// of persistent data structures, with the amount of custom code each
// revised patch carries.
//
// For each entry this bench also *demonstrates* the classification: the
// original fix either fails ksplice-create's data gate, or applies yet
// leaves the exploit working (stale initialized state), which is exactly
// why a programmer must supply ksplice_apply custom code.

#include <cstdio>

#include "corpus/corpus.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"

namespace {

// Changed lines in the amended patch minus the original: the "new code".
int MeasuredNewLines(const corpus::Vulnerability& vuln) {
  ks::Result<std::string> original = corpus::PatchFor(vuln);
  ks::Result<std::string> amended = corpus::AmendedPatchFor(vuln);
  if (!original.ok() || !amended.ok()) {
    return -1;
  }
  ks::Result<kdiff::Patch> a = kdiff::ParseUnifiedDiff(*amended);
  if (!a.ok()) {
    return -1;
  }
  int added = 0;
  for (const kdiff::FilePatch& file : a->files) {
    for (const kdiff::Hunk& hunk : file.hunks) {
      for (const std::string& line : hunk.lines) {
        if (line[0] == '+') {
          ++added;
        }
      }
    }
  }
  return added;
}

}  // namespace

int main() {
  std::printf("=== Table 1: patches that cannot be applied without new "
              "code ===\n\n");
  std::printf("%-15s %-22s %10s %9s %-28s\n", "CVE", "reason",
              "paper-new", "ours-new", "why custom code is needed");

  int count = 0;
  int total_paper_lines = 0;
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    if (!vuln.needs_custom_code) {
      continue;
    }
    ++count;
    total_paper_lines += vuln.custom_code_lines;

    // Demonstrate why the original patch is insufficient.
    const char* why = "?";
    ksplice::CreateOptions create_options;
    create_options.compile = corpus::RunBuildOptions();
    create_options.id = vuln.cve;
    ks::Result<std::string> patch = corpus::PatchFor(vuln);
    if (patch.ok()) {
      ks::Result<ksplice::CreateResult> created = ksplice::CreateUpdate(
          corpus::KernelSource(), *patch, create_options);
      if (!created.ok() &&
          created.status().code() == ks::ErrorCode::kFailedPrecondition) {
        why = "create rejects data change";
      } else if (created.ok()) {
        // Applies, but the live state stays wrong: exploit survives.
        ks::Result<std::unique_ptr<kvm::Machine>> machine =
            corpus::BootKernel();
        if (machine.ok()) {
          ksplice::KspliceCore core(machine->get());
          if (core.Apply(created->package).ok()) {
            ks::Result<bool> still =
                corpus::RunExploit(**machine, vuln);
            why = (still.ok() && *still) ? "applies, exploit survives"
                                         : "applies (state-dependent)";
          }
        }
      }
    }
    std::printf("%-15s %-22s %9dl %8dl %-28s\n", vuln.cve.c_str(),
                vuln.adds_struct_field ? "adds field to struct"
                                       : "changes data init",
                vuln.custom_code_lines, MeasuredNewLines(vuln), why);
  }
  std::printf("\n--- Shape check (measured vs paper) ---\n");
  std::printf("entries          : %d      (paper: 8)\n", count);
  std::printf("paper line total : %d    (34+10+1+1+14+4+20+48)\n",
              total_paper_lines);
  std::printf("paper line mean  : %.1f   (paper: ~17 per patch)\n",
              count > 0 ? static_cast<double>(total_paper_lines) / count
                        : 0.0);
  return count == 8 ? 0 : 1;
}
