// bench_trampoline_overhead: the §2 claim that "calls to the replaced
// functions will take a few cycles longer because of the inserted jump
// instructions" and that replacement code costs a small amount of memory.
//
// Builds a kernel with a call-heavy loop, measures virtual instructions
// per call before and after hot-patching the callee, and reports the
// delta (the trampoline costs exactly one jmp32 per invocation on KVX).
// Also reports the module-arena bytes an applied update occupies with and
// without the helper image (§5.1).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace {

const char* kKernel = R"(
int sink = 0;
int work_item(int x) {
  sink = sink + x;
  if (sink > 1000000) {
    sink = 0;
  }
  sink = sink ^ x;
  sink = sink + 3;
  sink = sink * 2;
  sink = sink - x;
  if (sink < 0) {
    sink = 1;
  }
  return sink;
}
void hot_loop(int n) {
  int i = 0;
  while (i < n) {
    work_item(i);
    i++;
  }
  record(700, sink);
}
)";

kcc::CompileOptions Options() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

std::unique_ptr<kvm::Machine> BootLoopKernel() {
  kdiff::SourceTree tree;
  tree.Write("loop.kc", kKernel);
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, Options());
  if (!objects.ok()) {
    return nullptr;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  return machine.ok() ? std::move(machine).value() : nullptr;
}

// Virtual instructions consumed by hot_loop(n).
uint64_t TicksPerLoop(kvm::Machine& machine, int n) {
  uint64_t before = machine.Ticks();
  if (!machine.SpawnNamed("hot_loop", static_cast<uint32_t>(n)).ok() ||
      !machine.RunToCompletion().ok()) {
    return 0;
  }
  return machine.Ticks() - before;
}

void BM_CallPatchedVsUnpatched(benchmark::State& state) {
  std::unique_ptr<kvm::Machine> machine = BootLoopKernel();
  if (machine == nullptr) {
    state.SkipWithError("boot failed");
    return;
  }
  constexpr int kCalls = 10'000;
  uint64_t unpatched = TicksPerLoop(*machine, kCalls);

  // Patch work_item (semantics-preserving tweak that defeats byte
  // equality: reorder the arithmetic).
  kdiff::SourceTree tree;
  tree.Write("loop.kc", kKernel);
  kdiff::SourceTree post = tree;
  std::string contents = *tree.Read("loop.kc");
  size_t at = contents.find("  sink = sink + 3;\n  sink = sink * 2;");
  if (at == std::string::npos) {
    state.SkipWithError("edit anchor missing");
    return;
  }
  contents.replace(at,
                   std::string("  sink = sink + 3;\n  sink = sink * 2;")
                       .size(),
                   "  sink = sink * 2;\n  sink = sink + 6;");
  post.Write("loop.kc", contents);

  ksplice::CreateOptions create_options;
  create_options.compile = Options();
  create_options.id = "tramp-bench";
  ks::Result<ksplice::CreateResult> created = ksplice::CreateUpdate(
      tree, kdiff::MakeUnifiedDiff(tree, post), create_options);
  if (!created.ok()) {
    state.SkipWithError(created.status().message().c_str());
    return;
  }
  ksplice::KspliceCore core(machine.get());
  uint32_t arena_before = machine->ModuleArenaBytesInUse();
  ksplice::ApplyOptions apply_options;
  apply_options.keep_helper = true;
  ks::Result<ksplice::ApplyReport> applied =
      core.Apply(created->package, apply_options);
  if (!applied.ok()) {
    state.SkipWithError(applied.status().message().c_str());
    return;
  }
  uint32_t arena_with_helper = machine->ModuleArenaBytesInUse();
  (void)core.UnloadHelper("tramp-bench");
  uint32_t arena_primary_only = machine->ModuleArenaBytesInUse();

  uint64_t patched = TicksPerLoop(*machine, kCalls);

  // Wall-clock measurement of the patched loop, per call.
  for (auto _ : state) {
    uint64_t ticks = TicksPerLoop(*machine, kCalls);
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["vticks/call unpatched"] =
      static_cast<double>(unpatched) / kCalls;
  state.counters["vticks/call patched"] =
      static_cast<double>(patched) / kCalls;
  state.counters["vticks/call overhead"] =
      static_cast<double>(patched - unpatched) / kCalls;
  state.counters["arena bytes w/ helper"] = arena_with_helper - arena_before;
  state.counters["arena bytes primary"] = arena_primary_only - arena_before;
}
BENCHMARK(BM_CallPatchedVsUnpatched)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
