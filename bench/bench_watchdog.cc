// bench_watchdog: what the post-apply safety net costs and how fast it
// catches a bad patch.
//
// Two experiments on corpus kernels:
//
//  1. Soak overhead — a patched machine runs the corpus stress workload
//     under a HealthMonitor at several sampling granularities, against a
//     no-monitor baseline over the same tick budget. The table reports
//     wall time, sampling passes, and the overhead factor: the paper's
//     "no disruptive effects" claim extended past the apply window to
//     continuous health monitoring.
//
//  2. Detection/revert drill — a deliberately bad patch (a BUG() armed in
//     the replacement code) applies cleanly, regresses under load inside
//     the soak window, and must be attributed, auto-reverted, and
//     quarantined. The bench reports detection latency (machine ticks
//     from soak start to attribution) and revert wall time, and exits
//     nonzero unless the machine ends byte-identical to its pre-apply
//     image with the package quarantined — the same invariant the tests
//     assert, measured instead of mocked.
//
// --report-dir=DIR writes the drill's WatchdogReport JSON plus a metrics
// snapshot (ksplice.watchdog.*).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "corpus/corpus.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "ksplice/quarantine.h"
#include "ksplice/watchdog.h"
#include "kvm/machine.h"

namespace {

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<uint8_t> KernelImage(const kvm::Machine& machine) {
  ks::Result<std::vector<uint8_t>> bytes = machine.ReadBytes(
      machine.config().kernel_base,
      machine.kernel_end() - machine.config().kernel_base);
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

ks::Result<ksplice::UpdatePackage> BuildCorpusPackage(const char* cve) {
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    if (vuln.cve != cve) {
      continue;
    }
    KS_ASSIGN_OR_RETURN(std::string patch, corpus::PatchFor(vuln));
    ksplice::CreateOptions options;
    options.compile = corpus::RunBuildOptions();
    options.compile.cache = &corpus::SharedObjectCache();
    options.id = vuln.cve;
    KS_ASSIGN_OR_RETURN(
        ksplice::CreateResult created,
        ksplice::CreateUpdate(corpus::KernelSource(), patch, options));
    return std::move(created.package);
  }
  return ks::NotFound(std::string("no corpus entry for ") + cve);
}

// The drill kernel: alpha_op carries a BUG() behind a never-true guard;
// the bad patch rewrites the guard so the trap fires on every call.
kdiff::SourceTree DrillKernel() {
  kdiff::SourceTree tree;
  tree.Write("drill.kc", R"(
int drill_state = 100;
int drill_guard = 9999;
int drill_op(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  int e = d + 5; int f = e + 6; int g = f + 7; int h = g + 8;
  if (x == drill_guard) {
    BUG();
  }
  return a + b + c + d + e + f + g + h + drill_state;
}
void drill_load(int n) {
  int i = 0;
  while (i < n) {
    record(11, drill_op(i));
    i = i + 1;
  }
}
)");
  return tree;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--report-dir=", 0) == 0) {
      report_dir = arg.substr(13);
    }
  }

  // ---- 1. Soak overhead on a patched corpus kernel under stress.
  ks::Result<ksplice::UpdatePackage> package =
      BuildCorpusPackage("CVE-2008-0600");
  if (!package.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 package.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Watchdog soak overhead (corpus kernel, stress load) ===\n\n");
  std::printf("%14s %10s %10s %10s %10s\n", "sample ticks", "samples",
              "wall ms", "baseline", "overhead");

  constexpr uint64_t kSoakTicks = 2'000'000;
  // Baseline: same machine state, same tick budget, no monitor.
  double baseline_ms = 0.0;
  for (uint64_t sample_ticks : {uint64_t{0}, uint64_t{2'000},
                                uint64_t{10'000}, uint64_t{50'000}}) {
    ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
    if (!machine.ok()) {
      std::fprintf(stderr, "boot failed: %s\n",
                   machine.status().ToString().c_str());
      return 1;
    }
    ksplice::KspliceCore core(machine->get());
    ks::Result<ksplice::ApplyReport> applied = core.Apply(*package);
    if (!applied.ok()) {
      std::fprintf(stderr, "apply failed: %s\n",
                   applied.status().ToString().c_str());
      return 1;
    }
    // A persistent stress workload so the soak has something to run.
    if (!(*machine)->SpawnNamed("stress_main", 64).ok()) {
      std::fprintf(stderr, "stress spawn failed\n");
      return 1;
    }

    uint64_t start = NowNs();
    uint64_t samples = 0;
    if (sample_ticks == 0) {
      (void)(*machine)->Run(kSoakTicks);
    } else {
      ksplice::WatchdogOptions options;
      options.soak_ticks = kSoakTicks;
      options.sample_ticks = sample_ticks;
      ksplice::HealthMonitor monitor(&core.manager(), options);
      ksplice::WatchdogReport report = monitor.Soak();
      samples = report.samples;
      if (!report.reverts.empty()) {
        std::fprintf(stderr, "clean patch was reverted during soak\n");
        return 1;
      }
    }
    double wall_ms = static_cast<double>(NowNs() - start) / 1e6;
    if (sample_ticks == 0) {
      baseline_ms = wall_ms;
      std::printf("%14s %10s %10.2f %10s %10s\n", "none", "-", wall_ms, "-",
                  "-");
    } else {
      std::printf("%14llu %10llu %10.2f %10.2f %9.2fx\n",
                  static_cast<unsigned long long>(sample_ticks),
                  static_cast<unsigned long long>(samples), wall_ms,
                  baseline_ms,
                  baseline_ms > 0.0 ? wall_ms / baseline_ms : 0.0);
    }
  }

  // ---- 2. Detection/revert drill: bad patch under load.
  std::printf("\n=== Detection drill: bad patch, BUG() under load ===\n");
  ks::Metrics().ResetAll();
  kdiff::SourceTree tree = DrillKernel();
  kdiff::SourceTree post = tree;
  std::string contents = *tree.Read("drill.kc");
  const std::string from = "x == drill_guard";
  size_t at = contents.find(from);
  if (at == std::string::npos) {
    std::fprintf(stderr, "drill source out of sync\n");
    return 1;
  }
  contents.replace(at, from.size(), "x >= 0");
  post.Write("drill.kc", contents);

  kcc::CompileOptions compile;
  compile.function_sections = false;
  compile.data_sections = false;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, compile);
  if (!objects.ok()) {
    std::fprintf(stderr, "drill build failed\n");
    return 1;
  }
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), {});
  if (!machine.ok()) {
    std::fprintf(stderr, "drill boot failed\n");
    return 1;
  }
  const std::vector<uint8_t> pristine = KernelImage(**machine);

  ksplice::CreateOptions create_options;
  create_options.compile = compile;
  create_options.id = "bad-drill";
  ks::Result<ksplice::CreateResult> bad = ksplice::CreateUpdate(
      tree, kdiff::MakeUnifiedDiff(tree, post), create_options);
  if (!bad.ok()) {
    std::fprintf(stderr, "drill create failed: %s\n",
                 bad.status().ToString().c_str());
    return 1;
  }
  const uint64_t bad_hash = ksplice::PackageContentHash(bad->package);

  ksplice::KspliceCore core(machine->get());
  ks::Result<ksplice::ApplyReport> applied = core.Apply(bad->package);
  if (!applied.ok()) {
    std::fprintf(stderr, "drill apply failed: %s\n",
                 applied.status().ToString().c_str());
    return 1;
  }
  if (!(*machine)->SpawnNamed("drill_load", 64).ok()) {
    std::fprintf(stderr, "drill load spawn failed\n");
    return 1;
  }

  ksplice::WatchdogOptions drill_options;
  drill_options.soak_ticks = 500'000;
  drill_options.sample_ticks = 5'000;
  ksplice::HealthMonitor monitor(&core.manager(), drill_options);
  uint64_t start = NowNs();
  ksplice::WatchdogReport report = monitor.Soak();
  uint64_t wall_ns = NowNs() - start;

  if (!report_dir.empty()) {
    std::ofstream out(report_dir + "/watchdog-drill.json");
    out << report.ToJson() << "\n";
    (void)ks::Metrics().WriteJson(report_dir + "/metrics.json");
  }

  int violations = 0;
  if (report.faults_attributed == 0 || report.attributed.empty()) {
    std::fprintf(stderr, "regression was not attributed\n");
    ++violations;
  }
  if (report.reverts.size() != 1 || !report.reverts[0].reverted) {
    std::fprintf(stderr, "bad patch was not auto-reverted\n");
    ++violations;
  } else if (KernelImage(**machine) != pristine) {
    std::fprintf(stderr, "revert was not byte-identical\n");
    ++violations;
  }
  if (!core.quarantine().Contains(bad_hash)) {
    std::fprintf(stderr, "package was not quarantined\n");
    ++violations;
  }
  if (!core.applied().empty()) {
    std::fprintf(stderr, "registry not empty after revert\n");
    ++violations;
  }

  uint64_t detect_tick =
      report.attributed.empty() ? 0 : report.attributed[0].tick;
  int attempts = report.reverts.empty() ? 0 : report.reverts[0].attempts;
  std::printf("detected at tick %llu of a %llu-tick window (%llu samples); "
              "reverted in %d attempt(s), %.2f ms soak wall; %s\n",
              static_cast<unsigned long long>(detect_tick),
              static_cast<unsigned long long>(drill_options.soak_ticks),
              static_cast<unsigned long long>(report.samples), attempts,
              static_cast<double>(wall_ns) / 1e6,
              violations == 0
                  ? "machine byte-identical, package quarantined"
                  : "SAFETY-NET VIOLATIONS — see stderr");
  return violations == 0 ? 0 : 1;
}
