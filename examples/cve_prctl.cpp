// The paper's running example (§5): hot-fixing the prctl vulnerability
// CVE-2006-2451 on a live kernel, with the exploit demonstrably working
// before the update and failing after — the §6.2 success criterion.
//
// This drives the full corpus kernel (the miniature Linux used by the
// evaluation benches) rather than a toy, so the update goes through
// run-pre matching against a multi-unit monolithic image.

#include <cstdio>

#include "corpus/corpus.h"
#include "ksplice/core.h"
#include "ksplice/create.h"

int main() {
  // Find the CVE in the corpus.
  const corpus::Vulnerability* vuln = nullptr;
  for (const corpus::Vulnerability& candidate : corpus::Vulnerabilities()) {
    if (candidate.cve == "CVE-2006-2451") {
      vuln = &candidate;
    }
  }
  if (vuln == nullptr) {
    return 1;
  }
  std::printf("%s: %s\n\n", vuln->cve.c_str(), vuln->summary.c_str());

  ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
  if (!machine.ok()) {
    std::printf("boot failed: %s\n", machine.status().ToString().c_str());
    return 1;
  }
  std::printf("kernel booted; %zu symbols in kallsyms\n",
              (*machine)->Kallsyms().size());

  // Run the public exploit (prctl(PR_SET_DUMPABLE, 2) + core dump).
  ks::Result<bool> before = corpus::RunExploit(**machine, *vuln);
  if (!before.ok()) {
    return 1;
  }
  std::printf("exploit before update: %s\n",
              *before ? "ROOT SHELL (uid 0)" : "blocked");

  // user:~$ ksplice-create --patch=prctl ~/src
  ks::Result<std::string> patch = corpus::PatchFor(*vuln);
  if (!patch.ok()) {
    return 1;
  }
  std::printf("\nuser:~$ ksplice-create --patch=prctl ~/src\n");
  ksplice::CreateOptions create_options;
  create_options.compile = corpus::RunBuildOptions();
  ks::Result<ksplice::CreateResult> update =
      ksplice::CreateUpdate(corpus::KernelSource(), *patch, create_options);
  if (!update.ok()) {
    std::printf("create failed: %s\n", update.status().ToString().c_str());
    return 1;
  }
  std::printf("Ksplice update tarball written to %s.tar.gz (%zu bytes)\n",
              update->package.id.c_str(),
              update->package.Serialize().size());

  // root:/home/user# ksplice-apply ./ksplice-xxxxxx.tar.gz
  std::printf("\nroot:/home/user# ksplice-apply ./%s.tar.gz\n",
              update->package.id.c_str());
  ksplice::KspliceCore core(machine->get());
  ks::Result<ksplice::ApplyReport> applied = core.Apply(update->package);
  if (!applied.ok()) {
    std::printf("apply failed: %s\n", applied.status().ToString().c_str());
    return 1;
  }
  std::printf("Done!\n\n");

  // The same exploit, same running kernel, new thread:
  ks::Result<bool> after = corpus::RunExploit(**machine, *vuln);
  if (!after.ok()) {
    return 1;
  }
  std::printf("exploit after update : %s\n",
              *after ? "ROOT SHELL (uid 0)  <-- BUG" : "blocked");

  // And the machine keeps serving its normal workload.
  ks::Status stress = corpus::RunStress(**machine, 1);
  std::printf("stress workload      : %s\n",
              stress.ok() ? "clean" : stress.ToString().c_str());

  return (*before && !*after && stress.ok()) ? 0 : 1;
}
