// The paper's concluding vision (§8): "One could use Ksplice to create hot
// update packages for common starting kernel configurations. People who
// subscribe their systems to these updates would be able to transparently
// receive kernel hot updates..."
//
// This example plays distributor and fleet operator with the fleet API
// (src/fleet). The distributor builds ONE update package for
// CVE-2008-0600 (the vmsplice local root) and serializes it to bytes —
// the downloadable artifact. The operator runs a mixed-release fleet:
// eight machines spread across the corpus kernel line, each busy with its
// own workload, two already carrying an older hot update (the prctl fix)
// on their stacks. Every machine is exploited first, then the artifact is
// rolled out canary wave first via fleet::RunRollout, and every machine
// is re-checked — no reboots, no lost state, pre-applied stacks intact.

#include <cstdio>

#include "corpus/corpus.h"
#include "fleet/fleet.h"
#include "fleet/rollout.h"
#include "ksplice/core.h"
#include "ksplice/create.h"

namespace {

const corpus::Vulnerability* FindVuln(const char* cve) {
  for (const corpus::Vulnerability& candidate : corpus::Vulnerabilities()) {
    if (candidate.cve == cve) {
      return &candidate;
    }
  }
  return nullptr;
}

ks::Result<ksplice::UpdatePackage> BuildPackage(
    const corpus::Vulnerability& vuln, const char* id) {
  KS_ASSIGN_OR_RETURN(std::string patch, corpus::PatchFor(vuln));
  ksplice::CreateOptions options;
  options.compile = corpus::RunBuildOptions();
  options.id = id;
  KS_ASSIGN_OR_RETURN(
      ksplice::CreateResult created,
      ksplice::CreateUpdate(corpus::KernelSource(), patch, options));
  return std::move(created.package);
}

}  // namespace

int main() {
  const corpus::Vulnerability* vmsplice = FindVuln("CVE-2008-0600");
  const corpus::Vulnerability* prctl = FindVuln("CVE-2006-2451");
  if (vmsplice == nullptr || prctl == nullptr) {
    std::printf("corpus entries missing\n");
    return 1;
  }

  // --- distributor side ---------------------------------------------------
  ks::Result<ksplice::UpdatePackage> built =
      BuildPackage(*vmsplice, "ksplice-vmsplice-fix");
  if (!built.ok()) {
    std::printf("create failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> artifact = built->Serialize();
  std::printf("distributor: built ksplice-vmsplice-fix for %s (%zu bytes)\n\n",
              vmsplice->cve.c_str(), artifact.size());

  // An older advisory some subscribers already installed.
  ks::Result<ksplice::UpdatePackage> older =
      BuildPackage(*prctl, "ksplice-prctl-fix");
  if (!older.ok()) {
    std::printf("create failed: %s\n", older.status().ToString().c_str());
    return 1;
  }

  // --- fleet operator side ------------------------------------------------
  // Eight subscribers across the release line, each with its own uptime
  // and in-flight workload; machines 0 and 1 already run the prctl fix.
  const std::vector<corpus::KernelVersion>& versions =
      corpus::KernelVersions();
  fleet::Fleet fleet;
  for (int i = 0; i < 8; ++i) {
    size_t release = static_cast<size_t>(i) % versions.size();
    ks::Result<std::unique_ptr<kvm::Machine>> machine =
        corpus::BootKernelVersion(release, 4u << 20);
    if (!machine.ok()) {
      std::printf("machine %d: boot failed: %s\n", i,
                  machine.status().ToString().c_str());
      return 1;
    }
    for (int w = 0; w <= i; ++w) {
      if (!(*machine)->SpawnNamed("stress_main", 1).ok()) {
        std::printf("machine %d: workload spawn failed\n", i);
        return 1;
      }
    }
    ks::Status ran = (*machine)->Run(5'000 * (i + 1));
    if (!ran.ok()) {
      std::printf("machine %d: workload run failed: %s\n", i,
                  ran.ToString().c_str());
      return 1;
    }
    fleet::NodeSpec spec;
    spec.id = "machine-" + std::to_string(i);
    spec.version = versions[release].name;
    ks::Status added = fleet.AddNode(std::move(spec), std::move(*machine));
    if (!added.ok()) {
      std::printf("machine %d: fleet registration failed: %s\n", i,
                  added.ToString().c_str());
      return 1;
    }
    // Stacking state lives in each node's KspliceCore, so pre-existing
    // updates go through the fleet's core — the rollout will see them.
    if (i < 2) {
      ks::Result<ksplice::ApplyReport> stacked =
          fleet.core(fleet.size() - 1).Apply(*older);
      if (!stacked.ok()) {
        std::printf("machine %d: pre-applying %s failed: %s\n", i,
                    older->id.c_str(), stacked.status().ToString().c_str());
        return 1;
      }
    }
  }

  // Every subscriber is vulnerable today.
  std::vector<uint64_t> uptime(fleet.size());
  std::vector<bool> rooted(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    uptime[i] = fleet.machine(i).Ticks();
    ks::Result<bool> before = corpus::RunExploit(fleet.machine(i), *vmsplice);
    if (!before.ok()) {
      std::printf("machine %zu: exploit run failed: %s\n", i,
                  before.status().ToString().c_str());
      return 1;
    }
    rooted[i] = *before;
  }

  // The subscribers download and parse the artifact; the operator rolls
  // it out: one canary, then waves of three.
  ks::Result<ksplice::UpdatePackage> downloaded =
      ksplice::UpdatePackage::Parse(artifact);
  if (!downloaded.ok()) {
    std::printf("artifact parse failed: %s\n",
                downloaded.status().ToString().c_str());
    return 1;
  }
  std::vector<ksplice::UpdatePackage> packages = {*downloaded};
  fleet::RolloutPlan plan;
  plan.canary_fraction = 0.0;
  plan.canary_min = 1;
  plan.wave_size = 3;
  plan.max_in_flight = 2;
  ks::Result<ksplice::RolloutReport> rollout =
      fleet::RunRollout(fleet, packages, plan);
  if (!rollout.ok()) {
    std::printf("rollout failed: %s\n",
                rollout.status().ToString().c_str());
    return 1;
  }
  std::printf("rollout: %u wave(s), %u patched, pause p99 %.3f ms\n\n",
              rollout->waves, rollout->patched,
              static_cast<double>(rollout->pause_p99_ns) / 1e6);

  // Re-check every machine: exploit blocked, workload clean, pre-applied
  // stacks still in place underneath the new update.
  int protected_count = 0;
  for (size_t i = 0; i < fleet.size(); ++i) {
    const std::string& id = fleet.spec(i).id;
    ks::Result<bool> after = corpus::RunExploit(fleet.machine(i), *vmsplice);
    if (!after.ok()) {
      std::printf("%s: exploit re-run failed: %s\n", id.c_str(),
                  after.status().ToString().c_str());
      return 1;
    }
    ks::Status drained = fleet.machine(i).RunToCompletion();
    if (!drained.ok()) {
      std::printf("%s: workload drain failed: %s\n", id.c_str(),
                  drained.ToString().c_str());
      return 1;
    }
    std::vector<std::string> stack = fleet.core(i).AppliedIds();
    bool stacked_ok =
        i >= 2 || (stack.size() == 2 && stack[0] == "ksplice-prctl-fix");
    bool ok = rooted[i] && !*after && fleet.machine(i).Faults().empty() &&
              stacked_ok;
    if (ok) {
      ++protected_count;
    }
    std::printf(
        "%s (%s): uptime %8llu ticks | exploit %s -> rollout -> exploit "
        "%s | workload %s | stack %zu update(s)%s\n",
        id.c_str(), fleet.spec(i).version.c_str(),
        static_cast<unsigned long long>(uptime[i]),
        rooted[i] ? "ROOT" : "?   ", !*after ? "blocked" : "ROOT?!",
        fleet.machine(i).Faults().empty() ? "clean" : "FAULTED",
        stack.size(), stacked_ok ? "" : " (STACK DAMAGED)");
  }

  std::printf("\n%d/%zu subscribers protected without a single reboot\n",
              protected_count, fleet.size());
  return protected_count == static_cast<int>(fleet.size()) ? 0 : 1;
}
