// The paper's concluding vision (§8): "One could use Ksplice to create hot
// update packages for common starting kernel configurations. People who
// subscribe their systems to these updates would be able to transparently
// receive kernel hot updates..."
//
// This example plays distributor and subscribers: it creates ONE update
// package for CVE-2008-0600 (the vmsplice local root), serializes it to
// bytes (the downloadable artifact), then "ships" it to a fleet of
// independently-booted kernels, each busy with its own workload. Every
// machine is exploited first, hot-updated in place, and re-checked —
// no reboots, no lost state.

#include <cstdio>

#include "corpus/corpus.h"
#include "ksplice/core.h"
#include "ksplice/create.h"

int main() {
  const corpus::Vulnerability* vuln = nullptr;
  for (const corpus::Vulnerability& candidate : corpus::Vulnerabilities()) {
    if (candidate.cve == "CVE-2008-0600") {
      vuln = &candidate;
    }
  }
  if (vuln == nullptr) {
    return 1;
  }

  // --- distributor side ---------------------------------------------------
  ks::Result<std::string> patch = corpus::PatchFor(*vuln);
  if (!patch.ok()) {
    return 1;
  }
  ksplice::CreateOptions options;
  options.compile = corpus::RunBuildOptions();
  options.id = "ksplice-vmsplice-fix";
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(corpus::KernelSource(), *patch, options);
  if (!created.ok()) {
    std::printf("create failed: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> artifact = created->package.Serialize();
  std::printf("distributor: built %s for %s (%zu bytes)\n\n",
              options.id.c_str(), vuln->cve.c_str(), artifact.size());

  // --- subscriber side ------------------------------------------------------
  constexpr int kFleet = 5;
  int protected_count = 0;
  for (int machine_id = 0; machine_id < kFleet; ++machine_id) {
    ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
    if (!machine.ok()) {
      return 1;
    }
    // Each subscriber has its own uptime and in-flight workload.
    for (int i = 0; i <= machine_id; ++i) {
      (void)(*machine)->SpawnNamed("stress_main", 1);
    }
    (void)(*machine)->Run(5'000 * (machine_id + 1));
    uint64_t uptime = (*machine)->Ticks();

    ks::Result<bool> before = corpus::RunExploit(**machine, *vuln);
    // The subscriber downloads and parses the artifact, then applies it.
    ks::Result<ksplice::UpdatePackage> pkg =
        ksplice::UpdatePackage::Parse(artifact);
    if (!pkg.ok()) {
      return 1;
    }
    ksplice::KspliceCore core(machine->get());
    ks::Result<ksplice::ApplyReport> applied = core.Apply(*pkg);
    ks::Result<bool> after = corpus::RunExploit(**machine, *vuln);
    ks::Status drained = (*machine)->RunToCompletion();

    bool ok = before.ok() && *before && applied.ok() && after.ok() &&
              !*after && drained.ok() && (*machine)->Faults().empty();
    if (ok) {
      ++protected_count;
    }
    std::printf(
        "machine %d: uptime %8llu ticks | exploit %s -> applied -> "
        "exploit %s | workload %s\n",
        machine_id, static_cast<unsigned long long>(uptime),
        before.ok() && *before ? "ROOT" : "?   ",
        after.ok() && !*after ? "blocked" : "ROOT?!",
        drained.ok() && (*machine)->Faults().empty() ? "clean" : "FAULTED");
  }

  std::printf("\n%d/%d subscribers protected without a single reboot\n",
              protected_count, kFleet);
  return protected_count == kFleet ? 0 : 1;
}
