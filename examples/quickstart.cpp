// Quickstart: hot-patch a running simulated kernel in ~80 lines.
//
//   1. Write a tiny kernel in KC and boot it (monolithic build, like a
//      distribution kernel).
//   2. Observe the buggy behaviour from a kernel thread.
//   3. ksplice-create: turn a unified-diff source patch into an update
//      package (pre-post differencing, §3).
//   4. ksplice-apply: run-pre match, load the primary module, splice the
//      trampoline under stop_machine (§4, §5).
//   5. Observe the fixed behaviour — no reboot, state preserved.
//   6. ksplice-undo: reverse it.

#include <cstdio>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace {

const char* kKernelSource = R"(
int boot_count = 0;

int answer() {
  return 41;            /* off by one! */
}

void probe(int unused) {
  boot_count = boot_count + 1;
  record(1, answer());
}
)";

#define CHECK_OK(expr)                                        \
  do {                                                        \
    const auto& check_result_ = (expr);                       \
    if (!check_result_.ok()) {                                \
      std::printf("FAILED: %s\n",                             \
                  check_result_.status().ToString().c_str()); \
      return 1;                                               \
    }                                                         \
  } while (0)

}  // namespace

int main() {
  // --- 1. Build and boot -------------------------------------------------
  kdiff::SourceTree tree;
  tree.Write("kernel.kc", kKernelSource);
  kcc::CompileOptions build;  // monolithic: no -ffunction-sections
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, build);
  CHECK_OK(objects);
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(*objects, config);
  CHECK_OK(machine);
  std::printf("booted: kernel image ends at 0x%08x\n",
              (*machine)->kernel_end());

  // --- 2. Observe the bug -----------------------------------------------
  CHECK_OK((*machine)->SpawnNamed("probe", 0));
  CHECK_OK((*machine)->RunToCompletion());
  std::printf("before update: answer() == %u\n",
              (*machine)->RecordsWithKey(1).back());

  // --- 3. ksplice-create --------------------------------------------------
  kdiff::SourceTree fixed = tree;
  std::string src = *tree.Read("kernel.kc");
  src.replace(src.find("return 41;"), 10, "return 42;");
  fixed.Write("kernel.kc", src);
  std::string patch = kdiff::MakeUnifiedDiff(tree, fixed);
  std::printf("\nthe patch:\n%s\n", patch.c_str());

  ksplice::CreateOptions create_options;
  create_options.compile = build;
  ks::Result<ksplice::CreateResult> update =
      ksplice::CreateUpdate(tree, patch, create_options);
  CHECK_OK(update);
  std::printf("ksplice update %s written (%zu bytes, %zu target function)\n",
              update->package.id.c_str(),
              update->package.Serialize().size(),
              update->package.targets.size());

  // --- 4. ksplice-apply ----------------------------------------------------
  ksplice::KspliceCore core(machine->get());
  ks::Result<ksplice::ApplyReport> applied = core.Apply(update->package);
  CHECK_OK(applied);
  std::printf("applied %s without rebooting\n", applied->id.c_str());

  // --- 5. Fixed behaviour, state preserved --------------------------------
  CHECK_OK((*machine)->SpawnNamed("probe", 0));
  CHECK_OK((*machine)->RunToCompletion());
  std::printf("after update : answer() == %u\n",
              (*machine)->RecordsWithKey(1).back());
  uint32_t boot_count_addr = *(*machine)->GlobalSymbol("boot_count");
  std::printf("boot_count   == %u  (state survived: no reboot happened)\n",
              *(*machine)->ReadWord(boot_count_addr));

  // --- 6. ksplice-undo -----------------------------------------------------
  ks::Result<ksplice::UndoReport> undone = core.Undo(applied->id);
  if (!undone.ok()) {
    std::printf("undo failed: %s\n", undone.status().ToString().c_str());
    return 1;
  }
  CHECK_OK((*machine)->SpawnNamed("probe", 0));
  CHECK_OK((*machine)->RunToCompletion());
  std::printf("after undo   : answer() == %u\n",
              (*machine)->RecordsWithKey(1).back());
  return 0;
}
