// Shadow data structures (§5.3, §7.1): applying CVE-2005-2709, whose
// upstream fix adds a field to struct ctl_entry — a change Ksplice cannot
// apply directly because existing instances would need to change layout.
//
// The walkthrough shows both halves of the paper's story:
//   - the ORIGINAL patch is rejected by ksplice-create's persistent-data
//     gate (the .bss section of the table changes size);
//   - the REVISED patch keeps the struct layout and tracks the new state
//     in shadow data structures attached to existing instances, with a
//     ksplice_apply hook that initializes shadows for instances that
//     already exist — the DynAMOS technique the paper adopts.

#include <cstdio>

#include "corpus/corpus.h"
#include "ksplice/core.h"
#include "ksplice/create.h"

int main() {
  const corpus::Vulnerability* vuln = nullptr;
  for (const corpus::Vulnerability& candidate : corpus::Vulnerabilities()) {
    if (candidate.cve == "CVE-2005-2709") {
      vuln = &candidate;
    }
  }
  if (vuln == nullptr) {
    return 1;
  }
  std::printf("%s: %s\n\n", vuln->cve.c_str(), vuln->summary.c_str());

  ks::Result<std::unique_ptr<kvm::Machine>> machine = corpus::BootKernel();
  if (!machine.ok()) {
    return 1;
  }
  ks::Result<bool> before = corpus::RunExploit(**machine, *vuln);
  std::printf("exploit before update: %s\n",
              before.ok() && *before ? "escalates to uid 0" : "blocked");

  // Attempt 1: the upstream patch (adds `int registered;` to the struct).
  ksplice::CreateOptions create_options;
  create_options.compile = corpus::RunBuildOptions();
  create_options.id = "sysctl-upstream";
  ks::Result<std::string> original = corpus::PatchFor(*vuln);
  ks::Result<ksplice::CreateResult> rejected = ksplice::CreateUpdate(
      corpus::KernelSource(), *original, create_options);
  std::printf("\nupstream patch (adds struct field):\n  ksplice-create: %s\n",
              rejected.ok() ? "accepted (unexpected!)"
                            : rejected.status().ToString().c_str());

  // Attempt 2: the revised patch — same struct, shadow state + hook.
  create_options.id = "sysctl-shadow";
  ks::Result<std::string> amended = corpus::AmendedPatchFor(*vuln);
  ks::Result<ksplice::CreateResult> update = ksplice::CreateUpdate(
      corpus::KernelSource(), *amended, create_options);
  if (!update.ok()) {
    std::printf("amended create failed: %s\n",
                update.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrevised patch (shadow data structures):\n"
              "  targets: %zu functions, hooks in package: yes\n",
              update->package.targets.size());

  ksplice::KspliceCore core(machine->get());
  ks::Result<ksplice::ApplyReport> applied = core.Apply(update->package);
  if (!applied.ok()) {
    std::printf("apply failed: %s\n", applied.status().ToString().c_str());
    return 1;
  }
  std::printf("  applied; ksplice_apply hook attached shadows to existing "
              "ctl_table entries\n\n");

  // The shadow registry now holds per-instance state the struct never had.
  uint32_t table = *(*machine)->GlobalSymbol("ctl_table");
  int shadows = 0;
  for (uint32_t i = 0; i < 8; ++i) {
    if ((*machine)->HostShadowGet(table + i * 12, 1).ok()) {
      ++shadows;
    }
  }
  std::printf("shadow registry: %d of 8 table entries carry shadow state\n",
              shadows);

  ks::Result<bool> after = corpus::RunExploit(**machine, *vuln);
  std::printf("exploit after update : %s\n",
              after.ok() && !*after ? "blocked" : "STILL WORKS");
  return (before.ok() && *before && after.ok() && !*after) ? 0 : 1;
}
