// Patching a previously-patched kernel (§5.4): a second hot update whose
// pre source is the previously-patched source. Run-pre matching for the
// twice-patched function compares against "the latest Ksplice replacement
// code already in the kernel", and undo unwinds LIFO.

#include <cstdio>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace {

const char* kKernel = R"(
int requests = 0;

int rate_limit(int load) {
  requests = requests + 1;
  if (load > 90) {
    return 0;          /* v0: shed everything over 90 */
  }
  return 1;
}

void probe(int load) {
  record(1, rate_limit(load));
}
)";

std::string Edit(const kdiff::SourceTree& tree, const std::string& from,
                 const std::string& to, kdiff::SourceTree* out) {
  *out = tree;
  std::string src = *tree.Read("kernel.kc");
  src.replace(src.find(from), from.size(), to);
  out->Write("kernel.kc", src);
  return kdiff::MakeUnifiedDiff(tree, *out);
}

uint32_t Probe(kvm::Machine& machine, uint32_t load) {
  (void)machine.SpawnNamed("probe", load);
  (void)machine.RunToCompletion();
  return machine.RecordsWithKey(1).back();
}

}  // namespace

int main() {
  kdiff::SourceTree v0;
  v0.Write("kernel.kc", kKernel);
  kcc::CompileOptions build;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(v0, build);
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(*objects, config);
  if (!machine.ok()) {
    return 1;
  }
  ksplice::KspliceCore core(machine->get());
  ksplice::CreateOptions create_options;
  create_options.compile = build;

  std::printf("v0: rate_limit(95) == %u\n", Probe(**machine, 95));

  // Update 1: threshold 90 -> 80, created against the v0 source.
  kdiff::SourceTree v1;
  std::string patch1 = Edit(v0, "if (load > 90) {", "if (load > 80) {", &v1);
  create_options.id = "update-1";
  ks::Result<ksplice::CreateResult> u1 =
      ksplice::CreateUpdate(v0, patch1, create_options);
  if (!u1.ok() || !core.Apply(u1->package).ok()) {
    std::printf("update-1 failed\n");
    return 1;
  }
  std::printf("v1 applied: rate_limit(85) == %u  (threshold now 80)\n",
              Probe(**machine, 85));

  // Update 2 is created against the PREVIOUSLY-PATCHED source (§5.4): the
  // pre build comes from v1, and run-pre matching verifies update-1's
  // replacement code in the live kernel.
  kdiff::SourceTree v2;
  std::string patch2 =
      Edit(v1, "return 0;          /* v0: shed everything over 90 */",
           "requests = requests - 1;\n    return 0;", &v2);
  create_options.id = "update-2";
  ks::Result<ksplice::CreateResult> u2 =
      ksplice::CreateUpdate(v1, patch2, create_options);
  if (!u2.ok()) {
    std::printf("update-2 create failed: %s\n",
                u2.status().ToString().c_str());
    return 1;
  }
  ks::Result<ksplice::ApplyReport> applied2 = core.Apply(u2->package);
  if (!applied2.ok()) {
    std::printf("update-2 apply failed: %s\n",
                applied2.status().ToString().c_str());
    return 1;
  }
  uint32_t requests_addr = *(*machine)->GlobalSymbol("requests");
  uint32_t before = *(*machine)->ReadWord(requests_addr);
  Probe(**machine, 99);  // shed: v2 refunds the request counter
  uint32_t after = *(*machine)->ReadWord(requests_addr);
  std::printf("v2 applied: shed request leaves counter unchanged (%u -> %u)\n",
              before, after);
  std::printf("applied updates: %zu (stacked)\n", core.applied().size());

  // Undo is LIFO: update-2, then update-1.
  if (!core.Undo("update-2").ok() || !core.Undo("update-1").ok()) {
    std::printf("undo failed\n");
    return 1;
  }
  std::printf("after undo x2: rate_limit(85) == %u  (v0 threshold back)\n",
              Probe(**machine, 85));
  return 0;
}
