#!/bin/sh
# Full verification: configure, build, test, run every bench and example.
# Set SANITIZE to instrument the build, e.g.:
#   SANITIZE="address;undefined" scripts/check.sh
# (scripts/check_tsan.sh covers -fsanitize=thread separately.)
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja ${SANITIZE:+"-DKSPLICE_SANITIZE=$SANITIZE"}
cmake --build build
ctest --test-dir build --output-on-failure
scripts/check_tidy.sh
for b in build/bench/bench_*; do echo "== $b =="; "$b"; done
for e in build/examples/quickstart build/examples/cve_prctl build/examples/shadow_struct build/examples/stacked_updates build/examples/fleet_update; do echo "== $e =="; "$e"; done

# Observability smoke: export the corpus, hot-apply one CVE fix under
# --trace/--metrics, and validate the emitted JSON files.
echo "== ksplice_tool observability smoke =="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
build/tools/ksplice_tool export-corpus "$obs_dir/corpus"
build/tools/ksplice_tool --trace="$obs_dir/trace.json" \
  --metrics="$obs_dir/metrics.json" \
  demo "$obs_dir/corpus/src" "$obs_dir/corpus/patches/CVE-2006-2451.patch" \
  xp_2006_2451
python3 - "$obs_dir" <<'EOF'
import json, sys
obs_dir = sys.argv[1]
trace = json.load(open(obs_dir + "/trace.json"))
names = {e["name"] for e in trace["traceEvents"]}
for span in ("create.update", "runpre.match_unit", "ksplice.apply"):
    assert span in names, f"missing trace span {span}: {sorted(names)}"
metrics = json.load(open(obs_dir + "/metrics.json"))
counters = metrics["counters"]
for key in ("kcc.units_compiled", "runpre.units_matched", "ksplice.applies"):
    assert counters.get(key, 0) > 0, f"counter {key} not populated: {counters}"
assert metrics["histograms"]["ksplice.stop_pause_ns"]["count"] > 0
print("trace + metrics JSON OK:",
      len(trace["traceEvents"]), "spans,", len(counters), "counters")
EOF

# Matcher-equivalence smoke: the indexed run-pre matcher (default) and the
# linear fallback (--no-index) must reach identical decisions; the index
# exists only to walk fewer bytes. Apply the same fix both ways and compare
# the runpre counters: same sections matched, same candidates tried, and
# the indexed mode must walk at least 10x fewer run bytes.
echo "== ksplice_tool matcher equivalence smoke =="
build/tools/ksplice_tool --metrics="$obs_dir/indexed-metrics.json" \
  demo "$obs_dir/corpus/src" "$obs_dir/corpus/patches/CVE-2006-2451.patch" \
  xp_2006_2451
build/tools/ksplice_tool --no-index \
  --metrics="$obs_dir/linear-metrics.json" \
  demo "$obs_dir/corpus/src" "$obs_dir/corpus/patches/CVE-2006-2451.patch" \
  xp_2006_2451
python3 - "$obs_dir" <<'EOF'
import json, sys
obs_dir = sys.argv[1]
indexed = json.load(open(obs_dir + "/indexed-metrics.json"))["counters"]
linear = json.load(open(obs_dir + "/linear-metrics.json"))["counters"]
for key in ("runpre.units_matched", "runpre.sections_matched",
            "runpre.bytes_matched", "runpre.candidates_tried"):
    assert indexed.get(key) == linear.get(key), \
        f"{key} differs: indexed={indexed.get(key)} linear={linear.get(key)}"
iw = indexed.get("runpre.pre_bytes_walked", 0)
lw = linear.get("runpre.pre_bytes_walked", 0)
assert lw > 0, f"linear matcher walked no pre bytes: {linear}"
assert iw * 10 <= lw, f"indexed walked {iw} bytes, linear {lw}: want >=10x less"
assert indexed.get("runpre.index.pre_bytes_canonicalized", 0) > 0, indexed
assert linear.get("runpre.index.hits", 0) == 0, linear
print("matcher equivalence OK:", indexed["runpre.sections_matched"],
      "sections both modes;", iw, "vs", lw, "pre bytes walked")
EOF

# Lint smoke: create a package from the prctl patch, run the kanalyze lint
# over it (text + JSON), and validate the JSON shape: the fix must lint
# clean and the .report.json sidecar must agree.
echo "== ksplice_tool lint smoke =="
build/tools/ksplice_tool create "$obs_dir/corpus/src" \
  "$obs_dir/corpus/patches/CVE-2006-2451.patch" "$obs_dir/prctl.kspl"
build/tools/ksplice_tool lint "$obs_dir/prctl.kspl"
build/tools/ksplice_tool lint --json="$obs_dir/prctl.lint.json" \
  --fail-on=warning "$obs_dir/prctl.kspl"
python3 - "$obs_dir" <<'EOF'
import json, sys
obs_dir = sys.argv[1]
lint = json.load(open(obs_dir + "/prctl.lint.json"))
for key in ("id", "errors", "warnings", "notes", "functions_scanned",
            "blocks_analyzed", "findings"):
    assert key in lint, f"lint JSON missing {key}: {sorted(lint)}"
assert lint["errors"] == 0, f"clean package has errors: {lint['findings']}"
assert lint["functions_scanned"] > 0 and lint["blocks_analyzed"] > 0
sidecar = json.load(open(obs_dir + "/prctl.kspl.report.json"))
assert sidecar["lint"]["errors"] == 0, "sidecar lint disagrees"
print("lint JSON OK:", lint["functions_scanned"], "functions,",
      lint["blocks_analyzed"], "blocks,", len(lint["findings"]), "findings")
EOF

# Semantic-diff + rollout gate smoke: a patch that returns holding the
# big kernel lock must produce an error-severity KSA503 finding, `lint
# --json` and the .report.json sidecar must agree byte-for-byte on the
# findings array (one serializer), and `rollout --lint` (the default)
# must refuse the package before touching any node.
echo "== kanalyze semdiff + rollout --lint gate smoke =="
python3 - "$obs_dir" <<'EOF'
import difflib, pathlib, sys
obs = pathlib.Path(sys.argv[1])
pre = (obs / "corpus/src/kernel/sched.kc").read_text().splitlines(
    keepends=True)
post = []
for line in pre:
    post.append(line)
    if line.strip() == "void my_schedule() {":
        post.append("  lock_kernel();\n")
assert len(post) == len(pre) + 1, "my_schedule not found"
(obs / "doomed.patch").write_text("".join(difflib.unified_diff(
    pre, post, fromfile="a/kernel/sched.kc", tofile="b/kernel/sched.kc")))
EOF
build/tools/ksplice_tool create --lint=warn "$obs_dir/corpus/src" \
  "$obs_dir/doomed.patch" "$obs_dir/doomed.kspl"
rc=0; build/tools/ksplice_tool lint --json="$obs_dir/doomed.lint.json" \
  "$obs_dir/doomed.kspl" || rc=$?
test "$rc" -eq 1 || { echo "lint of doomed package exited $rc, want 1"; exit 1; }
python3 - "$obs_dir" <<'EOF'
import json, sys
obs = sys.argv[1]
def findings_raw(text):
    at = text.index('"findings":')
    start = text.index('[', at)
    depth = 0
    for j in range(start, len(text)):
        depth += text[j] == '['
        depth -= text[j] == ']'
        if depth == 0:
            return text[at:j + 1]
    raise AssertionError("unterminated findings array")
lint_raw = open(obs + "/doomed.lint.json").read()
side_raw = open(obs + "/doomed.kspl.report.json").read()
assert findings_raw(lint_raw) == findings_raw(side_raw), \
    "lint --json and sidecar disagree on the findings array"
lint = json.loads(lint_raw)
rules = {f["rule"] for f in lint["findings"]}
assert "KSA503" in rules, rules
assert lint["errors"] > 0 and lint["functions_summarized"] > 0, lint
print("semdiff OK:", sorted(rules), "- findings byte-identical with sidecar")
EOF
rc=0; build/tools/ksplice_tool rollout --nodes=2 "$obs_dir/doomed.kspl" \
  2>"$obs_dir/rollout-refused.err" || rc=$?
test "$rc" -eq 1 || { echo "doomed rollout exited $rc, want 1"; exit 1; }
grep -q "rollout refused before touching any node" \
  "$obs_dir/rollout-refused.err"

# Transaction smoke: batch-apply two CVE fixes with disjoint targets in
# ONE transaction and show the update stack. The metrics JSON proves the
# batch shared a single stop_machine rendezvous.
echo "== ksplice_tool batch apply + status smoke =="
build/tools/ksplice_tool create "$obs_dir/corpus/src" \
  "$obs_dir/corpus/patches/CVE-2005-0736.patch" "$obs_dir/epoll.kspl"
build/tools/ksplice_tool create "$obs_dir/corpus/src" \
  "$obs_dir/corpus/patches/CVE-2005-1263.patch" "$obs_dir/coredump.kspl"
build/tools/ksplice_tool --metrics="$obs_dir/batch-metrics.json" \
  apply "$obs_dir/corpus/src" "$obs_dir/epoll.kspl" "$obs_dir/coredump.kspl"
build/tools/ksplice_tool status --json="$obs_dir/status.json" \
  "$obs_dir/corpus/src" "$obs_dir/epoll.kspl" "$obs_dir/coredump.kspl"
python3 - "$obs_dir" <<'EOF'
import json, sys
obs_dir = sys.argv[1]
metrics = json.load(open(obs_dir + "/batch-metrics.json"))
counters = metrics["counters"]
assert counters.get("ksplice.batch_applies") == 1, counters
assert counters.get("ksplice.applies") == 2, counters
assert counters.get("kvm.stop_machine_calls") == 1, \
    f"2 packages must share ONE rendezvous: {counters}"
status = json.load(open(obs_dir + "/status.json"))
assert len(status["updates"]) == 2, status
assert status["arena_bytes_in_use"] > 0, status
health = status["health"]
assert health["faults_total"] == 0 and not health["panicked"], health
assert status["quarantine"] == [], status
print("batch JSON OK:", len(status["updates"]), "updates,",
      counters["kvm.stop_machine_calls"], "stop_machine call")
EOF

# Chaos smoke: one fixed-seed randomized fault-injection round (the full
# multi-seed soak is scripts/check_chaos.sh), then a fault-injected apply
# through the tool — the injected failure must exit 1 and the fault and
# rendezvous metrics must show up in the --metrics JSON.
echo "== chaos + fault-injection smoke =="
KSPLICE_CHAOS_SEED=12648430 build/tests/chaos_test \
  --gtest_filter='ChaosTest.RandomizedFaultCombinationsPreserveInvariants'
rc=0; build/tools/ksplice_tool --faults=kvm.write_bytes=always \
  --metrics="$obs_dir/fault-metrics.json" \
  apply "$obs_dir/corpus/src" "$obs_dir/prctl.kspl" \
  >/dev/null 2>&1 || rc=$?
test "$rc" -eq 1 || { echo "fault-injected apply exited $rc, want 1"; exit 1; }
python3 - "$obs_dir" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1] + "/fault-metrics.json"))
counters = metrics["counters"]
for key in ("ksplice.fault.checks", "ksplice.fault.injected",
            "ksplice.fault.injected.kvm.write_bytes",
            "ksplice.rendezvous.attempts", "ksplice.txn_rollbacks"):
    assert counters.get(key, 0) > 0, f"counter {key} not populated: {counters}"
print("fault metrics OK:", counters["ksplice.fault.checks"], "checks,",
      counters["ksplice.fault.injected"], "injected")
EOF

# Flag-handling regression: usage errors (unknown flag, wrong argument
# count, bad flag value, bad fault plan) must exit 2 and print the right
# usage on stderr; a failed operation must exit 1.
echo "== ksplice_tool flag handling =="
if build/tools/ksplice_tool create --bogus a b c 2>"$obs_dir/err1"; then
  echo "unknown flag did not fail"; exit 1
fi
grep -q "usage: ksplice_tool .* create" "$obs_dir/err1"
if build/tools/ksplice_tool lint 2>"$obs_dir/err2"; then
  echo "missing argument did not fail"; exit 1
fi
grep -q "usage: ksplice_tool .* lint" "$obs_dir/err2"
rc=0; build/tools/ksplice_tool create --lint=bogus "$obs_dir/corpus/src" \
  "$obs_dir/corpus/patches/CVE-2006-2451.patch" "$obs_dir/unused.kspl" \
  2>"$obs_dir/err3" || rc=$?
test "$rc" -eq 2 || { echo "create --lint=bogus exited $rc, want 2"; exit 1; }
grep -q "usage: ksplice_tool .* create" "$obs_dir/err3"
rc=0; build/tools/ksplice_tool lint --fail-on=bogus "$obs_dir/prctl.kspl" \
  2>"$obs_dir/err4" || rc=$?
test "$rc" -eq 2 || { echo "lint --fail-on=bogus exited $rc, want 2"; exit 1; }
grep -q "usage: ksplice_tool .* lint" "$obs_dir/err4"
rc=0; build/tools/ksplice_tool --faults=bogus build "$obs_dir/corpus/src" \
  2>/dev/null || rc=$?
test "$rc" -eq 2 || { echo "--faults=bogus exited $rc, want 2"; exit 1; }
rc=0; build/tools/ksplice_tool inspect "$obs_dir/no-such.kspl" \
  2>/dev/null || rc=$?
test "$rc" -eq 1 || { echo "inspect missing file exited $rc, want 1"; exit 1; }

# Fleet rollout smoke: a clean 8-node rollout must patch every non-stale
# node and exit 0; a drill with a doomed canary must trip the canary wave,
# roll every patched node back, and exit 1 — and the report JSON must say
# so (aborted, zero nodes left patched).
echo "== ksplice_tool fleet rollout smoke =="
build/tools/ksplice_tool rollout --nodes=8 --wave=4 --max-in-flight=4 \
  --json="$obs_dir/rollout-clean.json"
rc=0; build/tools/ksplice_tool rollout --nodes=8 --wave=4 --max-in-flight=4 \
  --canary=0.25 --doom=1 --json="$obs_dir/rollout-drill.json" || rc=$?
test "$rc" -eq 1 || { echo "doomed rollout exited $rc, want 1"; exit 1; }
python3 - "$obs_dir" <<'EOF'
import json, sys
obs_dir = sys.argv[1]
clean = json.load(open(obs_dir + "/rollout-clean.json"))
assert not clean["aborted"], clean
assert clean["failed"] == 0, clean
assert clean["patched"] + clean["skipped_stale"] == clean["fleet_size"], clean
drill = json.load(open(obs_dir + "/rollout-drill.json"))
assert drill["aborted"] and drill["tripped_wave"] == 0, drill
assert drill["patched"] == 0, f"nodes left patched after abort: {drill}"
assert drill["failed"] == 1 and drill["rolled_back"] == 1, drill
outcomes = {n["node"]: n["outcome"] for n in drill["nodes"]}
assert outcomes["node-000"] == "failed", outcomes
print("fleet rollout JSON OK:", clean["patched"], "patched clean;",
      "drill aborted at wave", drill["tripped_wave"], "with",
      drill["rolled_back"], "rolled back")
EOF

# Watchdog safety-net smoke: a bad patch (BUG() armed in the replacement
# code) applies cleanly, then `apply --watch` must catch the regression
# under the spawned workload, auto-revert, quarantine, and exit 1; the
# same watched apply of a good patch must soak clean and exit 0; a
# soak-enabled fleet rollout of a healthy package must also exit 0.
echo "== watchdog safety-net smoke =="
mkdir -p "$obs_dir/watch/src/kern"
cat >"$obs_dir/watch/src/kern/watch.kc" <<'EOF'
int watch_state = 100;
int watch_guard = 9999;
int watch_op(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  if (x == watch_guard) {
    BUG();
  }
  return a + b + c + d + watch_state;
}
void watch_load(int n) {
  int i = n;
  while (i < 64) {
    record(11, watch_op(i));
    i = i + 1;
  }
}
EOF
python3 - "$obs_dir" <<'EOF'
import difflib, pathlib, sys
obs = pathlib.Path(sys.argv[1])
pre = (obs / "watch/src/kern/watch.kc").read_text().splitlines(keepends=True)
bad = [l.replace("x == watch_guard", "x >= 0") for l in pre]
good = [l.replace("int a = x + 1;", "int a = x + 10;") for l in pre]
assert bad != pre and good != pre, "patch anchors not found"
for name, post in (("bad", bad), ("good", good)):
    (obs / f"watch/{name}.patch").write_text("".join(difflib.unified_diff(
        pre, post, fromfile="a/kern/watch.kc", tofile="b/kern/watch.kc")))
EOF
build/tools/ksplice_tool create "$obs_dir/watch/src" \
  "$obs_dir/watch/bad.patch" "$obs_dir/watch/bad.kspl"
build/tools/ksplice_tool create "$obs_dir/watch/src" \
  "$obs_dir/watch/good.patch" "$obs_dir/watch/good.kspl"
rc=0; build/tools/ksplice_tool apply --watch --watch-entry=watch_load \
  "$obs_dir/watch/src" "$obs_dir/watch/bad.kspl" \
  >"$obs_dir/watch/bad.out" 2>&1 || rc=$?
test "$rc" -eq 1 || { echo "watched bad apply exited $rc, want 1"; exit 1; }
grep -q "watchdog: auto-revert" "$obs_dir/watch/bad.out"
grep -q "quarantined hash" "$obs_dir/watch/bad.out"
grep -q "0 update(s) applied" "$obs_dir/watch/bad.out"
build/tools/ksplice_tool apply --watch --watch-entry=watch_load \
  "$obs_dir/watch/src" "$obs_dir/watch/good.kspl" >"$obs_dir/watch/good.out"
grep -q "0 attributed" "$obs_dir/watch/good.out"
build/tools/ksplice_tool rollout --nodes=4 --wave=2 --max-in-flight=2 \
  --soak --json="$obs_dir/watch/rollout-soak.json"
python3 - "$obs_dir" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1] + "/watch/rollout-soak.json"))
assert not report["aborted"] and report["auto_reverted"] == 0, report
assert report["blacklisted"] == [], report
print("watchdog smoke OK: bad patch auto-reverted + quarantined,",
      "good patch soaked clean,", report["patched"], "nodes soaked in fleet")
EOF

# Date-drift smoke: build a tiny kernel embedding __DATE__/__TIME__ and a
# try_load exception-table entry, then create the update with a DIFFERENT
# build timestamp. Byte-wise matching would refuse (the .rodata.date bytes
# differ); the structural matcher's content-ignoring date/time howto must
# apply it, and --metrics must show the per-howto counters.
echo "== date-drift structural matching smoke =="
mkdir -p "$obs_dir/drift/src/kern"
cat >"$obs_dir/drift/src/kern/banner.kc" <<'EOF'
int stamp_len = 0;
char *banner(int x) {
  stamp_len = x;
  return __DATE__;
}
int guarded(int p) {
  return try_load(p, 4095);
}
EOF
python3 - "$obs_dir" <<'EOF'
import difflib, pathlib, sys
obs = pathlib.Path(sys.argv[1])
pre = (obs / "drift/src/kern/banner.kc").read_text().splitlines(keepends=True)
post = [l.replace("stamp_len = x;", "stamp_len = x + 1;") for l in pre]
assert post != pre, "patch anchor not found"
(obs / "drift/banner.patch").write_text("".join(difflib.unified_diff(
    pre, post, fromfile="a/kern/banner.kc", tofile="b/kern/banner.kc")))
EOF
build/tools/ksplice_tool --build-date "Mar  3 2026" --build-time "09:41:00" \
  create "$obs_dir/drift/src" "$obs_dir/drift/banner.patch" \
  "$obs_dir/drift/drift.kspl"
build/tools/ksplice_tool --metrics="$obs_dir/drift-metrics.json" \
  apply "$obs_dir/drift/src" "$obs_dir/drift/drift.kspl"
python3 - "$obs_dir" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1] + "/drift-metrics.json"))
counters = metrics["counters"]
assert counters.get("runpre.howto.date_time_sections_matched", 0) > 0, \
    f"date/time howto never matched content-ignoring: {counters}"
assert counters.get("ksplice.applies", 0) > 0, counters
print("date-drift smoke OK:",
      counters["runpre.howto.date_time_sections_matched"],
      "date/time section(s) matched content-ignoring;",
      counters.get("runpre.howto.extable_sections_matched", 0),
      "extable section(s) matched structurally")
EOF

echo "ALL CHECKS PASSED"
