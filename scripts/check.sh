#!/bin/sh
# Full verification: configure, build, test, run every bench and example.
# Set SANITIZE to instrument the build, e.g.:
#   SANITIZE="address;undefined" scripts/check.sh
# (scripts/check_tsan.sh covers -fsanitize=thread separately.)
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja ${SANITIZE:+"-DKSPLICE_SANITIZE=$SANITIZE"}
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do echo "== $b =="; "$b"; done
for e in build/examples/quickstart build/examples/cve_prctl build/examples/shadow_struct build/examples/stacked_updates build/examples/fleet_update; do echo "== $e =="; "$e"; done
echo "ALL CHECKS PASSED"
