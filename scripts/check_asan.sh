#!/bin/sh
# Memory-checks the transactional apply/undo engine: builds the tree with
# -fsanitize=address,undefined and runs the tests that stress module
# load/unload churn (ASAN aborts on the first heap error). The transaction
# tests matter most here: every rollback path unloads a group of
# partially-initialized modules, and out-of-order undo rewrites records
# that point into other updates' arenas.
set -e
cd "$(dirname "$0")/.."
cmake -B build-asan -G Ninja -DKSPLICE_SANITIZE="address;undefined"
cmake --build build-asan --target ksplice_txn_test concurrency_test \
  ksplice_hooks_smp_test kanalyze_test fuzz_negative_test chaos_test \
  runpre_test runpre_index_test fleet_test howto_test watchdog_test
for t in ksplice_txn_test concurrency_test ksplice_hooks_smp_test \
         kanalyze_test fuzz_negative_test chaos_test \
         runpre_test runpre_index_test fleet_test howto_test \
         watchdog_test; do
  echo "== build-asan/tests/$t =="
  "./build-asan/tests/$t"
done
echo "ASAN CHECKS PASSED"
