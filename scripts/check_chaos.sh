#!/bin/sh
# Chaos soak: runs the fault-injection harness (tests/chaos_test) and the
# watchdog safety-net tests (tests/watchdog_test, whose seeded round arms
# the watchdog's own fault sites) under a list of fixed seeds plus one
# fresh time-derived seed, so every run also explores a new corner of the
# fault/op sequence space. Each seed is printed before its run; any
# failure reproduces exactly with
#   KSPLICE_CHAOS_SEED=<seed> build/tests/<test>
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build --target chaos_test watchdog_test

FIXED_SEEDS="12648430 1 424242 987654321 281474976710655"
FRESH_SEED=$(date +%s)
for seed in $FIXED_SEEDS $FRESH_SEED; do
  echo "== chaos_test KSPLICE_CHAOS_SEED=$seed =="
  KSPLICE_CHAOS_SEED=$seed ./build/tests/chaos_test
  echo "== watchdog_test KSPLICE_CHAOS_SEED=$seed =="
  KSPLICE_CHAOS_SEED=$seed ./build/tests/watchdog_test
done
echo "CHAOS CHECKS PASSED (fixed seeds: $FIXED_SEEDS; fresh seed: $FRESH_SEED)"
