#!/bin/sh
# clang-tidy over src/ with the repo's .clang-tidy (bugprone-*,
# concurrency-*, performance-*; bugprone/concurrency findings are
# errors). Needs a compile database; reuses build/compile_commands.json
# when present, else configures one. Exits 0 with a notice when
# clang-tidy is not installed, so scripts/check.sh stays runnable on
# minimal containers.
set -e
cd "$(dirname "$0")/.."

TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    TIDY="$candidate"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "check_tidy: clang-tidy not installed; skipping"
  exit 0
fi

build_dir="${TIDY_BUILD_DIR:-build}"
if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -B "$build_dir" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

jobs="$(nproc 2>/dev/null || echo 2)"
echo "== $TIDY over src/ (-p $build_dir, $jobs workers) =="
find src -name '*.cc' -print0 | sort -z \
  | xargs -0 -n 1 -P "$jobs" "$TIDY" --quiet -p "$build_dir"
echo "check_tidy: OK"
