#!/bin/sh
# Race-checks the parallel update-creation pipeline: builds the tree with
# -fsanitize=thread and runs the concurrency test plus the SMP hooks test
# directly (TSAN aborts the process on the first data race).
set -e
cd "$(dirname "$0")/.."
cmake -B build-tsan -G Ninja -DKSPLICE_SANITIZE=thread
cmake --build build-tsan --target concurrency_test ksplice_hooks_smp_test
echo "== build-tsan/tests/concurrency_test =="
./build-tsan/tests/concurrency_test
echo "== build-tsan/tests/ksplice_hooks_smp_test =="
./build-tsan/tests/ksplice_hooks_smp_test
echo "TSAN CHECKS PASSED"
