#!/bin/sh
# Race-checks the parallel update-creation pipeline: builds the tree with
# -fsanitize=thread and runs the concurrency test plus the SMP hooks test
# directly (TSAN aborts the process on the first data race). The kanalyze
# analyzer and parser fuzz tests run too: lint executes inside the
# (parallelized) create pipeline, so its metrics updates must stay clean.
# The runpre tests cover the matcher's multi-job candidate fan-out, which
# shares per-unit decode caches and gram tables across worker threads.
# The fleet test drives wave rollouts at max_in_flight 8, where worker
# threads share the fault injector and the metrics registry.
set -e
cd "$(dirname "$0")/.."
cmake -B build-tsan -G Ninja -DKSPLICE_SANITIZE=thread
cmake --build build-tsan --target concurrency_test ksplice_hooks_smp_test \
  ksplice_txn_test kanalyze_test fuzz_negative_test chaos_test \
  runpre_test runpre_index_test fleet_test howto_test watchdog_test
for t in concurrency_test ksplice_hooks_smp_test ksplice_txn_test \
         kanalyze_test fuzz_negative_test chaos_test \
         runpre_test runpre_index_test fleet_test howto_test \
         watchdog_test; do
  echo "== build-tsan/tests/$t =="
  "./build-tsan/tests/$t"
done
echo "TSAN CHECKS PASSED"
