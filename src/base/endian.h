// Little-endian load/store helpers. All on-image and on-disk words in this
// project are little-endian 32-bit, matching the toy KVX architecture.

#ifndef KSPLICE_BASE_ENDIAN_H_
#define KSPLICE_BASE_ENDIAN_H_

#include <cstdint>
#include <cstddef>

namespace ks {

inline uint32_t ReadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void WriteLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline uint16_t ReadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               (static_cast<uint16_t>(p[1]) << 8));
}

inline void WriteLe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

inline uint64_t ReadLe64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadLe32(p)) |
         (static_cast<uint64_t>(ReadLe32(p + 4)) << 32);
}

inline void WriteLe64(uint8_t* p, uint64_t v) {
  WriteLe32(p, static_cast<uint32_t>(v));
  WriteLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

}  // namespace ks

#endif  // KSPLICE_BASE_ENDIAN_H_
