#include "base/faultinject.h"

#include <cstdio>
#include <cstdlib>

#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"

namespace ks {

namespace {

thread_local int g_suppress_depth = 0;

constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15u;

// splitmix64: tiny, seedable, and good enough for jittered coin flips.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15u);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9u;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebu;
  return z ^ (z >> 31);
}

double NextUnit(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ScopedFaultSuppression::ScopedFaultSuppression() { ++g_suppress_depth; }
ScopedFaultSuppression::~ScopedFaultSuppression() { --g_suppress_depth; }
bool ScopedFaultSuppression::Active() { return g_suppress_depth > 0; }

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector& Faults() { return FaultInjector::Global(); }

FaultInjector::FaultInjector() : rng_state_(kDefaultSeed) {
  const char* plan = std::getenv("KSPLICE_FAULTS");
  if (plan != nullptr && plan[0] != '\0') {
    ks::Status st = Configure(plan);
    if (!st.ok()) {
      KS_LOG(kWarning) << "ignoring KSPLICE_FAULTS: " << st.ToString();
    }
  }
}

ks::Status FaultInjector::Configure(const std::string& plan) {
  // Two passes: parse everything, then arm, so a bad clause arms nothing.
  struct Parsed {
    std::string site;
    SiteState state;
    bool disarm = false;
  };
  std::vector<Parsed> parsed;
  for (std::string_view clause : ks::Split(plan, ',')) {
    if (clause.empty()) {
      continue;
    }
    auto bad = [&clause](const char* why) {
      return ks::InvalidArgument(ks::StrPrintf(
          "fault plan clause '%.*s': %s", static_cast<int>(clause.size()),
          clause.data(), why));
    };
    size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return bad("expected site=mode");
    }
    Parsed p;
    p.site = std::string(clause.substr(0, eq));
    std::string_view mode = clause.substr(eq + 1);
    size_t at = mode.rfind('@');
    if (at != std::string_view::npos) {
      std::optional<ErrorCode> code = ErrorCodeFromName(mode.substr(at + 1));
      if (!code.has_value()) {
        return bad("unknown error code after '@'");
      }
      p.state.code = *code;
      mode = mode.substr(0, at);
    }
    if (mode == "off") {
      p.disarm = true;
    } else if (mode == "once") {
      p.state.mode = FaultMode::kNth;
      p.state.nth = 1;
    } else if (mode == "always") {
      p.state.mode = FaultMode::kAlways;
    } else if (mode.rfind("nth:", 0) == 0) {
      p.state.mode = FaultMode::kNth;
      unsigned long long n = 0;
      if (sscanf(std::string(mode.substr(4)).c_str(), "%llu", &n) != 1 ||
          n == 0) {
        return bad("nth: wants a positive integer");
      }
      p.state.nth = n;
    } else if (mode.rfind("prob:", 0) == 0) {
      p.state.mode = FaultMode::kProbability;
      double prob = -1;
      if (sscanf(std::string(mode.substr(5)).c_str(), "%lf", &prob) != 1 ||
          prob < 0.0 || prob > 1.0) {
        return bad("prob: wants a probability in [0,1]");
      }
      p.state.probability = prob;
    } else {
      return bad("unknown mode (want off|once|always|nth:N|prob:P)");
    }
    parsed.push_back(std::move(p));
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Parsed& p : parsed) {
    if (p.disarm) {
      sites_[p.site].armed = false;
    } else {
      p.state.armed = true;
      ArmLocked(p.site, p.state);
    }
  }
  RefreshEnabled();
  return ks::OkStatus();
}

void FaultInjector::ArmLocked(const std::string& site, SiteState state) {
  SiteState& slot = sites_[site];
  state.hits = slot.hits;
  state.injected = slot.injected;
  state.armed_hits = 0;
  slot = state;
}

void FaultInjector::ArmNth(const std::string& site, uint64_t nth,
                           ErrorCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState state;
  state.armed = true;
  state.mode = FaultMode::kNth;
  state.nth = nth == 0 ? 1 : nth;
  state.code = code;
  ArmLocked(site, state);
  RefreshEnabled();
}

void FaultInjector::ArmProbability(const std::string& site, double p,
                                   ErrorCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState state;
  state.armed = true;
  state.mode = FaultMode::kProbability;
  state.probability = p;
  state.code = code;
  ArmLocked(site, state);
  RefreshEnabled();
}

void FaultInjector::ArmAlways(const std::string& site, ErrorCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState state;
  state.armed = true;
  state.mode = FaultMode::kAlways;
  state.code = code;
  ArmLocked(site, state);
  RefreshEnabled();
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) {
    it->second.armed = false;
  }
  RefreshEnabled();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  rng_state_ = kDefaultSeed;
  RefreshEnabled();
}

void FaultInjector::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed ^ kDefaultSeed;
}

void FaultInjector::RefreshEnabled() {
  static ks::Gauge& armed_gauge =
      ks::Metrics().GetGauge("ksplice.fault.sites_armed");
  int armed = 0;
  for (const auto& [site, state] : sites_) {
    if (state.armed) {
      ++armed;
    }
  }
  armed_gauge.Set(armed);
  enabled_.store(armed > 0, std::memory_order_relaxed);
}

ks::Status FaultInjector::Check(const char* site) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return ks::OkStatus();
  }
  if (g_suppress_depth > 0) {
    return ks::OkStatus();
  }
  static ks::Counter& checks = ks::Metrics().GetCounter("ksplice.fault.checks");
  static ks::Counter& injected_total =
      ks::Metrics().GetCounter("ksplice.fault.injected");

  std::lock_guard<std::mutex> lock(mu_);
  checks.Add(1);
  SiteState& state = sites_[site];
  ++state.hits;
  if (!state.armed) {
    return ks::OkStatus();
  }
  ++state.armed_hits;
  bool fire = false;
  switch (state.mode) {
    case FaultMode::kNth:
      fire = state.armed_hits == state.nth;
      if (fire) {
        state.armed = false;  // heal after the one planned failure
        RefreshEnabled();
      }
      break;
    case FaultMode::kProbability:
      fire = NextUnit(&rng_state_) < state.probability;
      break;
    case FaultMode::kAlways:
      fire = true;
      break;
  }
  if (!fire) {
    return ks::OkStatus();
  }
  ++state.injected;
  injected_total.Add(1);
  ks::Metrics().GetCounter(std::string("ksplice.fault.injected.") + site)
      .Add(1);
  ks::TraceSpan span("ksplice.fault.inject");
  span.Annotate("site", site);
  span.Annotate("hit", state.hits);
  return ks::Status(
      state.code,
      ks::StrPrintf("injected fault at %s (hit %llu)", site,
                    static_cast<unsigned long long>(state.hits)));
}

uint64_t FaultInjector::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::Injected(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

uint64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [site, state] : sites_) {
    total += state.injected;
  }
  return total;
}

int FaultInjector::ArmedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int armed = 0;
  for (const auto& [site, state] : sites_) {
    if (state.armed) {
      ++armed;
    }
  }
  return armed;
}

std::vector<FaultSiteStats> FaultInjector::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultSiteStats> out;
  for (const auto& [site, state] : sites_) {
    FaultSiteStats stats;
    stats.site = site;
    stats.armed = state.armed;
    stats.hits = state.hits;
    stats.injected = state.injected;
    out.push_back(std::move(stats));
  }
  return out;
}

const std::vector<std::string>& KnownFaultSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      // kvm: the virtual machine's host-facing entry points.
      "kvm.load_module",    // primary module load (link + arena alloc)
      "kvm.load_blob",      // helper image accounting allocation
      "kvm.unload_module",  // single module unload
      "kvm.unload_group",   // transaction group unload
      "kvm.read_bytes",     // host reads (saving bytes under a trampoline)
      "kvm.write_bytes",    // host writes (splicing a trampoline)
      "kvm.write_word",     // host word pokes
      "kvm.stop_machine",   // rendezvous entry
      "kvm.host_kmalloc",   // host-driven guest heap allocation
      "kvm.call_function",  // hook invocation
      // kcc: the update-creation compiler.
      "kcc.compile",        // one unit compile
      "kcc.objcache.read",  // serving a cached object
      "kcc.objcache.write", // persisting a compiled object
      // kelf: object parsing and linking.
      "kelf.objfile.parse",
      "kelf.link",
      // ksplice: package codec and the transaction stages.
      "ksplice.package.parse",
      "ksplice.txn.prepare",
      "ksplice.txn.match",
      "ksplice.txn.load",
      "ksplice.txn.pre_apply",
      "ksplice.txn.splice",   // per function, inside the stop window
      "ksplice.txn.commit",
      "ksplice.undo.restore", // per function, inside the undo stop window
      // ksplice watchdog: the post-apply safety net (watchdog.h).
      "ksplice.watchdog.sample",  // one health sampling pass
      "ksplice.watchdog.revert",  // per auto-revert attempt (first attempt
                                  // only under chaos: retries run
                                  // suppressed, exercising the backoff)
  };
  return *sites;
}

}  // namespace ks
