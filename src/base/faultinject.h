// Deterministic, process-wide fault injection.
//
// Error paths are where hot-update machinery earns its safety claims, and
// they are exactly the paths ordinary tests never drive. Every fallible
// boundary in this codebase carries a named *fault site*:
//
//   ks::Status Machine::WriteBytes(...) {
//     KS_FAULT_POINT("kvm.write_bytes");
//     ...
//   }
//
// A site consults the process-wide plan and either returns ok (the normal
// case — one relaxed atomic load when nothing is armed) or a typed error
// Status that the call site propagates exactly like a real failure. Plans
// come from the KSPLICE_FAULTS environment variable, `ksplice_tool
// --faults=PLAN`, or the programmatic API, with the grammar
//
//   plan      := site_spec (',' site_spec)*
//   site_spec := site '=' mode ['@' error_code]
//   mode      := 'once'            fail the 1st hit, then heal
//              | 'nth:' N          fail exactly the Nth hit, then heal
//              | 'prob:' P         fail each hit with probability P (seeded)
//              | 'always'          fail every hit
//              | 'off'             disarm the site
//
// e.g. KSPLICE_FAULTS="kvm.write_bytes=nth:3,kcc.compile=prob:0.1@internal".
// Hit counts restart when a site is (re)armed, and `prob:` draws from a
// splitmix64 PRNG seeded via SetSeed, so a given (plan, seed, workload)
// triple always injects the same faults — chaos runs are reproducible from
// their seed alone.
//
// Recovery code (rollback, unwind, compensation) must be exempt: a fault
// injected while *undoing* the effects of a previous fault would make the
// "failed operations leave no trace" invariant untestable. Such code holds
// a ScopedFaultSuppression for its extent; real kernels disable failpoints
// in their error-recovery sections for the same reason.
//
// Observability: "ksplice.fault.*" metrics count checks and injections
// (per process and per site) and each injection emits a trace span.

#ifndef KSPLICE_BASE_FAULTINJECT_H_
#define KSPLICE_BASE_FAULTINJECT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"

namespace ks {

// How an armed site decides whether a given hit fails.
enum class FaultMode : uint8_t {
  kNth,          // fail exactly the Nth hit since arming, then heal
  kProbability,  // fail each hit independently with probability p
  kAlways,       // fail every hit
};

// Snapshot of one site's accounting (Stats()).
struct FaultSiteStats {
  std::string site;
  bool armed = false;
  uint64_t hits = 0;      // checks since the site was first seen
  uint64_t injected = 0;  // faults returned
};

class FaultInjector {
 public:
  static FaultInjector& Global();

  // Parses and arms a full plan (see grammar above). Sites already armed
  // stay armed unless the plan re-specifies them; a parse error arms
  // nothing and reports the offending clause.
  ks::Status Configure(const std::string& plan);

  // Programmatic arming. (Re)arming a site restarts its hit count.
  void ArmNth(const std::string& site, uint64_t nth,
              ErrorCode code = ErrorCode::kInternal);
  void ArmProbability(const std::string& site, double p,
                      ErrorCode code = ErrorCode::kInternal);
  void ArmAlways(const std::string& site,
                 ErrorCode code = ErrorCode::kInternal);
  void Disarm(const std::string& site);

  // Disarms every site and forgets all accounting.
  void Reset();

  // Seeds the PRNG behind `prob:` draws (and restarts its sequence).
  void SetSeed(uint64_t seed);

  // The injection point. Returns ok unless `site` is armed and its mode
  // fires for this hit. Hits are recorded (for any site, armed or not)
  // whenever at least one site is armed anywhere; with nothing armed this
  // is a single relaxed atomic load.
  ks::Status Check(const char* site);

  // Accounting.
  uint64_t Hits(const std::string& site) const;
  uint64_t Injected(const std::string& site) const;
  uint64_t TotalInjected() const;
  int ArmedCount() const;
  std::vector<FaultSiteStats> Stats() const;

 private:
  FaultInjector();

  struct SiteState {
    bool armed = false;
    FaultMode mode = FaultMode::kNth;
    uint64_t nth = 1;        // kNth: which hit fails
    double probability = 0;  // kProbability
    ErrorCode code = ErrorCode::kInternal;
    uint64_t armed_hits = 0;  // hits since last (re)arm
    uint64_t hits = 0;        // hits since first seen
    uint64_t injected = 0;
  };

  void ArmLocked(const std::string& site, SiteState state);
  void RefreshEnabled();  // recomputes enabled_ + the sites_armed gauge

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  uint64_t rng_state_ = 0;
  std::atomic<bool> enabled_{false};  // any site armed (fast-path gate)
};

// Shorthand for FaultInjector::Global().
FaultInjector& Faults();

// The documented site catalog: every KS_FAULT_POINT name wired into the
// tree, in layer order. tests/chaos_test.cc iterates this list; a site
// wired into code but missing here (or vice versa) fails the harness.
const std::vector<std::string>& KnownFaultSites();

// Disables injection on this thread for the guard's lifetime (nestable).
// Held by rollback/unwind/compensation code — see the header comment.
class ScopedFaultSuppression {
 public:
  ScopedFaultSuppression();
  ~ScopedFaultSuppression();
  ScopedFaultSuppression(const ScopedFaultSuppression&) = delete;
  ScopedFaultSuppression& operator=(const ScopedFaultSuppression&) = delete;

  // True if any guard is live on the calling thread.
  static bool Active();
};

}  // namespace ks

// Declares a fault site: consults the global plan and propagates the
// injected error. Works in any function returning ks::Status or
// ks::Result<T> (Status converts implicitly).
#define KS_FAULT_POINT(site) KS_RETURN_IF_ERROR(::ks::Faults().Check(site))

#endif  // KSPLICE_BASE_FAULTINJECT_H_
