#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace ks {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::string text = stream_.str();
  text.push_back('\n');
  // One fwrite per message: stdio locks the stream per call, so lines from
  // concurrent pipeline workers cannot interleave mid-line.
  std::fwrite(text.data(), 1, text.size(), stderr);
  (void)level_;
}

}  // namespace internal
}  // namespace ks
