// Minimal leveled logging to stderr. Off by default below kWarning so tests
// and benches stay quiet; examples turn on kInfo to narrate.

#ifndef KSPLICE_BASE_LOGGING_H_
#define KSPLICE_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace ks {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are dropped. The threshold is an
// atomic: Set/Get are safe from any thread (pipeline workers consult it
// concurrently), and each message is emitted with a single write so
// concurrent lines never interleave.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ks

#define KS_LOG(level)                                              \
  if (::ks::LogLevel::level < ::ks::GetLogLevel()) {               \
  } else                                                           \
    ::ks::internal::LogMessage(::ks::LogLevel::level, __FILE__,    \
                               __LINE__)                           \
        .stream()

#endif  // KSPLICE_BASE_LOGGING_H_
