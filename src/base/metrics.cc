#include "base/metrics.h"

#include <bit>
#include <fstream>

#include "base/strings.h"

namespace ks {

namespace {

// Lowers `current` (resp. raises) toward `value` with a CAS loop.
void AtomicMin(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  // Bucket i holds values <= 2^i: index by bit width, clamped to the last
  // (unbounded) bucket.
  int idx = value <= 1 ? 0 : std::bit_width(value - 1);
  if (idx >= kBuckets) {
    idx = kBuckets - 1;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::BucketBound(int i) {
  if (i >= kBuckets - 1) {
    return UINT64_MAX;
  }
  return uint64_t{1} << i;
}

uint64_t Histogram::ApproxPercentile(double q) const {
  uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile observation (1-based, ceil).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= rank) {
      return BucketBound(i);
    }
  }
  return max();
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->value();
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += StrPrintf("%s\"%s\":%llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(counter->value()));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += StrPrintf("%s\"%s\":%lld", first ? "" : ",", name.c_str(),
                     static_cast<long long>(gauge->value()));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += StrPrintf(
        "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
        "\"mean\":%.3f,\"buckets\":[",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(histogram->count()),
        static_cast<unsigned long long>(histogram->sum()),
        static_cast<unsigned long long>(histogram->min()),
        static_cast<unsigned long long>(histogram->max()),
        histogram->mean());
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t n = histogram->bucket(i);
      if (n == 0) {
        continue;
      }
      uint64_t bound = Histogram::BucketBound(i);
      if (bound == UINT64_MAX) {
        out += StrPrintf("%s{\"le\":\"inf\",\"n\":%llu}",
                         first_bucket ? "" : ",",
                         static_cast<unsigned long long>(n));
      } else {
        out += StrPrintf("%s{\"le\":%llu,\"n\":%llu}",
                         first_bucket ? "" : ",",
                         static_cast<unsigned long long>(bound),
                         static_cast<unsigned long long>(n));
      }
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Internal("cannot write metrics to " + path);
  }
  out << ToJson();
  return OkStatus();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace ks
