// Metrics: a process-wide registry of named counters, gauges and
// histograms with JSON export.
//
// Every layer of the pipeline publishes its per-phase observables here —
// kcc compiles and object-cache traffic, pre-post section diffs, run-pre
// candidate trials and bytes matched, stop_machine pauses and quiescence
// retries, kvm instructions and context switches — so benches and
// ksplice_tool --metrics=FILE report from one source of truth instead of
// private stopwatch counters.
//
// Counters and gauges are lock-free atomics; histograms use power-of-two
// buckets with atomic counts. Registry lookups take a mutex, so hot paths
// resolve their instruments once (function-local static references are the
// idiom — registered instruments are never deallocated and references stay
// valid for the process lifetime).
//
// Naming convention: "<module>.<noun>" with dots, e.g.
// "kcc.objcache.hits", "runpre.bytes_matched", "ksplice.stop_pause_ns".

#ifndef KSPLICE_BASE_METRICS_H_
#define KSPLICE_BASE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "base/status.h"

namespace ks {

// Monotonically increasing count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Latest-value instrument (module arena bytes in use, live threads, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Power-of-two-bucketed distribution: bucket i counts observations with
// value <= 2^i (the last bucket is unbounded). 48 buckets cover nanosecond
// durations up to ~3 days.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const;
  double mean() const;
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Upper bound of bucket i (2^i; UINT64_MAX for the last).
  static uint64_t BucketBound(int i);

  // Upper bound of the bucket containing the q-quantile (0 < q <= 1), an
  // over-estimate by at most the bucket width (2x). 0 when empty. Benches
  // report p99 pauses from the registry through this.
  uint64_t ApproxPercentile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

class MetricsRegistry {
 public:
  // The process-wide registry (never destroyed).
  static MetricsRegistry& Global();

  // Finds or creates. Returned references stay valid for the registry's
  // lifetime; hot paths should cache them.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Snapshot of every counter's value (bench deltas).
  std::map<std::string, uint64_t> CounterValues() const;

  // {"counters":{...},"gauges":{...},"histograms":{...}} — see DESIGN.md
  // for the schema.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  // Zeroes every instrument (names stay registered; references stay valid).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Shorthand for MetricsRegistry::Global().
MetricsRegistry& Metrics();

}  // namespace ks

#endif  // KSPLICE_BASE_METRICS_H_
