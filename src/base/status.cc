#include "base/status.h"

namespace ks {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kAborted:
      return "aborted";
    case ErrorCode::kUnimplemented:
      return "unimplemented";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::optional<ErrorCode> ErrorCodeFromName(std::string_view name) {
  static constexpr ErrorCode kCodes[] = {
      ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
      ErrorCode::kAlreadyExists,   ErrorCode::kFailedPrecondition,
      ErrorCode::kAborted,         ErrorCode::kUnimplemented,
      ErrorCode::kInternal,        ErrorCode::kResourceExhausted,
  };
  for (ErrorCode code : kCodes) {
    if (ErrorCodeName(code) == name) {
      return code;
    }
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status& Status::WithContext(std::string_view context) {
  if (!ok()) {
    std::string combined(context);
    combined += ": ";
    combined += message_;
    message_ = std::move(combined);
  }
  return *this;
}

Status InvalidArgument(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status Aborted(std::string message) {
  return Status(ErrorCode::kAborted, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(ErrorCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}

}  // namespace ks
