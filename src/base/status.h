// Error-handling primitives used throughout the Ksplice reproduction.
//
// Library code does not throw; fallible operations return ks::Status (no
// payload) or ks::Result<T> (payload or error). The style mirrors
// absl::Status / zx::result: statuses carry a coarse machine-readable code
// plus a human-readable message assembled at the failure site.

#ifndef KSPLICE_BASE_STATUS_H_
#define KSPLICE_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ks {

// Coarse classification of failures. Kept deliberately small: callers that
// need detail parse nothing — they read the message; callers that branch do
// so on the code.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad patch, bad object file, ...)
  kNotFound,          // missing symbol, section, file, ...
  kAlreadyExists,     // duplicate definition
  kFailedPrecondition,// operation not valid in current state
  kAborted,           // safety check failed; operation rolled back
  kUnimplemented,     // feature intentionally absent
  kInternal,          // invariant violation (a bug in this library)
  kResourceExhausted, // out of image memory, stack overflow, ...
};

// Returns a stable lowercase name for an error code ("invalid_argument").
std::string_view ErrorCodeName(ErrorCode code);

// Inverse of ErrorCodeName. kOk is not nameable (plans and wire formats
// never carry a success code); unknown names return nullopt.
std::optional<ErrorCode> ErrorCodeFromName(std::string_view name);

// A success-or-error value with no payload.
class [[nodiscard]] Status {
 public:
  // Success.
  Status() : code_(ErrorCode::kOk) {}

  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "error Status requires a non-ok code");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "invalid_argument: <message>".
  std::string ToString() const;

  // Prepends context to the message, preserving the code. Returns *this to
  // allow `return st.WithContext("loading module foo");`.
  Status& WithContext(std::string_view context);

  // Identity accessor so generic code (macros handling both Status and
  // Result<T>) can uniformly write `x.status()`.
  const Status& status() const { return *this; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status Aborted(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status ResourceExhausted(std::string message);

// A value of type T or an error Status. T must be movable.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value and from error status, so call sites read naturally:
  //   return 42;
  //   return ks::NotFound("no such symbol");
  Result(T value) : repr_(std::move(value)) {}
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an ok Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace ks

// Propagates an error Status from an expression, else continues.
#define KS_RETURN_IF_ERROR(expr)        \
  do {                                  \
    ::ks::Status ks_status_ = (expr);   \
    if (!ks_status_.ok()) {             \
      return ks_status_;                \
    }                                   \
  } while (0)

// Evaluates a Result<T> expression; on error propagates the Status, else
// binds the value to `lhs`. `lhs` may include a declaration:
//   KS_ASSIGN_OR_RETURN(auto obj, ParseObject(bytes));
#define KS_ASSIGN_OR_RETURN(lhs, expr)                  \
  KS_ASSIGN_OR_RETURN_IMPL_(                            \
      KS_STATUS_CONCAT_(ks_result_, __LINE__), lhs, expr)

#define KS_ASSIGN_OR_RETURN_IMPL_(result_var, lhs, expr) \
  auto result_var = (expr);                              \
  if (!result_var.ok()) {                                \
    return result_var.status();                          \
  }                                                      \
  lhs = std::move(result_var).value()

#define KS_STATUS_CONCAT_(a, b) KS_STATUS_CONCAT_IMPL_(a, b)
#define KS_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // KSPLICE_BASE_STATUS_H_
