#include "base/strings.h"

#include <cstdio>

namespace ks {

std::string StrPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1: vsnprintf writes the terminating NUL into the buffer; data() of a
    // sized std::string has room for it at [size()].
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, format,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (!lines.empty() && lines.back().empty() && !text.empty()) {
    lines.pop_back();
  }
  if (text.empty()) {
    lines.clear();
  }
  return lines;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view text) {
  const char* kWhitespace = " \t\r\n";
  size_t begin = text.find_first_not_of(kWhitespace);
  if (begin == std::string_view::npos) {
    return std::string_view();
  }
  size_t end = text.find_last_not_of(kWhitespace);
  return text.substr(begin, end - begin + 1);
}

std::string Hex32(uint32_t value) { return StrPrintf("0x%08x", value); }

}  // namespace ks
