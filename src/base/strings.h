// Small string helpers shared across the project. GCC 12 lacks std::format,
// so formatting goes through StrPrintf.

#ifndef KSPLICE_BASE_STRINGS_H_
#define KSPLICE_BASE_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ks {

// printf-style formatting into a std::string.
std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Splits `text` on `sep`, keeping empty fields. Splitting "" yields {""}
// (one empty field), matching the behaviour of line-oriented formats.
std::vector<std::string> Split(std::string_view text, char sep);

// Splits text into lines; a trailing '\n' does not produce an extra empty
// final line. SplitLines("a\nb\n") == {"a", "b"}.
std::vector<std::string> SplitLines(std::string_view text);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strips leading and trailing whitespace (space, tab, CR, LF).
std::string_view Trim(std::string_view text);

// Formats a byte count or address as fixed-width hex: "0x0000f010".
std::string Hex32(uint32_t value);

}  // namespace ks

#endif  // KSPLICE_BASE_STRINGS_H_
