#include "base/threadpool.h"

#include <algorithm>

namespace ks {

int ThreadPool::DefaultWorkers() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int workers) {
  if (workers <= 0) {
    workers = DefaultWorkers();
  }
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // shutdown with a drained queue
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      idle_.notify_all();
    }
  }
}

void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (jobs <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<size_t>(static_cast<size_t>(jobs), n)));
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace ks
