// A small fixed-size work-queue thread pool for the update-creation
// pipeline (paper §5: ksplice-create is an offline build step, so unlike
// the apply side it may use as many cores as the build host offers).
//
// Library code keeps its determinism guarantee by construction: workers
// write results into pre-assigned slots and callers reduce in input order,
// so the set of worker interleavings never changes observable output.

#ifndef KSPLICE_BASE_THREADPOOL_H_
#define KSPLICE_BASE_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ks {

class ThreadPool {
 public:
  // `workers` <= 0 selects DefaultWorkers(). The count is injectable so
  // tests can pin a pool shape regardless of the host.
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw (library code returns ks::Status
  // instead); an escaping exception terminates, as with std::thread.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and every running task has finished.
  void Wait();

  int workers() const { return static_cast<int>(threads_.size()); }

  // std::thread::hardware_concurrency(), clamped to at least 1.
  static int DefaultWorkers();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;      // tasks currently executing
  bool shutdown_ = false;
};

// Runs fn(0), ..., fn(n-1) on a temporary pool of min(jobs, n) workers and
// waits for all of them. jobs <= 1 (or n <= 1) runs inline on the calling
// thread, making the serial path identical to pre-pool code. `fn` must be
// safe to invoke concurrently; deterministic output is achieved by having
// fn(i) write only to slot i of a caller-owned result vector.
void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& fn);

}  // namespace ks

#endif  // KSPLICE_BASE_THREADPOOL_H_
