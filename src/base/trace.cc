#include "base/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>

#include "base/strings.h"

namespace ks {

namespace {

// Bounded so a runaway sweep cannot exhaust memory; generous enough for a
// full 64-entry corpus evaluation with per-unit compile spans.
constexpr size_t kTraceCapacity = 1u << 18;

std::atomic<bool> g_enabled{false};

struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

TraceBuffer& Buffer() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The trace epoch: timestamps are relative to the first use so exported
// numbers stay small.
uint64_t EpochNs() {
  static const uint64_t kEpoch = NowNs();
  return kEpoch;
}

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local int tl_depth = 0;

std::string JsonEscaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void SetTraceEnabled(bool enabled) {
  if (enabled) {
    EpochNs();  // pin the epoch before the first span
  }
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void ClearTrace() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.clear();
  buffer.dropped = 0;
}

std::vector<TraceEvent> TraceSnapshot() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.events;
}

uint64_t TraceDropped() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.dropped;
}

std::string TraceJson() {
  std::vector<TraceEvent> events = TraceSnapshot();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i != 0) {
      out += ',';
    }
    // Complete ("X") events with microsecond timestamps, the format both
    // chrome://tracing and Perfetto ingest.
    out += StrPrintf(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d,\"ticks\":%llu",
        JsonEscaped(event.name).c_str(), event.thread,
        static_cast<double>(event.start_ns) / 1000.0,
        static_cast<double>(event.dur_ns) / 1000.0, event.depth,
        static_cast<unsigned long long>(event.ticks));
    for (const auto& [key, value] : event.args) {
      out += StrPrintf(",\"%s\":\"%s\"", JsonEscaped(key).c_str(),
                       JsonEscaped(value).c_str());
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status WriteTraceJson(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Internal("cannot write trace to " + path);
  }
  out << TraceJson();
  return OkStatus();
}

std::string TraceSummary() {
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t ticks = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& event : TraceSnapshot()) {
    Agg& agg = by_name[event.name];
    agg.count += 1;
    agg.total_ns += event.dur_ns;
    agg.ticks += event.ticks;
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  std::string out = StrPrintf("%-32s %8s %12s %12s %12s\n", "span", "count",
                              "total ms", "mean us", "vm ticks");
  for (const auto& [name, agg] : rows) {
    out += StrPrintf(
        "%-32s %8llu %12.3f %12.3f %12llu\n", name.c_str(),
        static_cast<unsigned long long>(agg.count),
        static_cast<double>(agg.total_ns) / 1e6,
        agg.count == 0
            ? 0.0
            : static_cast<double>(agg.total_ns) / 1e3 /
                  static_cast<double>(agg.count),
        static_cast<unsigned long long>(agg.ticks));
  }
  uint64_t dropped = TraceDropped();
  if (dropped != 0) {
    out += StrPrintf("(%llu events dropped: buffer full)\n",
                     static_cast<unsigned long long>(dropped));
  }
  return out;
}

TraceSpan::TraceSpan(const char* name) : enabled_(TraceEnabled()) {
  if (!enabled_) {
    return;
  }
  name_ = name;
  depth_ = tl_depth++;
  start_ns_ = NowNs() - EpochNs();
}

TraceSpan::~TraceSpan() {
  if (!enabled_) {
    return;
  }
  --tl_depth;
  TraceEvent event;
  event.name = name_;
  event.thread = ThisThreadId();
  event.depth = depth_;
  event.start_ns = start_ns_;
  event.dur_ns = NowNs() - EpochNs() - start_ns_;
  event.ticks = ticks_;
  event.args = std::move(args_);
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kTraceCapacity) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(std::move(event));
}

void TraceSpan::AddTicks(uint64_t ticks) {
  if (enabled_) {
    ticks_ += ticks;
  }
}

void TraceSpan::Annotate(const char* key, const std::string& value) {
  if (enabled_) {
    args_.emplace_back(key, value);
  }
}

void TraceSpan::Annotate(const char* key, uint64_t value) {
  if (enabled_) {
    args_.emplace_back(
        key, StrPrintf("%llu", static_cast<unsigned long long>(value)));
  }
}

}  // namespace ks
