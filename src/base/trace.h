// Trace spans: nestable, thread-safe regions of interest across the
// create -> match -> apply pipeline.
//
// A TraceSpan measures the wall time between its construction and
// destruction and records one event when it dies. Spans nest naturally —
// each host thread carries a depth counter — and can be annotated with
// VM-tick durations and key=value pairs so pipeline phases report both
// wall time and simulated-kernel time.
//
// Tracing is off by default and zero-cost when disabled: the constructor
// reads one relaxed atomic and does nothing else (no clock read, no
// allocation, no lock). Turn it on with SetTraceEnabled(true) — the
// ksplice_tool --trace flag and benches do — and drain the buffer with
// TraceSnapshot()/TraceJson(). The JSON export is Chrome trace-viewer
// compatible ("traceEvents" complete events with microsecond timestamps),
// so a capture loads directly into chrome://tracing or Perfetto.
//
// The buffer is bounded (kTraceCapacity events); once full, new events are
// dropped and counted so a runaway sweep cannot exhaust memory.

#ifndef KSPLICE_BASE_TRACE_H_
#define KSPLICE_BASE_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

namespace ks {

// One completed span.
struct TraceEvent {
  std::string name;
  uint32_t thread = 0;  // dense per-process host-thread id
  int depth = 0;        // nesting depth within the thread (0 = outermost)
  uint64_t start_ns = 0;  // since the process trace epoch
  uint64_t dur_ns = 0;
  uint64_t ticks = 0;     // VM ticks attributed via TraceSpan::AddTicks
  std::vector<std::pair<std::string, std::string>> args;
};

// Global on/off switch. Safe from any thread.
void SetTraceEnabled(bool enabled);
bool TraceEnabled();

// Drops all buffered events (and the dropped-event count).
void ClearTrace();

// Copies out the buffered events, oldest first.
std::vector<TraceEvent> TraceSnapshot();

// Events dropped because the buffer was full.
uint64_t TraceDropped();

// Chrome trace-viewer JSON ({"traceEvents":[...]}).
std::string TraceJson();
Status WriteTraceJson(const std::string& path);

// Human-readable aggregation: per span name, count / total / mean wall
// time and total ticks, sorted by total time descending.
std::string TraceSummary();

class TraceSpan {
 public:
  // `name` must outlive the span (string literals throughout this repo).
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attributes VM ticks to this span (additive).
  void AddTicks(uint64_t ticks);

  // Attaches a key=value argument. No-ops when tracing is disabled.
  void Annotate(const char* key, const std::string& value);
  void Annotate(const char* key, uint64_t value);

  bool enabled() const { return enabled_; }

 private:
  bool enabled_;
  const char* name_ = nullptr;
  int depth_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t ticks_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace ks

#endif  // KSPLICE_BASE_TRACE_H_
