#include "corpus/corpus.h"

#include <map>
#include <mutex>
#include <optional>
#include <set>

#include "base/strings.h"
#include "base/threadpool.h"
#include "corpus/tree_parts.h"
#include "kcc/codegen.h"
#include "kcc/parser.h"
#include "ksplice/core.h"
#include "ksplice/create.h"

namespace corpus {

const kdiff::SourceTree& KernelSource() {
  static const kdiff::SourceTree kTree = [] {
    kdiff::SourceTree tree;
    AddCoreTree(tree);
    AddFsTree(tree);
    AddNetTree(tree);
    AddDrvTree(tree);
    AddMmIpcTree(tree);
    AddArchTree(tree);
    AddHarnessTree(tree);
    return tree;
  }();
  return kTree;
}

kcc::CompileOptions RunBuildOptions() {
  kcc::CompileOptions options;
  // Distribution kernels ship monolithic text (§6.3) with a fairly eager
  // inliner, which is what makes the paper's 20-of-64 statistic bite.
  options.function_sections = false;
  options.data_sections = false;
  options.inline_threshold = 40;
  return options;
}

namespace {

// Applies one vulnerability's edits to a copy of the kernel tree.
ks::Result<kdiff::SourceTree> ApplyEdits(const std::vector<Edit>& edits) {
  kdiff::SourceTree post = KernelSource();
  for (const Edit& edit : edits) {
    ks::Result<std::string> contents = post.Read(edit.path);
    if (!contents.ok()) {
      return ks::Status(contents.status()).WithContext("corpus edit");
    }
    size_t at = contents->find(edit.from);
    if (at == std::string::npos) {
      return ks::NotFound(ks::StrPrintf(
          "corpus edit: '%.40s...' not found in %s", edit.from.c_str(),
          edit.path.c_str()));
    }
    std::string updated = *contents;
    updated.replace(at, edit.from.size(), edit.to);
    post.Write(edit.path, updated);
  }
  return post;
}

const std::vector<kelf::ObjectFile>& KernelObjects() {
  static const std::vector<kelf::ObjectFile> kObjects = [] {
    ks::Result<std::vector<kelf::ObjectFile>> objects =
        kcc::BuildTree(KernelSource(), RunBuildOptions());
    if (!objects.ok()) {
      // Surfaced by BootKernel(); keep an empty vector here.
      return std::vector<kelf::ObjectFile>();
    }
    return std::move(objects).value();
  }();
  return kObjects;
}

}  // namespace

ks::Result<std::string> PatchFor(const Vulnerability& vuln) {
  KS_ASSIGN_OR_RETURN(kdiff::SourceTree post, ApplyEdits(vuln.edits));
  std::string diff = kdiff::MakeUnifiedDiff(KernelSource(), post);
  if (diff.empty()) {
    return ks::Internal("corpus: empty patch for " + vuln.cve);
  }
  return diff;
}

ks::Result<std::string> AmendedPatchFor(const Vulnerability& vuln) {
  if (!vuln.needs_custom_code) {
    return PatchFor(vuln);
  }
  KS_ASSIGN_OR_RETURN(kdiff::SourceTree post, ApplyEdits(vuln.custom_edits));
  std::string diff = kdiff::MakeUnifiedDiff(KernelSource(), post);
  if (diff.empty()) {
    return ks::Internal("corpus: empty amended patch for " + vuln.cve);
  }
  return diff;
}

ks::Result<std::unique_ptr<kvm::Machine>> BootKernel() {
  const std::vector<kelf::ObjectFile>& objects = KernelObjects();
  if (objects.empty()) {
    // Re-run the build to produce the error message.
    KS_ASSIGN_OR_RETURN(std::vector<kelf::ObjectFile> rebuilt,
                        kcc::BuildTree(KernelSource(), RunBuildOptions()));
    return ks::Internal("corpus: kernel build raced");
  }
  kvm::MachineConfig config;
  config.memory_bytes = 24u << 20;
  KS_ASSIGN_OR_RETURN(std::unique_ptr<kvm::Machine> machine,
                      kvm::Machine::Boot(objects, config));
  KS_ASSIGN_OR_RETURN(int tid, machine->SpawnNamed("kernel_init", 0));
  (void)tid;
  KS_RETURN_IF_ERROR(machine->RunToCompletion());
  if (!machine->Faults().empty()) {
    return ks::Internal("corpus: kernel_init faulted: " +
                        machine->Faults()[0]);
  }
  return machine;
}

const std::vector<KernelVersion>& KernelVersions() {
  static const std::vector<KernelVersion>* kVersions =
      new std::vector<KernelVersion>{
          {"v2.6.1", "", "", ""},
          {"v2.6.2", "kernel/sched.kc", "sched_stats[0] += 1;",
           "sched_stats[0] += 2;"},
          {"v2.6.3", "net/ipv4.kc", "return daddr % 4;",
           "return daddr % 8;"},
          {"v2.6.4", "kernel/sys_prctl.kc", "dumpable[tid() % 64] = arg;",
           "dumpable[tid() % 63] = arg;"},
          {"v2.6.5", "drv/dvb/dst_ca.kc", "record(950, slot);",
           "record(951, slot);"},
      };
  return *kVersions;
}

ks::Result<kdiff::SourceTree> KernelSourceAt(size_t index) {
  const std::vector<KernelVersion>& versions = KernelVersions();
  if (index >= versions.size()) {
    return ks::InvalidArgument(
        ks::StrPrintf("corpus: no kernel release %zu (have %zu)", index,
                      versions.size()));
  }
  const KernelVersion& version = versions[index];
  kdiff::SourceTree tree = KernelSource();
  if (version.dev_path.empty()) {
    return tree;
  }
  KS_ASSIGN_OR_RETURN(std::string contents, tree.Read(version.dev_path));
  size_t at = contents.find(version.dev_from);
  if (at == std::string::npos) {
    return ks::NotFound("corpus: dev edit anchor missing in " +
                        version.dev_path);
  }
  contents.replace(at, version.dev_from.size(), version.dev_to);
  tree.Write(version.dev_path, contents);
  return tree;
}

namespace {

// Built objects per release, compiled once per process (fleet boots of N
// same-release nodes re-link the cached objects instead of recompiling).
ks::Result<std::vector<kelf::ObjectFile>> VersionObjects(size_t index) {
  static std::mutex mu;
  static std::map<size_t, std::vector<kelf::ObjectFile>>* built =
      new std::map<size_t, std::vector<kelf::ObjectFile>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = built->find(index);
  if (it == built->end()) {
    KS_ASSIGN_OR_RETURN(kdiff::SourceTree tree, KernelSourceAt(index));
    kcc::CompileOptions options = RunBuildOptions();
    options.cache = &SharedObjectCache();
    KS_ASSIGN_OR_RETURN(std::vector<kelf::ObjectFile> objects,
                        kcc::BuildTree(tree, options));
    it = built->emplace(index, std::move(objects)).first;
  }
  return it->second;
}

}  // namespace

ks::Result<std::unique_ptr<kvm::Machine>> BootKernelVersion(
    size_t index, uint32_t memory_bytes) {
  if (!KernelVersions().empty()) {
    index %= KernelVersions().size();
  }
  KS_ASSIGN_OR_RETURN(std::vector<kelf::ObjectFile> objects,
                      VersionObjects(index));
  kvm::MachineConfig config;
  config.memory_bytes = memory_bytes == 0 ? 24u << 20 : memory_bytes;
  KS_ASSIGN_OR_RETURN(std::unique_ptr<kvm::Machine> machine,
                      kvm::Machine::Boot(std::move(objects), config));
  KS_RETURN_IF_ERROR(machine->SpawnNamed("kernel_init", 0).status());
  KS_RETURN_IF_ERROR(machine->RunToCompletion());
  if (!machine->Faults().empty()) {
    return ks::Internal("corpus: kernel_init faulted: " +
                        machine->Faults()[0]);
  }
  return machine;
}

ks::Result<bool> RunExploit(kvm::Machine& machine,
                            const Vulnerability& vuln) {
  size_t before = machine.RecordsWithKey(kKeyEscalated).size();
  KS_ASSIGN_OR_RETURN(int tid, machine.SpawnNamed(vuln.exploit_entry, 0));
  (void)tid;
  KS_RETURN_IF_ERROR(machine.RunToCompletion());
  std::vector<uint32_t> outcomes = machine.RecordsWithKey(kKeyEscalated);
  if (outcomes.size() != before + 1) {
    return ks::Internal(ks::StrPrintf(
        "exploit %s recorded %zu outcomes (faults: %zu)",
        vuln.exploit_entry.c_str(), outcomes.size() - before,
        machine.Faults().size()));
  }
  return outcomes.back() == 1;
}

ks::Status RunStress(kvm::Machine& machine, int rounds) {
  size_t faults_before = machine.Faults().size();
  size_t done_before = machine.RecordsWithKey(kKeyStress).size();
  KS_RETURN_IF_ERROR(machine.SpawnNamed("stress_main", rounds).status());
  KS_RETURN_IF_ERROR(machine.SpawnNamed("stress_worker", rounds).status());
  KS_RETURN_IF_ERROR(machine.RunToCompletion());
  if (machine.Faults().size() != faults_before) {
    return ks::Aborted("stress workload faulted: " +
                       machine.Faults().back());
  }
  if (machine.RecordsWithKey(kKeyStress).size() != done_before + 2) {
    return ks::Aborted("stress workload did not complete");
  }
  if (machine.Halted()) {
    return ks::Aborted("kernel panicked under stress");
  }
  return ks::OkStatus();
}

ks::Result<EvalOutcome> Evaluate(const Vulnerability& vuln,
                                 const EvalOptions& options) {
  EvalOutcome outcome;
  outcome.cve = vuln.cve;
  outcome.declared_inline = vuln.declared_inline;
  outcome.touches_assembly = vuln.touches_assembly;

  KS_ASSIGN_OR_RETURN(std::unique_ptr<kvm::Machine> machine, BootKernel());
  ksplice::KspliceCore core(machine.get());

  // Criterion 3a: the exploit works on the unpatched kernel.
  KS_ASSIGN_OR_RETURN(outcome.exploit_before, RunExploit(*machine, vuln));

  // Build the update from the original fix; fall back to the revised
  // patch with custom code when the original changes data semantics
  // (either detected at create time, or — for init-function changes — by
  // the exploit still succeeding, which is the "programmer check" of §2
  // made empirical).
  KS_ASSIGN_OR_RETURN(std::string patch, PatchFor(vuln));
  outcome.patch_lines = [] (const std::string& text) {
    ks::Result<kdiff::Patch> parsed = kdiff::ParseUnifiedDiff(text);
    return parsed.ok() ? parsed->ChangedLines() : 0;
  }(patch);

  ksplice::CreateOptions create_options;
  create_options.compile = RunBuildOptions();
  create_options.compile.cache = &SharedObjectCache();
  create_options.id = vuln.cve;

  auto try_apply = [&](const std::string& patch_text)
      -> ks::Result<bool> {  // true if applied
    ks::Result<ksplice::CreateResult> created = ksplice::CreateUpdate(
        KernelSource(), patch_text, create_options);
    if (!created.ok()) {
      if (created.status().code() == ks::ErrorCode::kFailedPrecondition) {
        return false;  // data-semantics gate
      }
      return created.status();
    }
    outcome.targets = static_cast<int>(created->package.targets.size());
    outcome.create_report = created->report;
    ks::Result<ksplice::ApplyReport> applied = core.Apply(created->package);
    if (!applied.ok()) {
      return ks::Status(applied.status());
    }
    outcome.apply_report = std::move(applied).value();
    return true;
  };

  KS_ASSIGN_OR_RETURN(bool applied, try_apply(patch));
  if (applied) {
    outcome.create_ok = true;
    outcome.apply_ok = true;
    KS_ASSIGN_OR_RETURN(outcome.exploit_after, RunExploit(*machine, vuln));
  }
  if ((!applied || outcome.exploit_after) && vuln.needs_custom_code) {
    // Table-1 path: undo the ineffective update if one is applied, then
    // use the revised patch with ksplice hooks.
    if (applied) {
      KS_RETURN_IF_ERROR(core.Undo(vuln.cve).status());
    }
    outcome.needed_custom_code = true;
    outcome.custom_code_lines = vuln.custom_code_lines;
    create_options.id = vuln.cve + "-custom";
    KS_ASSIGN_OR_RETURN(std::string amended, AmendedPatchFor(vuln));
    KS_ASSIGN_OR_RETURN(bool amended_applied, try_apply(amended));
    if (!amended_applied) {
      return ks::Internal("corpus: amended patch rejected for " + vuln.cve);
    }
    outcome.create_ok = true;
    outcome.apply_ok = true;
    KS_ASSIGN_OR_RETURN(outcome.exploit_after, RunExploit(*machine, vuln));
  }

  if (options.run_stress && outcome.apply_ok) {
    ks::Status stress = RunStress(*machine, options.stress_rounds);
    outcome.stress_ok = stress.ok();
  } else if (!options.run_stress) {
    outcome.stress_ok = true;
  }

  // §6.3 statistics: did the patch modify a function that the run build
  // inlined somewhere? Does a modified function reference an ambiguous
  // symbol? Modified functions are found by intersecting hunk line ranges
  // with function extents in the raw unit source.
  {
    ks::Result<kdiff::Patch> parsed = kdiff::ParseUnifiedDiff(patch);
    if (parsed.ok()) {
      std::set<std::string> ambiguous;
      {
        std::map<std::string, int> counts;
        for (const kelf::ObjectFile& obj : KernelObjects()) {
          for (const kelf::Symbol& sym : obj.symbols()) {
            if (sym.defined()) {
              counts[sym.name]++;
            }
          }
        }
        for (const auto& [name, count] : counts) {
          if (count > 1) {
            ambiguous.insert(name);
          }
        }
      }
      for (const kdiff::FilePatch& file : parsed->files) {
        if (!ks::EndsWith(file.path, ".kc")) {
          continue;
        }
        // Parse the raw unit with #include lines blanked so declaration
        // line numbers match the diff's.
        ks::Result<std::string> raw = KernelSource().Read(file.path);
        if (!raw.ok()) {
          continue;
        }
        std::string blanked;
        for (const std::string& line : ks::SplitLines(*raw)) {
          std::string_view trimmed = ks::Trim(line);
          blanked += ks::StartsWith(trimmed, "#") ? "" : line;
          blanked += '\n';
        }
        ks::Result<kcc::Unit> unit = kcc::ParseSource(blanked, file.path);
        if (!unit.ok()) {
          continue;
        }
        // Function extents: [line, next top-level decl line).
        struct Extent {
          std::string name;
          int begin = 0;
          int end = 0;
        };
        std::vector<Extent> extents;
        for (const kcc::FuncDecl& fn : unit->functions) {
          if (!fn.is_definition) {
            continue;
          }
          int fn_end = INT32_MAX;
          auto consider = [&](int line) {
            if (line > fn.line && line < fn_end) {
              fn_end = line;
            }
          };
          for (const kcc::FuncDecl& other : unit->functions) {
            consider(other.line);
          }
          for (const kcc::GlobalDecl& global : unit->globals) {
            consider(global.line);
          }
          extents.push_back(Extent{fn.name, fn.line, fn_end});
        }
        std::set<std::string> changed;
        for (const kdiff::Hunk& hunk : file.hunks) {
          // Narrow to the actually-changed pre lines within the hunk.
          int line = hunk.a_start;
          for (const std::string& hline : hunk.lines) {
            bool is_change = hline[0] == '-' || hline[0] == '+';
            if (is_change) {
              for (const Extent& extent : extents) {
                if (line >= extent.begin && line < extent.end) {
                  changed.insert(extent.name);
                }
              }
            }
            if (hline[0] != '+') {
              ++line;
            }
          }
        }
        kcc::CodegenOptions cg;
        cg.inline_threshold = RunBuildOptions().inline_threshold;
        ks::Result<kcc::Unit> full_unit =
            kcc::ParseUnit(KernelSource(), file.path);
        ks::Result<std::vector<std::string>> inlined =
            full_unit.ok() ? kcc::InlinedFunctions(*full_unit, cg)
                           : ks::Result<std::vector<std::string>>(
                                 full_unit.status());
        kcc::CompileOptions sec_options = RunBuildOptions();
        sec_options.function_sections = true;
        sec_options.data_sections = true;
        sec_options.cache = &SharedObjectCache();
        ks::Result<kelf::ObjectFile> obj =
            kcc::CompileUnit(KernelSource(), file.path, sec_options);
        for (const std::string& name : changed) {
          if (inlined.ok() &&
              std::find(inlined->begin(), inlined->end(), name) !=
                  inlined->end()) {
            outcome.modified_inlined_function = true;
          }
          if (obj.ok()) {
            const kelf::Section* section =
                obj->SectionByName(".text." + name);
            if (section != nullptr) {
              for (const kelf::Relocation& rel : section->relocs) {
                const std::string& ref =
                    obj->symbols()[static_cast<size_t>(rel.symbol)].name;
                if (ambiguous.count(ref) != 0) {
                  outcome.references_ambiguous_symbol = true;
                }
              }
            }
          }
        }
      }
    }
  }

  if (options.run_undo_check && outcome.apply_ok) {
    std::string id = outcome.needed_custom_code ? vuln.cve + "-custom"
                                                : vuln.cve;
    ks::Result<ksplice::UndoReport> undone = core.Undo(id);
    outcome.undo_ok = undone.ok();
    if (undone.ok()) {
      outcome.undo_report = std::move(undone).value();
    }
  }

  return outcome;
}

std::string EvalOutcome::ToJson() const {
  auto b = [](bool v) { return v ? "true" : "false"; };
  return ks::StrPrintf(
      "{\"cve\":\"%s\",\"patch_lines\":%d,\"needed_custom_code\":%s,"
      "\"custom_code_lines\":%d,\"create_ok\":%s,\"apply_ok\":%s,"
      "\"stress_ok\":%s,\"exploit_before\":%s,\"exploit_after\":%s,"
      "\"undo_ok\":%s,\"targets\":%d,\"modified_inlined_function\":%s,"
      "\"declared_inline\":%s,\"references_ambiguous_symbol\":%s,"
      "\"touches_assembly\":%s,\"success\":%s,\"create\":%s,\"apply\":%s,"
      "\"undo\":%s}",
      cve.c_str(), patch_lines, b(needed_custom_code), custom_code_lines,
      b(create_ok), b(apply_ok), b(stress_ok), b(exploit_before),
      b(exploit_after), b(undo_ok), targets, b(modified_inlined_function),
      b(declared_inline), b(references_ambiguous_symbol),
      b(touches_assembly), b(Success()), create_report.ToJson().c_str(),
      apply_report.ToJson().c_str(), undo_report.ToJson().c_str());
}

kcc::ObjectCache& SharedObjectCache() {
  static kcc::ObjectCache* cache = new kcc::ObjectCache();
  return *cache;
}

std::vector<ks::Result<EvalOutcome>> EvaluateAll(
    const std::vector<Vulnerability>& vulns, const SweepOptions& options) {
  // Force the shared kernel build before fanning out so workers don't all
  // serialize on the KernelObjects() magic static for their first boot.
  (void)KernelObjects();
  std::vector<std::optional<ks::Result<EvalOutcome>>> slots(vulns.size());
  ks::ParallelFor(options.jobs, vulns.size(), [&](size_t i) {
    slots[i] = Evaluate(vulns[i], options.eval);
  });
  std::vector<ks::Result<EvalOutcome>> out;
  out.reserve(vulns.size());
  for (std::optional<ks::Result<EvalOutcome>>& slot : slots) {
    out.push_back(std::move(*slot));
  }
  return out;
}

ks::Result<SymbolCensus> CensusKernelSymbols() {
  SymbolCensus census;
  std::map<std::string, int> counts;
  std::map<std::string, std::set<std::string>> units_of;
  const std::vector<kelf::ObjectFile>& objects = KernelObjects();
  if (objects.empty()) {
    return ks::Internal("corpus kernel failed to build");
  }
  for (const kelf::ObjectFile& obj : objects) {
    for (const kelf::Symbol& sym : obj.symbols()) {
      if (!sym.defined()) {
        continue;
      }
      ++census.total_symbols;
      counts[sym.name]++;
      units_of[sym.name].insert(obj.source_name());
    }
  }
  std::set<std::string> ambiguous_units;
  for (const auto& [name, count] : counts) {
    if (count > 1) {
      census.ambiguous_symbols += count;
      for (const std::string& unit : units_of[name]) {
        ambiguous_units.insert(unit);
      }
    }
  }
  census.total_units = static_cast<int>(objects.size());
  census.units_with_ambiguous = static_cast<int>(ambiguous_units.size());
  return census;
}

}  // namespace corpus
