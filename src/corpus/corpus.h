// The evaluation corpus: a simulated kernel source tree and 64 security
// vulnerabilities modelled on the significant x86-32 Linux kernel
// vulnerabilities of May 2005 - May 2008 that the paper evaluates (§6.1).
//
// Each entry is keyed to a real CVE id from that interval. Where the paper
// names a CVE explicitly (the eight Table-1 entries needing custom code,
// the four with public exploit code, the "notesize" and dst_ca "debug"
// examples), the entry reproduces that CVE's *object-level
// characteristics*: whether it changes data initialization, adds a struct
// field, touches an inlined or `inline`-declared function, references an
// ambiguous local symbol, patches assembly, changes a signature, or
// involves static locals. The remaining entries fill out the paper's
// aggregate statistics (Figure 3's patch-length histogram; the 20/4/5
// inline/keyword/ambiguous counts; the ~2:1 escalation:disclosure split).
//
// The kernel tree is a miniature Linux: cred/uid management, prctl,
// coredump, /proc, exec, sysctl tables, vmsplice, sockets, netfilter,
// ipv4 options, dvb drivers with colliding `debug` statics, usb-serial,
// shm/msg IPC, an assembly syscall entry (the ia32entry.S analogue),
// plus string/alloc helpers small enough to be inlined into callers.
//
// Exploits are kernel threads (our "userspace"): each tries its attack
// and records (900, escalated) and/or (901, leaked_value); the evaluator
// judges success exactly as §6.2 does — exploit works before the update
// and stops working after, while a stress workload shows no corruption.

#ifndef KSPLICE_CORPUS_CORPUS_H_
#define KSPLICE_CORPUS_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "kcc/compile.h"
#include "kcc/objcache.h"
#include "kdiff/diff.h"
#include "ksplice/report.h"
#include "kvm/machine.h"

namespace corpus {

// The value of the kernel's guarded secret (info-disclosure target).
inline constexpr uint32_t kSecretWord = 193573;

// record() keys used by exploits and the stress workload.
inline constexpr uint32_t kKeyEscalated = 900;
inline constexpr uint32_t kKeyLeaked = 901;
inline constexpr uint32_t kKeyStress = 902;

enum class VulnClass {
  kPrivilegeEscalation,
  kInfoDisclosure,
};

// One textual edit applied to the kernel tree to build the fix.
struct Edit {
  std::string path;
  std::string from;  // first occurrence is replaced
  std::string to;
};

struct Vulnerability {
  std::string cve;         // e.g. "CVE-2006-2451"
  std::string summary;     // one-line description of the modelled flaw
  VulnClass vuln_class = VulnClass::kPrivilegeEscalation;
  std::vector<Edit> edits;        // the upstream fix
  std::string exploit_entry;      // kernel thread entry demonstrating it
  bool public_exploit = false;    // one of the four with exploit code §6.3
  bool checks_secret = false;     // success == leaked value (key 901)

  // Table 1: the fix changes persistent-data semantics and needs custom
  // code. `custom_edits` is the revised patch (hooks instead of data-init
  // changes); custom_code_lines is the paper's per-CVE count.
  bool needs_custom_code = false;
  std::vector<Edit> custom_edits;
  int custom_code_lines = 0;
  bool adds_struct_field = false;  // CVE-2005-2709 (shadow structs)

  // Ground-truth characteristics asserted by tests / reported by benches.
  bool touches_assembly = false;
  bool declared_inline = false;   // patched function says `inline`
  bool changes_signature = false;
  bool has_static_local = false;
};

// The simulated kernel source (deterministic; ~25 units).
const kdiff::SourceTree& KernelSource();

// All 64 vulnerabilities, ordered newest-to-oldest like the paper's list.
const std::vector<Vulnerability>& Vulnerabilities();

// The unified diff of the original fix for `vuln` (and the amended fix
// with ksplice hooks for Table-1 entries).
ks::Result<std::string> PatchFor(const Vulnerability& vuln);
ks::Result<std::string> AmendedPatchFor(const Vulnerability& vuln);

// Build options matching how corpus kernels "shipped" (monolithic text).
kcc::CompileOptions RunBuildOptions();

// Boots a fresh corpus kernel and runs kernel_init.
ks::Result<std::unique_ptr<kvm::Machine>> BootKernel();

// ---------------------------------------------------------------------
// Kernel release line (the §6.2 methodology's 6 Debian + 8 vanilla
// kernels, miniaturized). Index 0 is the pristine corpus kernel; each
// later release applies one unrelated development edit to one subsystem,
// so a fleet of mixed releases exercises run-pre staleness detection:
// updates built from v1 source apply everywhere except on releases whose
// development touched the patched unit.

struct KernelVersion {
  std::string name;      // "v2.6.1"
  std::string dev_path;  // unit this release changed ("" for the first)
  std::string dev_from;  // first occurrence replaced
  std::string dev_to;
};

// The release line, oldest first.
const std::vector<KernelVersion>& KernelVersions();

// KernelSource() with release `index`'s development edit applied (each
// release's tree differs from v1 in exactly its own unit, so staleness of
// a v1-built update against release N is decided by N's unit alone).
ks::Result<kdiff::SourceTree> KernelSourceAt(size_t index);

// Boots a kernel of release `index % KernelVersions().size()` and runs
// kernel_init. memory_bytes == 0 keeps BootKernel()'s default (24MB);
// fleets pass smaller machines (the image needs ~2.5MB). Built objects
// are cached per release, so booting N same-release nodes compiles once.
ks::Result<std::unique_ptr<kvm::Machine>> BootKernelVersion(
    size_t index, uint32_t memory_bytes = 0);

// Runs `vuln`'s exploit in `machine` as a fresh thread; true if the attack
// succeeded (escalation observed or the secret leaked).
ks::Result<bool> RunExploit(kvm::Machine& machine, const Vulnerability& vuln);

// Runs the POSIX-stress-style workload (§6.2 criterion 2); fails if any
// thread faults or the kernel panics.
ks::Status RunStress(kvm::Machine& machine, int rounds = 2);

// ---------------------------------------------------------------------
// Full §6 evaluation of one vulnerability.

struct EvalOutcome {
  std::string cve;
  int patch_lines = 0;           // Figure 3 x-axis
  bool needed_custom_code = false;
  int custom_code_lines = 0;
  bool create_ok = false;        // package built (original or amended)
  bool apply_ok = false;         // §6.2 criterion 1
  bool stress_ok = false;        // criterion 2
  bool exploit_before = false;   // criterion 3 (when an exploit exists)
  bool exploit_after = false;
  bool undo_ok = false;
  int targets = 0;               // functions replaced
  // §6.3 statistics.
  bool modified_inlined_function = false;
  bool declared_inline = false;
  bool references_ambiguous_symbol = false;
  bool touches_assembly = false;

  // Typed per-phase reports from the pipeline (report.h). Populated when
  // the corresponding phase ran; the applied report is for the update that
  // ended up in effect (the amended one on the Table-1 path).
  ksplice::CreateReport create_report;
  ksplice::ApplyReport apply_report;
  ksplice::UndoReport undo_report;  // only with EvalOptions::run_undo_check

  bool Success() const {
    return create_ok && apply_ok && stress_ok &&
           (exploit_before ? !exploit_after : true);
  }

  // One JSON object per corpus entry (headline sweep report files).
  std::string ToJson() const;
};

struct EvalOptions {
  bool run_stress = true;
  bool run_undo_check = false;
  int stress_rounds = 1;
};

// Boots a fresh kernel, runs the exploit, creates and applies the update
// (falling back to the amended patch for Table-1 entries), re-runs the
// exploit and the stress workload.
ks::Result<EvalOutcome> Evaluate(const Vulnerability& vuln,
                                 const EvalOptions& options = {});

// Process-wide content-addressed object cache shared by every Evaluate()
// call: the pre kernel's units are compiled once per process and identical
// post units are never recompiled across entries or repeated sweeps.
kcc::ObjectCache& SharedObjectCache();

// ---------------------------------------------------------------------
// Parallel sweep: the whole §6 evaluation over many entries at once.
// Only update *creation* and the per-entry simulated machines fan out;
// each entry applies its update inside its own machine, so apply-side
// semantics (stop_machine, quiescence) are untouched.

struct SweepOptions {
  EvalOptions eval;
  // Worker threads; 1 = serial, 0 = one per hardware thread.
  int jobs = 1;
};

// Evaluates every entry of `vulns` across `options.jobs` workers sharing
// SharedObjectCache(). Results come back in `vulns` order regardless of
// worker completion order and are identical to calling Evaluate serially.
std::vector<ks::Result<EvalOutcome>> EvaluateAll(
    const std::vector<Vulnerability>& vulns,
    const SweepOptions& options = {});

// §6.3 symbol census over the built kernel: how many symbols share names,
// and how many compilation units contain such a symbol.
struct SymbolCensus {
  int total_symbols = 0;
  int ambiguous_symbols = 0;   // symbols whose name binds more than once
  int total_units = 0;
  int units_with_ambiguous = 0;
};
ks::Result<SymbolCensus> CensusKernelSymbols();

}  // namespace corpus

#endif  // KSPLICE_CORPUS_CORPUS_H_
