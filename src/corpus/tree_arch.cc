// Corpus kernel tree, part 6: architecture code (the assembly syscall
// entry — our ia32entry.S — and FPU state), ptrace, and the remaining
// subsystems with deliberately colliding local symbol names (tmpfs/ext3
// `mode`, ipv6/conntrack `state`).

#include "corpus/tree_parts.h"

namespace corpus {

void AddArchTree(kdiff::SourceTree& tree) {
  tree.Write("include/arch.h", R"(
int syscall_dispatch(int nr, int arg);
int sys_handler_a(int arg);
int sys_handler_b(int arg);
int sys_handler_c(int arg);
int sys_handler_d(int arg);
int sys_root_backdoor(int arg);
int fpu_read(int reg);
void fpu_clear_scratch();
int ptrace_attach(int target);
int tmpfs_read_page(int page);
int ext3_dir_entry(int idx);
int ipv6_flowlabel_get(int label);
int conntrack_tuple_hash(int proto, int port);
int fcntl_setown(int fd, int owner);
)");

  // -------------------------------------------------- syscall entry (asm)
  // CVE-2007-4573 (ia32entry.S: registers used as table indices are not
  // zero-extended/masked). Pure assembly, patched as assembly (§6.3).
  tree.Write("arch/entry.kvs", R"(
.text
.global syscall_dispatch
; int syscall_dispatch(int nr, int arg)
syscall_dispatch:
    push fp
    mov fp, sp
    mov r1, fp
    add r1, 8
    load r1, [r1]        ; r1 = syscall number (attacker controlled)
    mov r2, 4
    mul r1, r2
    mov r0, =sys_call_table
    add r0, r1
    load r2, [r0]        ; handler pointer
    mov r0, fp
    add r0, 12
    load r0, [r0]        ; argument
    push r0
    callr r2
    add sp, 4
    mov sp, fp
    pop fp
    ret
.data
sys_call_table:
    .word sys_handler_a, sys_handler_b, sys_handler_c, sys_handler_d
; Internal management vector placed after the table: reachable only by an
; out-of-range index.
sys_mgmt_table:
    .word sys_root_backdoor
)");

  tree.Write("arch/syscalls.kc", R"(
#include "include/kernel.h"
#include "include/arch.h"
int syscall_counts[4];

int sys_handler_a(int arg) {
  syscall_counts[0]++;
  return arg + 1;
}

int sys_handler_b(int arg) {
  syscall_counts[1]++;
  return arg * 2;
}

int sys_handler_c(int arg) {
  syscall_counts[2]++;
  return arg - 1;
}

int sys_handler_d(int arg) {
  syscall_counts[3]++;
  return arg;
}

/* Reachable only through the management vector; never exposed as a
   syscall. The CVE-2007-4573 exploit reaches it via the unmasked index. */
int sys_root_backdoor(int arg) {
  commit_creds(0);
  return 31337 + arg;
}
)");

  // ------------------------------------------------------------------ fpu
  tree.Write("arch/fpu.kc", R"(
#include "include/kernel.h"
#include "include/arch.h"
int fpu_state[4];
int fpu_scratch;

/* CVE-2006-1056 (x86 FPU information leak; Table 1): initialization
   forgets to clear the scratch register slot, which still holds another
   context's data (here: the secret). The upstream fix changes this init
   function; existing state needs custom code to scrub (4 lines). */
void init_fpu() {
  fpu_state[0] = 0;
  fpu_state[1] = 0;
  fpu_state[2] = 0;
  fpu_state[3] = 0;
  fpu_scratch = secret_peek();
}

void fpu_clear_scratch() {
  fpu_scratch = 0;
}

int fpu_read(int reg) {
  if (reg < 0 || reg > 4) {
    return -1;
  }
  if (reg == 4) {
    return fpu_scratch;
  }
  return fpu_state[reg];
}
)");

  // --------------------------------------------------------------- ptrace
  tree.Write("kernel/ptrace.kc", R"(
#include "include/kernel.h"
#include "include/arch.h"
int traced_by[64];

/* CVE-2007-3731 (ptrace handling): the permission test accepts any target
   whose uid is numerically at most the tracer's, which includes root. */
int ptrace_attach(int target) {
  if (target < 0) {
    return -1;
  }
  if (uid_of(target) <= current_uid()) {
    traced_by[target % 64] = tid();
    if (uid_of(target) == 0) {
      commit_creds(0);
      return 1;
    }
    return 0;
  }
  return -1;
}
)");

  // ---------------------------------------------------------------- tmpfs
  tree.Write("fs/tmpfs.kc", R"(
#include "include/kernel.h"
#include "include/arch.h"
static int mode = 1;
char tmpfs_pages[8];

void init_tmpfs() {
  kmemset(tmpfs_pages, 84, 8);
}

/* CVE-2007-6417 (tmpfs: reading beyond written pages exposes stale
   data). References this unit's `mode`, colliding with ext3's. */
int tmpfs_read_page(int page) {
  if (mode == 0) {
    return -1;
  }
  if (page < 0) {
    return -1;
  }
  if (page >= 8) {
    return secret_peek();
  }
  return tmpfs_pages[page];
}

/* Readahead; inlines tmpfs_read_page. */
int tmpfs_readahead(int first) {
  int a = tmpfs_read_page(first);
  int b = tmpfs_read_page(first + 1);
  return a + b;
}
)");

  // ----------------------------------------------------------------- ext3
  tree.Write("fs/ext3.kc", R"(
#include "include/kernel.h"
#include "include/arch.h"
static int mode = 2;
int ext3_dirents[4];
int ext3_reserved;

void init_ext3() {
  ext3_dirents[0] = 1;
  ext3_dirents[1] = 2;
  ext3_dirents[2] = 3;
  ext3_dirents[3] = 4;
  ext3_reserved = 0;
}

/* CVE-2006-6053 (ext3 directory corruption handling): a corrupted index
   is accepted and the entry after the table (the reserved-writer flag)
   is returned/armed. References this unit's `mode`. */
int ext3_dir_entry(int idx) {
  if (mode == 0) {
    return -1;
  }
  if (idx < 0 || idx > 4) {
    return -1;
  }
  if (idx == 4) {
    ext3_reserved = 1;
    if (ext3_reserved != 0) {
      commit_creds(0);
      return 1;
    }
  }
  return ext3_dirents[idx];
}
)");

  // ----------------------------------------------------------------- ipv6
  tree.Write("net/ipv6.kc", R"(
#include "include/kernel.h"
#include "include/arch.h"
static int state = 1;
int flowlabels[4];

void init_ipv6() {
  flowlabels[0] = 10;
  flowlabels[1] = 11;
  flowlabels[2] = 12;
  flowlabels[3] = 13;
}

/* CVE-2007-1592 (ipv6 flowlabel sharing): a label released by another
   task is handed out still carrying its privileged share flag.
   References this unit's `state`, colliding with conntrack's. */
int ipv6_flowlabel_get(int label) {
  if (state == 0) {
    return -1;
  }
  if (label < 0) {
    return -1;
  }
  if (label >= 4) {
    return secret_peek();
  }
  return flowlabels[label];
}
)");

  // ------------------------------------------------------------ conntrack
  tree.Write("net/conntrack.kc", R"(
#include "include/kernel.h"
#include "include/arch.h"
static int state = 7;
int ct_buckets[4];
int ct_admin;

/* CVE-2006-2934 (netfilter conntrack: unexpected protocol handling): an
   unknown protocol number indexes the bucket table out of range.
   References this unit's `state`. */
int conntrack_tuple_hash(int proto, int port) {
  ct_admin = 0;
  if (state == 0) {
    return -1;
  }
  if (proto > 4) {
    return -1;
  }
  ct_buckets[proto % 5] = port;
  if (ct_admin != 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // ---------------------------------------------------------------- fcntl
  tree.Write("fs/fcntl.kc", R"(
#include "include/kernel.h"
#include "include/arch.h"
int fd_owner[8];

/* CVE-2008-1669 (fcntl F_SETOWN race, modelled single-threaded): the
   permission check uses the *previous* owner recorded in the static,
   letting a second call bless an arbitrary owner. */
int fcntl_setown(int fd, int owner) {
  static int last_owner = 0;
  if (fd < 0 || fd >= 8) {
    return -1;
  }
  if (last_owner == owner || owner == tid()) {
    fd_owner[fd] = owner;
    if (owner == 0) {
      commit_creds(0);
      return 1;
    }
  }
  last_owner = owner;
  return 0;
}
)");
}

}  // namespace corpus
