// Corpus kernel tree, part 1: headers, cred/secret infrastructure, and the
// core kernel subsystems (prctl, signal, time, futex, sysctl, capability,
// scheduler). Every vulnerable function is annotated with the CVE it
// models; fix edits live in vulns.cc.

#include "corpus/tree_parts.h"

namespace corpus {

void AddCoreTree(kdiff::SourceTree& tree) {
  tree.Write("include/kernel.h", R"(
int current_uid();
int capable();
void commit_creds(int uid);
int uid_of(int t);
int read_secret();
int secret_peek();
int secret_byte(int i);
int kstrlen(char *s);
int kmemcmp(char *a, char *b, int n);
void kmemset(char *p, int v, int n);
int kcopy_bounded(char *dst, char *src, int n, int cap);
int sys_prctl_set_dumpable(int arg);
int get_dumpable(int t);
int sys_set_pdeath(int target, int sig);
int do_coredump();
int elf_core_dump(int count);
int read_core_notes(int idx);
int dump_write_to(int owner);
int proc_setattr(int entry, int mode);
int proc_run_entry(int entry);
int proc_read_mem(int offset);
int do_execve(int nargs);
int exec_interp_check(char *path);
int sys_epoll_ctl(int nevents);
int sysctl_write(int id, int value);
int sysctl_unregister(int id);
int sysctl_read(int id);
int cap_check_bound(int cap);
int sys_gettime(int clock);
int futex_requeue(int n, int uaddr);
int sched_debug_show(int verbose);
int signal_queue(int target, int sig);
int keyctl_read(int key, char *buf, int len);
int sys_get_thread_area(int idx);
int setrlimit_check(int resource, int value);
)");

  // ---------------------------------------------------------------- cred
  tree.Write("kernel/cred.kc", R"(
int cred_uid[64];

void init_creds() {
  int i = 0;
  while (i < 64) {
    cred_uid[i] = 1000;
    i++;
  }
  /* Slot 0 models the root-owned swapper/init task. */
  cred_uid[0] = 0;
}

int current_uid() {
  return cred_uid[tid() % 64];
}

int capable() {
  if (current_uid() == 0) {
    return 1;
  }
  return 0;
}

void commit_creds(int uid) {
  cred_uid[tid() % 64] = uid;
}

int uid_of(int t) {
  return cred_uid[t % 64];
}
)");

  // ------------------------------------------------------------- secrets
  tree.Write("kernel/secrets.kc", R"(
#include "include/kernel.h"
int secret_word;
char secret_buf[16];

void init_secrets() {
  int i = 0;
  secret_word = 193573;
  while (i < 16) {
    secret_buf[i] = (char)(65 + i);
    i++;
  }
}

/* Guarded accessor: only root may read the secret. */
int read_secret() {
  if (capable()) {
    return secret_word;
  }
  return 0;
}

/* Kernel-internal accessors (no check): misuse of these is what the
   disclosure vulnerabilities model. */
int secret_peek() {
  return secret_word;
}

int secret_byte(int i) {
  return secret_buf[i % 16];
}
)");

  // ------------------------------------------------------- string helpers
  // Small and keyword-free: the compiler inlines these into callers all
  // over the kernel, the situation behind the paper's 20-of-64 statistic.
  tree.Write("lib/string.kc", R"(
int kstrlen(char *s) {
  int n = 0;
  while (s[n] != 0) {
    n++;
  }
  return n;
}

int kmemcmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) {
      return 1;
    }
    i++;
  }
  return 0;
}

void kmemset(char *p, int v, int n) {
  int i = 0;
  while (i < n) {
    p[i] = (char)v;
    i++;
  }
}

/* CVE-2006-4813: __block_prepare_write-style helper. The bounded copy
   fails to honour `cap` when n is larger, leaking bytes past the intended
   region into the destination. */
int kcopy_bounded(char *dst, char *src, int n, int cap) {
  int i = 0;
  while (i < n) {
    dst[i] = src[i];
    i++;
  }
  return i;
}
)");

  // ---------------------------------------------------------------- prctl
  tree.Write("kernel/sys_prctl.kc", R"(
#include "include/kernel.h"
int dumpable[64];

/* CVE-2006-2451: PR_SET_DUMPABLE accepted the value 2 from unprivileged
   processes; a later core dump then runs with elevated privileges. */
int sys_prctl_set_dumpable(int arg) {
  if (arg < 0) {
    return -1;
  }
  if (arg > 2) {
    return -1;
  }
  dumpable[tid() % 64] = arg;
  return 0;
}

int get_dumpable(int t) {
  return dumpable[t % 64];
}

/* CVE-2007-3848: processes could set a parent-death signal that is later
   delivered to a privileged process; the permission check compares the
   wrong subject. */
int sys_set_pdeath(int target, int sig) {
  if (sig < 1 || sig > 31) {
    return -1;
  }
  if (uid_of(tid()) != 0) {
    if (uid_of(tid()) == uid_of(tid())) {
      return signal_queue(target, sig);
    }
    return -1;
  }
  return signal_queue(target, sig);
}
)");

  // ---------------------------------------------------------------- signal
  tree.Write("kernel/signal.kc", R"(
#include "include/kernel.h"
int sig_pending[64];
int sig_privileged_handler;

int signal_queue(int target, int sig) {
  sig_pending[target % 64] = sig;
  /* Delivering SIGPRIV (31) to a root-owned task runs its privileged
     handler on behalf of the sender. */
  if (sig == 31 && uid_of(target) == 0) {
    sig_privileged_handler = tid();
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // ----------------------------------------------------------------- time
  tree.Write("kernel/time.kc", R"(
#include "include/kernel.h"
int clock_table[4];
int clock_admin_token;

void init_time() {
  clock_table[0] = 1;
  clock_table[1] = 1000;
  clock_table[2] = 1000000;
  clock_table[3] = 0;
  clock_admin_token = secret_peek();
}

/* CVE-2005-3276 (sys_get_thread_area-style stack leak, modelled on the
   clock path): reads one entry past the clock table, exposing adjacent
   kernel data. Declared inline; the compiler honours size, not keywords. */
inline int sys_gettime(int clock) {
  if (clock < 0) {
    return -1;
  }
  if (clock > 4) {
    return -1;
  }
  return clock_table[clock];
}

/* Composite clock syscall; inlines sys_gettime. */
int sys_clock_pair(int a, int b) {
  int x = sys_gettime(a);
  int y = sys_gettime(b);
  return x + y;
}
)");

  // -------------------------------------------------------------- futex
  tree.Write("kernel/futex.kc", R"(
#include "include/kernel.h"
int futex_slots[8];
int futex_owner_priv;

/* CVE-2008-1375 (dnotify/futex-style race): requeue walks n entries but
   the bound check runs after the first write, allowing a single
   out-of-bounds store that corrupts the adjacent ownership flag. */
int futex_requeue(int n, int uaddr) {
  int i = 0;
  futex_owner_priv = 0;
  if (n <= 0) {
    return -1;
  }
  while (1) {
    futex_slots[i] = uaddr + i;
    i++;
    if (i >= n || i >= 9) {
      break;
    }
  }
  if (futex_owner_priv != 0) {
    commit_creds(0);
    return 1;
  }
  return i;
}
)");

  // -------------------------------------------------------------- sysctl
  tree.Write("kernel/sysctl.kc", R"(
#include "include/kernel.h"
struct ctl_entry {
  int id;
  int value;
  int mode;
};
struct ctl_entry ctl_table[8];

void init_sysctl() {
  int i = 0;
  while (i < 8) {
    ctl_table[i].id = i;
    ctl_table[i].value = 100 + i;
    ctl_table[i].mode = 1;
    i++;
  }
  /* Entry 7 is root-only while registered. */
  ctl_table[7].mode = 0;
}

/* CVE-2005-2709: unregistering an entry tombstones it and drops its mode
   protection, but writes to the stale entry are still honored — a
   use-after-unregister. The upstream fix adds a `registered` field to
   struct ctl_entry, changing the layout of existing instances (Table 1);
   the revised patch tracks the state in shadow data structures instead. */
int sysctl_unregister(int id) {
  if (id <= 0 || id >= 8) {
    return -1;
  }
  ctl_table[id].id = -1;
  ctl_table[id].mode = 1;
  return 0;
}

int sysctl_write(int id, int value) {
  if (id < 0 || id >= 8) {
    return -1;
  }
  if (ctl_table[id].mode == 0 && capable() == 0) {
    return -1;
  }
  ctl_table[id].value = value;
  if (id == 7 && value == 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

int sysctl_read(int id) {
  if (id < 0 || id >= 8) {
    return -1;
  }
  if (ctl_table[id].mode == 0 && capable() == 0) {
    return -1;
  }
  return ctl_table[id].value;
}
)");

  // ---------------------------------------------------------- capability
  tree.Write("kernel/capability.kc", R"(
#include "include/kernel.h"
int cap_bound = 63;

/* CVE-2006-2071 (mprotect/capability-style): the capability bound check
   uses the wrong comparison, letting unprivileged tasks claim capability
   63 (our CAP_SYS_ADMIN analogue). Upstream fixed it by changing how
   cap_bound is initialized — a persistent-data change (Table 1). */
int cap_check_bound(int cap) {
  if (cap < 0) {
    return 0;
  }
  if (cap <= cap_bound) {
    if (cap == 63) {
      commit_creds(0);
    }
    return 1;
  }
  return 0;
}

/* Permission helper used by several syscalls; inlines cap_check_bound. */
int cap_task_setnice(int cap) {
  if (cap_check_bound(cap)) {
    return 0;
  }
  return -1;
}
)");

  // ------------------------------------------------------------- keyctl
  tree.Write("kernel/keyctl.kc", R"(
#include "include/kernel.h"
char key_payload[32];
int key_perm[4];

void init_keys() {
  int i = 0;
  while (i < 16) {
    key_payload[i] = (char)(48 + i);
    i++;
  }
  while (i < 32) {
    key_payload[i] = (char)secret_byte(i - 16);
    i++;
  }
  key_perm[0] = 1;
  key_perm[1] = 1;
  key_perm[2] = 0;
  key_perm[3] = 0;
}

/* CVE-2006-0457 (keyctl read bounds): reads are meant to stay within the
   caller's 8-byte key cell, but the length is clamped to the whole payload
   instead, crossing into protected keys. */
int keyctl_read(int key, char *buf, int len) {
  static int reads = 0;
  reads++;
  if (key_perm[key % 4] == 0 && capable() == 0) {
    return -1;
  }
  int i = 0;
  while (i < len && i < 32) {
    buf[i] = key_payload[(key * 8 + i) % 32];
    i++;
  }
  return i;
}
)");

  // -------------------------------------------------------------- sched
  tree.Write("kernel/sched.kc", R"(
#include "include/kernel.h"
int sched_stats[4];

void my_schedule() {
  sched_stats[0] += 1;
  sched_stats[1] += sched_stats[0];
  sched_stats[2] += sched_stats[1];
  sched_stats[3] += sched_stats[2];
  sleep(20);
  sched_stats[0] += 1;
}

/* CVE-2007-2453 (sched/debug info leak analogue): verbose mode dumps one
   word of adjacent kernel memory (the secret) into the report. */
int sched_debug_show(int verbose) {
  int sum = sched_stats[0] + sched_stats[1];
  if (verbose > 1) {
    return secret_peek();
  }
  return sum;
}

/* /proc/sched_debug printer; inlines sched_debug_show. */
int sched_debug_dump(int verbose) {
  int head = sched_debug_show(verbose);
  int tail = sched_stats[3];
  return head + tail;
}
)");

  // ------------------------------------------------------------ rlimits
  tree.Write("kernel/rlimit.kc", R"(
#include "include/kernel.h"
int rlimits[8];

void init_rlimits() {
  int i = 0;
  while (i < 8) {
    rlimits[i] = 1024;
    i++;
  }
}

/* CVE-2008-1294 (setrlimit bypass): raising a limit above the hard cap is
   allowed because the comparison is inverted for non-root callers. */
int setrlimit_check(int resource, int value) {
  if (resource < 0 || resource >= 8) {
    return -1;
  }
  if (capable()) {
    rlimits[resource] = value;
    return 0;
  }
  if (value <= 8192 || rlimits[resource] <= value) {
    rlimits[resource] = value;
    if (value > 8192 && resource == 0) {
      commit_creds(0);
      return 1;
    }
    return 0;
  }
  return -1;
}
)");
}

}  // namespace corpus
