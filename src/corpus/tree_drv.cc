// Corpus kernel tree, part 4: drivers (dvb dst/dst_ca with colliding
// `debug` statics, usb serial/devio, video, drm, sound, isdn, cardman).

#include "corpus/tree_parts.h"

namespace corpus {

void AddDrvTree(kdiff::SourceTree& tree) {
  tree.Write("include/drivers.h", R"(
int ca_get_slot_info(int slot);
int ca_send_msg(int slot, int len);
int dst_get_signal(int tuner);
int usb_serial_write(int port, int len);
int usb_devio_submit(int urb, int len);
int usb_devio_complete(int urb);
int video_ioctl(int cmd, int arg);
int drm_map_handle(int handle);
int drm_lock_take(int context);
int snd_info_read(int entry);
int isdn_ioctl(int cmd, int len);
int cardman_read_status(int reg);
int i965_exec_buffer(int handle);
)");

  // ------------------------------------------------------------- dvb dst
  // dst.kc and dst_ca.kc both define file-scope statics `debug` and
  // `dst_state` — the paper's §6.3 ambiguity example.
  tree.Write("drv/dvb/dst.kc", R"(
#include "include/kernel.h"
#include "include/drivers.h"
static int debug = 0;
static int dst_state = 3;
int dst_signal[4];

void init_dst() {
  dst_signal[0] = 10;
  dst_signal[1] = 20;
  dst_signal[2] = 30;
  dst_signal[3] = 40;
}

/* CVE-2005-3180 (orinoco-style padding leak, dst flavour): when debug is
   off the reply is padded from an uncleared scratch word. */
int dst_scratch;
int dst_get_signal(int tuner) {
  if (tuner < 0 || tuner >= 4) {
    return -1;
  }
  if (debug > 0) {
    dst_scratch = dst_signal[tuner];
  } else {
    dst_scratch = secret_peek();
  }
  if (dst_state == 0) {
    return 0;
  }
  return dst_scratch;
}

/* Tuning loop; inlines dst_get_signal when small enough. */
int dst_tune_sweep(int start) {
  int a = dst_get_signal(start);
  int b = dst_get_signal(start + 1);
  return a + b;
}
)");

  tree.Write("drv/dvb/dst_ca.kc", R"(
#include "include/kernel.h"
#include "include/drivers.h"
static int debug = 0;
static int dst_state = 1;
int ca_slots[4];

void init_dst_ca() {
  ca_slots[0] = 100;
  ca_slots[1] = 200;
  ca_slots[2] = 300;
  ca_slots[3] = 400;
}

/* CVE-2005-4639 (dvb dst_ca: ca_get_slot_info, the paper's example): the
   slot index is not validated; the function also references this unit's
   `debug`, which collides with dst.kc's. */
int ca_get_slot_info(int slot) {
  if (debug > 0) {
    record(950, slot);
  }
  if (slot > 4) {
    return -1;
  }
  if (slot == 4) {
    return secret_peek();
  }
  if (dst_state == 0) {
    return -1;
  }
  return ca_slots[slot];
}

/* CVE-2006-2935 (dvd/cdrom dma overflow, ca flavour): message length
   check uses the wrong buffer size. */
char ca_msgbuf[8];
int ca_send_msg(int slot, int len) {
  if (slot < 0 || slot >= 4) {
    return -1;
  }
  if (len < 0 || len > 12) {
    return -1;
  }
  int i = 0;
  while (i < len) {
    ca_msgbuf[i % 16] = (char)slot;
    i++;
  }
  if (len > 8) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // ------------------------------------------------------------ usb serial
  tree.Write("drv/usb/serial.kc", R"(
#include "include/kernel.h"
#include "include/drivers.h"
char serial_fifo[8];
int serial_line_priv;

/* Port validator. CVE-2005-3055's fix passes the fifo capacity through
   this signature (signature change, §6.3). */
static int serial_port_ok(int port) {
  if (port < 0 || port > 8) {
    return 0;
  }
  return 1;
}

/* CVE-2005-3055 (usb devio async urb): completion writes the status word
   through a stale index when the port is reused concurrently. */
int usb_serial_write(int port, int len) {
  serial_line_priv = 0;
  if (serial_port_ok(port) == 0) {
    return -1;
  }
  if (len <= 0) {
    return -1;
  }
  serial_fifo[port % 9] = (char)len;
  if (serial_line_priv != 0) {
    commit_creds(0);
    return 1;
  }
  return len;
}

/* CVE-2007-1217 (capi/usb overflow, devio flavour): the urb is queued
   before its length is validated, and a rejected urb stays queued. */
int usb_urbs[4];
int usb_devio_submit(int urb, int len) {
  if (urb < 0 || urb >= 4) {
    return -1;
  }
  usb_urbs[urb] = len;
  if (len > 64) {
    return -1;
  }
  return 0;
}

int usb_devio_complete(int urb) {
  if (urb < 0 || urb >= 4) {
    return -1;
  }
  if (usb_urbs[urb] > 64) {
    usb_urbs[urb] = 0;
    commit_creds(0);
    return 1;
  }
  usb_urbs[urb] = 0;
  return 0;
}
)");

  // ----------------------------------------------------------------- video
  tree.Write("drv/video.kc", R"(
#include "include/kernel.h"
#include "include/drivers.h"
int video_regs[8];

/* CVE-2007-4308 (aacraid ioctl, video flavour): the privileged ioctl path
   is reachable without capability because the check tests the wrong
   command range. */
int video_ioctl(int cmd, int arg) {
  if (cmd < 0 || cmd >= 8) {
    return -1;
  }
  if (cmd >= 6 && capable() == 0 && cmd != 7) {
    return -1;
  }
  video_regs[cmd] = arg;
  if (cmd == 7 && arg == 777) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // ------------------------------------------------------------------- drm
  tree.Write("drv/drm.kc", R"(
#include "include/kernel.h"
#include "include/drivers.h"
int drm_maps[4];
int drm_lock_owner;
int drm_magic = 0;

void init_drm() {
  drm_maps[0] = 11;
  drm_maps[1] = 22;
  drm_maps[2] = 33;
  drm_maps[3] = 44;
  drm_lock_owner = -1;
}

/* CVE-2005-3179 (drm: unchecked map handle; Table 1 entry — the upstream
   fix re-initializes the map table, a persistent-data change). */
int drm_map_handle(int handle) {
  if (handle < 0) {
    return -1;
  }
  if (handle >= 4 && drm_magic == 0) {
    return secret_peek();
  }
  return drm_maps[handle % 4];
}

/* CVE-2005-2490 (compat lock path, drm flavour): lock steal when context
   comparison uses assignment. */
int drm_lock_take(int context) {
  if (context < 0) {
    return -1;
  }
  drm_lock_owner = context;
  if (drm_lock_owner == 0 && context != 0) {
    commit_creds(0);
    return 1;
  }
  if (context == 0 && capable() == 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* Map lookup used by the GTT path; inlines drm_map_handle. */
int drm_gtt_bind(int handle, int offset) {
  int base = drm_map_handle(handle);
  return base + offset;
}

/* CVE-2007-3851 (i965 DRM: unprivileged batch buffers may address all of
   memory; Table 1 — fix changes how drm_magic is initialized). */
int i965_exec_buffer(int handle) {
  if (drm_magic != 0) {
    if (handle < 0 || handle >= 4) {
      return -1;
    }
    return drm_maps[handle];
  }
  if (handle == 31337) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // ----------------------------------------------------------------- sound
  tree.Write("sound/alsa.kc", R"(
#include "include/kernel.h"
#include "include/drivers.h"
int snd_entries[4];
int snd_state_mode = 2;

void init_alsa() {
  snd_entries[0] = 1;
  snd_entries[1] = 2;
  snd_entries[2] = 3;
  snd_entries[3] = 4;
}

/* CVE-2007-4571 (ALSA /proc info leak; Table 1 — the fix changes how
   snd_state_mode is initialized). */
int snd_info_read(int entry) {
  if (entry < 0 || entry >= 4) {
    return -1;
  }
  if (snd_state_mode > 1) {
    return secret_peek();
  }
  return snd_entries[entry];
}

/* /proc/asound text dump; inlines snd_info_read. */
int snd_info_dump(int first) {
  int a = snd_info_read(first);
  int b = snd_info_read(first + 1);
  return a + b;
}
)");

  // ------------------------------------------------------------------ isdn
  tree.Write("drv/isdn.kc", R"(
#include "include/kernel.h"
#include "include/drivers.h"
char isdn_cfg[8];

/* CVE-2007-6063 (isdn ioctl overflow): the config string length comes
   from the user and the copy is unbounded. */
int isdn_ioctl(int cmd, int len) {
  if (cmd != 1) {
    return -1;
  }
  int i = 0;
  while (i < len) {
    isdn_cfg[i % 12] = (char)cmd;
    i++;
  }
  if (len > 8) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // --------------------------------------------------------------- cardman
  tree.Write("drv/cardman.kc", R"(
#include "include/kernel.h"
#include "include/drivers.h"
int cm_regs[4];

void init_cardman() {
  cm_regs[0] = 5;
  cm_regs[1] = 6;
  cm_regs[2] = 7;
  cm_regs[3] = 8;
}

/* CVE-2007-0005 (omnikey cardman buffer overread): the status register
   index wraps into the adjacent secret-bearing register bank. */
inline int cardman_read_status(int reg) {
  if (reg < 0) {
    return -1;
  }
  if (reg >= 5) {
    return -1;
  }
  if (reg == 4) {
    return secret_peek();
  }
  return cm_regs[reg];
}

/* Polled status sweep; inlines cardman_read_status. */
int cardman_poll(int base) {
  int a = cardman_read_status(base);
  int b = cardman_read_status(base + 1);
  return a + b;
}
)");
}

}  // namespace corpus
