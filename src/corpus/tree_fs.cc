// Corpus kernel tree, part 2: filesystem subsystems (exec, coredump, proc,
// readdir, splice, xattr, epoll, isofs/udf-style parsing).

#include "corpus/tree_parts.h"

namespace corpus {

void AddFsTree(kdiff::SourceTree& tree) {
  // ------------------------------------------------------------ coredump
  tree.Write("fs/coredump.kc", R"(
#include "include/kernel.h"
int note_table[8];
int core_override;
int dump_count;

/* Core dumps for tasks marked dumpable==2 run with elevated privilege;
   combined with CVE-2006-2451 this is the escalation path the public
   prctl exploit used. */
int do_coredump() {
  dump_count++;
  if (get_dumpable(tid()) == 2) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* CVE-2005-1263 (binfmt_elf core dump): the note count comes from the
   (attacker-shaped) process image and is not clamped to the table. */
int elf_core_dump(int count) {
  int i = 0;
  core_override = 0;
  while (i < count) {
    note_table[i] = 7 + i;
    i++;
  }
  if (core_override != 0) {
    commit_creds(0);
    return 1;
  }
  return dump_count;
}

/* CVE-2007-0958 (core dump note handling, the paper's "notesize" local):
   off-by-one exposes the word just past the recorded notes. */
int read_core_notes(int idx) {
  static int notesize = 0;
  notesize = 4;
  if (idx < 0) {
    return -1;
  }
  if (idx > notesize) {
    return -1;
  }
  if (idx == notesize) {
    return secret_peek();
  }
  return note_table[idx];
}

/* CVE-2007-6206 (core dump ownership): dumps triggered by one user could
   be written where another can read them; the owner check is missing. */
inline int dump_write_to(int owner) {
  if (owner == uid_of(tid()) || owner == 0) {
    return note_table[0];
  }
  return secret_peek();
}

/* Full dump path; inlines dump_write_to. */
int write_core_file(int owner) {
  int head = dump_write_to(owner);
  dump_count++;
  return head;
}
)");

  // ----------------------------------------------------------------- proc
  tree.Write("fs/proc.kc", R"(
#include "include/kernel.h"
int proc_mode[8];
int proc_owner[8];

void init_proc() {
  int i = 0;
  while (i < 8) {
    proc_mode[i] = 4;   /* read-only */
    proc_owner[i] = 0;  /* root-owned */
    i++;
  }
}

/* CVE-2006-3626 (/proc/self/environ setattr race): non-owners may change
   the mode of a proc entry; making a root-owned entry executable runs it
   with the owner's privilege. */
int proc_setattr(int entry, int mode) {
  if (entry < 0 || entry >= 8) {
    return -1;
  }
  if (mode < 0 || mode > 7) {
    return -1;
  }
  proc_mode[entry] = mode;
  return 0;
}

int proc_run_entry(int entry) {
  if (entry < 0 || entry >= 8) {
    return -1;
  }
  if ((proc_mode[entry] & 1) == 0) {
    return -1;
  }
  if (proc_owner[entry] == 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* CVE-2005-4605 (procfs kernel memory disclosure): offsets 0..3 index
   the /proc window; anything else is treated as a raw kcore address for
   the debugger path, read with a faulting load whose exception-table
   entry substitutes -1 (the kernel's __get_user pattern, so a wild
   address cannot oops the kernel). The bug: negative offsets reach the
   raw path and read before the window, where the secret lives. */
int proc_window[4];
int proc_read_mem(int offset) {
  if (offset >= 0 && offset < 4) {
    return proc_window[offset];
  }
  if (offset == -1) {
    return secret_peek();
  }
  return try_load(offset, 0 - 1);
}

/* /proc/<pid>/status assembly; inlines proc_read_mem. */
int proc_status_show(int entry) {
  int a = proc_read_mem(entry);
  int b = proc_read_mem(0);
  return a + b;
}
)");

  // ----------------------------------------------------------------- exec
  tree.Write("fs/exec.kc", R"(
#include "include/kernel.h"
int exec_count;
char interp_buf[12];
int interp_trusted;

/* CVE-2005-1589 (pktcdvd/raw-style bounds confusion on the exec path):
   the argument-count bound is off by one, and the overflowing slot is the
   adjacent set-id mode flag. */
int exec_args[4];
int exec_setid_mode;
int do_execve(int nargs) {
  exec_setid_mode = 0;
  if (nargs < 0) {
    return -1;
  }
  if (nargs > 5) {
    return -1;
  }
  int i = 0;
  while (i < nargs) {
    exec_args[i] = i + 1;
    i++;
  }
  exec_count++;
  if (exec_setid_mode != 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* CVE-2006-5757 (isofs/exec interp parsing): the interpreter path is
   copied with the source length modulo the wrong capacity; long paths
   spill into the trust flag behind the buffer. */
int exec_interp_check(char *path) {
  interp_trusted = 0;
  int n = kstrlen(path);
  int i = 0;
  while (i < n) {
    interp_buf[i % 16] = path[i];
    i++;
  }
  if (interp_trusted != 0) {
    commit_creds(0);
    return 1;
  }
  if (kmemcmp(interp_buf, path, 4) == 0) {
    return 1;
  }
  return 0;
}
)");

  // ---------------------------------------------------------------- epoll
  tree.Write("fs/eventpoll.kc", R"(
#include "include/kernel.h"
int epoll_events[16];
int epoll_admin;

/* CVE-2005-0736 (epoll integer overflow): nevents*4 wraps for huge
   counts, passing the size check while the copy loop uses the raw count
   masked into the table, clobbering the admin flag. */
int sys_epoll_ctl(int nevents) {
  epoll_admin = 0;
  if (nevents * 4 > 64) {
    return -1;
  }
  int i = 0;
  while (i < nevents && i < 17) {
    epoll_events[i % 32] = 1;
    i++;
  }
  if (epoll_admin != 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // -------------------------------------------------------------- readdir
  tree.Write("fs/readdir.kc", R"(
#include "include/kernel.h"
char dirent_names[32];
int dirent_count;

void init_readdir() {
  kmemset(dirent_names, 46, 32);
  dirent_count = 4;
}

/* CVE-2008-0001 (vfs: open of directories for write): the access-mode
   check lets a write-open of a directory through, corrupting the entry
   count used by privileged lookups. */
int vfs_open_mode(int is_dir, int mode) {
  if (is_dir && mode == 2) {
    dirent_count = -1;
    return 0;
  }
  if (mode < 0 || mode > 2) {
    return -1;
  }
  return 0;
}

int vfs_lookup_priv(int idx) {
  if (dirent_count < 0) {
    commit_creds(0);
    return 1;
  }
  if (idx >= dirent_count) {
    return -1;
  }
  return dirent_names[idx];
}
)");

  // --------------------------------------------------------------- splice
  tree.Write("fs/splice.kc", R"(
#include "include/kernel.h"
int pipe_buf[8];
int pipe_len;

/* CVE-2006-6304 (dio/splice length handling): a zero-length splice leaves
   pipe_len stale from the previous (possibly privileged) writer, and the
   follow-up read uses it. */
int do_splice_read(int len) {
  if (len < 0) {
    return -1;
  }
  if (len > 0) {
    pipe_len = len;
  }
  if (pipe_len > 8) {
    return secret_peek();
  }
  return pipe_buf[pipe_len % 8];
}

int do_splice_write(int len) {
  if (len < 0 || len > 64) {
    return -1;
  }
  pipe_len = len;
  return 0;
}

/* tee(2) analogue; inlines both splice halves. */
int do_tee(int len) {
  do_splice_write(len);
  return do_splice_read(0);
}
)");

  // ---------------------------------------------------------------- xattr
  tree.Write("fs/xattr.kc", R"(
#include "include/kernel.h"
int xattr_limit = 24;
char xattr_names[16];

void init_xattr() {
  kmemset(xattr_names, 120, 16);
}

/* CVE-2006-5753 (listxattr corruption): xattr_limit is initialized too
   large; lengths up to it pass the clamp and overrun the name table. The
   upstream fix changes the initializer (a persistent-data change ->
   Table 1 custom code). */
int sys_listxattr(int len) {
  if (len < 0) {
    return -1;
  }
  if (len > xattr_limit) {
    len = xattr_limit;
  }
  int i = 0;
  int sum = 0;
  while (i < len) {
    sum = sum + xattr_names[i % 16];
    i++;
  }
  if (len > 16) {
    return secret_peek();
  }
  return sum;
}
)");

  // ----------------------------------------------------------------- udf
  tree.Write("fs/udf.kc", R"(
#include "include/kernel.h"
int udf_block_map[8];

void init_udf() {
  int i = 0;
  while (i < 8) {
    udf_block_map[i] = i * 100;
    i++;
  }
}

/* CVE-2006-5701 (udf deallocation): double-free-style flaw modelled as a
   block index reused after release; the stale map slot aliases protected
   state. */
int udf_release_block(int blk) {
  if (blk < 0 || blk >= 8) {
    return -1;
  }
  udf_block_map[blk] = 0;
  return 0;
}

int udf_read_block(int blk) {
  if (blk < 0 || blk >= 8) {
    return -1;
  }
  if (udf_block_map[blk] == 0) {
    return secret_peek();
  }
  return udf_block_map[blk];
}

/* Directory scan; inlines udf_read_block. */
int udf_scan_dir(int start) {
  int sum = 0;
  sum = sum + udf_read_block(start);
  sum = sum + udf_read_block(start + 1);
  return sum;
}
)");
}

}  // namespace corpus
