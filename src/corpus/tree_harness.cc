// Corpus kernel tree, part 7: the harness — kernel_init, the per-CVE
// exploit programs (our "userspace": kernel threads driving the syscall-
// style entry points), and the stress workload (§6.2 criterion 2).
//
// Exploit protocol: each exploit resets any global state it corrupts (by
// re-running the subsystem init), attempts the attack, then records
// (900, success). Escalation exploits check current_uid() == 0;
// disclosure exploits compare the leaked value against the known canary
// (193573 / the 'A'.. byte sequence), exactly as public PoCs hardcode
// expected values.

#include "corpus/tree_parts.h"

namespace corpus {

void AddHarnessTree(kdiff::SourceTree& tree) {
  // Buffer-cache unit supporting CVE-2006-4813 (kcopy_bounded's caller).
  tree.Write("fs/buffer.kc", R"(
#include "include/kernel.h"
char block_buf[4];
char block_priv[8];

void init_buffer() {
  kmemset(block_buf, 66, 4);
  int i = 0;
  while (i < 8) {
    block_priv[i] = (char)secret_byte(i);
    i++;
  }
}

/* Public read of the 4-byte block header; the bounded copy helper is
   supposed to clamp to `cap`. */
int block_prepare_read(char *dst, int n) {
  return kcopy_bounded(dst, block_buf, n, 4);
}
)");

  // dm-crypt unit for CVE-2006-0095.
  tree.Write("drv/dmcrypt.kc", R"(
#include "include/kernel.h"
char crypt_key[8];
int crypt_active;

void init_dmcrypt() {
  int i = 0;
  while (i < 8) {
    crypt_key[i] = (char)secret_byte(i);
    i++;
  }
  crypt_active = 1;
}

/* CVE-2006-0095 (dm-crypt: key material not wiped on device release). */
int dmcrypt_release() {
  crypt_active = 0;
  return 0;
}

int dmcrypt_read_key(int i) {
  if (crypt_active == 0) {
    return crypt_key[i % 8];
  }
  if (capable() == 0) {
    return -1;
  }
  return crypt_key[i % 8];
}
)");

  tree.Write("kernel/init.kc", R"(
#include "include/kernel.h"
int boot_complete;

void kernel_init(int unused) {
  init_creds();
  init_secrets();
  init_time();
  init_sysctl();
  init_keys();
  init_rlimits();
  init_proc();
  init_readdir();
  init_xattr();
  init_udf();
  init_socket();
  init_cifs();
  init_nfs();
  init_dst();
  init_dst_ca();
  init_drm();
  init_alsa();
  init_cardman();
  init_shm();
  init_msg();
  init_fault();
  init_fpu();
  init_tmpfs();
  init_ext3();
  init_ipv6();
  init_buffer();
  init_dmcrypt();
  boot_complete = 1;
}
)");

  // ---------------------------------------------------------------------
  // Exploits. Entry names are xp_<cve-year>_<cve-num>.
  tree.Write("exploit/exploits.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
#include "include/drivers.h"
#include "include/mm.h"
#include "include/arch.h"
extern int cred_uid[64];

int escalated() {
  if (current_uid() == 0) {
    return 1;
  }
  return 0;
}

/* ---- 2008 ---- */

void xp_2008_0600(int unused) {
  /* vmsplice arbitrary write: clear our own uid slot. */
  sys_vmsplice((int)&cred_uid[tid() % 64], 0);
  record(900, escalated());
}

void xp_2008_0007(int unused) {
  fault_handler_dispatch(1, 4096);
  record(900, escalated());
}

void xp_2008_1294(int unused) {
  init_rlimits();
  setrlimit_check(0, 9000);
  record(900, escalated());
}

void xp_2008_1375(int unused) {
  futex_requeue(9, 5);
  record(900, escalated());
}

void xp_2008_0001(int unused) {
  init_readdir();
  vfs_open_mode(1, 2);
  vfs_lookup_priv(0);
  record(900, escalated());
}

/* ---- 2007 ---- */

void xp_2007_4573(int unused) {
  /* Unmasked syscall index reaches the management vector. */
  syscall_dispatch(4, 0);
  record(900, escalated());
}

void xp_2007_0958(int unused) {
  int v = read_core_notes(4);
  record(901, v);
  record(900, v == 193573);
}

void xp_2007_6206(int unused) {
  int v = dump_write_to(5);
  record(900, v == 193573);
}

void xp_2007_3848(int unused) {
  sys_set_pdeath(0, 31);
  record(900, escalated());
}

void xp_2007_2453(int unused) {
  int v = sched_debug_show(2);
  record(900, v == 193573);
}

void xp_2007_2875(int unused) {
  int v = nf_match_walk(4);
  record(900, v == 193573);
}

void xp_2007_2172(int unused) {
  ip_route_input(0 - 5);
  record(900, escalated());
}

void xp_2007_1217(int unused) {
  usb_devio_submit(0, 100);
  usb_devio_complete(0);
  record(900, escalated());
}

void xp_2007_4308(int unused) {
  video_ioctl(7, 777);
  record(900, escalated());
}

void xp_2007_3851(int unused) {
  i965_exec_buffer(31337);
  record(900, escalated());
}

void xp_2007_4571(int unused) {
  int v = snd_info_read(0);
  record(900, v == 193573);
}

void xp_2007_6063(int unused) {
  isdn_ioctl(1, 10);
  record(900, escalated());
}

void xp_2007_0005(int unused) {
  int v = cardman_read_status(4);
  record(900, v == 193573);
}

void xp_2007_4997(int unused) {
  int v = wifi_beacon_parse(1);
  record(900, v == 193573);
}

void xp_2007_5904(int unused) {
  cifs_mount_parse("aaaaaaaaaaaa");
  record(900, escalated());
}

void xp_2007_3731(int unused) {
  ptrace_attach(0);
  record(900, escalated());
}

void xp_2007_6417(int unused) {
  int v = tmpfs_read_page(8);
  record(900, v == 193573);
}

void xp_2007_1592(int unused) {
  int v = ipv6_flowlabel_get(4);
  record(900, v == 193573);
}

/* ---- 2006 ---- */

void xp_2006_2451(int unused) {
  sys_prctl_set_dumpable(2);
  do_coredump();
  record(900, escalated());
}

void xp_2006_3626(int unused) {
  init_proc();
  proc_setattr(2, 5);
  proc_run_entry(2);
  record(900, escalated());
}

void xp_2006_2071(int unused) {
  cap_check_bound(63);
  record(900, escalated());
}

void xp_2006_0457(int unused) {
  char buf[32];
  init_keys();
  keyctl_read(0, buf, 32);
  int ok = 0;
  if (buf[16] == secret_byte(0) && buf[17] == secret_byte(1)) {
    ok = 1;
  }
  record(900, ok);
}

void xp_2006_4813(int unused) {
  char dst[16];
  init_buffer();
  block_prepare_read(dst, 8);
  int ok = 0;
  if (dst[4] == secret_byte(0) && dst[5] == secret_byte(1)) {
    ok = 1;
  }
  record(900, ok);
}

void xp_2006_5753(int unused) {
  int v = sys_listxattr(20);
  record(900, v == 193573);
}

void xp_2006_5701(int unused) {
  init_udf();
  udf_release_block(3);
  int v = udf_read_block(3);
  record(900, v == 193573);
}

void xp_2006_1342(int unused) {
  init_socket();
  sock_setsockopt(31337, 0 - 1);
  record(900, escalated());
}

void xp_2006_1343(int unused) {
  char buf[8];
  sock_getsockopt(9, buf, 0);
  int v = sock_getsockopt(0, buf, 4);
  record(900, v == 193573);
}

void xp_2006_0038(int unused) {
  nf_replace_table(536870912, 7);
  record(900, escalated());
}

void xp_2006_1857(int unused) {
  sctp_param_parse(9, 3);
  record(900, escalated());
}

void xp_2006_3745(int unused) {
  sctp_bind_verify(80);
  record(900, escalated());
}

void xp_2006_2444(int unused) {
  int v = snmp_nat_translate(1, 13);
  record(900, v == 193573);
}

void xp_2006_6106(int unused) {
  bt_capi_recv(4, 2);
  record(900, escalated());
}

void xp_2006_3468(int unused) {
  nfs_fh_to_dentry(0 - 2);
  record(900, escalated());
}

void xp_2006_2935(int unused) {
  ca_send_msg(0, 10);
  record(900, escalated());
}

void xp_2006_1524(int unused) {
  sys_madvise(0, 4, 9);
  record(900, escalated());
}

void xp_2006_5871(int unused) {
  int v = smb_recv_trans(260);
  record(900, v == 193573);
}

void xp_2006_6053(int unused) {
  init_ext3();
  ext3_dir_entry(4);
  record(900, escalated());
}

void xp_2006_2934(int unused) {
  conntrack_tuple_hash(4, 9);
  record(900, escalated());
}

void xp_2006_0095(int unused) {
  init_dmcrypt();
  dmcrypt_release();
  int v = dmcrypt_read_key(0);
  record(900, v == secret_byte(0));
}

void xp_2006_6304(int unused) {
  do_splice_write(20);
  int v = do_splice_read(0);
  record(900, v == 193573);
}

void xp_2006_1056(int unused) {
  int v = fpu_read(4);
  record(900, v == 193573);
}

/* ---- 2005 ---- */

void xp_2005_4639(int unused) {
  int v = ca_get_slot_info(4);
  record(900, v == 193573);
}

void xp_2005_3180(int unused) {
  init_dst();
  int v = dst_get_signal(1);
  record(900, v == 193573);
}

void xp_2005_1263(int unused) {
  elf_core_dump(9);
  record(900, escalated());
}

void xp_2005_4605(int unused) {
  int v = proc_read_mem(0 - 1);
  record(900, v == 193573);
}

void xp_2005_1589(int unused) {
  do_execve(5);
  record(900, escalated());
}

void xp_2005_0736(int unused) {
  sys_epoll_ctl(536870912);
  record(900, escalated());
}

void xp_2005_2709(int unused) {
  init_sysctl();
  sysctl_unregister(7);
  sysctl_write(7, 0);
  record(900, escalated());
}

void xp_2005_3276(int unused) {
  init_time();
  int v = sys_gettime(4);
  record(900, v == 193573);
}

void xp_2005_2456(int unused) {
  ip_options_get(9);
  record(900, escalated());
}

void xp_2005_3055(int unused) {
  usb_serial_write(8, 3);
  record(900, escalated());
}

void xp_2005_3179(int unused) {
  int v = drm_map_handle(5);
  record(900, v == 193573);
}

void xp_2005_2490(int unused) {
  drm_lock_take(0);
  record(900, escalated());
}

void xp_2005_2548(int unused) {
  vlan_dev_ioctl(3, 1);
  record(900, escalated());
}

void xp_2005_2458(int unused) {
  zlib_inflate_block(8);
  record(900, escalated());
}

void xp_2005_3784(int unused) {
  init_msg();
  msg_receive(0, 99);
  int v = msg_receive(0, 0 - 1);
  record(900, v == 193573);
}

void xp_2005_1768(int unused) {
  do_brk_check(2147483392, 512);
  record(900, escalated());
}

void xp_2005_4811(int unused) {
  init_shm();
  int v = do_shmat(3, 1);
  record(900, v == 193573);
}

void xp_2006_5757(int unused) {
  exec_interp_check("aaaaaaaaaaaaaaa");
  record(900, escalated());
}

void xp_2008_1669(int unused) {
  fcntl_setown(1, 0);
  record(900, escalated());
}
)");

  // ---------------------------------------------------------------------
  // Stress workload: benign traffic through every subsystem.
  tree.Write("stress/stress.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
#include "include/drivers.h"
#include "include/mm.h"
#include "include/arch.h"

int stress_pass(int salt) {
  int sum = 0;
  sum += sys_prctl_set_dumpable(1);
  sum += do_coredump();
  sum += elf_core_dump(4);
  sum += read_core_notes(1);
  sum += proc_setattr(1, 4);
  sum += proc_read_mem(2);
  sum += proc_read_mem(536870912); /* wild kcore address: extable fixup */
  sum += do_execve(3);
  sum += exec_interp_check("ok");
  sum += sys_epoll_ctl(4);
  sum += sysctl_read(2);
  sum += sysctl_write(2, salt);
  sum += cap_task_setnice(10);
  sum += sys_clock_pair(0, 1);
  sum += sched_debug_dump(0);
  sum += setrlimit_check(1, 2048);
  sum += sock_setsockopt(1, 4);
  sum += nf_replace_table(4, salt);
  sum += nf_match_walk(2);
  sum += ip_options_get(4);
  sum += ip_rcv_packet(5, 1);
  sum += sctp_param_parse(4, 2);
  sum += sctp_bind_verify(8080);
  sum += snmp_nat_translate(salt, 4);
  sum += bt_capi_recv(1, 2);
  sum += wifi_beacon_parse(6);
  sum += cifs_mount_parse("cifs");
  sum += nfs_export_lookup(2, 0);
  sum += vlan_dev_config(5, 6);
  sum += ca_get_slot_info(1);
  sum += ca_send_msg(1, 4);
  sum += dst_tune_sweep(0);
  sum += usb_serial_write(1, 3);
  sum += usb_devio_submit(1, 8);
  sum += usb_devio_complete(1);
  sum += video_ioctl(2, salt);
  sum += drm_gtt_bind(1, 16);
  sum += drm_lock_take(tid());
  sum += snd_info_dump(0);
  sum += isdn_ioctl(1, 4);
  sum += cardman_poll(0);
  sum += do_brk_check(8192, 128);
  sum += sys_madvise(0, 4, 1);
  sum += do_shmat(0, 0);
  sum += shm_stat(1);
  sum += msg_receive(0, 2);
  sum += sem_undo_adjust(1, 1);
  sum += zlib_inflate_block(4);
  sum += smb_recv_trans(3);
  sum += udf_scan_dir(1);
  sum += do_tee(2);
  sum += sys_listxattr(8);
  sum += tmpfs_readahead(0);
  sum += ext3_dir_entry(1);
  sum += ipv6_flowlabel_get(2);
  sum += conntrack_tuple_hash(2, 80);
  sum += syscall_dispatch(1, salt);
  sum += syscall_dispatch(2, salt);
  sum += fpu_read(1);
  sum += fcntl_setown(2, tid());
  sum += keyctl_read_probe();
  sum += dmcrypt_read_key(1);
  return sum;
}

int keyctl_read_probe() {
  char buf[8];
  return keyctl_read(0, buf, 4);
}

void stress_main(int rounds) {
  int r = 0;
  int total = 0;
  while (r < rounds) {
    total += stress_pass(r);
    yield();
    r++;
  }
  record(902, 1);
}

void stress_worker(int rounds) {
  int r = 0;
  while (r < rounds) {
    my_schedule();
    stress_pass(r + 100);
    r++;
  }
  record(902, 2);
}
)");
}

}  // namespace corpus
