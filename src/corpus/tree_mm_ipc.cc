// Corpus kernel tree, part 5: memory management (vmsplice, mmap/brk,
// madvise, fault handlers) and IPC (shm, msg, sem).

#include "corpus/tree_parts.h"

namespace corpus {

void AddMmIpcTree(kdiff::SourceTree& tree) {
  tree.Write("include/mm.h", R"(
int sys_vmsplice(int dst_addr, int value);
int in_user_range(int addr);
int do_brk_check(int addr, int len);
int sys_madvise(int start, int len, int advice);
int fault_handler_dispatch(int kind, int addr);
int do_shmat(int seg, int flags);
int shm_read(int seg, int off);
int msg_receive(int q, int size);
int sem_undo_adjust(int sem, int delta);
int zlib_inflate_block(int len);
int smb_recv_trans(int count);
)");

  // ------------------------------------------------------------- vmsplice
  tree.Write("mm/vmsplice.kc", R"(
#include "include/kernel.h"
#include "include/mm.h"

/* User-controlled buffers live in thread stacks, far above kernel text
   and data. (A crude access_ok().) */
int in_user_range(int addr) {
  if (addr >= 12582912) {
    return 1;
  }
  return 0;
}

/* CVE-2008-0600 (vmsplice missing access_ok — the famous local root):
   the destination address is taken from the iovec without validation,
   giving an arbitrary kernel write. Public exploit available. */
int sys_vmsplice(int dst_addr, int value) {
  if (dst_addr == 0) {
    return -1;
  }
  int *p = (int*)dst_addr;
  *p = value;
  return 4;
}

/* Multi-iovec path; inlines sys_vmsplice. */
int sys_vmsplice_iov(int a0, int v0, int a1, int v1) {
  int n = sys_vmsplice(a0, v0);
  return n + sys_vmsplice(a1, v1);
}
)");

  // ----------------------------------------------------------------- mmap
  tree.Write("mm/mmap.kc", R"(
#include "include/kernel.h"
#include "include/mm.h"
int brk_end = 4096;
int mmap_min = 4096;

/* CVE-2005-1768 (exec/brk address wrap): addr+len can overflow; the
   wrapped end lands in kernel-reserved space and the mapping is granted. */
int do_brk_check(int addr, int len) {
  if (addr < mmap_min) {
    return -1;
  }
  if (len < 0) {
    return -1;
  }
  brk_end = addr + len;
  if (brk_end < 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* CVE-2006-1524 (madvise_remove bypasses file permissions): the advice
   that drops pages skips the writability check. */
int madvise_ro_mapping = 1;
int sys_madvise(int start, int len, int advice) {
  if (len < 0) {
    return -1;
  }
  if (advice == 9) {
    if (madvise_ro_mapping != 0) {
      commit_creds(0);
      return 1;
    }
    return 0;
  }
  if (advice < 0 || advice > 4) {
    return -1;
  }
  return 0;
}
)");

  // ------------------------------------------------------- fault handlers
  tree.Write("mm/fault.kc", R"(
#include "include/kernel.h"
#include "include/mm.h"
int fault_handlers[2];
int fault_default_priv;

void fault_user(int addr) {
  record(951, addr);
}

void fault_kernel(int addr) {
  record(952, addr);
  commit_creds(0);
}

void init_fault() {
  fault_handlers[0] = fault_user;
  fault_handlers[1] = fault_kernel;
  fault_default_priv = 0;
}

/* CVE-2008-0007 (insufficient range checks in fault handlers; Table 1 —
   the upstream fix changes the handler table initialization). */
int fault_handler_dispatch(int kind, int addr) {
  if (kind < 0 || kind > 1) {
    return -1;
  }
  invoke(fault_handlers[kind], addr);
  return 0;
}
)");

  // ------------------------------------------------------------------ shm
  tree.Write("ipc/shm.kc", R"(
#include "include/kernel.h"
#include "include/mm.h"
int shm_perm[4];
int shm_segs[4];

void init_shm() {
  int i = 0;
  while (i < 4) {
    shm_perm[i] = 1;
    shm_segs[i] = 1000 + i;
    i++;
  }
  shm_perm[3] = 0;            /* root-only segment */
  shm_segs[3] = secret_peek();
}

/* CVE-2005-2490-adjacent shmat check (modelled on the 2.6.9 shm perm
   flaw): SHM_RDONLY attaches skip the permission test entirely. */
int do_shmat(int seg, int flags) {
  if (seg < 0 || seg >= 4) {
    return -1;
  }
  if (flags != 1) {
    if (shm_perm[seg] == 0 && capable() == 0) {
      return -1;
    }
  }
  return shm_segs[seg];
}

int shm_read(int seg, int off) {
  if (seg < 0 || seg >= 4) {
    return -1;
  }
  return shm_segs[seg] + off;
}

/* shmctl IPC_STAT; inlines do_shmat and shm_read. */
int shm_stat(int seg) {
  int base = do_shmat(seg, 0);
  if (base < 0) {
    return -1;
  }
  return shm_read(seg, 0);
}
)");

  // ------------------------------------------------------------------ msg
  tree.Write("ipc/msg.kc", R"(
#include "include/kernel.h"
#include "include/mm.h"
int msg_queue[8];
int msg_qlen;

void init_msg() {
  msg_qlen = 0;
}

/* CVE-2005-3784 (auto-reap/ptrace msg flavour): receiving with a negative
   size is treated as "drain" but the drain loop trusts the stale queue
   length set by a dying privileged writer. */
int msg_receive(int q, int size) {
  if (q != 0) {
    return -1;
  }
  if (size < 0) {
    if (msg_qlen > 8) {
      return secret_peek();
    }
    msg_qlen = 0;
    return 0;
  }
  msg_qlen = size;
  if (size > 8) {
    return -1;
  }
  return msg_queue[size % 8];
}

/* CVE-2006-1858-like sem adjustment (wrong bounds on undo list). */
int sem_values[4];
int sem_undo_adjust(int sem, int delta) {
  if (sem < 0 || sem > 4) {
    return -1;
  }
  sem_values[sem % 4] = sem_values[sem % 4] + delta;
  if (sem == 4 && delta == -1) {
    commit_creds(0);
    return 1;
  }
  return sem_values[sem % 4];
}
)");

  // ------------------------------------------------------------------ zlib
  tree.Write("lib/zlib.kc", R"(
#include "include/kernel.h"
#include "include/mm.h"
char inflate_window[8];
int inflate_priv;

/* CVE-2005-2458 (zlib inflate bounds): a crafted block length walks the
   window pointer past the end. */
int zlib_inflate_block(int len) {
  inflate_priv = 0;
  if (len < 0) {
    return -1;
  }
  int i = 0;
  while (i <= len && i < 9) {
    inflate_window[i % 16] = (char)len;
    i++;
  }
  if (inflate_priv != 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // ------------------------------------------------------------------ smb
  tree.Write("fs/smbfs.kc", R"(
#include "include/kernel.h"
#include "include/mm.h"
int smb_params[4];

/* CVE-2006-5871 (smbfs mount parameter handling): the parameter count is
   read as a char and sign-extends, bypassing the bound. */
int smb_recv_trans(int count) {
  char c = (char)count;
  int n = c;
  if (n > 4) {
    return -1;
  }
  if (count > 4 && n <= 4) {
    return secret_peek();
  }
  int i = 0;
  int sum = 0;
  while (i < n) {
    sum = sum + smb_params[i];
    i++;
  }
  return sum;
}
)");
}

}  // namespace corpus
