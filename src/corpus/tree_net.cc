// Corpus kernel tree, part 3: networking (sockets, netfilter, ipv4
// options, sctp, snmp nat helper, bluetooth, ieee80211, cifs/smb, nfs).

#include "corpus/tree_parts.h"

namespace corpus {

void AddNetTree(kdiff::SourceTree& tree) {
  tree.Write("include/net.h", R"(
int sock_setsockopt(int level, int optlen);
int sock_getsockopt(int level, char *buf, int len);
int nf_replace_table(int num_counters, int counter0);
int nf_match_walk(int n);
int ip_options_get(int optlen);
int ip_route_input(int daddr);
int sctp_param_parse(int plen, int ptype);
int sctp_bind_verify(int port);
int snmp_nat_translate(int ip, int len);
int bt_capi_recv(int ctrl, int len);
int wifi_beacon_parse(int ies_len);
int cifs_mount_parse(char *opts);
int nfs_fh_to_dentry(int fh);
int vlan_dev_ioctl(int cmd, int arg);
)");

  // --------------------------------------------------------------- socket
  tree.Write("net/socket.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
char sock_optbuf[16];
int sock_priv_level;

void init_socket() {
  kmemset(sock_optbuf, 7, 16);
  sock_priv_level = 0;
}

/* CVE-2006-1342 (af_inet setsockopt sign confusion): a negative optlen
   passes the maximum check and the masked copy corrupts the privileged
   option level stored behind the buffer. */
int sock_setsockopt(int level, int optlen) {
  if (optlen > 16) {
    return -1;
  }
  if (optlen < 0) {
    sock_priv_level = level;
  }
  if (sock_priv_level == 31337) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* CVE-2006-1343 (getsockopt reply disclosure): the reply carries a
   scratch word left over from the last privileged request instead of the
   option data. */
int sock_reply_scratch;
int sock_getsockopt(int level, char *buf, int len) {
  int i = 0;
  if (level == 9) {
    if (capable() == 0) {
      sock_reply_scratch = secret_peek();
      return -1;
    }
    sock_reply_scratch = secret_peek();
    return 0;
  }
  while (i < len && i < 16) {
    buf[i] = sock_optbuf[i];
    i++;
  }
  return sock_reply_scratch;
}
)");

  // ------------------------------------------------------------ netfilter
  tree.Write("net/netfilter.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
int nf_counters[8];
int nf_hook_priv;

/* Size validation helper. CVE-2006-0038's fix changes this function's
   signature (it must learn the element size), the class of change no
   source-level updater supports (§6.3). */
static int nf_size_ok(int count) {
  int bytes = count * 4;
  if (bytes > 32) {
    return 0;
  }
  return 1;
}

/* CVE-2006-0038 (netfilter do_replace integer overflow): num_counters is
   multiplied into a byte size that wraps, so the allocation check passes
   while the copy loop runs past the table. */
int nf_replace_table(int num_counters, int counter0) {
  nf_hook_priv = 0;
  if (nf_size_ok(num_counters) == 0) {
    return -1;
  }
  int i = 0;
  while (i < num_counters && i < 9) {
    nf_counters[i] = counter0;
    i++;
  }
  if (nf_hook_priv != 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* CVE-2007-2875 (cpuset/seq read off-by-one, netfilter flavour): the walk
   visits one rule past the end and reports its "match" word. */
int nf_rules[4];
int nf_match_walk(int n) {
  int sum = 0;
  int i = 0;
  if (n > 4) {
    return -1;
  }
  while (i <= n) {
    if (i == 4) {
      sum = sum + secret_peek();
    } else {
      sum = sum + nf_rules[i];
    }
    i++;
  }
  return sum;
}
)");

  // ----------------------------------------------------------------- ipv4
  tree.Write("net/ipv4.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
char ip_optbuf[8];
int route_priv;

/* CVE-2005-2456 (ipsec/ip options array bound): the option length check
   allows exactly one byte too many, and the overflowing byte lands in the
   routing privilege flag. */
int ip_options_get(int optlen) {
  route_priv = 0;
  if (optlen < 0) {
    return -1;
  }
  if (optlen > 9) {
    return -1;
  }
  int i = 0;
  while (i < optlen) {
    ip_optbuf[i] = (char)65;
    i++;
  }
  if (route_priv != 0) {
    commit_creds(0);
    return 1;
  }
  return optlen;
}

/* CVE-2007-2172 (fib_semantics type confusion): a martian destination is
   classified as local, so replies execute the local-delivery path with
   kernel privileges. */
inline int ip_route_input(int daddr) {
  if (daddr == 0) {
    return -1;
  }
  if (daddr < 0) {
    commit_creds(0);
    return 1;
  }
  return daddr % 4;
}

/* Receive path; inlines ip_route_input. */
int ip_rcv_packet(int daddr, int len) {
  if (len < 0) {
    return -1;
  }
  return ip_route_input(daddr);
}
)");

  // ----------------------------------------------------------------- sctp
  tree.Write("net/sctp.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
int sctp_params[8];
int sctp_assoc_priv;

/* Chunk-length validator. CVE-2006-1857's fix widens this signature to
   pass the chunk type (signature change, §6.3). */
static int sctp_len_ok(int plen) {
  if (plen < 0) {
    return 0;
  }
  return 1;
}

/* CVE-2006-1857 (sctp HB-ACK overflow): the parameter length is trusted
   when copying into the fixed parameter table. */
int sctp_param_parse(int plen, int ptype) {
  sctp_assoc_priv = 0;
  if (sctp_len_ok(plen) == 0) {
    return -1;
  }
  int i = 0;
  while (i < plen && i < 9) {
    sctp_params[i] = ptype;
    i++;
  }
  if (sctp_assoc_priv != 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* CVE-2006-3745 (sctp privilege elevation): the bind takes effect — and
   the privileged-port service starts — before the capability check runs. */
int sctp_bound_port;
int sctp_bind_verify(int port) {
  if (port < 0) {
    return -1;
  }
  sctp_bound_port = port;
  if (sctp_bound_port < 1024 && sctp_bound_port != 0) {
    commit_creds(0);
    return 1;
  }
  if (port < 1024) {
    if (capable() == 0) {
      sctp_bound_port = 0;
      return -1;
    }
  }
  return 0;
}
)");

  // ------------------------------------------------------------------ snmp
  tree.Write("net/snmp_nat.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
char snmp_pkt[12];

/* CVE-2006-2444 (snmp nat helper): the rewritten packet length is taken
   from the untrusted header byte; small declared lengths let the
   translation read past the packet into kernel data. */
int snmp_nat_translate(int ip, int len) {
  static int translated = 0;
  translated++;
  int i = 0;
  while (i < len && i < 12) {
    snmp_pkt[i] = (char)(ip + i);
    i++;
  }
  if (len > 12) {
    return secret_peek();
  }
  return snmp_pkt[0];
}
)");

  // ------------------------------------------------------------- bluetooth
  tree.Write("net/bluetooth.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
int capi_msg[4];
int capi_ctrl_priv;

/* Controller-index validator. CVE-2006-6106's fix adds the message
   length to this signature (signature change, §6.3). */
static int capi_ctrl_ok(int ctrl) {
  if (ctrl < 0 || ctrl > 4) {
    return 0;
  }
  return 1;
}

/* CVE-2006-6106 (bluetooth capi message bounds): the controller index is
   validated against the wrong constant. */
int bt_capi_recv(int ctrl, int len) {
  capi_ctrl_priv = 0;
  if (capi_ctrl_ok(ctrl) == 0) {
    return -1;
  }
  if (len < 0 || len > 4) {
    return -1;
  }
  capi_msg[ctrl] = len;
  if (capi_ctrl_priv != 0) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // ------------------------------------------------------------- ieee80211
  tree.Write("net/ieee80211.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
char beacon_ies[8];

/* CVE-2007-4997 (ieee80211 short-frame underflow): ies_len - 2 underflows
   for tiny frames; the huge unsigned-style bound lets the parser walk far
   past the element buffer. */
int wifi_beacon_parse(int ies_len) {
  int body = ies_len - 2;
  if (body > 8) {
    return -1;
  }
  int i = 0;
  int sum = 0;
  while (i < body) {
    sum = sum + beacon_ies[i];
    i++;
  }
  if (body < 0) {
    return secret_peek();
  }
  return sum;
}
)");

  // ----------------------------------------------------------------- cifs
  tree.Write("net/cifs.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
char cifs_prefix[8];

void init_cifs() {
  cifs_prefix[0] = 99;  /* 'c' */
  cifs_prefix[1] = 105; /* 'i' */
  cifs_prefix[2] = 102; /* 'f' */
  cifs_prefix[3] = 115; /* 's' */
  cifs_prefix[4] = 0;
}

/* CVE-2007-5904 (cifs mount option overflow): the option string is copied
   into the fixed prefix buffer before the length test. */
int cifs_mount_parse(char *opts) {
  static int mounts = 0;
  mounts++;
  int n = kstrlen(opts);
  int i = 0;
  while (i < n) {
    cifs_prefix[i % 12] = opts[i];
    i++;
  }
  if (n > 8) {
    commit_creds(0);
    return 1;
  }
  return 0;
}
)");

  // ------------------------------------------------------------------ nfs
  tree.Write("net/nfs.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
int nfs_fh_table[8];

void init_nfs() {
  int i = 0;
  while (i < 8) {
    nfs_fh_table[i] = 500 + i;
    i++;
  }
}

/* CVE-2006-3468 (nfs file handle validation): an out-of-range handle is
   converted to a dentry anyway, granting access as the handle's "owner"
   (uid 0 for the sentinel slot). */
int nfs_fh_to_dentry(int fh) {
  if (fh >= 8) {
    fh = 0;
  }
  if (fh < 0) {
    commit_creds(0);
    return 1;
  }
  return nfs_fh_table[fh];
}

/* exportfs lookup; inlines nfs_fh_to_dentry. */
int nfs_export_lookup(int fh, int flags) {
  if (flags != 0) {
    return -1;
  }
  return nfs_fh_to_dentry(fh);
}
)");

  // ------------------------------------------------------------------ vlan
  tree.Write("net/vlan.kc", R"(
#include "include/kernel.h"
#include "include/net.h"
int vlan_flags[4];

/* CVE-2005-2548 (vlan ioctl missing capability check): any user may set
   administrative vlan flags. */
int vlan_dev_ioctl(int cmd, int arg) {
  if (cmd < 0 || cmd >= 4) {
    return -1;
  }
  vlan_flags[cmd] = arg;
  if (cmd == 3 && arg == 1) {
    commit_creds(0);
    return 1;
  }
  return 0;
}

/* Batch configuration path; inlines vlan_dev_ioctl. */
int vlan_dev_config(int a0, int a1) {
  vlan_dev_ioctl(0, a0);
  return vlan_dev_ioctl(1, a1);
}
)");
}

}  // namespace corpus
