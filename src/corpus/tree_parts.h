// Internal: the corpus kernel tree is assembled from per-subsystem parts.

#ifndef KSPLICE_CORPUS_TREE_PARTS_H_
#define KSPLICE_CORPUS_TREE_PARTS_H_

#include "kdiff/diff.h"

namespace corpus {

void AddCoreTree(kdiff::SourceTree& tree);   // cred, secrets, kernel/*
void AddFsTree(kdiff::SourceTree& tree);     // exec, coredump, proc, vfs
void AddNetTree(kdiff::SourceTree& tree);    // socket, netfilter, ipv4, ...
void AddDrvTree(kdiff::SourceTree& tree);    // dvb, usb, video, drm, sound
void AddMmIpcTree(kdiff::SourceTree& tree);  // vmsplice, mmap, shm, msg
void AddArchTree(kdiff::SourceTree& tree);   // syscall entry (assembly), fpu
void AddHarnessTree(kdiff::SourceTree& tree);  // init, exploits, stress

}  // namespace corpus

#endif  // KSPLICE_CORPUS_TREE_PARTS_H_
