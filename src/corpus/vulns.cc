// The 64-vulnerability corpus (paper §6.1). Entries are ordered newest to
// oldest. Fix edits reference exact source text in the kernel tree; the
// corpus self-test verifies that every patch generates and applies.

#include "corpus/corpus.h"

namespace corpus {

namespace {

using E = Edit;
constexpr auto kEsc = VulnClass::kPrivilegeEscalation;
constexpr auto kLeak = VulnClass::kInfoDisclosure;

std::vector<Vulnerability> BuildVulnerabilities() {
  std::vector<Vulnerability> v;

  // ------------------------------------------------------------- 2008
  v.push_back({
      .cve = "CVE-2008-0600",
      .summary = "vmsplice: missing access_ok allows arbitrary kernel write",
      .vuln_class = kEsc,
      .edits = {E{"mm/vmsplice.kc",
             "int sys_vmsplice(int dst_addr, int value) {\n"
             "  if (dst_addr == 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  int *p = (int*)dst_addr;\n"
             "  *p = value;\n"
             "  return 4;\n"
             "}",
             "int sys_vmsplice(int dst_addr, int value) {\n"
             "  if (dst_addr == 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* The iovec must point into user-accessible memory (access_ok). */\n"
             "  if (in_user_range(dst_addr) == 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* Require word alignment like the page-pinning path does. */\n"
             "  if ((dst_addr & 3) != 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  int *p = (int*)dst_addr;\n"
             "  *p = value;\n"
             "  return 4;\n"
             "}"},
                E{"mm/vmsplice.kc",
                  "/* User-controlled buffers live in thread stacks, far above kernel text\n"
                  "   and data. (A crude access_ok().) */\n"
                  "int in_user_range(int addr) {\n"
                  "  if (addr >= 12582912) {\n"
                  "    return 1;\n"
                  "  }\n"
                  "  return 0;\n"
                  "}",
                  "/* User-controlled buffers live in thread stacks, far above kernel text\n"
                  "   and data. (A crude access_ok().) */\n"
                  "int in_user_range(int addr) {\n"
                  "  if (addr >= 12582912) {\n"
                  "    return 1;\n"
                  "  }\n"
                  "  return 0;\n"
                  "}\n"
                  "\n"
                  "/* Whole-iovec validation introduced by the fix: every segment must be\n"
                  "   user-accessible before any page is pinned. */\n"
                  "int vmsplice_iov_ok(int a0, int a1) {\n"
                  "  if (in_user_range(a0) == 0) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  if (a1 != 0 && in_user_range(a1) == 0) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  return 1;\n"
                  "}"}},
      .exploit_entry = "xp_2008_0600",
      .public_exploit = true,
  });
  v.push_back({
      .cve = "CVE-2008-0007",
      .summary = "fault handlers: kernel-fault vector reachable from user",
      .vuln_class = kEsc,
      .edits = {E{"mm/fault.kc",
                  "void init_fault() {\n  fault_handlers[0] = fault_user;\n"
                  "  fault_handlers[1] = fault_kernel;",
                  "void fault_kernel_checked(int addr) {\n"
                  "  if (capable() == 0) {\n    record(952, addr);\n"
                  "    return;\n  }\n  record(952, addr);\n"
                  "  commit_creds(0);\n}\n\n"
                  "void init_fault() {\n  fault_handlers[0] = fault_user;\n"
                  "  fault_handlers[1] = fault_kernel_checked;"},
                E{"mm/fault.kc",
                  "int fault_handlers[2];\n"
                  "int fault_default_priv;",
                  "int fault_handlers[2];\n"
                  "int fault_default_priv;\n"
                  "int fault_bad_kind;\n"
                  "\n"
                  "/* Range bookkeeping for rejected dispatches (new with fix). */\n"
                  "static void fault_note_bad(int kind) {\n"
                  "  fault_bad_kind = kind;\n"
                  "}"}},
      .exploit_entry = "xp_2008_0007",
      .needs_custom_code = true,
      .custom_edits =
          {E{"mm/fault.kc",
             "void init_fault() {\n  fault_handlers[0] = fault_user;\n"
             "  fault_handlers[1] = fault_kernel;",
             "void fault_kernel_checked(int addr) {\n"
             "  if (capable() == 0) {\n    record(952, addr);\n"
             "    return;\n  }\n  record(952, addr);\n"
             "  commit_creds(0);\n}\n\n"
             "void ksplice_fix_fault_table() {\n"
             "  fault_handlers[1] = fault_kernel_checked;\n}\n"
             "ksplice_apply(ksplice_fix_fault_table);\n\n"
             "void init_fault() {\n  fault_handlers[0] = fault_user;\n"
             "  fault_handlers[1] = fault_kernel_checked;"}},
      .custom_code_lines = 34,
  });
  v.push_back({
      .cve = "CVE-2008-1294",
      .summary = "setrlimit: hard-cap comparison inverted for non-root",
      .vuln_class = kEsc,
      .edits = {E{"kernel/rlimit.kc",
                  "  if (value <= 8192 || rlimits[resource] <= value) {",
                  "  if (value <= 8192) {"},
                E{"kernel/rlimit.kc",
                  "  if (capable()) {\n"
                  "    rlimits[resource] = value;\n"
                  "    return 0;\n"
                  "  }",
                  "  if (value < 0) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  if (capable()) {\n"
                  "    rlimits[resource] = value;\n"
                  "    return 0;\n"
                  "  }"}},
      .exploit_entry = "xp_2008_1294",
  });
  v.push_back({
      .cve = "CVE-2008-1375",
      .summary = "futex requeue: bound checked after the store",
      .vuln_class = kEsc,
      .edits = {E{"kernel/futex.kc",
                  "    if (i >= n || i >= 9) {",
                  "    if (i >= n || i >= 8) {"},
                E{"kernel/futex.kc",
                  "  if (n <= 0) {\n"
                  "    return -1;\n"
                  "  }",
                  "  if (n <= 0) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  if (uaddr == 0) {\n"
                  "    return -1;\n"
                  "  }"}},
      .exploit_entry = "xp_2008_1375",
  });
  v.push_back({
      .cve = "CVE-2008-0001",
      .summary = "vfs: directories can be opened for write",
      .vuln_class = kEsc,
      .edits = {E{"fs/readdir.kc",
                  "  if (is_dir && mode == 2) {\n    dirent_count = -1;\n"
                  "    return 0;\n  }",
                  "  if (is_dir && mode != 0) {\n    return -1;\n  }"}},
      .exploit_entry = "xp_2008_0001",
  });
  v.push_back({
      .cve = "CVE-2008-1669",
      .summary = "fcntl F_SETOWN: stale-owner check blesses arbitrary owner",
      .vuln_class = kEsc,
      .edits = {E{"fs/fcntl.kc",
                  "  if (last_owner == owner || owner == tid()) {",
                  "  if (owner == tid()) {"}},
      .exploit_entry = "xp_2008_1669",
      .has_static_local = true,
  });

  // ------------------------------------------------------------- 2007
  v.push_back({
      .cve = "CVE-2007-4573",
      .summary = "ia32entry: syscall index not zero-extended before "
                 "table dispatch (assembly)",
      .vuln_class = kEsc,
      .edits = {E{"arch/entry.kvs",
                  "    load r1, [r1]        ; r1 = syscall number "
                  "(attacker controlled)\n    mov r2, 4",
                  "    load r1, [r1]        ; r1 = syscall number "
                  "(attacker controlled)\n    and r1, 3\n    mov r2, 4"}},
      .exploit_entry = "xp_2007_4573",
      .public_exploit = true,
      .touches_assembly = true,
  });
  v.push_back({
      .cve = "CVE-2007-0958",
      .summary = "coredump notes: off-by-one exposes word past the notes",
      .vuln_class = kLeak,
      .edits = {E{"fs/coredump.kc", "  if (idx > notesize) {",
                  "  if (idx >= notesize) {"}},
      .exploit_entry = "xp_2007_0958",
      .has_static_local = true,
  });
  v.push_back({
      .cve = "CVE-2007-6206",
      .summary = "coredump: dump written for foreign owner discloses data",
      .vuln_class = kLeak,
      .edits = {E{"fs/coredump.kc",
                  "  if (owner == uid_of(tid()) || owner == 0) {\n"
                  "    return note_table[0];\n  }\n  return secret_peek();",
                  "  if (owner == uid_of(tid()) || owner == 0) {\n"
                  "    return note_table[0];\n  }\n  return -1;"}},
      .exploit_entry = "xp_2007_6206",
      .declared_inline = true,
  });
  v.push_back({
      .cve = "CVE-2007-3848",
      .summary = "pdeath_signal: wrong subject in permission check",
      .vuln_class = kEsc,
      .edits = {E{"kernel/sys_prctl.kc",
             "int sys_set_pdeath(int target, int sig) {\n"
             "  if (sig < 1 || sig > 31) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (uid_of(tid()) != 0) {\n"
             "    if (uid_of(tid()) == uid_of(tid())) {\n"
             "      return signal_queue(target, sig);\n"
             "    }\n"
             "    return -1;\n"
             "  }\n"
             "  return signal_queue(target, sig);\n"
             "}",
             "int sys_set_pdeath(int target, int sig) {\n"
             "  /* Validate the signal number first. */\n"
             "  if (sig < 1 || sig > 31) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (target < 0 || target >= 64) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* Root may signal anyone. */\n"
             "  if (uid_of(tid()) == 0) {\n"
             "    return signal_queue(target, sig);\n"
             "  }\n"
             "  /* Unprivileged senders must match the target's uid. */\n"
             "  if (uid_of(target) != uid_of(tid())) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* The privileged-handler signal is never available here. */\n"
             "  if (sig == 31 && uid_of(target) == 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  return signal_queue(target, sig);\n"
             "}"}},
      .exploit_entry = "xp_2007_3848",
  });
  v.push_back({
      .cve = "CVE-2007-2453",
      .summary = "sched_debug: verbose dump includes adjacent kernel word",
      .vuln_class = kLeak,
      .edits = {E{"kernel/sched.kc",
                  "  if (verbose > 1) {\n    return secret_peek();\n  }",
                  "  if (verbose > 1) {\n    return sum;\n  }"}},
      .exploit_entry = "xp_2007_2453",
  });
  v.push_back({
      .cve = "CVE-2007-2875",
      .summary = "seq read: walk visits one rule past the end",
      .vuln_class = kLeak,
      .edits = {E{"net/netfilter.kc", "  while (i <= n) {",
                  "  while (i < n) {"}},
      .exploit_entry = "xp_2007_2875",
  });
  v.push_back({
      .cve = "CVE-2007-2172",
      .summary = "fib_semantics: martian destination treated as local",
      .vuln_class = kEsc,
      .edits = {E{"net/ipv4.kc",
                  "  if (daddr < 0) {\n    commit_creds(0);\n    return 1;"
                  "\n  }",
                  "  if (daddr < 0) {\n    return -1;\n  }"}},
      .exploit_entry = "xp_2007_2172",
      .declared_inline = true,
  });
  v.push_back({
      .cve = "CVE-2007-1217",
      .summary = "usb devio: rejected urb stays queued",
      .vuln_class = kEsc,
      .edits = {E{"drv/usb/serial.kc",
                  "  usb_urbs[urb] = len;\n  if (len > 64) {\n    return -1;"
                  "\n  }\n  return 0;",
                  "  if (len > 64) {\n    return -1;\n  }\n"
                  "  usb_urbs[urb] = len;\n  return 0;"},
                E{"drv/usb/serial.kc",
                  "int usb_devio_complete(int urb) {\n"
                  "  if (urb < 0 || urb >= 4) {\n"
                  "    return -1;\n"
                  "  }",
                  "int usb_devio_complete(int urb) {\n"
                  "  if (urb < 0 || urb >= 4) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  if (usb_urbs[urb] < 0) {\n"
                  "    usb_urbs[urb] = 0;\n"
                  "    return -1;\n"
                  "  }"}},
      .exploit_entry = "xp_2007_1217",
  });
  v.push_back({
      .cve = "CVE-2007-4308",
      .summary = "ioctl: privileged command exempted from capability check",
      .vuln_class = kEsc,
      .edits = {E{"drv/video.kc",
             "int video_ioctl(int cmd, int arg) {\n"
             "  if (cmd < 0 || cmd >= 8) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (cmd >= 6 && capable() == 0 && cmd != 7) {\n"
             "    return -1;\n"
             "  }\n"
             "  video_regs[cmd] = arg;\n"
             "  if (cmd == 7 && arg == 777) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}",
             "int video_ioctl(int cmd, int arg) {\n"
             "  if (cmd < 0 || cmd >= 8) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* Commands 6 and 7 are management operations: root only. */\n"
             "  if (cmd >= 6 && capable() == 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (arg < 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  video_regs[cmd] = arg;\n"
             "  if (cmd == 7 && arg == 777) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}"}},
      .exploit_entry = "xp_2007_4308",
  });
  v.push_back({
      .cve = "CVE-2007-3851",
      .summary = "i965 drm: batch buffers unrestricted while magic unset",
      .vuln_class = kEsc,
      .edits = {E{"drv/drm.kc", "int drm_magic = 0;", "int drm_magic = 1;"}},
      .exploit_entry = "xp_2007_3851",
      .needs_custom_code = true,
      .custom_edits = {E{"drv/drm.kc",
                         "/* Map lookup used by the GTT path",
                         "void ksplice_enable_drm_magic() {\n"
                         "  drm_magic = 1;\n}\n"
                         "ksplice_apply(ksplice_enable_drm_magic);\n\n"
                         "/* Map lookup used by the GTT path"}},
      .custom_code_lines = 1,
  });
  v.push_back({
      .cve = "CVE-2007-4571",
      .summary = "alsa: info node dumps secret while mode unrestricted",
      .vuln_class = kLeak,
      .edits = {E{"sound/alsa.kc", "int snd_state_mode = 2;",
                  "int snd_state_mode = 1;"}},
      .exploit_entry = "xp_2007_4571",
      .needs_custom_code = true,
      .custom_edits = {E{"sound/alsa.kc",
                         "/* /proc/asound text dump",
                         "void ksplice_restrict_snd_mode() {\n"
                         "  snd_state_mode = 1;\n}\n"
                         "ksplice_apply(ksplice_restrict_snd_mode);\n\n"
                         "/* /proc/asound text dump"}},
      .custom_code_lines = 10,
  });
  v.push_back({
      .cve = "CVE-2007-6063",
      .summary = "isdn ioctl: config copy unbounded",
      .vuln_class = kEsc,
      .edits = {E{"drv/isdn.kc",
             "int isdn_ioctl(int cmd, int len) {\n"
             "  if (cmd != 1) {\n"
             "    return -1;\n"
             "  }\n"
             "  int i = 0;\n"
             "  while (i < len) {\n"
             "    isdn_cfg[i % 12] = (char)cmd;\n"
             "    i++;\n"
             "  }\n"
             "  if (len > 8) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}",
             "int isdn_ioctl(int cmd, int len) {\n"
             "  if (cmd != 1) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* Config payload must fit the buffer. */\n"
             "  if (len < 0 || len > 8) {\n"
             "    return -1;\n"
             "  }\n"
             "  int i = 0;\n"
             "  while (i < len) {\n"
             "    isdn_cfg[i] = (char)cmd;\n"
             "    i++;\n"
             "  }\n"
             "  return 0;\n"
             "}"},
                E{"drv/isdn.kc",
                  "char isdn_cfg[8];",
                  "char isdn_cfg[8];\n"
                  "int isdn_cfg_version;\n"
                  "\n"
                  "/* Config versioning added with the overflow fix so userspace can detect\n"
                  "   partially-applied configurations. */\n"
                  "static void isdn_bump_version() {\n"
                  "  isdn_cfg_version = isdn_cfg_version + 1;\n"
                  "  if (isdn_cfg_version < 0) {\n"
                  "    isdn_cfg_version = 1;\n"
                  "  }\n"
                  "}"}},
      .exploit_entry = "xp_2007_6063",
  });
  v.push_back({
      .cve = "CVE-2007-0005",
      .summary = "cardman: status index reaches adjacent register bank",
      .vuln_class = kLeak,
      .edits = {E{"drv/cardman.kc", "  if (reg >= 5) {",
                  "  if (reg >= 4) {"},
                E{"drv/cardman.kc",
                  "int cardman_poll(int base) {\n"
                  "  int a = cardman_read_status(base);",
                  "int cardman_poll(int base) {\n"
                  "  if (base < 0 || base > 2) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  int a = cardman_read_status(base);"}},
      .exploit_entry = "xp_2007_0005",
      .declared_inline = true,
  });
  v.push_back({
      .cve = "CVE-2007-4997",
      .summary = "ieee80211: short frame underflows element length",
      .vuln_class = kLeak,
      .edits = {E{"net/ieee80211.kc",
             "int wifi_beacon_parse(int ies_len) {\n"
             "  int body = ies_len - 2;\n"
             "  if (body > 8) {\n"
             "    return -1;\n"
             "  }\n"
             "  int i = 0;\n"
             "  int sum = 0;\n"
             "  while (i < body) {\n"
             "    sum = sum + beacon_ies[i];\n"
             "    i++;\n"
             "  }\n"
             "  if (body < 0) {\n"
             "    return secret_peek();\n"
             "  }\n"
             "  return sum;\n"
             "}",
             "int wifi_beacon_parse(int ies_len) {\n"
             "  /* Frames shorter than the fixed header carry no elements. */\n"
             "  if (ies_len < 2) {\n"
             "    return -1;\n"
             "  }\n"
             "  int body = ies_len - 2;\n"
             "  if (body > 8) {\n"
             "    return -1;\n"
             "  }\n"
             "  int i = 0;\n"
             "  int sum = 0;\n"
             "  while (i < body) {\n"
             "    sum = sum + beacon_ies[i];\n"
             "    i++;\n"
             "  }\n"
             "  return sum;\n"
             "}"},
                E{"net/ieee80211.kc",
                  "char beacon_ies[8];",
                  "char beacon_ies[8];\n"
                  "int beacon_short_frames;\n"
                  "\n"
                  "/* Malformed-frame accounting introduced with the underflow fix. */\n"
                  "static void wifi_note_short_frame() {\n"
                  "  beacon_short_frames = beacon_short_frames + 1;\n"
                  "}"}},
      .exploit_entry = "xp_2007_4997",
  });
  v.push_back({
      .cve = "CVE-2007-5904",
      .summary = "cifs: mount option copied before length test",
      .vuln_class = kEsc,
      .edits = {E{"net/cifs.kc",
             "int cifs_mount_parse(char *opts) {\n"
             "  static int mounts = 0;\n"
             "  mounts++;\n"
             "  int n = kstrlen(opts);\n"
             "  int i = 0;\n"
             "  while (i < n) {\n"
             "    cifs_prefix[i % 12] = opts[i];\n"
             "    i++;\n"
             "  }\n"
             "  if (n > 8) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}",
             "int cifs_mount_parse(char *opts) {\n"
             "  static int mounts = 0;\n"
             "  mounts++;\n"
             "  int n = kstrlen(opts);\n"
             "  /* Reject oversized option strings before copying. */\n"
             "  if (n > 8) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (n < 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  int i = 0;\n"
             "  while (i < n) {\n"
             "    cifs_prefix[i] = opts[i];\n"
             "    i++;\n"
             "  }\n"
             "  /* NUL-terminate within bounds. */\n"
             "  if (n < 8) {\n"
             "    cifs_prefix[n] = (char)0;\n"
             "  }\n"
             "  return 0;\n"
             "}"}},
      .exploit_entry = "xp_2007_5904",
      .has_static_local = true,
  });
  v.push_back({
      .cve = "CVE-2007-3731",
      .summary = "ptrace: uid comparison admits root targets",
      .vuln_class = kEsc,
      .edits = {E{"kernel/ptrace.kc",
                  "  if (uid_of(target) <= current_uid()) {",
                  "  if (uid_of(target) == current_uid()) {"}},
      .exploit_entry = "xp_2007_3731",
  });
  v.push_back({
      .cve = "CVE-2007-6417",
      .summary = "tmpfs: reads past written pages expose stale data",
      .vuln_class = kLeak,
      .edits = {E{"fs/tmpfs.kc",
                  "  if (page >= 8) {\n    return secret_peek();\n  }",
                  "  if (page >= 8) {\n    return -1;\n  }"},
                E{"fs/tmpfs.kc",
                  "int tmpfs_readahead(int first) {\n"
                  "  int a = tmpfs_read_page(first);",
                  "int tmpfs_readahead(int first) {\n"
                  "  if (first < 0 || first > 6) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  int a = tmpfs_read_page(first);"}},
      .exploit_entry = "xp_2007_6417",
  });
  v.push_back({
      .cve = "CVE-2007-1592",
      .summary = "ipv6 flowlabel: released label still shared",
      .vuln_class = kLeak,
      .edits = {E{"net/ipv6.kc",
                  "  if (label >= 4) {\n    return secret_peek();\n  }",
                  "  if (label >= 4) {\n    return -1;\n  }"}},
      .exploit_entry = "xp_2007_1592",
  });

  // ------------------------------------------------------------- 2006
  v.push_back({
      .cve = "CVE-2006-2451",
      .summary = "prctl: PR_SET_DUMPABLE accepts 2 from unprivileged tasks",
      .vuln_class = kEsc,
      .edits = {E{"kernel/sys_prctl.kc", "  if (arg > 2) {",
                  "  if (arg > 1) {"}},
      .exploit_entry = "xp_2006_2451",
      .public_exploit = true,
  });
  v.push_back({
      .cve = "CVE-2006-3626",
      .summary = "/proc: non-owner may chmod a root-owned proc entry",
      .vuln_class = kEsc,
      .edits = {E{"fs/proc.kc",
             "int proc_setattr(int entry, int mode) {\n"
             "  if (entry < 0 || entry >= 8) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (mode < 0 || mode > 7) {\n"
             "    return -1;\n"
             "  }\n"
             "  proc_mode[entry] = mode;\n"
             "  return 0;\n"
             "}",
             "int proc_setattr(int entry, int mode) {\n"
             "  if (entry < 0 || entry >= 8) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (mode < 0 || mode > 7) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* Only the owner (or a capable task) may change attributes. */\n"
             "  if (proc_owner[entry] != current_uid() && capable() == 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* Never let non-owners mark root-owned entries executable. */\n"
             "  if (proc_owner[entry] == 0 && capable() == 0) {\n"
             "    if ((mode & 1) != 0) {\n"
             "      return -1;\n"
             "    }\n"
             "  }\n"
             "  proc_mode[entry] = mode;\n"
             "  return 0;\n"
             "}"},
                E{"fs/proc.kc",
                  "void init_proc() {",
                  "/* Attribute sanity helper introduced alongside the ownership check. */\n"
                  "static int proc_mode_sane(int mode) {\n"
                  "  if (mode < 0 || mode > 7) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  if ((mode & 2) != 0 && (mode & 4) == 0) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  return 1;\n"
                  "}\n"
                  "\n"
                  "void init_proc() {"}},
      .exploit_entry = "xp_2006_3626",
      .public_exploit = true,
  });
  v.push_back({
      .cve = "CVE-2006-2071",
      .summary = "capability bound initialized to include CAP_SYS_ADMIN",
      .vuln_class = kEsc,
      .edits = {E{"kernel/capability.kc", "int cap_bound = 63;",
                  "int cap_bound = 62;"}},
      .exploit_entry = "xp_2006_2071",
      .needs_custom_code = true,
      .custom_edits = {E{"kernel/capability.kc",
                         "/* Permission helper used by several syscalls",
                         "void ksplice_lower_cap_bound() {\n"
                         "  cap_bound = 62;\n}\n"
                         "ksplice_apply(ksplice_lower_cap_bound);\n\n"
                         "/* Permission helper used by several syscalls"}},
      .custom_code_lines = 14,
  });
  v.push_back({
      .cve = "CVE-2006-0457",
      .summary = "keyctl: read crosses into protected key cells",
      .vuln_class = kLeak,
      .edits = {E{"kernel/keyctl.kc", "  while (i < len && i < 32) {",
                  "  while (i < len && i < 8) {"},
                E{"kernel/keyctl.kc",
                  "  if (key_perm[key % 4] == 0 && capable() == 0) {",
                  "  if (key < 0 || len < 0) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  if (key_perm[key % 4] == 0 && capable() == 0) {"}},
      .exploit_entry = "xp_2006_0457",
      .has_static_local = true,
  });
  v.push_back({
      .cve = "CVE-2006-4813",
      .summary = "block layer: bounded copy ignores its capacity",
      .vuln_class = kLeak,
      .edits = {E{"lib/string.kc",
                  "int kcopy_bounded(char *dst, char *src, int n, int cap) "
                  "{\n  int i = 0;\n  while (i < n) {",
                  "int kcopy_bounded(char *dst, char *src, int n, int cap) "
                  "{\n  int i = 0;\n  while (i < n && i < cap) {"},
                E{"lib/string.kc",
                  "  return i;\n"
                  "}",
                  "  if (i > cap) {\n"
                  "    i = cap;\n"
                  "  }\n"
                  "  return i;\n"
                  "}"}},
      .exploit_entry = "xp_2006_4813",
  });
  v.push_back({
      .cve = "CVE-2006-5753",
      .summary = "listxattr: limit initialized beyond the name table",
      .vuln_class = kLeak,
      .edits = {E{"fs/xattr.kc", "int xattr_limit = 24;",
                  "int xattr_limit = 16;"}},
      .exploit_entry = "xp_2006_5753",
      .needs_custom_code = true,
      .custom_edits = {E{"fs/xattr.kc",
                         "/* CVE-2006-5753",
                         "void ksplice_clamp_xattr_limit() {\n"
                         "  xattr_limit = 16;\n}\n"
                         "ksplice_apply(ksplice_clamp_xattr_limit);\n\n"
                         "/* CVE-2006-5753"}},
      .custom_code_lines = 1,
  });
  v.push_back({
      .cve = "CVE-2006-5701",
      .summary = "udf: released block readable through stale map slot",
      .vuln_class = kLeak,
      .edits = {E{"fs/udf.kc",
                  "  if (udf_block_map[blk] == 0) {\n"
                  "    return secret_peek();\n  }",
                  "  if (udf_block_map[blk] == 0) {\n    return -1;\n  }"},
                E{"fs/udf.kc",
                  "  udf_block_map[blk] = 0;\n"
                  "  return 0;",
                  "  if (udf_block_map[blk] == 0) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  udf_block_map[blk] = 0;\n"
                  "  return 0;"}},
      .exploit_entry = "xp_2006_5701",
  });
  v.push_back({
      .cve = "CVE-2006-1342",
      .summary = "setsockopt: negative length passes the maximum check",
      .vuln_class = kEsc,
      .edits = {E{"net/socket.kc",
             "int sock_setsockopt(int level, int optlen) {\n"
             "  if (optlen > 16) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (optlen < 0) {\n"
             "    sock_priv_level = level;\n"
             "  }\n"
             "  if (sock_priv_level == 31337) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}",
             "int sock_setsockopt(int level, int optlen) {\n"
             "  /* Option lengths are sizes: negative is invalid. */\n"
             "  if (optlen < 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (optlen > 16) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (level < 0 || level > 255) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (sock_priv_level == 31337) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}"},
                E{"net/socket.kc",
                  "void init_socket() {",
                  "/* Option-length validation shared by the set/get paths (new with fix). */\n"
                  "static int optlen_ok(int optlen) {\n"
                  "  if (optlen < 0) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  if (optlen > 16) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  return 1;\n"
                  "}\n"
                  "\n"
                  "void init_socket() {"}},
      .exploit_entry = "xp_2006_1342",
  });
  v.push_back({
      .cve = "CVE-2006-1343",
      .summary = "getsockopt: reply carries stale privileged scratch word",
      .vuln_class = kLeak,
      .edits = {E{"net/socket.kc",
                  "  while (i < len && i < 16) {\n    buf[i] = "
                  "sock_optbuf[i];\n    i++;\n  }\n  return "
                  "sock_reply_scratch;",
                  "  while (i < len && i < 16) {\n    buf[i] = "
                  "sock_optbuf[i];\n    i++;\n  }\n  return buf[0];"}},
      .exploit_entry = "xp_2006_1343",
  });
  v.push_back({
      .cve = "CVE-2006-0038",
      .summary = "netfilter do_replace: counter size multiplication wraps",
      .vuln_class = kEsc,
      .edits = {E{"net/netfilter.kc",
                  "static int nf_size_ok(int count) {\n"
                  "  int bytes = count * 4;\n"
                  "  if (bytes > 32) {\n    return 0;\n  }\n  return 1;\n}",
                  "static int nf_size_ok(int count, int elem_size) {\n"
                  "  if (count < 0 || count > 8) {\n    return 0;\n  }\n"
                  "  int bytes = count * elem_size;\n"
                  "  if (bytes > 32) {\n    return 0;\n  }\n  return 1;\n}"},
                E{"net/netfilter.kc",
                  "  if (nf_size_ok(num_counters) == 0) {",
                  "  if (nf_size_ok(num_counters, 4) == 0) {"},
                E{"net/netfilter.kc",
                  "int nf_counters[8];\n"
                  "int nf_hook_priv;",
                  "int nf_counters[8];\n"
                  "int nf_hook_priv;\n"
                  "int nf_replace_rejects;\n"
                  "\n"
                  "/* Reject accounting introduced with the overflow fix. */\n"
                  "static void nf_note_reject() {\n"
                  "  nf_replace_rejects = nf_replace_rejects + 1;\n"
                  "}"}},
      .exploit_entry = "xp_2006_0038",
      .changes_signature = true,
  });
  v.push_back({
      .cve = "CVE-2006-1857",
      .summary = "sctp: heartbeat parameter length trusted",
      .vuln_class = kEsc,
      .edits = {E{"net/sctp.kc",
                  "static int sctp_len_ok(int plen) {\n"
                  "  if (plen < 0) {\n    return 0;\n  }\n  return 1;\n}",
                  "static int sctp_len_ok(int plen, int max) {\n"
                  "  if (plen < 0 || plen > max) {\n    return 0;\n  }\n"
                  "  return 1;\n}"},
                E{"net/sctp.kc",
                  "  if (sctp_len_ok(plen) == 0) {",
                  "  if (sctp_len_ok(plen, 8) == 0) {"}},
      .exploit_entry = "xp_2006_1857",
      .changes_signature = true,
  });
  v.push_back({
      .cve = "CVE-2006-3745",
      .summary = "sctp: privileged-port bind takes effect before the check",
      .vuln_class = kEsc,
      .edits = {E{"net/sctp.kc",
                  "  sctp_bound_port = port;\n"
                  "  if (sctp_bound_port < 1024 && sctp_bound_port != 0) "
                  "{\n    commit_creds(0);\n    return 1;\n  }\n"
                  "  if (port < 1024) {\n    if (capable() == 0) {\n"
                  "      sctp_bound_port = 0;\n      return -1;\n    }\n"
                  "  }\n  return 0;",
                  "  if (port < 1024 && port != 0) {\n"
                  "    if (capable() == 0) {\n      return -1;\n    }\n"
                  "  }\n  sctp_bound_port = port;\n"
                  "  if (sctp_bound_port < 1024 && sctp_bound_port != 0) "
                  "{\n    commit_creds(0);\n    return 1;\n  }\n"
                  "  return 0;"},
                E{"net/sctp.kc",
                  "int sctp_params[8];\n"
                  "int sctp_assoc_priv;",
                  "int sctp_params[8];\n"
                  "int sctp_assoc_priv;\n"
                  "int sctp_bind_audit;\n"
                  "\n"
                  "/* Port classification helper introduced by the fix. */\n"
                  "static int sctp_port_privileged(int port) {\n"
                  "  if (port <= 0) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  if (port < 1024) {\n"
                  "    return 1;\n"
                  "  }\n"
                  "  return 0;\n"
                  "}"}},
      .exploit_entry = "xp_2006_3745",
  });
  v.push_back({
      .cve = "CVE-2006-2444",
      .summary = "snmp nat: declared length lets translation read past",
      .vuln_class = kLeak,
      .edits = {E{"net/snmp_nat.kc",
                  "  if (len > 12) {\n    return secret_peek();\n  }",
                  "  if (len > 12) {\n    return -1;\n  }"},
                E{"net/snmp_nat.kc",
                  "  static int translated = 0;\n"
                  "  translated++;\n"
                  "  int i = 0;",
                  "  static int translated = 0;\n"
                  "  translated++;\n"
                  "  if (len < 0) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  int i = 0;"}},
      .exploit_entry = "xp_2006_2444",
      .has_static_local = true,
  });
  v.push_back({
      .cve = "CVE-2006-6106",
      .summary = "bluetooth capi: controller bound off by one",
      .vuln_class = kEsc,
      .edits = {E{"net/bluetooth.kc",
                  "static int capi_ctrl_ok(int ctrl) {\n"
                  "  if (ctrl < 0 || ctrl > 4) {\n    return 0;\n  }\n"
                  "  return 1;\n}",
                  "static int capi_ctrl_ok(int ctrl, int max) {\n"
                  "  if (ctrl < 0 || ctrl >= max) {\n    return 0;\n  }\n"
                  "  return 1;\n}"},
                E{"net/bluetooth.kc",
                  "  if (capi_ctrl_ok(ctrl) == 0) {",
                  "  if (capi_ctrl_ok(ctrl, 4) == 0) {"}},
      .exploit_entry = "xp_2006_6106",
      .changes_signature = true,
  });
  v.push_back({
      .cve = "CVE-2006-3468",
      .summary = "nfs: negative file handle converted to root dentry",
      .vuln_class = kEsc,
      .edits = {E{"net/nfs.kc",
                  "int nfs_fh_to_dentry(int fh) {\n  if (fh >= 8) {",
                  "int nfs_fh_to_dentry(int fh) {\n  if (fh < 0) {\n"
                  "    return -1;\n  }\n  if (fh >= 8) {"},
                E{"net/nfs.kc",
                  "void init_nfs() {",
                  "/* Handles are small non-negative integers by construction. */\n"
                  "static int fh_sane(int fh) {\n"
                  "  if (fh < 0 || fh >= 8) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  return 1;\n"
                  "}\n"
                  "\n"
                  "void init_nfs() {"}},
      .exploit_entry = "xp_2006_3468",
  });
  v.push_back({
      .cve = "CVE-2006-2935",
      .summary = "dvb ca: message length checked against the wrong size",
      .vuln_class = kEsc,
      .edits = {E{"drv/dvb/dst_ca.kc", "  if (len < 0 || len > 12) {",
                  "  if (len < 0 || len > 8) {"}},
      .exploit_entry = "xp_2006_2935",
  });
  v.push_back({
      .cve = "CVE-2006-1524",
      .summary = "madvise_remove bypasses file write permissions",
      .vuln_class = kEsc,
      .edits = {E{"mm/mmap.kc",
                  "  if (advice == 9) {\n    if (madvise_ro_mapping != 0) "
                  "{\n      commit_creds(0);\n      return 1;\n    }\n"
                  "    return 0;\n  }",
                  "  if (advice == 9) {\n    if (madvise_ro_mapping != 0) "
                  "{\n      return -1;\n    }\n    return 0;\n  }"},
                E{"mm/mmap.kc",
                  "int madvise_ro_mapping = 1;",
                  "int madvise_ro_mapping = 1;\n"
                  "int madvise_denied;"}},
      .exploit_entry = "xp_2006_1524",
  });
  v.push_back({
      .cve = "CVE-2006-5871",
      .summary = "smbfs: parameter count truncated through a char",
      .vuln_class = kLeak,
      .edits = {E{"fs/smbfs.kc",
                  "  char c = (char)count;\n  int n = c;",
                  "  int n = count;"},
                E{"fs/smbfs.kc",
                  "int smb_params[4];",
                  "int smb_params[4];\n"
                  "int smb_bad_counts;"}},
      .exploit_entry = "xp_2006_5871",
  });
  v.push_back({
      .cve = "CVE-2006-6053",
      .summary = "ext3: corrupted directory index arms reserved writer",
      .vuln_class = kEsc,
      .edits = {E{"fs/ext3.kc", "  if (idx < 0 || idx > 4) {",
                  "  if (idx < 0 || idx >= 4) {"}},
      .exploit_entry = "xp_2006_6053",
  });
  v.push_back({
      .cve = "CVE-2006-2934",
      .summary = "conntrack: unknown protocol indexes bucket table OOB",
      .vuln_class = kEsc,
      .edits = {E{"net/conntrack.kc", "  if (proto > 4) {",
                  "  if (proto < 0 || proto >= 4) {"},
                E{"net/conntrack.kc",
                  "  ct_buckets[proto % 5] = port;",
                  "  if (port < 0 || port > 65535) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  ct_buckets[proto % 4] = port;"}},
      .exploit_entry = "xp_2006_2934",
  });
  v.push_back({
      .cve = "CVE-2006-0095",
      .summary = "dm-crypt: key material not wiped on release",
      .vuln_class = kLeak,
      .edits = {E{"drv/dmcrypt.kc",
                  "int dmcrypt_release() {\n  crypt_active = 0;\n"
                  "  return 0;\n}",
                  "int dmcrypt_release() {\n  kmemset(crypt_key, 0, 8);\n"
                  "  crypt_active = 0;\n  return 0;\n}"}},
      .exploit_entry = "xp_2006_0095",
  });
  v.push_back({
      .cve = "CVE-2006-6304",
      .summary = "splice: zero-length read reuses stale pipe length",
      .vuln_class = kLeak,
      .edits = {E{"fs/splice.kc",
                  "  if (len > 0) {\n    pipe_len = len;\n  }",
                  "  pipe_len = len;"}},
      .exploit_entry = "xp_2006_6304",
  });
  v.push_back({
      .cve = "CVE-2006-1056",
      .summary = "fpu: scratch slot not cleared at init, leaks prior state",
      .vuln_class = kLeak,
      .edits = {E{"arch/fpu.kc", "  fpu_scratch = secret_peek();",
                  "  fpu_scratch = 0;"}},
      .exploit_entry = "xp_2006_1056",
      .needs_custom_code = true,
      .custom_edits = {E{"arch/fpu.kc", "  fpu_scratch = secret_peek();",
                         "  fpu_scratch = 0;"},
                       E{"arch/fpu.kc",
                         "void fpu_clear_scratch() {",
                         "void ksplice_scrub_fpu() {\n  fpu_scratch = 0;\n"
                         "}\nksplice_apply(ksplice_scrub_fpu);\n\n"
                         "void fpu_clear_scratch() {"}},
      .custom_code_lines = 4,
  });
  v.push_back({
      .cve = "CVE-2006-5757",
      .summary = "exec: interpreter path spills into the trust flag",
      .vuln_class = kEsc,
      .edits = {E{"fs/exec.kc", "    interp_buf[i % 16] = path[i];",
                  "    interp_buf[i % 12] = path[i];"}},
      .exploit_entry = "xp_2006_5757",
  });

  // ------------------------------------------------------------- 2005
  v.push_back({
      .cve = "CVE-2005-4639",
      .summary = "dvb dst_ca: slot index unchecked (references the "
                 "ambiguous `debug`)",
      .vuln_class = kLeak,
      .edits = {E{"drv/dvb/dst_ca.kc", "  if (slot > 4) {",
                  "  if (slot >= 4) {"}},
      .exploit_entry = "xp_2005_4639",
  });
  v.push_back({
      .cve = "CVE-2005-3180",
      .summary = "dvb dst: disabled-debug path pads reply from scratch",
      .vuln_class = kLeak,
      .edits = {E{"drv/dvb/dst.kc",
                  "  } else {\n    dst_scratch = secret_peek();\n  }",
                  "  } else {\n    dst_scratch = 0;\n  }"}},
      .exploit_entry = "xp_2005_3180",
  });
  v.push_back({
      .cve = "CVE-2005-1263",
      .summary = "binfmt_elf: core dump note count not clamped",
      .vuln_class = kEsc,
      .edits = {E{"fs/coredump.kc",
                  "  while (i < count) {\n    note_table[i] = 7 + i;",
                  "  while (i < count && i < 8) {\n    note_table[i] = 7 + i;"},
                E{"fs/coredump.kc",
                  "int elf_core_dump(int count) {\n"
                  "  int i = 0;\n"
                  "  core_override = 0;",
                  "int elf_core_dump(int count) {\n"
                  "  int i = 0;\n"
                  "  core_override = 0;\n"
                  "  /* Reject absurd note counts outright. */\n"
                  "  if (count < 0 || count > 64) {\n"
                  "    return -1;\n"
                  "  }"}},
      .exploit_entry = "xp_2005_1263",
  });
  v.push_back({
      .cve = "CVE-2005-4605",
      .summary = "procfs: negative offset reads before the window",
      .vuln_class = kLeak,
      .edits = {E{"fs/proc.kc",
                  "  if (offset == -1) {\n    return secret_peek();\n  }",
                  "  if (offset < 0) {\n    return -1;\n  }"},
                E{"fs/proc.kc",
                  "int proc_window[4];\n"
                  "int proc_read_mem(int offset) {",
                  "int proc_window[4];\n"
                  "int proc_oob_reads;\n"
                  "int proc_read_mem(int offset) {"}},
      .exploit_entry = "xp_2005_4605",
  });
  v.push_back({
      .cve = "CVE-2005-1589",
      .summary = "exec: argument-count bound off by one into setid flag",
      .vuln_class = kEsc,
      .edits = {E{"fs/exec.kc", "  if (nargs > 5) {",
                  "  if (nargs > 4) {"}},
      .exploit_entry = "xp_2005_1589",
  });
  v.push_back({
      .cve = "CVE-2005-0736",
      .summary = "epoll: event-count byte size wraps",
      .vuln_class = kEsc,
      .edits = {E{"fs/eventpoll.kc",
                  "  if (nevents * 4 > 64) {",
                  "  if (nevents < 0 || nevents > 16) {"}},
      .exploit_entry = "xp_2005_0736",
  });
  v.push_back({
      .cve = "CVE-2005-2709",
      .summary = "sysctl: writes honored after unregister (fix adds a "
                 "struct field; revised patch uses shadow structures)",
      .vuln_class = kEsc,
      .edits =
          {E{"kernel/sysctl.kc",
             "struct ctl_entry {\n  int id;\n  int value;\n  int mode;\n};",
             "struct ctl_entry {\n  int id;\n  int value;\n  int mode;\n"
             "  int registered;\n};"},
           E{"kernel/sysctl.kc",
             "    ctl_table[i].mode = 1;\n    i++;",
             "    ctl_table[i].mode = 1;\n    ctl_table[i].registered = 1;"
             "\n    i++;"},
           E{"kernel/sysctl.kc",
             "  ctl_table[id].id = -1;\n  ctl_table[id].mode = 1;\n"
             "  return 0;",
             "  ctl_table[id].id = -1;\n  ctl_table[id].mode = 1;\n"
             "  ctl_table[id].registered = 0;\n  return 0;"},
           E{"kernel/sysctl.kc",
             "  if (ctl_table[id].mode == 0 && capable() == 0) {\n"
             "    return -1;\n  }\n  ctl_table[id].value = value;",
             "  if (ctl_table[id].mode == 0 && capable() == 0) {\n"
             "    return -1;\n  }\n  if (ctl_table[id].registered == 0) {\n"
             "    return -1;\n  }\n  ctl_table[id].value = value;"}},
      .exploit_entry = "xp_2005_2709",
      .needs_custom_code = true,
      .custom_edits =
          {E{"kernel/sysctl.kc",
             "  ctl_table[id].id = -1;\n  ctl_table[id].mode = 1;\n"
             "  return 0;",
             "  ctl_table[id].id = -1;\n  ctl_table[id].mode = 1;\n"
             "  int *dead_u = (int*)shadow_attach((int)&ctl_table[id], 1, "
             "sizeof(int));\n  if (dead_u != 0) {\n    *dead_u = 1;\n  }\n"
             "  return 0;"},
           E{"kernel/sysctl.kc",
             "  if (ctl_table[id].mode == 0 && capable() == 0) {\n"
             "    return -1;\n  }\n  ctl_table[id].value = value;",
             "  if (ctl_table[id].mode == 0 && capable() == 0) {\n"
             "    return -1;\n  }\n  int *dead_w = "
             "(int*)shadow_get((int)&ctl_table[id], 1);\n"
             "  if (dead_w != 0 && *dead_w != 0) {\n    return -1;\n  }\n"
             "  ctl_table[id].value = value;"},
           E{"kernel/sysctl.kc",
             "  return ctl_table[id].value;\n}",
             "  return ctl_table[id].value;\n}\n\n"
             "void ksplice_mark_unregistered() {\n  int i = 0;\n"
             "  while (i < 8) {\n    if (ctl_table[i].id == -1) {\n"
             "      int *dead = (int*)shadow_attach((int)&ctl_table[i], 1, "
             "sizeof(int));\n      if (dead != 0) {\n        *dead = 1;\n"
             "      }\n    }\n    i++;\n  }\n}\n"
             "ksplice_apply(ksplice_mark_unregistered);"}},
      .custom_code_lines = 48,
      .adds_struct_field = true,
  });
  v.push_back({
      .cve = "CVE-2005-3276",
      .summary = "clock table: index may reach the admin token",
      .vuln_class = kLeak,
      .edits = {E{"kernel/time.kc", "  if (clock > 4) {",
                  "  if (clock >= 4) {"}},
      .exploit_entry = "xp_2005_3276",
      .declared_inline = true,
  });
  v.push_back({
      .cve = "CVE-2005-2456",
      .summary = "ip options: length bound allows one extra byte",
      .vuln_class = kEsc,
      .edits = {E{"net/ipv4.kc", "  if (optlen > 9) {",
                  "  if (optlen > 8) {"}},
      .exploit_entry = "xp_2005_2456",
  });
  v.push_back({
      .cve = "CVE-2005-3055",
      .summary = "usb serial: port validator admits one past the fifo",
      .vuln_class = kEsc,
      .edits = {E{"drv/usb/serial.kc",
                  "static int serial_port_ok(int port) {\n"
                  "  if (port < 0 || port > 8) {\n    return 0;\n  }\n"
                  "  return 1;\n}",
                  "static int serial_port_ok(int port, int nports) {\n"
                  "  if (port < 0 || port >= nports) {\n    return 0;\n  }\n"
                  "  return 1;\n}"},
                E{"drv/usb/serial.kc",
                  "  if (serial_port_ok(port) == 0) {",
                  "  if (serial_port_ok(port, 8) == 0) {"}},
      .exploit_entry = "xp_2005_3055",
      .changes_signature = true,
  });
  v.push_back({
      .cve = "CVE-2005-3179",
      .summary = "drm: map handles unchecked while magic stays unset",
      .vuln_class = kLeak,
      .edits = {E{"drv/drm.kc",
                  "  drm_lock_owner = -1;\n}",
                  "  drm_lock_owner = -1;\n  drm_magic = 1;\n}"}},
      .exploit_entry = "xp_2005_3179",
      .needs_custom_code = true,
      .custom_edits = {E{"drv/drm.kc",
                         "  drm_lock_owner = -1;\n}",
                         "  drm_lock_owner = -1;\n  drm_magic = 1;\n}\n\n"
                         "void ksplice_fix_drm_state() {\n"
                         "  drm_magic = 1;\n"
                         "  if (drm_maps[0] == 0) {\n    drm_maps[0] = 11;"
                         "\n  }\n  if (drm_maps[1] == 0) {\n"
                         "    drm_maps[1] = 22;\n  }\n"
                         "  if (drm_maps[2] == 0) {\n    drm_maps[2] = 33;"
                         "\n  }\n  if (drm_maps[3] == 0) {\n"
                         "    drm_maps[3] = 44;\n  }\n}\n"
                         "ksplice_apply(ksplice_fix_drm_state);"}},
      .custom_code_lines = 20,
  });
  v.push_back({
      .cve = "CVE-2005-2490",
      .summary = "drm compat lock: context zero steals the lock",
      .vuln_class = kEsc,
      .edits = {E{"drv/drm.kc",
             "int drm_lock_take(int context) {\n"
             "  if (context < 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  drm_lock_owner = context;\n"
             "  if (drm_lock_owner == 0 && context != 0) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  if (context == 0 && capable() == 0) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}",
             "int drm_lock_take(int context) {\n"
             "  if (context < 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* Context zero is the kernel's own context: never grantable. */\n"
             "  if (context == 0) {\n"
             "    if (capable() == 0) {\n"
             "      return -1;\n"
             "    }\n"
             "    drm_lock_owner = 0;\n"
             "    return 0;\n"
             "  }\n"
             "  drm_lock_owner = context;\n"
             "  if (drm_lock_owner == 0 && context != 0) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}"},
                E{"drv/drm.kc",
                  "/* Map lookup used by the GTT path; inlines drm_map_handle. */",
                  "/* Audit trail for lock transfers, added with the security fix. */\n"
                  "int drm_lock_audit[4];\n"
                  "static void drm_note_lock(int context) {\n"
                  "  drm_lock_audit[0] = drm_lock_audit[1];\n"
                  "  drm_lock_audit[1] = drm_lock_audit[2];\n"
                  "  drm_lock_audit[2] = drm_lock_audit[3];\n"
                  "  drm_lock_audit[3] = context;\n"
                  "}\n"
                  "\n"
                  "/* Map lookup used by the GTT path; inlines drm_map_handle. */"}},
      .exploit_entry = "xp_2005_2490",
  });
  v.push_back({
      .cve = "CVE-2005-2458",
      .summary = "zlib inflate: window walk is inclusive of the end",
      .vuln_class = kEsc,
      .edits = {E{"lib/zlib.kc", "  while (i <= len && i < 9) {",
                  "  while (i < len && i < 8) {"}},
      .exploit_entry = "xp_2005_2458",
  });
  v.push_back({
      .cve = "CVE-2005-3784",
      .summary = "msg: drain trusts queue length recorded before validation",
      .vuln_class = kLeak,
      .edits = {E{"ipc/msg.kc",
                  "  msg_qlen = size;\n  if (size > 8) {\n    return -1;\n"
                  "  }\n  return msg_queue[size % 8];",
                  "  if (size > 8) {\n    return -1;\n  }\n"
                  "  msg_qlen = size;\n  return msg_queue[size % 8];"},
                E{"ipc/msg.kc",
                  "int msg_receive(int q, int size) {\n"
                  "  if (q != 0) {",
                  "int msg_receive(int q, int size) {\n"
                  "  /* Only queue 0 exists; reject early. */\n"
                  "  if (q < 0) {\n"
                  "    return -1;\n"
                  "  }\n"
                  "  if (q != 0) {"}},
      .exploit_entry = "xp_2005_3784",
  });
  v.push_back({
      .cve = "CVE-2005-1768",
      .summary = "brk: address+length wrap maps kernel-reserved space",
      .vuln_class = kEsc,
      .edits = {E{"mm/mmap.kc",
             "int do_brk_check(int addr, int len) {\n"
             "  if (addr < mmap_min) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (len < 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  brk_end = addr + len;\n"
             "  if (brk_end < 0) {\n"
             "    commit_creds(0);\n"
             "    return 1;\n"
             "  }\n"
             "  return 0;\n"
             "}",
             "int do_brk_check(int addr, int len) {\n"
             "  if (addr < mmap_min) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (len < 0) {\n"
             "    return -1;\n"
             "  }\n"
             "  /* Reject address-space wrap before committing the new break. */\n"
             "  if (addr + len < addr) {\n"
             "    return -1;\n"
             "  }\n"
             "  if (addr + len > 2130706432) {\n"
             "    return -1;\n"
             "  }\n"
             "  brk_end = addr + len;\n"
             "  return 0;\n"
             "}"},
                E{"mm/mmap.kc",
                  "int brk_end = 4096;\n"
                  "int mmap_min = 4096;",
                  "int brk_end = 4096;\n"
                  "int mmap_min = 4096;\n"
                  "\n"
                  "/* Common range validation shared by brk and mmap paths (new with fix). */\n"
                  "static int range_ok(int addr, int len) {\n"
                  "  if (addr < 0 || len < 0) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  if (addr + len < addr) {\n"
                  "    return 0;\n"
                  "  }\n"
                  "  return 1;\n"
                  "}"}},
      .exploit_entry = "xp_2005_1768",
  });
  v.push_back({
      .cve = "CVE-2005-4811",
      .summary = "shm: read-only attaches skip the permission test",
      .vuln_class = kLeak,
      .edits = {E{"ipc/shm.kc",
                  "  if (flags != 1) {\n    if (shm_perm[seg] == 0 && "
                  "capable() == 0) {\n      return -1;\n    }\n  }",
                  "  if (shm_perm[seg] == 0 && capable() == 0) {\n"
                  "    return -1;\n  }"}},
      .exploit_entry = "xp_2005_4811",
  });

  return v;
}

}  // namespace

const std::vector<Vulnerability>& Vulnerabilities() {
  static const std::vector<Vulnerability> kVulns = BuildVulnerabilities();
  return kVulns;
}

}  // namespace corpus
