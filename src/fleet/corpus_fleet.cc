#include "fleet/corpus_fleet.h"

#include <set>

#include "base/strings.h"
#include "corpus/corpus.h"
#include "fleet/rollout.h"

namespace fleet {

ks::Result<Fleet> MakeCorpusFleet(const CorpusFleetOptions& options) {
  const size_t releases = corpus::KernelVersions().size();
  std::vector<size_t> order = RolloutOrder(options.nodes, options.seed);
  std::set<size_t> doomed;
  for (size_t i = 0; i < options.doomed && i < order.size(); ++i) {
    doomed.insert(order[i]);
  }

  Fleet fleet;
  for (size_t i = 0; i < options.nodes; ++i) {
    KS_ASSIGN_OR_RETURN(
        std::unique_ptr<kvm::Machine> machine,
        corpus::BootKernelVersion(i % releases, options.memory_bytes));
    NodeSpec spec;
    spec.id = ks::StrPrintf("node-%03zu", i);
    spec.version = corpus::KernelVersions()[i % releases].name;
    spec.doomed = doomed.count(i) != 0;
    KS_RETURN_IF_ERROR(fleet.AddNode(std::move(spec), std::move(machine)));
  }
  return fleet;
}

}  // namespace fleet
