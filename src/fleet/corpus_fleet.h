// Mixed-release fleets built from the evaluation corpus.
//
// Every fleet consumer (ksplice_tool rollout, bench_fleet_rollout, the
// fleet_update example, fleet_test) needs the same thing: N booted
// machines spread round-robin across the corpus kernel release line
// (corpus::KernelVersions), small enough to stamp out by the thousand.
// This helper is that one loop. Release objects are compiled once per
// release (corpus::BootKernelVersion caches them), so node boots are
// re-links, not rebuilds.

#ifndef KSPLICE_FLEET_CORPUS_FLEET_H_
#define KSPLICE_FLEET_CORPUS_FLEET_H_

#include <cstdint>

#include "base/status.h"
#include "fleet/fleet.h"

namespace fleet {

struct CorpusFleetOptions {
  size_t nodes = 8;
  // Per-node machine memory. The corpus image needs ~2.5MB headroom;
  // 4MB keeps a 1000-node fleet around 4GB.
  uint32_t memory_bytes = 4u << 20;
  // Dooms the first `doomed` nodes of RolloutOrder(nodes, seed) — i.e.
  // the nodes a rollout with the same seed visits first (its canaries).
  size_t doomed = 0;
  uint64_t seed = 0;
};

// Boots `options.nodes` machines, release i % KernelVersions().size()
// for node i, ids "node-000"... Node versions carry the release name.
ks::Result<Fleet> MakeCorpusFleet(const CorpusFleetOptions& options);

}  // namespace fleet

#endif  // KSPLICE_FLEET_CORPUS_FLEET_H_
