#include "fleet/fleet.h"

namespace fleet {

ks::Status Fleet::AddNode(NodeSpec spec,
                          std::unique_ptr<kvm::Machine> machine) {
  if (machine == nullptr) {
    return ks::InvalidArgument("fleet: null machine for node " + spec.id);
  }
  if (spec.id.empty()) {
    return ks::InvalidArgument("fleet: node id must be non-empty");
  }
  if (index_.count(spec.id) != 0) {
    return ks::AlreadyExists("fleet: duplicate node id " + spec.id);
  }
  Node node;
  node.spec = std::move(spec);
  node.core = std::make_unique<ksplice::KspliceCore>(machine.get());
  node.machine = std::move(machine);
  index_[node.spec.id] = nodes_.size();
  nodes_.push_back(std::move(node));
  return ks::OkStatus();
}

int Fleet::IndexOf(const std::string& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

}  // namespace fleet
