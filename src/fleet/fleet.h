// Fleet: a registry of live machines under one administrative domain.
//
// The paper's deployment story is per-machine — build an update package
// once, hot-apply it on every box running that kernel. This module adds
// the fleet half: a Fleet owns N booted kvm::Machine instances (typically
// heterogeneous — mixed kernel releases, different pre-applied update
// stacks) and gives each a persistent ksplice::KspliceCore so stacking
// state survives across rollouts. The rollout orchestrator (rollout.h)
// drives waves of applies over this registry.
//
// Nodes are addressed by index (stable, insertion order) for iteration
// and by id for operator-facing lookups. A NodeSpec carries the metadata
// the orchestrator schedules on: the kernel release label (staleness
// bookkeeping) and a `doomed` flag that test/bench harnesses set on nodes
// that should fail their canary apply (the rollout runs doomed nodes
// without fault suppression while a canary fault plan is armed).

#ifndef KSPLICE_FLEET_FLEET_H_
#define KSPLICE_FLEET_FLEET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "ksplice/core.h"
#include "kvm/machine.h"

namespace fleet {

struct NodeSpec {
  std::string id;       // unique within the fleet, e.g. "node-017"
  std::string version;  // kernel release label, e.g. "v2.6.3"
  // Canary-fault target: while a rollout has a fault plan armed, this
  // node's apply runs with injection live (everyone else is suppressed).
  bool doomed = false;
};

class Fleet {
 public:
  Fleet() = default;
  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Registers a booted machine under `spec.id`. Fails on duplicate ids
  // and null machines. The fleet owns the machine and its KspliceCore.
  ks::Status AddNode(NodeSpec spec, std::unique_ptr<kvm::Machine> machine);

  size_t size() const { return nodes_.size(); }

  const NodeSpec& spec(size_t index) const { return nodes_[index].spec; }
  kvm::Machine& machine(size_t index) { return *nodes_[index].machine; }
  ksplice::KspliceCore& core(size_t index) { return *nodes_[index].core; }

  // Index of the node named `id`, or -1.
  int IndexOf(const std::string& id) const;

 private:
  struct Node {
    NodeSpec spec;
    std::unique_ptr<kvm::Machine> machine;
    std::unique_ptr<ksplice::KspliceCore> core;
  };
  std::vector<Node> nodes_;
  std::map<std::string, size_t> index_;
};

}  // namespace fleet

#endif  // KSPLICE_FLEET_FLEET_H_
