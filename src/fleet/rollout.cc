#include "fleet/rollout.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <optional>

#include "base/faultinject.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/threadpool.h"
#include "ksplice/quarantine.h"
#include "ksplice/watchdog.h"

namespace fleet {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Deterministic per-node stream from (rollout seed, node index).
uint64_t MixSeed(uint64_t seed, size_t index) {
  uint64_t state = seed ^ (0x632be59bd9b4e019ull + index);
  return SplitMix(&state);
}

// Arms a fault plan for one rollout and disarms exactly the sites the
// plan named on every exit path.
class ArmedFaultPlan {
 public:
  static ks::Result<ArmedFaultPlan> Arm(const std::string& plan,
                                        uint64_t seed) {
    ArmedFaultPlan armed;
    if (plan.empty()) {
      return armed;
    }
    ks::Faults().SetSeed(seed);
    KS_RETURN_IF_ERROR(ks::Faults().Configure(plan));
    // Site names are the prefixes before '=' in each clause.
    size_t start = 0;
    while (start < plan.size()) {
      size_t comma = plan.find(',', start);
      if (comma == std::string::npos) {
        comma = plan.size();
      }
      std::string clause = plan.substr(start, comma - start);
      size_t eq = clause.find('=');
      if (eq != std::string::npos) {
        armed.sites_.push_back(clause.substr(0, eq));
      }
      start = comma + 1;
    }
    return armed;
  }

  ArmedFaultPlan(ArmedFaultPlan&& other) noexcept
      : sites_(std::move(other.sites_)) {
    other.sites_.clear();
  }
  ArmedFaultPlan& operator=(ArmedFaultPlan&&) = delete;
  ArmedFaultPlan(const ArmedFaultPlan&) = delete;

  ~ArmedFaultPlan() {
    for (const std::string& site : sites_) {
      ks::Faults().Disarm(site);
    }
  }

 private:
  ArmedFaultPlan() = default;
  std::vector<std::string> sites_;
};

// Per-node working state accumulated across the rollout.
struct NodeState {
  ksplice::RolloutNodeReport report;
  // Ids this rollout applied on the node, apply order (rollback undoes
  // them newest-first, preserving any pre-existing stack underneath).
  std::vector<std::string> applied_ids;
  // Watchdog reverts from the node's post-apply soak; when the wave
  // trips, these name the packages the fleet blacklists.
  std::vector<ksplice::RevertReport> reverts;
};

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

// Applies the not-yet-applied subset of `packages` on one node and fills
// its report. Runs on a wave worker thread.
void ApplyOnNode(Fleet& fleet, size_t node,
                 std::span<const ksplice::UpdatePackage> packages,
                 const RolloutPlan& plan, NodeState* state) {
  // Canary drill: only doomed nodes feel the armed fault plan.
  std::optional<ks::ScopedFaultSuppression> suppress;
  if (!fleet.spec(node).doomed) {
    suppress.emplace();
  }

  ksplice::KspliceCore& core = fleet.core(node);
  std::vector<std::string> already = core.AppliedIds();
  std::vector<ksplice::UpdatePackage> missing;
  for (const ksplice::UpdatePackage& package : packages) {
    if (!Contains(already, package.id)) {
      missing.push_back(package);
    }
  }
  if (missing.empty()) {
    state->report.outcome = ksplice::RolloutNodeOutcome::kAlreadyApplied;
    return;
  }

  ksplice::ApplyOptions options = plan.apply;
  options.rendezvous.backoff_seed = MixSeed(plan.seed, node);
  ks::Result<ksplice::BatchApplyReport> batch =
      core.ApplyAll(missing, options);
  if (!batch.ok()) {
    state->report.outcome =
        batch.status().code() == ks::ErrorCode::kAborted
            ? ksplice::RolloutNodeOutcome::kSkippedStale
            : ksplice::RolloutNodeOutcome::kFailed;
    state->report.error = batch.status().message();
    return;
  }

  state->report.attempts = batch->attempts;
  state->report.quiescence_retries = batch->quiescence_retries;
  state->report.pause_ns = batch->pause_ns;
  state->report.functions_spliced = batch->functions_spliced;
  for (const ksplice::UpdatePackage& package : missing) {
    state->applied_ids.push_back(package.id);
  }

  // Health budget: a pause over budget is a failure — undo on the spot
  // (recovery always runs suppressed, doomed or not).
  if (plan.max_pause_ns != 0 && batch->pause_ns > plan.max_pause_ns) {
    ks::ScopedFaultSuppression recovery;
    for (auto it = state->applied_ids.rbegin();
         it != state->applied_ids.rend(); ++it) {
      (void)core.Undo(*it, options.rendezvous);
    }
    state->applied_ids.clear();
    state->report.outcome = ksplice::RolloutNodeOutcome::kFailed;
    state->report.error = ks::StrPrintf(
        "stop pause %llu ns over budget %llu ns",
        static_cast<unsigned long long>(batch->pause_ns),
        static_cast<unsigned long long>(plan.max_pause_ns));
    return;
  }

  // Post-apply soak: spawn the wave workload and run the watchdog over
  // the soak window. Guest faults (a bad patch oopsing under load) are
  // real machine behavior and fire doomed or not; the injector drill
  // sites stay suppressed on non-doomed nodes like every other site.
  if (plan.soak_ticks != 0) {
    kvm::Machine* machine = core.manager().machine();
    if (!plan.soak_entry.empty()) {
      ks::Status spawned =
          machine->SpawnNamed(plan.soak_entry, plan.soak_arg).status();
      if (!spawned.ok()) {
        state->report.outcome = ksplice::RolloutNodeOutcome::kFailed;
        state->report.error = "soak workload: " + spawned.message();
        return;
      }
    }
    ksplice::WatchdogOptions wopts;
    wopts.soak_ticks = plan.soak_ticks;
    wopts.max_faults = plan.max_faults_per_node;
    wopts.rendezvous = options.rendezvous;
    ksplice::HealthMonitor monitor(&core.manager(), wopts);
    ksplice::WatchdogReport soak = monitor.Soak();
    state->report.soak_faults = soak.faults_attributed;
    for (const ksplice::RevertReport& revert : soak.reverts) {
      if (revert.reverted) {
        state->applied_ids.erase(std::remove(state->applied_ids.begin(),
                                             state->applied_ids.end(),
                                             revert.id),
                                 state->applied_ids.end());
      }
      state->reverts.push_back(revert);
    }
    if (!state->reverts.empty()) {
      // A failed revert leaves the update fully applied (restore-or-
      // abort); that node is a plain failure and fleet rollback will
      // retry the undo. Clean reverts count separately so the report
      // distinguishes "the safety net worked" from "the node broke".
      bool all_reverted = true;
      for (const ksplice::RevertReport& revert : state->reverts) {
        all_reverted = all_reverted && revert.reverted;
      }
      state->report.outcome =
          all_reverted ? ksplice::RolloutNodeOutcome::kAutoReverted
                       : ksplice::RolloutNodeOutcome::kFailed;
      state->report.error = state->reverts.front().trigger.reason;
      return;
    }
  }
  state->report.outcome = ksplice::RolloutNodeOutcome::kPatched;
}

}  // namespace

std::vector<size_t> RolloutOrder(size_t n, uint64_t seed) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  if (seed == 0 || n < 2) {
    return order;
  }
  uint64_t state = seed;
  for (size_t i = n - 1; i > 0; --i) {
    size_t j = static_cast<size_t>(SplitMix(&state) % (i + 1));
    std::swap(order[i], order[j]);
  }
  return order;
}

ks::Result<ksplice::RolloutReport> RunRollout(
    Fleet& fleet, std::span<const ksplice::UpdatePackage> packages,
    const RolloutPlan& plan) {
  if (packages.empty()) {
    return ks::InvalidArgument("rollout: no packages");
  }
  if (plan.canary_fraction < 0.0 || plan.canary_fraction > 1.0) {
    return ks::InvalidArgument("rollout: canary_fraction outside [0,1]");
  }
  if (plan.abort_failure_fraction < 0.0) {
    return ks::InvalidArgument("rollout: negative abort_failure_fraction");
  }
  // Fleet-level blacklist gate: a package a previous rollout's watchdogs
  // blamed is refused outright, by content hash — renaming the id does
  // not sneak it past.
  if (plan.blacklist != nullptr) {
    for (const ksplice::UpdatePackage& package : packages) {
      uint64_t hash = ksplice::PackageContentHash(package);
      std::optional<ksplice::QuarantineEntry> entry =
          plan.blacklist->Find(hash);
      if (entry.has_value()) {
        return ks::FailedPrecondition(ks::StrPrintf(
            "rollout: package %s is blacklisted (hash %016llx, "
            "evidence: %s)",
            package.id.c_str(), static_cast<unsigned long long>(hash),
            entry->evidence.c_str()));
      }
    }
  }

  ks::MetricsRegistry& metrics = ks::Metrics();
  metrics.GetCounter("fleet.rollouts").Add();
  ks::Histogram& pause_hist =
      metrics.GetHistogram("fleet.node_pause_ns");

  ksplice::RolloutReport report;
  for (size_t i = 0; i < packages.size(); ++i) {
    if (i != 0) {
      report.id += '+';
    }
    report.id += packages[i].id;
  }
  report.fleet_size = static_cast<uint32_t>(fleet.size());

  const uint64_t begin_ns = NowNs();
  KS_ASSIGN_OR_RETURN(ArmedFaultPlan armed,
                      ArmedFaultPlan::Arm(plan.canary_fault_plan,
                                          plan.seed));

  // Partition the visit order into the canary wave plus wave_size chunks.
  std::vector<size_t> order = RolloutOrder(fleet.size(), plan.seed);
  size_t canary =
      std::max<size_t>(plan.canary_min,
                       static_cast<size_t>(std::ceil(
                           plan.canary_fraction *
                           static_cast<double>(fleet.size()))));
  canary = std::min(canary, fleet.size());
  std::vector<std::pair<size_t, size_t>> waves;  // [begin, end) into order
  if (canary > 0) {
    waves.emplace_back(0, canary);
  }
  for (size_t at = canary; at < order.size();) {
    size_t take = plan.wave_size == 0
                      ? order.size() - at
                      : std::min<size_t>(plan.wave_size,
                                         order.size() - at);
    waves.emplace_back(at, at + take);
    at += take;
  }

  std::vector<NodeState> nodes(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    nodes[i].report.node = fleet.spec(i).id;
    nodes[i].report.version = fleet.spec(i).version;
  }

  for (size_t w = 0; w < waves.size(); ++w) {
    auto [begin, end] = waves[w];
    bool is_canary = canary > 0 && w == 0;
    for (size_t at = begin; at < end; ++at) {
      nodes[order[at]].report.wave = static_cast<int>(w);
      nodes[order[at]].report.canary = is_canary;
    }

    const uint64_t wave_begin_ns = NowNs();
    ks::ParallelFor(plan.max_in_flight, end - begin, [&](size_t i) {
      size_t node = order[begin + i];
      ApplyOnNode(fleet, node, packages, plan, &nodes[node]);
    });

    ksplice::RolloutWaveReport wave;
    wave.wave = static_cast<int>(w);
    wave.canary = is_canary;
    wave.nodes = static_cast<uint32_t>(end - begin);
    for (size_t at = begin; at < end; ++at) {
      const ksplice::RolloutNodeReport& node = nodes[order[at]].report;
      switch (node.outcome) {
        case ksplice::RolloutNodeOutcome::kPatched:
          ++wave.patched;
          break;
        case ksplice::RolloutNodeOutcome::kAlreadyApplied:
          ++wave.already_applied;
          break;
        case ksplice::RolloutNodeOutcome::kSkippedStale:
          ++wave.skipped_stale;
          break;
        case ksplice::RolloutNodeOutcome::kAutoReverted:
          ++wave.auto_reverted;
          break;
        default:
          ++wave.failed;
          break;
      }
      wave.max_pause_ns = std::max(wave.max_pause_ns, node.pause_ns);
      if (node.pause_ns != 0) {
        pause_hist.Observe(node.pause_ns);
      }
    }
    wave.wall_ns = NowNs() - wave_begin_ns;
    // Auto-reverted nodes are regressions the safety net caught — they
    // feed the abort threshold exactly like hard failures.
    wave.tripped =
        wave.failed + wave.auto_reverted >
        plan.abort_failure_fraction * static_cast<double>(wave.nodes);
    metrics.GetCounter("fleet.waves").Add();
    report.wave_reports.push_back(wave);

    if (wave.tripped) {
      report.aborted = true;
      report.tripped_wave = static_cast<int>(w);
      break;
    }
  }
  report.waves = static_cast<uint32_t>(report.wave_reports.size());

  // Escalation: an aborted rollout blacklists every package a watchdog
  // blamed, keyed by content hash, with the triggering fault as
  // evidence. Runs on the orchestrator thread in node-index order, so
  // the blacklist and report are identical at any max_in_flight.
  if (report.aborted) {
    for (size_t node = 0; node < nodes.size(); ++node) {
      for (const ksplice::RevertReport& revert : nodes[node].reverts) {
        std::string tag = ks::StrPrintf(
            "%s#%016llx", revert.id.c_str(),
            static_cast<unsigned long long>(revert.package_hash));
        if (Contains(report.blacklisted, tag)) {
          continue;
        }
        report.blacklisted.push_back(tag);
        if (plan.blacklist != nullptr) {
          ksplice::QuarantineEntry entry;
          entry.id = revert.id;
          entry.package_hash = revert.package_hash;
          entry.evidence = ks::StrPrintf(
              "fleet rollout %s aborted: node %s: %s", report.id.c_str(),
              nodes[node].report.node.c_str(),
              revert.trigger.reason.c_str());
          entry.tid = revert.trigger.tid;
          entry.pc = revert.trigger.pc;
          entry.tick = revert.trigger.tick;
          plan.blacklist->Add(std::move(entry));
        }
      }
    }
  }

  // Fleet-wide rollback: undo everything this rollout applied, leaving
  // pre-existing stacks intact. Recovery runs suppressed.
  if (report.aborted && plan.undo_on_abort) {
    ks::ParallelFor(plan.max_in_flight, fleet.size(), [&](size_t node) {
      NodeState& state = nodes[node];
      if (state.applied_ids.empty()) {
        return;
      }
      ks::ScopedFaultSuppression recovery;
      bool undone = true;
      for (auto it = state.applied_ids.rbegin();
           it != state.applied_ids.rend(); ++it) {
        ks::Result<ksplice::UndoReport> undo =
            fleet.core(node).Undo(*it, plan.apply.rendezvous);
        if (!undo.ok()) {
          state.report.error =
              "rollback failed: " + undo.status().message();
          undone = false;
          break;
        }
      }
      state.report.outcome =
          undone ? ksplice::RolloutNodeOutcome::kRolledBack
                 : ksplice::RolloutNodeOutcome::kFailed;
    });
  }

  // Totals over final outcomes; percentiles over the observed stop
  // windows (patched and rolled-back nodes both paused once).
  std::vector<uint64_t> pauses;
  for (NodeState& state : nodes) {
    const ksplice::RolloutNodeReport& node = state.report;
    switch (node.outcome) {
      case ksplice::RolloutNodeOutcome::kNotAttempted:
        ++report.not_attempted;
        break;
      case ksplice::RolloutNodeOutcome::kAlreadyApplied:
        ++report.already_applied;
        break;
      case ksplice::RolloutNodeOutcome::kPatched:
        ++report.patched;
        break;
      case ksplice::RolloutNodeOutcome::kSkippedStale:
        ++report.skipped_stale;
        break;
      case ksplice::RolloutNodeOutcome::kFailed:
        ++report.failed;
        break;
      case ksplice::RolloutNodeOutcome::kRolledBack:
        ++report.rolled_back;
        break;
      case ksplice::RolloutNodeOutcome::kAutoReverted:
        ++report.auto_reverted;
        break;
    }
    if (node.pause_ns != 0) {
      pauses.push_back(node.pause_ns);
    }
    report.nodes.push_back(std::move(state.report));
  }
  if (!pauses.empty()) {
    std::sort(pauses.begin(), pauses.end());
    auto at = [&](double q) {
      size_t i = static_cast<size_t>(q * static_cast<double>(
                                             pauses.size() - 1));
      return pauses[i];
    };
    report.pause_p50_ns = at(0.50);
    report.pause_p99_ns = at(0.99);
    report.pause_max_ns = pauses.back();
  }
  report.wall_ns = NowNs() - begin_ns;
  uint32_t attempted = report.fleet_size - report.not_attempted;
  if (report.wall_ns > 0) {
    report.nodes_per_sec = static_cast<double>(attempted) * 1e9 /
                           static_cast<double>(report.wall_ns);
  }

  metrics.GetCounter("fleet.nodes_patched").Add(report.patched);
  metrics.GetCounter("fleet.nodes_already_applied")
      .Add(report.already_applied);
  metrics.GetCounter("fleet.nodes_skipped_stale")
      .Add(report.skipped_stale);
  metrics.GetCounter("fleet.nodes_failed").Add(report.failed);
  metrics.GetCounter("fleet.nodes_rolled_back").Add(report.rolled_back);
  metrics.GetCounter("fleet.reverts").Add(report.auto_reverted);
  metrics.GetCounter("fleet.blacklisted")
      .Add(static_cast<uint64_t>(report.blacklisted.size()));
  if (report.aborted) {
    metrics.GetCounter("fleet.rollouts_aborted").Add();
  }
  return report;
}

}  // namespace fleet
