// Wave/canary rollout orchestration over a Fleet.
//
// RunRollout pushes one batch of update packages across every node of a
// fleet the way an operator would: a small canary wave first, then the
// rest of the fleet in fixed-size waves, each wave fanned across worker
// threads. After every wave the orchestrator reads the health signals —
// per-node Apply/Undo reports (stop-machine pause, quiescence retries,
// failure status) — and if the wave's failure fraction exceeds the plan's
// threshold it aborts the rollout and rolls back every node it patched,
// leaving each byte-identical to its pre-rollout state (pre-existing
// update stacks survive; only this rollout's updates are undone).
//
// Node outcomes (ksplice::RolloutNodeOutcome):
//  - a run-pre mismatch (ks::ErrorCode::kAborted) means the node runs a
//    kernel release whose patched unit drifted — the package is stale
//    there, the node is counted `skipped_stale`, and staleness never
//    counts toward the abort threshold (§6.2: one package does not fit
//    every release, and that is detected, not fatal);
//  - any other apply failure (quiescence exhaustion, injected faults,
//    load errors) counts `failed` and feeds the abort threshold;
//  - a node whose stack already carries every package is
//    `already_applied` and is not re-applied;
//  - with a post-wave soak configured (soak_ticks > 0), a node whose
//    watchdog attributes a regression to this rollout's updates is
//    auto-reverted on the spot and counted `auto_reverted` — which feeds
//    the abort threshold exactly like `failed`.
//
// Post-wave soak (the PR-10 safety net, ksplice/watchdog.h): after a
// node patches cleanly, the orchestrator optionally spawns the wave
// workload (`soak_entry`) and runs a HealthMonitor soak window on the
// node. An attributed regression auto-reverts that node's updates; when
// the wave's (failed + auto_reverted) fraction trips the abort
// threshold, the rollout aborts, every patched node rolls back, and the
// packages the watchdogs blamed land in the fleet-level blacklist (a
// ksplice::Quarantine keyed by package content hash) — a later rollout
// handed the same blacklist refuses those packages outright.
//
// Canary failure drill: arming RolloutPlan::canary_fault_plan (the
// base/faultinject grammar) makes the process-wide injector live for the
// rollout's duration, but every non-doomed node applies under a
// thread-local ScopedFaultSuppression, so only nodes whose NodeSpec says
// `doomed` actually fail. With `site=always` modes the drill is
// deterministic across thread counts. All rollback/undo work also runs
// suppressed — recovery is exempt from injection, as always.
//
// Determinism: node order comes from RolloutOrder(n, seed) (seeded
// Fisher-Yates; seed 0 = insertion order), per-node rendezvous jitter is
// seeded from (plan seed, node index), and wave aggregation is
// index-slotted — the same plan over the same fleet yields identical
// outcomes at any max_in_flight.

#ifndef KSPLICE_FLEET_ROLLOUT_H_
#define KSPLICE_FLEET_ROLLOUT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "fleet/fleet.h"
#include "ksplice/manager.h"
#include "ksplice/package.h"
#include "ksplice/quarantine.h"
#include "ksplice/report.h"

namespace fleet {

struct RolloutPlan {
  // Canary sizing: the first wave holds max(canary_min,
  // ceil(canary_fraction * fleet size)) nodes, capped at the fleet size.
  double canary_fraction = 0.05;
  uint32_t canary_min = 1;

  // Post-canary waves hold up to `wave_size` nodes (0 = the whole rest of
  // the fleet in one wave). Within a wave up to `max_in_flight` node
  // applies run concurrently (<= 1 = serial).
  uint32_t wave_size = 32;
  int max_in_flight = 1;

  // Abort when a wave's failed fraction exceeds this (strictly greater,
  // so 0.0 trips on any failure). Stale skips never count as failures.
  double abort_failure_fraction = 0.0;

  // Health budget: a node whose combined stop window exceeds this is
  // undone on the spot and counted failed (0 = no budget).
  uint64_t max_pause_ns = 0;

  // Seeds RolloutOrder and each node's rendezvous backoff jitter.
  uint64_t seed = 0;

  // Fault plan armed for the rollout's duration (faultinject grammar,
  // e.g. "ksplice.txn.pre_apply=always"); "" arms nothing. Only nodes
  // with NodeSpec::doomed feel it — see the header comment.
  std::string canary_fault_plan;

  // Post-wave soak: ticks of watchdog-monitored machine time each
  // freshly patched node runs before it counts as healthy (0 = no soak).
  // Regressions the watchdog attributes to this rollout's updates are
  // auto-reverted per node (ksplice/watchdog.h).
  uint64_t soak_ticks = 0;

  // Attributed faults a node tolerates during its soak before the
  // auto-revert fires (watchdog max_faults; 0 = any attributed fault).
  uint64_t max_faults_per_node = 0;

  // Workload spawned on each node before its soak so the patched code
  // actually runs ("" = soak whatever is already runnable). Corpus
  // kernels ship "stress_main"/"stress_worker" entries.
  std::string soak_entry;
  uint32_t soak_arg = 0;

  // Fleet-level package blacklist, shared across rollouts. When a wave
  // trips with auto-reverted nodes, the blamed packages are added here
  // (keyed by content hash, with the triggering fault as evidence), and
  // RunRollout refuses any package already present. nullptr = no
  // blacklist; blamed packages are still listed in the report.
  ksplice::Quarantine* blacklist = nullptr;

  // Per-node apply options; rendezvous.backoff_seed is overridden per
  // node for deterministic jitter.
  ksplice::ApplyOptions apply;

  // Roll back every patched node when a wave trips (true = the
  // zero-partially-patched-nodes guarantee; false leaves survivors for
  // post-mortem inspection).
  bool undo_on_abort = true;
};

// The visit order RunRollout uses: a seeded Fisher-Yates shuffle of
// 0..n-1 (seed 0 = identity). Exposed so harnesses can predict which
// nodes land in the canary wave (e.g. to doom the first k).
std::vector<size_t> RolloutOrder(size_t n, uint64_t seed);

// Rolls `packages` across the fleet per `plan`. Returns the full ledger
// (never an error status for per-node failures — those are in the
// report; the status is only for malformed input). Packages a node
// already has applied are skipped per node.
ks::Result<ksplice::RolloutReport> RunRollout(
    Fleet& fleet, std::span<const ksplice::UpdatePackage> packages,
    const RolloutPlan& plan);

}  // namespace fleet

#endif  // KSPLICE_FLEET_ROLLOUT_H_
