// ABI/layout differ (kanalyze pass 3): compares each primary object's
// data/bss sections against the same-named sections of its unit's helper
// (pre) object. With -fdata-sections every variable is its own
// ".data.<var>"/".bss.<var>" section, so a section-level size or content
// difference is the object-code shadow of a struct-layout or initializer
// semantics change — exactly what the paper's Table 1 says cannot be hot-
// applied without custom code. A package that carries ksplice hook tables
// (.ksplice.apply and friends) has declared that custom code, so the same
// evidence downgrades from an error to a §3.4 "human must review" note.

#include <cstdint>
#include <string>

#include "base/strings.h"
#include "kanalyze/kanalyze.h"

namespace kanalyze {

namespace {

using ksplice::LintFinding;
using ksplice::LintReport;
using ksplice::LintSeverity;

bool IsDataKind(kelf::SectionKind kind) {
  return kind == kelf::SectionKind::kData || kind == kelf::SectionKind::kBss;
}

const kelf::ObjectFile* HelperForUnit(
    const ksplice::UpdatePackage& package, const std::string& unit) {
  for (const kelf::ObjectFile& helper : package.helper_objects) {
    if (helper.source_name() == unit) {
      return &helper;
    }
  }
  return nullptr;
}

LintFinding MakeFinding(const char* rule, LintSeverity severity,
                        const std::string& unit, const std::string& section,
                        std::string message, std::string hint) {
  LintFinding finding;
  finding.rule = rule;
  finding.severity = severity;
  finding.pass = "abi";
  finding.unit = unit;
  finding.symbol = section;
  finding.message = std::move(message);
  finding.hint = std::move(hint);
  return finding;
}

}  // namespace

// Any .ksplice.* hook table anywhere in the package counts: hooks are the
// package-level declaration that apply-time custom code handles state.
// Shared with the semantic-diff pass (KSA502/KSA504 downgrade/gate on it).
bool PackageHasHooks(const ksplice::UpdatePackage& package) {
  for (const kelf::ObjectFile& primary : package.primary_objects) {
    for (const kelf::Section& section : primary.sections()) {
      if (section.kind == kelf::SectionKind::kNote &&
          ks::StartsWith(section.name, ".ksplice.")) {
        return true;
      }
    }
  }
  return false;
}

void RunAbiPass(const ksplice::UpdatePackage& package, LintReport* report) {
  const bool hooks = PackageHasHooks(package);
  const char* no_hooks_hint =
      "a data semantics change needs apply-time custom code: revise the "
      "patch to keep the layout and initialize state in a ksplice_apply "
      "hook (shadow data structures, §5.3)";
  const char* hooks_hint =
      "hooks claim to handle this change; a programmer must still confirm "
      "they initialize every live instance (§3.4)";

  for (const kelf::ObjectFile& primary : package.primary_objects) {
    const kelf::ObjectFile* helper =
        HelperForUnit(package, primary.source_name());
    if (helper == nullptr) {
      continue;  // callgraph pass reports missing helpers via targets
    }
    for (const kelf::Section& post : primary.sections()) {
      // Howto-tagged sections are code metadata (exception/bug tables,
      // build timestamps), not persistent state; the howto pass (KSA6xx)
      // owns their invariants.
      if (!IsDataKind(post.kind) || post.howto != kelf::Howto::kNone) {
        continue;
      }
      const kelf::Section* pre = helper->SectionByName(post.name);
      if (pre == nullptr || !IsDataKind(pre->kind)) {
        continue;  // new variable: new state is always safe to add
      }
      ++report->data_sections_compared;

      if (pre->size() != post.size() || pre->align != post.align) {
        report->findings.push_back(MakeFinding(
            hooks ? "KSA303" : "KSA301",
            hooks ? LintSeverity::kNote : LintSeverity::kError,
            primary.source_name(), post.name,
            ks::StrPrintf(
                "persistent data layout changes: %u -> %u bytes, align "
                "%u -> %u%s",
                pre->size(), post.size(), pre->align, post.align,
                hooks ? " (gated by ksplice hooks)" : ""),
            hooks ? hooks_hint : no_hooks_hint));
        continue;
      }
      bool bytes_differ =
          pre->kind != kelf::SectionKind::kBss && pre->bytes != post.bytes;
      if (bytes_differ) {
        report->findings.push_back(MakeFinding(
            hooks ? "KSA303" : "KSA302",
            hooks ? LintSeverity::kNote : LintSeverity::kError,
            primary.source_name(), post.name,
            ks::StrPrintf(
                "persistent data contents change (%u bytes)%s",
                post.size(), hooks ? " (gated by ksplice hooks)" : ""),
            hooks ? hooks_hint : no_hooks_hint));
      }
    }
  }
}

}  // namespace kanalyze
