#include "kanalyze/callgraph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <span>

#include "kvx/isa.h"

namespace kanalyze {

namespace {

// kanalyze must stay header-only towards ksplice (ks_ksplice links this
// library, not the reverse), so split scoped names locally.
std::string ScopedKey(const std::string& unit, const std::string& symbol) {
  return unit + "::" + symbol;
}

bool SplitScoped(const std::string& name, std::string* unit,
                 std::string* symbol) {
  size_t sep = name.find("::");
  if (sep == std::string::npos) {
    return false;
  }
  *unit = name.substr(0, sep);
  *symbol = name.substr(sep + 2);
  return true;
}

struct SectionScan {
  bool self_call = false;
  uint64_t insns = 0;
};

// Decodes a text section looking for reloc-free CALLs (self-recursion
// under -ffunction-sections). Stops at the first undecodable byte — the
// CFG pass owns that diagnostic. Blocking facts (sleep/lock_kernel) are
// the side-effect summaries' job (summary.h), not the graph's.
SectionScan ScanText(const kelf::Section& section) {
  SectionScan scan;
  std::set<uint32_t> reloc_fields;
  for (const kelf::Relocation& rel : section.relocs) {
    reloc_fields.insert(rel.offset);
  }
  kvx::WalkInsns(std::span<const uint8_t>(section.bytes),
                 [&](uint32_t off, const kvx::Insn& insn) {
                   ++scan.insns;
                   if (insn.op == kvx::Op::kCall) {
                     int field = kvx::Imm32FieldOffset(insn.op);
                     if (field >= 0 &&
                         reloc_fields.count(
                             off + static_cast<uint32_t>(field)) == 0) {
                       scan.self_call = true;
                     }
                   }
                   return true;
                 });
  return scan;
}

}  // namespace

int CallGraph::FindHelperNode(const std::string& unit,
                              const std::string& symbol) const {
  auto it = helper_by_scoped_.find(ScopedKey(unit, symbol));
  return it == helper_by_scoped_.end() ? -1 : it->second;
}

int CallGraph::FindPrimaryNode(const std::string& unit,
                               const std::string& symbol) const {
  auto it = primary_by_scoped_.find(ScopedKey(unit, symbol));
  return it == primary_by_scoped_.end() ? -1 : it->second;
}

bool CallGraph::OnCycle(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes.size())) {
    return false;
  }
  // BFS from the node's callees back to the node.
  std::deque<int> queue(callees[static_cast<size_t>(node)].begin(),
                        callees[static_cast<size_t>(node)].end());
  std::set<int> seen;
  while (!queue.empty()) {
    int at = queue.front();
    queue.pop_front();
    if (at == node) {
      return true;
    }
    if (!seen.insert(at).second) {
      continue;
    }
    for (int next : callees[static_cast<size_t>(at)]) {
      queue.push_back(next);
    }
  }
  return false;
}

CallGraph BuildCallGraph(const ksplice::UpdatePackage& package) {
  CallGraph graph;

  // ---- Nodes: every text section of every object, helpers then
  // primaries. Sections without a defining symbol (hand-built packages,
  // monolithic builds) become anonymous nodes keyed by section name.
  struct ObjRef {
    const kelf::ObjectFile* obj;
    bool in_primary;
    int object_index;
  };
  std::vector<ObjRef> objects;
  for (size_t i = 0; i < package.helper_objects.size(); ++i) {
    objects.push_back({&package.helper_objects[i], false,
                       static_cast<int>(i)});
  }
  for (size_t i = 0; i < package.primary_objects.size(); ++i) {
    objects.push_back({&package.primary_objects[i], true,
                       static_cast<int>(i)});
  }

  // (object position in `objects`, section index) -> node index.
  std::map<std::pair<int, int>, int> node_of_section;
  // Global function name -> node, helpers and primaries kept apart
  // (apply-time resolution prefers package-internal definitions).
  std::map<std::string, int> helper_globals;
  std::map<std::string, int> primary_globals;
  // Every defined symbol per helper unit, text AND data: apply-time
  // scoped-import resolution goes through run-pre symbol_values, which
  // cover the whole helper symbol table, so a data reference like
  // `unit::some_static` is perfectly resolvable even though it never
  // becomes a call-graph node.
  std::map<std::string, std::set<std::string>> helper_defined;

  for (size_t i = 0; i < package.helper_objects.size(); ++i) {
    const kelf::ObjectFile& obj = package.helper_objects[i];
    std::set<std::string>& defined = helper_defined[obj.source_name()];
    for (const kelf::Symbol& sym : obj.symbols()) {
      if (sym.defined() && !sym.name.empty()) {
        defined.insert(sym.name);
      }
    }
  }

  for (size_t oi = 0; oi < objects.size(); ++oi) {
    const ObjRef& ref = objects[oi];
    for (size_t si = 0; si < ref.obj->sections().size(); ++si) {
      const kelf::Section& section = ref.obj->sections()[si];
      if (section.kind != kelf::SectionKind::kText ||
          section.bytes.empty()) {
        continue;
      }
      CallNode node;
      node.unit = ref.obj->source_name();
      node.section = section.name;
      node.in_primary = ref.in_primary;
      node.object_index = ref.object_index;
      node.section_index = static_cast<int>(si);
      node.text_bytes = static_cast<uint32_t>(section.bytes.size());
      std::optional<int> def =
          ref.obj->DefiningSymbolForSection(static_cast<int>(si));
      kelf::SymbolBinding binding = kelf::SymbolBinding::kLocal;
      if (def.has_value()) {
        const kelf::Symbol& sym =
            ref.obj->symbols()[static_cast<size_t>(*def)];
        node.symbol = sym.name;
        binding = sym.binding;
      }
      int index = static_cast<int>(graph.nodes.size());
      node_of_section[{static_cast<int>(oi), static_cast<int>(si)}] = index;
      if (!node.symbol.empty()) {
        auto& scoped = ref.in_primary ? graph.primary_by_scoped_
                                      : graph.helper_by_scoped_;
        scoped.emplace(ScopedKey(node.unit, node.symbol), index);
        if (binding == kelf::SymbolBinding::kGlobal) {
          auto& globals = ref.in_primary ? primary_globals : helper_globals;
          globals.emplace(node.symbol, index);
        }
      }
      graph.nodes.push_back(std::move(node));
    }
  }
  graph.callees.assign(graph.nodes.size(), {});
  graph.callers.assign(graph.nodes.size(), {});

  // ---- Edges from relocations in text sections.
  auto add_edge = [&](int from, int to) {
    auto& out = graph.callees[static_cast<size_t>(from)];
    if (std::find(out.begin(), out.end(), to) != out.end()) {
      return;
    }
    out.push_back(to);
    graph.callers[static_cast<size_t>(to)].push_back(from);
    ++graph.edges;
  };

  for (size_t oi = 0; oi < objects.size(); ++oi) {
    const ObjRef& ref = objects[oi];
    for (size_t si = 0; si < ref.obj->sections().size(); ++si) {
      auto from_it = node_of_section.find(
          {static_cast<int>(oi), static_cast<int>(si)});
      if (from_it == node_of_section.end()) {
        continue;
      }
      int from = from_it->second;
      const kelf::Section& section = ref.obj->sections()[si];
      for (const kelf::Relocation& rel : section.relocs) {
        if (rel.symbol < 0 ||
            rel.symbol >= static_cast<int>(ref.obj->symbols().size())) {
          continue;  // ObjectFile::Validate rejects this; stay defensive
        }
        const kelf::Symbol& sym =
            ref.obj->symbols()[static_cast<size_t>(rel.symbol)];
        int to = -1;
        if (sym.defined()) {
          // Intra-object reference.
          auto to_it = node_of_section.find(
              {static_cast<int>(oi), sym.section});
          if (to_it != node_of_section.end()) {
            to = to_it->second;
          }
        } else {
          std::string import_unit;
          std::string import_symbol;
          if (SplitScoped(sym.name, &import_unit, &import_symbol)) {
            // Scoped import: must resolve through that unit's helper.
            // Text targets become edges; data targets (statics, tables)
            // are fine as long as the helper defines the symbol at all.
            to = graph.FindHelperNode(import_unit, import_symbol);
            if (to < 0 && ref.in_primary) {
              auto unit_it = helper_defined.find(import_unit);
              if (unit_it == helper_defined.end() ||
                  unit_it->second.count(import_symbol) == 0) {
                graph.dangling.push_back(DanglingImport{
                    ref.obj->source_name(),
                    graph.nodes[static_cast<size_t>(from)].symbol,
                    sym.name});
              }
            }
          } else {
            // Plain import: package-internal new globals shadow nothing;
            // then pre-kernel globals; else assume an export of an
            // un-rebuilt unit (invisible to the package).
            auto hit = primary_globals.find(sym.name);
            if (hit == primary_globals.end()) {
              hit = helper_globals.find(sym.name);
              if (hit != helper_globals.end()) {
                to = hit->second;
              }
            } else {
              to = hit->second;
            }
          }
        }
        if (to >= 0) {
          add_edge(from, to);
        }
      }
    }
  }

  // ---- Decode-level facts: self-recursion.
  for (size_t ni = 0; ni < graph.nodes.size(); ++ni) {
    CallNode& node = graph.nodes[ni];
    const ObjRef* ref = nullptr;
    for (const ObjRef& candidate : objects) {
      if (candidate.in_primary == node.in_primary &&
          candidate.object_index == node.object_index) {
        ref = &candidate;
        break;
      }
    }
    const kelf::Section& section =
        ref->obj->sections()[static_cast<size_t>(node.section_index)];
    SectionScan scan = ScanText(section);
    graph.insns_decoded += scan.insns;
    if (scan.self_call) {
      add_edge(static_cast<int>(ni), static_cast<int>(ni));
    }
  }

  return graph;
}

}  // namespace kanalyze
