// Call-graph recovery over an update package (kanalyze pass 1 substrate).
//
// Nodes are functions: one per text section with a defining symbol, drawn
// from both the helper objects (the pre build of every rebuilt unit — the
// running kernel's side of the picture) and the primary objects (the
// replacement code). Edges are recovered from relocations: a relocation in
// a text section whose symbol resolves to a function — a direct `call`, or
// a `mov r, =fn` address materialization feeding an indirect `callr` — is
// a call edge. Self-recursion is invisible to relocations (the assembler
// resolves intra-section branches inline), so primary and helper text is
// additionally decoded to find reloc-free CALL instructions, which with
// -ffunction-sections can only target the function itself.
//
// Resolution order mirrors the apply-time linker (ksplice/core.cc):
// package-internal definitions first, then scoped "unit::name" imports
// against that unit's helper, then plain names against helper globals.
// Plain imports that resolve nowhere are assumed to be kernel exports of
// un-rebuilt units (the package cannot see those); scoped imports that
// fail to resolve are a guaranteed apply failure and surface as KSA101.

#ifndef KSPLICE_KANALYZE_CALLGRAPH_H_
#define KSPLICE_KANALYZE_CALLGRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "kelf/objfile.h"
#include "ksplice/package.h"

namespace kanalyze {

// One function in the recovered graph.
struct CallNode {
  std::string unit;     // owning object's source name
  std::string symbol;   // defining symbol ("" when the section is unnamed)
  std::string section;  // text section name
  bool in_primary = false;  // replacement code vs pre-kernel code
  int object_index = -1;    // index into helper_objects / primary_objects
  int section_index = -1;   // section within that object
  uint32_t text_bytes = 0;
  // Blocking facts (sleep/lock_kernel, direct and transitive) live in the
  // side-effect summaries (summary.h), computed over this graph.
};

// An unresolved scoped import seen in primary code: a guaranteed
// apply-time link failure (feeds rule KSA101).
struct DanglingImport {
  std::string unit;    // primary unit containing the reference
  std::string symbol;  // symbol of the section holding the relocation
  std::string import;  // the scoped name that failed to resolve
};

struct CallGraph {
  std::vector<CallNode> nodes;
  std::vector<std::vector<int>> callees;  // adjacency, by node index
  std::vector<std::vector<int>> callers;  // reverse adjacency
  std::vector<DanglingImport> dangling;
  uint64_t edges = 0;          // total call edges (deduplicated)
  uint64_t insns_decoded = 0;  // self-call scans

  // Node lookup for a helper (pre) function, by unit + defining symbol.
  // Returns -1 when absent.
  int FindHelperNode(const std::string& unit,
                     const std::string& symbol) const;
  int FindPrimaryNode(const std::string& unit,
                      const std::string& symbol) const;

  // True if `node` can reach itself through at least one call edge.
  bool OnCycle(int node) const;

 private:
  friend CallGraph BuildCallGraph(const ksplice::UpdatePackage& package);
  std::map<std::string, int> helper_by_scoped_;   // "unit::symbol" -> node
  std::map<std::string, int> primary_by_scoped_;
};

// Builds the graph. Malformed inputs degrade (sections without defining
// symbols become anonymous nodes; undecodable text stops that section's
// scan) rather than fail: the analyzer reports on what it can see.
CallGraph BuildCallGraph(const ksplice::UpdatePackage& package);

}  // namespace kanalyze

#endif  // KSPLICE_KANALYZE_CALLGRAPH_H_
