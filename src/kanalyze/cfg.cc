#include "kanalyze/cfg.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <span>

#include "base/strings.h"

namespace kanalyze {

namespace {

using ksplice::LintFinding;
using ksplice::LintReport;
using ksplice::LintSeverity;

bool IsTerminator(kvx::Op op) {
  return op == kvx::Op::kRet || op == kvx::Op::kHalt ||
         op == kvx::Op::kJmp8 || op == kvx::Op::kJmp32;
}

bool IsBranch(const kvx::OpInfo& info) {
  return info.has_rel8 || info.has_rel32;
}

// Unconditional control transfer: no fallthrough edge.
bool NoFallthrough(kvx::Op op) {
  return op == kvx::Op::kRet || op == kvx::Op::kHalt ||
         op == kvx::Op::kJmp8 || op == kvx::Op::kJmp32;
}

LintFinding MakeFinding(const char* rule, LintSeverity severity,
                        const std::string& unit, const std::string& symbol,
                        std::string message, std::string hint) {
  LintFinding finding;
  finding.rule = rule;
  finding.severity = severity;
  finding.pass = "cfg";
  finding.unit = unit;
  finding.symbol = symbol;
  finding.message = std::move(message);
  finding.hint = std::move(hint);
  return finding;
}

// ---- Stack-balance abstract interpretation ---------------------------

struct StackState {
  bool known = true;
  int32_t depth = 0;  // bytes pushed since function entry
  bool fp_known = false;
  int32_t fp_depth = 0;  // depth snapshotted by `mov fp, sp`

  bool operator==(const StackState& other) const {
    if (known != other.known || fp_known != other.fp_known) {
      return false;
    }
    return (!known || depth == other.depth) &&
           (!fp_known || fp_depth == other.fp_depth);
  }
};

// Joins two path states: agreeing facts survive, disagreements degrade to
// unknown (a conditional push on one path is legal code, not a finding —
// only a provably wrong depth at RET is).
StackState Join(const StackState& a, const StackState& b) {
  StackState out;
  out.known = a.known && b.known && a.depth == b.depth;
  out.depth = out.known ? a.depth : 0;
  out.fp_known = a.fp_known && b.fp_known && a.fp_depth == b.fp_depth;
  out.fp_depth = out.fp_known ? a.fp_depth : 0;
  return out;
}

// The register an instruction writes, or -1.
int DestRegister(const kvx::Insn& insn) {
  switch (insn.op) {
    case kvx::Op::kMovRI:
    case kvx::Op::kMovRR:
    case kvx::Op::kLoadI:
    case kvx::Op::kLoadBI:
    case kvx::Op::kAddRR:
    case kvx::Op::kSubRR:
    case kvx::Op::kMulRR:
    case kvx::Op::kAndRR:
    case kvx::Op::kOrRR:
    case kvx::Op::kXorRR:
    case kvx::Op::kDivRR:
    case kvx::Op::kModRR:
    case kvx::Op::kShlRR:
    case kvx::Op::kShrRR:
    case kvx::Op::kAddRI:
    case kvx::Op::kSubRI:
    case kvx::Op::kAndRI:
    case kvx::Op::kPop:
      return insn.reg1;
    case kvx::Op::kSys:
      return 0;  // results land in r0
    default:
      return -1;
  }
}

// Applies one instruction to the state. Returns the depth the state had
// if the instruction is a RET (for the balance check), else nullopt.
std::optional<StackState> ApplyInsn(const kvx::Insn& insn,
                                    StackState state) {
  switch (insn.op) {
    case kvx::Op::kPush:
      state.depth += 4;
      return state;
    case kvx::Op::kPop:
      state.depth -= 4;
      if (insn.reg1 == kvx::kRegFp) {
        state.fp_known = false;  // caller's fp: unknowable here
      }
      return state;
    case kvx::Op::kSubRI:
      if (insn.reg1 == kvx::kRegSp) {
        state.depth += static_cast<int32_t>(insn.imm);
        return state;
      }
      break;
    case kvx::Op::kAddRI:
      if (insn.reg1 == kvx::kRegSp) {
        state.depth -= static_cast<int32_t>(insn.imm);
        return state;
      }
      break;
    case kvx::Op::kMovRR:
      if (insn.reg1 == kvx::kRegFp && insn.reg2 == kvx::kRegSp) {
        state.fp_known = state.known;
        state.fp_depth = state.depth;
        return state;
      }
      if (insn.reg1 == kvx::kRegSp && insn.reg2 == kvx::kRegFp) {
        state.known = state.fp_known;
        state.depth = state.fp_depth;
        return state;
      }
      break;
    default:
      break;
  }
  int dest = DestRegister(insn);
  if (dest == kvx::kRegSp) {
    state.known = false;  // arithmetic on sp the model cannot follow
  } else if (dest == kvx::kRegFp) {
    state.fp_known = false;
  }
  return state;
}

}  // namespace

Cfg BuildCfg(const kelf::Section& section,
             const std::set<uint32_t>& extra_entry_points) {
  Cfg cfg;
  const uint32_t size = static_cast<uint32_t>(section.bytes.size());

  std::set<uint32_t> reloc_fields;
  for (const kelf::Relocation& rel : section.relocs) {
    reloc_fields.insert(rel.offset);
  }

  // ---- Linear decode.
  std::set<uint32_t> boundaries;
  kvx::WalkEnd walk = kvx::WalkInsns(
      std::span<const uint8_t>(section.bytes),
      [&](uint32_t off, const kvx::Insn& insn) {
        CfgInsn entry;
        entry.offset = off;
        entry.insn = insn;
        int field = kvx::Imm32FieldOffset(insn.op);
        entry.reloc_in_field =
            field >= 0 &&
            reloc_fields.count(off + static_cast<uint32_t>(field)) != 0;
        // rel8 displacements live at offset 1 and are never relocation
        // sites, but a reloc anywhere inside the instruction still means
        // "patched by the linker" — stay conservative.
        boundaries.insert(off);
        cfg.insns.push_back(entry);
        return true;
      });
  if (!walk.decode_ok) {
    cfg.decode_ok = false;
    cfg.decode_error_offset = walk.end;
    cfg.decode_error = walk.error;
  }
  const uint32_t decoded_end = walk.end;

  // ---- Branch targets and leaders.
  std::set<uint32_t> leaders{0};
  std::map<uint32_t, uint32_t> branch_target;  // insn offset -> target
  for (const CfgInsn& entry : cfg.insns) {
    const kvx::OpInfo& info = kvx::GetOpInfo(entry.insn.op);
    uint32_t next = entry.offset + entry.insn.len;
    if (IsBranch(info) && !entry.reloc_in_field &&
        entry.insn.op != kvx::Op::kCall) {
      int64_t target = static_cast<int64_t>(next) + entry.insn.rel;
      if (target < 0 || target >= decoded_end ||
          boundaries.count(static_cast<uint32_t>(target)) == 0) {
        cfg.wild_jumps.emplace_back(
            entry.offset,
            static_cast<uint32_t>(static_cast<int64_t>(target) & 0xffffffff));
      } else {
        branch_target[entry.offset] = static_cast<uint32_t>(target);
        leaders.insert(static_cast<uint32_t>(target));
      }
      if (next < decoded_end) {
        leaders.insert(next);  // block ends at any branch
      }
    } else if (IsTerminator(entry.insn.op) && next < decoded_end) {
      leaders.insert(next);
    }
  }

  // ---- Blocks.
  std::map<uint32_t, uint32_t> block_of_leader;
  std::vector<uint32_t> leader_list(leaders.begin(), leaders.end());
  for (size_t i = 0; i < leader_list.size(); ++i) {
    block_of_leader[leader_list[i]] = static_cast<uint32_t>(i);
  }
  uint32_t insn_index = 0;
  for (size_t i = 0; i < leader_list.size(); ++i) {
    BasicBlock block;
    block.start = leader_list[i];
    block.end =
        i + 1 < leader_list.size() ? leader_list[i + 1] : decoded_end;
    block.first_insn = insn_index;
    while (insn_index < cfg.insns.size() &&
           cfg.insns[insn_index].offset < block.end) {
      const CfgInsn& entry = cfg.insns[insn_index];
      if (!kvx::GetOpInfo(entry.insn.op).is_nop) {
        block.nops_only = false;
      }
      ++block.num_insns;
      ++insn_index;
    }
    cfg.blocks.push_back(std::move(block));
  }

  // ---- Edges.
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    BasicBlock& block = cfg.blocks[i];
    if (block.num_insns == 0) {
      continue;
    }
    const CfgInsn& last = cfg.insns[block.first_insn + block.num_insns - 1];
    block.terminated = NoFallthrough(last.insn.op);
    auto target = branch_target.find(last.offset);
    if (target != branch_target.end()) {
      block.succ.push_back(block_of_leader[target->second]);
    }
    bool falls = !NoFallthrough(last.insn.op);
    if (falls) {
      if (block.end < decoded_end) {
        block.succ.push_back(block_of_leader[block.end]);
      } else {
        block.falls_off = true;
      }
    }
  }

  // ---- Reachability from the function entry plus any out-of-band entry
  // points (extable fixup targets: control arrives from the fault
  // dispatcher, not from a decoded branch). An extra point that is not a
  // block leader is ignored here — the howto pass's KSA602 owns
  // mid-instruction table targets.
  if (!cfg.blocks.empty()) {
    std::deque<uint32_t> queue{0};
    for (uint32_t entry_point : extra_entry_points) {
      auto leader = block_of_leader.find(entry_point);
      if (leader != block_of_leader.end()) {
        queue.push_back(leader->second);
      }
    }
    while (!queue.empty()) {
      uint32_t at = queue.front();
      queue.pop_front();
      if (cfg.blocks[at].reachable) {
        continue;
      }
      cfg.blocks[at].reachable = true;
      for (uint32_t next : cfg.blocks[at].succ) {
        queue.push_back(next);
      }
    }
  }
  return cfg;
}

size_t VerifyFunction(const std::string& unit, const std::string& symbol,
                      const kelf::Section& section, LintReport* report,
                      const std::set<uint32_t>& extra_entry_points) {
  Cfg cfg = BuildCfg(section, extra_entry_points);
  report->insns_decoded += cfg.insns.size();

  // KSA201: undecodable instruction.
  if (!cfg.decode_ok) {
    LintFinding finding = MakeFinding(
        "KSA201", LintSeverity::kError, unit, symbol,
        ks::StrPrintf("undecodable instruction (%s)",
                      cfg.decode_error.c_str()),
        "replacement code must be valid kvx; check .byte directives and "
        "truncated instructions in hand-written assembly");
    finding.offset = cfg.decode_error_offset;
    finding.has_offset = true;
    report->findings.push_back(std::move(finding));
  }

  // KSA202: wild jumps.
  for (const auto& [branch_off, target] : cfg.wild_jumps) {
    LintFinding finding = MakeFinding(
        "KSA202", LintSeverity::kError, unit, symbol,
        ks::StrPrintf("jump to 0x%x is outside the function or lands "
                      "inside an instruction (%u code bytes)",
                      target, static_cast<uint32_t>(section.bytes.size())),
        "intra-function branches must target instruction boundaries; "
        "out-of-function control flow needs a relocation");
    finding.offset = branch_off;
    finding.has_offset = true;
    report->findings.push_back(std::move(finding));
  }

  // KSA203: control can run off the end (only meaningful when the whole
  // section decoded — an undecodable tail is already KSA201).
  if (cfg.decode_ok) {
    for (const BasicBlock& block : cfg.blocks) {
      if (block.reachable && block.falls_off && block.num_insns > 0) {
        LintFinding finding = MakeFinding(
            "KSA203", LintSeverity::kError, unit, symbol,
            "control falls off the end of the function",
            "end every path with ret, jmp, or halt");
        finding.offset = block.end;
        finding.has_offset = true;
        report->findings.push_back(std::move(finding));
      }
    }
  }

  // KSA204: dead blocks (beyond nop alignment padding and undecoded
  // tails, which KSA201 already covers).
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable && !block.nops_only && block.num_insns > 0) {
      LintFinding finding = MakeFinding(
          "KSA204", LintSeverity::kWarning, unit, symbol,
          ks::StrPrintf("unreachable code at 0x%x (%u instruction(s))",
                        block.start, block.num_insns),
          "dead blocks waste splice bytes and often indicate a wrong "
          "branch polarity in the patch");
      finding.offset = block.start;
      finding.has_offset = true;
      report->findings.push_back(std::move(finding));
    }
  }

  // KSA205: stack balance at every reachable RET.
  std::vector<std::optional<StackState>> entry_state(cfg.blocks.size());
  if (!cfg.blocks.empty() && cfg.blocks[0].reachable) {
    entry_state[0] = StackState{};
    std::deque<uint32_t> worklist{0};
    std::set<uint32_t> reported_rets;
    while (!worklist.empty()) {
      uint32_t at = worklist.front();
      worklist.pop_front();
      const BasicBlock& block = cfg.blocks[at];
      StackState state = *entry_state[at];
      for (uint32_t i = 0; i < block.num_insns; ++i) {
        const CfgInsn& entry = cfg.insns[block.first_insn + i];
        if (entry.insn.op == kvx::Op::kRet && state.known &&
            state.depth != 0 && reported_rets.insert(entry.offset).second) {
          LintFinding finding = MakeFinding(
              "KSA205", LintSeverity::kWarning, unit, symbol,
              ks::StrPrintf("returns with %d byte(s) left on the frame",
                            state.depth),
              "pushes and pops must balance on every path to ret");
          finding.offset = entry.offset;
          finding.has_offset = true;
          report->findings.push_back(std::move(finding));
        }
        state = *ApplyInsn(entry.insn, state);
      }
      for (uint32_t next : block.succ) {
        StackState joined = entry_state[next].has_value()
                                ? Join(*entry_state[next], state)
                                : state;
        if (!entry_state[next].has_value() ||
            !(joined == *entry_state[next])) {
          entry_state[next] = joined;
          worklist.push_back(next);
        }
      }
    }
  }

  report->blocks_analyzed += cfg.blocks.size();
  return cfg.blocks.size();
}

}  // namespace kanalyze
