// CFG recovery + bytecode verification for one function's kvx code
// (kanalyze pass 2). Decodes a text section into basic blocks and checks
// the properties that make a replacement function safe to splice:
// every instruction decodes, every resolved branch lands on an
// instruction boundary inside the function, control cannot run off the
// end, dead blocks beyond alignment padding are flagged, and the stack is
// balanced when the function returns.
//
// Branch displacements covered by a relocation are external control
// transfers (the assembler resolves intra-section branches inline and
// leaves cross-section ones to the linker) and are not treated as
// intra-function jumps.
//
// The stack model is a small abstract interpretation over the byte depth
// of the frame: PUSH/POP move it by 4, ADD/SUB on sp by the immediate,
// `mov fp, sp` snapshots it and `mov sp, fp` restores the snapshot (the
// kcc prologue/epilogue idiom). Anything the model cannot follow — an
// indexed write to sp, `mov sp, fp` after fp was clobbered — degrades the
// depth to unknown instead of guessing, so KSA205 only fires on provable
// imbalance.

#ifndef KSPLICE_KANALYZE_CFG_H_
#define KSPLICE_KANALYZE_CFG_H_

#include <cstdint>
#include <set>
#include <vector>

#include "base/status.h"
#include "kelf/objfile.h"
#include "ksplice/report.h"
#include "kvx/isa.h"

namespace kanalyze {

struct CfgInsn {
  uint32_t offset = 0;
  kvx::Insn insn;
  bool reloc_in_field = false;  // imm32/rel32 field is a relocation site
};

struct BasicBlock {
  uint32_t start = 0;  // byte range [start, end) within the section
  uint32_t end = 0;
  uint32_t first_insn = 0;  // index into Cfg::insns
  uint32_t num_insns = 0;
  std::vector<uint32_t> succ;     // successor block indices
  bool reachable = false;
  bool terminated = false;  // ends in ret / jmp / halt
  bool falls_off = false;   // fallthrough would leave the section
  bool nops_only = true;    // alignment padding candidate
};

struct Cfg {
  std::vector<CfgInsn> insns;
  std::vector<BasicBlock> blocks;
  // Linear decode stopped early (undecodable byte / truncated insn).
  bool decode_ok = true;
  uint32_t decode_error_offset = 0;
  std::string decode_error;
  // Resolved intra-section branch targets that are invalid: (branch
  // offset, target) pairs where the target is out of bounds or not an
  // instruction boundary.
  std::vector<std::pair<uint32_t, uint32_t>> wild_jumps;
};

// Decodes `section` into a CFG. Structural problems are recorded in the
// returned Cfg, not surfaced as a Status — the caller turns them into
// typed findings. `extra_entry_points` are section offsets reached from
// outside the static control flow (exception-table fixup targets: the
// fault dispatcher jumps there, so they seed reachability alongside
// offset 0).
Cfg BuildCfg(const kelf::Section& section,
             const std::set<uint32_t>& extra_entry_points = {});

// Runs all CFG/bytecode checks over one changed function and appends
// findings (KSA201..KSA205) to `report`. Returns the number of basic
// blocks analyzed.
size_t VerifyFunction(const std::string& unit, const std::string& symbol,
                      const kelf::Section& section,
                      ksplice::LintReport* report,
                      const std::set<uint32_t>& extra_entry_points = {});

}  // namespace kanalyze

#endif  // KSPLICE_KANALYZE_CFG_H_
