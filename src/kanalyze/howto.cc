// Special-section howto checks (kanalyze pass 6): validates the typed
// table sections a primary object ships against the code it ships. An
// exception-table or bug-table entry is only meaningful if its words name
// instruction boundaries of the packaged text — a patch that moved or
// deleted the code a fixup pointed at would otherwise be discovered only
// when a fault dispatches through a stale entry in the running kernel.
//
//   KSA601 (error): an entry word's relocation is missing, references an
//          undefined or non-text symbol, or its addend lies past the end
//          of the target section — the fixup target does not exist.
//   KSA602 (error): the addend is inside the section but does not start
//          an instruction — the patch rewrote the code under the entry
//          (the classic "fixup into patched-out code").
//   KSA603 (error): a bug-table entry's trap word decodes, but not to the
//          bug trap opcode — the entry no longer guards a BUG().
//   KSA604 (note): a build-timestamp section's content differs between
//          the helper (pre) and primary (post) objects. Harmless by
//          construction: run-pre matches date/time sections content-
//          ignoring (§4.3 applied to special sections).

#include <map>
#include <set>

#include "base/strings.h"
#include "kanalyze/kanalyze.h"
#include "kvx/isa.h"

namespace kanalyze {

namespace {

using ksplice::LintFinding;
using ksplice::LintReport;
using ksplice::LintSeverity;

LintFinding MakeFinding(const char* rule, LintSeverity severity,
                        const std::string& unit, const std::string& section,
                        uint32_t offset, std::string message,
                        std::string hint) {
  LintFinding finding;
  finding.rule = rule;
  finding.severity = severity;
  finding.pass = "howto";
  finding.unit = unit;
  finding.symbol = section;
  finding.offset = offset;
  finding.has_offset = true;
  finding.message = std::move(message);
  finding.hint = std::move(hint);
  return finding;
}

// Instruction boundaries of a text section, including the end-of-walk
// offset. Second member is false when the walk hit undecodable bytes
// (the cfg pass reports that as KSA201; here it just truncates the set).
std::pair<std::set<uint32_t>, uint64_t> TextBoundaries(
    const kelf::Section& text) {
  std::set<uint32_t> boundaries;
  uint64_t decoded = 0;
  kvx::WalkEnd walk = kvx::WalkInsns(
      std::span<const uint8_t>(text.bytes),
      [&](uint32_t pos, const kvx::Insn&) {
        boundaries.insert(pos);
        ++decoded;
        return true;
      });
  boundaries.insert(walk.end);
  return {std::move(boundaries), decoded};
}

// Checks one table word: the relocation at `off` must name a defined text
// symbol whose section contains addend, on an instruction boundary.
// `what` names the word in diagnostics ("faulting instruction", "fixup",
// "trap"). Returns the resolved (section, offset) when valid.
struct WordTarget {
  const kelf::Section* text = nullptr;
  uint32_t offset = 0;
  bool ok = false;
};

WordTarget CheckTableWord(
    const kelf::ObjectFile& obj, const kelf::Section& table, uint32_t off,
    const char* what,
    std::map<const kelf::Section*, std::set<uint32_t>>& boundary_cache,
    LintReport* report) {
  WordTarget target;
  const kelf::Relocation* rel = nullptr;
  for (const kelf::Relocation& r : table.relocs) {
    if (r.offset == off) {
      rel = &r;
      break;
    }
  }
  const char* hint =
      "rebuild the package: table entries must be regenerated with the "
      "code they describe, never patched independently";
  if (rel == nullptr) {
    report->findings.push_back(MakeFinding(
        "KSA601", LintSeverity::kError, obj.source_name(), table.name, off,
        ks::StrPrintf("entry %u: %s word carries no relocation — the "
                      "target cannot move with the code",
                      off / kelf::kHowtoEntrySize, what),
        hint));
    return target;
  }
  const kelf::Symbol& sym = obj.symbols()[static_cast<size_t>(rel->symbol)];
  if (!sym.defined()) {
    report->findings.push_back(MakeFinding(
        "KSA601", LintSeverity::kError, obj.source_name(), table.name, off,
        ks::StrPrintf("entry %u: %s word references '%s', which this "
                      "object does not define",
                      off / kelf::kHowtoEntrySize, what, sym.name.c_str()),
        hint));
    return target;
  }
  const kelf::Section& text =
      obj.sections()[static_cast<size_t>(sym.section)];
  uint32_t resolved = sym.value + static_cast<uint32_t>(rel->addend);
  if (text.kind != kelf::SectionKind::kText ||
      resolved >= text.bytes.size()) {
    report->findings.push_back(MakeFinding(
        "KSA601", LintSeverity::kError, obj.source_name(), table.name, off,
        ks::StrPrintf("entry %u: %s target '%s'+%u is outside the "
                      "function's code (%zu bytes)",
                      off / kelf::kHowtoEntrySize, what, sym.name.c_str(),
                      static_cast<uint32_t>(rel->addend), text.bytes.size()),
        hint));
    return target;
  }
  auto cached = boundary_cache.find(&text);
  if (cached == boundary_cache.end()) {
    auto [boundaries, decoded] = TextBoundaries(text);
    report->insns_decoded += decoded;
    cached = boundary_cache.emplace(&text, std::move(boundaries)).first;
  }
  if (cached->second.count(resolved) == 0) {
    report->findings.push_back(MakeFinding(
        "KSA602", LintSeverity::kError, obj.source_name(), table.name, off,
        ks::StrPrintf("entry %u: %s target '%s'+%u does not start an "
                      "instruction — the patch rewrote the code this "
                      "entry described",
                      off / kelf::kHowtoEntrySize, what, sym.name.c_str(),
                      resolved),
        hint));
    return target;
  }
  target.text = &text;
  target.offset = resolved;
  target.ok = true;
  return target;
}

const kelf::ObjectFile* HelperForUnit(const ksplice::UpdatePackage& package,
                                      const std::string& unit) {
  for (const kelf::ObjectFile& helper : package.helper_objects) {
    if (helper.source_name() == unit) {
      return &helper;
    }
  }
  return nullptr;
}

}  // namespace

void RunHowtoPass(const ksplice::UpdatePackage& package, LintReport* report) {
  for (const kelf::ObjectFile& primary : package.primary_objects) {
    std::map<const kelf::Section*, std::set<uint32_t>> boundary_cache;
    for (const kelf::Section& section : primary.sections()) {
      if (section.howto != kelf::Howto::kExtable &&
          section.howto != kelf::Howto::kBug) {
        continue;
      }
      const bool extable = section.howto == kelf::Howto::kExtable;
      uint32_t size = static_cast<uint32_t>(section.bytes.size());
      for (uint32_t off = 0; off + kelf::kHowtoEntrySize <= size;
           off += kelf::kHowtoEntrySize) {
        if (extable) {
          CheckTableWord(primary, section, off, "faulting instruction",
                         boundary_cache, report);
          CheckTableWord(primary, section, off + 4, "fixup",
                         boundary_cache, report);
          continue;
        }
        WordTarget trap = CheckTableWord(primary, section, off, "trap",
                                         boundary_cache, report);
        if (!trap.ok) {
          continue;
        }
        ks::Result<kvx::Insn> insn = kvx::Decode(
            std::span<const uint8_t>(trap.text->bytes).subspan(trap.offset));
        if (!insn.ok() || insn->op != kvx::Op::kBug) {
          report->findings.push_back(MakeFinding(
              "KSA603", LintSeverity::kError, primary.source_name(),
              section.name, off,
              ks::StrPrintf("entry %u: trap address no longer decodes to a "
                            "bug trap (found %s)",
                            off / kelf::kHowtoEntrySize,
                            insn.ok() ? kvx::FormatInsn(*insn).c_str()
                                      : "undecodable bytes"),
              "rebuild the package: the BUG() site moved or was removed"));
        }
      }
    }

    // KSA604: pre-vs-post build timestamps. Only fires when a primary
    // carries a date/time section at all (a patch that touched it
    // directly); matching is content-ignoring, so this is informational.
    const kelf::ObjectFile* helper =
        HelperForUnit(package, primary.source_name());
    if (helper == nullptr) {
      continue;
    }
    for (const kelf::Section& post : primary.sections()) {
      if (post.howto != kelf::Howto::kDate &&
          post.howto != kelf::Howto::kTime) {
        continue;
      }
      const kelf::Section* pre = helper->SectionByName(post.name);
      if (pre != nullptr && pre->bytes != post.bytes) {
        report->findings.push_back(MakeFinding(
            "KSA604", LintSeverity::kNote, primary.source_name(), post.name,
            0,
            "build timestamp differs between pre and post objects",
            "harmless: date/time sections match content-ignoring at "
            "apply time"));
      }
    }
  }
}

}  // namespace kanalyze
