#include "kanalyze/kanalyze.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <tuple>

#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"
#include "kanalyze/cfg.h"

namespace kanalyze {

namespace {

using ksplice::LintFinding;
using ksplice::LintReport;
using ksplice::LintSeverity;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

LintFinding CallGraphFinding(const char* rule, LintSeverity severity,
                             std::string unit, std::string symbol,
                             std::string message, std::string hint) {
  LintFinding finding;
  finding.rule = rule;
  finding.severity = severity;
  finding.pass = "callgraph";
  finding.unit = std::move(unit);
  finding.symbol = std::move(symbol);
  finding.message = std::move(message);
  finding.hint = std::move(hint);
  return finding;
}

int SeverityRank(LintSeverity severity) {
  return -static_cast<int>(severity);  // errors first
}

}  // namespace

void RunCallGraphPass(const ksplice::UpdatePackage& package,
                      const CallGraph& graph, const AnalyzeOptions& options,
                      LintReport* report) {
  report->call_edges += graph.edges;
  report->insns_decoded += graph.insns_decoded;
  report->functions_scanned += graph.nodes.size();

  // KSA101: scoped imports that resolve nowhere — a guaranteed apply-time
  // link failure (run-pre has no symbol to recover).
  std::set<std::string> seen_imports;
  for (const DanglingImport& dangling : graph.dangling) {
    if (!seen_imports.insert(dangling.unit + "\0" + dangling.import)
             .second) {
      continue;
    }
    report->findings.push_back(CallGraphFinding(
        "KSA101", LintSeverity::kError, dangling.unit, dangling.symbol,
        ks::StrPrintf("reference to '%s' cannot resolve: the unit's "
                      "helper object defines no such symbol",
                      dangling.import.c_str()),
        "the helper must carry the entire optimization unit (§5.1); "
        "rebuild the package from matching pre source"));
  }

  // KSA104: targets that name code the package does not carry.
  for (const ksplice::Target& target : package.targets) {
    bool has_primary = graph.FindPrimaryNode(target.unit, target.symbol) >= 0;
    bool has_helper = graph.FindHelperNode(target.unit, target.symbol) >= 0;
    if (!has_primary || !has_helper) {
      report->findings.push_back(CallGraphFinding(
          "KSA104", LintSeverity::kError, target.unit, target.symbol,
          ks::StrPrintf(
              "splice target missing from the package (%s object has no "
              "'%s')",
              !has_primary ? "primary" : "helper", target.symbol.c_str()),
          "every target needs replacement code in a primary object and "
          "its pre image in that unit's helper"));
    }
  }

  // KSA102/KSA103 evaluate each patched function against the graph.
  for (const ksplice::Target& target : package.targets) {
    int primary = graph.FindPrimaryNode(target.unit, target.symbol);
    if (primary >= 0 && graph.OnCycle(primary)) {
      report->findings.push_back(CallGraphFinding(
          "KSA102", LintSeverity::kWarning, target.unit, target.symbol,
          "patched function is recursive: long-lived activation frames "
          "make the §4.2 stack check likelier to fail repeatedly",
          "expect quiescence retries on busy systems"));
    }
    int helper = graph.FindHelperNode(target.unit, target.symbol);
    if (helper >= 0) {
      uint32_t fan_in = static_cast<uint32_t>(
          graph.callers[static_cast<size_t>(helper)].size());
      if (fan_in >= options.fanin_note_threshold) {
        report->findings.push_back(CallGraphFinding(
            "KSA103", LintSeverity::kNote, target.unit, target.symbol,
            ks::StrPrintf("high fan-in: %u static caller(s) in the pre "
                          "kernel reach this function",
                          fan_in),
            "a hot function raises the chance a thread is executing it "
            "when stop_machine rendezvous"));
      }
    }
  }
}

void RunCfgPass(const ksplice::UpdatePackage& package, LintReport* report) {
  for (const kelf::ObjectFile& primary : package.primary_objects) {
    // Exception-table fixup targets are entry points the static CFG
    // cannot see (the fault dispatcher jumps there): collect them per
    // text section so the recovery blocks do not lint as unreachable.
    std::map<int, std::set<uint32_t>> fixups_by_section;
    for (const kelf::Section& table : primary.sections()) {
      if (table.howto != kelf::Howto::kExtable) {
        continue;
      }
      for (const kelf::Relocation& rel : table.relocs) {
        if (rel.offset % kelf::kHowtoEntrySize != 4 || rel.symbol < 0 ||
            rel.symbol >= static_cast<int>(primary.symbols().size())) {
          continue;  // word0 (faulting insn) is in normal control flow
        }
        const kelf::Symbol& sym =
            primary.symbols()[static_cast<size_t>(rel.symbol)];
        if (!sym.defined()) {
          continue;
        }
        fixups_by_section[sym.section].insert(
            sym.value + static_cast<uint32_t>(rel.addend));
      }
    }
    for (size_t si = 0; si < primary.sections().size(); ++si) {
      const kelf::Section& section = primary.sections()[si];
      if (section.kind != kelf::SectionKind::kText ||
          section.bytes.empty()) {
        continue;
      }
      std::string symbol = section.name;
      std::optional<int> def =
          primary.DefiningSymbolForSection(static_cast<int>(si));
      if (def.has_value()) {
        symbol = primary.symbols()[static_cast<size_t>(*def)].name;
      }
      VerifyFunction(primary.source_name(), symbol, section, report,
                     fixups_by_section[static_cast<int>(si)]);
    }
  }
}

ks::Result<LintReport> AnalyzePackage(const ksplice::UpdatePackage& package,
                                      const AnalyzeOptions& options) {
  ks::TraceSpan span("kanalyze.lint");
  static ks::Counter& packages_linted =
      ks::Metrics().GetCounter("kanalyze.packages_linted");
  static ks::Counter& functions_scanned =
      ks::Metrics().GetCounter("kanalyze.functions_scanned");
  static ks::Counter& findings_error =
      ks::Metrics().GetCounter("kanalyze.findings.error");
  static ks::Counter& findings_warning =
      ks::Metrics().GetCounter("kanalyze.findings.warning");
  static ks::Counter& findings_note =
      ks::Metrics().GetCounter("kanalyze.findings.note");
  static ks::Histogram& callgraph_ns =
      ks::Metrics().GetHistogram("kanalyze.callgraph_ns");
  static ks::Histogram& summary_ns =
      ks::Metrics().GetHistogram("kanalyze.summary_ns");
  static ks::Histogram& cfg_ns = ks::Metrics().GetHistogram("kanalyze.cfg_ns");
  static ks::Histogram& abi_ns = ks::Metrics().GetHistogram("kanalyze.abi_ns");
  static ks::Histogram& quiescence_ns =
      ks::Metrics().GetHistogram("kanalyze.quiescence_ns");
  static ks::Histogram& semdiff_ns =
      ks::Metrics().GetHistogram("kanalyze.semdiff_ns");
  static ks::Histogram& howto_ns =
      ks::Metrics().GetHistogram("kanalyze.howto_ns");

  LintReport report;
  report.id = package.id;

  CallGraph graph;
  {
    ks::TraceSpan pass_span("kanalyze.callgraph");
    uint64_t begin = NowNs();
    graph = BuildCallGraph(package);
    RunCallGraphPass(package, graph, options, &report);
    callgraph_ns.Observe(NowNs() - begin);
    pass_span.Annotate("edges", graph.edges);
  }
  PackageSummaries summaries;
  {
    ks::TraceSpan pass_span("kanalyze.summary");
    uint64_t begin = NowNs();
    SummaryOptions summary_options;
    summary_options.jobs = options.jobs;
    summary_options.cache = options.cache;
    summaries = ComputeSummaries(package, graph, summary_options);
    summary_ns.Observe(NowNs() - begin);
    report.functions_summarized += summaries.functions.size();
    report.insns_decoded += summaries.insns_interpreted;
    pass_span.Annotate("functions",
                       static_cast<uint64_t>(summaries.functions.size()));
    pass_span.Annotate("cache_hits", summaries.cache_hits);
    pass_span.Annotate("cache_misses", summaries.cache_misses);
  }
  {
    ks::TraceSpan pass_span("kanalyze.cfg");
    uint64_t begin = NowNs();
    RunCfgPass(package, &report);
    cfg_ns.Observe(NowNs() - begin);
    pass_span.Annotate("blocks", report.blocks_analyzed);
  }
  {
    ks::TraceSpan pass_span("kanalyze.abi");
    uint64_t begin = NowNs();
    RunAbiPass(package, &report);
    abi_ns.Observe(NowNs() - begin);
    pass_span.Annotate("sections", report.data_sections_compared);
  }
  {
    ks::TraceSpan pass_span("kanalyze.quiescence");
    uint64_t begin = NowNs();
    RunQuiescencePass(package, graph, summaries, &report);
    quiescence_ns.Observe(NowNs() - begin);
  }
  {
    ks::TraceSpan pass_span("kanalyze.semdiff");
    uint64_t begin = NowNs();
    RunSemanticDiffPass(package, graph, summaries, &report);
    semdiff_ns.Observe(NowNs() - begin);
  }
  {
    ks::TraceSpan pass_span("kanalyze.howto");
    uint64_t begin = NowNs();
    RunHowtoPass(package, &report);
    howto_ns.Observe(NowNs() - begin);
  }

  std::stable_sort(
      report.findings.begin(), report.findings.end(),
      [](const LintFinding& a, const LintFinding& b) {
        int ra = SeverityRank(a.severity);
        int rb = SeverityRank(b.severity);
        return std::tie(ra, a.rule, a.unit, a.symbol, a.offset) <
               std::tie(rb, b.rule, b.unit, b.symbol, b.offset);
      });

  packages_linted.Add(1);
  functions_scanned.Add(report.functions_scanned);
  for (const LintFinding& finding : report.findings) {
    switch (finding.severity) {
      case LintSeverity::kError:
        findings_error.Add(1);
        break;
      case LintSeverity::kWarning:
        findings_warning.Add(1);
        break;
      case LintSeverity::kNote:
        findings_note.Add(1);
        break;
    }
  }
  span.Annotate("id", package.id);
  span.Annotate("findings", static_cast<uint64_t>(report.findings.size()));
  span.Annotate("errors", static_cast<uint64_t>(report.errors()));
  return report;
}

}  // namespace kanalyze
