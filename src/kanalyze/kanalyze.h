// kanalyze: static patch-safety analysis over Ksplice update packages.
//
// The paper leaves the hardest safety questions to people and to the
// apply-time machinery: §3.4 asks a programmer to inspect any patch that
// changes data-structure semantics, and §4.2's stack check only discovers
// an unsafe function after stop_machine has already paused the kernel.
// kanalyze moves both forward to create time: a package is vetted
// statically — call graph, per-function CFG/bytecode verification,
// pre-vs-post ABI/layout diff, and quiescence-risk prediction — and the
// findings become typed lint diagnostics (ksplice::LintReport) that
// `ksplice_tool lint` prints, the .report.json sidecar carries, and
// CreateUpdate's --lint gate enforces.
//
// Pass families and rules (full catalog in DESIGN.md):
//   callgraph  KSA101 dangling scoped import        error
//              KSA102 recursive patched function    warning
//              KSA103 high fan-in patched function  note
//              KSA104 target missing from package   error
//   cfg        KSA201 undecodable instruction       error
//              KSA202 wild jump                     error
//              KSA203 falls off function end        error
//              KSA204 unreachable code              warning
//              KSA205 stack imbalance at ret        warning
//   abi        KSA301 data layout change, no hooks  error
//              KSA302 data content change, no hooks error
//              KSA303 data change gated by hooks    note
//   quiescence KSA401 patched function blocks       warning
//              KSA402 reaches a blocking primitive  note
//   semdiff    KSA501 write-set grew into
//                     persistent data               warning
//              KSA502 store width changed at a
//                     shared field                  error (note w/ hooks)
//              KSA503 lock imbalance introduced     error
//              KSA504 new call path writes
//                     hook-gated data               note
//   howto      KSA601 dangling fixup target         error
//              KSA602 fixup into patched-out code   error
//              KSA603 bug-table trap address does
//                     not decode to a bug trap      error
//              KSA604 build timestamp differs
//                     pre vs post                   note
//
// The quiescence and semdiff passes consume per-function side-effect
// summaries (summary.h) computed between the callgraph and cfg phases.
//
// Layering: ks_ksplice links ks_kanalyze (CreateUpdate calls
// AnalyzePackage), so this library must consume ksplice/package.h and
// ksplice/report.h as headers only — no calls into ks_ksplice-compiled
// code. ks_kanalyze links ks_kcc for the summary blob cache
// (kcc::ObjectCache), which is acyclic: ks_kcc depends only on
// ks_base/ks_kelf/ks_kvx/ks_kdiff.

#ifndef KSPLICE_KANALYZE_KANALYZE_H_
#define KSPLICE_KANALYZE_KANALYZE_H_

#include "base/status.h"
#include "kanalyze/callgraph.h"
#include "kanalyze/summary.h"
#include "ksplice/package.h"
#include "ksplice/report.h"

namespace kcc {
class ObjectCache;
}

namespace kanalyze {

struct AnalyzeOptions {
  // KSA103 fires when a patched function has at least this many distinct
  // static callers in the pre kernel (a busy function is likelier to be
  // on some thread's stack when stop_machine rendezvous).
  uint32_t fanin_note_threshold = 8;
  // Fan-out width for the summary phase (ks::ParallelFor). Findings are
  // byte-identical at any width.
  int jobs = 1;
  // Optional content-addressed cache for direct summaries; a lint, a
  // create --lint and a rollout gate sharing one cache summarize each
  // distinct function body once.
  kcc::ObjectCache* cache = nullptr;
};

// Runs all four pass families over `package` and returns the findings,
// deterministically ordered (severity first, then rule/unit/symbol/
// offset). Returns a Status only for conditions that prevent analysis
// altogether; structural problems in the package become findings.
//
// Publishes kanalyze.* counters and per-pass histograms to the global
// metrics registry and opens kanalyze.* trace spans (base/trace.h).
ks::Result<ksplice::LintReport> AnalyzePackage(
    const ksplice::UpdatePackage& package,
    const AnalyzeOptions& options = AnalyzeOptions());

// Individual passes, exposed for targeted tests. Each appends findings
// to `report` and bumps the report's work counters.
void RunCallGraphPass(const ksplice::UpdatePackage& package,
                      const CallGraph& graph, const AnalyzeOptions& options,
                      ksplice::LintReport* report);
void RunCfgPass(const ksplice::UpdatePackage& package,
                ksplice::LintReport* report);
void RunAbiPass(const ksplice::UpdatePackage& package,
                ksplice::LintReport* report);
void RunQuiescencePass(const ksplice::UpdatePackage& package,
                       const CallGraph& graph,
                       const PackageSummaries& summaries,
                       ksplice::LintReport* report);
void RunSemanticDiffPass(const ksplice::UpdatePackage& package,
                         const CallGraph& graph,
                         const PackageSummaries& summaries,
                         ksplice::LintReport* report);
// Special-section howto checks (KSA6xx): every exception-table and
// bug-table entry of a primary object must name an instruction boundary
// of code the package ships, and bug traps must still decode as traps.
void RunHowtoPass(const ksplice::UpdatePackage& package,
                  ksplice::LintReport* report);

// True if any primary object carries a .ksplice.* hook note section (the
// package-level declaration that apply-time custom code handles state).
// Defined in abi.cc; the abi and semdiff passes both key off it.
bool PackageHasHooks(const ksplice::UpdatePackage& package);

}  // namespace kanalyze

#endif  // KSPLICE_KANALYZE_KANALYZE_H_
