// kanalyze: static patch-safety analysis over Ksplice update packages.
//
// The paper leaves the hardest safety questions to people and to the
// apply-time machinery: §3.4 asks a programmer to inspect any patch that
// changes data-structure semantics, and §4.2's stack check only discovers
// an unsafe function after stop_machine has already paused the kernel.
// kanalyze moves both forward to create time: a package is vetted
// statically — call graph, per-function CFG/bytecode verification,
// pre-vs-post ABI/layout diff, and quiescence-risk prediction — and the
// findings become typed lint diagnostics (ksplice::LintReport) that
// `ksplice_tool lint` prints, the .report.json sidecar carries, and
// CreateUpdate's --lint gate enforces.
//
// Pass families and rules (full catalog in DESIGN.md):
//   callgraph  KSA101 dangling scoped import        error
//              KSA102 recursive patched function    warning
//              KSA103 high fan-in patched function  note
//              KSA104 target missing from package   error
//   cfg        KSA201 undecodable instruction       error
//              KSA202 wild jump                     error
//              KSA203 falls off function end        error
//              KSA204 unreachable code              warning
//              KSA205 stack imbalance at ret        warning
//   abi        KSA301 data layout change, no hooks  error
//              KSA302 data content change, no hooks error
//              KSA303 data change gated by hooks    note
//   quiescence KSA401 patched function blocks       warning
//              KSA402 reaches a blocking primitive  note
//
// Layering: ks_ksplice links ks_kanalyze (CreateUpdate calls
// AnalyzePackage), so this library must consume ksplice/package.h and
// ksplice/report.h as headers only — no calls into ks_ksplice-compiled
// code.

#ifndef KSPLICE_KANALYZE_KANALYZE_H_
#define KSPLICE_KANALYZE_KANALYZE_H_

#include "base/status.h"
#include "kanalyze/callgraph.h"
#include "ksplice/package.h"
#include "ksplice/report.h"

namespace kanalyze {

struct AnalyzeOptions {
  // KSA103 fires when a patched function has at least this many distinct
  // static callers in the pre kernel (a busy function is likelier to be
  // on some thread's stack when stop_machine rendezvous).
  uint32_t fanin_note_threshold = 8;
};

// Runs all four pass families over `package` and returns the findings,
// deterministically ordered (severity first, then rule/unit/symbol/
// offset). Returns a Status only for conditions that prevent analysis
// altogether; structural problems in the package become findings.
//
// Publishes kanalyze.* counters and per-pass histograms to the global
// metrics registry and opens kanalyze.* trace spans (base/trace.h).
ks::Result<ksplice::LintReport> AnalyzePackage(
    const ksplice::UpdatePackage& package,
    const AnalyzeOptions& options = AnalyzeOptions());

// Individual passes, exposed for targeted tests. Each appends findings
// to `report` and bumps the report's work counters.
void RunCallGraphPass(const ksplice::UpdatePackage& package,
                      const CallGraph& graph, const AnalyzeOptions& options,
                      ksplice::LintReport* report);
void RunCfgPass(const ksplice::UpdatePackage& package,
                ksplice::LintReport* report);
void RunAbiPass(const ksplice::UpdatePackage& package,
                ksplice::LintReport* report);
void RunQuiescencePass(const ksplice::UpdatePackage& package,
                       const CallGraph& graph,
                       ksplice::LintReport* report);

}  // namespace kanalyze

#endif  // KSPLICE_KANALYZE_KANALYZE_H_
