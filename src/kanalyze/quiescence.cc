// Quiescence-risk pass (kanalyze pass 4): predicts §4.2 stack-check
// failures before stop_machine ever runs. The apply-time safety check
// aborts when any thread's pc or return addresses fall inside a function
// being replaced; a function that sleeps — or that can reach sleep() or
// lock_kernel() through its callees — is exactly the function likeliest
// to be pinned on a blocked thread's stack, making the check fail on
// every retry.
//
// Blocking facts come from the side-effect summaries (summary.h): the pre
// function's direct `blocks` bit feeds KSA401, and its transitive
// `reachable_blocking` set — one entry per distinct primitive, however
// many call paths reach it — feeds KSA402. Deduplicating by (rule,
// function, primitive) is therefore structural: two call paths to the
// same sleep() are one risk, not two findings.

#include <set>
#include <string>
#include <tuple>

#include "base/strings.h"
#include "kanalyze/kanalyze.h"
#include "kanalyze/summary.h"

namespace kanalyze {

namespace {

using ksplice::LintFinding;
using ksplice::LintReport;
using ksplice::LintSeverity;

LintFinding MakeFinding(const char* rule, LintSeverity severity,
                        const ksplice::Target& target, std::string message,
                        std::string hint) {
  LintFinding finding;
  finding.rule = rule;
  finding.severity = severity;
  finding.pass = "quiescence";
  finding.unit = target.unit;
  finding.symbol = target.symbol;
  finding.message = std::move(message);
  finding.hint = std::move(hint);
  return finding;
}

}  // namespace

void RunQuiescencePass(const ksplice::UpdatePackage& package,
                       const CallGraph& graph,
                       const PackageSummaries& summaries,
                       LintReport* report) {
  // (rule, function, primitive) already reported — a target listed twice,
  // or two call paths to one primitive, must not double-report.
  std::set<std::tuple<std::string, std::string, std::string>> emitted;
  for (const ksplice::Target& target : package.targets) {
    // The pre function: what threads are executing at apply time.
    int node = graph.FindHelperNode(target.unit, target.symbol);
    if (node < 0) {
      continue;  // callgraph pass reports the inconsistency (KSA104)
    }
    const FunctionSummary& fn = summaries.functions[static_cast<size_t>(node)];
    if (fn.blocks) {
      std::string prims;
      for (const std::string& prim : fn.blocking_primitives) {
        if (!prims.empty()) {
          prims += ", ";
        }
        prims += prim;
      }
      if (emitted.insert({"KSA401", target.unit + "::" + target.symbol, prims})
              .second) {
        report->findings.push_back(MakeFinding(
            "KSA401", LintSeverity::kWarning, target,
            ks::StrPrintf("patched function blocks (%s): threads may be "
                          "parked inside it, defeating the §4.2 stack check",
                          prims.c_str()),
            "expect quiescence retries; consider splitting the blocking "
            "region out of the patched function or raising max_attempts"));
      }
    } else {
      for (const std::string& prim : fn.reachable_blocking) {
        if (!emitted
                 .insert({"KSA402", target.unit + "::" + target.symbol, prim})
                 .second) {
          continue;
        }
        report->findings.push_back(MakeFinding(
            "KSA402", LintSeverity::kNote, target,
            ks::StrPrintf("patched function can reach blocking primitive "
                          "'%s' through its callees; a thread may hold it "
                          "on the stack while sleeping",
                          prim.c_str()),
            "apply during low activity or raise "
            "RendezvousOptions::max_attempts"));
      }
    }
  }
}

}  // namespace kanalyze
