// Quiescence-risk pass (kanalyze pass 4): predicts §4.2 stack-check
// failures before stop_machine ever runs. The apply-time safety check
// aborts when any thread's pc or return addresses fall inside a function
// being replaced; a function that sleeps — or that can reach sleep() or
// lock_kernel() through its callees — is exactly the function likeliest
// to be pinned on a blocked thread's stack, making the check fail on
// every retry. The pass walks the pre-kernel call graph (the running
// kernel's behavior is what matters: threads park in old code) from each
// replacement target and flags direct blockers (KSA401) and transitive
// reachers (KSA402).

#include <string>

#include "base/strings.h"
#include "kanalyze/kanalyze.h"

namespace kanalyze {

namespace {

using ksplice::LintFinding;
using ksplice::LintReport;
using ksplice::LintSeverity;

LintFinding MakeFinding(const char* rule, LintSeverity severity,
                        const ksplice::Target& target, std::string message,
                        std::string hint) {
  LintFinding finding;
  finding.rule = rule;
  finding.severity = severity;
  finding.pass = "quiescence";
  finding.unit = target.unit;
  finding.symbol = target.symbol;
  finding.message = std::move(message);
  finding.hint = std::move(hint);
  return finding;
}

}  // namespace

void RunQuiescencePass(const ksplice::UpdatePackage& package,
                       const CallGraph& graph, LintReport* report) {
  for (const ksplice::Target& target : package.targets) {
    // The pre function: what threads are executing at apply time.
    int node = graph.FindHelperNode(target.unit, target.symbol);
    if (node < 0) {
      continue;  // callgraph pass reports the inconsistency (KSA104)
    }
    const CallNode& fn = graph.nodes[static_cast<size_t>(node)];
    if (fn.blocking) {
      report->findings.push_back(MakeFinding(
          "KSA401", LintSeverity::kWarning, target,
          "patched function blocks (sleep/lock_kernel): threads may be "
          "parked inside it, defeating the §4.2 stack check",
          "expect quiescence retries; consider splitting the blocking "
          "region out of the patched function or raising max_attempts"));
    } else if (fn.reaches_blocking) {
      report->findings.push_back(MakeFinding(
          "KSA402", LintSeverity::kNote, target,
          "patched function can reach a blocking primitive through its "
          "callees; a thread may hold it on the stack while sleeping",
          "apply during low activity or raise "
          "RendezvousOptions::max_attempts"));
    }
  }
}

}  // namespace kanalyze
