// Semantic-diff pass (kanalyze pass 5): compares the pre and post
// side-effect summaries of every patched function and flags behavioral
// changes that layout diffing (the abi pass) cannot see. The paper's §3.4
// punts exactly these to a human: a patch whose code now writes data it
// never touched, writes the same field with a different width, or returns
// holding the big kernel lock is semantically suspect even when every
// data section compares byte-identical.
//
// Rules (catalog in DESIGN.md §7):
//   KSA501 write-set grew into persistent data          warning
//   KSA502 store width changed at a shared field        error (note w/ hooks)
//   KSA503 lock acquire/release imbalance introduced    error
//   KSA504 new call path writes hook-gated data         note

#include <map>
#include <set>
#include <string>

#include "base/strings.h"
#include "kanalyze/kanalyze.h"
#include "kanalyze/summary.h"

namespace kanalyze {

namespace {

using ksplice::LintFinding;
using ksplice::LintReport;
using ksplice::LintSeverity;

LintFinding MakeFinding(const char* rule, LintSeverity severity,
                        const ksplice::Target& target, std::string message,
                        std::string hint) {
  LintFinding finding;
  finding.rule = rule;
  finding.severity = severity;
  finding.pass = "semdiff";
  finding.unit = target.unit;
  finding.symbol = target.symbol;
  finding.message = std::move(message);
  finding.hint = std::move(hint);
  return finding;
}

// Every named datum the helper (pre) objects define: state that outlives
// any one call and persists across the splice. A write-set that grows into
// this set is a semantic change to shared state.
std::set<std::string> PersistentDataSymbols(
    const ksplice::UpdatePackage& package) {
  std::set<std::string> persistent;
  for (const kelf::ObjectFile& helper : package.helper_objects) {
    for (const kelf::Symbol& sym : helper.symbols()) {
      if (sym.defined() && sym.kind == kelf::SymbolKind::kObject) {
        persistent.insert(NormalizeEffectSymbol(sym.name));
      }
    }
  }
  return persistent;
}

// Data whose pre and post images differ — exactly the state the package's
// .ksplice.* hooks exist to transform at apply time (§5.3). A *new* code
// path reaching it sidesteps whatever invariant the hook establishes.
std::set<std::string> HookGatedDataSymbols(
    const ksplice::UpdatePackage& package) {
  std::set<std::string> gated;
  for (const kelf::ObjectFile& primary : package.primary_objects) {
    const kelf::ObjectFile* helper = nullptr;
    for (const kelf::ObjectFile& h : package.helper_objects) {
      if (h.source_name() == primary.source_name()) {
        helper = &h;
        break;
      }
    }
    if (helper == nullptr) {
      continue;
    }
    for (size_t si = 0; si < primary.sections().size(); ++si) {
      const kelf::Section& post = primary.sections()[si];
      if (post.kind != kelf::SectionKind::kData &&
          post.kind != kelf::SectionKind::kBss) {
        continue;
      }
      const kelf::Section* pre = helper->SectionByName(post.name);
      if (pre == nullptr) {
        continue;
      }
      bool differs = pre->size() != post.size() || pre->align != post.align ||
                     pre->bytes != post.bytes;
      if (!differs) {
        continue;
      }
      std::string name = post.name;
      std::optional<int> def =
          primary.DefiningSymbolForSection(static_cast<int>(si));
      if (def.has_value()) {
        name = primary.symbols()[static_cast<size_t>(*def)].name;
      }
      gated.insert(NormalizeEffectSymbol(name));
    }
  }
  return gated;
}

std::set<std::string> WriteRegions(const std::vector<MemEffect>& writes) {
  std::set<std::string> regions;
  for (const MemEffect& e : writes) {
    regions.insert(e.symbol);
  }
  return regions;
}

}  // namespace

void RunSemanticDiffPass(const ksplice::UpdatePackage& package,
                         const CallGraph& graph,
                         const PackageSummaries& summaries,
                         LintReport* report) {
  const bool hooks = PackageHasHooks(package);
  const std::set<std::string> persistent = PersistentDataSymbols(package);
  const std::set<std::string> gated =
      hooks ? HookGatedDataSymbols(package) : std::set<std::string>();

  // One finding per (rule, function, subject): two call paths to the same
  // grown write land on one diagnostic.
  std::set<std::string> emitted;
  auto emit_once = [&emitted](const char* rule, const ksplice::Target& target,
                              const std::string& subject) {
    return emitted
        .insert(ks::StrPrintf("%s\x1f%s\x1f%s\x1f%s", rule,
                              target.unit.c_str(), target.symbol.c_str(),
                              subject.c_str()))
        .second;
  };

  for (const ksplice::Target& target : package.targets) {
    int pre_node = graph.FindHelperNode(target.unit, target.symbol);
    int post_node = graph.FindPrimaryNode(target.unit, target.symbol);
    if (pre_node < 0 || post_node < 0) {
      continue;  // callgraph pass reports the inconsistency (KSA104)
    }
    const FunctionSummary& pre =
        summaries.functions[static_cast<size_t>(pre_node)];
    const FunctionSummary& post =
        summaries.functions[static_cast<size_t>(post_node)];

    // KSA501: the post write-set (direct + via calls) grew into persistent
    // data the pre function never wrote.
    std::set<std::string> pre_regions = WriteRegions(pre.transitive_writes);
    for (const std::string& region :
         WriteRegions(post.transitive_writes)) {
      if (pre_regions.count(region) != 0 || persistent.count(region) == 0) {
        continue;
      }
      if (emit_once("KSA501", target, region)) {
        report->findings.push_back(MakeFinding(
            "KSA501", LintSeverity::kWarning, target,
            ks::StrPrintf("write-set grew: patched code writes persistent "
                          "data '%s' that the pre function never wrote",
                          region.c_str()),
            "a new write to shared state is a semantic change (§3.4); "
            "confirm every reader tolerates the new protocol"));
      }
    }

    // KSA502: the same (symbol, offset) field is stored with a different
    // width — a layout-compatible but semantics-changing access (e.g. a
    // field narrowed from word to byte). Data sections compare equal, so
    // the abi pass is blind to it.
    std::map<std::pair<std::string, int32_t>, std::set<uint8_t>> pre_widths;
    for (const MemEffect& e : pre.writes) {
      if (e.offset_known) {
        pre_widths[{e.symbol, e.offset}].insert(e.width);
      }
    }
    for (const MemEffect& e : post.writes) {
      if (!e.offset_known) {
        continue;
      }
      auto it = pre_widths.find({e.symbol, e.offset});
      if (it == pre_widths.end() || it->second.count(e.width) != 0) {
        continue;  // new field (KSA501's job) or same-width store
      }
      if (emit_once("KSA502", target, e.ToString())) {
        LintFinding finding = MakeFinding(
            "KSA502", hooks ? LintSeverity::kNote : LintSeverity::kError,
            target,
            ks::StrPrintf("store width changed at shared field %s+%d: pre "
                          "wrote %u byte(s), post writes %u",
                          e.symbol.c_str(), e.offset,
                          static_cast<unsigned>(*it->second.begin()),
                          static_cast<unsigned>(e.width)),
            hooks ? "hooks declared: verify the apply-time transformer "
                    "covers this field's representation"
                  : "a width change reinterprets the field for every "
                    "other reader; gate it with .ksplice hooks (§5.3)");
        finding.offset = static_cast<uint32_t>(e.offset);
        finding.has_offset = true;
        report->findings.push_back(std::move(finding));
      }
    }

    // KSA503: the pre function provably restored the lock depth on every
    // return and the post function provably does not.
    if (pre.ProvablyLockBalanced() && post.lock_imbalance &&
        emit_once("KSA503", target, "lock")) {
      report->findings.push_back(MakeFinding(
          "KSA503", LintSeverity::kError, target,
          ks::StrPrintf("lock imbalance introduced: post function returns "
                        "with lock depth %+d (pre was balanced; %u "
                        "acquire(s), %u release(s) in post)",
                        post.lock_imbalance_depth, post.lock_acquires,
                        post.lock_releases),
          "a caller of the patched function would inherit or lose the "
          "big kernel lock; pair every lock_kernel with unlock_kernel"));
    }

    // KSA504: hooks gate a data transformation, and the patch adds a call
    // path that writes that very data — code the hook's invariant never
    // accounted for.
    if (hooks && !gated.empty()) {
      std::set<std::string> post_regions =
          WriteRegions(post.transitive_writes);
      for (const std::string& region : gated) {
        if (post_regions.count(region) == 0 ||
            pre_regions.count(region) != 0) {
          continue;
        }
        if (emit_once("KSA504", target, region)) {
          report->findings.push_back(MakeFinding(
              "KSA504", LintSeverity::kNote, target,
              ks::StrPrintf("new call path writes hook-gated data '%s' "
                            "(its pre/post images differ and the pre "
                            "function never reached it)",
                            region.c_str()),
              "review the apply-time hooks: a write from new code may "
              "race or undo the hook's transformation"));
        }
      }
    }
  }
}

}  // namespace kanalyze
