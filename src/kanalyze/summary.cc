#include "kanalyze/summary.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "base/metrics.h"
#include "base/strings.h"
#include "base/threadpool.h"
#include "kanalyze/cfg.h"
#include "kcc/objcache.h"
#include "kvx/isa.h"

namespace kanalyze {

namespace {

uint64_t Fnv64(const uint8_t* data, size_t len,
               uint64_t hash = 14695981039346656037u) {
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 1099511628211u;
  }
  return hash;
}

// ---- Abstract register lattice ---------------------------------------
//
// What the interpreter knows about one register at one program point:
//   kUnknown  could hold anything
//   kConst    a known immediate (absolute addresses: not attributable)
//   kSym      address of `sym` plus `offset` (offset may be degraded)
//   kFrame    derived from fp/sp — a local; accesses are invisible
struct AbsVal {
  enum Kind : uint8_t { kUnknown, kConst, kSym, kFrame };
  Kind kind = kUnknown;
  uint32_t constant = 0;
  std::string sym;  // normalized, kSym only
  int32_t offset = 0;
  bool offset_known = true;
};

void AddImmediate(AbsVal& v, int64_t delta) {
  switch (v.kind) {
    case AbsVal::kConst:
      v.constant = static_cast<uint32_t>(v.constant + delta);
      break;
    case AbsVal::kSym:
      if (v.offset_known) {
        v.offset = static_cast<int32_t>(v.offset + delta);
      }
      break;
    case AbsVal::kFrame:
    case AbsVal::kUnknown:
      break;  // fp/sp arithmetic stays frame-derived; unknown stays unknown
  }
}

// add/sub of two register values. `sign` is +1 for add, -1 for sub.
AbsVal CombineAddSub(const AbsVal& a, const AbsVal& b, int sign) {
  if (a.kind == AbsVal::kFrame || b.kind == AbsVal::kFrame) {
    AbsVal frame;
    frame.kind = AbsVal::kFrame;
    return frame;
  }
  if (a.kind == AbsVal::kConst && b.kind == AbsVal::kConst) {
    AbsVal c;
    c.kind = AbsVal::kConst;
    c.constant = sign > 0 ? a.constant + b.constant : a.constant - b.constant;
    return c;
  }
  // symbol +/- constant keeps a provable offset; any other mix involving a
  // symbol keeps the region but degrades the offset (indexed access).
  if (a.kind == AbsVal::kSym) {
    AbsVal s = a;
    if (b.kind == AbsVal::kConst && s.offset_known) {
      s.offset = static_cast<int32_t>(
          s.offset + sign * static_cast<int64_t>(b.constant));
    } else {
      s.offset_known = false;
    }
    return s;
  }
  if (b.kind == AbsVal::kSym && sign > 0) {  // const/unknown + symbol
    AbsVal s = b;
    if (a.kind == AbsVal::kConst && s.offset_known) {
      s.offset = static_cast<int32_t>(s.offset +
                                      static_cast<int64_t>(a.constant));
    } else {
      s.offset_known = false;
    }
    return s;
  }
  return AbsVal{};  // unknown
}

// Other two-operand ALU results: a frame-derived operand keeps the result
// frame-derived (stack-alignment masks, index math on fp copies), anything
// else is unknown. Under-approximating exotic pointer crafting here can
// only suppress a finding, never invent one.
AbsVal CombineOpaque(const AbsVal& a, const AbsVal& b) {
  if (a.kind == AbsVal::kFrame || b.kind == AbsVal::kFrame) {
    AbsVal frame;
    frame.kind = AbsVal::kFrame;
    return frame;
  }
  return AbsVal{};
}

void RecordAccess(const AbsVal& addr, int width, bool is_store,
                  FunctionSummary& s) {
  switch (addr.kind) {
    case AbsVal::kFrame:
      return;  // a local: invisible to patch safety
    case AbsVal::kSym: {
      MemEffect effect;
      effect.symbol = addr.sym;
      effect.width = static_cast<uint8_t>(width);
      // Negative offsets address some *other* datum placed before the
      // symbol; keep the region but not a misattributed offset.
      if (addr.offset_known && addr.offset >= 0) {
        effect.offset = addr.offset;
        effect.offset_known = true;
      } else {
        effect.offset_known = false;
      }
      (is_store ? s.writes : s.reads).push_back(std::move(effect));
      return;
    }
    case AbsVal::kConst:   // absolute address poke
    case AbsVal::kUnknown:
      (is_store ? s.writes_unresolved : s.reads_unresolved) = true;
      return;
  }
}

const char* BlockingPrimitiveName(kvx::Sys sys) {
  switch (sys) {
    case kvx::Sys::kSleep:
      return "sleep";
    case kvx::Sys::kLockKernel:
      return "lock_kernel";
    default:
      return nullptr;
  }
}

// Relocation (if any) patching the imm32/rel32 field of the instruction at
// `insn_offset`, resolved to its symbol's name. Empty optional otherwise.
std::optional<std::string> RelocSymbolInField(const kelf::ObjectFile& object,
                                              const kelf::Section& section,
                                              const CfgInsn& ci,
                                              int32_t* addend) {
  if (!ci.reloc_in_field) {
    return std::nullopt;
  }
  int field = kvx::Imm32FieldOffset(ci.insn.op);
  if (field < 0) {
    return std::nullopt;
  }
  uint32_t at = ci.offset + static_cast<uint32_t>(field);
  for (const kelf::Relocation& reloc : section.relocs) {
    if (reloc.offset != at) {
      continue;
    }
    if (reloc.symbol < 0 ||
        reloc.symbol >= static_cast<int>(object.symbols().size())) {
      return std::nullopt;
    }
    if (addend != nullptr) {
      *addend = reloc.addend;
    }
    return object.symbols()[reloc.symbol].name;
  }
  return std::nullopt;
}

// ---- Lock-depth fixpoint ---------------------------------------------
//
// Path-sensitive walk of the big-kernel-lock depth, with the same join
// discipline as the KSA205 stack model: agreeing facts survive a join,
// disagreements degrade to unknown, so the verdict only ever claims what
// every path proves.
struct LockState {
  bool known = true;
  int32_t depth = 0;
};

LockState JoinLock(const LockState& a, const LockState& b) {
  if (!a.known || !b.known || a.depth != b.depth) {
    return {false, 0};
  }
  return a;
}

bool SameLock(const LockState& a, const LockState& b) {
  return a.known == b.known && (!a.known || a.depth == b.depth);
}

void RunLockFixpoint(const Cfg& cfg, FunctionSummary& s) {
  if (cfg.blocks.empty()) {
    return;
  }
  std::vector<std::optional<LockState>> entry(cfg.blocks.size());
  entry[0] = LockState{};
  std::deque<uint32_t> worklist{0};
  // The lattice per block has height 2 (known depth -> unknown), so the
  // fixpoint terminates even with lock sites inside loops.
  while (!worklist.empty()) {
    uint32_t bi = worklist.front();
    worklist.pop_front();
    const BasicBlock& block = cfg.blocks[bi];
    LockState state = *entry[bi];
    for (uint32_t k = 0; k < block.num_insns; ++k) {
      const kvx::Insn& insn = cfg.insns[block.first_insn + k].insn;
      if (insn.op != kvx::Op::kSys || !state.known) {
        continue;
      }
      if (static_cast<kvx::Sys>(insn.imm) == kvx::Sys::kLockKernel) {
        ++state.depth;
      } else if (static_cast<kvx::Sys>(insn.imm) == kvx::Sys::kUnlockKernel) {
        --state.depth;
      }
    }
    for (uint32_t succ : block.succ) {
      LockState next =
          entry[succ].has_value() ? JoinLock(*entry[succ], state) : state;
      if (!entry[succ].has_value() || !SameLock(*entry[succ], next)) {
        entry[succ] = next;
        worklist.push_back(succ);
      }
    }
  }
  // Evaluate every reachable RET against the converged entry states.
  for (uint32_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    if (!entry[bi].has_value()) {
      continue;
    }
    const BasicBlock& block = cfg.blocks[bi];
    LockState state = *entry[bi];
    for (uint32_t k = 0; k < block.num_insns; ++k) {
      const kvx::Insn& insn = cfg.insns[block.first_insn + k].insn;
      if (insn.op == kvx::Op::kSys && state.known) {
        if (static_cast<kvx::Sys>(insn.imm) == kvx::Sys::kLockKernel) {
          ++state.depth;
        } else if (static_cast<kvx::Sys>(insn.imm) ==
                   kvx::Sys::kUnlockKernel) {
          --state.depth;
        }
      }
      if (insn.op == kvx::Op::kRet) {
        if (!state.known) {
          s.lock_exits_known = false;
        } else if (state.depth != 0 && !s.lock_imbalance) {
          s.lock_imbalance = true;
          s.lock_imbalance_depth = state.depth;
        }
      }
    }
  }
}

template <typename T>
void SortUnique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// ---- Serialization ----------------------------------------------------

void AppendName(std::string& out, const std::string& name) {
  out += ks::StrPrintf("%zu:", name.size());
  out += name;
}

bool ParseUnsigned(std::string_view& s, uint64_t* out) {
  while (!s.empty() && s.front() == ' ') {
    s.remove_prefix(1);
  }
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  if (s.empty() || s.front() < '0' || s.front() > '9') {
    return false;
  }
  uint64_t value = 0;
  while (!s.empty() && s.front() >= '0' && s.front() <= '9') {
    value = value * 10 + static_cast<uint64_t>(s.front() - '0');
    s.remove_prefix(1);
  }
  *out = negative ? static_cast<uint64_t>(-static_cast<int64_t>(value))
                  : value;
  return true;
}

bool ParseName(std::string_view& s, std::string* out) {
  uint64_t len = 0;
  if (!ParseUnsigned(s, &len) || s.empty() || s.front() != ':' ||
      s.size() < 1 + len) {
    return false;
  }
  s.remove_prefix(1);
  *out = std::string(s.substr(0, len));
  s.remove_prefix(len);
  return true;
}

}  // namespace

std::string MemEffect::ToString() const {
  if (offset_known) {
    return ks::StrPrintf("%s+%d/w%u", symbol.c_str(), offset,
                         static_cast<unsigned>(width));
  }
  return ks::StrPrintf("%s+?/w%u", symbol.c_str(),
                       static_cast<unsigned>(width));
}

std::string NormalizeEffectSymbol(const std::string& name) {
  size_t scope = name.find("::");
  if (scope == std::string::npos) {
    return name;
  }
  return name.substr(scope + 2);
}

FunctionSummary SummarizeSection(const kelf::ObjectFile& object,
                                 const kelf::Section& section) {
  FunctionSummary s;
  Cfg cfg = BuildCfg(section);

  // Effects pass: each reachable block interpreted with fresh register
  // facts (fp/sp frame-derived, everything else unknown), so the result
  // is independent of block visit order.
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable) {
      continue;
    }
    std::vector<AbsVal> regs(kvx::kNumRegs);
    AbsVal frame;
    frame.kind = AbsVal::kFrame;
    regs[kvx::kRegFp] = frame;
    regs[kvx::kRegSp] = frame;
    for (uint32_t k = 0; k < block.num_insns; ++k) {
      const CfgInsn& ci = cfg.insns[block.first_insn + k];
      const kvx::Insn& insn = ci.insn;
      ++s.insns;
      switch (insn.op) {
        case kvx::Op::kMovRI: {
          int32_t addend = 0;
          std::optional<std::string> sym =
              RelocSymbolInField(object, section, ci, &addend);
          AbsVal v;
          if (sym.has_value()) {
            v.kind = AbsVal::kSym;
            v.sym = NormalizeEffectSymbol(*sym);
            v.offset = addend;
          } else {
            v.kind = AbsVal::kConst;
            v.constant = insn.imm;
          }
          regs[insn.reg1] = std::move(v);
          break;
        }
        case kvx::Op::kMovRR:
          regs[insn.reg1] = regs[insn.reg2];
          break;
        case kvx::Op::kAddRI:
          AddImmediate(regs[insn.reg1], static_cast<int64_t>(insn.imm));
          break;
        case kvx::Op::kSubRI:
          AddImmediate(regs[insn.reg1], -static_cast<int64_t>(insn.imm));
          break;
        case kvx::Op::kAddRR:
          regs[insn.reg1] =
              CombineAddSub(regs[insn.reg1], regs[insn.reg2], +1);
          break;
        case kvx::Op::kSubRR:
          regs[insn.reg1] =
              CombineAddSub(regs[insn.reg1], regs[insn.reg2], -1);
          break;
        case kvx::Op::kMulRR:
        case kvx::Op::kAndRR:
        case kvx::Op::kOrRR:
        case kvx::Op::kXorRR:
        case kvx::Op::kDivRR:
        case kvx::Op::kModRR:
        case kvx::Op::kShlRR:
        case kvx::Op::kShrRR:
          regs[insn.reg1] = CombineOpaque(regs[insn.reg1], regs[insn.reg2]);
          break;
        case kvx::Op::kAndRI:
          // Masking a frame pointer (stack alignment) stays frame-derived.
          if (regs[insn.reg1].kind != AbsVal::kFrame) {
            regs[insn.reg1] = AbsVal{};
          }
          break;
        case kvx::Op::kLoadI:
        case kvx::Op::kLoadBI:
        case kvx::Op::kStoreI:
        case kvx::Op::kStoreBI: {
          bool is_store = kvx::IsMemStore(insn.op);
          RecordAccess(regs[kvx::MemAddrRegister(insn)],
                       kvx::MemAccessWidth(insn.op), is_store, s);
          if (!is_store) {
            regs[kvx::MemValueRegister(insn)] = AbsVal{};
          }
          break;
        }
        case kvx::Op::kPop:
          if (insn.reg1 == kvx::kRegFp || insn.reg1 == kvx::kRegSp) {
            regs[insn.reg1] = frame;
          } else {
            regs[insn.reg1] = AbsVal{};
          }
          break;
        case kvx::Op::kCall:
        case kvx::Op::kCallR: {
          if (insn.op == kvx::Op::kCall) {
            std::optional<std::string> callee =
                RelocSymbolInField(object, section, ci, nullptr);
            if (callee.has_value()) {
              s.callees.push_back(NormalizeEffectSymbol(*callee));
            }
          }
          // Calling convention: callee may clobber r0..r5, preserves
          // fp/sp (the kcc prologue/epilogue contract).
          for (int r = 0; r < kvx::kNumRegs; ++r) {
            if (r != kvx::kRegFp && r != kvx::kRegSp) {
              regs[r] = AbsVal{};
            }
          }
          break;
        }
        case kvx::Op::kSys: {
          kvx::Sys sys = static_cast<kvx::Sys>(insn.imm);
          if (const char* prim = BlockingPrimitiveName(sys)) {
            s.blocks = true;
            s.blocking_primitives.insert(prim);
          }
          if (sys == kvx::Sys::kLockKernel) {
            ++s.lock_acquires;
          } else if (sys == kvx::Sys::kUnlockKernel) {
            ++s.lock_releases;
          }
          regs[0] = AbsVal{};  // result register
          break;
        }
        default:
          break;  // branches, cmp, push, nops, ret, halt: no register facts
      }
    }
  }

  RunLockFixpoint(cfg, s);

  SortUnique(s.writes);
  SortUnique(s.reads);
  SortUnique(s.callees);
  return s;
}

// ---- Serialization ----------------------------------------------------

std::vector<uint8_t> FunctionSummary::Serialize() const {
  std::string out = "ksum 1\n";
  out += ks::StrPrintf(
      "f %d %d %u %u %d %d %d %d %llu\n", writes_unresolved ? 1 : 0,
      reads_unresolved ? 1 : 0, lock_acquires, lock_releases,
      lock_exits_known ? 1 : 0, lock_imbalance ? 1 : 0, lock_imbalance_depth,
      blocks ? 1 : 0, static_cast<unsigned long long>(insns));
  auto append_effects = [&out](char tag, const std::vector<MemEffect>& v) {
    for (const MemEffect& e : v) {
      out += ks::StrPrintf("%c %d %d %u ", tag, e.offset_known ? 1 : 0,
                           e.offset, static_cast<unsigned>(e.width));
      AppendName(out, e.symbol);
      out += '\n';
    }
  };
  append_effects('w', writes);
  append_effects('r', reads);
  for (const std::string& callee : callees) {
    out += "c ";
    AppendName(out, callee);
    out += '\n';
  }
  for (const std::string& prim : blocking_primitives) {
    out += "b ";
    AppendName(out, prim);
    out += '\n';
  }
  return std::vector<uint8_t>(out.begin(), out.end());
}

ks::Result<FunctionSummary> FunctionSummary::Deserialize(
    const std::vector<uint8_t>& bytes) {
  std::string_view text(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size());
  FunctionSummary s;
  bool saw_header = false;
  bool saw_flags = false;
  while (!text.empty()) {
    size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    if (line.empty()) {
      continue;
    }
    if (!saw_header) {
      if (line != "ksum 1") {
        return ks::InvalidArgument("summary blob: bad header");
      }
      saw_header = true;
      continue;
    }
    char tag = line.front();
    line.remove_prefix(1);
    switch (tag) {
      case 'f': {
        uint64_t v[9];
        for (uint64_t& field : v) {
          if (!ParseUnsigned(line, &field)) {
            return ks::InvalidArgument("summary blob: bad flags line");
          }
        }
        s.writes_unresolved = v[0] != 0;
        s.reads_unresolved = v[1] != 0;
        s.lock_acquires = static_cast<uint32_t>(v[2]);
        s.lock_releases = static_cast<uint32_t>(v[3]);
        s.lock_exits_known = v[4] != 0;
        s.lock_imbalance = v[5] != 0;
        s.lock_imbalance_depth = static_cast<int32_t>(v[6]);
        s.blocks = v[7] != 0;
        s.insns = v[8];
        saw_flags = true;
        break;
      }
      case 'w':
      case 'r': {
        uint64_t ok = 0;
        uint64_t off = 0;
        uint64_t width = 0;
        MemEffect e;
        if (!ParseUnsigned(line, &ok) || !ParseUnsigned(line, &off) ||
            !ParseUnsigned(line, &width) || line.empty() ||
            line.front() != ' ') {
          return ks::InvalidArgument("summary blob: bad effect line");
        }
        line.remove_prefix(1);
        if (!ParseName(line, &e.symbol)) {
          return ks::InvalidArgument("summary blob: bad effect symbol");
        }
        e.offset_known = ok != 0;
        e.offset = static_cast<int32_t>(off);
        e.width = static_cast<uint8_t>(width);
        (tag == 'w' ? s.writes : s.reads).push_back(std::move(e));
        break;
      }
      case 'c':
      case 'b': {
        if (line.empty() || line.front() != ' ') {
          return ks::InvalidArgument("summary blob: bad name line");
        }
        line.remove_prefix(1);
        std::string name;
        if (!ParseName(line, &name)) {
          return ks::InvalidArgument("summary blob: bad name");
        }
        if (tag == 'c') {
          s.callees.push_back(std::move(name));
        } else {
          s.blocking_primitives.insert(std::move(name));
        }
        break;
      }
      default:
        return ks::InvalidArgument("summary blob: unknown tag");
    }
  }
  if (!saw_header || !saw_flags) {
    return ks::InvalidArgument("summary blob: truncated");
  }
  return s;
}

// ---- Package-level computation ---------------------------------------

namespace {

// The content address of a direct summary: every input that reaches
// SummarizeSection — the section bytes and the shape of its relocations
// (site, type, addend, raw symbol name). The function's own name and unit
// are deliberately excluded so identical bodies share one entry.
std::string SummaryCacheKey(const kelf::ObjectFile& object,
                            const kelf::Section& section) {
  std::string key = ks::StrPrintf(
      "ksum1|%016llx|%zu",
      static_cast<unsigned long long>(
          Fnv64(section.bytes.data(), section.bytes.size())),
      section.bytes.size());
  for (const kelf::Relocation& reloc : section.relocs) {
    const std::string& name =
        (reloc.symbol >= 0 &&
         reloc.symbol < static_cast<int>(object.symbols().size()))
            ? object.symbols()[reloc.symbol].name
            : std::string();
    key += ks::StrPrintf("|%u,%d,%d,%s", reloc.offset,
                         static_cast<int>(reloc.type), reloc.addend,
                         name.c_str());
  }
  return key;
}

const kelf::ObjectFile* NodeObject(const ksplice::UpdatePackage& package,
                                   const CallNode& node) {
  const auto& objects =
      node.in_primary ? package.primary_objects : package.helper_objects;
  if (node.object_index < 0 ||
      node.object_index >= static_cast<int>(objects.size())) {
    return nullptr;
  }
  return &objects[node.object_index];
}

}  // namespace

PackageSummaries ComputeSummaries(const ksplice::UpdatePackage& package,
                                  const CallGraph& graph,
                                  const SummaryOptions& options) {
  static ks::Counter& hit_counter =
      ks::Metrics().GetCounter("kanalyze.summary.cache_hits");
  static ks::Counter& miss_counter =
      ks::Metrics().GetCounter("kanalyze.summary.cache_misses");
  static ks::Counter& computed_counter =
      ks::Metrics().GetCounter("kanalyze.summary.computed");

  PackageSummaries result;
  size_t n = graph.nodes.size();
  result.functions.resize(n);
  std::vector<uint8_t> hit_flags(n, 0);
  std::vector<uint8_t> computed_flags(n, 0);

  // Direct summaries: one slot per node, so the result is identical for
  // any fan-out width.
  ks::ParallelFor(options.jobs, n, [&](size_t i) {
    const CallNode& node = graph.nodes[i];
    const kelf::ObjectFile* object = NodeObject(package, node);
    if (object == nullptr || node.section_index < 0 ||
        node.section_index >= static_cast<int>(object->sections().size())) {
      return;  // defensive: BuildCallGraph always fills valid indices
    }
    const kelf::Section& section = object->sections()[node.section_index];
    if (options.cache == nullptr) {
      result.functions[i] = SummarizeSection(*object, section);
      computed_flags[i] = 1;
      return;
    }
    std::optional<FunctionSummary> fresh;
    bool was_hit = false;
    ks::Result<std::vector<uint8_t>> blob = options.cache->GetOrComputeBlob(
        SummaryCacheKey(*object, section),
        [&]() -> ks::Result<std::vector<uint8_t>> {
          fresh = SummarizeSection(*object, section);
          return fresh->Serialize();
        },
        &was_hit);
    hit_flags[i] = was_hit ? 1 : 0;
    if (fresh.has_value()) {
      result.functions[i] = std::move(*fresh);
      computed_flags[i] = 1;
      return;
    }
    if (blob.ok()) {
      ks::Result<FunctionSummary> parsed = FunctionSummary::Deserialize(*blob);
      if (parsed.ok()) {
        result.functions[i] = std::move(*parsed);
        return;
      }
    }
    // Cache refused or returned an unparsable blob (fault injection,
    // version skew): summaries must never fail, so compute locally.
    result.functions[i] = SummarizeSection(*object, section);
    computed_flags[i] = 1;
  });

  for (size_t i = 0; i < n; ++i) {
    result.insns_interpreted += result.functions[i].insns;
    if (options.cache != nullptr) {
      if (hit_flags[i] != 0) {
        ++result.cache_hits;
      } else {
        ++result.cache_misses;
      }
    }
  }
  if (options.cache != nullptr) {
    hit_counter.Add(result.cache_hits);
    miss_counter.Add(result.cache_misses);
  }
  uint64_t computed = 0;
  for (uint8_t flag : computed_flags) {
    computed += flag;
  }
  computed_counter.Add(computed);

  // Transitive closure over the call graph. Packages are a handful of
  // functions, so per-node BFS is plenty.
  for (size_t i = 0; i < n; ++i) {
    FunctionSummary& s = result.functions[i];
    std::vector<uint8_t> visited(n, 0);
    std::deque<int> frontier;
    for (int callee : graph.callees[i]) {
      if (callee >= 0 && callee < static_cast<int>(n) && !visited[callee]) {
        visited[callee] = 1;
        frontier.push_back(callee);
      }
    }
    s.transitive_writes = s.writes;
    s.transitive_writes_unresolved = s.writes_unresolved;
    while (!frontier.empty()) {
      int j = frontier.front();
      frontier.pop_front();
      const FunctionSummary& callee = result.functions[j];
      s.transitive_writes.insert(s.transitive_writes.end(),
                                 callee.writes.begin(), callee.writes.end());
      s.transitive_writes_unresolved |= callee.writes_unresolved;
      s.reachable_blocking.insert(callee.blocking_primitives.begin(),
                                  callee.blocking_primitives.end());
      for (int next : graph.callees[j]) {
        if (next >= 0 && next < static_cast<int>(n) && !visited[next]) {
          visited[next] = 1;
          frontier.push_back(next);
        }
      }
    }
    SortUnique(s.transitive_writes);
  }
  return result;
}

}  // namespace kanalyze
