// Interprocedural side-effect summaries (kanalyze pass substrate).
//
// A FunctionSummary is what the semantic-diff and quiescence passes know
// about one function body: which named memory regions it reads and writes
// (symbol + byte offset + access width), whether it takes or releases the
// big kernel lock and whether every return provably restores the lock
// depth, which blocking primitives it invokes, and — filled in per package
// over the PR-3 call graph — the write set and blocking primitives it can
// reach transitively through calls.
//
// The direct fields are computed by abstract interpretation over the kvx
// bytecode of the function's text section. Each basic block is interpreted
// with a small register lattice (unknown / constant / symbol+offset /
// frame-derived), reset at block leaders, so the result is a conservative
// over-approximation that never depends on path order. Frame-derived
// addresses (fp/sp arithmetic — locals, spills) are deliberately invisible:
// only accesses that can escape the activation matter to patch safety.
//
// Direct summaries are a pure function of (section bytes, relocation
// shape), so they are content-hash-keyed and cached in the generic blob
// store of kcc::ObjectCache: a lint, a create --lint and a rollout gate in
// one process summarize each distinct function body once. Fan-out across
// functions uses ks::ParallelFor with slot-assigned results, so findings
// are byte-identical at any -j.

#ifndef KSPLICE_KANALYZE_SUMMARY_H_
#define KSPLICE_KANALYZE_SUMMARY_H_

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "base/status.h"
#include "kanalyze/callgraph.h"
#include "kelf/objfile.h"
#include "ksplice/package.h"

namespace kcc {
class ObjectCache;
}

namespace kanalyze {

// One attributed memory access: a named region plus byte offset and access
// width. `symbol` is normalized — the apply-time "unit::" scope prefix is
// stripped — so the same datum compares equal between a helper (pre) body
// and its extracted primary (post) twin.
struct MemEffect {
  std::string symbol;
  int32_t offset = 0;       // byte offset within `symbol` (reloc addend +
                            // any provable register arithmetic)
  uint8_t width = 0;        // 4 = word, 1 = byte
  bool offset_known = true; // false: somewhere inside `symbol`

  std::tuple<const std::string&, bool, int32_t, uint8_t> Key() const {
    return {symbol, offset_known, offset, width};
  }
  bool operator<(const MemEffect& o) const { return Key() < o.Key(); }
  bool operator==(const MemEffect& o) const { return Key() == o.Key(); }

  std::string ToString() const;  // "sym+4/w4" / "sym+?/w1"
};

struct FunctionSummary {
  // ---- Direct effects: pure function of (bytes, relocs); cached --------
  std::vector<MemEffect> writes;  // sorted, deduplicated
  std::vector<MemEffect> reads;
  bool writes_unresolved = false;  // a store the interpreter could not
                                   // attribute (not frame, not symbol)
  bool reads_unresolved = false;
  uint32_t lock_acquires = 0;  // static SYS lock_kernel sites (reachable)
  uint32_t lock_releases = 0;  // static SYS unlock_kernel sites (reachable)
  // Lock-depth verdict from a path-sensitive walk (same join discipline as
  // the KSA205 stack model): `lock_exits_known` means every reachable RET
  // had a provable lock depth; `lock_imbalance` means some reachable RET
  // provably returns with depth != 0 (that depth in `lock_imbalance_depth`).
  // "Provably balanced" == lock_exits_known && !lock_imbalance.
  bool lock_exits_known = true;
  bool lock_imbalance = false;
  int32_t lock_imbalance_depth = 0;
  bool blocks = false;  // contains a reachable SYS sleep / lock_kernel
  std::set<std::string> blocking_primitives;  // "sleep" / "lock_kernel"
  std::vector<std::string> callees;  // normalized callee names, sorted,
                                     // deduplicated (reloc call targets)
  uint64_t insns = 0;  // instructions interpreted

  // ---- Transitive facts: filled per package over the call graph --------
  // (not part of the cached blob)
  std::vector<MemEffect> transitive_writes;  // union over self + reachable
  bool transitive_writes_unresolved = false;
  std::set<std::string> reachable_blocking;  // primitives reachable through
                                             // at least one call edge

  bool ProvablyLockBalanced() const {
    return lock_exits_known && !lock_imbalance;
  }

  // Deterministic serialization of the direct fields (the cached blob).
  std::vector<uint8_t> Serialize() const;
  static ks::Result<FunctionSummary> Deserialize(
      const std::vector<uint8_t>& bytes);
};

// Strips the apply-time "unit::" scope prefix from a symbol name, so pre
// "counter" and post "m.kc::counter" name the same datum.
std::string NormalizeEffectSymbol(const std::string& name);

// Computes the direct summary of one text section by abstract
// interpretation. Pure: same (bytes, relocs, symbol names) in, same
// summary out.
FunctionSummary SummarizeSection(const kelf::ObjectFile& object,
                                 const kelf::Section& section);

struct SummaryOptions {
  int jobs = 1;                       // ks::ParallelFor fan-out width
  kcc::ObjectCache* cache = nullptr;  // optional blob cache for direct
                                      // summaries (content-hash keyed)
};

struct PackageSummaries {
  // Parallel to CallGraph::nodes: functions[i] summarizes graph.nodes[i].
  std::vector<FunctionSummary> functions;
  uint64_t cache_hits = 0;    // direct summaries served from the blob cache
  uint64_t cache_misses = 0;  // direct summaries computed this call
  uint64_t insns_interpreted = 0;
};

// Summarizes every function in the graph (direct summaries, cached and
// fanned out per `options`), then closes the transitive fields over the
// call edges. Deterministic for any jobs/cache combination.
PackageSummaries ComputeSummaries(const ksplice::UpdatePackage& package,
                                  const CallGraph& graph,
                                  const SummaryOptions& options);

}  // namespace kanalyze

#endif  // KSPLICE_KANALYZE_SUMMARY_H_
