#include "kcc/ast.h"

namespace kcc {

namespace {

TypeRef MakeType(Type::Kind kind) {
  auto t = std::make_shared<Type>();
  t->kind = kind;
  return t;
}

}  // namespace

TypeRef Type::Void() {
  static const TypeRef t = MakeType(Kind::kVoid);
  return t;
}

TypeRef Type::Int() {
  static const TypeRef t = MakeType(Kind::kInt);
  return t;
}

TypeRef Type::Char() {
  static const TypeRef t = MakeType(Kind::kChar);
  return t;
}

TypeRef Type::PointerTo(TypeRef pointee) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::kPointer;
  t->pointee = std::move(pointee);
  return t;
}

TypeRef Type::ArrayOf(TypeRef element, int len) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::kArray;
  t->pointee = std::move(element);
  t->array_len = len;
  return t;
}

TypeRef Type::Struct(std::string name) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::kStruct;
  t->struct_name = std::move(name);
  return t;
}

std::string Type::ToString() const {
  switch (kind) {
    case Kind::kVoid:
      return "void";
    case Kind::kInt:
      return "int";
    case Kind::kChar:
      return "char";
    case Kind::kPointer:
      return pointee->ToString() + "*";
    case Kind::kArray:
      return pointee->ToString() + "[" + std::to_string(array_len) + "]";
    case Kind::kStruct:
      return "struct " + struct_name;
  }
  return "?";
}

int CountExprNodes(const Expr& expr) {
  int count = 1;
  if (expr.lhs != nullptr) {
    count += CountExprNodes(*expr.lhs);
  }
  if (expr.rhs != nullptr) {
    count += CountExprNodes(*expr.rhs);
  }
  for (const ExprPtr& arg : expr.args) {
    count += CountExprNodes(*arg);
  }
  return count;
}

int CountStmtNodes(const Stmt& stmt) {
  int count = 1;
  if (stmt.expr != nullptr) {
    count += CountExprNodes(*stmt.expr);
  }
  if (stmt.init != nullptr) {
    count += CountExprNodes(*stmt.init);
  }
  if (stmt.cond != nullptr) {
    count += CountExprNodes(*stmt.cond);
  }
  if (stmt.step != nullptr) {
    count += CountExprNodes(*stmt.step);
  }
  if (stmt.init_stmt != nullptr) {
    count += CountStmtNodes(*stmt.init_stmt);
  }
  if (stmt.then_body != nullptr) {
    count += CountStmtNodes(*stmt.then_body);
  }
  if (stmt.else_body != nullptr) {
    count += CountStmtNodes(*stmt.else_body);
  }
  if (stmt.body != nullptr) {
    count += CountStmtNodes(*stmt.body);
  }
  for (const StmtPtr& child : stmt.stmts) {
    count += CountStmtNodes(*child);
  }
  return count;
}

}  // namespace kcc
