// AST for KC, the C subset compiled by kcc.
//
// The AST is deliberately plain: tagged structs with owned children. Types
// are structural except structs, which are referenced by name and resolved
// against the unit's struct table during code generation (this permits
// self-referential structs through pointers).

#ifndef KSPLICE_KCC_AST_H_
#define KSPLICE_KCC_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace kcc {

// ---------------------------------------------------------------------
// Types

struct Type;
using TypeRef = std::shared_ptr<const Type>;

struct Type {
  enum class Kind { kVoid, kInt, kChar, kPointer, kArray, kStruct };
  Kind kind = Kind::kInt;
  TypeRef pointee;          // kPointer / kArray element type
  int array_len = 0;        // kArray
  std::string struct_name;  // kStruct

  static TypeRef Void();
  static TypeRef Int();
  static TypeRef Char();
  static TypeRef PointerTo(TypeRef pointee);
  static TypeRef ArrayOf(TypeRef element, int len);
  static TypeRef Struct(std::string name);

  bool IsInt() const { return kind == Kind::kInt; }
  bool IsChar() const { return kind == Kind::kChar; }
  bool IsPointer() const { return kind == Kind::kPointer; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsStruct() const { return kind == Kind::kStruct; }
  bool IsScalar() const {
    return kind == Kind::kInt || kind == Kind::kChar ||
           kind == Kind::kPointer;
  }

  // Human-readable spelling for diagnostics.
  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIntLit,     // int_value
    kStrLit,     // str_value
    kVar,        // name (variable, or function designator yielding address)
    kUnary,      // op in {"-","!","~","*","&"}; child lhs
    kBinary,     // op arithmetic/comparison/logical; children lhs, rhs
    kAssign,     // op in {"=","+=","-="}; children lhs, rhs
    kPostIncDec, // op in {"++","--"}; child lhs
    kCall,       // name = callee, args
    kIndex,      // lhs [ rhs ]
    kMember,     // lhs . member
    kArrow,      // lhs -> member
    kSizeof,     // sizeof_type
    kCast,       // (cast_type) lhs
  };
  Kind kind = Kind::kIntLit;
  int line = 0;

  int64_t int_value = 0;
  std::string str_value;
  std::string name;
  std::string op;
  std::string member;
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;
  TypeRef sizeof_type;
  TypeRef cast_type;
};

// ---------------------------------------------------------------------
// Statements

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kExpr,      // expr;
    kDecl,      // [static] type name [= init];
    kIf,        // if (cond) then_body [else else_body]
    kWhile,     // while (cond) body
    kFor,       // for (init; cond; step) body
    kReturn,    // return [expr];
    kBreak,
    kContinue,
    kBlock,     // { stmts... }
    kEmpty,
  };
  Kind kind = Kind::kEmpty;
  int line = 0;

  ExprPtr expr;  // kExpr payload; kReturn value (may be null)
  // kDecl:
  TypeRef decl_type;
  std::string decl_name;
  ExprPtr init;
  bool is_static_local = false;
  // kIf / kWhile / kFor:
  ExprPtr cond;
  StmtPtr init_stmt;  // kFor
  ExprPtr step;       // kFor
  StmtPtr then_body;
  StmtPtr else_body;
  StmtPtr body;
  // kBlock:
  std::vector<StmtPtr> stmts;
};

// ---------------------------------------------------------------------
// Top-level declarations

struct StructField {
  TypeRef type;
  std::string name;
};

struct StructDef {
  std::string name;
  std::vector<StructField> fields;
  int line = 0;
};

// One element of a global initializer after flattening: a constant, a
// symbol address (+addend), or raw string bytes.
struct InitElem {
  enum class Kind { kInt, kSym, kStr };
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  std::string symbol;
  std::string str_value;
};

struct GlobalDecl {
  TypeRef type;
  std::string name;
  bool is_static = false;
  bool is_extern = false;  // declaration only; storage elsewhere
  bool has_init = false;
  std::vector<InitElem> init;
  int line = 0;
};

struct ParamDecl {
  TypeRef type;
  std::string name;
};

struct FuncDecl {
  TypeRef ret;
  std::string name;
  std::vector<ParamDecl> params;
  bool is_static = false;
  bool is_inline_kw = false;  // `inline` keyword present (a hint only;
                              // kcc inlines by size, like gcc — §4.2)
  bool is_definition = false;
  StmtPtr body;
  int line = 0;
  int body_size = 0;  // AST node count, input to the inlining heuristic
};

// ksplice_apply(fn); and friends at file scope (§5.3).
struct KspliceHook {
  std::string kind;  // "apply", "pre_apply", "post_apply", "reverse",
                     // "pre_reverse", "post_reverse"
  std::string func;
  int line = 0;
};

// A parsed compilation unit.
struct Unit {
  std::string name;  // e.g. "drivers/dvb/dst_ca.kc"
  std::vector<StructDef> structs;
  std::vector<GlobalDecl> globals;    // in declaration order
  std::vector<FuncDecl> functions;    // prototypes and definitions, in order
  std::vector<KspliceHook> hooks;
};

// Counts AST nodes in a statement subtree (inlining heuristic input).
int CountStmtNodes(const Stmt& stmt);
int CountExprNodes(const Expr& expr);

}  // namespace kcc

#endif  // KSPLICE_KCC_AST_H_
