#include "kcc/codegen.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "base/strings.h"

namespace kcc {

namespace {

// ------------------------------------------------------------------------
// Builtins lowered to SYS instructions (see kvx::Sys).

struct Builtin {
  int sys = -1;       // SYS number; -1 for `invoke`
  int arity = 0;
  bool returns_value = false;
};

const std::map<std::string, Builtin>& Builtins() {
  static const std::map<std::string, Builtin> table = {
      {"printk", {0, 1, false}},       {"ticks", {1, 0, true}},
      {"yield", {2, 0, false}},        {"sleep", {3, 1, false}},
      {"tid", {4, 0, true}},           {"krand", {5, 0, true}},
      {"exit_thread", {6, 0, false}},  {"record", {7, 2, false}},
      {"kthread", {8, 2, true}},       {"lock_kernel", {9, 0, false}},
      {"unlock_kernel", {10, 0, false}},
      {"shadow_attach", {11, 3, true}},
      {"shadow_get", {12, 2, true}},   {"shadow_detach", {13, 2, false}},
      {"kmalloc", {14, 1, true}},      {"kfree", {15, 1, false}},
      {"invoke", {-1, -1, true}},
  };
  return table;
}

uint32_t Fnv32(std::string_view data) {
  uint32_t hash = 2166136261u;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

std::string EscapeAsciz(std::string_view content) {
  std::string escaped;
  for (char c : content) {
    switch (c) {
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      default:
        escaped += c;
    }
  }
  return escaped;
}

// ------------------------------------------------------------------------
// Struct layout

struct FieldLayout {
  TypeRef type;
  int offset = 0;
};

struct StructLayout {
  std::map<std::string, FieldLayout> fields;
  std::vector<std::string> order;
  int size = 0;
  int align = 1;
};

// ------------------------------------------------------------------------
// Value categories

struct Value {
  TypeRef type;
};

struct GlobalInfo {
  TypeRef type;
  std::string symbol;
};

struct LocalInfo {
  TypeRef type;
  int fp_offset = 0;      // negative: locals; positive: parameters
  std::string symbol;     // non-empty for static locals (data symbol)
};

class Codegen {
 public:
  Codegen(const Unit& unit, const CodegenOptions& options)
      : unit_(unit), options_(options) {}

  ks::Result<std::string> Run();

  const std::set<std::string>& inlined_functions() const {
    return inlined_functions_;
  }

 private:
  // Setup ---------------------------------------------------------------
  ks::Status BuildStructTable();
  ks::Status BuildSymbolTables();
  ks::Result<int> SizeOf(const TypeRef& type, int line) const;
  ks::Result<int> AlignOf(const TypeRef& type, int line) const;
  ks::Result<const StructLayout*> LayoutOf(const std::string& name,
                                           int line) const;

  ks::Status Error(int line, const std::string& message) const {
    return ks::InvalidArgument(ks::StrPrintf("%s:%d: %s", unit_.name.c_str(),
                                             line, message.c_str()));
  }

  // Emission ------------------------------------------------------------
  void Emit(const std::string& line) { body_ += "    " + line + "\n"; }
  void EmitLabel(const std::string& label) { body_ += label + ":\n"; }
  std::string NewLabel() { return ks::StrPrintf(".L%d", label_counter_++); }

  // Functions -----------------------------------------------------------
  ks::Status EmitFunction(const FuncDecl& fn);
  bool IsInlinable(const FuncDecl& fn) const;
  const FuncDecl* FindDefinition(const std::string& name) const;
  const FuncDecl* FindSignature(const std::string& name) const;

  // Scopes: a stack of name->LocalInfo maps. Inline expansion pushes an
  // opaque boundary so callee bodies do not see caller locals.
  struct Scope {
    std::map<std::string, LocalInfo> vars;
    bool boundary = false;  // inline-expansion boundary
  };
  std::optional<LocalInfo> LookupLocal(const std::string& name) const;
  int AllocSlot(int size);

  struct LoopLabels {
    std::string break_label;
    std::string continue_label;
  };

  ks::Status EmitStmt(const Stmt& stmt);
  ks::Status EmitLocalDecl(const Stmt& stmt);

  // Expressions: EmitExpr leaves an rvalue in r0 (arrays/structs decay to
  // their address); EmitAddr leaves an lvalue address in r0.
  ks::Result<Value> EmitExpr(const Expr& expr);
  ks::Result<Value> EmitAddr(const Expr& expr);
  ks::Result<Value> EmitCall(const Expr& expr);
  ks::Result<Value> EmitInlineCall(const FuncDecl& callee, const Expr& expr);
  ks::Status EmitArgsToRegs(const Expr& expr, int arity);
  ks::Result<Value> EmitBinary(const Expr& expr);
  ks::Status EmitCompareSet(const std::string& op);

  // Loads the scalar at address r0 with the width of `type`.
  ks::Status EmitLoad(const TypeRef& type, int line);
  // Stores r0 to address r1 with the width of `type`.
  void EmitStore(const TypeRef& type);
  // Converts r0 from `from` to `to` (mask for char narrowing).
  void EmitConvert(const TypeRef& from, const TypeRef& to);

  // Decay: arrays yield their address as a pointer value.
  static TypeRef DecayType(const TypeRef& type) {
    return type->IsArray() ? Type::PointerTo(type->pointee) : type;
  }

  // Data ----------------------------------------------------------------
  ks::Status EmitGlobal(const GlobalDecl& decl);
  std::string InternString(const std::string& value);
  std::string InternBuildString(bool date);
  ks::Status EmitStaticLocalData(const std::string& symbol,
                                 const TypeRef& type, const Expr* init,
                                 int line);

  const Unit& unit_;
  CodegenOptions options_;

  std::map<std::string, StructLayout> structs_;
  std::map<std::string, GlobalInfo> globals_;
  std::map<std::string, int> static_ordinal_;  // per-name counter

  std::string text_;  // emitted function text
  std::string data_;  // emitted data directives
  std::string hook_directives_;
  std::string body_;  // current function body under construction
  std::map<std::string, std::string> strings_;  // content -> symbol
  std::set<std::string> emitted_strings_;
  // __DATE__/__TIME__ symbols; empty until first use. Hash-suffixed with
  // the unit name so every unit's build strings are distinct symbols (a
  // content-ignoring matcher could never disambiguate same-named ones).
  std::string date_symbol_;
  std::string time_symbol_;

  int label_counter_ = 0;
  int frame_size_ = 0;

  std::vector<Scope> scopes_;
  std::vector<LoopLabels> loops_;
  std::vector<std::string> inline_stack_;  // functions being expanded
  std::string return_label_;
  TypeRef return_type_;
  std::vector<std::string> deferred_static_data_;
  std::set<std::string> inlined_functions_;
};

ks::Status Codegen::BuildStructTable() {
  for (const StructDef& def : unit_.structs) {
    StructLayout layout;
    int offset = 0;
    for (const StructField& field : def.fields) {
      KS_ASSIGN_OR_RETURN(int size, SizeOf(field.type, def.line));
      KS_ASSIGN_OR_RETURN(int align, AlignOf(field.type, def.line));
      offset = (offset + align - 1) / align * align;
      if (layout.fields.count(field.name) != 0) {
        return Error(def.line, ks::StrPrintf("duplicate field '%s'",
                                             field.name.c_str()));
      }
      layout.fields[field.name] = FieldLayout{field.type, offset};
      layout.order.push_back(field.name);
      offset += size;
      layout.align = std::max(layout.align, align);
    }
    layout.size = (offset + layout.align - 1) / layout.align * layout.align;
    structs_[def.name] = std::move(layout);
  }
  return ks::OkStatus();
}

ks::Result<int> Codegen::SizeOf(const TypeRef& type, int line) const {
  switch (type->kind) {
    case Type::Kind::kVoid:
      return Error(line, "sizeof(void)");
    case Type::Kind::kChar:
      return 1;
    case Type::Kind::kInt:
    case Type::Kind::kPointer:
      return 4;
    case Type::Kind::kArray: {
      KS_ASSIGN_OR_RETURN(int elem, SizeOf(type->pointee, line));
      return elem * type->array_len;
    }
    case Type::Kind::kStruct: {
      KS_ASSIGN_OR_RETURN(const StructLayout* layout,
                          LayoutOf(type->struct_name, line));
      return layout->size;
    }
  }
  return Error(line, "unsizeable type");
}

ks::Result<int> Codegen::AlignOf(const TypeRef& type, int line) const {
  switch (type->kind) {
    case Type::Kind::kChar:
      return 1;
    case Type::Kind::kArray:
      return AlignOf(type->pointee, line);
    case Type::Kind::kStruct: {
      KS_ASSIGN_OR_RETURN(const StructLayout* layout,
                          LayoutOf(type->struct_name, line));
      return layout->align;
    }
    default:
      return 4;
  }
}

ks::Result<const StructLayout*> Codegen::LayoutOf(const std::string& name,
                                                  int line) const {
  auto it = structs_.find(name);
  if (it == structs_.end()) {
    return Error(line, ks::StrPrintf("unknown struct '%s'", name.c_str()));
  }
  return &it->second;
}

ks::Status Codegen::BuildSymbolTables() {
  for (const GlobalDecl& decl : unit_.globals) {
    if (globals_.count(decl.name) != 0) {
      return Error(decl.line,
                   ks::StrPrintf("duplicate global '%s'", decl.name.c_str()));
    }
    globals_[decl.name] = GlobalInfo{decl.type, decl.name};
  }
  return ks::OkStatus();
}

const FuncDecl* Codegen::FindDefinition(const std::string& name) const {
  for (const FuncDecl& fn : unit_.functions) {
    if (fn.name == name && fn.is_definition) {
      return &fn;
    }
  }
  return nullptr;
}

const FuncDecl* Codegen::FindSignature(const std::string& name) const {
  const FuncDecl* def = FindDefinition(name);
  if (def != nullptr) {
    return def;
  }
  for (const FuncDecl& fn : unit_.functions) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

namespace {

bool StmtHasStaticLocal(const Stmt& stmt);

bool StmtListHasStaticLocal(const std::vector<StmtPtr>& stmts) {
  for (const StmtPtr& stmt : stmts) {
    if (StmtHasStaticLocal(*stmt)) {
      return true;
    }
  }
  return false;
}

bool StmtHasStaticLocal(const Stmt& stmt) {
  if (stmt.kind == Stmt::Kind::kDecl && stmt.is_static_local) {
    return true;
  }
  for (const Stmt* child :
       {stmt.init_stmt.get(), stmt.then_body.get(), stmt.else_body.get(),
        stmt.body.get()}) {
    if (child != nullptr && StmtHasStaticLocal(*child)) {
      return true;
    }
  }
  return StmtListHasStaticLocal(stmt.stmts);
}

bool ExprCalls(const Expr& expr, const std::string& name) {
  if (expr.kind == Expr::Kind::kCall && expr.name == name) {
    return true;
  }
  for (const Expr* child : {expr.lhs.get(), expr.rhs.get()}) {
    if (child != nullptr && ExprCalls(*child, name)) {
      return true;
    }
  }
  for (const ExprPtr& arg : expr.args) {
    if (ExprCalls(*arg, name)) {
      return true;
    }
  }
  return false;
}

bool StmtCalls(const Stmt& stmt, const std::string& name) {
  for (const Expr* expr :
       {stmt.expr.get(), stmt.init.get(), stmt.cond.get(), stmt.step.get()}) {
    if (expr != nullptr && ExprCalls(*expr, name)) {
      return true;
    }
  }
  for (const Stmt* child :
       {stmt.init_stmt.get(), stmt.then_body.get(), stmt.else_body.get(),
        stmt.body.get()}) {
    if (child != nullptr && StmtCalls(*child, name)) {
      return true;
    }
  }
  for (const StmtPtr& child : stmt.stmts) {
    if (StmtCalls(*child, name)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool Codegen::IsInlinable(const FuncDecl& fn) const {
  if (!fn.is_definition || options_.inline_threshold <= 0) {
    return false;
  }
  if (fn.body_size > options_.inline_threshold) {
    return false;
  }
  if (StmtHasStaticLocal(*fn.body)) {
    return false;
  }
  if (StmtCalls(*fn.body, fn.name)) {
    return false;  // direct recursion
  }
  return true;
}

std::optional<LocalInfo> Codegen::LookupLocal(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto hit = it->vars.find(name);
    if (hit != it->vars.end()) {
      return hit->second;
    }
    if (it->boundary) {
      break;
    }
  }
  return std::nullopt;
}

int Codegen::AllocSlot(int size) {
  size = (size + 3) / 4 * 4;
  frame_size_ += size;
  return -frame_size_;
}

// --------------------------------------------------------------------------
// Functions

ks::Result<std::string> Codegen::Run() {
  KS_RETURN_IF_ERROR(BuildStructTable());
  KS_RETURN_IF_ERROR(BuildSymbolTables());

  // Hooks reference functions; validate and emit directives.
  for (const KspliceHook& hook : unit_.hooks) {
    if (FindDefinition(hook.func) == nullptr) {
      return Error(hook.line,
                   ks::StrPrintf("ksplice_%s names undefined function '%s'",
                                 hook.kind.c_str(), hook.func.c_str()));
    }
    hook_directives_ +=
        ks::StrPrintf(".ksplice_%s %s\n", hook.kind.c_str(),
                      hook.func.c_str());
  }

  text_ += ".text\n";
  for (const FuncDecl& fn : unit_.functions) {
    if (!fn.is_definition) {
      continue;
    }
    KS_RETURN_IF_ERROR(EmitFunction(fn));
  }

  for (const GlobalDecl& decl : unit_.globals) {
    KS_RETURN_IF_ERROR(EmitGlobal(decl));
  }

  // String literals, in deterministic (sorted-by-symbol) order.
  std::map<std::string, std::string> by_symbol;
  for (const auto& [content, symbol] : strings_) {
    by_symbol[symbol] = content;
  }
  for (const auto& [symbol, content] : by_symbol) {
    data_ += ".data\n";
    data_ += symbol + ":\n";
    std::string escaped;
    for (char c : content) {
      switch (c) {
        case '\n':
          escaped += "\\n";
          break;
        case '\t':
          escaped += "\\t";
          break;
        case '"':
          escaped += "\\\"";
          break;
        case '\\':
          escaped += "\\\\";
          break;
        default:
          escaped += c;
      }
    }
    data_ += "    .asciz \"" + escaped + "\"\n";
  }

  // Build-timestamp strings, each in its own howto-tagged section.
  if (!date_symbol_.empty()) {
    data_ += ".howto_section .rodata.date\n";
    data_ += date_symbol_ + ":\n";
    data_ += "    .asciz \"" + EscapeAsciz(options_.build_date) + "\"\n";
  }
  if (!time_symbol_.empty()) {
    data_ += ".howto_section .rodata.time\n";
    data_ += time_symbol_ + ":\n";
    data_ += "    .asciz \"" + EscapeAsciz(options_.build_time) + "\"\n";
  }

  std::string out = text_;
  for (const std::string& chunk : deferred_static_data_) {
    out += chunk;
  }
  out += data_;
  out += hook_directives_;
  return out;
}

ks::Status Codegen::EmitFunction(const FuncDecl& fn) {
  body_.clear();
  frame_size_ = 0;
  scopes_.clear();
  loops_.clear();
  inline_stack_.clear();
  inline_stack_.push_back(fn.name);
  return_label_ = NewLabel();
  return_type_ = fn.ret;

  Scope param_scope;
  param_scope.boundary = true;
  int offset = 8;  // [fp]=saved fp, [fp+4]=return address
  for (const ParamDecl& param : fn.params) {
    if (param.name.empty()) {
      return Error(fn.line, "definition with unnamed parameter");
    }
    if (!param.type->IsScalar()) {
      return Error(fn.line, ks::StrPrintf("parameter '%s' must be scalar",
                                          param.name.c_str()));
    }
    param_scope.vars[param.name] = LocalInfo{param.type, offset, ""};
    offset += 4;
  }
  scopes_.push_back(std::move(param_scope));

  KS_RETURN_IF_ERROR(EmitStmt(*fn.body));

  std::string out;
  if (!fn.is_static) {
    out += ".global " + fn.name + "\n";
  }
  out += fn.name + ":\n";
  out += "    push fp\n";
  out += "    mov fp, sp\n";
  if (frame_size_ > 0) {
    out += ks::StrPrintf("    sub sp, %d\n", frame_size_);
  }
  out += body_;
  out += return_label_ + ":\n";
  out += "    mov sp, fp\n";
  out += "    pop fp\n";
  out += "    ret\n";
  text_ += out;
  return ks::OkStatus();
}

// --------------------------------------------------------------------------
// Statements

ks::Status Codegen::EmitStmt(const Stmt& stmt) {
  switch (stmt.kind) {
    case Stmt::Kind::kEmpty:
      return ks::OkStatus();
    case Stmt::Kind::kExpr:
      return EmitExpr(*stmt.expr).status();
    case Stmt::Kind::kDecl:
      return EmitLocalDecl(stmt);
    case Stmt::Kind::kBlock: {
      scopes_.push_back(Scope{});
      for (const StmtPtr& child : stmt.stmts) {
        KS_RETURN_IF_ERROR(EmitStmt(*child));
      }
      scopes_.pop_back();
      return ks::OkStatus();
    }
    case Stmt::Kind::kIf: {
      std::string else_label = NewLabel();
      KS_RETURN_IF_ERROR(EmitExpr(*stmt.cond).status());
      Emit("cmp r0, 0");
      Emit("jz " + else_label);
      KS_RETURN_IF_ERROR(EmitStmt(*stmt.then_body));
      if (stmt.else_body != nullptr) {
        std::string end_label = NewLabel();
        Emit("jmp " + end_label);
        EmitLabel(else_label);
        KS_RETURN_IF_ERROR(EmitStmt(*stmt.else_body));
        EmitLabel(end_label);
      } else {
        EmitLabel(else_label);
      }
      return ks::OkStatus();
    }
    case Stmt::Kind::kWhile: {
      std::string head = NewLabel();
      std::string end = NewLabel();
      EmitLabel(head);
      KS_RETURN_IF_ERROR(EmitExpr(*stmt.cond).status());
      Emit("cmp r0, 0");
      Emit("jz " + end);
      loops_.push_back(LoopLabels{end, head});
      KS_RETURN_IF_ERROR(EmitStmt(*stmt.body));
      loops_.pop_back();
      Emit("jmp " + head);
      EmitLabel(end);
      return ks::OkStatus();
    }
    case Stmt::Kind::kFor: {
      scopes_.push_back(Scope{});
      if (stmt.init_stmt != nullptr) {
        KS_RETURN_IF_ERROR(EmitStmt(*stmt.init_stmt));
      }
      std::string head = NewLabel();
      std::string step_label = NewLabel();
      std::string end = NewLabel();
      EmitLabel(head);
      if (stmt.cond != nullptr) {
        KS_RETURN_IF_ERROR(EmitExpr(*stmt.cond).status());
        Emit("cmp r0, 0");
        Emit("jz " + end);
      }
      loops_.push_back(LoopLabels{end, step_label});
      KS_RETURN_IF_ERROR(EmitStmt(*stmt.body));
      loops_.pop_back();
      EmitLabel(step_label);
      if (stmt.step != nullptr) {
        KS_RETURN_IF_ERROR(EmitExpr(*stmt.step).status());
      }
      Emit("jmp " + head);
      EmitLabel(end);
      scopes_.pop_back();
      return ks::OkStatus();
    }
    case Stmt::Kind::kReturn: {
      if (stmt.expr != nullptr) {
        KS_ASSIGN_OR_RETURN(Value value, EmitExpr(*stmt.expr));
        EmitConvert(value.type, return_type_);
      }
      Emit("jmp " + return_label_);
      return ks::OkStatus();
    }
    case Stmt::Kind::kBreak: {
      if (loops_.empty()) {
        return Error(stmt.line, "break outside loop");
      }
      Emit("jmp " + loops_.back().break_label);
      return ks::OkStatus();
    }
    case Stmt::Kind::kContinue: {
      if (loops_.empty()) {
        return Error(stmt.line, "continue outside loop");
      }
      Emit("jmp " + loops_.back().continue_label);
      return ks::OkStatus();
    }
  }
  return Error(stmt.line, "unhandled statement");
}

ks::Status Codegen::EmitLocalDecl(const Stmt& stmt) {
  if (scopes_.back().vars.count(stmt.decl_name) != 0) {
    return Error(stmt.line, ks::StrPrintf("duplicate local '%s'",
                                          stmt.decl_name.c_str()));
  }
  if (stmt.is_static_local) {
    int ordinal = ++static_ordinal_[stmt.decl_name];
    std::string symbol =
        ks::StrPrintf("%s.%d", stmt.decl_name.c_str(), ordinal);
    KS_RETURN_IF_ERROR(EmitStaticLocalData(symbol, stmt.decl_type,
                                           stmt.init.get(), stmt.line));
    scopes_.back().vars[stmt.decl_name] =
        LocalInfo{stmt.decl_type, 0, symbol};
    return ks::OkStatus();
  }
  KS_ASSIGN_OR_RETURN(int size, SizeOf(stmt.decl_type, stmt.line));
  int slot = AllocSlot(size);
  scopes_.back().vars[stmt.decl_name] = LocalInfo{stmt.decl_type, slot, ""};
  if (stmt.init != nullptr) {
    if (!stmt.decl_type->IsScalar()) {
      return Error(stmt.line, "initializer on non-scalar local");
    }
    KS_ASSIGN_OR_RETURN(Value value, EmitExpr(*stmt.init));
    EmitConvert(value.type, stmt.decl_type);
    Emit("mov r1, fp");
    Emit(ks::StrPrintf("add r1, %d", slot));
    if (stmt.decl_type->IsChar()) {
      Emit("storeb [r1], r0");
    } else {
      Emit("store [r1], r0");
    }
  }
  return ks::OkStatus();
}

ks::Status Codegen::EmitStaticLocalData(const std::string& symbol,
                                        const TypeRef& type, const Expr* init,
                                        int line) {
  KS_ASSIGN_OR_RETURN(int size, SizeOf(type, line));
  std::string chunk;
  if (init == nullptr) {
    chunk = ".bss\n" + symbol + ":\n" + ks::StrPrintf("    .space %d\n", size);
  } else {
    if (init->kind != Expr::Kind::kIntLit) {
      return Error(line, "static local initializer must be constant");
    }
    if (!type->IsScalar()) {
      return Error(line, "static local aggregate initializer unsupported");
    }
    chunk = ".data\n" + symbol + ":\n";
    if (type->IsChar()) {
      chunk += ks::StrPrintf("    .byte %d\n",
                             static_cast<int>(init->int_value & 0xff));
    } else {
      chunk += ks::StrPrintf("    .word %d\n",
                             static_cast<int>(init->int_value));
    }
  }
  deferred_static_data_.push_back(std::move(chunk));
  return ks::OkStatus();
}

// --------------------------------------------------------------------------
// Expressions

ks::Status Codegen::EmitLoad(const TypeRef& type, int line) {
  if (type->IsArray() || type->IsStruct()) {
    return ks::OkStatus();  // decays to address
  }
  if (type->kind == Type::Kind::kVoid) {
    return Error(line, "load of void");
  }
  if (type->IsChar()) {
    Emit("loadb r0, [r0]");
  } else {
    Emit("load r0, [r0]");
  }
  return ks::OkStatus();
}

void Codegen::EmitStore(const TypeRef& type) {
  if (type->IsChar()) {
    Emit("storeb [r1], r0");
  } else {
    Emit("store [r1], r0");
  }
}

void Codegen::EmitConvert(const TypeRef& from, const TypeRef& to) {
  if (to->IsChar() && !from->IsChar()) {
    Emit("and r0, 255");
  }
}

ks::Result<Value> Codegen::EmitAddr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kVar: {
      std::optional<LocalInfo> local = LookupLocal(expr.name);
      if (local.has_value()) {
        if (!local->symbol.empty()) {
          Emit("mov r0, =" + local->symbol);
        } else {
          Emit("mov r0, fp");
          Emit(ks::StrPrintf("add r0, %d", local->fp_offset));
        }
        return Value{local->type};
      }
      auto global = globals_.find(expr.name);
      if (global != globals_.end()) {
        Emit("mov r0, =" + global->second.symbol);
        return Value{global->second.type};
      }
      return Error(expr.line,
                   ks::StrPrintf("'%s' is not an lvalue", expr.name.c_str()));
    }
    case Expr::Kind::kUnary:
      if (expr.op == "*") {
        KS_ASSIGN_OR_RETURN(Value ptr, EmitExpr(*expr.lhs));
        TypeRef t = DecayType(ptr.type);
        if (!t->IsPointer()) {
          return Error(expr.line, "dereference of non-pointer");
        }
        return Value{t->pointee};
      }
      break;
    case Expr::Kind::kIndex: {
      TypeRef elem;
      KS_ASSIGN_OR_RETURN(Value base, EmitExpr(*expr.lhs));
      TypeRef base_type = DecayType(base.type);
      if (!base_type->IsPointer()) {
        return Error(expr.line, "subscript of non-pointer");
      }
      elem = base_type->pointee;
      KS_ASSIGN_OR_RETURN(int elem_size, SizeOf(elem, expr.line));
      Emit("push r0");
      KS_ASSIGN_OR_RETURN(Value index, EmitExpr(*expr.rhs));
      if (!DecayType(index.type)->IsScalar()) {
        return Error(expr.line, "non-scalar subscript");
      }
      if (elem_size != 1) {
        Emit(ks::StrPrintf("mov r1, %d", elem_size));
        Emit("mul r0, r1");
      }
      Emit("mov r1, r0");
      Emit("pop r0");
      Emit("add r0, r1");
      return Value{elem};
    }
    case Expr::Kind::kMember: {
      KS_ASSIGN_OR_RETURN(Value base, EmitAddr(*expr.lhs));
      if (!base.type->IsStruct()) {
        return Error(expr.line, "'.' on non-struct");
      }
      KS_ASSIGN_OR_RETURN(const StructLayout* layout,
                          LayoutOf(base.type->struct_name, expr.line));
      auto field = layout->fields.find(expr.member);
      if (field == layout->fields.end()) {
        return Error(expr.line,
                     ks::StrPrintf("no field '%s' in struct %s",
                                   expr.member.c_str(),
                                   base.type->struct_name.c_str()));
      }
      if (field->second.offset != 0) {
        Emit(ks::StrPrintf("add r0, %d", field->second.offset));
      }
      return Value{field->second.type};
    }
    case Expr::Kind::kArrow: {
      KS_ASSIGN_OR_RETURN(Value base, EmitExpr(*expr.lhs));
      TypeRef t = DecayType(base.type);
      if (!t->IsPointer() || !t->pointee->IsStruct()) {
        return Error(expr.line, "'->' on non-struct-pointer");
      }
      KS_ASSIGN_OR_RETURN(const StructLayout* layout,
                          LayoutOf(t->pointee->struct_name, expr.line));
      auto field = layout->fields.find(expr.member);
      if (field == layout->fields.end()) {
        return Error(expr.line,
                     ks::StrPrintf("no field '%s' in struct %s",
                                   expr.member.c_str(),
                                   t->pointee->struct_name.c_str()));
      }
      if (field->second.offset != 0) {
        Emit(ks::StrPrintf("add r0, %d", field->second.offset));
      }
      return Value{field->second.type};
    }
    default:
      break;
  }
  return Error(expr.line, "expression is not an lvalue");
}

ks::Result<Value> Codegen::EmitExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      Emit(ks::StrPrintf("mov r0, %d",
                         static_cast<int32_t>(expr.int_value)));
      return Value{Type::Int()};
    case Expr::Kind::kStrLit: {
      std::string symbol = InternString(expr.str_value);
      Emit("mov r0, =" + symbol);
      return Value{Type::PointerTo(Type::Char())};
    }
    case Expr::Kind::kVar: {
      if (expr.name == "__DATE__" || expr.name == "__TIME__") {
        // Build-timestamp strings land in .rodata.date/.rodata.time howto
        // sections, which run-pre matching compares content-ignoring.
        Emit("mov r0, =" + InternBuildString(expr.name == "__DATE__"));
        return Value{Type::PointerTo(Type::Char())};
      }
      std::optional<LocalInfo> local = LookupLocal(expr.name);
      if (local.has_value() || globals_.count(expr.name) != 0) {
        KS_ASSIGN_OR_RETURN(Value addr, EmitAddr(expr));
        KS_RETURN_IF_ERROR(EmitLoad(addr.type, expr.line));
        return Value{DecayType(addr.type)};
      }
      // A function designator: its address, loosely typed as int.
      if (FindSignature(expr.name) != nullptr ||
          Builtins().count(expr.name) == 0) {
        // Unknown names are assumed to be functions defined in another
        // unit; the assembler interns an import.
        Emit("mov r0, =" + expr.name);
        return Value{Type::Int()};
      }
      return Error(expr.line, ks::StrPrintf("builtin '%s' is not a value",
                                            expr.name.c_str()));
    }
    case Expr::Kind::kSizeof: {
      KS_ASSIGN_OR_RETURN(int size, SizeOf(expr.sizeof_type, expr.line));
      Emit(ks::StrPrintf("mov r0, %d", size));
      return Value{Type::Int()};
    }
    case Expr::Kind::kCast: {
      KS_ASSIGN_OR_RETURN(Value value, EmitExpr(*expr.lhs));
      EmitConvert(DecayType(value.type), expr.cast_type);
      return Value{expr.cast_type};
    }
    case Expr::Kind::kUnary: {
      if (expr.op == "&") {
        KS_ASSIGN_OR_RETURN(Value addr, EmitAddr(*expr.lhs));
        return Value{Type::PointerTo(addr.type)};
      }
      if (expr.op == "*") {
        KS_ASSIGN_OR_RETURN(Value ptr, EmitExpr(*expr.lhs));
        TypeRef t = DecayType(ptr.type);
        if (!t->IsPointer()) {
          return Error(expr.line, "dereference of non-pointer");
        }
        KS_RETURN_IF_ERROR(EmitLoad(t->pointee, expr.line));
        return Value{DecayType(t->pointee)};
      }
      KS_ASSIGN_OR_RETURN(Value value, EmitExpr(*expr.lhs));
      if (expr.op == "-") {
        Emit("mov r1, r0");
        Emit("mov r0, 0");
        Emit("sub r0, r1");
      } else if (expr.op == "!") {
        std::string is_zero = NewLabel();
        Emit("cmp r0, 0");
        Emit("mov r0, 1");
        Emit("jz " + is_zero);
        Emit("mov r0, 0");
        EmitLabel(is_zero);
      } else if (expr.op == "~") {
        Emit("mov r1, r0");
        Emit("mov r0, -1");
        Emit("xor r0, r1");
      } else {
        return Error(expr.line, "unhandled unary op");
      }
      return Value{Type::Int()};
    }
    case Expr::Kind::kBinary:
      return EmitBinary(expr);
    case Expr::Kind::kAssign: {
      if (expr.op == "=") {
        KS_ASSIGN_OR_RETURN(Value rhs, EmitExpr(*expr.rhs));
        Emit("push r0");
        KS_ASSIGN_OR_RETURN(Value lhs, EmitAddr(*expr.lhs));
        if (!lhs.type->IsScalar()) {
          return Error(expr.line, "assignment to non-scalar");
        }
        Emit("mov r1, r0");
        Emit("pop r0");
        EmitConvert(DecayType(rhs.type), lhs.type);
        EmitStore(lhs.type);
        return Value{lhs.type};
      }
      // "+=" / "-=".
      KS_ASSIGN_OR_RETURN(Value rhs, EmitExpr(*expr.rhs));
      Emit("push r0");
      KS_ASSIGN_OR_RETURN(Value lhs, EmitAddr(*expr.lhs));
      if (!lhs.type->IsScalar()) {
        return Error(expr.line, "compound assignment to non-scalar");
      }
      Emit("mov r2, r0");  // address
      KS_RETURN_IF_ERROR(EmitLoad(lhs.type, expr.line));
      Emit("pop r1");  // rhs value
      if (lhs.type->IsPointer()) {
        KS_ASSIGN_OR_RETURN(int size, SizeOf(lhs.type->pointee, expr.line));
        if (size != 1) {
          Emit(ks::StrPrintf("mov r3, %d", size));
          Emit("mul r1, r3");
        }
      }
      Emit(expr.op == "+=" ? "add r0, r1" : "sub r0, r1");
      EmitConvert(Type::Int(), lhs.type);
      Emit("mov r1, r2");
      EmitStore(lhs.type);
      return Value{lhs.type};
    }
    case Expr::Kind::kPostIncDec: {
      KS_ASSIGN_OR_RETURN(Value lhs, EmitAddr(*expr.lhs));
      if (!lhs.type->IsScalar()) {
        return Error(expr.line, "++/-- on non-scalar");
      }
      int delta = 1;
      if (lhs.type->IsPointer()) {
        KS_ASSIGN_OR_RETURN(delta, SizeOf(lhs.type->pointee, expr.line));
      }
      Emit("mov r2, r0");  // address
      KS_RETURN_IF_ERROR(EmitLoad(lhs.type, expr.line));
      Emit("push r0");  // old value: the expression's result
      Emit(ks::StrPrintf(expr.op == "++" ? "add r0, %d" : "sub r0, %d",
                         delta));
      EmitConvert(Type::Int(), lhs.type);
      Emit("mov r1, r2");
      EmitStore(lhs.type);
      Emit("pop r0");
      return Value{lhs.type};
    }
    case Expr::Kind::kCall:
      return EmitCall(expr);
    case Expr::Kind::kIndex:
    case Expr::Kind::kMember:
    case Expr::Kind::kArrow: {
      KS_ASSIGN_OR_RETURN(Value addr, EmitAddr(expr));
      KS_RETURN_IF_ERROR(EmitLoad(addr.type, expr.line));
      return Value{DecayType(addr.type)};
    }
  }
  return Error(expr.line, "unhandled expression");
}

ks::Status Codegen::EmitCompareSet(const std::string& op) {
  // Flags already set from "cmp r0, r1".
  std::string taken = NewLabel();
  Emit("mov r0, 1");
  if (op == "==") {
    Emit("jz " + taken);
  } else if (op == "!=") {
    Emit("jnz " + taken);
  } else if (op == "<") {
    Emit("jlt " + taken);
  } else if (op == ">=") {
    Emit("jge " + taken);
  } else if (op == ">") {
    Emit("jgt " + taken);
  } else if (op == "<=") {
    Emit("jle " + taken);
  } else {
    return ks::Internal("bad comparison op " + op);
  }
  Emit("mov r0, 0");
  EmitLabel(taken);
  return ks::OkStatus();
}

ks::Result<Value> Codegen::EmitBinary(const Expr& expr) {
  const std::string& op = expr.op;

  if (op == "&&" || op == "||") {
    std::string short_circuit = NewLabel();
    std::string done = NewLabel();
    KS_RETURN_IF_ERROR(EmitExpr(*expr.lhs).status());
    Emit("cmp r0, 0");
    Emit((op == "&&" ? "jz " : "jnz ") + short_circuit);
    KS_RETURN_IF_ERROR(EmitExpr(*expr.rhs).status());
    Emit("cmp r0, 0");
    Emit((op == "&&" ? "jz " : "jnz ") + short_circuit);
    Emit(op == "&&" ? "mov r0, 1" : "mov r0, 0");
    Emit("jmp " + done);
    EmitLabel(short_circuit);
    Emit(op == "&&" ? "mov r0, 0" : "mov r0, 1");
    EmitLabel(done);
    return Value{Type::Int()};
  }

  KS_ASSIGN_OR_RETURN(Value lhs, EmitExpr(*expr.lhs));
  Emit("push r0");
  KS_ASSIGN_OR_RETURN(Value rhs, EmitExpr(*expr.rhs));
  Emit("mov r1, r0");
  Emit("pop r0");

  TypeRef lt = DecayType(lhs.type);
  TypeRef rt = DecayType(rhs.type);

  if (op == "+" || op == "-") {
    // Pointer arithmetic scaling.
    if (lt->IsPointer() && !rt->IsPointer()) {
      KS_ASSIGN_OR_RETURN(int size, SizeOf(lt->pointee, expr.line));
      if (size != 1) {
        Emit(ks::StrPrintf("mov r2, %d", size));
        Emit("mul r1, r2");
      }
      Emit(op == "+" ? "add r0, r1" : "sub r0, r1");
      return Value{lt};
    }
    if (op == "+" && rt->IsPointer() && !lt->IsPointer()) {
      KS_ASSIGN_OR_RETURN(int size, SizeOf(rt->pointee, expr.line));
      if (size != 1) {
        Emit(ks::StrPrintf("mov r2, %d", size));
        Emit("mul r0, r2");
      }
      Emit("add r0, r1");
      return Value{rt};
    }
    if (op == "-" && lt->IsPointer() && rt->IsPointer()) {
      KS_ASSIGN_OR_RETURN(int size, SizeOf(lt->pointee, expr.line));
      Emit("sub r0, r1");
      if (size != 1) {
        Emit(ks::StrPrintf("mov r1, %d", size));
        Emit("div r0, r1");
      }
      return Value{Type::Int()};
    }
    Emit(op == "+" ? "add r0, r1" : "sub r0, r1");
    return Value{Type::Int()};
  }

  static const std::map<std::string, const char*> kSimple = {
      {"*", "mul r0, r1"}, {"/", "div r0, r1"}, {"%", "mod r0, r1"},
      {"&", "and r0, r1"}, {"|", "or r0, r1"},  {"^", "xor r0, r1"},
      {"<<", "shl r0, r1"}, {">>", "shr r0, r1"},
  };
  auto simple = kSimple.find(op);
  if (simple != kSimple.end()) {
    Emit(simple->second);
    return Value{Type::Int()};
  }

  // Comparison.
  Emit("cmp r0, r1");
  KS_RETURN_IF_ERROR(EmitCompareSet(op));
  return Value{Type::Int()};
}

ks::Status Codegen::EmitArgsToRegs(const Expr& expr, int arity) {
  if (static_cast<int>(expr.args.size()) != arity) {
    return Error(expr.line,
                 ks::StrPrintf("builtin '%s' expects %d arguments, got %zu",
                               expr.name.c_str(), arity, expr.args.size()));
  }
  for (const ExprPtr& arg : expr.args) {
    KS_RETURN_IF_ERROR(EmitExpr(*arg).status());
    Emit("push r0");
  }
  for (int i = arity - 1; i >= 0; --i) {
    Emit(ks::StrPrintf("pop r%d", i));
  }
  return ks::OkStatus();
}

ks::Result<Value> Codegen::EmitCall(const Expr& expr) {
  // Intrinsics that lower to howto-tagged special sections. Like the SYS
  // builtins below, a user definition of the same name shadows them.
  if (LookupLocal(expr.name) == std::nullopt &&
      FindSignature(expr.name) == nullptr) {
    if (expr.name == "try_load") {
      // try_load(p, fallback): a faulting load. A bad pointer does not
      // crash the kernel; the exception-table fixup substitutes the
      // fallback value (the kernel's __get_user pattern).
      if (expr.args.size() != 2) {
        return Error(expr.line, "try_load needs (pointer, fallback)");
      }
      KS_RETURN_IF_ERROR(EmitExpr(*expr.args[1]).status());
      Emit("push r0");
      KS_RETURN_IF_ERROR(EmitExpr(*expr.args[0]).status());
      Emit("pop r1");
      std::string lext = NewLabel();
      std::string lfix = NewLabel();
      std::string ldone = NewLabel();
      EmitLabel(lext);
      Emit("loadf r0, [r0]");
      Emit("jmp " + ldone);
      EmitLabel(lfix);
      Emit("mov r0, r1");
      EmitLabel(ldone);
      // The entry attaches to the outermost function being emitted, so
      // inline expansion credits the host function's table.
      Emit(".extable_entry " + inline_stack_.front() + ", " + lext + ", " +
           lfix);
      return Value{Type::Int()};
    }
    if (expr.name == "BUG") {
      // BUG(): an unconditional trap whose bug-table entry maps the trap
      // pc back to this source line.
      if (!expr.args.empty()) {
        return Error(expr.line, "BUG takes no arguments");
      }
      std::string lbug = NewLabel();
      EmitLabel(lbug);
      Emit("bug");
      Emit(ks::StrPrintf(".bug_entry %s, %s, %d",
                         inline_stack_.front().c_str(), lbug.c_str(),
                         expr.line));
      return Value{Type::Int()};
    }
  }

  // Builtins.
  auto builtin = Builtins().find(expr.name);
  if (builtin != Builtins().end() && LookupLocal(expr.name) == std::nullopt &&
      FindSignature(expr.name) == nullptr) {
    if (expr.name == "invoke") {
      // invoke(fnaddr, args...): indirect call through r2.
      if (expr.args.empty()) {
        return Error(expr.line, "invoke needs a function address");
      }
      int pushed = 0;
      for (size_t i = expr.args.size(); i-- > 1;) {
        KS_RETURN_IF_ERROR(EmitExpr(*expr.args[i]).status());
        Emit("push r0");
        ++pushed;
      }
      KS_RETURN_IF_ERROR(EmitExpr(*expr.args[0]).status());
      Emit("mov r2, r0");
      Emit("callr r2");
      if (pushed > 0) {
        Emit(ks::StrPrintf("add sp, %d", 4 * pushed));
      }
      return Value{Type::Int()};
    }
    KS_RETURN_IF_ERROR(EmitArgsToRegs(expr, builtin->second.arity));
    Emit(ks::StrPrintf("sys %d", builtin->second.sys));
    TypeRef ret = Type::Int();
    if (expr.name == "kmalloc") {
      ret = Type::PointerTo(Type::Char());
    }
    return Value{ret};
  }

  const FuncDecl* signature = FindSignature(expr.name);
  if (signature != nullptr &&
      expr.args.size() != signature->params.size()) {
    return Error(expr.line,
                 ks::StrPrintf("call to '%s' with %zu args, expected %zu",
                               expr.name.c_str(), expr.args.size(),
                               signature->params.size()));
  }

  // Inline expansion.
  const FuncDecl* def = FindDefinition(expr.name);
  if (def != nullptr && IsInlinable(*def) &&
      std::find(inline_stack_.begin(), inline_stack_.end(), expr.name) ==
          inline_stack_.end() &&
      inline_stack_.size() < 8) {
    inlined_functions_.insert(expr.name);
    return EmitInlineCall(*def, expr);
  }

  // Regular call: push args right-to-left with prototype conversions.
  for (size_t i = expr.args.size(); i-- > 0;) {
    KS_ASSIGN_OR_RETURN(Value arg, EmitExpr(*expr.args[i]));
    if (signature != nullptr) {
      EmitConvert(DecayType(arg.type), signature->params[i].type);
    }
    Emit("push r0");
  }
  Emit("call " + expr.name);
  if (!expr.args.empty()) {
    Emit(ks::StrPrintf("add sp, %zu", 4 * expr.args.size()));
  }
  TypeRef ret = signature != nullptr ? signature->ret : Type::Int();
  return Value{ret};
}

ks::Result<Value> Codegen::EmitInlineCall(const FuncDecl& callee,
                                          const Expr& expr) {
  // Evaluate arguments into fresh frame slots with prototype conversions,
  // then expand the body with a boundary scope mapping parameter names to
  // those slots. `return` jumps to a per-site label with the value in r0.
  Scope callee_scope;
  callee_scope.boundary = true;
  std::vector<int> slots;
  for (size_t i = 0; i < expr.args.size(); ++i) {
    KS_ASSIGN_OR_RETURN(Value arg, EmitExpr(*expr.args[i]));
    EmitConvert(DecayType(arg.type), callee.params[i].type);
    int slot = AllocSlot(4);
    slots.push_back(slot);
    Emit("mov r1, fp");
    Emit(ks::StrPrintf("add r1, %d", slot));
    Emit("store [r1], r0");
  }
  for (size_t i = 0; i < callee.params.size(); ++i) {
    callee_scope.vars[callee.params[i].name] =
        LocalInfo{callee.params[i].type, slots[i], ""};
  }

  std::string saved_return_label = return_label_;
  TypeRef saved_return_type = return_type_;
  std::vector<LoopLabels> saved_loops = std::move(loops_);
  loops_.clear();

  return_label_ = NewLabel();
  return_type_ = callee.ret;
  inline_stack_.push_back(callee.name);
  scopes_.push_back(std::move(callee_scope));

  ks::Status status = EmitStmt(*callee.body);

  scopes_.pop_back();
  inline_stack_.pop_back();
  EmitLabel(return_label_);
  return_label_ = std::move(saved_return_label);
  return_type_ = saved_return_type;
  loops_ = std::move(saved_loops);

  KS_RETURN_IF_ERROR(status);
  return Value{callee.ret};
}

// --------------------------------------------------------------------------
// Data

std::string Codegen::InternString(const std::string& value) {
  auto it = strings_.find(value);
  if (it != strings_.end()) {
    return it->second;
  }
  // Leading-dot names would be section-local labels to the assembler; use
  // a plain identifier so the literal becomes a proper (local) symbol.
  std::string symbol = ks::StrPrintf("str.h%08x", Fnv32(value));
  strings_[value] = symbol;
  return symbol;
}

std::string Codegen::InternBuildString(bool date) {
  std::string& symbol = date ? date_symbol_ : time_symbol_;
  if (symbol.empty()) {
    symbol = ks::StrPrintf("kbuild.%s.h%08x", date ? "date" : "time",
                           Fnv32(unit_.name));
  }
  return symbol;
}

ks::Status Codegen::EmitGlobal(const GlobalDecl& decl) {
  if (decl.is_extern) {
    return ks::OkStatus();  // import; the assembler interns on reference
  }
  KS_ASSIGN_OR_RETURN(int size, SizeOf(decl.type, decl.line));

  std::string chunk;
  auto header = [&](const char* segment) {
    chunk += std::string(segment) + "\n";
    if (!decl.is_static) {
      chunk += ".global " + decl.name + "\n";
    }
    chunk += decl.name + ":\n";
  };

  if (!decl.has_init) {
    header(".bss");
    chunk += ks::StrPrintf("    .space %d\n", size);
    data_ += chunk;
    return ks::OkStatus();
  }

  header(".data");
  bool char_elems =
      decl.type->IsChar() ||
      (decl.type->IsArray() && decl.type->pointee->IsChar());
  int emitted = 0;
  for (const InitElem& elem : decl.init) {
    switch (elem.kind) {
      case InitElem::Kind::kInt:
        if (char_elems) {
          chunk += ks::StrPrintf("    .byte %d\n",
                                 static_cast<int>(elem.int_value & 0xff));
          emitted += 1;
        } else {
          chunk += ks::StrPrintf("    .word %d\n",
                                 static_cast<int>(elem.int_value));
          emitted += 4;
        }
        break;
      case InitElem::Kind::kSym:
        if (char_elems) {
          return Error(decl.line, "symbol initializer in char array");
        }
        chunk += "    .word " + elem.symbol + "\n";
        emitted += 4;
        break;
      case InitElem::Kind::kStr: {
        if (!char_elems) {
          return Error(decl.line, "string initializer on non-char data");
        }
        std::string escaped;
        for (char c : elem.str_value) {
          switch (c) {
            case '\n':
              escaped += "\\n";
              break;
            case '\t':
              escaped += "\\t";
              break;
            case '"':
              escaped += "\\\"";
              break;
            case '\\':
              escaped += "\\\\";
              break;
            default:
              escaped += c;
          }
        }
        chunk += "    .asciz \"" + escaped + "\"\n";
        emitted += static_cast<int>(elem.str_value.size()) + 1;
        break;
      }
    }
  }
  if (emitted > size) {
    return Error(decl.line, ks::StrPrintf("initializer too large (%d > %d)",
                                          emitted, size));
  }
  if (emitted < size) {
    chunk += ks::StrPrintf("    .space %d\n", size - emitted);
  }
  data_ += chunk;
  return ks::OkStatus();
}

}  // namespace

ks::Result<std::string> GenerateAsm(const Unit& unit,
                                    const CodegenOptions& options) {
  Codegen codegen(unit, options);
  return codegen.Run();
}

ks::Result<std::vector<std::string>> InlinedFunctions(
    const Unit& unit, const CodegenOptions& options) {
  Codegen codegen(unit, options);
  KS_RETURN_IF_ERROR(codegen.Run().status());
  return std::vector<std::string>(codegen.inlined_functions().begin(),
                                  codegen.inlined_functions().end());
}

}  // namespace kcc
