// KC code generation: AST -> KVX assembly text.
//
// Properties that matter to Ksplice (and are exercised by the evaluation):
//
//  - Automatic inlining. A same-unit call to a function whose body is at
//    most `inline_threshold` AST nodes is expanded inline, whether or not
//    the function says `inline` (the keyword is only a hint, as with gcc —
//    paper §4.2). The decision depends only on the callee's body, so pre,
//    post, and run builds of identical code make identical decisions.
//
//  - Implicit conversions at call boundaries. Arguments and returns are
//    converted to the prototype's types (int -> char emits a mask
//    instruction in the *caller*), so changing a prototype in a header
//    changes callers' object code without touching their source (§3.1).
//
//  - Function-scope statics are mangled "name.N" (N = per-name ordinal in
//    the unit) with local binding; file-scope statics keep their name with
//    local binding. Either way, distinct units may define identically-named
//    local symbols — the ambiguity run-pre matching exists to resolve.
//
//  - String literals become local ".str.h<fnv32>" data symbols named by
//    content hash, so unrelated edits do not renumber them.
//
// The generator performs semantic analysis (scopes, types, struct layout)
// in the same pass; it emits one assembly function per KC function in
// declaration order, then data. Sectioning (-ffunction-sections) is the
// assembler's concern.

#ifndef KSPLICE_KCC_CODEGEN_H_
#define KSPLICE_KCC_CODEGEN_H_

#include <string>

#include "base/status.h"
#include "kcc/ast.h"

namespace kcc {

struct CodegenOptions {
  // Callee bodies up to this many AST nodes are inlined at same-unit call
  // sites. 0 disables inlining.
  int inline_threshold = 24;
  // Expansions of __DATE__ / __TIME__ (see CompileOptions).
  std::string build_date = "Jan  1 2026";
  std::string build_time = "00:00:00";
};

// Lowers `unit` to KVX assembly text.
ks::Result<std::string> GenerateAsm(const Unit& unit,
                                    const CodegenOptions& options);

// Returns the names of functions in `unit` that GenerateAsm would expand
// inline at some call site in `unit`, given `options`. Used by the
// evaluation to report the paper's §6.3 inlining statistics.
ks::Result<std::vector<std::string>> InlinedFunctions(
    const Unit& unit, const CodegenOptions& options);

}  // namespace kcc

#endif  // KSPLICE_KCC_CODEGEN_H_
