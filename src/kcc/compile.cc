#include "kcc/compile.h"

#include "base/faultinject.h"

#include <optional>

#include "base/metrics.h"
#include "base/strings.h"
#include "base/threadpool.h"
#include "base/trace.h"
#include "kcc/codegen.h"
#include "kcc/objcache.h"
#include "kcc/parser.h"
#include "kcc/preprocess.h"
#include "kvx/asm.h"

namespace kcc {

namespace {

kvx::AsmOptions ToAsmOptions(const CompileOptions& options) {
  kvx::AsmOptions out;
  out.function_sections = options.function_sections;
  out.data_sections = options.data_sections;
  out.func_align = options.func_align;
  return out;
}

// Publishes one real (non-cache-served) unit compile to the registry.
void CountCompiled(const kelf::ObjectFile& obj) {
  static ks::Counter& units = ks::Metrics().GetCounter("kcc.units_compiled");
  static ks::Counter& text_bytes =
      ks::Metrics().GetCounter("kcc.text_bytes_emitted");
  units.Add(1);
  uint64_t bytes = 0;
  for (const kelf::Section& section : obj.sections()) {
    if (section.kind == kelf::SectionKind::kText) {
      bytes += section.bytes.size();
    }
  }
  text_bytes.Add(bytes);
}

}  // namespace

bool IsCompilationUnit(const std::string& path) {
  return ks::EndsWith(path, ".kc") || ks::EndsWith(path, ".kvs");
}

ks::Result<Unit> ParseUnit(const kdiff::SourceTree& tree,
                           const std::string& path) {
  KS_ASSIGN_OR_RETURN(PreprocessedSource src, Preprocess(tree, path));
  return ParseSource(src.text, path);
}

ks::Result<std::string> CompileToAsm(const kdiff::SourceTree& tree,
                                     const std::string& path,
                                     const CompileOptions& options) {
  KS_ASSIGN_OR_RETURN(Unit unit, ParseUnit(tree, path));
  CodegenOptions cg;
  cg.inline_threshold = options.inline_threshold;
  cg.build_date = options.build_date;
  cg.build_time = options.build_time;
  return GenerateAsm(unit, cg);
}

ks::Result<kelf::ObjectFile> CompileUnit(const kdiff::SourceTree& tree,
                                         const std::string& path,
                                         const CompileOptions& options) {
  if (options.cache != nullptr) {
    // The cache strips itself from the options before compiling, so this
    // cannot recurse.
    return options.cache->GetOrCompile(tree, path, options);
  }
  KS_FAULT_POINT("kcc.compile");
  ks::TraceSpan span("kcc.compile_unit");
  span.Annotate("unit", path);
  if (ks::EndsWith(path, ".kvs")) {
    KS_ASSIGN_OR_RETURN(std::string source, tree.Read(path));
    ks::Result<kelf::ObjectFile> assembled =
        kvx::Assemble(source, path, ToAsmOptions(options));
    if (assembled.ok()) {
      CountCompiled(*assembled);
    }
    return assembled;
  }
  if (!ks::EndsWith(path, ".kc")) {
    return ks::InvalidArgument(
        ks::StrPrintf("%s is not a compilation unit", path.c_str()));
  }
  KS_ASSIGN_OR_RETURN(std::string asm_text, CompileToAsm(tree, path, options));
  ks::Result<kelf::ObjectFile> obj =
      kvx::Assemble(asm_text, path, ToAsmOptions(options));
  if (!obj.ok()) {
    // Assembler rejections of compiler output are kcc bugs; surface the
    // assembly for debugging.
    return ks::Internal(ks::StrPrintf(
        "internal: generated assembly for %s does not assemble: %s",
        path.c_str(), obj.status().message().c_str()));
  }
  CountCompiled(*obj);
  return obj;
}

ks::Result<std::vector<std::string>> IncludeClosure(
    const kdiff::SourceTree& tree, const std::string& path) {
  std::vector<std::string> closure{path};
  if (ks::EndsWith(path, ".kc")) {
    KS_ASSIGN_OR_RETURN(PreprocessedSource src, Preprocess(tree, path));
    for (std::string& include : src.includes) {
      closure.push_back(std::move(include));
    }
  }
  return closure;
}

ks::Result<std::vector<kelf::ObjectFile>> BuildTree(
    const kdiff::SourceTree& tree, const CompileOptions& options) {
  ks::TraceSpan span("kcc.build_tree");
  std::vector<std::string> units;
  for (const std::string& path : tree.Paths()) {
    if (IsCompilationUnit(path)) {
      units.push_back(path);
    }
  }
  if (units.empty()) {
    return ks::InvalidArgument("source tree has no compilation units");
  }
  span.Annotate("units", static_cast<uint64_t>(units.size()));
  // Fan out across units; each worker writes only its own slot, and the
  // reduce below walks slots in path order, so output (and the reported
  // error on failure) is identical for every worker count.
  std::vector<std::optional<ks::Result<kelf::ObjectFile>>> slots(
      units.size());
  ks::ParallelFor(options.jobs, units.size(), [&](size_t i) {
    slots[i] = CompileUnit(tree, units[i], options);
  });
  std::vector<kelf::ObjectFile> objects;
  objects.reserve(units.size());
  for (std::optional<ks::Result<kelf::ObjectFile>>& slot : slots) {
    if (!slot->ok()) {
      return slot->status();
    }
    objects.push_back(std::move(*slot).value());
  }
  return objects;
}

}  // namespace kcc
