#include "kcc/compile.h"

#include "base/strings.h"
#include "kcc/codegen.h"
#include "kcc/parser.h"
#include "kcc/preprocess.h"
#include "kvx/asm.h"

namespace kcc {

namespace {

kvx::AsmOptions ToAsmOptions(const CompileOptions& options) {
  kvx::AsmOptions out;
  out.function_sections = options.function_sections;
  out.data_sections = options.data_sections;
  out.func_align = options.func_align;
  return out;
}

}  // namespace

bool IsCompilationUnit(const std::string& path) {
  return ks::EndsWith(path, ".kc") || ks::EndsWith(path, ".kvs");
}

ks::Result<Unit> ParseUnit(const kdiff::SourceTree& tree,
                           const std::string& path) {
  KS_ASSIGN_OR_RETURN(PreprocessedSource src, Preprocess(tree, path));
  return ParseSource(src.text, path);
}

ks::Result<std::string> CompileToAsm(const kdiff::SourceTree& tree,
                                     const std::string& path,
                                     const CompileOptions& options) {
  KS_ASSIGN_OR_RETURN(Unit unit, ParseUnit(tree, path));
  CodegenOptions cg;
  cg.inline_threshold = options.inline_threshold;
  return GenerateAsm(unit, cg);
}

ks::Result<kelf::ObjectFile> CompileUnit(const kdiff::SourceTree& tree,
                                         const std::string& path,
                                         const CompileOptions& options) {
  if (ks::EndsWith(path, ".kvs")) {
    KS_ASSIGN_OR_RETURN(std::string source, tree.Read(path));
    return kvx::Assemble(source, path, ToAsmOptions(options));
  }
  if (!ks::EndsWith(path, ".kc")) {
    return ks::InvalidArgument(
        ks::StrPrintf("%s is not a compilation unit", path.c_str()));
  }
  KS_ASSIGN_OR_RETURN(std::string asm_text, CompileToAsm(tree, path, options));
  ks::Result<kelf::ObjectFile> obj =
      kvx::Assemble(asm_text, path, ToAsmOptions(options));
  if (!obj.ok()) {
    // Assembler rejections of compiler output are kcc bugs; surface the
    // assembly for debugging.
    return ks::Internal(ks::StrPrintf(
        "internal: generated assembly for %s does not assemble: %s",
        path.c_str(), obj.status().message().c_str()));
  }
  return obj;
}

ks::Result<std::vector<std::string>> IncludeClosure(
    const kdiff::SourceTree& tree, const std::string& path) {
  std::vector<std::string> closure{path};
  if (ks::EndsWith(path, ".kc")) {
    KS_ASSIGN_OR_RETURN(PreprocessedSource src, Preprocess(tree, path));
    for (std::string& include : src.includes) {
      closure.push_back(std::move(include));
    }
  }
  return closure;
}

ks::Result<std::vector<kelf::ObjectFile>> BuildTree(
    const kdiff::SourceTree& tree, const CompileOptions& options) {
  std::vector<kelf::ObjectFile> objects;
  for (const std::string& path : tree.Paths()) {
    if (!IsCompilationUnit(path)) {
      continue;
    }
    ks::Result<kelf::ObjectFile> obj = CompileUnit(tree, path, options);
    if (!obj.ok()) {
      return obj.status();
    }
    objects.push_back(std::move(obj).value());
  }
  if (objects.empty()) {
    return ks::InvalidArgument("source tree has no compilation units");
  }
  return objects;
}

}  // namespace kcc
