// kcc driver: compiles KC compilation units and whole source trees to kelf
// object files.
//
// A source tree contains:
//   *.kc   KC compilation units (preprocessed, parsed, lowered, assembled)
//   *.kvs  hand-written KVX assembly units (assembled directly — the
//          analogue of the kernel's ia32entry.S, §6.3)
//   *.h    headers, consumed via #include only
//
// Builds are deterministic: the same tree and options always produce the
// same object bytes. That determinism is what lets Ksplice's run-pre check
// succeed when given the source that actually built the running kernel.

#ifndef KSPLICE_KCC_COMPILE_H_
#define KSPLICE_KCC_COMPILE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "kcc/ast.h"
#include "kdiff/diff.h"
#include "kelf/objfile.h"

namespace kcc {

class ObjectCache;

struct CompileOptions {
  // -ffunction-sections / -fdata-sections (paper §3.2). Off reproduces the
  // monolithic layout running kernels were built with; on is what Ksplice
  // uses for pre/post builds.
  bool function_sections = false;
  bool data_sections = false;
  // Inlining threshold in AST nodes (see codegen.h). Must match between
  // the build that produced the running kernel and Ksplice's builds.
  int inline_threshold = 24;
  // Function alignment in text.
  uint32_t func_align = 8;
  // Values substituted for __DATE__ / __TIME__. They land in
  // .rodata.date / .rodata.time howto sections, which run-pre matching
  // compares content-ignoring: two builds of identical source that differ
  // only here still match (paper §4.3's date/time special case).
  std::string build_date = "Jan  1 2026";
  std::string build_time = "00:00:00";

  // Build-pipeline knobs; neither affects the produced object bytes.
  //
  // Worker threads for tree-level builds (BuildTree, pre-post builds);
  // 1 = serial, 0 = one per hardware thread.
  int jobs = 1;
  // Optional shared content-addressed cache (objcache.h). When set,
  // CompileUnit is served from the cache: a unit whose include-closure
  // contents and semantic options were compiled before is never
  // recompiled. The cache is thread-safe and may outlive many builds.
  ObjectCache* cache = nullptr;
};

// Compiles one .kc unit (with #include expansion) or assembles one .kvs
// unit from `tree`.
ks::Result<kelf::ObjectFile> CompileUnit(const kdiff::SourceTree& tree,
                                         const std::string& path,
                                         const CompileOptions& options);

// Lowers one .kc unit to assembly text (diagnostics / tests).
ks::Result<std::string> CompileToAsm(const kdiff::SourceTree& tree,
                                     const std::string& path,
                                     const CompileOptions& options);

// Parses one .kc unit (with #include expansion) without code generation.
ks::Result<Unit> ParseUnit(const kdiff::SourceTree& tree,
                           const std::string& path);

// The include closure of `path`: every file whose contents affect the
// unit's object code (the unit itself plus transitively included headers).
ks::Result<std::vector<std::string>> IncludeClosure(
    const kdiff::SourceTree& tree, const std::string& path);

// True if `path` names a compilation unit (.kc or .kvs, not a header).
bool IsCompilationUnit(const std::string& path);

// Compiles every compilation unit in `tree`, in path order.
ks::Result<std::vector<kelf::ObjectFile>> BuildTree(
    const kdiff::SourceTree& tree, const CompileOptions& options);

}  // namespace kcc

#endif  // KSPLICE_KCC_COMPILE_H_
