#include "kcc/lexer.h"

#include <array>

#include "base/strings.h"

namespace kcc {

namespace {

constexpr std::string_view kKeywords[] = {
    "int",    "char",  "void",   "struct", "static", "inline",
    "extern", "if",    "else",   "while",  "for",    "return",
    "break",  "continue", "sizeof",
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentCont(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9');
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Multi-character punctuators, longest first.
constexpr std::string_view kPuncts[] = {
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "->", "++", "--", "+",  "-",  "*",  "/",  "%",  "&",  "|",
    "^",  "~",  "!",  "<",  ">",  "=",  "(",  ")",  "{",  "}",
    "[",  "]",  ";",  ",",  ".",
};

ks::Result<char> UnescapeChar(std::string_view src, size_t& i,
                              const std::string& file, int line) {
  char c = src[i++];
  if (c != '\\') {
    return c;
  }
  if (i >= src.size()) {
    return ks::InvalidArgument(
        ks::StrPrintf("%s:%d: dangling escape", file.c_str(), line));
  }
  char e = src[i++];
  switch (e) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case '0':
      return '\0';
    case '\\':
      return '\\';
    case '\'':
      return '\'';
    case '"':
      return '"';
    default:
      return ks::InvalidArgument(
          ks::StrPrintf("%s:%d: bad escape '\\%c'", file.c_str(), line, e));
  }
}

}  // namespace

bool IsKeyword(std::string_view text) {
  for (std::string_view kw : kKeywords) {
    if (kw == text) {
      return true;
    }
  }
  return false;
}

ks::Result<std::vector<Token>> Lex(std::string_view src,
                                   const std::string& file) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i + 1 >= src.size()) {
        return ks::InvalidArgument(
            ks::StrPrintf("%s:%d: unterminated comment", file.c_str(), line));
      }
      i += 2;
      continue;
    }
    // Preprocessor lines reaching the lexer are a bug (see preprocess.cc).
    if (c == '#') {
      return ks::InvalidArgument(ks::StrPrintf(
          "%s:%d: unexpected '#' (unpreprocessed input?)", file.c_str(),
          line));
    }

    Token tok;
    tok.line = line;

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < src.size() && IsIdentCont(src[j])) {
        ++j;
      }
      tok.text = std::string(src.substr(i, j - i));
      tok.kind = IsKeyword(tok.text) ? TokKind::kKeyword : TokKind::kIdent;
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }

    if (IsDigit(c)) {
      int64_t value = 0;
      size_t j = i;
      if (c == '0' && j + 1 < src.size() &&
          (src[j + 1] == 'x' || src[j + 1] == 'X')) {
        j += 2;
        size_t start = j;
        while (j < src.size() &&
               (IsDigit(src[j]) || (src[j] >= 'a' && src[j] <= 'f') ||
                (src[j] >= 'A' && src[j] <= 'F'))) {
          char d = src[j];
          int digit = IsDigit(d) ? d - '0'
                      : d >= 'a' ? d - 'a' + 10
                                 : d - 'A' + 10;
          value = value * 16 + digit;
          ++j;
        }
        if (j == start) {
          return ks::InvalidArgument(
              ks::StrPrintf("%s:%d: bad hex literal", file.c_str(), line));
        }
      } else {
        while (j < src.size() && IsDigit(src[j])) {
          value = value * 10 + (src[j] - '0');
          ++j;
        }
      }
      if (j < src.size() && IsIdentStart(src[j])) {
        return ks::InvalidArgument(ks::StrPrintf(
            "%s:%d: bad numeric literal suffix", file.c_str(), line));
      }
      tok.kind = TokKind::kIntLit;
      tok.int_value = value;
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }

    if (c == '\'') {
      ++i;
      if (i >= src.size()) {
        return ks::InvalidArgument(ks::StrPrintf(
            "%s:%d: unterminated char literal", file.c_str(), line));
      }
      KS_ASSIGN_OR_RETURN(char value, UnescapeChar(src, i, file, line));
      if (i >= src.size() || src[i] != '\'') {
        return ks::InvalidArgument(ks::StrPrintf(
            "%s:%d: unterminated char literal", file.c_str(), line));
      }
      ++i;
      tok.kind = TokKind::kCharLit;
      tok.int_value = static_cast<uint8_t>(value);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {
      ++i;
      std::string value;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\n') {
          return ks::InvalidArgument(ks::StrPrintf(
              "%s:%d: newline in string literal", file.c_str(), line));
        }
        KS_ASSIGN_OR_RETURN(char ch, UnescapeChar(src, i, file, line));
        value.push_back(ch);
      }
      if (i >= src.size()) {
        return ks::InvalidArgument(ks::StrPrintf(
            "%s:%d: unterminated string literal", file.c_str(), line));
      }
      ++i;
      tok.kind = TokKind::kStrLit;
      tok.str_value = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Punctuators.
    bool matched = false;
    for (std::string_view punct : kPuncts) {
      if (src.substr(i).substr(0, punct.size()) == punct) {
        tok.kind = TokKind::kPunct;
        tok.text = std::string(punct);
        tokens.push_back(std::move(tok));
        i += punct.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      return ks::InvalidArgument(ks::StrPrintf(
          "%s:%d: unexpected character '%c'", file.c_str(), line, c));
    }
  }
  Token eof;
  eof.kind = TokKind::kEof;
  eof.line = line;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace kcc
