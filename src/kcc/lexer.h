// Lexer for KC, the kernel dialect compiled by kcc.
//
// KC is a small C subset: int/char scalars, pointers, arrays, structs,
// functions (with `static` and `inline`), file-scope and function-scope
// statics, string/char literals, and the usual statement and expression
// forms. See parser.h for the grammar.

#ifndef KSPLICE_KCC_LEXER_H_
#define KSPLICE_KCC_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"

namespace kcc {

enum class TokKind {
  kEof,
  kIdent,
  kIntLit,
  kCharLit,
  kStrLit,
  kPunct,    // operators and punctuation, text in `text`
  kKeyword,  // int, char, void, struct, if, ... text in `text`
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;     // identifier / punct / keyword spelling
  int64_t int_value = 0;  // kIntLit / kCharLit
  std::string str_value;  // kStrLit (unescaped, no quotes)
  int line = 0;
};

// Tokenizes `source`. `file` is used in error messages only.
ks::Result<std::vector<Token>> Lex(std::string_view source,
                                   const std::string& file);

// True if `text` is a KC keyword.
bool IsKeyword(std::string_view text);

}  // namespace kcc

#endif  // KSPLICE_KCC_LEXER_H_
