#include "kcc/objcache.h"

#include "base/faultinject.h"
#include "base/metrics.h"
#include "base/strings.h"

namespace kcc {

namespace {

uint64_t Fnv64(std::string_view data, uint64_t hash = 14695981039346656037u) {
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211u;
  }
  return hash;
}

uint64_t Fnv64Bytes(const std::vector<uint8_t>& bytes) {
  return Fnv64(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                bytes.size()));
}

// The content address: every file whose bytes reach the object (the unit
// plus its transitive includes, in preprocess order) and every option that
// changes codegen. `jobs` and `cache` are deliberately excluded.
ks::Result<std::string> CacheKey(const kdiff::SourceTree& tree,
                                 const std::string& path,
                                 const CompileOptions& options) {
  KS_ASSIGN_OR_RETURN(std::vector<std::string> closure,
                      IncludeClosure(tree, path));
  std::string key = ks::StrPrintf(
      "fs=%d ds=%d it=%d fa=%u bd=%s bt=%s |%s",
      options.function_sections ? 1 : 0, options.data_sections ? 1 : 0,
      options.inline_threshold, options.func_align,
      options.build_date.c_str(), options.build_time.c_str(), path.c_str());
  for (const std::string& dep : closure) {
    KS_ASSIGN_OR_RETURN(std::string contents, tree.Read(dep));
    key += ks::StrPrintf("|%s:%016llx", dep.c_str(),
                         static_cast<unsigned long long>(Fnv64(contents)));
  }
  return key;
}

}  // namespace

ks::Result<kelf::ObjectFile> ObjectCache::GetOrCompile(
    const kdiff::SourceTree& tree, const std::string& path,
    const CompileOptions& options, bool* was_hit) {
  // Registry instruments resolved once; the references stay valid for the
  // process lifetime (metrics.h).
  static ks::Counter& miss_counter =
      ks::Metrics().GetCounter("kcc.objcache.misses");

  CompileOptions uncached = options;
  uncached.cache = nullptr;
  if (was_hit != nullptr) {
    *was_hit = false;
  }

  ks::Result<std::string> key = CacheKey(tree, path, options);
  if (!key.ok()) {
    // Closure/read failures are uncacheable (no content to address); let
    // the compiler produce its own error for the same input.
    return CompileUnit(tree, path, uncached);
  }

  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = entries_[*key];
    if (slot == nullptr) {
      slot = std::make_shared<Entry>();
    }
    entry = slot;
    if (!entry->claimed) {
      entry->claimed = true;
      owner = true;
    }
  }

  if (owner) {
    misses_.fetch_add(1);
    miss_counter.Add(1);
    ks::Result<kelf::ObjectFile> compiled = CompileUnit(tree, path, uncached);
    std::lock_guard<std::mutex> lock(entry->mu);
    if (compiled.ok()) {
      // Persist the serialized object under a checksum, the way an
      // on-disk cache would. A failed write leaves the entry empty: the
      // next reader recompiles and heals it.
      ks::Status write_fault = ks::Faults().Check("kcc.objcache.write");
      if (write_fault.ok()) {
        entry->bytes = compiled->Serialize();
        entry->checksum = Fnv64Bytes(entry->bytes);
      } else {
        static ks::Counter& write_failures =
            ks::Metrics().GetCounter("kcc.objcache.write_failures");
        write_failures.Add(1);
      }
    } else {
      // Failed compiles are cached too — retrying identical input cannot
      // succeed.
      entry->error = compiled.status();
    }
    entry->ready = true;
    entry->ready_cv.notify_all();
    return compiled;
  }

  {
    std::unique_lock<std::mutex> lock(entry->mu);
    entry->ready_cv.wait(lock, [&entry] { return entry->ready; });
  }
  return ServeEntry(*entry, tree, path, uncached, was_hit);
}

ks::Result<kelf::ObjectFile> ObjectCache::ServeEntry(
    Entry& entry, const kdiff::SourceTree& tree, const std::string& path,
    const CompileOptions& uncached, bool* was_hit) {
  static ks::Counter& hit_counter =
      ks::Metrics().GetCounter("kcc.objcache.hits");
  static ks::Counter& miss_counter =
      ks::Metrics().GetCounter("kcc.objcache.misses");
  static ks::Counter& corrupt_counter =
      ks::Metrics().GetCounter("kcc.objcache.corrupt_entries");

  {
    std::lock_guard<std::mutex> lock(entry.mu);
    if (!entry.error.ok()) {
      hits_.fetch_add(1);
      hit_counter.Add(1);
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      return entry.error;
    }
    ks::Status read_fault = ks::Faults().Check("kcc.objcache.read");
    if (read_fault.ok() && !entry.bytes.empty() &&
        entry.checksum == Fnv64Bytes(entry.bytes)) {
      ks::Result<kelf::ObjectFile> parsed = kelf::ObjectFile::Parse(entry.bytes);
      if (parsed.ok()) {
        hits_.fetch_add(1);
        hit_counter.Add(1);
        if (was_hit != nullptr) {
          *was_hit = true;
        }
        return parsed;
      }
    }
  }
  // Corrupt, truncated, or unreadable entry: a damaged cache must cost at
  // most a recompile, never fail the lookup. Count it as a miss, rebuild
  // from source, and heal the entry in place.
  corrupt_counter.Add(1);
  misses_.fetch_add(1);
  miss_counter.Add(1);
  ks::Result<kelf::ObjectFile> compiled = CompileUnit(tree, path, uncached);
  if (compiled.ok()) {
    std::lock_guard<std::mutex> lock(entry.mu);
    entry.bytes = compiled->Serialize();
    entry.checksum = Fnv64Bytes(entry.bytes);
  }
  return compiled;
}

ks::Result<std::vector<uint8_t>> ObjectCache::GetOrComputeBlob(
    const std::string& key,
    const std::function<ks::Result<std::vector<uint8_t>>()>& compute,
    bool* was_hit) {
  static ks::Counter& hit_counter =
      ks::Metrics().GetCounter("kcc.objcache.blob_hits");
  static ks::Counter& miss_counter =
      ks::Metrics().GetCounter("kcc.objcache.blob_misses");
  static ks::Counter& corrupt_counter =
      ks::Metrics().GetCounter("kcc.objcache.corrupt_entries");

  if (was_hit != nullptr) {
    *was_hit = false;
  }

  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = blob_entries_[key];
    if (slot == nullptr) {
      slot = std::make_shared<Entry>();
    }
    entry = slot;
    if (!entry->claimed) {
      entry->claimed = true;
      owner = true;
    }
  }

  if (owner) {
    blob_misses_.fetch_add(1);
    miss_counter.Add(1);
    ks::Result<std::vector<uint8_t>> computed = compute();
    std::lock_guard<std::mutex> lock(entry->mu);
    if (computed.ok()) {
      entry->bytes = *computed;
      entry->checksum = Fnv64Bytes(entry->bytes);
    } else {
      entry->error = computed.status();
    }
    entry->ready = true;
    entry->ready_cv.notify_all();
    return computed;
  }

  {
    std::unique_lock<std::mutex> lock(entry->mu);
    entry->ready_cv.wait(lock, [&entry] { return entry->ready; });
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->error.ok()) {
      blob_hits_.fetch_add(1);
      hit_counter.Add(1);
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      return entry->error;
    }
    if (entry->checksum == Fnv64Bytes(entry->bytes)) {
      blob_hits_.fetch_add(1);
      hit_counter.Add(1);
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      return entry->bytes;
    }
  }
  // Checksum mismatch: recompute and heal, same contract as ServeEntry —
  // a damaged cache can cost a recompute but never fail the lookup.
  corrupt_counter.Add(1);
  blob_misses_.fetch_add(1);
  miss_counter.Add(1);
  ks::Result<std::vector<uint8_t>> computed = compute();
  if (computed.ok()) {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->bytes = *computed;
    entry->checksum = Fnv64Bytes(entry->bytes);
  }
  return computed;
}

size_t ObjectCache::CorruptEntriesForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t corrupted = 0;
  for (auto* map : {&entries_, &blob_entries_}) {
    for (auto& [key, entry] : *map) {
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      if (entry->ready && entry->error.ok() && !entry->bytes.empty()) {
        entry->bytes[entry->bytes.size() / 2] ^= 0x01;
        ++corrupted;
      }
    }
  }
  return corrupted;
}

size_t ObjectCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size() + blob_entries_.size();
}

void ObjectCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  blob_entries_.clear();
}

}  // namespace kcc
