#include "kcc/objcache.h"

#include "base/metrics.h"
#include "base/strings.h"

namespace kcc {

namespace {

uint64_t Fnv64(std::string_view data, uint64_t hash = 14695981039346656037u) {
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211u;
  }
  return hash;
}

// The content address: every file whose bytes reach the object (the unit
// plus its transitive includes, in preprocess order) and every option that
// changes codegen. `jobs` and `cache` are deliberately excluded.
ks::Result<std::string> CacheKey(const kdiff::SourceTree& tree,
                                 const std::string& path,
                                 const CompileOptions& options) {
  KS_ASSIGN_OR_RETURN(std::vector<std::string> closure,
                      IncludeClosure(tree, path));
  std::string key = ks::StrPrintf(
      "fs=%d ds=%d it=%d fa=%u |%s", options.function_sections ? 1 : 0,
      options.data_sections ? 1 : 0, options.inline_threshold,
      options.func_align, path.c_str());
  for (const std::string& dep : closure) {
    KS_ASSIGN_OR_RETURN(std::string contents, tree.Read(dep));
    key += ks::StrPrintf("|%s:%016llx", dep.c_str(),
                         static_cast<unsigned long long>(Fnv64(contents)));
  }
  return key;
}

}  // namespace

ks::Result<kelf::ObjectFile> ObjectCache::GetOrCompile(
    const kdiff::SourceTree& tree, const std::string& path,
    const CompileOptions& options, bool* was_hit) {
  // Registry instruments resolved once; the references stay valid for the
  // process lifetime (metrics.h).
  static ks::Counter& hit_counter =
      ks::Metrics().GetCounter("kcc.objcache.hits");
  static ks::Counter& miss_counter =
      ks::Metrics().GetCounter("kcc.objcache.misses");

  CompileOptions uncached = options;
  uncached.cache = nullptr;
  if (was_hit != nullptr) {
    *was_hit = false;
  }

  ks::Result<std::string> key = CacheKey(tree, path, options);
  if (!key.ok()) {
    // Closure/read failures are uncacheable (no content to address); let
    // the compiler produce its own error for the same input.
    return CompileUnit(tree, path, uncached);
  }

  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = entries_[*key];
    if (slot == nullptr) {
      slot = std::make_shared<Entry>();
    }
    entry = slot;
    if (!entry->claimed) {
      entry->claimed = true;
      owner = true;
    }
  }

  if (owner) {
    misses_.fetch_add(1);
    miss_counter.Add(1);
    ks::Result<kelf::ObjectFile> compiled = CompileUnit(tree, path, uncached);
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->result = std::move(compiled);
    entry->ready = true;
    entry->ready_cv.notify_all();
  } else {
    hits_.fetch_add(1);
    hit_counter.Add(1);
    if (was_hit != nullptr) {
      *was_hit = true;
    }
    std::unique_lock<std::mutex> lock(entry->mu);
    entry->ready_cv.wait(lock, [&entry] { return entry->ready; });
  }
  return *entry->result;
}

size_t ObjectCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ObjectCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace kcc
