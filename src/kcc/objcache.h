// Content-addressed object cache for the update-creation pipeline.
//
// Every §6-style evaluation sweep rebuilds the same pre kernel once per
// corpus entry and recompiles unchanged units across all the post builds.
// Object bytes are a pure function of (include-closure contents, semantic
// compile options) — kcc builds are deterministic by design (compile.h) —
// so compiled units can be shared by content address: the shared pre build
// is compiled once per sweep and identical post units are never rebuilt.
//
// Thread-safe. Concurrent misses on the same key latch on a per-entry
// monitor so each distinct key is compiled exactly once.
//
// Entries hold the object's *serialized* bytes guarded by a checksum, the
// way an on-disk cache would, and a corrupt or truncated entry is treated
// as a miss: the unit is recompiled from source and the entry healed in
// place. A damaged cache can cost a rebuild but can never fail a create or
// feed it wrong bytes.

#ifndef KSPLICE_KCC_OBJCACHE_H_
#define KSPLICE_KCC_OBJCACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kelf/objfile.h"

namespace kcc {

class ObjectCache {
 public:
  ObjectCache() = default;
  ObjectCache(const ObjectCache&) = delete;
  ObjectCache& operator=(const ObjectCache&) = delete;

  // Returns the cached object for (closure contents of `path`, semantic
  // fields of `options`), compiling on first use. Failed compiles are
  // cached too — retrying identical input cannot succeed. When `was_hit`
  // is non-null it is set to whether the result was served from a
  // previously computed entry (per-unit cache attribution for
  // CreateReport).
  ks::Result<kelf::ObjectFile> GetOrCompile(const kdiff::SourceTree& tree,
                                            const std::string& path,
                                            const CompileOptions& options,
                                            bool* was_hit = nullptr);

  // Generic content-addressed blob store sharing the cache's lifetime,
  // monitor latching and checksum discipline. `key` must already be a
  // content address (the caller hashes every input that reaches the
  // bytes); `compute` runs at most once per distinct key across all
  // threads, and its failures are cached like failed compiles. A corrupt
  // or truncated entry (checksum mismatch) is recomputed and healed in
  // place, exactly as GetOrCompile does for objects. kanalyze keys its
  // per-function side-effect summaries here so a lint, a create --lint
  // and a rollout gate in one process summarize each function body once.
  //
  // Blob traffic is accounted separately from object traffic (the
  // blob_hits/blob_misses accessors and the "kcc.objcache.blob_*"
  // counters), so exact-count object-cache tests stay undisturbed.
  ks::Result<std::vector<uint8_t>> GetOrComputeBlob(
      const std::string& key,
      const std::function<ks::Result<std::vector<uint8_t>>()>& compute,
      bool* was_hit = nullptr);

  uint64_t blob_hits() const { return blob_hits_.load(); }
  uint64_t blob_misses() const { return blob_misses_.load(); }

  // Statistics. A "miss" is a compile; a "hit" is a result served from a
  // previously computed entry (including one another thread is still
  // computing — the caller blocks until it is ready). Accounting is
  // atomic, incremented exactly once per GetOrCompile inside the cache,
  // and mirrored into the global metrics registry under
  // "kcc.objcache.hits" / "kcc.objcache.misses" — callers read either
  // view instead of recomputing their own tallies.
  uint64_t hits() const { return hits_.load(); }
  uint64_t misses() const { return misses_.load(); }
  size_t size() const;

  void Clear();

  // Flips one bit in every ready entry's stored bytes (chaos/robustness
  // tests), returning how many entries were damaged. Each corrupted entry
  // must be detected by its checksum and served as a miss.
  size_t CorruptEntriesForTest();

 private:
  struct Entry {
    std::mutex mu;
    std::condition_variable ready_cv;
    bool claimed = false;  // a thread owns the compile (set under cache mu)
    bool ready = false;
    ks::Status error;             // cached failed compile (ok == success)
    std::vector<uint8_t> bytes;   // serialized object (success only)
    uint64_t checksum = 0;        // FNV-64 over `bytes`
  };

  // Serves `entry` (which must be ready): parses the stored bytes after
  // a checksum pass, or recompiles and heals the entry when the read
  // fails. Does the hit/miss accounting for this lookup.
  ks::Result<kelf::ObjectFile> ServeEntry(Entry& entry,
                                          const kdiff::SourceTree& tree,
                                          const std::string& path,
                                          const CompileOptions& uncached,
                                          bool* was_hit);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  // Blob entries live in their own namespace so a summary key can never
  // collide with a compile key.
  std::map<std::string, std::shared_ptr<Entry>> blob_entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> blob_hits_{0};
  std::atomic<uint64_t> blob_misses_{0};
};

}  // namespace kcc

#endif  // KSPLICE_KCC_OBJCACHE_H_
