#include "kcc/parser.h"

#include <cassert>

#include "base/strings.h"

namespace kcc {

namespace {

// Hook spellings accepted at file scope (§5.3 of the paper).
const char* const kHookNames[] = {
    "ksplice_apply",       "ksplice_pre_apply",  "ksplice_post_apply",
    "ksplice_reverse",     "ksplice_pre_reverse", "ksplice_post_reverse",
};

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, std::string unit_name)
      : tokens_(tokens), unit_name_(std::move(unit_name)) {}

  ks::Result<Unit> Run();

 private:
  // Token access --------------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    size_t idx = pos_ + static_cast<size_t>(ahead);
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEof() const { return Peek().kind == TokKind::kEof; }

  bool CheckPunct(std::string_view text) const {
    return Peek().kind == TokKind::kPunct && Peek().text == text;
  }
  bool CheckKeyword(std::string_view text) const {
    return Peek().kind == TokKind::kKeyword && Peek().text == text;
  }
  bool MatchPunct(std::string_view text) {
    if (CheckPunct(text)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchKeyword(std::string_view text) {
    if (CheckKeyword(text)) {
      ++pos_;
      return true;
    }
    return false;
  }

  ks::Status Error(const std::string& message) const {
    return ks::InvalidArgument(ks::StrPrintf("%s:%d: %s", unit_name_.c_str(),
                                             Peek().line, message.c_str()));
  }
  ks::Status ExpectPunct(std::string_view text) {
    if (!MatchPunct(text)) {
      return Error(ks::StrPrintf("expected '%.*s', got '%s'",
                                 static_cast<int>(text.size()), text.data(),
                                 Peek().text.c_str()));
    }
    return ks::OkStatus();
  }
  ks::Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Error(ks::StrPrintf("expected identifier, got '%s'",
                                 Peek().text.c_str()));
    }
    return Advance().text;
  }

  // Types ----------------------------------------------------------------
  bool AtTypeStart() const {
    return CheckKeyword("int") || CheckKeyword("char") ||
           CheckKeyword("void") || CheckKeyword("struct");
  }
  ks::Result<TypeRef> ParseBaseType();
  ks::Result<TypeRef> ParsePointers(TypeRef base);

  // Top level -------------------------------------------------------------
  ks::Status ParseTop(Unit& unit);
  ks::Status ParseStructDef(Unit& unit);
  ks::Status ParseHook(Unit& unit);
  ks::Status ParseFunctionRest(Unit& unit, TypeRef ret, std::string name,
                               bool is_static, bool is_inline, int line);
  ks::Status ParseGlobalRest(Unit& unit, TypeRef type, std::string name,
                             bool is_static, bool is_extern, int line);
  ks::Result<std::vector<InitElem>> ParseInitializer(const TypeRef& type);
  ks::Result<InitElem> ParseInitElem();

  // Statements ------------------------------------------------------------
  ks::Result<StmtPtr> ParseStmt();
  ks::Result<StmtPtr> ParseBlock();

  // Expressions -----------------------------------------------------------
  ks::Result<ExprPtr> ParseExpr() { return ParseAssign(); }
  ks::Result<ExprPtr> ParseAssign();
  ks::Result<ExprPtr> ParseBinary(int min_prec);
  ks::Result<ExprPtr> ParseUnary();
  ks::Result<ExprPtr> ParsePostfix();
  ks::Result<ExprPtr> ParsePrimary();

  const std::vector<Token>& tokens_;
  std::string unit_name_;
  size_t pos_ = 0;
};

ks::Result<TypeRef> Parser::ParseBaseType() {
  if (MatchKeyword("int")) {
    return Type::Int();
  }
  if (MatchKeyword("char")) {
    return Type::Char();
  }
  if (MatchKeyword("void")) {
    return Type::Void();
  }
  if (MatchKeyword("struct")) {
    KS_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    return Type::Struct(std::move(name));
  }
  return Error("expected type");
}

ks::Result<TypeRef> Parser::ParsePointers(TypeRef base) {
  while (MatchPunct("*")) {
    base = Type::PointerTo(std::move(base));
  }
  return base;
}

ks::Result<Unit> Parser::Run() {
  Unit unit;
  unit.name = unit_name_;
  while (!AtEof()) {
    KS_RETURN_IF_ERROR(ParseTop(unit));
  }
  return unit;
}

ks::Status Parser::ParseTop(Unit& unit) {
  // struct definition: "struct NAME {" (otherwise it's a type use).
  if (CheckKeyword("struct") && Peek(1).kind == TokKind::kIdent &&
      Peek(2).kind == TokKind::kPunct && Peek(2).text == "{") {
    return ParseStructDef(unit);
  }
  // ksplice hook.
  if (Peek().kind == TokKind::kIdent) {
    for (const char* hook : kHookNames) {
      if (Peek().text == hook) {
        return ParseHook(unit);
      }
    }
  }

  bool is_static = false;
  bool is_extern = false;
  bool is_inline = false;
  while (true) {
    if (MatchKeyword("static")) {
      is_static = true;
    } else if (MatchKeyword("extern")) {
      is_extern = true;
    } else if (MatchKeyword("inline")) {
      is_inline = true;
    } else {
      break;
    }
  }
  int line = Peek().line;
  KS_ASSIGN_OR_RETURN(TypeRef base, ParseBaseType());
  KS_ASSIGN_OR_RETURN(TypeRef type, ParsePointers(std::move(base)));
  KS_ASSIGN_OR_RETURN(std::string name, ExpectIdent());

  if (CheckPunct("(")) {
    if (is_extern) {
      // `extern` on a prototype is redundant but legal.
      is_extern = false;
    }
    return ParseFunctionRest(unit, std::move(type), std::move(name),
                             is_static, is_inline, line);
  }
  if (is_inline) {
    return Error("'inline' is only valid on functions");
  }
  return ParseGlobalRest(unit, std::move(type), std::move(name), is_static,
                         is_extern, line);
}

ks::Status Parser::ParseStructDef(Unit& unit) {
  MatchKeyword("struct");
  KS_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
  int line = Peek().line;
  KS_RETURN_IF_ERROR(ExpectPunct("{"));
  StructDef def;
  def.name = std::move(name);
  def.line = line;
  while (!MatchPunct("}")) {
    KS_ASSIGN_OR_RETURN(TypeRef base, ParseBaseType());
    KS_ASSIGN_OR_RETURN(TypeRef type, ParsePointers(std::move(base)));
    KS_ASSIGN_OR_RETURN(std::string field, ExpectIdent());
    if (MatchPunct("[")) {
      if (Peek().kind != TokKind::kIntLit) {
        return Error("expected array length");
      }
      int len = static_cast<int>(Advance().int_value);
      KS_RETURN_IF_ERROR(ExpectPunct("]"));
      type = Type::ArrayOf(std::move(type), len);
    }
    KS_RETURN_IF_ERROR(ExpectPunct(";"));
    def.fields.push_back(StructField{std::move(type), std::move(field)});
  }
  KS_RETURN_IF_ERROR(ExpectPunct(";"));
  if (def.fields.empty()) {
    return Error("empty struct");
  }
  for (const StructDef& existing : unit.structs) {
    if (existing.name == def.name) {
      return Error(ks::StrPrintf("duplicate struct '%s'", def.name.c_str()));
    }
  }
  unit.structs.push_back(std::move(def));
  return ks::OkStatus();
}

ks::Status Parser::ParseHook(Unit& unit) {
  std::string spelling = Advance().text;
  KS_RETURN_IF_ERROR(ExpectPunct("("));
  KS_ASSIGN_OR_RETURN(std::string func, ExpectIdent());
  KS_RETURN_IF_ERROR(ExpectPunct(")"));
  KS_RETURN_IF_ERROR(ExpectPunct(";"));
  KspliceHook hook;
  hook.kind = spelling.substr(std::string("ksplice_").size());
  hook.func = std::move(func);
  hook.line = Peek().line;
  unit.hooks.push_back(std::move(hook));
  return ks::OkStatus();
}

ks::Status Parser::ParseFunctionRest(Unit& unit, TypeRef ret,
                                     std::string name, bool is_static,
                                     bool is_inline, int line) {
  KS_RETURN_IF_ERROR(ExpectPunct("("));
  FuncDecl fn;
  fn.ret = std::move(ret);
  fn.name = std::move(name);
  fn.is_static = is_static;
  fn.is_inline_kw = is_inline;
  fn.line = line;

  if (MatchKeyword("void") && CheckPunct(")")) {
    // (void): no parameters.
  } else if (!CheckPunct(")")) {
    // We may have consumed "void" as the base of "void *x".
    bool pending_void = tokens_[pos_ - 1].kind == TokKind::kKeyword &&
                        tokens_[pos_ - 1].text == "void" &&
                        !CheckPunct(")");
    bool first = true;
    while (true) {
      TypeRef base;
      if (first && pending_void) {
        base = Type::Void();
      } else {
        KS_ASSIGN_OR_RETURN(base, ParseBaseType());
      }
      first = false;
      KS_ASSIGN_OR_RETURN(TypeRef type, ParsePointers(std::move(base)));
      if (type->kind == Type::Kind::kVoid) {
        return Error("parameter of type void");
      }
      // Prototypes may omit parameter names.
      std::string pname;
      if (Peek().kind == TokKind::kIdent) {
        pname = Advance().text;
      }
      if (MatchPunct("[")) {
        KS_RETURN_IF_ERROR(ExpectPunct("]"));
        type = Type::PointerTo(std::move(type));  // array param decays
      }
      fn.params.push_back(ParamDecl{std::move(type), std::move(pname)});
      if (!MatchPunct(",")) {
        break;
      }
    }
  }
  KS_RETURN_IF_ERROR(ExpectPunct(")"));

  if (MatchPunct(";")) {
    fn.is_definition = false;
    unit.functions.push_back(std::move(fn));
    return ks::OkStatus();
  }
  KS_ASSIGN_OR_RETURN(fn.body, ParseBlock());
  fn.is_definition = true;
  fn.body_size = CountStmtNodes(*fn.body);
  unit.functions.push_back(std::move(fn));
  return ks::OkStatus();
}

ks::Status Parser::ParseGlobalRest(Unit& unit, TypeRef type, std::string name,
                                   bool is_static, bool is_extern, int line) {
  GlobalDecl decl;
  decl.is_static = is_static;
  decl.is_extern = is_extern;
  decl.line = line;

  if (MatchPunct("[")) {
    int len = -1;  // inferred from initializer
    if (Peek().kind == TokKind::kIntLit) {
      len = static_cast<int>(Advance().int_value);
    }
    KS_RETURN_IF_ERROR(ExpectPunct("]"));
    type = Type::ArrayOf(std::move(type), len);
  }
  decl.type = std::move(type);
  decl.name = std::move(name);

  if (MatchPunct("=")) {
    if (decl.is_extern) {
      return Error("extern declaration with initializer");
    }
    KS_ASSIGN_OR_RETURN(decl.init, ParseInitializer(decl.type));
    decl.has_init = true;
  }
  KS_RETURN_IF_ERROR(ExpectPunct(";"));

  // Fix inferred array lengths.
  if (decl.type->IsArray() && decl.type->array_len < 0) {
    if (!decl.has_init) {
      return Error(ks::StrPrintf("array '%s' has no size",
                                 decl.name.c_str()));
    }
    int len = 0;
    for (const InitElem& elem : decl.init) {
      len += elem.kind == InitElem::Kind::kStr
                 ? static_cast<int>(elem.str_value.size()) + 1
                 : 1;
    }
    auto fixed = std::make_shared<Type>(*decl.type);
    fixed->array_len = len;
    decl.type = fixed;
  }
  unit.globals.push_back(std::move(decl));
  return ks::OkStatus();
}

ks::Result<InitElem> Parser::ParseInitElem() {
  InitElem elem;
  if (Peek().kind == TokKind::kStrLit) {
    elem.kind = InitElem::Kind::kStr;
    elem.str_value = Advance().str_value;
    return elem;
  }
  // Symbol reference: bare identifier or &identifier.
  if (Peek().kind == TokKind::kIdent ||
      (CheckPunct("&") && Peek(1).kind == TokKind::kIdent)) {
    MatchPunct("&");
    elem.kind = InitElem::Kind::kSym;
    elem.symbol = Advance().text;
    return elem;
  }
  // Constant expression: parse and fold.
  KS_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
  if (expr->kind != Expr::Kind::kIntLit) {
    return Error("initializer is not a constant");
  }
  elem.kind = InitElem::Kind::kInt;
  elem.int_value = expr->int_value;
  return elem;
}

ks::Result<std::vector<InitElem>> Parser::ParseInitializer(
    const TypeRef& type) {
  std::vector<InitElem> elems;
  if (MatchPunct("{")) {
    if (!type->IsArray()) {
      return Error("brace initializer on non-array");
    }
    while (!CheckPunct("}")) {
      KS_ASSIGN_OR_RETURN(InitElem elem, ParseInitElem());
      elems.push_back(std::move(elem));
      if (!MatchPunct(",")) {
        break;
      }
    }
    KS_RETURN_IF_ERROR(ExpectPunct("}"));
    return elems;
  }
  KS_ASSIGN_OR_RETURN(InitElem elem, ParseInitElem());
  elems.push_back(std::move(elem));
  return elems;
}

// -------------------------------------------------------------------------
// Statements

ks::Result<StmtPtr> Parser::ParseBlock() {
  KS_RETURN_IF_ERROR(ExpectPunct("{"));
  auto block = std::make_unique<Stmt>();
  block->kind = Stmt::Kind::kBlock;
  block->line = Peek().line;
  while (!MatchPunct("}")) {
    if (AtEof()) {
      return Error("unterminated block");
    }
    KS_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStmt());
    block->stmts.push_back(std::move(stmt));
  }
  return block;
}

ks::Result<StmtPtr> Parser::ParseStmt() {
  int line = Peek().line;
  auto stmt = std::make_unique<Stmt>();
  stmt->line = line;

  if (CheckPunct("{")) {
    return ParseBlock();
  }
  if (MatchPunct(";")) {
    stmt->kind = Stmt::Kind::kEmpty;
    return stmt;
  }
  if (MatchKeyword("if")) {
    stmt->kind = Stmt::Kind::kIf;
    KS_RETURN_IF_ERROR(ExpectPunct("("));
    KS_ASSIGN_OR_RETURN(stmt->cond, ParseExpr());
    KS_RETURN_IF_ERROR(ExpectPunct(")"));
    KS_ASSIGN_OR_RETURN(stmt->then_body, ParseStmt());
    if (MatchKeyword("else")) {
      KS_ASSIGN_OR_RETURN(stmt->else_body, ParseStmt());
    }
    return stmt;
  }
  if (MatchKeyword("while")) {
    stmt->kind = Stmt::Kind::kWhile;
    KS_RETURN_IF_ERROR(ExpectPunct("("));
    KS_ASSIGN_OR_RETURN(stmt->cond, ParseExpr());
    KS_RETURN_IF_ERROR(ExpectPunct(")"));
    KS_ASSIGN_OR_RETURN(stmt->body, ParseStmt());
    return stmt;
  }
  if (MatchKeyword("for")) {
    stmt->kind = Stmt::Kind::kFor;
    KS_RETURN_IF_ERROR(ExpectPunct("("));
    if (!CheckPunct(";")) {
      KS_ASSIGN_OR_RETURN(stmt->init_stmt, ParseStmt());  // consumes ';'
    } else {
      MatchPunct(";");
    }
    if (!CheckPunct(";")) {
      KS_ASSIGN_OR_RETURN(stmt->cond, ParseExpr());
    }
    KS_RETURN_IF_ERROR(ExpectPunct(";"));
    if (!CheckPunct(")")) {
      KS_ASSIGN_OR_RETURN(stmt->step, ParseExpr());
    }
    KS_RETURN_IF_ERROR(ExpectPunct(")"));
    KS_ASSIGN_OR_RETURN(stmt->body, ParseStmt());
    return stmt;
  }
  if (MatchKeyword("return")) {
    stmt->kind = Stmt::Kind::kReturn;
    if (!CheckPunct(";")) {
      KS_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    }
    KS_RETURN_IF_ERROR(ExpectPunct(";"));
    return stmt;
  }
  if (MatchKeyword("break")) {
    stmt->kind = Stmt::Kind::kBreak;
    KS_RETURN_IF_ERROR(ExpectPunct(";"));
    return stmt;
  }
  if (MatchKeyword("continue")) {
    stmt->kind = Stmt::Kind::kContinue;
    KS_RETURN_IF_ERROR(ExpectPunct(";"));
    return stmt;
  }

  // Local declaration?
  bool is_static_local = false;
  if (CheckKeyword("static")) {
    is_static_local = true;
    MatchKeyword("static");
  }
  if (AtTypeStart()) {
    stmt->kind = Stmt::Kind::kDecl;
    stmt->is_static_local = is_static_local;
    KS_ASSIGN_OR_RETURN(TypeRef base, ParseBaseType());
    KS_ASSIGN_OR_RETURN(TypeRef type, ParsePointers(std::move(base)));
    KS_ASSIGN_OR_RETURN(stmt->decl_name, ExpectIdent());
    if (MatchPunct("[")) {
      if (Peek().kind != TokKind::kIntLit) {
        return Error("expected array length");
      }
      int len = static_cast<int>(Advance().int_value);
      KS_RETURN_IF_ERROR(ExpectPunct("]"));
      type = Type::ArrayOf(std::move(type), len);
    }
    stmt->decl_type = std::move(type);
    if (MatchPunct("=")) {
      KS_ASSIGN_OR_RETURN(stmt->init, ParseExpr());
    }
    KS_RETURN_IF_ERROR(ExpectPunct(";"));
    return stmt;
  }
  if (is_static_local) {
    return Error("expected declaration after 'static'");
  }

  stmt->kind = Stmt::Kind::kExpr;
  KS_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
  KS_RETURN_IF_ERROR(ExpectPunct(";"));
  return stmt;
}

// -------------------------------------------------------------------------
// Expressions

namespace {

// Binary operator precedence; higher binds tighter.
int Precedence(const std::string& op) {
  if (op == "||") return 1;
  if (op == "&&") return 2;
  if (op == "|") return 3;
  if (op == "^") return 4;
  if (op == "&") return 5;
  if (op == "==" || op == "!=") return 6;
  if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
  if (op == "<<" || op == ">>") return 8;
  if (op == "+" || op == "-") return 9;
  if (op == "*" || op == "/" || op == "%") return 10;
  return -1;
}

// Folds a binary op over constants; used opportunistically so that trivial
// arithmetic does not inflate AST size (and thus inlining decisions).
ExprPtr TryFold(std::string op, ExprPtr lhs, ExprPtr rhs, int line) {
  auto make = [&](int64_t v) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kIntLit;
    e->int_value = static_cast<int32_t>(v);
    e->line = line;
    return e;
  };
  if (lhs->kind == Expr::Kind::kIntLit && rhs->kind == Expr::Kind::kIntLit) {
    int64_t a = lhs->int_value;
    int64_t b = rhs->int_value;
    if (op == "+") return make(a + b);
    if (op == "-") return make(a - b);
    if (op == "*") return make(a * b);
    if (op == "/" && b != 0) return make(a / b);
    if (op == "%" && b != 0) return make(a % b);
    if (op == "&") return make(a & b);
    if (op == "|") return make(a | b);
    if (op == "^") return make(a ^ b);
    if (op == "<<" && b >= 0 && b < 32) return make(a << b);
    if (op == ">>" && b >= 0 && b < 32)
      return make(static_cast<int64_t>(static_cast<uint32_t>(a) >> b));
    if (op == "==") return make(a == b ? 1 : 0);
    if (op == "!=") return make(a != b ? 1 : 0);
    if (op == "<") return make(a < b ? 1 : 0);
    if (op == "<=") return make(a <= b ? 1 : 0);
    if (op == ">") return make(a > b ? 1 : 0);
    if (op == ">=") return make(a >= b ? 1 : 0);
  }
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = std::move(op);
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  e->line = line;
  return e;
}

}  // namespace

ks::Result<ExprPtr> Parser::ParseAssign() {
  KS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBinary(1));
  if (CheckPunct("=") || CheckPunct("+=") || CheckPunct("-=")) {
    std::string op = Advance().text;
    int line = Peek().line;
    KS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAssign());
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kAssign;
    e->op = std::move(op);
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    e->line = line;
    return e;
  }
  return lhs;
}

ks::Result<ExprPtr> Parser::ParseBinary(int min_prec) {
  KS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (Peek().kind == TokKind::kPunct) {
    int prec = Precedence(Peek().text);
    if (prec < min_prec) {
      break;
    }
    std::string op = Advance().text;
    int line = Peek().line;
    KS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBinary(prec + 1));
    lhs = TryFold(std::move(op), std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

ks::Result<ExprPtr> Parser::ParseUnary() {
  int line = Peek().line;
  if (CheckPunct("-") || CheckPunct("!") || CheckPunct("~") ||
      CheckPunct("*") || CheckPunct("&")) {
    std::string op = Advance().text;
    KS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    if (operand->kind == Expr::Kind::kIntLit && op != "*" && op != "&") {
      int64_t v = operand->int_value;
      operand->int_value = op == "-"   ? -v
                           : op == "!" ? (v == 0 ? 1 : 0)
                                       : static_cast<int32_t>(~v);
      return operand;
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kUnary;
    e->op = std::move(op);
    e->lhs = std::move(operand);
    e->line = line;
    return e;
  }
  // Cast: "(" type ")" unary
  if (CheckPunct("(") &&
      (Peek(1).kind == TokKind::kKeyword &&
       (Peek(1).text == "int" || Peek(1).text == "char" ||
        Peek(1).text == "void" || Peek(1).text == "struct"))) {
    MatchPunct("(");
    KS_ASSIGN_OR_RETURN(TypeRef base, ParseBaseType());
    KS_ASSIGN_OR_RETURN(TypeRef type, ParsePointers(std::move(base)));
    KS_RETURN_IF_ERROR(ExpectPunct(")"));
    KS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kCast;
    e->cast_type = std::move(type);
    e->lhs = std::move(operand);
    e->line = line;
    return e;
  }
  if (MatchKeyword("sizeof")) {
    KS_RETURN_IF_ERROR(ExpectPunct("("));
    KS_ASSIGN_OR_RETURN(TypeRef base, ParseBaseType());
    KS_ASSIGN_OR_RETURN(TypeRef type, ParsePointers(std::move(base)));
    KS_RETURN_IF_ERROR(ExpectPunct(")"));
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kSizeof;
    e->sizeof_type = std::move(type);
    e->line = line;
    return e;
  }
  return ParsePostfix();
}

ks::Result<ExprPtr> Parser::ParsePostfix() {
  KS_ASSIGN_OR_RETURN(ExprPtr expr, ParsePrimary());
  while (true) {
    int line = Peek().line;
    if (MatchPunct("[")) {
      KS_ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
      KS_RETURN_IF_ERROR(ExpectPunct("]"));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIndex;
      e->lhs = std::move(expr);
      e->rhs = std::move(index);
      e->line = line;
      expr = std::move(e);
      continue;
    }
    if (MatchPunct(".")) {
      KS_ASSIGN_OR_RETURN(std::string member, ExpectIdent());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kMember;
      e->lhs = std::move(expr);
      e->member = std::move(member);
      e->line = line;
      expr = std::move(e);
      continue;
    }
    if (MatchPunct("->")) {
      KS_ASSIGN_OR_RETURN(std::string member, ExpectIdent());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kArrow;
      e->lhs = std::move(expr);
      e->member = std::move(member);
      e->line = line;
      expr = std::move(e);
      continue;
    }
    if (CheckPunct("++") || CheckPunct("--")) {
      std::string op = Advance().text;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kPostIncDec;
      e->op = std::move(op);
      e->lhs = std::move(expr);
      e->line = line;
      expr = std::move(e);
      continue;
    }
    break;
  }
  return expr;
}

ks::Result<ExprPtr> Parser::ParsePrimary() {
  int line = Peek().line;
  if (Peek().kind == TokKind::kIntLit || Peek().kind == TokKind::kCharLit) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kIntLit;
    e->int_value = Advance().int_value;
    e->line = line;
    return e;
  }
  if (Peek().kind == TokKind::kStrLit) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kStrLit;
    e->str_value = Advance().str_value;
    e->line = line;
    return e;
  }
  if (MatchPunct("(")) {
    KS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    KS_RETURN_IF_ERROR(ExpectPunct(")"));
    return inner;
  }
  if (Peek().kind == TokKind::kIdent) {
    std::string name = Advance().text;
    if (MatchPunct("(")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kCall;
      e->name = std::move(name);
      e->line = line;
      if (!CheckPunct(")")) {
        while (true) {
          KS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
          if (!MatchPunct(",")) {
            break;
          }
        }
      }
      KS_RETURN_IF_ERROR(ExpectPunct(")"));
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kVar;
    e->name = std::move(name);
    e->line = line;
    return e;
  }
  return Error(ks::StrPrintf("unexpected token '%s'", Peek().text.c_str()));
}

}  // namespace

ks::Result<Unit> Parse(const std::vector<Token>& tokens,
                       std::string unit_name) {
  Parser parser(tokens, std::move(unit_name));
  return parser.Run();
}

ks::Result<Unit> ParseSource(std::string_view source, std::string unit_name) {
  KS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source, unit_name));
  return Parse(tokens, std::move(unit_name));
}

}  // namespace kcc
