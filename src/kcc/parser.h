// Recursive-descent parser for KC.
//
// Grammar (C subset):
//   unit        := top*
//   top         := struct_def | ksplice_hook | decl
//   struct_def  := "struct" IDENT "{" (type declarator ";")+ "}" ";"
//   ksplice_hook:= ("ksplice_apply" | "ksplice_pre_apply" | ...) "(" IDENT ")" ";"
//   decl        := quals type "*"* IDENT (func_rest | array_suffix global_rest)
//   quals       := ("static" | "extern" | "inline")*
//   func_rest   := "(" params ")" (";" | block)
//   global_rest := ("=" initializer)? ";"
//   initializer := const_expr | STRING | "{" init_elem ("," init_elem)* "}"
//
// Statements: blocks, if/else, while, for, return, break, continue, local
// declarations (with optional `static`), expression statements.
// Expressions: assignment (=, +=, -=), ||, &&, |, ^, &, ==/!=, relational,
// shifts, additive, multiplicative, unary (- ! ~ * &), casts, sizeof,
// postfix (call, index, ., ->, ++/--).

#ifndef KSPLICE_KCC_PARSER_H_
#define KSPLICE_KCC_PARSER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "kcc/ast.h"
#include "kcc/lexer.h"

namespace kcc {

// Parses a token stream into a Unit. `unit_name` labels the compilation
// unit (it becomes the object file's source_name).
ks::Result<Unit> Parse(const std::vector<Token>& tokens,
                       std::string unit_name);

// Convenience: lex and parse.
ks::Result<Unit> ParseSource(std::string_view source, std::string unit_name);

}  // namespace kcc

#endif  // KSPLICE_KCC_PARSER_H_
