#include "kcc/preprocess.h"

#include <set>

#include "base/strings.h"

namespace kcc {

namespace {

ks::Status Expand(const kdiff::SourceTree& tree, const std::string& path,
                  std::set<std::string>& seen, std::string& out,
                  std::vector<std::string>& includes, int depth) {
  if (depth > 32) {
    return ks::InvalidArgument(
        ks::StrPrintf("%s: include nesting too deep", path.c_str()));
  }
  ks::Result<std::string> contents = tree.Read(path);
  if (!contents.ok()) {
    return ks::Status(contents.status()).WithContext("preprocess");
  }
  int line_no = 0;
  for (const std::string& line : ks::SplitLines(*contents)) {
    ++line_no;
    std::string_view trimmed = ks::Trim(line);
    if (!ks::StartsWith(trimmed, "#")) {
      out += line;
      out += '\n';
      continue;
    }
    std::string_view rest = ks::Trim(trimmed.substr(1));
    if (!ks::StartsWith(rest, "include")) {
      return ks::InvalidArgument(ks::StrPrintf(
          "%s:%d: unsupported preprocessor directive '%s'", path.c_str(),
          line_no, std::string(trimmed).c_str()));
    }
    rest = ks::Trim(rest.substr(std::string("include").size()));
    if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"') {
      return ks::InvalidArgument(
          ks::StrPrintf("%s:%d: #include needs a quoted tree-relative path",
                        path.c_str(), line_no));
    }
    std::string target(rest.substr(1, rest.size() - 2));
    if (seen.count(target) != 0) {
      continue;  // include-once
    }
    seen.insert(target);
    includes.push_back(target);
    KS_RETURN_IF_ERROR(Expand(tree, target, seen, out, includes, depth + 1));
  }
  return ks::OkStatus();
}

}  // namespace

ks::Result<PreprocessedSource> Preprocess(const kdiff::SourceTree& tree,
                                          const std::string& path) {
  PreprocessedSource result;
  std::set<std::string> seen{path};
  KS_RETURN_IF_ERROR(
      Expand(tree, path, seen, result.text, result.includes, 0));
  return result;
}

}  // namespace kcc
