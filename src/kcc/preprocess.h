// Minimal preprocessor for KC: `#include "path"` textual inclusion from a
// SourceTree, include-once semantics, no macros.
//
// Headers are how the paper's §3.1 example arises: a patch that changes a
// prototype in a header changes the *object code* of every unit that
// includes it, even though those units' own source is untouched. The
// build system (ksplice::prepost) therefore recompiles a unit when any
// file in its include closure changed.

#ifndef KSPLICE_KCC_PREPROCESS_H_
#define KSPLICE_KCC_PREPROCESS_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "kdiff/diff.h"

namespace kcc {

struct PreprocessedSource {
  std::string text;                   // unit with includes spliced in
  std::vector<std::string> includes;  // files read, excluding the unit itself
};

// Expands `#include "path"` lines in `path` against `tree`. Include paths
// are tree-relative. Each file is included at most once per unit; cycles
// are therefore harmless. Lines of included files are passed through
// verbatim (they carry no file/line mapping; diagnostics cite the unit).
ks::Result<PreprocessedSource> Preprocess(const kdiff::SourceTree& tree,
                                          const std::string& path);

}  // namespace kcc

#endif  // KSPLICE_KCC_PREPROCESS_H_
