#include "kdiff/diff.h"

#include <algorithm>
#include <cassert>

#include "base/strings.h"

namespace kdiff {

namespace {

// Joins lines back into file contents. Every non-empty file is
// newline-terminated, matching kernel source conventions.
std::string JoinFile(const std::vector<std::string>& lines) {
  if (lines.empty()) {
    return "";
  }
  std::string out = ks::Join(lines, "\n");
  out += '\n';
  return out;
}

}  // namespace

ks::Result<std::string> SourceTree::Read(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return ks::NotFound(ks::StrPrintf("no such file: %s", path.c_str()));
  }
  return it->second;
}

std::vector<std::string> SourceTree::Paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, contents] : files_) {
    out.push_back(path);
  }
  return out;
}

std::vector<DiffOp> DiffLines(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int max = n + m;
  std::vector<DiffOp> ops;
  if (max == 0) {
    return ops;
  }

  // Myers' greedy algorithm, recording the frontier after each d for
  // backtracking. v is indexed by diagonal k + max.
  std::vector<std::vector<int>> trace;
  std::vector<int> v(static_cast<size_t>(2 * max + 1), 0);
  int final_d = -1;
  for (int d = 0; d <= max && final_d < 0; ++d) {
    trace.push_back(v);
    for (int k = -d; k <= d; k += 2) {
      size_t idx = static_cast<size_t>(k + max);
      int x;
      if (k == -d || (k != d && v[idx - 1] < v[idx + 1])) {
        x = v[idx + 1];
      } else {
        x = v[idx - 1] + 1;
      }
      int y = x - k;
      while (x < n && y < m && a[static_cast<size_t>(x)] ==
                                   b[static_cast<size_t>(y)]) {
        ++x;
        ++y;
      }
      v[idx] = x;
      if (x >= n && y >= m) {
        final_d = d;
        break;
      }
    }
  }
  assert(final_d >= 0);

  // Backtrack from (n, m) to (0, 0), emitting ops in reverse.
  std::vector<DiffOp> rev;
  int x = n;
  int y = m;
  for (int d = final_d; d > 0; --d) {
    const std::vector<int>& prev = trace[static_cast<size_t>(d)];
    int k = x - y;
    size_t idx = static_cast<size_t>(k + max);
    int prev_k;
    if (k == -d || (k != d && prev[idx - 1] < prev[idx + 1])) {
      prev_k = k + 1;  // came from an insertion (line of b)
    } else {
      prev_k = k - 1;  // came from a deletion (line of a)
    }
    int prev_x = trace[static_cast<size_t>(d)][static_cast<size_t>(prev_k + max)];
    int prev_y = prev_x - prev_k;
    while (x > prev_x && y > prev_y) {
      --x;
      --y;
      rev.push_back({DiffOp::Kind::kKeep, a[static_cast<size_t>(x)]});
    }
    if (prev_k == k + 1) {
      --y;
      rev.push_back({DiffOp::Kind::kInsert, b[static_cast<size_t>(y)]});
    } else {
      --x;
      rev.push_back({DiffOp::Kind::kDelete, a[static_cast<size_t>(x)]});
    }
  }
  while (x > 0 && y > 0) {
    --x;
    --y;
    rev.push_back({DiffOp::Kind::kKeep, a[static_cast<size_t>(x)]});
  }
  assert(x == 0 && y == 0);
  ops.assign(rev.rbegin(), rev.rend());
  return ops;
}

int Patch::ChangedLines() const {
  int count = 0;
  for (const FilePatch& file : files) {
    for (const Hunk& hunk : file.hunks) {
      for (const std::string& line : hunk.lines) {
        if (!line.empty() && (line[0] == '+' || line[0] == '-')) {
          ++count;
        }
      }
    }
  }
  return count;
}

std::vector<std::string> Patch::TouchedPaths() const {
  std::vector<std::string> out;
  out.reserve(files.size());
  for (const FilePatch& file : files) {
    out.push_back(file.path);
  }
  return out;
}

namespace {

// Renders hunks for one file's edit script.
void EmitFileDiff(std::string& out, const std::string& path,
                  const std::vector<DiffOp>& ops, int context, bool is_new,
                  bool is_delete) {
  out += is_new ? "--- /dev/null\n" : "--- a/" + path + "\n";
  out += is_delete ? "+++ /dev/null\n" : "+++ b/" + path + "\n";

  // Identify hunk ranges: indices of change ops, each extended by context.
  size_t i = 0;
  while (i < ops.size()) {
    if (ops[i].kind == DiffOp::Kind::kKeep) {
      ++i;
      continue;
    }
    // Start of a change group; extend backwards by `context` keeps.
    size_t start = i;
    size_t lead = 0;
    while (start > 0 && lead < static_cast<size_t>(context) &&
           ops[start - 1].kind == DiffOp::Kind::kKeep) {
      --start;
      ++lead;
    }
    // Extend forward: include changes, and up to 2*context keeps between
    // changes (merging close hunks), trailing `context` keeps at the end.
    size_t end = i;
    size_t last_change = i;
    while (end < ops.size()) {
      if (ops[end].kind != DiffOp::Kind::kKeep) {
        last_change = end;
        ++end;
        continue;
      }
      // Count the run of keeps.
      size_t run_start = end;
      while (end < ops.size() && ops[end].kind == DiffOp::Kind::kKeep) {
        ++end;
      }
      size_t run = end - run_start;
      if (end == ops.size() || run > static_cast<size_t>(2 * context)) {
        // Close the hunk after `context` keeps.
        end = run_start + std::min(run, static_cast<size_t>(context));
        break;
      }
      // else: the next change is close; keep going (keeps stay in hunk).
    }
    (void)last_change;

    // Compute line numbers: count a/b lines before `start`.
    int a_before = 0;
    int b_before = 0;
    for (size_t j = 0; j < start; ++j) {
      if (ops[j].kind != DiffOp::Kind::kInsert) {
        ++a_before;
      }
      if (ops[j].kind != DiffOp::Kind::kDelete) {
        ++b_before;
      }
    }
    int a_len = 0;
    int b_len = 0;
    std::string body;
    for (size_t j = start; j < end; ++j) {
      switch (ops[j].kind) {
        case DiffOp::Kind::kKeep:
          body += " " + ops[j].line + "\n";
          ++a_len;
          ++b_len;
          break;
        case DiffOp::Kind::kDelete:
          body += "-" + ops[j].line + "\n";
          ++a_len;
          break;
        case DiffOp::Kind::kInsert:
          body += "+" + ops[j].line + "\n";
          ++b_len;
          break;
      }
    }
    int a_start = a_len > 0 ? a_before + 1 : a_before;
    int b_start = b_len > 0 ? b_before + 1 : b_before;
    out += ks::StrPrintf("@@ -%d,%d +%d,%d @@\n", a_start, a_len, b_start,
                         b_len);
    out += body;
    i = end;
  }
}

}  // namespace

std::string MakeUnifiedDiff(const SourceTree& pre, const SourceTree& post,
                            int context) {
  std::string out;
  // Union of paths, sorted (both trees are std::map-backed).
  std::vector<std::string> paths = pre.Paths();
  for (const std::string& p : post.Paths()) {
    if (!pre.Exists(p)) {
      paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    bool in_pre = pre.Exists(path);
    bool in_post = post.Exists(path);
    std::vector<std::string> a =
        in_pre ? ks::SplitLines(*pre.Read(path)) : std::vector<std::string>{};
    std::vector<std::string> b = in_post ? ks::SplitLines(*post.Read(path))
                                         : std::vector<std::string>{};
    if (in_pre && in_post && a == b) {
      continue;
    }
    std::vector<DiffOp> ops = DiffLines(a, b);
    EmitFileDiff(out, path, ops, context, !in_pre, !in_post);
  }
  return out;
}

namespace {

// Strips "a/" or "b/" from a diff header path.
std::string CleanPath(std::string_view raw) {
  std::string_view path = ks::Trim(raw);
  // Headers may carry a timestamp after a tab.
  size_t tab = path.find('\t');
  if (tab != std::string_view::npos) {
    path = path.substr(0, tab);
  }
  if (ks::StartsWith(path, "a/") || ks::StartsWith(path, "b/")) {
    path = path.substr(2);
  }
  return std::string(path);
}

ks::Result<Hunk> ParseHunkHeader(const std::string& line) {
  // "@@ -a[,b] +c[,d] @@[ anything]"
  Hunk hunk;
  int a_start = 0;
  int a_len = 1;
  int b_start = 0;
  int b_len = 1;
  int consumed = 0;
  if (std::sscanf(line.c_str(), "@@ -%d,%d +%d,%d @@%n", &a_start, &a_len,
                  &b_start, &b_len, &consumed) == 4 &&
      consumed > 0) {
  } else if (std::sscanf(line.c_str(), "@@ -%d +%d,%d @@%n", &a_start,
                         &b_start, &b_len, &consumed) == 3 &&
             consumed > 0) {
    a_len = 1;
  } else if (std::sscanf(line.c_str(), "@@ -%d,%d +%d @@%n", &a_start, &a_len,
                         &b_start, &consumed) == 3 &&
             consumed > 0) {
    b_len = 1;
  } else if (std::sscanf(line.c_str(), "@@ -%d +%d @@%n", &a_start, &b_start,
                         &consumed) == 2 &&
             consumed > 0) {
    a_len = 1;
    b_len = 1;
  } else {
    return ks::InvalidArgument(
        ks::StrPrintf("bad hunk header: %s", line.c_str()));
  }
  hunk.a_start = a_start;
  hunk.a_len = a_len;
  hunk.b_start = b_start;
  hunk.b_len = b_len;
  return hunk;
}

}  // namespace

ks::Result<Patch> ParseUnifiedDiff(std::string_view text) {
  Patch patch;
  std::vector<std::string> lines = ks::SplitLines(text);
  size_t i = 0;
  while (i < lines.size()) {
    if (!ks::StartsWith(lines[i], "--- ")) {
      ++i;  // prose / git headers before the file header
      continue;
    }
    if (i + 1 >= lines.size() || !ks::StartsWith(lines[i + 1], "+++ ")) {
      return ks::InvalidArgument(
          ks::StrPrintf("'---' header without '+++' at line %zu", i + 1));
    }
    std::string a_path = CleanPath(std::string_view(lines[i]).substr(4));
    std::string b_path = CleanPath(std::string_view(lines[i + 1]).substr(4));
    FilePatch file;
    file.is_new = a_path == "/dev/null";
    file.is_delete = b_path == "/dev/null";
    if (file.is_new && file.is_delete) {
      return ks::InvalidArgument("patch with both sides /dev/null");
    }
    file.path = file.is_new ? b_path : a_path;
    i += 2;

    while (i < lines.size() && ks::StartsWith(lines[i], "@@")) {
      KS_ASSIGN_OR_RETURN(Hunk hunk, ParseHunkHeader(lines[i]));
      ++i;
      int a_seen = 0;
      int b_seen = 0;
      while (i < lines.size() && (a_seen < hunk.a_len || b_seen < hunk.b_len)) {
        const std::string& line = lines[i];
        if (ks::StartsWith(line, "\\ No newline")) {
          ++i;
          continue;
        }
        char tag = line.empty() ? ' ' : line[0];
        if (tag == ' ' || line.empty()) {
          ++a_seen;
          ++b_seen;
        } else if (tag == '-') {
          ++a_seen;
        } else if (tag == '+') {
          ++b_seen;
        } else {
          return ks::InvalidArgument(
              ks::StrPrintf("unexpected line in hunk: '%s'", line.c_str()));
        }
        hunk.lines.push_back(line.empty() ? std::string(" ") : line);
        ++i;
      }
      if (a_seen != hunk.a_len || b_seen != hunk.b_len) {
        return ks::InvalidArgument(ks::StrPrintf(
            "hunk for %s is truncated (have -%d/+%d, want -%d/+%d)",
            file.path.c_str(), a_seen, b_seen, hunk.a_len, hunk.b_len));
      }
      file.hunks.push_back(std::move(hunk));
    }
    if (file.hunks.empty()) {
      return ks::InvalidArgument(
          ks::StrPrintf("file %s has no hunks", file.path.c_str()));
    }
    patch.files.push_back(std::move(file));
  }
  if (patch.files.empty()) {
    return ks::InvalidArgument("patch contains no file diffs");
  }
  return patch;
}

namespace {

// The "before" lines of a hunk (keeps + deletes, prefixes stripped).
std::vector<std::string> HunkBefore(const Hunk& hunk) {
  std::vector<std::string> out;
  for (const std::string& line : hunk.lines) {
    if (line[0] == ' ' || line[0] == '-') {
      out.push_back(line.substr(1));
    }
  }
  return out;
}

bool MatchesAt(const std::vector<std::string>& lines, size_t pos,
               const std::vector<std::string>& expect) {
  if (pos + expect.size() > lines.size()) {
    return false;
  }
  for (size_t i = 0; i < expect.size(); ++i) {
    if (lines[pos + i] != expect[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

ks::Result<SourceTree> ApplyPatch(const SourceTree& pre, const Patch& patch) {
  SourceTree post = pre;
  for (const FilePatch& file : patch.files) {
    if (file.is_new) {
      if (pre.Exists(file.path)) {
        return ks::AlreadyExists(ks::StrPrintf(
            "patch creates %s which already exists", file.path.c_str()));
      }
      std::vector<std::string> contents;
      for (const Hunk& hunk : file.hunks) {
        for (const std::string& line : hunk.lines) {
          if (line[0] == '+') {
            contents.push_back(line.substr(1));
          } else {
            return ks::InvalidArgument(ks::StrPrintf(
                "new-file patch for %s has non-insert lines",
                file.path.c_str()));
          }
        }
      }
      post.Write(file.path, JoinFile(contents));
      continue;
    }

    ks::Result<std::string> contents = pre.Read(file.path);
    if (!contents.ok()) {
      return ks::Status(contents.status()).WithContext("applying patch");
    }
    std::vector<std::string> lines = ks::SplitLines(*contents);

    if (file.is_delete) {
      std::vector<std::string> expect;
      for (const Hunk& hunk : file.hunks) {
        for (const std::string& line : hunk.lines) {
          if (line[0] != '-') {
            return ks::InvalidArgument(ks::StrPrintf(
                "delete patch for %s has non-delete lines",
                file.path.c_str()));
          }
          expect.push_back(line.substr(1));
        }
      }
      if (lines != expect) {
        return ks::Aborted(ks::StrPrintf(
            "delete patch for %s does not match file contents",
            file.path.c_str()));
      }
      post.Remove(file.path);
      continue;
    }

    // Regular edit: apply hunks in order, tracking the line offset
    // introduced by earlier hunks.
    int offset = 0;
    for (size_t hi = 0; hi < file.hunks.size(); ++hi) {
      const Hunk& hunk = file.hunks[hi];
      std::vector<std::string> before = HunkBefore(hunk);
      // Position stated by the hunk, adjusted by previous hunks' drift.
      // a_start is 1-based; a pure-insert hunk inserts *after* a_start.
      long stated = hunk.a_len > 0 ? hunk.a_start - 1 : hunk.a_start;
      long pos = stated + offset;
      if (pos < 0 || !MatchesAt(lines, static_cast<size_t>(pos), before)) {
        // Search the file for a unique exact match.
        std::vector<size_t> matches;
        for (size_t p = 0; p + before.size() <= lines.size() + 1; ++p) {
          if (MatchesAt(lines, p, before)) {
            matches.push_back(p);
          }
        }
        if (matches.size() != 1) {
          return ks::Aborted(ks::StrPrintf(
              "hunk %zu for %s does not apply (%zu context matches)",
              hi + 1, file.path.c_str(), matches.size()));
        }
        pos = static_cast<long>(matches[0]);
      }
      // Splice: replace `before` at pos with the hunk's "after" lines.
      std::vector<std::string> after;
      for (const std::string& line : hunk.lines) {
        if (line[0] == ' ' || line[0] == '+') {
          after.push_back(line.substr(1));
        }
      }
      lines.erase(lines.begin() + pos,
                  lines.begin() + pos + static_cast<long>(before.size()));
      lines.insert(lines.begin() + pos, after.begin(), after.end());
      // Later hunks' stated positions refer to the original file; shift
      // them by the net lines this hunk inserted or removed.
      offset += static_cast<int>(after.size()) -
                static_cast<int>(before.size());
    }
    post.Write(file.path, JoinFile(lines));
  }
  return post;
}

ks::Result<SourceTree> ApplyUnifiedDiff(const SourceTree& pre,
                                        std::string_view diff_text) {
  KS_ASSIGN_OR_RETURN(Patch patch, ParseUnifiedDiff(diff_text));
  return ApplyPatch(pre, patch);
}

}  // namespace kdiff
