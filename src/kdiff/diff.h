// kdiff: source trees, line diffing, and the unified diff format.
//
// ksplice-create's input is "the original kernel source and a patch in the
// standard patch format, the unified diff patch format" (§5). This module
// supplies that interface: SourceTree models a kernel source tree, a Myers
// O(ND) differ produces minimal line scripts, and unified diffs can be
// rendered, parsed, and applied with context verification.

#ifndef KSPLICE_KDIFF_DIFF_H_
#define KSPLICE_KDIFF_DIFF_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace kdiff {

// An in-memory source tree: path -> file contents. Paths are
// '/'-separated relative paths ("drivers/dvb/dst_ca.kc").
class SourceTree {
 public:
  SourceTree() = default;

  void Write(std::string path, std::string contents) {
    files_[std::move(path)] = std::move(contents);
  }
  ks::Result<std::string> Read(const std::string& path) const;
  bool Exists(const std::string& path) const {
    return files_.count(path) != 0;
  }
  void Remove(const std::string& path) { files_.erase(path); }

  std::vector<std::string> Paths() const;
  size_t size() const { return files_.size(); }

  bool operator==(const SourceTree& other) const {
    return files_ == other.files_;
  }

 private:
  std::map<std::string, std::string> files_;
};

// One step of a minimal line edit script.
struct DiffOp {
  enum class Kind { kKeep, kDelete, kInsert };
  Kind kind = Kind::kKeep;
  std::string line;
};

// Myers O(ND) minimal diff between two line sequences.
std::vector<DiffOp> DiffLines(const std::vector<std::string>& a,
                              const std::vector<std::string>& b);

// A hunk of a unified diff. `lines` carry their ' '/'-'/'+' prefix.
struct Hunk {
  int a_start = 0;  // 1-based first line in the pre file (0 if a_len == 0)
  int a_len = 0;
  int b_start = 0;
  int b_len = 0;
  std::vector<std::string> lines;
};

struct FilePatch {
  std::string path;
  bool is_new = false;     // --- /dev/null
  bool is_delete = false;  // +++ /dev/null
  std::vector<Hunk> hunks;
};

struct Patch {
  std::vector<FilePatch> files;

  // Total changed lines (insertions + deletions), the paper's Figure 3
  // x-axis ("lines of code in the patch").
  int ChangedLines() const;
  // Paths touched by the patch.
  std::vector<std::string> TouchedPaths() const;
};

// Renders the unified diff transforming `pre` into `post` with `context`
// lines of context. Files present in only one tree become whole-file
// additions/deletions. Returns "" when the trees are identical.
std::string MakeUnifiedDiff(const SourceTree& pre, const SourceTree& post,
                            int context = 3);

// Parses a unified diff. Accepts "--- a/path" / "+++ b/path" and bare
// "--- path" headers; ignores any leading prose before the first header.
ks::Result<Patch> ParseUnifiedDiff(std::string_view text);

// Applies `patch` to `pre`, verifying every hunk's context. If a hunk does
// not match at its stated position, the whole pre file is searched for a
// unique exact match; zero or multiple matches fail the apply.
ks::Result<SourceTree> ApplyPatch(const SourceTree& pre, const Patch& patch);

// Convenience: parse and apply.
ks::Result<SourceTree> ApplyUnifiedDiff(const SourceTree& pre,
                                        std::string_view diff_text);

}  // namespace kdiff

#endif  // KSPLICE_KDIFF_DIFF_H_
