#include "kelf/link.h"

#include "base/faultinject.h"

#include <map>

#include "base/endian.h"
#include "base/strings.h"

namespace kelf {

namespace {

uint32_t AlignUp(uint32_t value, uint32_t align) {
  return (value + align - 1) & ~(align - 1);
}

// Layout pass ordering: code first, then initialized data and note metadata,
// then zero-initialized data. Mirrors a conventional kernel image layout.
int LayoutPass(SectionKind kind) {
  switch (kind) {
    case SectionKind::kText:
      return 0;
    case SectionKind::kData:
    case SectionKind::kNote:
      return 1;
    case SectionKind::kBss:
      return 2;
  }
  return 3;
}

}  // namespace

ks::Result<LinkedImage> Linker::Link(uint32_t base) const {
  KS_FAULT_POINT("kelf.link");
  for (const ObjectFile& obj : objects_) {
    ks::Status st = obj.Validate();
    if (!st.ok()) {
      return st.WithContext(
          ks::StrPrintf("linking %s", obj.source_name().c_str()));
    }
  }

  // Section addresses, indexed [object][section].
  std::vector<std::vector<uint32_t>> section_addr(objects_.size());
  for (size_t oi = 0; oi < objects_.size(); ++oi) {
    section_addr[oi].assign(objects_[oi].sections().size(), 0);
  }

  LinkedImage image;
  image.base = base;

  uint32_t cursor = base;
  for (int pass = 0; pass <= 2; ++pass) {
    for (size_t oi = 0; oi < objects_.size(); ++oi) {
      const ObjectFile& obj = objects_[oi];
      for (size_t si = 0; si < obj.sections().size(); ++si) {
        const Section& sec = obj.sections()[si];
        if (LayoutPass(sec.kind) != pass) {
          continue;
        }
        cursor = AlignUp(cursor, sec.align);
        section_addr[oi][si] = cursor;
        image.placements.push_back(PlacedSection{
            .unit = obj.source_name(),
            .name = sec.name,
            .kind = sec.kind,
            .howto = sec.howto,
            .address = cursor,
            .size = sec.size(),
        });
        cursor += sec.size();
      }
    }
  }
  image.bytes.assign(cursor - base, 0);

  // Copy section payloads (bss stays zero).
  {
    size_t placement_idx = 0;
    for (int pass = 0; pass <= 2; ++pass) {
      for (size_t oi = 0; oi < objects_.size(); ++oi) {
        const ObjectFile& obj = objects_[oi];
        for (size_t si = 0; si < obj.sections().size(); ++si) {
          const Section& sec = obj.sections()[si];
          if (LayoutPass(sec.kind) != pass) {
            continue;
          }
          uint32_t addr = section_addr[oi][si];
          if (!sec.bytes.empty()) {
            std::copy(sec.bytes.begin(), sec.bytes.end(),
                      image.bytes.begin() + (addr - base));
          }
          ++placement_idx;
        }
      }
    }
    (void)placement_idx;
  }

  // Global symbol table: name -> address. Duplicate globals are an error.
  std::map<std::string, uint32_t> globals;
  for (size_t oi = 0; oi < objects_.size(); ++oi) {
    const ObjectFile& obj = objects_[oi];
    for (const Symbol& sym : obj.symbols()) {
      if (!sym.defined() || sym.binding != SymbolBinding::kGlobal) {
        continue;
      }
      uint32_t addr =
          section_addr[oi][static_cast<size_t>(sym.section)] + sym.value;
      auto [it, inserted] = globals.emplace(sym.name, addr);
      if (!inserted) {
        return ks::AlreadyExists(ks::StrPrintf(
            "link: multiple definitions of global '%s' (second in %s)",
            sym.name.c_str(), obj.source_name().c_str()));
      }
    }
  }

  // Emit the kallsyms-like table: every defined symbol, locals included.
  for (size_t oi = 0; oi < objects_.size(); ++oi) {
    const ObjectFile& obj = objects_[oi];
    for (const Symbol& sym : obj.symbols()) {
      if (!sym.defined()) {
        continue;
      }
      image.symbols.push_back(LinkedSymbol{
          .name = sym.name,
          .address =
              section_addr[oi][static_cast<size_t>(sym.section)] + sym.value,
          .size = sym.size,
          .binding = sym.binding,
          .kind = sym.kind,
          .unit = obj.source_name(),
      });
    }
  }

  // Resolve relocations.
  for (size_t oi = 0; oi < objects_.size(); ++oi) {
    const ObjectFile& obj = objects_[oi];
    for (size_t si = 0; si < obj.sections().size(); ++si) {
      const Section& sec = obj.sections()[si];
      uint32_t sec_addr = section_addr[oi][si];
      for (const Relocation& rel : sec.relocs) {
        const Symbol& sym = obj.symbols()[static_cast<size_t>(rel.symbol)];
        uint32_t s_value = 0;
        if (sym.defined()) {
          s_value =
              section_addr[oi][static_cast<size_t>(sym.section)] + sym.value;
        } else {
          auto it = globals.find(sym.name);
          if (it != globals.end()) {
            s_value = it->second;
          } else if (external_resolver_) {
            std::optional<uint32_t> ext = external_resolver_(sym.name);
            if (!ext.has_value()) {
              return ks::NotFound(ks::StrPrintf(
                  "link: undefined symbol '%s' referenced from %s",
                  sym.name.c_str(), obj.source_name().c_str()));
            }
            s_value = *ext;
          } else {
            return ks::NotFound(ks::StrPrintf(
                "link: undefined symbol '%s' referenced from %s",
                sym.name.c_str(), obj.source_name().c_str()));
          }
        }
        uint32_t p = sec_addr + rel.offset;
        uint32_t word = 0;
        switch (rel.type) {
          case RelocType::kAbs32:
            word = s_value + static_cast<uint32_t>(rel.addend);
            break;
          case RelocType::kPcrel32:
            word = s_value + static_cast<uint32_t>(rel.addend) - p;
            break;
        }
        ks::WriteLe32(image.bytes.data() + (p - base), word);
      }
    }
  }

  return image;
}

}  // namespace kelf
