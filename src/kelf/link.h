// The kelf static linker: lays out object sections at image addresses and
// resolves relocations. Used both to produce the boot kernel image and, by
// the simulated kernel's module loader, to link modules against the live
// kernel's exported symbols.

#ifndef KSPLICE_KELF_LINK_H_
#define KSPLICE_KELF_LINK_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "kelf/objfile.h"

namespace kelf {

// One kallsyms-like entry of the linked image. Local symbols from different
// units may share names; the table preserves all of them.
struct LinkedSymbol {
  std::string name;
  uint32_t address = 0;
  uint32_t size = 0;
  SymbolBinding binding = SymbolBinding::kLocal;
  SymbolKind kind = SymbolKind::kNone;
  std::string unit;  // source_name of the defining object file
};

// Placement of one input section in the linked image.
struct PlacedSection {
  std::string unit;
  std::string name;
  SectionKind kind = SectionKind::kText;
  Howto howto = Howto::kNone;
  uint32_t address = 0;
  uint32_t size = 0;
};

// Result of a link: a flat byte image covering [base, base + bytes.size()),
// with bss materialized as zeroes, plus the symbol table and placements.
struct LinkedImage {
  uint32_t base = 0;
  std::vector<uint8_t> bytes;
  std::vector<LinkedSymbol> symbols;
  std::vector<PlacedSection> placements;

  uint32_t end() const {
    return base + static_cast<uint32_t>(bytes.size());
  }
};

class Linker {
 public:
  // Resolves imports that no added object defines (e.g. kernel exports when
  // linking a module). Returns the symbol's address, or nullopt if unknown.
  using ExternalResolver =
      std::function<std::optional<uint32_t>(const std::string&)>;

  void AddObject(ObjectFile object) {
    objects_.push_back(std::move(object));
  }

  void set_external_resolver(ExternalResolver resolver) {
    external_resolver_ = std::move(resolver);
  }

  // Lays out all added objects starting at `base` (text, then data/note,
  // then bss), resolves every relocation, and returns the image.
  // Errors: duplicate global definitions, unresolvable imports, malformed
  // objects.
  ks::Result<LinkedImage> Link(uint32_t base) const;

 private:
  std::vector<ObjectFile> objects_;
  ExternalResolver external_resolver_;
};

}  // namespace kelf

#endif  // KSPLICE_KELF_LINK_H_
