#include "kelf/objfile.h"

#include "base/faultinject.h"

#include <cstring>

#include "base/endian.h"
#include "base/strings.h"

namespace kelf {

namespace {

constexpr uint32_t kMagic = 0x4b454c46;  // "KELF"
// Version 2 added the per-section howto tag (one u8 after the section
// kind). Version-1 objects still parse; their howto is derived from the
// section-name convention so pre-howto objects mean the same thing.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

// Serialization writer: appends primitives to a byte vector.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>& out) : out_(out) {}

  void U8(uint8_t v) { out_.push_back(v); }
  void U32(uint32_t v) {
    size_t at = out_.size();
    out_.resize(at + 4);
    ks::WriteLe32(out_.data() + at, v);
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void Bytes(const std::vector<uint8_t>& b) {
    U32(static_cast<uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }

 private:
  std::vector<uint8_t>& out_;
};

// Serialization reader with bounds checking. Every length/offset read
// from the buffer is validated against the bytes actually *remaining*
// before it is dereferenced — the comparisons are written so an attacker-
// controlled (or bit-rotted) length cannot overflow the check itself.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& in) : in_(in) {}

  size_t Remaining() const { return in_.size() - pos_; }

  ks::Result<uint8_t> U8() {
    if (Remaining() < 1) {
      return ks::InvalidArgument("kelf: truncated object (u8)");
    }
    return in_[pos_++];
  }
  ks::Result<uint32_t> U32() {
    if (Remaining() < 4) {
      return ks::InvalidArgument("kelf: truncated object (u32)");
    }
    uint32_t v = ks::ReadLe32(in_.data() + pos_);
    pos_ += 4;
    return v;
  }
  ks::Result<int32_t> I32() {
    KS_ASSIGN_OR_RETURN(uint32_t v, U32());
    return static_cast<int32_t>(v);
  }
  ks::Result<std::string> Str() {
    KS_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > Remaining()) {
      return ks::InvalidArgument("kelf: truncated object (string)");
    }
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  ks::Result<std::vector<uint8_t>> Bytes() {
    KS_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > Remaining()) {
      return ks::InvalidArgument("kelf: truncated object (bytes)");
    }
    std::vector<uint8_t> b(in_.begin() + static_cast<long>(pos_),
                           in_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return b;
  }
  // Validates an element count against the bytes left, given the minimum
  // encoded size of one element. Rejecting count > remaining/min_size
  // keeps a corrupt count from driving a multi-gigabyte reserve() before
  // the per-element reads would catch the truncation.
  ks::Status CheckCount(uint32_t count, size_t min_element_size,
                        const char* what) {
    if (count > Remaining() / min_element_size) {
      return ks::InvalidArgument(
          ks::StrPrintf("kelf: %s count %u exceeds buffer", what, count));
    }
    return ks::OkStatus();
  }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  const std::vector<uint8_t>& in_;
  size_t pos_ = 0;
};

}  // namespace

Howto HowtoForSectionName(std::string_view name) {
  auto has_prefix = [&](std::string_view prefix) {
    return name.size() >= prefix.size() &&
           name.substr(0, prefix.size()) == prefix;
  };
  if (has_prefix(".extable")) {
    return Howto::kExtable;
  }
  if (has_prefix(".bug_table")) {
    return Howto::kBug;
  }
  if (has_prefix(".rodata.date")) {
    return Howto::kDate;
  }
  if (has_prefix(".rodata.time")) {
    return Howto::kTime;
  }
  return Howto::kNone;
}

const char* HowtoName(Howto howto) {
  switch (howto) {
    case Howto::kNone:
      return "none";
    case Howto::kExtable:
      return "extable";
    case Howto::kBug:
      return "bug";
    case Howto::kDate:
      return "date";
    case Howto::kTime:
      return "time";
  }
  return "none";
}

int ObjectFile::AddSection(Section section) {
  sections_.push_back(std::move(section));
  return static_cast<int>(sections_.size()) - 1;
}

std::optional<int> ObjectFile::FindSection(std::string_view name) const {
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

const Section* ObjectFile::SectionByName(std::string_view name) const {
  std::optional<int> idx = FindSection(name);
  return idx.has_value() ? &sections_[static_cast<size_t>(*idx)] : nullptr;
}

int ObjectFile::AddSymbol(Symbol symbol) {
  symbols_.push_back(std::move(symbol));
  return static_cast<int>(symbols_.size()) - 1;
}

int ObjectFile::InternUndefinedSymbol(const std::string& name) {
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (!symbols_[i].defined() && symbols_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  Symbol sym;
  sym.name = name;
  sym.binding = SymbolBinding::kGlobal;  // imports resolve globally
  sym.section = kUndefSection;
  return AddSymbol(std::move(sym));
}

ks::Result<int> ObjectFile::FindUniqueSymbol(std::string_view name) const {
  std::vector<int> hits = FindSymbols(name);
  if (hits.empty()) {
    return ks::NotFound(ks::StrPrintf("kelf: no symbol named '%.*s' in %s",
                                      static_cast<int>(name.size()),
                                      name.data(), source_name_.c_str()));
  }
  if (hits.size() > 1) {
    return ks::InvalidArgument(
        ks::StrPrintf("kelf: symbol '%.*s' is ambiguous in %s (%zu hits)",
                      static_cast<int>(name.size()), name.data(),
                      source_name_.c_str(), hits.size()));
  }
  return hits[0];
}

std::vector<int> ObjectFile::FindSymbols(std::string_view name) const {
  std::vector<int> hits;
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name == name) {
      hits.push_back(static_cast<int>(i));
    }
  }
  return hits;
}

std::optional<int> ObjectFile::DefiningSymbolForSection(int section) const {
  for (size_t i = 0; i < symbols_.size(); ++i) {
    const Symbol& sym = symbols_[i];
    if (sym.section == section && sym.value == 0 &&
        sym.kind != SymbolKind::kNone) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::vector<uint8_t> ObjectFile::Serialize() const {
  std::vector<uint8_t> out;
  Writer w(out);
  w.U32(kMagic);
  w.U32(kVersion);
  w.Str(source_name_);

  w.U32(static_cast<uint32_t>(sections_.size()));
  for (const Section& sec : sections_) {
    w.Str(sec.name);
    w.U8(static_cast<uint8_t>(sec.kind));
    w.U8(static_cast<uint8_t>(sec.howto));
    w.U32(sec.align);
    w.Bytes(sec.bytes);
    w.U32(sec.bss_size);
    w.U32(static_cast<uint32_t>(sec.relocs.size()));
    for (const Relocation& rel : sec.relocs) {
      w.U32(rel.offset);
      w.U8(static_cast<uint8_t>(rel.type));
      w.I32(rel.symbol);
      w.I32(rel.addend);
    }
  }

  w.U32(static_cast<uint32_t>(symbols_.size()));
  for (const Symbol& sym : symbols_) {
    w.Str(sym.name);
    w.U8(static_cast<uint8_t>(sym.binding));
    w.U8(static_cast<uint8_t>(sym.kind));
    w.I32(sym.section);
    w.U32(sym.value);
    w.U32(sym.size);
  }
  return out;
}

ks::Result<ObjectFile> ObjectFile::Parse(const std::vector<uint8_t>& bytes) {
  KS_FAULT_POINT("kelf.objfile.parse");
  Reader r(bytes);
  KS_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) {
    return ks::InvalidArgument("kelf: bad magic");
  }
  KS_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version < kMinVersion || version > kVersion) {
    return ks::InvalidArgument(
        ks::StrPrintf("kelf: unsupported version %u", version));
  }
  ObjectFile obj;
  KS_ASSIGN_OR_RETURN(obj.source_name_, r.Str());

  KS_ASSIGN_OR_RETURN(uint32_t num_sections, r.U32());
  KS_RETURN_IF_ERROR(
      r.CheckCount(num_sections, version >= 2 ? 22 : 21, "section"));
  obj.sections_.reserve(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    Section sec;
    KS_ASSIGN_OR_RETURN(sec.name, r.Str());
    KS_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    if (kind > static_cast<uint8_t>(SectionKind::kNote)) {
      return ks::InvalidArgument("kelf: bad section kind");
    }
    sec.kind = static_cast<SectionKind>(kind);
    if (version >= 2) {
      KS_ASSIGN_OR_RETURN(uint8_t howto, r.U8());
      if (howto > static_cast<uint8_t>(Howto::kTime)) {
        return ks::InvalidArgument("kelf: bad section howto");
      }
      sec.howto = static_cast<Howto>(howto);
    } else {
      sec.howto = HowtoForSectionName(sec.name);
    }
    KS_ASSIGN_OR_RETURN(sec.align, r.U32());
    KS_ASSIGN_OR_RETURN(sec.bytes, r.Bytes());
    KS_ASSIGN_OR_RETURN(sec.bss_size, r.U32());
    KS_ASSIGN_OR_RETURN(uint32_t num_relocs, r.U32());
    KS_RETURN_IF_ERROR(r.CheckCount(num_relocs, 13, "relocation"));
    sec.relocs.reserve(num_relocs);
    for (uint32_t j = 0; j < num_relocs; ++j) {
      Relocation rel;
      KS_ASSIGN_OR_RETURN(rel.offset, r.U32());
      KS_ASSIGN_OR_RETURN(uint8_t type, r.U8());
      if (type > static_cast<uint8_t>(RelocType::kPcrel32)) {
        return ks::InvalidArgument("kelf: bad relocation type");
      }
      rel.type = static_cast<RelocType>(type);
      KS_ASSIGN_OR_RETURN(rel.symbol, r.I32());
      KS_ASSIGN_OR_RETURN(rel.addend, r.I32());
      sec.relocs.push_back(rel);
    }
    obj.sections_.push_back(std::move(sec));
  }

  KS_ASSIGN_OR_RETURN(uint32_t num_symbols, r.U32());
  KS_RETURN_IF_ERROR(r.CheckCount(num_symbols, 18, "symbol"));
  obj.symbols_.reserve(num_symbols);
  for (uint32_t i = 0; i < num_symbols; ++i) {
    Symbol sym;
    KS_ASSIGN_OR_RETURN(sym.name, r.Str());
    KS_ASSIGN_OR_RETURN(uint8_t binding, r.U8());
    if (binding > static_cast<uint8_t>(SymbolBinding::kGlobal)) {
      return ks::InvalidArgument("kelf: bad symbol binding");
    }
    sym.binding = static_cast<SymbolBinding>(binding);
    KS_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    if (kind > static_cast<uint8_t>(SymbolKind::kObject)) {
      return ks::InvalidArgument("kelf: bad symbol kind");
    }
    sym.kind = static_cast<SymbolKind>(kind);
    KS_ASSIGN_OR_RETURN(sym.section, r.I32());
    KS_ASSIGN_OR_RETURN(sym.value, r.U32());
    KS_ASSIGN_OR_RETURN(sym.size, r.U32());
    obj.symbols_.push_back(std::move(sym));
  }

  if (!r.AtEnd()) {
    return ks::InvalidArgument("kelf: trailing bytes after object");
  }
  KS_RETURN_IF_ERROR(obj.Validate());
  return obj;
}

ks::Status ObjectFile::Validate() const {
  int num_sections = static_cast<int>(sections_.size());
  for (size_t si = 0; si < sections_.size(); ++si) {
    const Section& sec = sections_[si];
    if (sec.kind == SectionKind::kBss && !sec.bytes.empty()) {
      return ks::InvalidArgument(ks::StrPrintf(
          "kelf: bss section '%s' carries bytes", sec.name.c_str()));
    }
    if (sec.kind != SectionKind::kBss && sec.bss_size != 0) {
      return ks::InvalidArgument(ks::StrPrintf(
          "kelf: non-bss section '%s' has bss_size", sec.name.c_str()));
    }
    if (sec.align == 0 || (sec.align & (sec.align - 1)) != 0) {
      return ks::InvalidArgument(ks::StrPrintf(
          "kelf: section '%s' alignment %u is not a power of two",
          sec.name.c_str(), sec.align));
    }
    if (sec.howto != Howto::kNone && sec.kind != SectionKind::kData) {
      return ks::InvalidArgument(ks::StrPrintf(
          "kelf: howto section '%s' must be data (kind %u)",
          sec.name.c_str(), static_cast<unsigned>(sec.kind)));
    }
    if (sec.howto == Howto::kExtable || sec.howto == Howto::kBug) {
      if (sec.size() % kHowtoEntrySize != 0) {
        return ks::InvalidArgument(ks::StrPrintf(
            "kelf: %s section '%s' size %u is not a multiple of %u",
            HowtoName(sec.howto), sec.name.c_str(), sec.size(),
            kHowtoEntrySize));
      }
      for (const Relocation& rel : sec.relocs) {
        if (rel.type != RelocType::kAbs32 || rel.offset % 4 != 0) {
          return ks::InvalidArgument(ks::StrPrintf(
              "kelf: %s section '%s' has a non-abs32 or misaligned "
              "relocation at %u",
              HowtoName(sec.howto), sec.name.c_str(), rel.offset));
        }
      }
    }
    for (const Relocation& rel : sec.relocs) {
      if (rel.symbol < 0 || rel.symbol >= static_cast<int>(symbols_.size())) {
        return ks::InvalidArgument(ks::StrPrintf(
            "kelf: relocation in '%s' names symbol %d out of range",
            sec.name.c_str(), rel.symbol));
      }
      // Written overflow-safe: `rel.offset + 4` would wrap to a small
      // value for offsets near UINT32_MAX and pass the check.
      if (sec.size() < 4 || rel.offset > sec.size() - 4) {
        return ks::InvalidArgument(ks::StrPrintf(
            "kelf: relocation at %u overruns section '%s' (size %u)",
            rel.offset, sec.name.c_str(), sec.size()));
      }
      if (sec.kind == SectionKind::kBss) {
        return ks::InvalidArgument(ks::StrPrintf(
            "kelf: bss section '%s' has relocations", sec.name.c_str()));
      }
    }
  }
  for (const Symbol& sym : symbols_) {
    if (sym.defined()) {
      if (sym.section < 0 || sym.section >= num_sections) {
        return ks::InvalidArgument(ks::StrPrintf(
            "kelf: symbol '%s' names section %d out of range",
            sym.name.c_str(), sym.section));
      }
      const Section& sec = sections_[static_cast<size_t>(sym.section)];
      if (sym.value > sec.size()) {
        return ks::InvalidArgument(ks::StrPrintf(
            "kelf: symbol '%s' offset %u beyond section '%s' (size %u)",
            sym.name.c_str(), sym.value, sec.name.c_str(), sec.size()));
      }
    }
    if (sym.name.empty()) {
      return ks::InvalidArgument("kelf: symbol with empty name");
    }
  }
  return ks::OkStatus();
}

}  // namespace kelf
