// kelf: the object-file format of the Ksplice reproduction.
//
// kelf models the slice of ELF semantics that Ksplice's techniques operate
// on: named sections carrying bytes, a symbol table with local and global
// bindings, and relocations with explicit addends (RELA-style). The
// compiler (kcc) and assembler (kvx) emit kelf objects; the linker in this
// directory lays them out and resolves relocations; the Ksplice core reads
// pre/post kelf objects and the run image.
//
// Faithfulness notes (vs. ELF as used in the paper):
//  - Section-per-function and section-per-datum naming follows gcc's
//    -ffunction-sections convention: ".text.<func>", ".data.<var>",
//    ".bss.<var>". A monolithic build emits a single ".text"/".data"/".bss".
//  - Local symbols may share names across compilation units (the paper's
//    "notesize"/"debug" ambiguity); nothing in kelf deduplicates them.
//  - Relocation value algebra matches ELF: ABS32 stores S+A, PCREL32 stores
//    S+A-P, where P is the address of the to-be-relocated word.

#ifndef KSPLICE_KELF_OBJFILE_H_
#define KSPLICE_KELF_OBJFILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace kelf {

inline constexpr int kUndefSection = -1;

enum class SymbolBinding : uint8_t { kLocal = 0, kGlobal = 1 };
enum class SymbolKind : uint8_t { kNone = 0, kFunction = 1, kObject = 2 };

// One entry in an object file's symbol table. Defined symbols name an
// (section, offset) pair; undefined symbols (section == kUndefSection) are
// imports to be resolved at link time.
struct Symbol {
  std::string name;
  SymbolBinding binding = SymbolBinding::kLocal;
  SymbolKind kind = SymbolKind::kNone;
  int section = kUndefSection;  // index into ObjectFile::sections
  uint32_t value = 0;           // offset within the section
  uint32_t size = 0;            // bytes covered (0 if unknown)

  bool defined() const { return section != kUndefSection; }
};

enum class RelocType : uint8_t {
  kAbs32 = 0,    // word = S + A
  kPcrel32 = 1,  // word = S + A - P
};

// RELA-style relocation: patches the 32-bit word at `offset` within the
// owning section using symbol `symbol` (index into the symbol table) and
// explicit addend.
struct Relocation {
  uint32_t offset = 0;
  RelocType type = RelocType::kAbs32;
  int symbol = -1;
  int32_t addend = 0;
};

enum class SectionKind : uint8_t {
  kText = 0,  // executable code
  kData = 1,  // initialized data
  kBss = 2,   // zero-initialized data (bytes empty; size in bss_size)
  kNote = 3,  // metadata consumed by tooling (.ksplice.* hook tables)
};

// Howto tag: how a section's contents must be compared and patched. Text
// and ordinary data stay kNone (byte-wise semantics). The special kinds
// mirror Ksplice's KSPLICE_HOWTO_{EXTABLE,BUG,DATE,TIME}: table sections
// are sequences of 8-byte entries matched structurally under relocation,
// and build-timestamp strings legitimately differ between builds, so
// run-pre matching ignores their content entirely.
enum class Howto : uint8_t {
  kNone = 0,     // ordinary bytes: compare literally
  kExtable = 1,  // exception table: 8-byte (insn addr, fixup addr) entries
  kBug = 2,      // bug table: 8-byte (trap addr, source line) entries
  kDate = 3,     // __DATE__ string: content-ignoring match
  kTime = 4,     // __TIME__ string: content-ignoring match
};

// Maps a section name to its howto tag by prefix convention:
// ".extable*" -> kExtable, ".bug_table*" -> kBug, ".rodata.date*" ->
// kDate, ".rodata.time*" -> kTime, anything else -> kNone.
Howto HowtoForSectionName(std::string_view name);

// Human-readable tag name ("extable", "bug", "date", "time", "none").
const char* HowtoName(Howto howto);

// Size in bytes of one table entry for kExtable/kBug sections.
inline constexpr uint32_t kHowtoEntrySize = 8;

struct Section {
  std::string name;
  SectionKind kind = SectionKind::kText;
  Howto howto = Howto::kNone;
  uint32_t align = 1;
  std::vector<uint8_t> bytes;  // empty for kBss
  uint32_t bss_size = 0;       // only meaningful for kBss
  std::vector<Relocation> relocs;

  uint32_t size() const {
    return kind == SectionKind::kBss ? bss_size
                                     : static_cast<uint32_t>(bytes.size());
  }
};

// A relocatable object file: the unit of pre/post comparison.
class ObjectFile {
 public:
  ObjectFile() = default;
  explicit ObjectFile(std::string source_name)
      : source_name_(std::move(source_name)) {}

  const std::string& source_name() const { return source_name_; }
  void set_source_name(std::string name) { source_name_ = std::move(name); }

  // Sections -----------------------------------------------------------
  int AddSection(Section section);
  const std::vector<Section>& sections() const { return sections_; }
  std::vector<Section>& sections() { return sections_; }

  // Returns the index of the section named `name`, or nullopt.
  std::optional<int> FindSection(std::string_view name) const;
  const Section* SectionByName(std::string_view name) const;

  // Symbols ------------------------------------------------------------
  // Appends a symbol and returns its index. Duplicate names are permitted
  // (local symbols legitimately collide; duplicate globals are a link-time
  // error, not an object-construction error).
  int AddSymbol(Symbol symbol);
  const std::vector<Symbol>& symbols() const { return symbols_; }
  std::vector<Symbol>& symbols() { return symbols_; }

  // Returns the index of an existing undefined-import symbol named `name`
  // with matching binding, or creates one. Used by code generators.
  int InternUndefinedSymbol(const std::string& name);

  // Finds the unique symbol with `name`; error if absent or ambiguous.
  ks::Result<int> FindUniqueSymbol(std::string_view name) const;

  // All symbol indices with the given name (any binding).
  std::vector<int> FindSymbols(std::string_view name) const;

  // Returns the index of the symbol that labels offset 0 of `section` with
  // kind kFunction/kObject, if any. Used to name extracted sections.
  std::optional<int> DefiningSymbolForSection(int section) const;

  // Serialization ------------------------------------------------------
  std::vector<uint8_t> Serialize() const;
  static ks::Result<ObjectFile> Parse(const std::vector<uint8_t>& bytes);

  // Structural validation: relocation symbol/offset ranges, symbol section
  // ranges, bss invariants. Called by Parse; available to generators.
  ks::Status Validate() const;

 private:
  std::string source_name_;
  std::vector<Section> sections_;
  std::vector<Symbol> symbols_;
};

}  // namespace kelf

#endif  // KSPLICE_KELF_OBJFILE_H_
