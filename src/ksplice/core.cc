#include "ksplice/core.h"

namespace ksplice {

ks::Result<ApplyReport> KspliceCore::Apply(const UpdatePackage& package,
                                           const ApplyOptions& options) {
  return manager_.Apply(package, options);
}

ks::Result<BatchApplyReport> KspliceCore::ApplyAll(
    std::span<const UpdatePackage> packages, const ApplyOptions& options) {
  return manager_.ApplyAll(packages, options);
}

ks::Result<UndoReport> KspliceCore::Undo(const std::string& id,
                                         const RendezvousOptions& options) {
  return manager_.Undo(id, options);
}

ks::Result<std::vector<UndoReport>> KspliceCore::UndoAll(
    const RendezvousOptions& options) {
  std::vector<UndoReport> reports;
  while (!manager_.applied().empty()) {
    const std::string id = manager_.applied().back().id;
    KS_ASSIGN_OR_RETURN(UndoReport report, manager_.Undo(id, options));
    reports.push_back(std::move(report));
  }
  return reports;
}

ks::Status KspliceCore::UnloadHelper(const std::string& id) {
  return manager_.UnloadHelper(id);
}

std::vector<std::string> KspliceCore::AppliedIds() const {
  std::vector<std::string> ids;
  ids.reserve(manager_.applied().size());
  for (const AppliedUpdate& update : manager_.applied()) {
    ids.push_back(update.id);
  }
  return ids;
}

std::optional<std::pair<uint32_t, uint32_t>> KspliceCore::CurrentCode(
    const std::string& unit, const std::string& symbol) const {
  return manager_.CurrentCode(unit, symbol);
}

}  // namespace ksplice
