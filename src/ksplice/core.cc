#include "ksplice/core.h"

namespace ksplice {

ks::Result<ApplyReport> KspliceCore::Apply(const UpdatePackage& package,
                                           const ApplyOptions& options) {
  return manager_.Apply(package, options);
}

ks::Result<BatchApplyReport> KspliceCore::ApplyAll(
    std::span<const UpdatePackage> packages, const ApplyOptions& options) {
  return manager_.ApplyAll(packages, options);
}

ks::Result<UndoReport> KspliceCore::Undo(const std::string& id,
                                         const RendezvousOptions& options) {
  return manager_.Undo(id, options);
}

ks::Status KspliceCore::UnloadHelper(const std::string& id) {
  return manager_.UnloadHelper(id);
}

std::optional<std::pair<uint32_t, uint32_t>> KspliceCore::CurrentCode(
    const std::string& unit, const std::string& symbol) const {
  return manager_.CurrentCode(unit, symbol);
}

}  // namespace ksplice
