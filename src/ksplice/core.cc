#include "ksplice/core.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"
#include "kvx/isa.h"

namespace ksplice {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Builds the 5-byte trampoline: jmp32 from `from` to `to` (§2: "placing a
// jump instruction ... at the start of the obsolete function").
std::vector<uint8_t> MakeTrampoline(uint32_t from, uint32_t to) {
  kvx::Insn jmp;
  jmp.op = kvx::Op::kJmp32;
  jmp.rel = static_cast<int32_t>(to - (from + kvx::kTrampolineSize));
  return kvx::Encode(jmp);
}

// Reads a table of function pointers out of a module's note sections named
// `section_name` (the ksplice_apply/... hook tables, §5.3).
ks::Result<std::vector<uint32_t>> ReadHookTable(
    const kvm::Machine& machine,
    const std::vector<kelf::PlacedSection>& placements,
    const std::string& section_name) {
  std::vector<uint32_t> hooks;
  for (const kelf::PlacedSection& placement : placements) {
    if (placement.name != section_name) {
      continue;
    }
    for (uint32_t off = 0; off + 4 <= placement.size; off += 4) {
      KS_ASSIGN_OR_RETURN(uint32_t fn,
                          machine.ReadWord(placement.address + off));
      hooks.push_back(fn);
    }
  }
  return hooks;
}

}  // namespace

const AppliedFunction* KspliceCore::FindApplied(
    const std::string& unit, const std::string& symbol) const {
  for (auto it = applied_.rbegin(); it != applied_.rend(); ++it) {
    for (const AppliedFunction& fn : it->functions) {
      if (fn.unit == unit && fn.symbol == symbol) {
        return &fn;
      }
    }
  }
  return nullptr;
}

std::optional<std::pair<uint32_t, uint32_t>> KspliceCore::CurrentCode(
    const std::string& unit, const std::string& symbol) const {
  const AppliedFunction* fn = FindApplied(unit, symbol);
  if (fn == nullptr) {
    return std::nullopt;
  }
  return std::make_pair(fn->repl_address, fn->repl_size);
}

bool KspliceCore::AnyThreadIn(
    const std::vector<std::pair<uint32_t, uint32_t>>& ranges) const {
  auto hit = [&ranges](uint32_t addr) {
    for (const auto& [begin, end] : ranges) {
      if (addr >= begin && addr < end) {
        return true;
      }
    }
    return false;
  };
  for (const kvm::ThreadInfo& thread : machine_->Threads()) {
    if (thread.state == kvm::ThreadState::kDone ||
        thread.state == kvm::ThreadState::kFaulted) {
      continue;
    }
    if (hit(thread.pc)) {
      return true;
    }
    // Conservative scan of every word of the kernel stack (§5.2): any
    // value that lands in a patched range is treated as a return address.
    for (uint32_t sp = thread.sp & ~3u; sp + 4 <= thread.stack_top;
         sp += 4) {
      ks::Result<uint32_t> word = machine_->ReadWord(sp);
      if (word.ok() && hit(*word)) {
        return true;
      }
    }
  }
  return false;
}

ks::Status KspliceCore::RunHooks(const std::vector<uint32_t>& hooks) {
  for (uint32_t hook : hooks) {
    ks::Result<uint32_t> result = machine_->CallFunction(hook, 0);
    if (!result.ok()) {
      return ks::Status(result.status()).WithContext("ksplice hook");
    }
  }
  return ks::OkStatus();
}

ks::Result<ApplyReport> KspliceCore::Apply(const UpdatePackage& package,
                                           const ApplyOptions& options) {
  ks::TraceSpan span("ksplice.apply");
  span.Annotate("id", package.id);
  ApplyReport report;
  report.id = package.id;
  report.helper_retained = options.keep_helper;

  for (const AppliedUpdate& existing : applied_) {
    if (existing.id == package.id) {
      return ks::AlreadyExists(
          ks::StrPrintf("update %s is already applied", package.id.c_str()));
    }
  }

  // ------------------------------------------------------------------
  // 1. Run-pre matching: verify the run code and recover symbol values.
  RunPreMatcher matcher(
      *machine_, [this](const std::string& unit, const std::string& symbol) {
        return CurrentCode(unit, symbol);
      });
  std::map<std::string, UnitMatch> matches;
  for (const kelf::ObjectFile& helper : package.helper_objects) {
    MatchStats unit_stats;
    ks::Result<UnitMatch> match = matcher.MatchUnit(helper, &unit_stats);
    report.match.MergeFrom(unit_stats);
    if (!match.ok()) {
      return ks::Status(match.status())
          .WithContext(ks::StrPrintf("applying %s", package.id.c_str()));
    }
    matches.emplace(helper.source_name(), std::move(match).value());
  }

  // ------------------------------------------------------------------
  // 2. Helper image (memory accounting; unloadable afterwards, §5.1).
  uint32_t helper_bytes = 0;
  for (const kelf::ObjectFile& helper : package.helper_objects) {
    helper_bytes += static_cast<uint32_t>(helper.Serialize().size());
  }
  ks::Result<kvm::ModuleHandle> helper_handle =
      machine_->LoadBlob(package.id + "-helper", helper_bytes);
  if (!helper_handle.ok()) {
    return helper_handle.status();
  }

  // ------------------------------------------------------------------
  // 3. Load the primary module. Scoped imports ("unit::name") resolve via
  // the valuation; plain imports via exported symbols (kvm) or, failing
  // that, via recovered values (globals of a patched unit are also in the
  // valuation and must agree with kallsyms — run-pre checked that).
  auto resolver = [&matches](const std::string& name)
      -> std::optional<uint32_t> {
    ScopedSymbol scoped = SplitScopedName(name);
    if (!scoped.unit.empty()) {
      auto unit_it = matches.find(scoped.unit);
      if (unit_it == matches.end()) {
        return std::nullopt;
      }
      auto sym_it = unit_it->second.symbol_values.find(scoped.symbol);
      if (sym_it == unit_it->second.symbol_values.end()) {
        return std::nullopt;
      }
      return sym_it->second;
    }
    for (const auto& [unit, match] : matches) {
      auto sym_it = match.symbol_values.find(name);
      if (sym_it != match.symbol_values.end()) {
        return sym_it->second;
      }
    }
    return std::nullopt;
  };
  ks::Result<kvm::ModuleHandle> primary_handle = machine_->LoadModule(
      package.primary_objects, package.id + "-primary", resolver);
  if (!primary_handle.ok()) {
    (void)machine_->UnloadModule(*helper_handle);
    return ks::Status(primary_handle.status())
        .WithContext("loading primary module");
  }

  auto fail = [&](ks::Status status) -> ks::Result<ApplyReport> {
    (void)machine_->UnloadModule(*primary_handle);
    (void)machine_->UnloadModule(*helper_handle);
    return status.WithContext(
        ks::StrPrintf("applying %s", package.id.c_str()));
  };

  ks::Result<kvm::ModuleInfo> primary_info =
      machine_->GetModuleInfo(*primary_handle);
  if (!primary_info.ok()) {
    return fail(primary_info.status());
  }
  report.helper_bytes = helper_bytes;
  report.primary_bytes = primary_info->size;

  // ------------------------------------------------------------------
  // 4. Resolve target placements: where is each obsolete function, and
  // where is its replacement inside the primary module?
  AppliedUpdate update;
  update.id = package.id;
  update.primary = *primary_handle;
  update.helper = *helper_handle;
  update.helper_bytes = helper_bytes;

  for (const Target& target : package.targets) {
    auto match_it = matches.find(target.unit);
    if (match_it == matches.end()) {
      return fail(ks::Internal(
          ks::StrPrintf("no unit match for %s", target.unit.c_str())));
    }
    auto section_it = match_it->second.sections.find(target.section);
    if (section_it == match_it->second.sections.end()) {
      return fail(ks::Internal(ks::StrPrintf(
          "target section %s was not matched", target.section.c_str())));
    }
    const MatchedSection& matched = section_it->second;

    AppliedFunction fn;
    fn.unit = target.unit;
    fn.symbol = target.symbol;
    fn.code_address = matched.run_address;
    fn.code_size = matched.run_size;
    const AppliedFunction* previous = FindApplied(target.unit, target.symbol);
    fn.orig_address =
        previous != nullptr ? previous->orig_address : matched.run_address;

    // The replacement: the primary module's copy of the symbol, identified
    // by name + unit + module address range.
    bool found = false;
    for (const kelf::LinkedSymbol& sym :
         machine_->SymbolsNamed(target.symbol)) {
      if (sym.unit == target.unit && sym.address >= primary_info->base &&
          sym.address < primary_info->base + primary_info->size) {
        fn.repl_address = sym.address;
        fn.repl_size = sym.size;
        found = true;
        break;
      }
    }
    if (!found) {
      return fail(ks::Internal(ks::StrPrintf(
          "replacement symbol %s missing from primary module",
          target.symbol.c_str())));
    }
    if (fn.code_size < kvx::kTrampolineSize) {
      return fail(ks::FailedPrecondition(ks::StrPrintf(
          "function %s is too small (%u bytes) for a trampoline",
          target.symbol.c_str(), fn.code_size)));
    }
    update.functions.push_back(std::move(fn));
  }

  // ------------------------------------------------------------------
  // 5. Hook tables from the primary module's note sections.
  ks::Result<std::vector<kelf::PlacedSection>> placements =
      machine_->ModulePlacements(*primary_handle);
  if (!placements.ok()) {
    return fail(placements.status());
  }
  struct HookBinding {
    const char* section;
    std::vector<uint32_t>* table;
  };
  const HookBinding bindings[] = {
      {".ksplice.apply", &update.hooks_apply},
      {".ksplice.pre_apply", &update.hooks_pre_apply},
      {".ksplice.post_apply", &update.hooks_post_apply},
      {".ksplice.reverse", &update.hooks_reverse},
      {".ksplice.pre_reverse", &update.hooks_pre_reverse},
      {".ksplice.post_reverse", &update.hooks_post_reverse},
  };
  for (const HookBinding& binding : bindings) {
    ks::Result<std::vector<uint32_t>> table =
        ReadHookTable(*machine_, *placements, binding.section);
    if (!table.ok()) {
      return fail(table.status());
    }
    *binding.table = std::move(table).value();
  }

  // ------------------------------------------------------------------
  // 6. pre_apply hooks (machine running).
  ks::Status pre_hooks = RunHooks(update.hooks_pre_apply);
  if (!pre_hooks.ok()) {
    return fail(pre_hooks);
  }

  // ------------------------------------------------------------------
  // 7. stop_machine: safety check, apply hooks, splice (§5.2).
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  for (const AppliedFunction& fn : update.functions) {
    ranges.emplace_back(fn.code_address, fn.code_address + fn.code_size);
  }

  bool applied = false;
  for (int attempt = 0; attempt < options.max_attempts && !applied;
       ++attempt) {
    report.attempts = attempt + 1;
    uint64_t stop_begin = NowNs();
    ks::Status stopped = machine_->StopMachine([&](kvm::Machine& m) {
      if (AnyThreadIn(ranges)) {
        return ks::FailedPrecondition("a patched function is in use");
      }
      KS_RETURN_IF_ERROR(RunHooks(update.hooks_apply));
      for (AppliedFunction& fn : update.functions) {
        KS_ASSIGN_OR_RETURN(
            fn.saved_bytes,
            m.ReadBytes(fn.orig_address, kvx::kTrampolineSize));
        KS_RETURN_IF_ERROR(m.WriteBytes(
            fn.orig_address,
            MakeTrampoline(fn.orig_address, fn.repl_address)));
      }
      return ks::OkStatus();
    });
    if (stopped.ok()) {
      report.pause_ns = NowNs() - stop_begin;
      applied = true;
      break;
    }
    if (stopped.code() != ks::ErrorCode::kFailedPrecondition) {
      return fail(stopped);
    }
    // Busy: let the machine make progress and retry (§5.2).
    KS_LOG(kDebug) << "apply " << package.id << " busy, attempt "
                   << attempt + 1;
    report.retry_ticks += options.retry_advance_ticks;
    (void)machine_->Advance(options.retry_advance_ticks);
  }
  if (!applied) {
    return fail(ks::Aborted(ks::StrPrintf(
        "a patched function stayed in use after %d attempts",
        options.max_attempts)));
  }
  report.quiescence_retries = report.attempts - 1;

  // ------------------------------------------------------------------
  // 8. post_apply hooks; optional helper unload.
  ks::Status post_hooks = RunHooks(update.hooks_post_apply);
  if (!post_hooks.ok()) {
    // The splice already happened; surface the hook failure but keep the
    // update registered so it can be undone.
    applied_.push_back(std::move(update));
    return post_hooks.WithContext("post_apply");
  }
  if (!options.keep_helper) {
    (void)machine_->UnloadModule(update.helper);
    update.helper = kvm::ModuleHandle{};
  }

  for (const AppliedFunction& fn : update.functions) {
    SpliceRecord record;
    record.unit = fn.unit;
    record.symbol = fn.symbol;
    record.orig_address = fn.orig_address;
    record.repl_address = fn.repl_address;
    record.code_size = fn.code_size;
    record.repl_size = fn.repl_size;
    record.trampoline_bytes = static_cast<uint32_t>(fn.saved_bytes.size());
    report.trampoline_bytes += record.trampoline_bytes;
    report.functions.push_back(std::move(record));
  }

  static ks::Counter& applies = ks::Metrics().GetCounter("ksplice.applies");
  static ks::Counter& retries =
      ks::Metrics().GetCounter("ksplice.quiescence_retries");
  static ks::Counter& tramp_bytes =
      ks::Metrics().GetCounter("ksplice.trampoline_bytes");
  static ks::Counter& arena_bytes =
      ks::Metrics().GetCounter("ksplice.helper_bytes");
  static ks::Histogram& pause =
      ks::Metrics().GetHistogram("ksplice.stop_pause_ns");
  applies.Add(1);
  retries.Add(static_cast<uint64_t>(report.quiescence_retries));
  tramp_bytes.Add(report.trampoline_bytes);
  arena_bytes.Add(report.helper_bytes);
  pause.Observe(report.pause_ns);
  span.Annotate("functions",
                static_cast<uint64_t>(update.functions.size()));
  span.Annotate("attempts", static_cast<uint64_t>(report.attempts));
  span.AddTicks(report.retry_ticks);

  applied_.push_back(std::move(update));
  KS_LOG(kInfo) << "applied " << package.id << " ("
                << applied_.back().functions.size() << " functions)";
  return report;
}

ks::Result<UndoReport> KspliceCore::Undo(const std::string& id,
                                         const ApplyOptions& options) {
  ks::TraceSpan span("ksplice.undo");
  span.Annotate("id", id);
  UndoReport report;
  report.id = id;

  if (applied_.empty() || applied_.back().id != id) {
    return ks::FailedPrecondition(ks::StrPrintf(
        "update %s is not the most recently applied update", id.c_str()));
  }
  AppliedUpdate& update = applied_.back();

  KS_RETURN_IF_ERROR(RunHooks(update.hooks_pre_reverse));

  // No thread may be executing (or returning into) the replacement code we
  // are about to disconnect and unload.
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  for (const AppliedFunction& fn : update.functions) {
    ranges.emplace_back(fn.repl_address, fn.repl_address + fn.repl_size);
  }

  bool reversed = false;
  for (int attempt = 0; attempt < options.max_attempts && !reversed;
       ++attempt) {
    report.attempts = attempt + 1;
    uint64_t stop_begin = NowNs();
    ks::Status stopped = machine_->StopMachine([&](kvm::Machine& m) {
      if (AnyThreadIn(ranges)) {
        return ks::FailedPrecondition("replacement code is in use");
      }
      KS_RETURN_IF_ERROR(RunHooks(update.hooks_reverse));
      for (const AppliedFunction& fn : update.functions) {
        KS_RETURN_IF_ERROR(m.WriteBytes(fn.orig_address, fn.saved_bytes));
      }
      return ks::OkStatus();
    });
    if (stopped.ok()) {
      report.pause_ns = NowNs() - stop_begin;
      reversed = true;
      break;
    }
    if (stopped.code() != ks::ErrorCode::kFailedPrecondition) {
      return stopped.WithContext(ks::StrPrintf("undoing %s", id.c_str()));
    }
    report.retry_ticks += options.retry_advance_ticks;
    (void)machine_->Advance(options.retry_advance_ticks);
  }
  if (!reversed) {
    return ks::Aborted(ks::StrPrintf(
        "replacement code stayed in use after %d attempts",
        options.max_attempts));
  }
  report.quiescence_retries = report.attempts - 1;

  KS_RETURN_IF_ERROR(RunHooks(update.hooks_post_reverse));

  report.functions_restored = static_cast<uint32_t>(update.functions.size());
  for (const AppliedFunction& fn : update.functions) {
    report.bytes_restored += static_cast<uint32_t>(fn.saved_bytes.size());
  }
  ks::Result<kvm::ModuleInfo> primary_info =
      machine_->GetModuleInfo(update.primary);
  if (primary_info.ok()) {
    report.primary_bytes_reclaimed = primary_info->size;
  }
  (void)machine_->UnloadModule(update.primary);
  if (update.helper.valid()) {
    report.helper_bytes_reclaimed = update.helper_bytes;
    (void)machine_->UnloadModule(update.helper);
  }
  applied_.pop_back();

  static ks::Counter& undos = ks::Metrics().GetCounter("ksplice.undos");
  static ks::Counter& retries =
      ks::Metrics().GetCounter("ksplice.quiescence_retries");
  static ks::Histogram& pause =
      ks::Metrics().GetHistogram("ksplice.stop_pause_ns");
  undos.Add(1);
  retries.Add(static_cast<uint64_t>(report.quiescence_retries));
  pause.Observe(report.pause_ns);
  span.Annotate("functions",
                static_cast<uint64_t>(report.functions_restored));
  span.AddTicks(report.retry_ticks);

  KS_LOG(kInfo) << "reversed " << id;
  return report;
}

ks::Status KspliceCore::UnloadHelper(const std::string& id) {
  for (AppliedUpdate& update : applied_) {
    if (update.id == id) {
      if (!update.helper.valid()) {
        return ks::FailedPrecondition("helper already unloaded");
      }
      KS_RETURN_IF_ERROR(machine_->UnloadModule(update.helper));
      update.helper = kvm::ModuleHandle{};
      return ks::OkStatus();
    }
  }
  return ks::NotFound(ks::StrPrintf("no applied update %s", id.c_str()));
}

}  // namespace ksplice
