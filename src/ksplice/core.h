// The Ksplice core (paper §5.1's "core kernel module"): applies update
// packages to a live Machine, reverses them, and tracks what is patched so
// later updates can stack (§5.4).
//
// Apply pipeline (ksplice-apply):
//   1. run-pre match every helper unit, recovering the symbol valuation
//      and verifying the run code (§4);
//   2. load the helper image into the module arena (memory accounting —
//      it can be unloaded after apply, §5.1);
//   3. link + load the primary module, resolving scoped imports through
//      the valuation and plain imports through exported symbols;
//   4. run ksplice_pre_apply hooks (side effects of pre_apply are NOT
//      rolled back if a later step aborts — like the paper, setup that
//      must be undone belongs in the reverse hooks of a revised patch);
//   5. under stop_machine: check that no thread's pc or stack return
//      addresses fall within any function being replaced (§5.2),
//      retrying after a delay and abandoning after max_attempts; run
//      ksplice_apply hooks; splice a jump at each obsolete function;
//   6. run ksplice_post_apply hooks, optionally unload the helper.
//
// Undo restores the saved bytes under the same safety check aimed at the
// replacement code, running the three reverse hook stages (§5.3).

#ifndef KSPLICE_KSPLICE_CORE_H_
#define KSPLICE_KSPLICE_CORE_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "ksplice/package.h"
#include "ksplice/report.h"
#include "ksplice/runpre.h"
#include "kvm/machine.h"

namespace ksplice {

struct ApplyOptions {
  // Stack-safety retry policy (§5.2: "tries again after a short delay; if
  // multiple such attempts are unsuccessful, Ksplice abandons the upgrade
  // attempt").
  int max_attempts = 10;
  uint64_t retry_advance_ticks = 50'000;
  // Keep the helper image loaded after a successful apply (off by default;
  // unloading it saves memory, §5.1).
  bool keep_helper = false;
};

// One spliced function of an applied update.
struct AppliedFunction {
  std::string unit;
  std::string symbol;
  uint32_t orig_address = 0;  // entry of the obsolete function (trampoline)
  uint32_t code_address = 0;  // code that was matched/replaced (== orig, or
                              // the previous replacement when stacking)
  uint32_t code_size = 0;
  uint32_t repl_address = 0;  // the new code in the primary module
  uint32_t repl_size = 0;
  std::vector<uint8_t> saved_bytes;  // original bytes under the trampoline
};

struct AppliedUpdate {
  std::string id;
  std::vector<AppliedFunction> functions;
  kvm::ModuleHandle primary;
  kvm::ModuleHandle helper;  // invalid once unloaded
  uint32_t helper_bytes = 0;
  std::vector<uint32_t> hooks_apply;
  std::vector<uint32_t> hooks_pre_apply;
  std::vector<uint32_t> hooks_post_apply;
  std::vector<uint32_t> hooks_reverse;
  std::vector<uint32_t> hooks_pre_reverse;
  std::vector<uint32_t> hooks_post_reverse;
};

class KspliceCore {
 public:
  explicit KspliceCore(kvm::Machine* machine) : machine_(machine) {}

  // Applies `package`; returns a typed account of what happened (the
  // report's `id` doubles as the undo handle). On any failure the machine
  // is left untouched (primary/helper modules are unloaded again).
  ks::Result<ApplyReport> Apply(const UpdatePackage& package,
                                const ApplyOptions& options = {});

  // Reverses the most recently applied update (undo is LIFO: reversing an
  // older update while a newer one stacks on it would re-expose spliced
  // code). `id` must name the top of the stack.
  ks::Result<UndoReport> Undo(const std::string& id,
                              const ApplyOptions& options = {});

  // Unloads the helper image of an applied update (memory reclaim, §5.1).
  ks::Status UnloadHelper(const std::string& id);

  const std::vector<AppliedUpdate>& applied() const { return applied_; }

  // Stacking redirect (§5.4): current code location for (unit, symbol).
  std::optional<std::pair<uint32_t, uint32_t>> CurrentCode(
      const std::string& unit, const std::string& symbol) const;

 private:
  // Finds the applied function record that currently owns (unit, symbol).
  const AppliedFunction* FindApplied(const std::string& unit,
                                     const std::string& symbol) const;

  // True if any live thread's pc or conservatively-scanned stack word
  // falls in one of `ranges` ([begin, end) pairs).
  bool AnyThreadIn(const std::vector<std::pair<uint32_t, uint32_t>>& ranges)
      const;

  ks::Status RunHooks(const std::vector<uint32_t>& hooks);

  kvm::Machine* machine_;
  std::vector<AppliedUpdate> applied_;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_CORE_H_
