// The Ksplice core (paper §5.1's "core kernel module"): applies update
// packages to a live Machine, reverses them, and tracks what is patched so
// later updates can stack (§5.4).
//
// KspliceCore is a facade over the transactional engine:
//
//  - UpdateManager (manager.h) owns the applied-update registry, the
//    stacking redirect (CurrentCode), and the undo engine — including
//    out-of-order undo of mid-stack updates via chain rewriting;
//  - UpdateTransaction (transaction.h) stages each apply through
//    Prepare -> Match -> Load -> PreApply -> Rendezvous -> Commit with
//    automatic rollback of every completed stage on failure, and splices
//    a whole batch of packages in one stop_machine rendezvous (ApplyAll).
//
// The options split mirrors the operations: RendezvousOptions
// (rendezvous.h) carries the stop_machine retry policy shared by apply and
// undo; ApplyOptions (manager.h) composes it with the apply-only knobs.

#ifndef KSPLICE_KSPLICE_CORE_H_
#define KSPLICE_KSPLICE_CORE_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "ksplice/manager.h"
#include "ksplice/package.h"
#include "ksplice/report.h"
#include "kvm/machine.h"

namespace ksplice {

class KspliceCore {
 public:
  explicit KspliceCore(kvm::Machine* machine) : manager_(machine) {}

  // Applies `package`; returns a typed account of what happened (the
  // report's `id` doubles as the undo handle). On any failure every
  // completed transaction stage is rolled back and the machine is left
  // byte-identical to its pre-apply state.
  ks::Result<ApplyReport> Apply(const UpdatePackage& package,
                                const ApplyOptions& options = {});

  // Applies every package in one transaction with a single combined
  // stop_machine rendezvous; all-or-nothing (see UpdateManager::ApplyAll).
  ks::Result<BatchApplyReport> ApplyAll(std::span<const UpdatePackage> packages,
                                        const ApplyOptions& options = {});

  // Reverses the applied update named `id` — any update, not just the top
  // of the stack (mid-stack removal rewrites the chains of newer updates).
  ks::Result<UndoReport> Undo(const std::string& id,
                              const RendezvousOptions& options = {});

  // Reverses every applied update, newest first, in one call per update.
  // Stops at the first failure (already-reversed updates stay reversed);
  // on success the machine carries no Ksplice modifications at all. The
  // fleet orchestrator's fleet-wide rollback and `examples` quiesce
  // machines through this instead of iterating the registry by hand.
  ks::Result<std::vector<UndoReport>> UndoAll(
      const RendezvousOptions& options = {});

  // Unloads the helper image of an applied update (memory reclaim, §5.1).
  ks::Status UnloadHelper(const std::string& id);

  const std::vector<AppliedUpdate>& applied() const {
    return manager_.applied();
  }

  // Ids of the applied updates, oldest first (each is an Undo handle).
  std::vector<std::string> AppliedIds() const;

  // Stacking redirect (§5.4): current code location for (unit, symbol).
  std::optional<std::pair<uint32_t, uint32_t>> CurrentCode(
      const std::string& unit, const std::string& symbol) const;

  // Snapshot of the applied-update stack (ksplice_tool status).
  StatusReport Status() const { return manager_.Status(); }

  // The package quarantine (quarantine.h): the watchdog adds entries on
  // automatic revert, Apply refuses quarantined hashes without `force`.
  Quarantine& quarantine() { return manager_.quarantine(); }
  const Quarantine& quarantine() const { return manager_.quarantine(); }

  // Escape hatch into the underlying engine, for tests that assert on
  // internal registry state. Production callers (tools, benches, examples,
  // the fleet orchestrator) use the facade methods above instead.
  UpdateManager& manager() { return manager_; }

 private:
  UpdateManager manager_;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_CORE_H_
