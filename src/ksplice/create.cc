#include "ksplice/create.h"

#include <chrono>
#include <map>
#include <set>

#include "base/strings.h"
#include "base/trace.h"
#include "kanalyze/kanalyze.h"

namespace ksplice {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The size of a named section's payload, or 0 when absent.
uint32_t SectionSize(const kelf::ObjectFile& obj, const std::string& name) {
  std::optional<int> idx = obj.FindSection(name);
  if (!idx.has_value()) {
    return 0;
  }
  return static_cast<uint32_t>(
      obj.sections()[static_cast<size_t>(*idx)].bytes.size());
}

uint32_t Fnv32(std::string_view data) {
  uint32_t hash = 2166136261u;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

// Extracts the primary object for one rebuilt unit: the changed/new
// sections with relocations rewritten for in-kernel resolution.
ks::Result<std::optional<kelf::ObjectFile>> ExtractPrimary(
    const std::string& unit, const kelf::ObjectFile& pre_obj,
    const kelf::ObjectFile& post_obj,
    const std::vector<ChangedSection>& changed) {
  // Which post sections are included?
  std::set<std::string> included_names;
  for (const ChangedSection& change : changed) {
    if (change.unit != unit || change.change == SectionChange::kRemoved) {
      continue;
    }
    included_names.insert(change.name);
  }
  // Hook tables ride along only when this patch introduced or changed
  // them (they are in `changed` then). Hooks already present in the pre
  // source belong to a previously-applied update and must not re-run.
  if (included_names.empty()) {
    return std::optional<kelf::ObjectFile>();
  }
  // Companion exception/bug tables ride with their function even when
  // unchanged: the replacement code runs at module addresses, so the
  // kernel's own tables (which name the old text) cannot cover it. The
  // module loader registers these as howto regions at load time.
  // Build-timestamp sections are deliberately NOT extracted — replacement
  // code resolves kbuild.date/time through run-pre recovered values, i.e.
  // the running kernel's string (per the DATE/TIME howto semantics).
  std::set<std::string> companions;
  for (const std::string& name : included_names) {
    if (name.rfind(".text.", 0) == 0) {
      std::string fn = name.substr(6);
      companions.insert(".extable." + fn);
      companions.insert(".bug_table." + fn);
    }
  }
  for (const kelf::Section& section : post_obj.sections()) {
    if (companions.count(section.name) != 0) {
      included_names.insert(section.name);
    }
  }

  // Pre-existing exported globals must not be re-exported by the primary
  // module (the old definition stays live); demote them to local binding.
  std::set<std::string> pre_globals;
  for (const kelf::Symbol& sym : pre_obj.symbols()) {
    if (sym.defined() && sym.binding == kelf::SymbolBinding::kGlobal) {
      pre_globals.insert(sym.name);
    }
  }

  kelf::ObjectFile primary(unit);
  std::map<int, int> section_map;  // post section index -> primary index
  for (size_t si = 0; si < post_obj.sections().size(); ++si) {
    const kelf::Section& section = post_obj.sections()[si];
    if (included_names.count(section.name) == 0) {
      continue;
    }
    kelf::Section copy = section;
    copy.relocs.clear();  // rewritten below
    section_map[static_cast<int>(si)] = primary.AddSection(std::move(copy));
  }

  // Defined symbols of included sections carry over.
  std::map<int, int> symbol_map;  // post symbol index -> primary index
  for (size_t yi = 0; yi < post_obj.symbols().size(); ++yi) {
    const kelf::Symbol& sym = post_obj.symbols()[yi];
    if (!sym.defined() || section_map.count(sym.section) == 0) {
      continue;
    }
    kelf::Symbol copy = sym;
    copy.section = section_map[sym.section];
    if (pre_globals.count(copy.name) != 0) {
      copy.binding = kelf::SymbolBinding::kLocal;
    }
    symbol_map[static_cast<int>(yi)] = primary.AddSymbol(std::move(copy));
  }

  // Imports, deduplicated by final (possibly scoped) name.
  std::map<std::string, int> imports;
  auto import_symbol = [&](const std::string& name) {
    auto it = imports.find(name);
    if (it != imports.end()) {
      return it->second;
    }
    kelf::Symbol sym;
    sym.name = name;
    sym.binding = kelf::SymbolBinding::kGlobal;
    sym.section = kelf::kUndefSection;
    int idx = primary.AddSymbol(std::move(sym));
    imports.emplace(name, idx);
    return idx;
  };

  // Rewrite relocations.
  for (const auto& [post_idx, primary_idx] : section_map) {
    const kelf::Section& post_sec =
        post_obj.sections()[static_cast<size_t>(post_idx)];
    kelf::Section& primary_sec =
        primary.sections()[static_cast<size_t>(primary_idx)];
    for (const kelf::Relocation& rel : post_sec.relocs) {
      const kelf::Symbol& sym =
          post_obj.symbols()[static_cast<size_t>(rel.symbol)];
      kelf::Relocation copy = rel;
      if (sym.defined() && symbol_map.count(rel.symbol) != 0) {
        // Reference to another extracted section: package-internal.
        copy.symbol = symbol_map[rel.symbol];
      } else if (sym.defined()) {
        // Reference to a non-extracted part of this unit: the replacement
        // code must use the *running* kernel's copy. Exported globals
        // resolve through kallsyms; unit-local symbols need run-pre
        // recovered values, so scope them.
        if (sym.binding == kelf::SymbolBinding::kGlobal) {
          copy.symbol = import_symbol(sym.name);
        } else {
          copy.symbol = import_symbol(ScopedName(unit, sym.name));
        }
        if (sym.value != 0) {
          // A mid-section symbol would need value adjustment; kcc emits
          // exactly one symbol per section at offset zero.
          return ks::Unimplemented(ks::StrPrintf(
              "extraction: reference to mid-section symbol '%s'",
              sym.name.c_str()));
        }
      } else {
        // Already an import (cross-unit / kernel export / new package
        // global defined by another unit's primary object).
        copy.symbol = import_symbol(sym.name);
      }
      primary_sec.relocs.push_back(copy);
    }
  }

  KS_RETURN_IF_ERROR(primary.Validate());
  return std::optional<kelf::ObjectFile>(std::move(primary));
}

}  // namespace

ks::Result<CreateResult> CreateUpdate(const kdiff::SourceTree& pre_tree,
                                      std::string_view patch_text,
                                      const CreateOptions& options) {
  ks::TraceSpan span("create.update");
  uint64_t create_begin = NowNs();
  ks::Result<kdiff::Patch> patch = kdiff::ParseUnifiedDiff(patch_text);
  if (!patch.ok()) {
    return ks::Status(patch.status()).WithContext("ksplice-create");
  }
  uint64_t prepost_begin = NowNs();
  KS_ASSIGN_OR_RETURN(PrePostResult prepost,
                      RunPrePost(pre_tree, *patch, options.compile));
  uint64_t prepost_wall_ns = NowNs() - prepost_begin;

  // Data-semantics gate (paper §2, Table 1).
  std::vector<ChangedSection> data_changes = prepost.DataSemanticChanges();
  if (!data_changes.empty()) {
    std::string names;
    for (const ChangedSection& change : data_changes) {
      if (!names.empty()) {
        names += ", ";
      }
      names += change.unit + ":" + change.name;
    }
    return ks::FailedPrecondition(ks::StrPrintf(
        "patch changes the semantics of persistent data (%s); revise the "
        "patch to initialize at apply time with ksplice_apply custom code",
        names.c_str()));
  }

  CreateResult result;
  result.prepost = prepost;
  result.package.id =
      !options.id.empty()
          ? options.id
          : ks::StrPrintf("ksplice-%08x",
                          Fnv32(std::string(patch_text)));

  bool any_code_change = false;
  for (size_t ui = 0; ui < prepost.rebuilt_units.size(); ++ui) {
    const std::string& unit = prepost.rebuilt_units[ui];
    KS_ASSIGN_OR_RETURN(
        std::optional<kelf::ObjectFile> primary,
        ExtractPrimary(unit, prepost.pre_objects[ui],
                       prepost.post_objects[ui], prepost.changed));
    if (!primary.has_value()) {
      continue;
    }
    any_code_change = true;
    result.package.primary_objects.push_back(std::move(*primary));
    result.package.helper_objects.push_back(prepost.pre_objects[ui]);
  }
  if (!any_code_change) {
    return ks::FailedPrecondition(
        "patch produces no object code differences — nothing to update");
  }

  for (const ChangedSection& change : prepost.changed) {
    if (change.kind != kelf::SectionKind::kText ||
        change.change != SectionChange::kModified) {
      continue;
    }
    if (change.symbol.empty()) {
      return ks::Internal(ks::StrPrintf(
          "changed text section %s has no defining symbol",
          change.name.c_str()));
    }
    result.package.targets.push_back(
        Target{change.unit, change.symbol, change.name});
  }
  if (result.package.targets.empty()) {
    // A package with no function replacements is still meaningful when it
    // carries custom-code hooks (a pure data fix applied under
    // stop_machine, §5.3). Anything else is an empty update.
    bool has_hooks = false;
    for (const kelf::ObjectFile& primary : result.package.primary_objects) {
      for (const kelf::Section& section : primary.sections()) {
        if (section.kind == kelf::SectionKind::kNote) {
          has_hooks = true;
        }
      }
    }
    if (!has_hooks) {
      return ks::FailedPrecondition(
          "patch adds code but modifies no existing function — nothing to "
          "splice");
    }
  }

  // ------------------------------------------------------------------
  // Fill the typed report (satellite view of everything above).
  CreateReport& report = result.report;
  report.id = result.package.id;
  report.units_rebuilt =
      static_cast<uint32_t>(result.prepost.rebuilt_units.size());
  report.units = result.prepost.unit_reports;
  for (const UnitReport& unit : report.units) {
    report.cache_hits += (unit.pre_cache_hit ? 1 : 0) +
                         (unit.post_cache_hit ? 1 : 0);
  }
  report.cache_misses =
      2ull * report.units_rebuilt - report.cache_hits;
  report.targets = static_cast<uint32_t>(result.package.targets.size());
  std::map<std::string, size_t> unit_index;
  for (size_t ui = 0; ui < result.prepost.rebuilt_units.size(); ++ui) {
    unit_index[result.prepost.rebuilt_units[ui]] = ui;
  }
  for (const ChangedSection& change : result.prepost.changed) {
    if (change.kind != kelf::SectionKind::kText || change.symbol.empty()) {
      continue;
    }
    ChangedFunction fn;
    fn.unit = change.unit;
    fn.symbol = change.symbol;
    fn.change = change.change == SectionChange::kModified ? "modified"
                : change.change == SectionChange::kAdded  ? "added"
                                                          : "removed";
    auto idx = unit_index.find(change.unit);
    if (idx != unit_index.end()) {
      fn.pre_size =
          SectionSize(result.prepost.pre_objects[idx->second], change.name);
      fn.post_size =
          SectionSize(result.prepost.post_objects[idx->second], change.name);
    }
    report.changed_functions.push_back(std::move(fn));
  }
  // Static patch-safety analysis (kanalyze). The lint runs on the exact
  // package a user would ship, so the report travels with the package via
  // the .report.json sidecar and `ksplice_tool lint` can reproduce it.
  if (options.lint != LintMode::kOff) {
    kanalyze::AnalyzeOptions lint_options;
    lint_options.jobs = options.compile.jobs;
    lint_options.cache = options.compile.cache;
    KS_ASSIGN_OR_RETURN(
        report.lint, kanalyze::AnalyzePackage(result.package, lint_options));
    if (options.lint == LintMode::kError && report.lint.errors() > 0) {
      std::string details;
      for (const LintFinding& finding : report.lint.findings) {
        if (finding.severity != LintSeverity::kError) {
          continue;
        }
        details += "\n  " + finding.ToString();
      }
      return ks::FailedPrecondition(ks::StrPrintf(
          "lint gate: package has %zu error finding(s) (--lint=error):%s",
          report.lint.errors(), details.c_str()));
    }
  }

  report.prepost_wall_ns = prepost_wall_ns;
  report.create_wall_ns = NowNs() - create_begin;
  span.Annotate("id", report.id);
  span.Annotate("units", static_cast<uint64_t>(report.units_rebuilt));
  span.Annotate("targets", static_cast<uint64_t>(report.targets));
  return result;
}

}  // namespace ksplice
