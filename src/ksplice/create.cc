#include "ksplice/create.h"

#include <map>
#include <set>

#include "base/strings.h"

namespace ksplice {

namespace {

uint32_t Fnv32(std::string_view data) {
  uint32_t hash = 2166136261u;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

// Extracts the primary object for one rebuilt unit: the changed/new
// sections with relocations rewritten for in-kernel resolution.
ks::Result<std::optional<kelf::ObjectFile>> ExtractPrimary(
    const std::string& unit, const kelf::ObjectFile& pre_obj,
    const kelf::ObjectFile& post_obj,
    const std::vector<ChangedSection>& changed) {
  // Which post sections are included?
  std::set<std::string> included_names;
  for (const ChangedSection& change : changed) {
    if (change.unit != unit || change.change == SectionChange::kRemoved) {
      continue;
    }
    included_names.insert(change.name);
  }
  // Hook tables ride along only when this patch introduced or changed
  // them (they are in `changed` then). Hooks already present in the pre
  // source belong to a previously-applied update and must not re-run.
  if (included_names.empty()) {
    return std::optional<kelf::ObjectFile>();
  }

  // Pre-existing exported globals must not be re-exported by the primary
  // module (the old definition stays live); demote them to local binding.
  std::set<std::string> pre_globals;
  for (const kelf::Symbol& sym : pre_obj.symbols()) {
    if (sym.defined() && sym.binding == kelf::SymbolBinding::kGlobal) {
      pre_globals.insert(sym.name);
    }
  }

  kelf::ObjectFile primary(unit);
  std::map<int, int> section_map;  // post section index -> primary index
  for (size_t si = 0; si < post_obj.sections().size(); ++si) {
    const kelf::Section& section = post_obj.sections()[si];
    if (included_names.count(section.name) == 0) {
      continue;
    }
    kelf::Section copy = section;
    copy.relocs.clear();  // rewritten below
    section_map[static_cast<int>(si)] = primary.AddSection(std::move(copy));
  }

  // Defined symbols of included sections carry over.
  std::map<int, int> symbol_map;  // post symbol index -> primary index
  for (size_t yi = 0; yi < post_obj.symbols().size(); ++yi) {
    const kelf::Symbol& sym = post_obj.symbols()[yi];
    if (!sym.defined() || section_map.count(sym.section) == 0) {
      continue;
    }
    kelf::Symbol copy = sym;
    copy.section = section_map[sym.section];
    if (pre_globals.count(copy.name) != 0) {
      copy.binding = kelf::SymbolBinding::kLocal;
    }
    symbol_map[static_cast<int>(yi)] = primary.AddSymbol(std::move(copy));
  }

  // Imports, deduplicated by final (possibly scoped) name.
  std::map<std::string, int> imports;
  auto import_symbol = [&](const std::string& name) {
    auto it = imports.find(name);
    if (it != imports.end()) {
      return it->second;
    }
    kelf::Symbol sym;
    sym.name = name;
    sym.binding = kelf::SymbolBinding::kGlobal;
    sym.section = kelf::kUndefSection;
    int idx = primary.AddSymbol(std::move(sym));
    imports.emplace(name, idx);
    return idx;
  };

  // Rewrite relocations.
  for (const auto& [post_idx, primary_idx] : section_map) {
    const kelf::Section& post_sec =
        post_obj.sections()[static_cast<size_t>(post_idx)];
    kelf::Section& primary_sec =
        primary.sections()[static_cast<size_t>(primary_idx)];
    for (const kelf::Relocation& rel : post_sec.relocs) {
      const kelf::Symbol& sym =
          post_obj.symbols()[static_cast<size_t>(rel.symbol)];
      kelf::Relocation copy = rel;
      if (sym.defined() && symbol_map.count(rel.symbol) != 0) {
        // Reference to another extracted section: package-internal.
        copy.symbol = symbol_map[rel.symbol];
      } else if (sym.defined()) {
        // Reference to a non-extracted part of this unit: the replacement
        // code must use the *running* kernel's copy. Exported globals
        // resolve through kallsyms; unit-local symbols need run-pre
        // recovered values, so scope them.
        if (sym.binding == kelf::SymbolBinding::kGlobal) {
          copy.symbol = import_symbol(sym.name);
        } else {
          copy.symbol = import_symbol(ScopedName(unit, sym.name));
        }
        if (sym.value != 0) {
          // A mid-section symbol would need value adjustment; kcc emits
          // exactly one symbol per section at offset zero.
          return ks::Unimplemented(ks::StrPrintf(
              "extraction: reference to mid-section symbol '%s'",
              sym.name.c_str()));
        }
      } else {
        // Already an import (cross-unit / kernel export / new package
        // global defined by another unit's primary object).
        copy.symbol = import_symbol(sym.name);
      }
      primary_sec.relocs.push_back(copy);
    }
  }

  KS_RETURN_IF_ERROR(primary.Validate());
  return std::optional<kelf::ObjectFile>(std::move(primary));
}

}  // namespace

ks::Result<CreateResult> CreateUpdate(const kdiff::SourceTree& pre_tree,
                                      std::string_view patch_text,
                                      const CreateOptions& options) {
  ks::Result<kdiff::Patch> patch = kdiff::ParseUnifiedDiff(patch_text);
  if (!patch.ok()) {
    return ks::Status(patch.status()).WithContext("ksplice-create");
  }
  KS_ASSIGN_OR_RETURN(PrePostResult prepost,
                      RunPrePost(pre_tree, *patch, options.compile));

  // Data-semantics gate (paper §2, Table 1).
  std::vector<ChangedSection> data_changes = prepost.DataSemanticChanges();
  if (!data_changes.empty()) {
    std::string names;
    for (const ChangedSection& change : data_changes) {
      if (!names.empty()) {
        names += ", ";
      }
      names += change.unit + ":" + change.name;
    }
    return ks::FailedPrecondition(ks::StrPrintf(
        "patch changes the semantics of persistent data (%s); revise the "
        "patch to initialize at apply time with ksplice_apply custom code",
        names.c_str()));
  }

  CreateResult result;
  result.prepost = prepost;
  result.package.id =
      !options.id.empty()
          ? options.id
          : ks::StrPrintf("ksplice-%08x",
                          Fnv32(std::string(patch_text)));

  bool any_code_change = false;
  for (size_t ui = 0; ui < prepost.rebuilt_units.size(); ++ui) {
    const std::string& unit = prepost.rebuilt_units[ui];
    KS_ASSIGN_OR_RETURN(
        std::optional<kelf::ObjectFile> primary,
        ExtractPrimary(unit, prepost.pre_objects[ui],
                       prepost.post_objects[ui], prepost.changed));
    if (!primary.has_value()) {
      continue;
    }
    any_code_change = true;
    result.package.primary_objects.push_back(std::move(*primary));
    result.package.helper_objects.push_back(prepost.pre_objects[ui]);
  }
  if (!any_code_change) {
    return ks::FailedPrecondition(
        "patch produces no object code differences — nothing to update");
  }

  for (const ChangedSection& change : prepost.changed) {
    if (change.kind != kelf::SectionKind::kText ||
        change.change != SectionChange::kModified) {
      continue;
    }
    if (change.symbol.empty()) {
      return ks::Internal(ks::StrPrintf(
          "changed text section %s has no defining symbol",
          change.name.c_str()));
    }
    result.package.targets.push_back(
        Target{change.unit, change.symbol, change.name});
  }
  if (result.package.targets.empty()) {
    // A package with no function replacements is still meaningful when it
    // carries custom-code hooks (a pure data fix applied under
    // stop_machine, §5.3). Anything else is an empty update.
    bool has_hooks = false;
    for (const kelf::ObjectFile& primary : result.package.primary_objects) {
      for (const kelf::Section& section : primary.sections()) {
        if (section.kind == kelf::SectionKind::kNote) {
          has_hooks = true;
        }
      }
    }
    if (!has_hooks) {
      return ks::FailedPrecondition(
          "patch adds code but modifies no existing function — nothing to "
          "splice");
    }
  }
  return result;
}

}  // namespace ksplice
