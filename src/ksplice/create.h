// ksplice-create (paper §5): turn the original kernel source plus a
// unified-diff patch into an update package.
//
// Pipeline: apply the patch to a scratch copy of the source, build pre and
// post objects for every affected unit (prepost.h), reject patches that
// change the semantics of persistent data (Table 1 — those need custom
// code expressed as ksplice_* hooks in a revised patch), then extract the
// changed post sections into primary objects, rewriting relocations so
// that references to non-extracted code resolve against the running
// kernel (via exported symbols or run-pre recovered values).

#ifndef KSPLICE_KSPLICE_CREATE_H_
#define KSPLICE_KSPLICE_CREATE_H_

#include <string>

#include "base/status.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/package.h"
#include "ksplice/prepost.h"
#include "ksplice/report.h"

namespace ksplice {

// How CreateUpdate treats kanalyze lint findings on the finished package.
//   kOff   — skip analysis entirely (report.lint stays empty).
//   kWarn  — analyze and record findings in CreateReport::lint; never fail.
//   kError — additionally refuse the package when any finding has error
//            severity (kFailedPrecondition listing the findings).
enum class LintMode { kOff, kWarn, kError };

struct CreateOptions {
  // Compiler configuration; must match how the running kernel was built
  // ("doing so is advisable", §4.3 — a mismatch makes run-pre abort).
  kcc::CompileOptions compile;
  // Package id; derived from the patch contents when empty.
  std::string id;
  // Static-analysis gate (kanalyze); see LintMode above.
  LintMode lint = LintMode::kWarn;
};

struct CreateResult {
  UpdatePackage package;
  PrePostResult prepost;  // kept for reporting/analysis
  // What the create pipeline observed: compile/cache traffic, the section
  // diff, and the changed-function list with sizes (report.h). Benches and
  // `ksplice_tool inspect` consume this instead of re-deriving it.
  CreateReport report;
};

// Builds an update package from `pre_tree` and a unified-diff `patch_text`.
// Fails with kFailedPrecondition when the patch changes persistent data
// semantics (changed .data/.bss sections), listing the offending sections.
ks::Result<CreateResult> CreateUpdate(const kdiff::SourceTree& pre_tree,
                                      std::string_view patch_text,
                                      const CreateOptions& options);

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_CREATE_H_
