#include "ksplice/manager.h"

#include <algorithm>

#include "base/faultinject.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"
#include "ksplice/rendezvous.h"
#include "ksplice/transaction.h"

namespace ksplice {

const AppliedFunction* UpdateManager::FindApplied(
    const std::string& unit, const std::string& symbol) const {
  for (auto it = applied_.rbegin(); it != applied_.rend(); ++it) {
    for (const AppliedFunction& fn : it->functions) {
      if (fn.unit == unit && fn.symbol == symbol) {
        return &fn;
      }
    }
  }
  return nullptr;
}

std::optional<std::pair<uint32_t, uint32_t>> UpdateManager::CurrentCode(
    const std::string& unit, const std::string& symbol) const {
  const AppliedFunction* fn = FindApplied(unit, symbol);
  if (fn == nullptr) {
    return std::nullopt;
  }
  return std::make_pair(fn->repl_address, fn->repl_size);
}

ks::Status UpdateManager::RunHooks(const std::vector<uint32_t>& hooks) {
  for (uint32_t hook : hooks) {
    ks::Result<uint32_t> result = machine_->CallFunction(hook, 0);
    if (!result.ok()) {
      return ks::Status(result.status()).WithContext("ksplice hook");
    }
  }
  return ks::OkStatus();
}

void UpdateManager::RunHooksBestEffort(const std::vector<uint32_t>& hooks) {
  for (uint32_t hook : hooks) {
    (void)machine_->CallFunction(hook, 0);
  }
}

std::string UpdateManager::NextTransactionGroup() {
  return ks::StrPrintf("ksplice-txn-%llu",
                       static_cast<unsigned long long>(next_txn_++));
}

ks::Result<ApplyReport> UpdateManager::Apply(const UpdatePackage& package,
                                             const ApplyOptions& options) {
  ks::TraceSpan span("ksplice.apply");
  span.Annotate("id", package.id);

  UpdateTransaction txn(this, options);
  KS_ASSIGN_OR_RETURN(BatchApplyReport batch,
                      txn.Run(std::span<const UpdatePackage>(&package, 1)));
  ApplyReport report = std::move(batch.updates[0]);
  span.Annotate("functions",
                static_cast<uint64_t>(report.functions.size()));
  span.Annotate("attempts", static_cast<uint64_t>(report.attempts));
  span.AddTicks(report.retry_ticks);
  return report;
}

ks::Result<BatchApplyReport> UpdateManager::ApplyAll(
    std::span<const UpdatePackage> packages, const ApplyOptions& options) {
  ks::TraceSpan span("ksplice.batch_apply");
  span.Annotate("packages", static_cast<uint64_t>(packages.size()));

  UpdateTransaction txn(this, options);
  KS_ASSIGN_OR_RETURN(BatchApplyReport batch, txn.Run(packages));

  static ks::Counter& batches =
      ks::Metrics().GetCounter("ksplice.batch_applies");
  batches.Add(1);
  span.Annotate("functions",
                static_cast<uint64_t>(batch.functions_spliced));
  span.Annotate("attempts", static_cast<uint64_t>(batch.attempts));
  span.AddTicks(batch.retry_ticks);
  return batch;
}

ks::Result<UndoReport> UpdateManager::Undo(const std::string& id,
                                           const RendezvousOptions& options) {
  ks::TraceSpan span("ksplice.undo");
  span.Annotate("id", id);
  UndoReport report;
  report.id = id;

  size_t index = applied_.size();
  for (size_t i = 0; i < applied_.size(); ++i) {
    if (applied_[i].id == id) {
      index = i;
      break;
    }
  }
  if (index == applied_.size()) {
    return ks::FailedPrecondition(
        ks::StrPrintf("update %s is not applied", id.c_str()));
  }
  AppliedUpdate& update = applied_[index];
  report.out_of_order = index + 1 != applied_.size();

  // Out-of-order removal is safe only if no newer update's module links
  // against code or data inside the module being removed: imports bound to
  // addresses in its range (new globals/functions the update introduced,
  // or replacement code a stacked patch calls directly) would dangle.
  for (size_t j = index + 1; j < applied_.size(); ++j) {
    for (const auto& [name, value] : applied_[j].imports) {
      if (value >= update.primary_base &&
          value < update.primary_base + update.primary_size) {
        return ks::FailedPrecondition(ks::StrPrintf(
            "update %s depends on %s (import '%s' resolves into its "
            "module); undo %s first",
            applied_[j].id.c_str(), id.c_str(), name.c_str(),
            applied_[j].id.c_str()));
      }
    }
  }

  // Plan the reversal. For each function of the update:
  //  - if this update still owns the trampoline (it is the newest patch of
  //    that function), the saved bytes go back to the entry point;
  //  - otherwise a newer update matched our replacement code
  //    (record.code_address == our repl_address). That record is
  //    re-pointed at what *we* replaced — our code_address and our saved
  //    bytes — so the chain skips the departing link and a later undo of
  //    the newer update restores the right bytes (§5.4 CurrentCode chain
  //    rewriting).
  struct ChainRewrite {
    AppliedFunction* dependent;
    const AppliedFunction* removed;
  };
  std::vector<const AppliedFunction*> restores;
  std::vector<ChainRewrite> rewrites;
  for (const AppliedFunction& fn : update.functions) {
    if (FindApplied(fn.unit, fn.symbol) == &fn) {
      restores.push_back(&fn);
      continue;
    }
    AppliedFunction* dependent = nullptr;
    for (size_t j = index + 1; j < applied_.size() && dependent == nullptr;
         ++j) {
      for (AppliedFunction& candidate : applied_[j].functions) {
        if (candidate.unit == fn.unit && candidate.symbol == fn.symbol &&
            candidate.code_address == fn.repl_address) {
          dependent = &candidate;
          break;
        }
      }
    }
    if (dependent == nullptr) {
      return ks::Internal(ks::StrPrintf(
          "no stacked record found for %s:%s while undoing %s",
          fn.unit.c_str(), fn.symbol.c_str(), id.c_str()));
    }
    rewrites.push_back(ChainRewrite{dependent, &fn});
  }

  KS_RETURN_IF_ERROR(RunHooks(update.hooks.pre_reverse));

  // No thread may be executing (or returning into) the replacement code we
  // are about to disconnect and unload.
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  for (const AppliedFunction& fn : update.functions) {
    ranges.emplace_back(fn.repl_address, fn.repl_address + fn.repl_size);
  }

  RendezvousOutcome outcome;
  ks::Status stopped = RunRendezvous(
      *machine_, options, ranges,
      [&](kvm::Machine& m) -> ks::Status {
        ks::Status hooks = RunHooks(update.hooks.reverse);
        if (!hooks.ok()) {
          // Re-establish what the reverse hooks that did run tore down;
          // the update stays applied.
          ks::ScopedFaultSuppression suppress;
          RunHooksBestEffort(update.hooks.apply);
          return hooks;
        }
        // Restore-or-abort: if any restore fails partway through, put the
        // already-restored trampolines back — all inside this same stop
        // window — so the machine leaves it either fully reversed or still
        // fully patched, never a mix.
        std::vector<std::pair<uint32_t, std::vector<uint8_t>>> undone;
        for (const AppliedFunction* fn : restores) {
          ks::Result<std::vector<uint8_t>> tramp = m.ReadBytes(
              fn->orig_address,
              static_cast<uint32_t>(fn->saved_bytes.size()));
          ks::Status st = tramp.ok()
                              ? ks::Faults().Check("ksplice.undo.restore")
                              : ks::Status(tramp.status());
          if (st.ok()) {
            st = m.WriteBytes(fn->orig_address, fn->saved_bytes);
          }
          if (!st.ok()) {
            ks::ScopedFaultSuppression suppress;
            for (auto it = undone.rbegin(); it != undone.rend(); ++it) {
              (void)m.WriteBytes(it->first, it->second);
            }
            RunHooksBestEffort(update.hooks.apply);
            return st;
          }
          undone.emplace_back(fn->orig_address, std::move(tramp).value());
        }
        return ks::OkStatus();
      },
      "undo", &outcome);
  report.attempts = outcome.attempts;
  report.retry_ticks = outcome.retry_ticks;
  report.pause_ns = outcome.pause_ns;
  report.blockers = outcome.blockers;
  if (!stopped.ok()) {
    return stopped.WithContext(ks::StrPrintf("undoing %s", id.c_str()));
  }
  report.quiescence_retries = report.attempts - 1;

  // Past this point the undo is committed: the trampolines are gone, so
  // the update must leave the registry even if a cleanup hook complains
  // (mirrors the apply-side Commit contract).
  ks::Status post_reverse = RunHooks(update.hooks.post_reverse);

  // The machine no longer references the departing update: re-point the
  // stacked records of newer updates at what it had replaced.
  for (const ChainRewrite& rewrite : rewrites) {
    rewrite.dependent->code_address = rewrite.removed->code_address;
    rewrite.dependent->code_size = rewrite.removed->code_size;
    rewrite.dependent->saved_bytes = rewrite.removed->saved_bytes;
  }
  report.chains_rewritten = static_cast<uint32_t>(rewrites.size());

  report.functions_restored = static_cast<uint32_t>(update.functions.size());
  for (const AppliedFunction* fn : restores) {
    report.bytes_restored += static_cast<uint32_t>(fn->saved_bytes.size());
  }
  ks::Result<kvm::ModuleInfo> primary_info =
      machine_->GetModuleInfo(update.primary);
  if (primary_info.ok()) {
    report.primary_bytes_reclaimed = primary_info->size;
  }
  (void)machine_->UnloadModule(update.primary);
  if (update.helper.valid()) {
    report.helper_bytes_reclaimed = update.helper_bytes;
    (void)machine_->UnloadModule(update.helper);
  }
  bool was_out_of_order = report.out_of_order;
  applied_.erase(applied_.begin() + static_cast<long>(index));

  static ks::Counter& undos = ks::Metrics().GetCounter("ksplice.undos");
  static ks::Counter& ooo_undos =
      ks::Metrics().GetCounter("ksplice.out_of_order_undos");
  static ks::Counter& chain_rewrites =
      ks::Metrics().GetCounter("ksplice.chain_rewrites");
  static ks::Counter& retries =
      ks::Metrics().GetCounter("ksplice.quiescence_retries");
  static ks::Histogram& pause =
      ks::Metrics().GetHistogram("ksplice.stop_pause_ns");
  undos.Add(1);
  if (was_out_of_order) {
    ooo_undos.Add(1);
  }
  chain_rewrites.Add(report.chains_rewritten);
  retries.Add(static_cast<uint64_t>(report.quiescence_retries));
  pause.Observe(report.pause_ns);
  span.Annotate("functions",
                static_cast<uint64_t>(report.functions_restored));
  span.Annotate("chains_rewritten",
                static_cast<uint64_t>(report.chains_rewritten));
  span.AddTicks(report.retry_ticks);

  KS_LOG(kInfo) << "reversed " << id
                << (was_out_of_order ? " (out of order)" : "");
  if (!post_reverse.ok()) {
    return post_reverse.WithContext(ks::StrPrintf(
        "post_reverse (update %s reversed)", report.id.c_str()));
  }
  return report;
}

ks::Status UpdateManager::UnloadHelper(const std::string& id) {
  for (AppliedUpdate& update : applied_) {
    if (update.id == id) {
      if (!update.helper.valid()) {
        return ks::FailedPrecondition("helper already unloaded");
      }
      KS_RETURN_IF_ERROR(machine_->UnloadModule(update.helper));
      update.helper = kvm::ModuleHandle{};
      return ks::OkStatus();
    }
  }
  return ks::NotFound(ks::StrPrintf("no applied update %s", id.c_str()));
}

void UpdateManager::NoteAttributedFault(AttributedFault fault) {
  attributed_faults_.push_back(std::move(fault));
  static ks::Counter& attributed =
      ks::Metrics().GetCounter("ksplice.watchdog.faults_attributed");
  attributed.Add(1);
}

StatusReport UpdateManager::Status() const {
  StatusReport status;
  status.arena_bytes_in_use = machine_->ModuleArenaBytesInUse();
  for (const AppliedUpdate& update : applied_) {
    UpdateStatusRow row;
    row.id = update.id;
    row.functions = static_cast<uint32_t>(update.functions.size());
    row.helper_loaded = update.helper.valid();
    row.helper_bytes = update.helper.valid() ? update.helper_bytes : 0;
    row.primary_bytes = update.primary_size;
    for (const AppliedFunction& fn : update.functions) {
      row.trampoline_bytes += static_cast<uint32_t>(fn.saved_bytes.size());
      row.symbols.push_back(fn.unit + ":" + fn.symbol);
    }
    for (const AttributedFault& fault : attributed_faults_) {
      if (fault.update == update.id) {
        ++row.attributed_faults;
      }
    }
    status.updates.push_back(std::move(row));
  }
  status.health.faults_total = machine_->FaultCount();
  status.health.faults_attributed = attributed_faults_.size();
  status.health.extable_fixups = machine_->ExtableFixups();
  status.health.dropped_log_lines = machine_->DroppedLogLines();
  status.health.panicked = machine_->Halted();
  status.health.attributed = attributed_faults_;
  status.quarantine = quarantine_.Entries();
  return status;
}

}  // namespace ksplice
