// UpdateManager: the applied-update registry and the undo engine.
//
// The manager owns the stack of applied updates (paper §5.4's "Ksplice
// keeps track of what code is patched") and everything that reads or
// mutates it:
//
//  - Apply / ApplyAll stage packages through an UpdateTransaction
//    (transaction.h) and register the result here. ApplyAll splices every
//    function of every package in ONE stop_machine rendezvous with a
//    single combined quiescence check.
//  - Undo reverses any applied update, not just the newest. Reversing a
//    mid-stack update re-points the stacked records of newer updates at
//    the removed update's replaced code (CurrentCode chain rewriting), so
//    their trampolines and saved bytes stay consistent; it refuses only
//    when a newer update's module imports resolve into the module being
//    removed (the new-globals hazard).
//  - CurrentCode answers the §5.4 stacking question: where does the
//    newest version of (unit, symbol) live right now?
//
// KspliceCore (core.h) is a thin facade over this class.

#ifndef KSPLICE_KSPLICE_MANAGER_H_
#define KSPLICE_KSPLICE_MANAGER_H_

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "ksplice/package.h"
#include "ksplice/quarantine.h"
#include "ksplice/rendezvous.h"
#include "ksplice/report.h"
#include "kvm/machine.h"

namespace ksplice {

// Apply knobs composed with the shared stop_machine retry policy
// (RendezvousOptions, rendezvous.h). Composition, not inheritance: callers
// that need only the retry policy — Undo, the fleet rollout orchestrator
// deriving per-node backoff seeds — take or pass `rendezvous` directly
// instead of slicing an ApplyOptions.
struct ApplyOptions {
  // Stop_machine retry policy shared with undo (see rendezvous.h).
  RendezvousOptions rendezvous;
  // Keep the helper image loaded after a successful apply (off by default;
  // unloading it saves memory, §5.1).
  bool keep_helper = false;
  // Worker threads for the run-pre match stage (1 = serial; matching is
  // read-only on the machine, so units can be verified concurrently).
  int jobs = 1;
  // Use the canonical n-gram prefilter in run-pre matching (see
  // ksplice/runpre.h). Off = the linear fallback, same decisions, more
  // bytes walked; exposed as `--no-index` in ksplice_tool.
  bool use_index = true;
  // Apply a package even if its content hash is quarantined (the watchdog
  // reverted it after an attributed regression, quarantine.h). The
  // override also clears the quarantine entry — exposed as `--force` in
  // ksplice_tool.
  bool force = false;
};

// One spliced function of an applied update.
struct AppliedFunction {
  std::string unit;
  std::string symbol;
  uint32_t orig_address = 0;  // entry of the obsolete function (trampoline)
  uint32_t code_address = 0;  // code that was matched/replaced (== orig, or
                              // the previous replacement when stacking)
  uint32_t code_size = 0;
  uint32_t repl_address = 0;  // the new code in the primary module
  uint32_t repl_size = 0;
  std::vector<uint8_t> saved_bytes;  // original bytes under the trampoline
};

struct AppliedUpdate {
  std::string id;
  std::vector<AppliedFunction> functions;
  kvm::ModuleHandle primary;
  kvm::ModuleHandle helper;  // invalid once unloaded
  uint32_t helper_bytes = 0;
  uint32_t primary_base = 0;  // primary module range, for the out-of-order
  uint32_t primary_size = 0;  // undo dependency check
  // Content hash of the package this update came from (recorded at apply
  // time): the key an automatic revert quarantines under.
  uint64_t package_hash = 0;
  HookSet hooks;
  // External symbols the primary link resolved (name -> value). A later
  // update whose imports land inside this update's primary module depends
  // on it and blocks its out-of-order removal.
  std::vector<std::pair<std::string, uint32_t>> imports;
};

class UpdateManager {
 public:
  explicit UpdateManager(kvm::Machine* machine) : machine_(machine) {}

  // Applies `package` through a single-package transaction; returns a
  // typed account of what happened (the report's `id` doubles as the undo
  // handle). On any failure every completed stage is rolled back and the
  // machine is left byte-identical to its pre-apply state.
  ks::Result<ApplyReport> Apply(const UpdatePackage& package,
                                const ApplyOptions& options = {});

  // Applies every package in one transaction: all packages are matched and
  // loaded up front, then every function of every package is spliced in a
  // single stop_machine rendezvous with one combined quiescence check. If
  // any package fails any stage, the whole batch rolls back. Packages in
  // one batch must be independent (no two may target the same function);
  // stacked updates apply in separate calls.
  ks::Result<BatchApplyReport> ApplyAll(std::span<const UpdatePackage> packages,
                                        const ApplyOptions& options = {});

  // Reverses the applied update named `id` — any update, not just the top
  // of the stack. Mid-stack removal rewrites the affected chains of newer
  // updates; it fails (kFailedPrecondition) if a newer update's imports
  // resolve into the module being removed.
  ks::Result<UndoReport> Undo(const std::string& id,
                              const RendezvousOptions& options = {});

  // Unloads the helper image of an applied update (memory reclaim, §5.1).
  ks::Status UnloadHelper(const std::string& id);

  const std::vector<AppliedUpdate>& applied() const { return applied_; }

  // Stacking redirect (§5.4): current code location for (unit, symbol).
  std::optional<std::pair<uint32_t, uint32_t>> CurrentCode(
      const std::string& unit, const std::string& symbol) const;

  // Snapshot of the applied-update stack for `ksplice_tool status`,
  // including the machine-health block and the quarantine entries.
  StatusReport Status() const;

  // The package quarantine (watchdog.h adds entries on automatic revert;
  // the apply transaction refuses quarantined hashes without `force`).
  Quarantine& quarantine() { return quarantine_; }
  const Quarantine& quarantine() const { return quarantine_; }

  // Records watchdog evidence: a fault whose PC was attributed to an
  // applied update. Feeds Status()'s health block and the per-row
  // attributed_faults counts that `ksplice_tool status` exits 1 on.
  void NoteAttributedFault(AttributedFault fault);
  const std::vector<AttributedFault>& attributed_faults() const {
    return attributed_faults_;
  }

  kvm::Machine* machine() const { return machine_; }

 private:
  friend class UpdateTransaction;

  // Finds the applied function record that currently owns (unit, symbol).
  const AppliedFunction* FindApplied(const std::string& unit,
                                     const std::string& symbol) const;

  ks::Status RunHooks(const std::vector<uint32_t>& hooks);
  // Runs every hook, ignoring failures (rollback compensation must make as
  // much progress as it can).
  void RunHooksBestEffort(const std::vector<uint32_t>& hooks);

  // Registers a committed update (called by UpdateTransaction).
  void Register(AppliedUpdate update) {
    applied_.push_back(std::move(update));
  }

  // Fresh module-group tag for one transaction's loads.
  std::string NextTransactionGroup();

  kvm::Machine* machine_;
  std::vector<AppliedUpdate> applied_;
  Quarantine quarantine_;
  std::vector<AttributedFault> attributed_faults_;
  uint64_t next_txn_ = 0;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_MANAGER_H_
