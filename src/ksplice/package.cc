#include "ksplice/package.h"

#include "base/faultinject.h"

#include "base/endian.h"
#include "base/strings.h"

namespace ksplice {

const std::array<HookStageBinding, 6>& HookStageBindings() {
  static const std::array<HookStageBinding, 6> kBindings = {{
      {"pre_apply", ".ksplice.pre_apply", &HookSet::pre_apply},
      {"apply", ".ksplice.apply", &HookSet::apply},
      {"post_apply", ".ksplice.post_apply", &HookSet::post_apply},
      {"pre_reverse", ".ksplice.pre_reverse", &HookSet::pre_reverse},
      {"reverse", ".ksplice.reverse", &HookSet::reverse},
      {"post_reverse", ".ksplice.post_reverse", &HookSet::post_reverse},
  }};
  return kBindings;
}

namespace {

constexpr uint32_t kMagic = 0x4b535055;  // "KSPU"
constexpr uint32_t kVersion = 2;         // v2: payload checksum after magic

uint32_t Fnv32(const uint8_t* data, size_t size) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  size_t at = out.size();
  out.resize(at + 4);
  ks::WriteLe32(out.data() + at, v);
}

void PutStr(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void PutBlob(std::vector<uint8_t>& out, const std::vector<uint8_t>& b) {
  PutU32(out, static_cast<uint32_t>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

struct Cursor {
  const std::vector<uint8_t>& in;
  size_t pos = 0;

  ks::Result<uint32_t> U32() {
    if (pos + 4 > in.size()) {
      return ks::InvalidArgument("package: truncated");
    }
    uint32_t v = ks::ReadLe32(in.data() + pos);
    pos += 4;
    return v;
  }
  ks::Result<std::string> Str() {
    KS_ASSIGN_OR_RETURN(uint32_t n, U32());
    // `n > remaining` rather than `pos + n > size`: the length is read
    // from the (possibly corrupt) file and must not overflow the check.
    if (n > in.size() - pos) {
      return ks::InvalidArgument("package: truncated string");
    }
    std::string s(reinterpret_cast<const char*>(in.data() + pos), n);
    pos += n;
    return s;
  }
  ks::Result<std::vector<uint8_t>> Blob() {
    KS_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > in.size() - pos) {
      return ks::InvalidArgument("package: truncated blob");
    }
    std::vector<uint8_t> b(in.begin() + static_cast<long>(pos),
                           in.begin() + static_cast<long>(pos + n));
    pos += n;
    return b;
  }
};

}  // namespace

std::string ScopedName(const std::string& unit, const std::string& symbol) {
  return unit + std::string(kScopeSeparator) + symbol;
}

ScopedSymbol SplitScopedName(const std::string& name) {
  size_t sep = name.find(kScopeSeparator);
  if (sep == std::string::npos) {
    return ScopedSymbol{"", name};
  }
  return ScopedSymbol{name.substr(0, sep),
                      name.substr(sep + kScopeSeparator.size())};
}

std::vector<uint8_t> UpdatePackage::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(out, kMagic);
  PutU32(out, kVersion);
  PutU32(out, 0);  // checksum placeholder, filled below
  PutStr(out, id);
  PutU32(out, static_cast<uint32_t>(helper_objects.size()));
  for (const kelf::ObjectFile& obj : helper_objects) {
    PutBlob(out, obj.Serialize());
  }
  PutU32(out, static_cast<uint32_t>(primary_objects.size()));
  for (const kelf::ObjectFile& obj : primary_objects) {
    PutBlob(out, obj.Serialize());
  }
  PutU32(out, static_cast<uint32_t>(targets.size()));
  for (const Target& target : targets) {
    PutStr(out, target.unit);
    PutStr(out, target.symbol);
    PutStr(out, target.section);
  }
  // Integrity checksum over everything after the checksum field, so a
  // corrupted download is rejected before any of it is interpreted.
  ks::WriteLe32(out.data() + 8, Fnv32(out.data() + 12, out.size() - 12));
  return out;
}

ks::Result<UpdatePackage> UpdatePackage::Parse(
    const std::vector<uint8_t>& bytes) {
  KS_FAULT_POINT("ksplice.package.parse");
  Cursor cursor{bytes};
  KS_ASSIGN_OR_RETURN(uint32_t magic, cursor.U32());
  if (magic != kMagic) {
    return ks::InvalidArgument("package: bad magic");
  }
  KS_ASSIGN_OR_RETURN(uint32_t version, cursor.U32());
  if (version != kVersion) {
    return ks::InvalidArgument(
        ks::StrPrintf("package: unsupported version %u", version));
  }
  KS_ASSIGN_OR_RETURN(uint32_t checksum, cursor.U32());
  if (bytes.size() < 12 ||
      checksum != Fnv32(bytes.data() + 12, bytes.size() - 12)) {
    return ks::InvalidArgument("package: checksum mismatch (corrupt file)");
  }
  UpdatePackage pkg;
  KS_ASSIGN_OR_RETURN(pkg.id, cursor.Str());
  KS_ASSIGN_OR_RETURN(uint32_t num_helpers, cursor.U32());
  for (uint32_t i = 0; i < num_helpers; ++i) {
    KS_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, cursor.Blob());
    KS_ASSIGN_OR_RETURN(kelf::ObjectFile obj, kelf::ObjectFile::Parse(blob));
    pkg.helper_objects.push_back(std::move(obj));
  }
  KS_ASSIGN_OR_RETURN(uint32_t num_primaries, cursor.U32());
  for (uint32_t i = 0; i < num_primaries; ++i) {
    KS_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, cursor.Blob());
    KS_ASSIGN_OR_RETURN(kelf::ObjectFile obj, kelf::ObjectFile::Parse(blob));
    pkg.primary_objects.push_back(std::move(obj));
  }
  KS_ASSIGN_OR_RETURN(uint32_t num_targets, cursor.U32());
  for (uint32_t i = 0; i < num_targets; ++i) {
    Target target;
    KS_ASSIGN_OR_RETURN(target.unit, cursor.Str());
    KS_ASSIGN_OR_RETURN(target.symbol, cursor.Str());
    KS_ASSIGN_OR_RETURN(target.section, cursor.Str());
    pkg.targets.push_back(std::move(target));
  }
  if (cursor.pos != bytes.size()) {
    return ks::InvalidArgument("package: trailing bytes");
  }
  return pkg;
}

}  // namespace ksplice
