// The Ksplice update package: the artifact ksplice-create writes and
// ksplice-apply consumes (the paper's ksplice-xxxxxx.tar.gz, §5).
//
// A package carries:
//  - helper objects: the complete pre-build object of every rebuilt
//    compilation unit. The helper "must contain the entire optimization
//    unit corresponding to each patched function" (§5.1) because run-pre
//    matching recovers local symbol values from *unchanged* neighbours.
//  - primary objects (one per rebuilt unit): the extracted post sections
//    (changed functions, new data, .ksplice.* hook tables) with their
//    relocations intact. Imports that must resolve through run-pre
//    recovered values are scoped "unit::name"; plain names resolve through
//    exported kernel symbols or package-internal new globals.
//  - targets: the functions to splice (unit, symbol), i.e. changed
//    sections that exist in the running kernel.

#ifndef KSPLICE_KSPLICE_PACKAGE_H_
#define KSPLICE_KSPLICE_PACKAGE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "kelf/objfile.h"

namespace ksplice {

// Separator between the unit scope and symbol name in scoped imports.
inline constexpr std::string_view kScopeSeparator = "::";

// Builds/splits scoped import names.
std::string ScopedName(const std::string& unit, const std::string& symbol);
// Returns (unit, symbol) if `name` is scoped, nullopt-like empty unit if
// not.
struct ScopedSymbol {
  std::string unit;    // empty => unscoped
  std::string symbol;
};
ScopedSymbol SplitScopedName(const std::string& name);

struct Target {
  std::string unit;
  std::string symbol;
  std::string section;  // post section name, e.g. ".text.foo"
};

struct UpdatePackage {
  std::string id;  // e.g. "ksplice-8c4o6u"
  std::vector<kelf::ObjectFile> helper_objects;
  std::vector<kelf::ObjectFile> primary_objects;
  std::vector<Target> targets;

  std::vector<uint8_t> Serialize() const;
  static ks::Result<UpdatePackage> Parse(const std::vector<uint8_t>& bytes);
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_PACKAGE_H_
