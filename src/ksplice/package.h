// The Ksplice update package: the artifact ksplice-create writes and
// ksplice-apply consumes (the paper's ksplice-xxxxxx.tar.gz, §5).
//
// A package carries:
//  - helper objects: the complete pre-build object of every rebuilt
//    compilation unit. The helper "must contain the entire optimization
//    unit corresponding to each patched function" (§5.1) because run-pre
//    matching recovers local symbol values from *unchanged* neighbours.
//  - primary objects (one per rebuilt unit): the extracted post sections
//    (changed functions, new data, .ksplice.* hook tables) with their
//    relocations intact. Imports that must resolve through run-pre
//    recovered values are scoped "unit::name"; plain names resolve through
//    exported kernel symbols or package-internal new globals.
//  - targets: the functions to splice (unit, symbol), i.e. changed
//    sections that exist in the running kernel.

#ifndef KSPLICE_KSPLICE_PACKAGE_H_
#define KSPLICE_KSPLICE_PACKAGE_H_

#include <array>
#include <string>
#include <vector>

#include "base/status.h"
#include "kelf/objfile.h"

namespace ksplice {

// Separator between the unit scope and symbol name in scoped imports.
inline constexpr std::string_view kScopeSeparator = "::";

// Builds/splits scoped import names.
std::string ScopedName(const std::string& unit, const std::string& symbol);
// Returns (unit, symbol) if `name` is scoped, nullopt-like empty unit if
// not.
struct ScopedSymbol {
  std::string unit;    // empty => unscoped
  std::string symbol;
};
ScopedSymbol SplitScopedName(const std::string& name);

struct Target {
  std::string unit;
  std::string symbol;
  std::string section;  // post section name, e.g. ".text.foo"
};

// The six ksplice hook stages (§5.3) as one struct. A package's primary
// module declares hooks in note sections (".ksplice.pre_apply" etc.); the
// apply engine reads them into a HookSet and runs each stage at the right
// point of the transaction. Layout mirrors the lifecycle: the *_apply
// stages run around the splice, the *_reverse stages around the undo.
struct HookSet {
  std::vector<uint32_t> pre_apply;    // machine running, before rendezvous
  std::vector<uint32_t> apply;        // inside stop_machine, before splice
  std::vector<uint32_t> post_apply;   // machine running, after splice
  std::vector<uint32_t> pre_reverse;  // machine running, before undo
  std::vector<uint32_t> reverse;      // inside stop_machine, before restore
  std::vector<uint32_t> post_reverse; // machine running, after restore

  size_t TotalCount() const {
    return pre_apply.size() + apply.size() + post_apply.size() +
           pre_reverse.size() + reverse.size() + post_reverse.size();
  }
};

// One hook stage's name and the note section it is declared in, bound to
// the HookSet member that stores it. HookStageBindings() is the single
// source of truth for the stage/section naming shared by the package
// layer and the apply engine.
struct HookStageBinding {
  const char* stage;    // "pre_apply"
  const char* section;  // ".ksplice.pre_apply"
  std::vector<uint32_t> HookSet::*table;
};
const std::array<HookStageBinding, 6>& HookStageBindings();

struct UpdatePackage {
  std::string id;  // e.g. "ksplice-8c4o6u"
  std::vector<kelf::ObjectFile> helper_objects;
  std::vector<kelf::ObjectFile> primary_objects;
  std::vector<Target> targets;

  std::vector<uint8_t> Serialize() const;
  static ks::Result<UpdatePackage> Parse(const std::vector<uint8_t>& bytes);
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_PACKAGE_H_
