#include "ksplice/prepost.h"

#include <algorithm>
#include <optional>
#include <set>

#include "base/metrics.h"
#include "base/strings.h"
#include "base/threadpool.h"
#include "base/trace.h"
#include "kcc/objcache.h"

namespace ksplice {

namespace {

// The defining symbol name for a section, if any.
std::string DefiningSymbol(const kelf::ObjectFile& obj, int section_idx) {
  std::optional<int> sym = obj.DefiningSymbolForSection(section_idx);
  if (!sym.has_value()) {
    return "";
  }
  return obj.symbols()[static_cast<size_t>(*sym)].name;
}

uint32_t TextBytes(const kelf::ObjectFile& obj) {
  uint32_t bytes = 0;
  for (const kelf::Section& section : obj.sections()) {
    if (section.kind == kelf::SectionKind::kText) {
      bytes += static_cast<uint32_t>(section.bytes.size());
    }
  }
  return bytes;
}

}  // namespace

std::vector<ChangedSection> PrePostResult::ChangedOfKind(
    kelf::SectionKind kind) const {
  std::vector<ChangedSection> out;
  for (const ChangedSection& section : changed) {
    if (section.kind == kind) {
      out.push_back(section);
    }
  }
  return out;
}

std::vector<ChangedSection> PrePostResult::DataSemanticChanges() const {
  std::vector<ChangedSection> out;
  for (const ChangedSection& section : changed) {
    if (section.kind != kelf::SectionKind::kText &&
        section.kind != kelf::SectionKind::kNote &&
        // Howto-tagged sections (exception/bug tables, build timestamps)
        // are code metadata, not persistent state: a patch that moves a
        // fixup target or rebuilds a timestamp is routine, and the tables
        // ship with the replacement code rather than mutating live data.
        kelf::HowtoForSectionName(section.name) == kelf::Howto::kNone &&
        section.change == SectionChange::kModified) {
      out.push_back(section);
    }
  }
  return out;
}

bool SectionsEquivalent(const kelf::ObjectFile& pre_obj,
                        const kelf::Section& pre_sec,
                        const kelf::ObjectFile& post_obj,
                        const kelf::Section& post_sec) {
  if (pre_sec.kind != post_sec.kind || pre_sec.align != post_sec.align ||
      pre_sec.bytes != post_sec.bytes ||
      pre_sec.bss_size != post_sec.bss_size ||
      pre_sec.relocs.size() != post_sec.relocs.size()) {
    return false;
  }
  for (size_t i = 0; i < pre_sec.relocs.size(); ++i) {
    const kelf::Relocation& a = pre_sec.relocs[i];
    const kelf::Relocation& b = post_sec.relocs[i];
    if (a.offset != b.offset || a.type != b.type || a.addend != b.addend) {
      return false;
    }
    const kelf::Symbol& sa = pre_obj.symbols()[static_cast<size_t>(a.symbol)];
    const kelf::Symbol& sb =
        post_obj.symbols()[static_cast<size_t>(b.symbol)];
    if (sa.name != sb.name) {
      return false;
    }
  }
  return true;
}

ks::Result<PrePostResult> RunPrePost(const kdiff::SourceTree& pre_tree,
                                     const kdiff::Patch& patch,
                                     kcc::CompileOptions options) {
  ks::TraceSpan span("prepost.run");
  // Ksplice's builds always use section-per-function/datum (§3.2).
  options.function_sections = true;
  options.data_sections = true;

  ks::Result<kdiff::SourceTree> post_tree = kdiff::ApplyPatch(pre_tree, patch);
  if (!post_tree.ok()) {
    return ks::Status(post_tree.status()).WithContext("pre-post: patch");
  }

  std::set<std::string> touched;
  for (const std::string& path : patch.TouchedPaths()) {
    touched.insert(path);
  }

  // A unit is rebuilt when any file in its include closure (on either
  // side) was touched, or when the unit itself appears/disappears.
  std::set<std::string> rebuilt;
  auto consider = [&](const kdiff::SourceTree& tree,
                      const std::string& path) -> ks::Status {
    if (!kcc::IsCompilationUnit(path)) {
      return ks::OkStatus();
    }
    ks::Result<std::vector<std::string>> closure =
        kcc::IncludeClosure(tree, path);
    if (!closure.ok()) {
      // A unit whose includes are broken on one side will fail its build
      // below with a better message; treat it as rebuilt.
      rebuilt.insert(path);
      return ks::OkStatus();
    }
    for (const std::string& dep : *closure) {
      if (touched.count(dep) != 0) {
        rebuilt.insert(path);
        break;
      }
    }
    return ks::OkStatus();
  };
  for (const std::string& path : pre_tree.Paths()) {
    KS_RETURN_IF_ERROR(consider(pre_tree, path));
  }
  for (const std::string& path : post_tree->Paths()) {
    KS_RETURN_IF_ERROR(consider(*post_tree, path));
  }

  PrePostResult result;
  result.rebuilt_units.assign(rebuilt.begin(), rebuilt.end());

  // Every unit's double build and section diff is independent of every
  // other unit's, so fan out per unit (options.jobs workers). Workers
  // write only their own slot; the reduce below runs in unit order, so
  // the result — including which error is reported on failure — does not
  // depend on completion order.
  struct UnitOutcome {
    kelf::ObjectFile pre_obj;
    kelf::ObjectFile post_obj;
    std::vector<ChangedSection> changed;
    UnitReport report;
  };
  // Compiles one side of the double build, attributing the cache hit when
  // a cache is in play.
  auto compile_side = [&options](const kdiff::SourceTree& tree,
                                 const std::string& unit, const char* side,
                                 bool* was_hit)
      -> ks::Result<kelf::ObjectFile> {
    ks::Result<kelf::ObjectFile> built =
        options.cache != nullptr
            ? options.cache->GetOrCompile(tree, unit, options, was_hit)
            : kcc::CompileUnit(tree, unit, options);
    if (!built.ok()) {
      return ks::Status(built.status()).WithContext(side);
    }
    return built;
  };
  auto build_and_diff =
      [&](const std::string& unit) -> ks::Result<UnitOutcome> {
    ks::TraceSpan span("prepost.build_and_diff");
    span.Annotate("unit", unit);
    UnitOutcome out{kelf::ObjectFile(unit), kelf::ObjectFile(unit), {}, {}};
    out.report.unit = unit;
    if (pre_tree.Exists(unit)) {
      KS_ASSIGN_OR_RETURN(out.pre_obj,
                          compile_side(pre_tree, unit, "pre build",
                                       &out.report.pre_cache_hit));
    }
    if (post_tree->Exists(unit)) {
      KS_ASSIGN_OR_RETURN(out.post_obj,
                          compile_side(*post_tree, unit, "post build",
                                       &out.report.post_cache_hit));
    }
    out.report.pre_text_bytes = TextBytes(out.pre_obj);
    out.report.post_text_bytes = TextBytes(out.post_obj);

    // Diff post against pre.
    const kelf::ObjectFile& pre_obj = out.pre_obj;
    const kelf::ObjectFile& post_obj = out.post_obj;
    std::set<std::string> section_names;
    for (const kelf::Section& section : pre_obj.sections()) {
      section_names.insert(section.name);
    }
    for (const kelf::Section& section : post_obj.sections()) {
      section_names.insert(section.name);
    }
    out.report.sections_compared =
        static_cast<uint32_t>(section_names.size());
    for (size_t si = 0; si < post_obj.sections().size(); ++si) {
      const kelf::Section& post_sec = post_obj.sections()[si];
      std::optional<int> pre_idx = pre_obj.FindSection(post_sec.name);
      ChangedSection change;
      change.unit = unit;
      change.name = post_sec.name;
      change.kind = post_sec.kind;
      change.symbol = DefiningSymbol(post_obj, static_cast<int>(si));
      if (!pre_idx.has_value()) {
        change.change = SectionChange::kAdded;
        out.changed.push_back(std::move(change));
        continue;
      }
      const kelf::Section& pre_sec =
          pre_obj.sections()[static_cast<size_t>(*pre_idx)];
      if (!SectionsEquivalent(pre_obj, pre_sec, post_obj, post_sec)) {
        change.change = SectionChange::kModified;
        out.changed.push_back(std::move(change));
      }
    }
    for (size_t si = 0; si < pre_obj.sections().size(); ++si) {
      const kelf::Section& pre_sec = pre_obj.sections()[si];
      if (!post_obj.FindSection(pre_sec.name).has_value()) {
        ChangedSection change;
        change.unit = unit;
        change.name = pre_sec.name;
        change.kind = pre_sec.kind;
        change.change = SectionChange::kRemoved;
        change.symbol = DefiningSymbol(pre_obj, static_cast<int>(si));
        out.changed.push_back(std::move(change));
      }
    }
    out.report.sections_changed = static_cast<uint32_t>(out.changed.size());
    for (const ChangedSection& change : out.changed) {
      if (change.kind == kelf::SectionKind::kText) {
        out.report.text_changed += 1;
      } else if (change.kind != kelf::SectionKind::kNote) {
        out.report.data_changed += 1;
      }
    }
    return out;
  };

  std::vector<std::optional<ks::Result<UnitOutcome>>> slots(
      result.rebuilt_units.size());
  ks::ParallelFor(options.jobs, result.rebuilt_units.size(), [&](size_t i) {
    slots[i] = build_and_diff(result.rebuilt_units[i]);
  });

  for (std::optional<ks::Result<UnitOutcome>>& slot : slots) {
    if (!slot->ok()) {
      return slot->status();
    }
    UnitOutcome out = std::move(*slot).value();
    for (ChangedSection& change : out.changed) {
      result.changed.push_back(std::move(change));
    }
    result.pre_objects.push_back(std::move(out.pre_obj));
    result.post_objects.push_back(std::move(out.post_obj));
    result.unit_reports.push_back(std::move(out.report));
  }

  static ks::Counter& units =
      ks::Metrics().GetCounter("prepost.units_rebuilt");
  static ks::Counter& compared =
      ks::Metrics().GetCounter("prepost.sections_compared");
  static ks::Counter& changed_counter =
      ks::Metrics().GetCounter("prepost.sections_changed");
  units.Add(result.rebuilt_units.size());
  for (const UnitReport& report : result.unit_reports) {
    compared.Add(report.sections_compared);
    changed_counter.Add(report.sections_changed);
  }
  return result;
}

}  // namespace ksplice
