#include "ksplice/prepost.h"

#include <algorithm>
#include <optional>
#include <set>

#include "base/strings.h"
#include "base/threadpool.h"

namespace ksplice {

namespace {

// The defining symbol name for a section, if any.
std::string DefiningSymbol(const kelf::ObjectFile& obj, int section_idx) {
  std::optional<int> sym = obj.DefiningSymbolForSection(section_idx);
  if (!sym.has_value()) {
    return "";
  }
  return obj.symbols()[static_cast<size_t>(*sym)].name;
}

}  // namespace

std::vector<ChangedSection> PrePostResult::ChangedOfKind(
    kelf::SectionKind kind) const {
  std::vector<ChangedSection> out;
  for (const ChangedSection& section : changed) {
    if (section.kind == kind) {
      out.push_back(section);
    }
  }
  return out;
}

std::vector<ChangedSection> PrePostResult::DataSemanticChanges() const {
  std::vector<ChangedSection> out;
  for (const ChangedSection& section : changed) {
    if (section.kind != kelf::SectionKind::kText &&
        section.kind != kelf::SectionKind::kNote &&
        section.change == SectionChange::kModified) {
      out.push_back(section);
    }
  }
  return out;
}

bool SectionsEquivalent(const kelf::ObjectFile& pre_obj,
                        const kelf::Section& pre_sec,
                        const kelf::ObjectFile& post_obj,
                        const kelf::Section& post_sec) {
  if (pre_sec.kind != post_sec.kind || pre_sec.align != post_sec.align ||
      pre_sec.bytes != post_sec.bytes ||
      pre_sec.bss_size != post_sec.bss_size ||
      pre_sec.relocs.size() != post_sec.relocs.size()) {
    return false;
  }
  for (size_t i = 0; i < pre_sec.relocs.size(); ++i) {
    const kelf::Relocation& a = pre_sec.relocs[i];
    const kelf::Relocation& b = post_sec.relocs[i];
    if (a.offset != b.offset || a.type != b.type || a.addend != b.addend) {
      return false;
    }
    const kelf::Symbol& sa = pre_obj.symbols()[static_cast<size_t>(a.symbol)];
    const kelf::Symbol& sb =
        post_obj.symbols()[static_cast<size_t>(b.symbol)];
    if (sa.name != sb.name) {
      return false;
    }
  }
  return true;
}

ks::Result<PrePostResult> RunPrePost(const kdiff::SourceTree& pre_tree,
                                     const kdiff::Patch& patch,
                                     kcc::CompileOptions options) {
  // Ksplice's builds always use section-per-function/datum (§3.2).
  options.function_sections = true;
  options.data_sections = true;

  ks::Result<kdiff::SourceTree> post_tree = kdiff::ApplyPatch(pre_tree, patch);
  if (!post_tree.ok()) {
    return ks::Status(post_tree.status()).WithContext("pre-post: patch");
  }

  std::set<std::string> touched;
  for (const std::string& path : patch.TouchedPaths()) {
    touched.insert(path);
  }

  // A unit is rebuilt when any file in its include closure (on either
  // side) was touched, or when the unit itself appears/disappears.
  std::set<std::string> rebuilt;
  auto consider = [&](const kdiff::SourceTree& tree,
                      const std::string& path) -> ks::Status {
    if (!kcc::IsCompilationUnit(path)) {
      return ks::OkStatus();
    }
    ks::Result<std::vector<std::string>> closure =
        kcc::IncludeClosure(tree, path);
    if (!closure.ok()) {
      // A unit whose includes are broken on one side will fail its build
      // below with a better message; treat it as rebuilt.
      rebuilt.insert(path);
      return ks::OkStatus();
    }
    for (const std::string& dep : *closure) {
      if (touched.count(dep) != 0) {
        rebuilt.insert(path);
        break;
      }
    }
    return ks::OkStatus();
  };
  for (const std::string& path : pre_tree.Paths()) {
    KS_RETURN_IF_ERROR(consider(pre_tree, path));
  }
  for (const std::string& path : post_tree->Paths()) {
    KS_RETURN_IF_ERROR(consider(*post_tree, path));
  }

  PrePostResult result;
  result.rebuilt_units.assign(rebuilt.begin(), rebuilt.end());

  // Every unit's double build and section diff is independent of every
  // other unit's, so fan out per unit (options.jobs workers). Workers
  // write only their own slot; the reduce below runs in unit order, so
  // the result — including which error is reported on failure — does not
  // depend on completion order.
  struct UnitOutcome {
    kelf::ObjectFile pre_obj;
    kelf::ObjectFile post_obj;
    std::vector<ChangedSection> changed;
  };
  auto build_and_diff =
      [&](const std::string& unit) -> ks::Result<UnitOutcome> {
    UnitOutcome out{kelf::ObjectFile(unit), kelf::ObjectFile(unit), {}};
    if (pre_tree.Exists(unit)) {
      ks::Result<kelf::ObjectFile> built =
          kcc::CompileUnit(pre_tree, unit, options);
      if (!built.ok()) {
        return ks::Status(built.status()).WithContext("pre build");
      }
      out.pre_obj = std::move(built).value();
    }
    if (post_tree->Exists(unit)) {
      ks::Result<kelf::ObjectFile> built =
          kcc::CompileUnit(*post_tree, unit, options);
      if (!built.ok()) {
        return ks::Status(built.status()).WithContext("post build");
      }
      out.post_obj = std::move(built).value();
    }

    // Diff post against pre.
    const kelf::ObjectFile& pre_obj = out.pre_obj;
    const kelf::ObjectFile& post_obj = out.post_obj;
    for (size_t si = 0; si < post_obj.sections().size(); ++si) {
      const kelf::Section& post_sec = post_obj.sections()[si];
      std::optional<int> pre_idx = pre_obj.FindSection(post_sec.name);
      ChangedSection change;
      change.unit = unit;
      change.name = post_sec.name;
      change.kind = post_sec.kind;
      change.symbol = DefiningSymbol(post_obj, static_cast<int>(si));
      if (!pre_idx.has_value()) {
        change.change = SectionChange::kAdded;
        out.changed.push_back(std::move(change));
        continue;
      }
      const kelf::Section& pre_sec =
          pre_obj.sections()[static_cast<size_t>(*pre_idx)];
      if (!SectionsEquivalent(pre_obj, pre_sec, post_obj, post_sec)) {
        change.change = SectionChange::kModified;
        out.changed.push_back(std::move(change));
      }
    }
    for (size_t si = 0; si < pre_obj.sections().size(); ++si) {
      const kelf::Section& pre_sec = pre_obj.sections()[si];
      if (!post_obj.FindSection(pre_sec.name).has_value()) {
        ChangedSection change;
        change.unit = unit;
        change.name = pre_sec.name;
        change.kind = pre_sec.kind;
        change.change = SectionChange::kRemoved;
        change.symbol = DefiningSymbol(pre_obj, static_cast<int>(si));
        out.changed.push_back(std::move(change));
      }
    }
    return out;
  };

  std::vector<std::optional<ks::Result<UnitOutcome>>> slots(
      result.rebuilt_units.size());
  ks::ParallelFor(options.jobs, result.rebuilt_units.size(), [&](size_t i) {
    slots[i] = build_and_diff(result.rebuilt_units[i]);
  });

  for (std::optional<ks::Result<UnitOutcome>>& slot : slots) {
    if (!slot->ok()) {
      return slot->status();
    }
    UnitOutcome out = std::move(*slot).value();
    for (ChangedSection& change : out.changed) {
      result.changed.push_back(std::move(change));
    }
    result.pre_objects.push_back(std::move(out.pre_obj));
    result.post_objects.push_back(std::move(out.post_obj));
  }
  return result;
}

}  // namespace ksplice
