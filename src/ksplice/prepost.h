// Pre-post differencing (paper §3): build the kernel source twice — before
// and after the patch — with -ffunction-sections/-fdata-sections, and
// compare object code (bytes *and* relocation metadata) section by section
// to find what the patch really changed.
//
// The comparison is deliberately at the object layer: a patch that only
// touches a header still changes the callers' object code (implicit
// conversions), a patch that changes an inline-eligible callee changes
// every section it was expanded into, and extraneous recompilation
// differences are harmless (§3.2 — replacing an identical-source function
// with a different binary rendering of it is safe).

#ifndef KSPLICE_KSPLICE_PREPOST_H_
#define KSPLICE_KSPLICE_PREPOST_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kelf/objfile.h"
#include "ksplice/report.h"

namespace ksplice {

enum class SectionChange {
  kModified,  // exists in both, object code differs
  kAdded,     // exists only in post (new function/data)
  kRemoved,   // exists only in pre (deleted function/data)
};

struct ChangedSection {
  std::string unit;
  std::string name;          // section name, e.g. ".text.do_coredump"
  kelf::SectionKind kind = kelf::SectionKind::kText;
  SectionChange change = SectionChange::kModified;
  std::string symbol;        // defining symbol, if the section has one
};

struct PrePostResult {
  // Units whose include closure intersects the patch (rebuilt on both
  // sides), in deterministic order.
  std::vector<std::string> rebuilt_units;
  // Pre/post objects for the rebuilt units, parallel to rebuilt_units.
  std::vector<kelf::ObjectFile> pre_objects;
  std::vector<kelf::ObjectFile> post_objects;
  std::vector<ChangedSection> changed;
  // Per-unit build/diff statistics, parallel to rebuilt_units (cache hits
  // are attributed only when options.cache is set).
  std::vector<UnitReport> unit_reports;

  // Convenience filters.
  std::vector<ChangedSection> ChangedOfKind(kelf::SectionKind kind) const;
  // Modified (not added) non-text sections: the paper's "changes the
  // semantics of persistent data structures" signal — such a patch cannot
  // be applied without custom code (Table 1).
  std::vector<ChangedSection> DataSemanticChanges() const;
};

// Compares two sections structurally: payload bytes, bss size, kind,
// alignment, and relocations (offset, type, addend, and *referenced symbol
// name*). Symbol table indices are not compared — only identities.
bool SectionsEquivalent(const kelf::ObjectFile& pre_obj,
                        const kelf::Section& pre_sec,
                        const kelf::ObjectFile& post_obj,
                        const kelf::Section& post_sec);

// Builds pre and post objects for every unit affected by `patch` and
// diffs them. `options.function_sections`/`data_sections` are forced on.
ks::Result<PrePostResult> RunPrePost(const kdiff::SourceTree& pre_tree,
                                     const kdiff::Patch& patch,
                                     kcc::CompileOptions options);

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_PREPOST_H_
