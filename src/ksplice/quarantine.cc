#include "ksplice/quarantine.h"

#include <utility>

#include "base/metrics.h"

namespace ksplice {

uint64_t PackageContentHash(const UpdatePackage& package) {
  std::vector<uint8_t> bytes = package.Serialize();
  uint64_t hash = 14695981039346656037ull;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

void Quarantine::Add(QuarantineEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const QuarantineEntry& existing : entries_) {
    if (existing.package_hash == entry.package_hash) {
      return;
    }
  }
  entries_.push_back(std::move(entry));
  static ks::Counter& quarantined =
      ks::Metrics().GetCounter("ksplice.watchdog.quarantined");
  quarantined.Add(1);
}

bool Quarantine::Contains(uint64_t package_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const QuarantineEntry& entry : entries_) {
    if (entry.package_hash == package_hash) {
      return true;
    }
  }
  return false;
}

std::optional<QuarantineEntry> Quarantine::Find(uint64_t package_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const QuarantineEntry& entry : entries_) {
    if (entry.package_hash == package_hash) {
      return entry;
    }
  }
  return std::nullopt;
}

bool Quarantine::Remove(uint64_t package_hash) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->package_hash == package_hash) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<QuarantineEntry> Quarantine::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

size_t Quarantine::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace ksplice
