// Quarantine: the registry of packages the safety net has pulled back.
//
// When the watchdog attributes a runtime regression to an applied update
// and reverts it (watchdog.h), the offending package lands here, keyed by
// its content hash — FNV-64 over the serialized package bytes, so a
// re-created package with identical contents is refused even under a new
// file name. Apply consults the registry in the Prepare stage and refuses
// a quarantined package unless ApplyOptions::force is set; `ksplice_tool
// status --json` surfaces the entries (with the triggering fault as
// evidence) in its "quarantine" block. The fleet orchestrator reuses the
// same type as its fleet-level blacklist.

#ifndef KSPLICE_KSPLICE_QUARANTINE_H_
#define KSPLICE_KSPLICE_QUARANTINE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "ksplice/package.h"
#include "ksplice/report.h"

namespace ksplice {

// Content hash of a package: FNV-64 over UpdatePackage::Serialize(). This
// is the quarantine key — it covers the id, every helper/primary object,
// and the target list, so any byte-level change makes a distinct package.
uint64_t PackageContentHash(const UpdatePackage& package);

// Thread-safe append-mostly registry. Fleet soak verdicts add entries from
// concurrent node workers, so all accessors lock.
class Quarantine {
 public:
  // Registers `entry` (idempotent per hash: a second entry for an already
  // quarantined hash is dropped, the first evidence wins).
  void Add(QuarantineEntry entry);

  bool Contains(uint64_t package_hash) const;

  // The entry for `package_hash`, if quarantined (by value: the registry
  // may grow concurrently).
  std::optional<QuarantineEntry> Find(uint64_t package_hash) const;

  // Removes the entry for `package_hash`; returns whether it was present.
  // `apply --force` clears the entry so the operator's override sticks.
  bool Remove(uint64_t package_hash);

  std::vector<QuarantineEntry> Entries() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<QuarantineEntry> entries_;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_QUARANTINE_H_
