#include "ksplice/rendezvous.h"

#include <algorithm>
#include <chrono>

#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"
#include "ksplice/manager.h"

namespace ksplice {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15u);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9u;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebu;
  return z ^ (z >> 31);
}

// Backoff step for retry number `retry` (1-based): base doubled per retry,
// capped, then jittered by ±jitter (deterministic under the seeded PRNG).
// Jitter desynchronizes repeated stop attempts from periodic guest work —
// a fixed step can phase-lock with a loop that re-enters the patched
// function at the same cadence and never find it quiescent.
uint64_t BackoffStep(const RendezvousOptions& options, int retry,
                     uint64_t* rng) {
  uint64_t step = options.backoff_base_ticks;
  for (int i = 1; i < retry && step < options.backoff_max_ticks; ++i) {
    step *= 2;
  }
  step = std::min(step, options.backoff_max_ticks);
  double jitter = std::clamp(options.backoff_jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    double unit = static_cast<double>(SplitMix64(rng) >> 11) * 0x1.0p-53;
    double factor = 1.0 + jitter * (2.0 * unit - 1.0);
    step = static_cast<uint64_t>(static_cast<double>(step) * factor);
  }
  return std::max<uint64_t>(step, 1);
}

void MergeBlockers(std::vector<QuiescenceBlocker>* into,
                   const std::vector<QuiescenceBlocker>& found) {
  for (const QuiescenceBlocker& blocker : found) {
    bool seen = false;
    for (const QuiescenceBlocker& have : *into) {
      if (have.tid == blocker.tid && have.pc == blocker.pc) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      into->push_back(blocker);
    }
  }
}

std::string DescribeBlockers(const std::vector<QuiescenceBlocker>& blockers) {
  std::string out;
  size_t shown = std::min<size_t>(blockers.size(), 3);
  for (size_t i = 0; i < shown; ++i) {
    const QuiescenceBlocker& b = blockers[i];
    if (i != 0) {
      out += ", ";
    }
    out += ks::StrPrintf("thread %d at pc %s (%s %s)", b.tid,
                         ks::Hex32(b.pc).c_str(),
                         b.from_stack ? "stack word" : "pc in",
                         ks::Hex32(b.hit_address).c_str());
  }
  if (blockers.size() > shown) {
    out += ks::StrPrintf(" and %zu more", blockers.size() - shown);
  }
  return out;
}

}  // namespace

std::vector<QuiescenceBlocker> ThreadsIn(
    const kvm::Machine& machine,
    const std::vector<std::pair<uint32_t, uint32_t>>& ranges) {
  auto hit = [&ranges](uint32_t addr) {
    for (const auto& [begin, end] : ranges) {
      if (addr >= begin && addr < end) {
        return true;
      }
    }
    return false;
  };
  std::vector<QuiescenceBlocker> blockers;
  for (const kvm::ThreadInfo& thread : machine.Threads()) {
    if (thread.state == kvm::ThreadState::kDone ||
        thread.state == kvm::ThreadState::kFaulted) {
      continue;
    }
    QuiescenceBlocker blocker;
    blocker.tid = thread.tid;
    blocker.pc = thread.pc;
    if (hit(thread.pc)) {
      blocker.hit_address = thread.pc;
      blockers.push_back(blocker);
      continue;
    }
    // Conservative scan of every word of the kernel stack (§5.2): any
    // value that lands in a patched range is treated as a return address.
    for (uint32_t sp = thread.sp & ~3u; sp + 4 <= thread.stack_top;
         sp += 4) {
      ks::Result<uint32_t> word = machine.ReadWord(sp);
      if (word.ok() && hit(*word)) {
        blocker.hit_address = *word;
        blocker.from_stack = true;
        blockers.push_back(blocker);
        break;
      }
    }
  }
  return blockers;
}

ks::Status RunRendezvous(
    kvm::Machine& machine, const RendezvousOptions& options,
    const std::vector<std::pair<uint32_t, uint32_t>>& ranges,
    const std::function<ks::Status(kvm::Machine&)>& body, const char* what,
    RendezvousOutcome* outcome) {
  static ks::Counter& attempts_ctr =
      ks::Metrics().GetCounter("ksplice.rendezvous.attempts");
  static ks::Counter& retries_ctr =
      ks::Metrics().GetCounter("ksplice.rendezvous.retries");
  static ks::Counter& backoff_ctr =
      ks::Metrics().GetCounter("ksplice.rendezvous.backoff_ticks");
  static ks::Counter& blocked_ctr =
      ks::Metrics().GetCounter("ksplice.rendezvous.blocked_threads");
  static ks::Counter& exhausted_ctr =
      ks::Metrics().GetCounter("ksplice.rendezvous.exhausted");

  ks::TraceSpan span("ksplice.rendezvous");
  span.Annotate("what", what);

  *outcome = RendezvousOutcome{};
  uint64_t rng = options.backoff_seed ^ 0x243f6a8885a308d3u;
  int max_attempts = std::max(options.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    outcome->attempts = attempt;
    attempts_ctr.Add(1);
    std::vector<QuiescenceBlocker> found;
    uint64_t stop_begin = NowNs();
    ks::Status stopped = machine.StopMachine([&](kvm::Machine& m) {
      found = ThreadsIn(m, ranges);
      if (!found.empty()) {
        return ks::FailedPrecondition("patched code is in use");
      }
      return body(m);
    });
    if (stopped.ok()) {
      outcome->pause_ns = NowNs() - stop_begin;
      span.Annotate("attempts", static_cast<uint64_t>(attempt));
      span.AddTicks(outcome->retry_ticks);
      return ks::OkStatus();
    }
    if (stopped.code() != ks::ErrorCode::kFailedPrecondition) {
      // The body's own failure — not a busy signal; no retry.
      return stopped;
    }
    blocked_ctr.Add(found.size());
    MergeBlockers(&outcome->blockers, found);
    bool over_deadline = options.deadline_ticks > 0 &&
                         outcome->retry_ticks >= options.deadline_ticks;
    if (attempt >= max_attempts || over_deadline) {
      outcome->deadline_exhausted = over_deadline;
      exhausted_ctr.Add(1);
      span.Annotate("exhausted", static_cast<uint64_t>(1));
      return ks::ResourceExhausted(ks::StrPrintf(
          "%s: patched code still in use after %d attempt%s (%llu backoff "
          "ticks%s): %s",
          what, attempt, attempt == 1 ? "" : "s",
          static_cast<unsigned long long>(outcome->retry_ticks),
          over_deadline ? ", deadline reached" : "",
          DescribeBlockers(found.empty() ? outcome->blockers : found)
              .c_str()));
    }
    uint64_t step = BackoffStep(options, attempt, &rng);
    KS_LOG(kDebug) << what << " busy (attempt " << attempt << ", "
                   << found.size() << " blockers), backing off " << step
                   << " ticks";
    retries_ctr.Add(1);
    backoff_ctr.Add(step);
    outcome->retry_ticks += step;
    (void)machine.Advance(step);
  }
}

}  // namespace ksplice
