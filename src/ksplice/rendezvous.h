// The shared stop_machine rendezvous loop (§5.2).
//
// Apply and undo both need the same dance: stop the machine, check that no
// thread's pc (or conservatively-scanned stack word) lands in the code
// about to be patched, run a body inside the stop window, and — when the
// check says "busy" — let the machine make progress and try again. The
// paper prescribes retrying "after a short delay"; a fixed delay is either
// too short (wasted stop windows while a long syscall drains) or too long
// (update latency when the kernel went quiescent immediately), so the
// retry schedule here is exponential backoff with seeded jitter under two
// budgets: an attempt cap and an overall tick deadline.
//
// On exhaustion the caller gets ks::ResourceExhausted naming the threads
// and PCs that blocked quiescence on the final attempt; the same blocker
// records (union over every failed attempt) land in the outcome so
// Apply/Undo reports can show an operator why an update would not land.
//
// Observability: "ksplice.rendezvous.*" metrics (attempts, retries,
// backoff_ticks, blocked_threads, exhausted) and a trace span per call.

#ifndef KSPLICE_KSPLICE_RENDEZVOUS_H_
#define KSPLICE_KSPLICE_RENDEZVOUS_H_

#include <functional>
#include <utility>
#include <vector>

#include "base/status.h"
#include "ksplice/report.h"
#include "kvm/machine.h"

namespace ksplice {

// Stop_machine retry policy shared by apply and undo (§5.2: "tries again
// after a short delay; if multiple such attempts are unsuccessful, Ksplice
// abandons the upgrade attempt"). Retries use exponential backoff with
// seeded jitter — the machine is advanced backoff_base_ticks before the
// first retry, twice that before the next, and so on up to
// backoff_max_ticks per retry — under two budgets: at most max_attempts
// stop windows, and at most deadline_ticks of total backoff. Exhausting
// either yields kResourceExhausted naming the blocking threads.
struct RendezvousOptions {
  int max_attempts = 10;
  uint64_t backoff_base_ticks = 10'000;  // first retry's advance
  uint64_t backoff_max_ticks = 200'000;  // per-retry cap
  double backoff_jitter = 0.25;          // ± fraction of each step
  uint64_t deadline_ticks = 2'000'000;   // total backoff budget (0 = none)
  uint64_t backoff_seed = 0;             // jitter PRNG seed (deterministic)
};

// Scans every live thread of `machine` for a pc or stack word inside one
// of `ranges` ([begin, end) pairs); returns one record per blocked thread
// (first offending address wins). Call only while the machine is stopped.
std::vector<QuiescenceBlocker> ThreadsIn(
    const kvm::Machine& machine,
    const std::vector<std::pair<uint32_t, uint32_t>>& ranges);

// What one rendezvous did, success or not.
struct RendezvousOutcome {
  int attempts = 0;           // stop windows opened (1 = first try worked)
  uint64_t retry_ticks = 0;   // VM ticks advanced across backoff waits
  uint64_t pause_ns = 0;      // wall time of the successful stop window
  bool deadline_exhausted = false;  // gave up on the tick deadline
  // Union of blockers over every failed attempt, deduped by (tid, pc).
  std::vector<QuiescenceBlocker> blockers;
};

// Runs `body` under one stop_machine window once no live thread executes
// (or would return into) `ranges`, retrying with backoff per `options`.
// `what` names the operation for messages ("apply", "undo"). `outcome` is
// always filled, including on failure. Returns:
//  - ok: body ran and returned ok;
//  - kResourceExhausted: quiescence was never reached within the attempt
//    cap / tick deadline (message names a blocking thread + pc);
//  - anything else: the body's own error, passed through.
ks::Status RunRendezvous(
    kvm::Machine& machine, const RendezvousOptions& options,
    const std::vector<std::pair<uint32_t, uint32_t>>& ranges,
    const std::function<ks::Status(kvm::Machine&)>& body, const char* what,
    RendezvousOutcome* outcome);

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_RENDEZVOUS_H_
