#include "ksplice/report.h"

#include "base/strings.h"

namespace ksplice {

namespace {

std::string Escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string JoinJson(const std::vector<std::string>& parts) {
  std::string out = "[";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += parts[i];
  }
  out += ']';
  return out;
}

unsigned long long U(uint64_t v) {
  return static_cast<unsigned long long>(v);
}

}  // namespace

void MatchStats::MergeFrom(const MatchStats& other) {
  sections_matched += other.sections_matched;
  candidates_tried += other.candidates_tried;
  run_bytes_matched += other.run_bytes_matched;
  pre_bytes_walked += other.pre_bytes_walked;
  nop_bytes_skipped += other.nop_bytes_skipped;
  reloc_sites_inverted += other.reloc_sites_inverted;
  symbols_recovered += other.symbols_recovered;
  ambiguity_deferrals += other.ambiguity_deferrals;
  fixpoint_passes += other.fixpoint_passes;
  index_anchors += other.index_anchors;
  index_hits += other.index_hits;
  index_misses += other.index_misses;
  pre_bytes_canonicalized += other.pre_bytes_canonicalized;
  run_bytes_canonicalized += other.run_bytes_canonicalized;
  revalidations += other.revalidations;
  extable_sections_matched += other.extable_sections_matched;
  bug_table_sections_matched += other.bug_table_sections_matched;
  date_time_sections_matched += other.date_time_sections_matched;
}

std::string MatchStats::ToJson() const {
  return ks::StrPrintf(
      "{\"sections_matched\":%llu,\"candidates_tried\":%llu,"
      "\"run_bytes_matched\":%llu,\"pre_bytes_walked\":%llu,"
      "\"nop_bytes_skipped\":%llu,\"reloc_sites_inverted\":%llu,"
      "\"symbols_recovered\":%llu,\"ambiguity_deferrals\":%llu,"
      "\"fixpoint_passes\":%llu,\"index_anchors\":%llu,"
      "\"index_hits\":%llu,\"index_misses\":%llu,"
      "\"pre_bytes_canonicalized\":%llu,\"run_bytes_canonicalized\":%llu,"
      "\"revalidations\":%llu,\"extable_sections_matched\":%llu,"
      "\"bug_table_sections_matched\":%llu,"
      "\"date_time_sections_matched\":%llu}",
      U(sections_matched), U(candidates_tried), U(run_bytes_matched),
      U(pre_bytes_walked), U(nop_bytes_skipped), U(reloc_sites_inverted),
      U(symbols_recovered), U(ambiguity_deferrals), U(fixpoint_passes),
      U(index_anchors), U(index_hits), U(index_misses),
      U(pre_bytes_canonicalized), U(run_bytes_canonicalized),
      U(revalidations), U(extable_sections_matched),
      U(bug_table_sections_matched), U(date_time_sections_matched));
}

std::string LintFinding::ToString() const {
  std::string where;
  if (!unit.empty() || !symbol.empty()) {
    where = unit;
    if (!symbol.empty()) {
      where += (where.empty() ? "" : ":") + symbol;
    }
    if (has_offset) {
      where += ks::StrPrintf("+0x%x", offset);
    }
    where += ": ";
  }
  std::string out = ks::StrPrintf("%s %s [%s] %s%s", rule.c_str(),
                                  LintSeverityName(severity), pass.c_str(),
                                  where.c_str(), message.c_str());
  if (!hint.empty()) {
    out += " (hint: " + hint + ")";
  }
  return out;
}

std::string LintFinding::ToJson() const {
  std::string offset_field =
      has_offset ? ks::StrPrintf(",\"offset\":%u", offset) : "";
  return ks::StrPrintf(
      "{\"rule\":\"%s\",\"severity\":\"%s\",\"pass\":\"%s\","
      "\"unit\":\"%s\",\"symbol\":\"%s\"%s,\"message\":\"%s\","
      "\"hint\":\"%s\"}",
      Escaped(rule).c_str(), LintSeverityName(severity),
      Escaped(pass).c_str(), Escaped(unit).c_str(), Escaped(symbol).c_str(),
      offset_field.c_str(), Escaped(message).c_str(), Escaped(hint).c_str());
}

std::string LintFindingsJson(const std::vector<LintFinding>& findings) {
  std::vector<std::string> rows;
  for (const LintFinding& finding : findings) {
    rows.push_back(finding.ToJson());
  }
  return JoinJson(rows);
}

std::string LintReport::ToJson() const {
  return ks::StrPrintf(
      "{\"id\":\"%s\",\"errors\":%zu,\"warnings\":%zu,\"notes\":%zu,"
      "\"functions_scanned\":%llu,\"call_edges\":%llu,"
      "\"blocks_analyzed\":%llu,\"insns_decoded\":%llu,"
      "\"data_sections_compared\":%llu,\"functions_summarized\":%llu,"
      "\"findings\":%s}",
      Escaped(id).c_str(), errors(),
      CountAtLeast(LintSeverity::kWarning) - errors(),
      findings.size() - CountAtLeast(LintSeverity::kWarning),
      U(functions_scanned), U(call_edges), U(blocks_analyzed),
      U(insns_decoded), U(data_sections_compared), U(functions_summarized),
      LintFindingsJson(findings).c_str());
}

std::string UnitReport::ToJson() const {
  return ks::StrPrintf(
      "{\"unit\":\"%s\",\"pre_cache_hit\":%s,\"post_cache_hit\":%s,"
      "\"pre_text_bytes\":%u,\"post_text_bytes\":%u,"
      "\"sections_compared\":%u,\"sections_changed\":%u,"
      "\"text_changed\":%u,\"data_changed\":%u}",
      Escaped(unit).c_str(), pre_cache_hit ? "true" : "false",
      post_cache_hit ? "true" : "false", pre_text_bytes, post_text_bytes,
      sections_compared, sections_changed, text_changed, data_changed);
}

std::string ChangedFunction::ToJson() const {
  return ks::StrPrintf(
      "{\"unit\":\"%s\",\"symbol\":\"%s\",\"change\":\"%s\","
      "\"pre_size\":%u,\"post_size\":%u}",
      Escaped(unit).c_str(), Escaped(symbol).c_str(),
      Escaped(change).c_str(), pre_size, post_size);
}

std::string CreateReport::ToJson() const {
  std::vector<std::string> unit_rows;
  for (const UnitReport& unit : units) {
    unit_rows.push_back(unit.ToJson());
  }
  std::vector<std::string> fn_rows;
  for (const ChangedFunction& fn : changed_functions) {
    fn_rows.push_back(fn.ToJson());
  }
  return ks::StrPrintf(
      "{\"id\":\"%s\",\"units_rebuilt\":%u,\"cache_hits\":%llu,"
      "\"cache_misses\":%llu,\"prepost_wall_ns\":%llu,"
      "\"create_wall_ns\":%llu,\"targets\":%u,\"units\":%s,"
      "\"changed_functions\":%s,\"lint\":%s}",
      Escaped(id).c_str(), units_rebuilt, U(cache_hits), U(cache_misses),
      U(prepost_wall_ns), U(create_wall_ns), targets,
      JoinJson(unit_rows).c_str(), JoinJson(fn_rows).c_str(),
      lint.ToJson().c_str());
}

std::string SpliceRecord::ToJson() const {
  return ks::StrPrintf(
      "{\"unit\":\"%s\",\"symbol\":\"%s\",\"orig_address\":%u,"
      "\"repl_address\":%u,\"code_size\":%u,\"repl_size\":%u,"
      "\"trampoline_bytes\":%u}",
      Escaped(unit).c_str(), Escaped(symbol).c_str(), orig_address,
      repl_address, code_size, repl_size, trampoline_bytes);
}

std::string QuiescenceBlocker::ToJson() const {
  return ks::StrPrintf(
      "{\"tid\":%d,\"pc\":%u,\"hit_address\":%u,\"from_stack\":%s}", tid,
      pc, hit_address, from_stack ? "true" : "false");
}

std::string StageTiming::ToJson() const {
  return ks::StrPrintf("{\"stage\":\"%s\",\"wall_ns\":%llu}",
                       Escaped(stage).c_str(), U(wall_ns));
}

namespace {

std::string StagesJson(const std::vector<StageTiming>& stages) {
  std::vector<std::string> rows;
  for (const StageTiming& stage : stages) {
    rows.push_back(stage.ToJson());
  }
  return JoinJson(rows);
}

std::string BlockersJson(const std::vector<QuiescenceBlocker>& blockers) {
  std::vector<std::string> rows;
  for (const QuiescenceBlocker& blocker : blockers) {
    rows.push_back(blocker.ToJson());
  }
  return JoinJson(rows);
}

}  // namespace

std::string ApplyReport::ToJson() const {
  std::vector<std::string> fn_rows;
  for (const SpliceRecord& fn : functions) {
    fn_rows.push_back(fn.ToJson());
  }
  return ks::StrPrintf(
      "{\"id\":\"%s\",\"functions\":%s,\"match\":%s,\"attempts\":%d,"
      "\"quiescence_retries\":%d,\"pause_ns\":%llu,\"retry_ticks\":%llu,"
      "\"helper_bytes\":%llu,\"primary_bytes\":%u,\"trampoline_bytes\":%u,"
      "\"helper_retained\":%s,\"stages\":%s,\"blockers\":%s}",
      Escaped(id).c_str(), JoinJson(fn_rows).c_str(),
      match.ToJson().c_str(), attempts, quiescence_retries, U(pause_ns),
      U(retry_ticks), U(helper_bytes), primary_bytes, trampoline_bytes,
      helper_retained ? "true" : "false", StagesJson(stages).c_str(),
      BlockersJson(blockers).c_str());
}

std::string BatchApplyReport::ToJson() const {
  std::vector<std::string> rows;
  for (const ApplyReport& update : updates) {
    rows.push_back(update.ToJson());
  }
  return ks::StrPrintf(
      "{\"packages\":%u,\"updates\":%s,\"attempts\":%d,"
      "\"quiescence_retries\":%d,\"pause_ns\":%llu,\"retry_ticks\":%llu,"
      "\"functions_spliced\":%u,\"stages\":%s,\"blockers\":%s}",
      packages, JoinJson(rows).c_str(), attempts, quiescence_retries,
      U(pause_ns), U(retry_ticks), functions_spliced,
      StagesJson(stages).c_str(), BlockersJson(blockers).c_str());
}

std::string UndoReport::ToJson() const {
  return ks::StrPrintf(
      "{\"id\":\"%s\",\"functions_restored\":%u,\"attempts\":%d,"
      "\"quiescence_retries\":%d,\"pause_ns\":%llu,\"retry_ticks\":%llu,"
      "\"bytes_restored\":%u,\"primary_bytes_reclaimed\":%u,"
      "\"helper_bytes_reclaimed\":%u,\"out_of_order\":%s,"
      "\"chains_rewritten\":%u,\"blockers\":%s}",
      Escaped(id).c_str(), functions_restored, attempts,
      quiescence_retries, U(pause_ns), U(retry_ticks), bytes_restored,
      primary_bytes_reclaimed, helper_bytes_reclaimed,
      out_of_order ? "true" : "false", chains_rewritten,
      BlockersJson(blockers).c_str());
}

std::string AttributedFault::ToJson() const {
  return ks::StrPrintf(
      "{\"update\":\"%s\",\"unit\":\"%s\",\"symbol\":\"%s\",\"tid\":%d,"
      "\"pc\":%u,\"tick\":%llu,\"reason\":\"%s\"}",
      Escaped(update).c_str(), Escaped(unit).c_str(),
      Escaped(symbol).c_str(), tid, pc, U(tick), Escaped(reason).c_str());
}

namespace {

std::string AttributedJson(const std::vector<AttributedFault>& faults) {
  std::vector<std::string> rows;
  for (const AttributedFault& fault : faults) {
    rows.push_back(fault.ToJson());
  }
  return JoinJson(rows);
}

}  // namespace

std::string RevertReport::ToJson() const {
  return ks::StrPrintf(
      "{\"id\":\"%s\",\"package_hash\":%llu,\"trigger\":%s,"
      "\"detected_tick\":%llu,\"attempts\":%d,\"backoff_ticks\":%llu,"
      "\"reverted\":%s,\"quarantined\":%s,\"error\":\"%s\",\"undo\":%s}",
      Escaped(id).c_str(), U(package_hash), trigger.ToJson().c_str(),
      U(detected_tick), attempts, U(backoff_ticks),
      reverted ? "true" : "false", quarantined ? "true" : "false",
      Escaped(error).c_str(), undo.ToJson().c_str());
}

std::string WatchdogReport::ToJson() const {
  std::vector<std::string> unattributed_rows;
  for (const std::string& line : unattributed) {
    unattributed_rows.push_back(
        ks::StrPrintf("\"%s\"", Escaped(line).c_str()));
  }
  std::vector<std::string> revert_rows;
  for (const RevertReport& revert : reverts) {
    revert_rows.push_back(revert.ToJson());
  }
  return ks::StrPrintf(
      "{\"window_ticks\":%llu,\"samples\":%llu,\"faults_seen\":%llu,"
      "\"faults_attributed\":%llu,\"extable_fixups\":%llu,"
      "\"stuck_threads\":%u,\"panicked\":%s,\"window_closed\":%s,"
      "\"attributed\":%s,\"unattributed\":%s,\"reverts\":%s}",
      U(window_ticks), U(samples), U(faults_seen), U(faults_attributed),
      U(extable_fixups), stuck_threads, panicked ? "true" : "false",
      window_closed ? "true" : "false", AttributedJson(attributed).c_str(),
      JoinJson(unattributed_rows).c_str(), JoinJson(revert_rows).c_str());
}

std::string QuarantineEntry::ToJson() const {
  return ks::StrPrintf(
      "{\"id\":\"%s\",\"package_hash\":%llu,\"evidence\":\"%s\","
      "\"tid\":%d,\"pc\":%u,\"tick\":%llu}",
      Escaped(id).c_str(), U(package_hash), Escaped(evidence).c_str(), tid,
      pc, U(tick));
}

std::string HealthStatus::ToJson() const {
  return ks::StrPrintf(
      "{\"faults_total\":%llu,\"faults_attributed\":%llu,"
      "\"extable_fixups\":%llu,\"dropped_log_lines\":%llu,"
      "\"panicked\":%s,\"attributed\":%s}",
      U(faults_total), U(faults_attributed), U(extable_fixups),
      U(dropped_log_lines), panicked ? "true" : "false",
      AttributedJson(attributed).c_str());
}

std::string UpdateStatusRow::ToJson() const {
  std::vector<std::string> symbol_rows;
  for (const std::string& symbol : symbols) {
    symbol_rows.push_back(ks::StrPrintf("\"%s\"", Escaped(symbol).c_str()));
  }
  return ks::StrPrintf(
      "{\"id\":\"%s\",\"functions\":%u,\"helper_loaded\":%s,"
      "\"helper_bytes\":%u,\"primary_bytes\":%u,\"trampoline_bytes\":%u,"
      "\"attributed_faults\":%llu,\"symbols\":%s}",
      Escaped(id).c_str(), functions, helper_loaded ? "true" : "false",
      helper_bytes, primary_bytes, trampoline_bytes, U(attributed_faults),
      JoinJson(symbol_rows).c_str());
}

std::string StatusReport::ToJson() const {
  std::vector<std::string> rows;
  for (const UpdateStatusRow& row : updates) {
    rows.push_back(row.ToJson());
  }
  std::vector<std::string> quarantine_rows;
  for (const QuarantineEntry& entry : quarantine) {
    quarantine_rows.push_back(entry.ToJson());
  }
  return ks::StrPrintf(
      "{\"updates\":%s,\"arena_bytes_in_use\":%u,\"health\":%s,"
      "\"quarantine\":%s}",
      JoinJson(rows).c_str(), arena_bytes_in_use, health.ToJson().c_str(),
      JoinJson(quarantine_rows).c_str());
}

const char* RolloutNodeOutcomeName(RolloutNodeOutcome outcome) {
  switch (outcome) {
    case RolloutNodeOutcome::kNotAttempted:
      return "not_attempted";
    case RolloutNodeOutcome::kAlreadyApplied:
      return "already_applied";
    case RolloutNodeOutcome::kPatched:
      return "patched";
    case RolloutNodeOutcome::kSkippedStale:
      return "skipped_stale";
    case RolloutNodeOutcome::kFailed:
      return "failed";
    case RolloutNodeOutcome::kRolledBack:
      return "rolled_back";
    case RolloutNodeOutcome::kAutoReverted:
      return "auto_reverted";
  }
  return "?";
}

std::string RolloutNodeReport::ToJson() const {
  return ks::StrPrintf(
      "{\"node\":\"%s\",\"version\":\"%s\",\"wave\":%d,\"canary\":%s,"
      "\"outcome\":\"%s\",\"pause_ns\":%llu,\"attempts\":%d,"
      "\"quiescence_retries\":%d,\"functions_spliced\":%u,"
      "\"soak_faults\":%llu,\"error\":\"%s\"}",
      Escaped(node).c_str(), Escaped(version).c_str(), wave,
      canary ? "true" : "false", RolloutNodeOutcomeName(outcome),
      U(pause_ns), attempts, quiescence_retries, functions_spliced,
      U(soak_faults), Escaped(error).c_str());
}

std::string RolloutWaveReport::ToJson() const {
  return ks::StrPrintf(
      "{\"wave\":%d,\"canary\":%s,\"nodes\":%u,\"patched\":%u,"
      "\"already_applied\":%u,\"skipped_stale\":%u,\"failed\":%u,"
      "\"auto_reverted\":%u,\"wall_ns\":%llu,\"max_pause_ns\":%llu,"
      "\"tripped\":%s}",
      wave, canary ? "true" : "false", nodes, patched, already_applied,
      skipped_stale, failed, auto_reverted, U(wall_ns), U(max_pause_ns),
      tripped ? "true" : "false");
}

std::string RolloutReport::ToJson() const {
  std::vector<std::string> wave_rows;
  for (const RolloutWaveReport& wave : wave_reports) {
    wave_rows.push_back(wave.ToJson());
  }
  std::vector<std::string> node_rows;
  for (const RolloutNodeReport& node : nodes) {
    node_rows.push_back(node.ToJson());
  }
  std::vector<std::string> blacklist_rows;
  for (const std::string& entry : blacklisted) {
    blacklist_rows.push_back(
        ks::StrPrintf("\"%s\"", Escaped(entry).c_str()));
  }
  return ks::StrPrintf(
      "{\"id\":\"%s\",\"fleet_size\":%u,\"aborted\":%s,"
      "\"tripped_wave\":%d,\"waves\":%u,\"patched\":%u,"
      "\"already_applied\":%u,\"skipped_stale\":%u,\"failed\":%u,"
      "\"rolled_back\":%u,\"auto_reverted\":%u,\"not_attempted\":%u,"
      "\"blacklisted\":%s,\"wall_ns\":%llu,"
      "\"nodes_per_sec\":%.3f,\"pause_p50_ns\":%llu,"
      "\"pause_p99_ns\":%llu,\"pause_max_ns\":%llu,\"wave_reports\":%s,"
      "\"nodes\":%s}",
      Escaped(id).c_str(), fleet_size, aborted ? "true" : "false",
      tripped_wave, waves, patched, already_applied, skipped_stale, failed,
      rolled_back, auto_reverted, not_attempted,
      JoinJson(blacklist_rows).c_str(), U(wall_ns), nodes_per_sec,
      U(pause_p50_ns), U(pause_p99_ns), U(pause_max_ns),
      JoinJson(wave_rows).c_str(), JoinJson(node_rows).c_str());
}

}  // namespace ksplice
