// Typed per-phase reports for the create -> match -> apply pipeline.
//
// Every phase of a Ksplice operation returns a machine-readable account of
// what it did and why: CreateUpdate fills a CreateReport (per-unit
// compile/cache/diff statistics and the changed-function list), run-pre
// matching fills a MatchStats (candidates tried, bytes walked, relocation
// sites inverted), and KspliceCore::Apply/Undo return ApplyReport /
// UndoReport (per-function splice records, stop_machine pause, quiescence
// retries, arena bytes). Callers consume these structures — benches,
// ksplice_tool, the corpus evaluator — instead of scraping internal
// ledgers like AppliedUpdate.
//
// Each report serializes to JSON (ToJson) with stable keys; the same
// numbers also flow into the global metrics registry (base/metrics.h), so
// a report is the per-operation view and the registry the per-process
// aggregate.

#ifndef KSPLICE_KSPLICE_REPORT_H_
#define KSPLICE_KSPLICE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ksplice {

// Run-pre matching statistics for one MatchUnit call (§4.3's "passes over
// every byte of the pre code" made measurable).
struct MatchStats {
  uint64_t sections_matched = 0;    // text sections accepted
  uint64_t candidates_tried = 0;    // TryMatchText attempts
  uint64_t run_bytes_matched = 0;   // run bytes covered by accepted matches
  uint64_t pre_bytes_walked = 0;    // pre bytes decoded across all attempts
  uint64_t nop_bytes_skipped = 0;   // padding skipped on either side
  uint64_t reloc_sites_inverted = 0;  // relocation algebra inversions
  uint64_t symbols_recovered = 0;   // distinct symbol values in the result
  uint64_t ambiguity_deferrals = 0; // sections deferred to a later pass
  uint64_t fixpoint_passes = 0;     // disambiguation rounds

  // Canonical n-gram index statistics (zero in --no-index linear mode).
  uint64_t index_anchors = 0;     // kallsyms functions in the gram table
  uint64_t index_hits = 0;        // candidates the prefilter admitted
  uint64_t index_misses = 0;      // candidates the prefilter pruned
  uint64_t pre_bytes_canonicalized = 0;  // pre bytes decoded once per section
  uint64_t run_bytes_canonicalized = 0;  // run bytes decoded once per anchor
  uint64_t revalidations = 0;  // cached successes re-checked across passes

  // Per-howto structural matching (special sections, §4.3): sections
  // accepted under each non-text strategy. Text sections count under
  // sections_matched only.
  uint64_t extable_sections_matched = 0;    // entry-structural
  uint64_t bug_table_sections_matched = 0;  // entry-structural
  uint64_t date_time_sections_matched = 0;  // content-ignoring

  void MergeFrom(const MatchStats& other);
  std::string ToJson() const;
};

// ------------------------------------------------------------------
// Lint diagnostics (src/kanalyze): typed findings of the static
// patch-safety analyzer. Rule IDs are stable ("KSA101", ...); the first
// digit names the pass family (1 call graph, 2 CFG/bytecode, 3 ABI/layout,
// 4 quiescence risk, 5 semantic diff). DESIGN.md carries the full rule
// catalog.

enum class LintSeverity : uint8_t { kNote = 0, kWarning = 1, kError = 2 };

inline const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

// One diagnostic: rule id, severity, location (unit/symbol, and a byte
// offset into the named section when the finding is about a particular
// instruction), message, and a fix hint.
struct LintFinding {
  std::string rule;  // "KSA202"
  LintSeverity severity = LintSeverity::kNote;
  std::string pass;  // "callgraph" | "cfg" | "abi" | "quiescence" |
                     // "semdiff"
  std::string unit;    // object/unit the finding is in (may be empty)
  std::string symbol;  // function or section name (may be empty)
  uint32_t offset = 0;      // byte offset within `symbol`'s section
  bool has_offset = false;  // whether `offset` is meaningful
  std::string message;
  std::string hint;  // how to revise the patch/package

  std::string ToString() const;  // "KSA202 error [cfg] unit:sym+0x12: ..."
  std::string ToJson() const;
};

// The one serializer for a findings array: "[{...},{...}]". Every surface
// that emits findings JSON — LintReport::ToJson, the .report.json sidecar
// through it, `ksplice_tool lint --json` — goes through this function, so
// the byte streams agree by construction.
std::string LintFindingsJson(const std::vector<LintFinding>& findings);

// Everything the analyzer observed over one package: the findings plus
// per-pass work counters (the registry carries the per-process aggregate
// under "kanalyze.*").
struct LintReport {
  std::string id;  // package id
  std::vector<LintFinding> findings;
  uint64_t functions_scanned = 0;   // text sections analyzed (pre + post)
  uint64_t call_edges = 0;          // call-graph edges recovered
  uint64_t blocks_analyzed = 0;     // CFG basic blocks
  uint64_t insns_decoded = 0;       // instructions decoded across passes
  uint64_t data_sections_compared = 0;  // ABI differ pairs
  uint64_t functions_summarized = 0;    // side-effect summaries computed

  size_t CountAtLeast(LintSeverity severity) const {
    size_t n = 0;
    for (const LintFinding& finding : findings) {
      if (finding.severity >= severity) {
        ++n;
      }
    }
    return n;
  }
  size_t errors() const { return CountAtLeast(LintSeverity::kError); }

  std::string ToJson() const;
};

// One rebuilt unit's double build and section diff.
struct UnitReport {
  std::string unit;
  bool pre_cache_hit = false;   // object served from the ObjectCache
  bool post_cache_hit = false;
  uint32_t pre_text_bytes = 0;
  uint32_t post_text_bytes = 0;
  uint32_t sections_compared = 0;  // union of pre/post section names
  uint32_t sections_changed = 0;   // modified + added + removed
  uint32_t text_changed = 0;
  uint32_t data_changed = 0;

  std::string ToJson() const;
};

// One function the patch changed at the object level.
struct ChangedFunction {
  std::string unit;
  std::string symbol;
  std::string change;  // "modified" | "added" | "removed"
  uint32_t pre_size = 0;   // text bytes before the patch (0 when added)
  uint32_t post_size = 0;  // text bytes after (0 when removed)

  std::string ToJson() const;
};

// Everything ksplice-create observed: compile/cache traffic, the section
// diff, and the changed-function list with sizes.
struct CreateReport {
  std::string id;
  uint32_t units_rebuilt = 0;
  uint64_t cache_hits = 0;    // of the 2 * units_rebuilt unit compiles
  uint64_t cache_misses = 0;
  uint64_t prepost_wall_ns = 0;  // double build + section diff
  uint64_t create_wall_ns = 0;   // whole CreateUpdate call
  uint32_t targets = 0;          // functions the package will splice
  std::vector<UnitReport> units;
  std::vector<ChangedFunction> changed_functions;
  // Static patch-safety findings (CreateOptions::lint != kOff). Rides into
  // the .report.json sidecar so `inspect` shows what the analyzer said.
  LintReport lint;

  std::string ToJson() const;
};

// One spliced function of an applied update (the caller-facing subset of
// the internal AppliedFunction ledger).
struct SpliceRecord {
  std::string unit;
  std::string symbol;
  uint32_t orig_address = 0;  // entry of the obsolete function
  uint32_t repl_address = 0;  // the new code in the primary module
  uint32_t code_size = 0;     // matched run code bytes
  uint32_t repl_size = 0;
  uint32_t trampoline_bytes = 0;

  std::string ToJson() const;
};

// One thread that blocked a stop_machine quiescence check (§5.2): its pc,
// or a conservatively-scanned stack word treated as a return address, fell
// inside a range being patched. Reports carry the union over every failed
// attempt so an operator can see *why* an update would not land even when
// a later retry eventually succeeded.
struct QuiescenceBlocker {
  int tid = 0;
  uint32_t pc = 0;           // the thread's program counter at scan time
  uint32_t hit_address = 0;  // the address that landed in a patched range
  bool from_stack = false;   // found by the stack scan, not the pc check

  std::string ToJson() const;
};

// Wall time one transaction stage took (Prepare, Match, Load, PreApply,
// Rendezvous, Commit — see ksplice/transaction.h).
struct StageTiming {
  std::string stage;
  uint64_t wall_ns = 0;

  std::string ToJson() const;
};

// What KspliceCore::Apply did. `id` doubles as the undo handle.
struct ApplyReport {
  std::string id;
  std::vector<SpliceRecord> functions;
  MatchStats match;              // aggregated run-pre stats (all units)
  int attempts = 0;              // stop_machine attempts (1 = first try)
  int quiescence_retries = 0;    // attempts - 1
  uint64_t pause_ns = 0;         // wall time of the successful stop window
  uint64_t retry_ticks = 0;      // VM ticks advanced while waiting to retry
  uint64_t helper_bytes = 0;     // helper image arena bytes
  uint32_t primary_bytes = 0;    // primary module arena bytes
  uint32_t trampoline_bytes = 0; // total bytes spliced over
  bool helper_retained = false;  // ApplyOptions::keep_helper
  // Per-stage wall times of the transaction that applied this update. In a
  // batch the stages are shared, so every member report carries the same
  // timings.
  std::vector<StageTiming> stages;
  // Threads that blocked quiescence on failed rendezvous attempts (shared
  // across a batch, deduplicated by thread and pc).
  std::vector<QuiescenceBlocker> blockers;

  std::string ToJson() const;
};

// What UpdateManager::ApplyAll did: one transaction over N packages with a
// single shared rendezvous. The attempts/pause numbers are properties of
// the batch, not of any one update.
struct BatchApplyReport {
  uint32_t packages = 0;          // updates applied (== updates.size())
  std::vector<ApplyReport> updates;
  int attempts = 0;               // shared stop_machine attempts
  int quiescence_retries = 0;
  uint64_t pause_ns = 0;          // the one combined stop window
  uint64_t retry_ticks = 0;
  uint32_t functions_spliced = 0; // across all packages
  std::vector<StageTiming> stages;
  std::vector<QuiescenceBlocker> blockers;  // see ApplyReport::blockers

  std::string ToJson() const;
};

// What KspliceCore::Undo did.
struct UndoReport {
  std::string id;
  uint32_t functions_restored = 0;
  int attempts = 0;
  int quiescence_retries = 0;
  uint64_t pause_ns = 0;
  uint64_t retry_ticks = 0;
  uint32_t bytes_restored = 0;            // trampoline bytes put back
  uint32_t primary_bytes_reclaimed = 0;   // module arena bytes freed
  uint32_t helper_bytes_reclaimed = 0;    // 0 when already unloaded
  bool out_of_order = false;              // reversed from mid-stack (§5.4)
  // Newer updates whose stacked records were re-pointed at this update's
  // replaced code when it left the stack (0 for LIFO undo).
  uint32_t chains_rewritten = 0;
  std::vector<QuiescenceBlocker> blockers;  // see ApplyReport::blockers

  std::string ToJson() const;
};

// ------------------------------------------------------------------
// Post-apply safety net (src/ksplice/watchdog.{h,cc}): health monitoring,
// fault attribution, automatic revert, and package quarantine.

// One fault whose PC the watchdog mapped into an applied update's
// replacement code (or primary module): the evidence row of an attributed
// regression.
struct AttributedFault {
  std::string update;  // applied update id the faulting PC landed in
  std::string unit;    // patched function whose replacement contained it
  std::string symbol;  // (both empty when only the module range matched)
  int tid = 0;
  uint32_t pc = 0;
  uint64_t tick = 0;   // machine tick the fault was taken at
  std::string reason;  // fault text, e.g. "kernel BUG at unit:line"

  std::string ToJson() const;
};

// What one automatic (or operator-forced) revert did, naming the fault
// that triggered it. attempts > 1 means the first undo failed and the
// watchdog backed off and retried (restore-or-abort each time: a failed
// attempt leaves the update fully applied, never half-reverted).
struct RevertReport {
  std::string id;             // update reverted
  uint64_t package_hash = 0;  // content hash the package is quarantined under
  AttributedFault trigger;    // the fault that tripped the watchdog
  uint64_t detected_tick = 0; // machine tick at attribution
  int attempts = 0;           // undo attempts (>1 = backoff exercised)
  uint64_t backoff_ticks = 0; // VM ticks advanced between failed attempts
  bool reverted = false;      // undo succeeded (byte-identical restore)
  bool quarantined = false;   // package hash registered in the quarantine
  std::string error;          // last undo error when !reverted
  UndoReport undo;            // populated when reverted

  std::string ToJson() const;
};

// One soak window's account: what the monitor saw, what it attributed,
// and what it reverted.
struct WatchdogReport {
  uint64_t window_ticks = 0;  // configured soak window length
  uint64_t samples = 0;       // sampling passes taken
  uint64_t faults_seen = 0;   // new faults observed during the window
  uint64_t faults_attributed = 0;
  uint64_t extable_fixups = 0;  // fixup delta over the window
  uint32_t stuck_threads = 0;   // threads pinned at one pc across samples
  bool panicked = false;        // machine halted during the window
  bool window_closed = false;   // the monitor ran the window to its end
  std::vector<AttributedFault> attributed;  // evidence rows
  std::vector<std::string> unattributed;    // fault lines in unpatched code
  std::vector<RevertReport> reverts;        // auto-reverts driven

  std::string ToJson() const;
};

// One quarantined package: the registry is keyed by package content hash,
// with the triggering fault carried as evidence.
struct QuarantineEntry {
  std::string id;             // package id at quarantine time
  uint64_t package_hash = 0;  // FNV-64 over UpdatePackage::Serialize()
  std::string evidence;       // triggering fault text
  int tid = 0;                // triggering fault coordinates
  uint32_t pc = 0;
  uint64_t tick = 0;

  std::string ToJson() const;
};

// Machine-health summary for `ksplice_tool status --json`'s "health"
// block: lifetime fault counters plus the attributed-fault evidence the
// manager has accumulated.
struct HealthStatus {
  uint64_t faults_total = 0;       // machine-lifetime fault count
  uint64_t faults_attributed = 0;  // faults attributed to applied updates
  uint64_t extable_fixups = 0;
  uint64_t dropped_log_lines = 0;  // evicted from the bounded kvm logs
  bool panicked = false;
  std::vector<AttributedFault> attributed;

  std::string ToJson() const;
};

// One row of the applied-update stack (`ksplice_tool status`).
struct UpdateStatusRow {
  std::string id;
  uint32_t functions = 0;
  bool helper_loaded = false;     // helper image still resident
  uint32_t helper_bytes = 0;      // arena bytes while resident
  uint32_t primary_bytes = 0;
  uint32_t trampoline_bytes = 0;
  uint64_t attributed_faults = 0; // watchdog evidence against this update
  std::vector<std::string> symbols;  // "unit:symbol" per spliced function

  std::string ToJson() const;
};

// The applied-update stack plus arena accounting, machine health, and the
// quarantine registry.
struct StatusReport {
  std::vector<UpdateStatusRow> updates;
  uint32_t arena_bytes_in_use = 0;  // whole module arena
  HealthStatus health;
  std::vector<QuarantineEntry> quarantine;

  std::string ToJson() const;
};

// ------------------------------------------------------------------
// Fleet rollout reports (src/fleet): what a wave/canary rollout did to
// every node. Same ToJson contract as the per-machine reports above, so
// `ksplice_tool rollout --json`, bench --report-dir and the tests all
// consume one serialization.

// Final disposition of one node after the rollout ends.
enum class RolloutNodeOutcome : uint8_t {
  kNotAttempted = 0,   // rollout aborted before this node's wave
  kAlreadyApplied = 1, // every package already on the node's stack
  kPatched = 2,        // applied and still applied at the end
  kSkippedStale = 3,   // run-pre mismatch (drifted kernel) — not an error
  kFailed = 4,         // apply failed for a non-staleness reason
  kRolledBack = 5,     // patched, then undone by a fleet-wide abort
  kAutoReverted = 6,   // patched, regressed during soak, auto-reverted
};

const char* RolloutNodeOutcomeName(RolloutNodeOutcome outcome);

// One node's row in the rollout ledger.
struct RolloutNodeReport {
  std::string node;      // fleet node id
  std::string version;   // kernel version label ("v2.6.1", ...)
  int wave = -1;         // wave index the node was scheduled in (-1 = none)
  bool canary = false;   // scheduled in the canary wave
  RolloutNodeOutcome outcome = RolloutNodeOutcome::kNotAttempted;
  uint64_t pause_ns = 0;        // combined stop window (0 if not patched)
  int attempts = 0;             // stop_machine attempts
  int quiescence_retries = 0;
  uint32_t functions_spliced = 0;
  uint64_t soak_faults = 0;  // faults attributed during the soak phase
  std::string error;  // status message for kSkippedStale / kFailed

  std::string ToJson() const;
};

// One wave's aggregate: how many nodes it touched and whether its failure
// fraction tripped the abort threshold.
struct RolloutWaveReport {
  int wave = 0;
  bool canary = false;
  uint32_t nodes = 0;
  uint32_t patched = 0;
  uint32_t already_applied = 0;
  uint32_t skipped_stale = 0;
  uint32_t failed = 0;
  uint32_t auto_reverted = 0;   // nodes reverted by their soak watchdog
  uint64_t wall_ns = 0;         // wave fan-out wall time
  uint64_t max_pause_ns = 0;    // worst per-node stop window in the wave
  bool tripped = false;         // failure fraction exceeded the threshold

  std::string ToJson() const;
};

// The whole rollout: totals over final node outcomes (a node that was
// patched and then rolled back counts under rolled_back only), throughput,
// pause percentiles from the fleet.node_pause_ns histogram, and the
// per-wave / per-node ledgers.
struct RolloutReport {
  std::string id;          // update id(s), "+"-joined for batches
  uint32_t fleet_size = 0;
  bool aborted = false;    // a wave tripped and the rollout stopped
  int tripped_wave = -1;   // which wave tripped (-1 = none)
  uint32_t waves = 0;      // waves actually dispatched
  uint32_t patched = 0;
  uint32_t already_applied = 0;
  uint32_t skipped_stale = 0;
  uint32_t failed = 0;
  uint32_t rolled_back = 0;    // undone by the fleet-wide abort
  uint32_t auto_reverted = 0;  // reverted by per-node soak watchdogs
  uint32_t not_attempted = 0;  // waves never dispatched after the trip
  // Packages blacklisted fleet-wide after a soak-tripped abort, as
  // "id#hash" strings (the fleet blacklist itself is a Quarantine keyed by
  // content hash).
  std::vector<std::string> blacklisted;
  uint64_t wall_ns = 0;        // whole rollout
  double nodes_per_sec = 0.0;  // attempted nodes / wall seconds
  uint64_t pause_p50_ns = 0;   // per-node stop-window percentiles
  uint64_t pause_p99_ns = 0;
  uint64_t pause_max_ns = 0;
  std::vector<RolloutWaveReport> wave_reports;
  std::vector<RolloutNodeReport> nodes;

  std::string ToJson() const;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_REPORT_H_
