#include "ksplice/runpre.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "base/endian.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/threadpool.h"
#include "base/trace.h"
#include "kvx/isa.h"

namespace ksplice {

CanonicalPrefix CanonicalizeCode(std::span<const uint8_t> code,
                                 size_t max_bytes) {
  CanonicalPrefix prefix;
  if (max_bytes == 0) {
    return prefix;
  }
  kvx::WalkEnd walk =
      kvx::WalkInsns(code, [&](uint32_t, const kvx::Insn& insn) {
        kvx::AppendCanonicalBytes(insn, prefix.bytes);
        return prefix.bytes.size() < max_bytes;
      });
  prefix.decode_ok = walk.decode_ok;
  prefix.src_consumed = walk.end;
  return prefix;
}

uint64_t CanonicalGramHash(std::span<const uint8_t> canonical_bytes) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (uint8_t b : canonical_bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t NormalizeBranchTarget(std::span<const uint8_t> window,
                               uint64_t window_base, uint64_t target) {
  if (target < window_base || target >= window_base + window.size()) {
    return target;
  }
  uint64_t pos = target - window_base;
  while (pos < window.size()) {
    ks::Result<kvx::Insn> insn = kvx::Decode(window.subspan(pos));
    if (!insn.ok() || !kvx::GetOpInfo(insn->op).is_nop) {
      break;
    }
    pos += insn->len;
  }
  return window_base + pos;
}

namespace {

// ------------------------------------------------------------------
// Stage 1: decode-once representations.

// One non-nop instruction of a decoded code blob.
struct CodeRec {
  uint32_t pos = 0;  // offset from the section start / run anchor
  kvx::Insn insn;
};

// A pre text section decoded once per MatchUnit (indexed mode) or per
// attempt (linear mode): non-nop records, the boundary map branch
// correspondence needs, and the canonical prefilter gram.
struct PreDecoded {
  std::vector<CodeRec> recs;
  // Every instruction boundary the byte walk visits (nop starts included,
  // plus the end-of-walk boundary) -> index of the first record at or
  // after it (recs.size() for boundaries past the last record). This is
  // the record-level image of the byte matcher's `corr` keys and its
  // SkipNops target normalization.
  std::map<uint32_t, size_t> boundary;
  uint32_t end = 0;           // bytes consumed by the decode walk
  bool decode_error = false;  // decoding failed at offset `end`
  uint64_t nop_bytes = 0;     // nop padding inside the walked span
  uint64_t gram_hash = 0;
  bool gram_complete = false;  // canonical form reached kGramBytes
};

PreDecoded DecodePre(const std::vector<uint8_t>& code) {
  PreDecoded d;
  kvx::WalkEnd walk = kvx::WalkInsns(
      std::span<const uint8_t>(code),
      [&](uint32_t pos, const kvx::Insn& insn) {
        d.boundary[pos] = d.recs.size();
        if (kvx::GetOpInfo(insn.op).is_nop) {
          d.nop_bytes += insn.len;
        } else {
          d.recs.push_back(CodeRec{pos, insn});
        }
        return true;
      });
  d.decode_error = !walk.decode_ok;
  d.end = walk.end;
  d.boundary[d.end] = d.recs.size();
  CanonicalPrefix prefix =
      CanonicalizeCode(code, RunPreMatcher::kGramBytes);
  if (prefix.bytes.size() >= RunPreMatcher::kGramBytes) {
    d.gram_complete = true;
    d.gram_hash = CanonicalGramHash(std::span<const uint8_t>(prefix.bytes)
                                        .first(RunPreMatcher::kGramBytes));
  }
  return d;
}

// Lazily-decoded run code at one candidate address. Bytes are fetched from
// the machine in growing chunks — the run rendering of a function can be
// arbitrarily longer than the pre section (alignment padding), so there is
// no fixed window slack to outgrow — and decoded into non-nop records on
// demand. One stream per anchor is shared by every section and fixpoint
// pass of a MatchUnit in indexed mode; callers hold mu() around use.
class RunStream {
 public:
  RunStream(const kvm::Machine& machine, uint32_t start)
      : machine_(machine),
        start_(start),
        mem_end_(machine.config().memory_bytes) {}

  std::mutex& mu() { return mu_; }

  enum class Pull {
    kRec,         // *rec filled
    kEndOfCode,   // decode hit the end of memory
    kBadDecode,   // undecodable (or truncated-at-memory-end) bytes
    kOutOfRange,  // the anchor itself is past the end of memory
    kUnreadable,  // the machine refused to read at the anchor
  };

  // Ensures record `k` is decoded. On kRec fills *rec and *nops_before
  // (nop bytes skipped between record k-1 and record k).
  Pull GetRec(size_t k, CodeRec* rec, uint64_t* nops_before) {
    while (recs_.size() <= k && state_ == Pull::kRec) {
      DecodeNext();
    }
    if (k < recs_.size()) {
      *rec = recs_[k];
      *nops_before = nops_before_[k];
      return Pull::kRec;
    }
    return state_;
  }

  // The contiguous run bytes decoded so far, for branch-target
  // nop-normalization. Only the first `len` bytes are exposed; `len` must
  // not exceed consumed().
  std::span<const uint8_t> Window(uint64_t len) const {
    return std::span<const uint8_t>(bytes_).first(static_cast<size_t>(len));
  }

  // Canonical-gram hash of the leading instructions; nullopt when the code
  // here cannot yield kGramBytes of canonical form (in which case no
  // gram-complete pre section can match it either).
  std::optional<uint64_t> GramHash() {
    if (!gram_computed_) {
      gram_computed_ = true;
      std::vector<uint8_t> canon;
      CodeRec rec;
      uint64_t nops = 0;
      for (size_t k = 0; canon.size() < RunPreMatcher::kGramBytes; ++k) {
        if (GetRec(k, &rec, &nops) != Pull::kRec) {
          return std::nullopt;
        }
        kvx::AppendCanonicalBytes(rec.insn, canon);
      }
      gram_hash_ = CanonicalGramHash(std::span<const uint8_t>(canon).first(
          RunPreMatcher::kGramBytes));
    }
    return gram_hash_;
  }

  uint32_t start() const { return start_; }
  uint64_t consumed() const { return decode_pos_; }    // bytes decoded
  uint64_t nops_skipped() const { return nops_skipped_; }

 private:
  void DecodeNext() {
    // Keep >= one max-length instruction of lookahead unless memory ends.
    uint64_t want = decode_pos_ + 16;
    while (bytes_.size() < want && start_ + bytes_.size() < mem_end_) {
      uint64_t grow = std::max<uint64_t>(256, bytes_.size());
      grow = std::min(grow, mem_end_ - start_ - bytes_.size());
      if (start_ >= mem_end_) {
        break;
      }
      ks::Result<std::vector<uint8_t>> chunk = machine_.ReadBytes(
          static_cast<uint32_t>(start_ + bytes_.size()),
          static_cast<uint32_t>(grow));
      if (!chunk.ok()) {
        state_ = bytes_.empty() ? Pull::kUnreadable : Pull::kEndOfCode;
        return;
      }
      bytes_.insert(bytes_.end(), chunk->begin(), chunk->end());
    }
    if (decode_pos_ >= bytes_.size()) {
      state_ = start_ >= mem_end_ ? Pull::kOutOfRange : Pull::kEndOfCode;
      return;
    }
    ks::Result<kvx::Insn> insn = kvx::Decode(
        std::span<const uint8_t>(bytes_).subspan(
            static_cast<size_t>(decode_pos_)));
    if (!insn.ok()) {
      state_ = Pull::kBadDecode;
      return;
    }
    if (kvx::GetOpInfo(insn->op).is_nop) {
      nop_accum_ += insn->len;
      nops_skipped_ += insn->len;
      decode_pos_ += insn->len;
      return;
    }
    recs_.push_back(CodeRec{static_cast<uint32_t>(decode_pos_), *insn});
    nops_before_.push_back(nop_accum_);
    nop_accum_ = 0;
    decode_pos_ += insn->len;
  }

  const kvm::Machine& machine_;
  const uint32_t start_;
  const uint64_t mem_end_;
  std::mutex mu_;

  std::vector<uint8_t> bytes_;  // fetched image bytes from start_
  std::vector<CodeRec> recs_;
  std::vector<uint64_t> nops_before_;
  uint64_t decode_pos_ = 0;
  uint64_t nop_accum_ = 0;
  uint64_t nops_skipped_ = 0;
  Pull state_ = Pull::kRec;  // kRec = decoding can continue
  bool gram_computed_ = false;
  std::optional<uint64_t> gram_hash_;
};

// ------------------------------------------------------------------
// Stage 2: the verifier (the oracle).

// One relocation site whose symbol value a successful verification
// recovered, in walk order (first occurrence per symbol). Carried with the
// cached LocalMatch so later fixpoint passes can re-check valuation
// consistency — reproducing the exact conflict message a full re-walk
// would produce — without touching a single code byte again.
struct RecoveredSite {
  uint32_t pre_pos = 0;
  std::string name;
  uint32_t value = 0;
};

struct LocalMatch {
  std::map<std::string, uint32_t> recovered;  // symbol name -> address
  std::vector<RecoveredSite> sites;           // first occurrences, in order
  uint32_t run_size = 0;
};

std::string MismatchMessage(const kelf::ObjectFile& pre,
                            const kelf::Section& section, uint32_t pre_pos,
                            uint32_t run_start, const std::string& why) {
  return ks::StrPrintf(
      "run-pre mismatch in %s %s at pre offset %u (run %s): %s",
      pre.source_name().c_str(), section.name.c_str(), pre_pos,
      ks::Hex32(run_start).c_str(), why.c_str());
}

// Verifies one (section, candidate) pair by walking pre and run
// instruction records in step. `predec` carries the pre decode; `run` the
// (lazily extended) run decode — the caller holds run.mu(). `committed`
// is the valuation accumulated so far (a conflicting recovery fails the
// match). When `walk_acct` is non-null (linear mode) the walk charges
// pre_bytes_walked / nop_bytes_skipped exactly as the byte-by-byte
// matcher did: bytes up to the mismatch point, per attempt. Relocation
// inversions always charge into `stats`.
ks::Result<LocalMatch> VerifyCandidate(
    const kvm::Machine& machine, const kelf::ObjectFile& pre,
    const kelf::Section& section, const PreDecoded& predec,
    uint32_t run_start, RunStream& run,
    const std::map<std::string, uint32_t>& committed, MatchStats& stats,
    bool walk_acct) {
  stats.candidates_tried += 1;
  auto mismatch = [&](uint32_t pre_pos, const std::string& why) {
    return ks::Aborted(
        MismatchMessage(pre, section, pre_pos, run_start, why));
  };

  // Relocation lookup by field offset.
  std::map<uint32_t, const kelf::Relocation*> reloc_at;
  for (const kelf::Relocation& rel : section.relocs) {
    reloc_at[rel.offset] = &rel;
  }

  LocalMatch local;
  struct BranchCheck {
    uint32_t pre_target;  // section offset
    uint32_t run_target;  // absolute address
    uint32_t at;          // diagnostic: pre offset of the branch
  };
  std::vector<BranchCheck> checks;

  auto recover = [&](const kelf::Relocation& rel, uint32_t value,
                     uint32_t p_run, uint32_t at_pre) -> ks::Status {
    stats.reloc_sites_inverted += 1;
    uint32_t s = 0;
    switch (rel.type) {
      case kelf::RelocType::kAbs32:
        s = value - static_cast<uint32_t>(rel.addend);
        break;
      case kelf::RelocType::kPcrel32:
        s = value + p_run - static_cast<uint32_t>(rel.addend);
        break;
    }
    const kelf::Symbol& sym =
        pre.symbols()[static_cast<size_t>(rel.symbol)];
    // Cross-check against the symbol table: run-pre recovery can resolve
    // *which* same-named symbol a site refers to, but the recovered value
    // must still be one of the addresses the kernel knows by that name —
    // otherwise the "already-relocated value" is corrupt run code, not a
    // relocation result. (Addresses inside previously-loaded update
    // modules are in kallsyms too, so stacking still passes.)
    std::vector<kelf::LinkedSymbol> known = machine.SymbolsNamed(sym.name);
    if (!known.empty()) {
      bool plausible = false;
      for (const kelf::LinkedSymbol& candidate : known) {
        if (candidate.address == s) {
          plausible = true;
        }
      }
      if (!plausible) {
        return ks::Aborted(ks::StrPrintf(
            "relocation site recovers '%s' = %s, which matches no symbol "
            "of that name in the kernel",
            sym.name.c_str(), ks::Hex32(s).c_str()));
      }
    }
    auto committed_it = committed.find(sym.name);
    if (committed_it != committed.end() && committed_it->second != s) {
      return ks::Aborted(ks::StrPrintf(
          "symbol '%s' recovered as %s but already valued %s",
          sym.name.c_str(), ks::Hex32(s).c_str(),
          ks::Hex32(committed_it->second).c_str()));
    }
    auto local_it = local.recovered.find(sym.name);
    if (local_it != local.recovered.end() && local_it->second != s) {
      return ks::Aborted(ks::StrPrintf(
          "symbol '%s' recovered inconsistently (%s vs %s)",
          sym.name.c_str(), ks::Hex32(s).c_str(),
          ks::Hex32(local_it->second).c_str()));
    }
    if (local.recovered.emplace(sym.name, s).second) {
      local.sites.push_back(RecoveredSite{at_pre, sym.name, s});
    }
    return ks::OkStatus();
  };

  const size_t npre = predec.recs.size();
  uint32_t last_run_end = 0;  // offset after the last matched run insn
  for (size_t k = 0; k < npre; ++k) {
    const CodeRec& P = predec.recs[k];
    if (walk_acct) {
      uint32_t gap_start =
          k == 0 ? 0 : predec.recs[k - 1].pos + predec.recs[k - 1].insn.len;
      stats.pre_bytes_walked += P.pos - gap_start;
      stats.nop_bytes_skipped += P.pos - gap_start;
    }
    CodeRec R;
    uint64_t run_nops = 0;
    RunStream::Pull pull = run.GetRec(k, &R, &run_nops);
    if (walk_acct && pull == RunStream::Pull::kRec) {
      stats.nop_bytes_skipped += run_nops;
    }
    switch (pull) {
      case RunStream::Pull::kOutOfRange:
        return mismatch(0, "candidate address out of range");
      case RunStream::Pull::kUnreadable:
        return mismatch(0, "candidate address unreadable");
      case RunStream::Pull::kEndOfCode:
        return mismatch(P.pos, "run code ends early");
      case RunStream::Pull::kBadDecode:
        return mismatch(P.pos, "run bytes do not decode");
      case RunStream::Pull::kRec:
        break;
    }

    uint32_t run_insn_end = run_start + R.pos + R.insn.len;
    uint32_t pre_insn_end = P.pos + P.insn.len;

    if (P.insn.op == R.insn.op) {
      const kvx::OpInfo& info = kvx::GetOpInfo(P.insn.op);
      if (info.has_reg1 && P.insn.reg1 != R.insn.reg1) {
        return mismatch(P.pos, "register operand differs");
      }
      if (info.has_reg2 && P.insn.reg2 != R.insn.reg2) {
        return mismatch(P.pos, "register operand differs");
      }
      if (info.has_imm8 && P.insn.imm != R.insn.imm) {
        return mismatch(P.pos, "immediate differs");
      }
      int field = kvx::Imm32FieldOffset(P.insn.op);
      if (field >= 0) {
        auto rel_it = reloc_at.find(P.pos + static_cast<uint32_t>(field));
        if (rel_it != reloc_at.end()) {
          // The already-relocated run word at the field: the imm32 value,
          // or the stored rel32 displacement bits.
          uint32_t value = info.has_imm32
                               ? R.insn.imm
                               : static_cast<uint32_t>(R.insn.rel);
          uint32_t p_run = run_start + R.pos + static_cast<uint32_t>(field);
          ks::Status recovered = recover(*rel_it->second, value, p_run,
                                         P.pos);
          if (!recovered.ok()) {
            return mismatch(P.pos, recovered.message());
          }
        } else if (info.has_rel32) {
          checks.push_back(BranchCheck{
              pre_insn_end + static_cast<uint32_t>(P.insn.rel),
              run_insn_end + static_cast<uint32_t>(R.insn.rel), P.pos});
        } else if (P.insn.imm != R.insn.imm) {
          return mismatch(P.pos, "immediate differs");
        }
      }
      if (info.has_rel8) {
        checks.push_back(BranchCheck{
            pre_insn_end + static_cast<uint32_t>(P.insn.rel),
            run_insn_end + static_cast<uint32_t>(R.insn.rel), P.pos});
      }
      if (walk_acct) {
        stats.pre_bytes_walked += P.insn.len;
      }
      last_run_end = R.pos + R.insn.len;
      continue;
    }

    if (kvx::SameBranchFamily(P.insn.op, R.insn.op)) {
      // Same control transfer, different displacement widths (§4.3: the
      // matcher must know the instruction set well enough to see that the
      // jumps point to corresponding locations).
      int field = kvx::Imm32FieldOffset(P.insn.op);
      auto rel_it = field >= 0
                        ? reloc_at.find(P.pos + static_cast<uint32_t>(field))
                        : reloc_at.end();
      if (rel_it != reloc_at.end()) {
        // Pre carries a relocation (cross-section branch); the run target
        // *is* the symbol value (pcrel32 addend is always -4).
        uint32_t run_target =
            run_insn_end + static_cast<uint32_t>(R.insn.rel);
        const kelf::Relocation& rel = *rel_it->second;
        if (rel.type != kelf::RelocType::kPcrel32 || rel.addend != -4) {
          return mismatch(P.pos, "unexpected relocation on branch");
        }
        // Emulate a 4-byte field ending at the run instruction: the stored
        // value would be run_target - run_insn_end at P = run_insn_end - 4,
        // so recover() yields S = run_target.
        ks::Status recovered =
            recover(rel, run_target - run_insn_end, run_insn_end - 4, P.pos);
        if (!recovered.ok()) {
          return mismatch(P.pos, recovered.message());
        }
      } else {
        checks.push_back(BranchCheck{
            pre_insn_end + static_cast<uint32_t>(P.insn.rel),
            run_insn_end + static_cast<uint32_t>(R.insn.rel), P.pos});
      }
      if (walk_acct) {
        stats.pre_bytes_walked += P.insn.len;
      }
      last_run_end = R.pos + R.insn.len;
      continue;
    }

    return mismatch(P.pos,
                    ks::StrPrintf("opcode differs (pre %s, run %s)",
                                  kvx::FormatInsn(P.insn).c_str(),
                                  kvx::FormatInsn(R.insn).c_str()));
  }

  // Trailing pre nop padding (walked but matched against nothing).
  if (walk_acct) {
    uint32_t tail_start =
        npre == 0 ? 0 : predec.recs[npre - 1].pos + predec.recs[npre - 1].insn.len;
    stats.pre_bytes_walked += predec.end - tail_start;
    stats.nop_bytes_skipped += predec.end - tail_start;
  }
  if (predec.decode_error) {
    return mismatch(predec.end, "pre bytes do not decode");
  }

  // Validate internal branch correspondences, tolerating no-op padding on
  // either side of a target.
  auto run_rec_addr = [&](size_t k) -> uint32_t {
    CodeRec rec;
    uint64_t nops = 0;
    RunStream::Pull pull = run.GetRec(k, &rec, &nops);
    assert(pull == RunStream::Pull::kRec);  // pulled during the walk
    (void)pull;
    return run_start + rec.pos;
  };
  for (const BranchCheck& check : checks) {
    auto bit = predec.boundary.find(check.pre_target);
    if (bit == predec.boundary.end()) {
      return mismatch(check.at, "branch targets a non-boundary");
    }
    size_t k = bit->second;
    // The walk's correspondence at this boundary: a real instruction
    // boundary maps to its matched run instruction; a nop boundary (or the
    // end) maps to the end of the previously matched run instruction.
    uint32_t direct;
    if (k < npre && predec.recs[k].pos == check.pre_target) {
      direct = run_rec_addr(k);
    } else if (k == 0) {
      direct = run_start;
    } else {
      CodeRec rec;
      uint64_t nops = 0;
      RunStream::Pull pull = run.GetRec(k - 1, &rec, &nops);
      assert(pull == RunStream::Pull::kRec);
      (void)pull;
      direct = run_start + rec.pos + rec.insn.len;
    }
    if (direct == check.run_target) {
      continue;
    }
    // Normalize both sides across their no-op padding.
    uint64_t expect =
        k < npre ? run_rec_addr(k)
                 : static_cast<uint64_t>(run_start) + last_run_end;
    uint64_t got = NormalizeBranchTarget(run.Window(last_run_end),
                                         run_start, check.run_target);
    if (expect != got) {
      return mismatch(check.at, "branch target does not correspond");
    }
  }

  local.run_size = last_run_end;
  return local;
}

// Verifies one howto-tagged (non-text) section against a candidate address
// using the per-howto strategy the section kind demands (§4.3 applied to
// special sections):
//
//  - kDate / kTime: content-ignoring. The run kernel's build timestamp
//    legitimately differs from the pre object's; only the shape is checked
//    (readable, same length, NUL-terminated).
//  - kExtable / kBug: entry-structural. Each 8-byte entry is a pair of
//    32-bit words matched under relocation, not byte-wise: a word with a
//    relocation inverts it (Abs32: S = val - A; Pcrel32: S = val + P - A)
//    and recovers the symbol value, a word without one must be identical.
//    Failures name the entry index.
//
// Reads run bytes through the machine directly (no RunStream), so indexed
// and linear mode take the identical path — matcher decisions cannot
// depend on -j or --no-index here by construction.
ks::Result<LocalMatch> VerifyTableCandidate(
    const kvm::Machine& machine, const kelf::ObjectFile& pre,
    const kelf::Section& section, uint32_t run_start,
    const std::map<std::string, uint32_t>& committed, MatchStats& stats) {
  stats.candidates_tried += 1;
  auto mismatch = [&](uint32_t pre_pos, const std::string& why) {
    return ks::Aborted(
        MismatchMessage(pre, section, pre_pos, run_start, why));
  };

  const uint32_t size = static_cast<uint32_t>(section.bytes.size());
  ks::Result<std::vector<uint8_t>> run_bytes =
      machine.ReadBytes(run_start, size);
  if (!run_bytes.ok()) {
    return mismatch(0, "candidate address unreadable");
  }

  LocalMatch local;
  local.run_size = size;

  if (section.howto == kelf::Howto::kDate ||
      section.howto == kelf::Howto::kTime) {
    if (run_bytes->empty() || run_bytes->back() != 0) {
      return mismatch(size == 0 ? 0 : size - 1,
                      "build timestamp string is not NUL-terminated");
    }
    return local;
  }

  std::map<uint32_t, const kelf::Relocation*> reloc_at;
  for (const kelf::Relocation& rel : section.relocs) {
    reloc_at[rel.offset] = &rel;
  }
  for (uint32_t off = 0; off + 4 <= size; off += 4) {
    uint32_t entry_index = off / kelf::kHowtoEntrySize;
    uint32_t run_word = ks::ReadLe32(run_bytes->data() + off);
    auto rel_it = reloc_at.find(off);
    if (rel_it == reloc_at.end()) {
      // Literal word (e.g. a bug entry's source line): byte-identical.
      uint32_t pre_word = ks::ReadLe32(section.bytes.data() + off);
      if (pre_word != run_word) {
        return mismatch(
            off, ks::StrPrintf("entry %u literal word differs (pre %s, run %s)",
                               entry_index, ks::Hex32(pre_word).c_str(),
                               ks::Hex32(run_word).c_str()));
      }
      continue;
    }
    const kelf::Relocation& rel = *rel_it->second;
    stats.reloc_sites_inverted += 1;
    uint32_t s = 0;
    switch (rel.type) {
      case kelf::RelocType::kAbs32:
        s = run_word - static_cast<uint32_t>(rel.addend);
        break;
      case kelf::RelocType::kPcrel32:
        s = run_word + (run_start + off) - static_cast<uint32_t>(rel.addend);
        break;
    }
    const kelf::Symbol& sym = pre.symbols()[static_cast<size_t>(rel.symbol)];
    // Same plausibility rule as text matching: the recovered value must be
    // an address the kernel knows under this name. A table entry whose
    // fixup points somewhere else (a genuinely changed extable) lands here
    // or in the consistency checks below, with the entry index named.
    std::vector<kelf::LinkedSymbol> known = machine.SymbolsNamed(sym.name);
    if (!known.empty()) {
      bool plausible = false;
      for (const kelf::LinkedSymbol& candidate : known) {
        if (candidate.address == s) {
          plausible = true;
        }
      }
      if (!plausible) {
        return mismatch(
            off, ks::StrPrintf("entry %u recovers '%s' = %s, which matches "
                               "no symbol of that name in the kernel",
                               entry_index, sym.name.c_str(),
                               ks::Hex32(s).c_str()));
      }
    }
    auto committed_it = committed.find(sym.name);
    if (committed_it != committed.end() && committed_it->second != s) {
      return mismatch(
          off, ks::StrPrintf("entry %u: symbol '%s' recovered as %s but "
                             "already valued %s",
                             entry_index, sym.name.c_str(),
                             ks::Hex32(s).c_str(),
                             ks::Hex32(committed_it->second).c_str()));
    }
    auto local_it = local.recovered.find(sym.name);
    if (local_it != local.recovered.end() && local_it->second != s) {
      return mismatch(
          off, ks::StrPrintf("entry %u: symbol '%s' recovered "
                             "inconsistently (%s vs %s)",
                             entry_index, sym.name.c_str(),
                             ks::Hex32(s).c_str(),
                             ks::Hex32(local_it->second).c_str()));
    }
    if (local.recovered.emplace(sym.name, s).second) {
      local.sites.push_back(RecoveredSite{off, sym.name, s});
    }
  }
  return local;
}

// ------------------------------------------------------------------
// Publication.

// Aggregates one MatchUnit call's stats into the process-wide registry.
void PublishMatchStats(const MatchStats& stats, bool ok) {
  static ks::Counter& units = ks::Metrics().GetCounter("runpre.units_matched");
  static ks::Counter& failures =
      ks::Metrics().GetCounter("runpre.match_failures");
  static ks::Counter& sections =
      ks::Metrics().GetCounter("runpre.sections_matched");
  static ks::Counter& candidates =
      ks::Metrics().GetCounter("runpre.candidates_tried");
  static ks::Counter& bytes = ks::Metrics().GetCounter("runpre.bytes_matched");
  static ks::Counter& walked =
      ks::Metrics().GetCounter("runpre.pre_bytes_walked");
  static ks::Counter& nops =
      ks::Metrics().GetCounter("runpre.nop_bytes_skipped");
  static ks::Counter& relocs =
      ks::Metrics().GetCounter("runpre.reloc_sites_inverted");
  static ks::Counter& deferrals =
      ks::Metrics().GetCounter("runpre.ambiguity_deferrals");
  static ks::Counter& passes =
      ks::Metrics().GetCounter("runpre.fixpoint_passes");
  static ks::Counter& revalidations =
      ks::Metrics().GetCounter("runpre.revalidations");
  static ks::Counter& index_anchors =
      ks::Metrics().GetCounter("runpre.index.anchors");
  static ks::Counter& index_hits =
      ks::Metrics().GetCounter("runpre.index.hits");
  static ks::Counter& index_misses =
      ks::Metrics().GetCounter("runpre.index.misses");
  static ks::Counter& index_pre_bytes =
      ks::Metrics().GetCounter("runpre.index.pre_bytes_canonicalized");
  static ks::Counter& index_run_bytes =
      ks::Metrics().GetCounter("runpre.index.run_bytes_canonicalized");
  static ks::Counter& howto_extable =
      ks::Metrics().GetCounter("runpre.howto.extable_sections_matched");
  static ks::Counter& howto_bug =
      ks::Metrics().GetCounter("runpre.howto.bug_table_sections_matched");
  static ks::Counter& howto_date_time =
      ks::Metrics().GetCounter("runpre.howto.date_time_sections_matched");
  (ok ? units : failures).Add(1);
  sections.Add(stats.sections_matched);
  candidates.Add(stats.candidates_tried);
  bytes.Add(stats.run_bytes_matched);
  walked.Add(stats.pre_bytes_walked);
  nops.Add(stats.nop_bytes_skipped);
  relocs.Add(stats.reloc_sites_inverted);
  deferrals.Add(stats.ambiguity_deferrals);
  passes.Add(stats.fixpoint_passes);
  revalidations.Add(stats.revalidations);
  index_anchors.Add(stats.index_anchors);
  index_hits.Add(stats.index_hits);
  index_misses.Add(stats.index_misses);
  index_pre_bytes.Add(stats.pre_bytes_canonicalized);
  index_run_bytes.Add(stats.run_bytes_canonicalized);
  howto_extable.Add(stats.extable_sections_matched);
  howto_bug.Add(stats.bug_table_sections_matched);
  howto_date_time.Add(stats.date_time_sections_matched);
}

// ------------------------------------------------------------------
// The fixpoint driver.

// Cached outcome of one (section, candidate) verification. A failed
// candidate never recovers (byte mismatches are permanent and the
// committed valuation only grows), and a successful one only needs its
// recovered sites re-checked against the valuation, so nothing is ever
// verified twice.
struct Attempt {
  enum class Kind { kSuccess, kFailure, kPruned } kind = Kind::kFailure;
  LocalMatch local;    // kSuccess
  ks::Status failure = ks::OkStatus();  // kFailure
};

struct PendingSection {
  int index = 0;
  std::string symbol;
  const kelf::Section* section = nullptr;
  // Matching strategy selector: kNone = text (instruction-wise), anything
  // else routes to VerifyTableCandidate. Howto sections never decode as
  // code, so their gram stays incomplete and the n-gram prefilter
  // automatically passes them through — indexed and linear mode agree.
  kelf::Howto howto = kelf::Howto::kNone;
  PreDecoded pre;            // decoded once (indexed mode)
  bool pre_decoded = false;
  std::map<uint32_t, Attempt> attempts;   // candidate addr -> outcome
  // Scratch for the current pass:
  std::vector<uint32_t> candidates;       // pass-start candidate list
  std::vector<uint32_t> to_verify;        // uncached, prefilter-admitted
};

// How many per-candidate failure reasons an all-candidates-failed abort
// reports before eliding the rest.
constexpr size_t kMaxFailureReasons = 6;

}  // namespace

ks::Result<UnitMatch> RunPreMatcher::MatchUnit(const kelf::ObjectFile& pre,
                                               MatchStats* stats) const {
  ks::TraceSpan span("runpre.match_unit");
  span.Annotate("unit", pre.source_name());
  MatchStats scratch;
  MatchStats& tally = stats != nullptr ? *stats : scratch;
  tally = MatchStats{};
  // Publish to the registry however this call ends (including every early
  // error return below).
  struct Publisher {
    const MatchStats& tally;
    bool ok = false;
    ~Publisher() { PublishMatchStats(tally, ok); }
  } publisher{tally};

  UnitMatch match;
  match.unit = pre.source_name();

  std::vector<PendingSection> pending;
  for (size_t si = 0; si < pre.sections().size(); ++si) {
    const kelf::Section& section = pre.sections()[si];
    // Text sections match instruction-wise; howto-tagged data sections
    // (exception tables, bug tables, build timestamps) match under their
    // per-kind structural strategy. Plain data stays out of run-pre.
    bool howto_table = section.howto != kelf::Howto::kNone;
    if ((section.kind != kelf::SectionKind::kText && !howto_table) ||
        section.bytes.empty()) {
      continue;
    }
    std::optional<int> def = pre.DefiningSymbolForSection(
        static_cast<int>(si));
    if (!def.has_value()) {
      return ks::InvalidArgument(ks::StrPrintf(
          "run-pre: section %s of %s has no defining symbol (was the pre "
          "build made with -ffunction-sections?)",
          section.name.c_str(), pre.source_name().c_str()));
    }
    PendingSection entry;
    entry.index = static_cast<int>(si);
    entry.symbol = pre.symbols()[static_cast<size_t>(*def)].name;
    entry.section = &section;
    entry.howto = section.howto;
    if (options_.use_index && !howto_table) {
      entry.pre = DecodePre(section.bytes);
      entry.pre_decoded = true;
      tally.pre_bytes_canonicalized += entry.pre.end;
    }
    pending.push_back(std::move(entry));
  }

  // Per-MatchUnit run-side state (indexed mode): one RunStream per
  // candidate address, shared across sections and passes, plus the n-gram
  // table over every kallsyms function entry. The stream map is only
  // mutated in the serial phases; streams themselves carry a mutex for the
  // parallel verification phase.
  std::map<uint32_t, std::unique_ptr<RunStream>> streams;
  auto stream_at = [&](uint32_t addr) -> RunStream& {
    auto it = streams.find(addr);
    if (it == streams.end()) {
      it = streams
               .emplace(addr, std::make_unique<RunStream>(machine_, addr))
               .first;
    }
    return *it->second;
  };
  std::unordered_map<uint64_t, std::vector<uint32_t>> gram_table;
  bool gram_table_built = false;
  auto build_gram_table = [&]() {
    if (gram_table_built) {
      return;
    }
    gram_table_built = true;
    std::vector<uint32_t> anchors;
    for (const kelf::LinkedSymbol& sym : machine_.Kallsyms()) {
      if (sym.kind == kelf::SymbolKind::kFunction) {
        anchors.push_back(sym.address);
      }
    }
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()),
                  anchors.end());
    for (uint32_t addr : anchors) {
      std::optional<uint64_t> hash;
      {
        RunStream& stream = stream_at(addr);
        std::lock_guard<std::mutex> lock(stream.mu());
        hash = stream.GramHash();
      }
      if (hash.has_value()) {
        gram_table[*hash].push_back(addr);  // anchors ascending => sorted
      }
    }
    tally.index_anchors += anchors.size();
  };

  // The candidate list for a section under the given valuation — the same
  // precedence as always: an already-committed value pins the candidate,
  // else the stacking redirect, else every same-named kallsyms function.
  auto compute_candidates =
      [&](const PendingSection& entry) -> std::vector<uint32_t> {
    std::vector<uint32_t> candidates;
    auto valued = match.symbol_values.find(entry.symbol);
    if (valued != match.symbol_values.end()) {
      candidates.push_back(valued->second);
    } else if (redirect_ != nullptr) {
      std::optional<std::pair<uint32_t, uint32_t>> redirected =
          redirect_(match.unit, entry.symbol);
      if (redirected.has_value()) {
        candidates.push_back(redirected->first);
      }
    }
    if (candidates.empty()) {
      // Text sections anchor at function symbols; howto tables at the
      // object symbol their section defines (__extable_<fn>, kbuild.date.*).
      kelf::SymbolKind want = entry.howto == kelf::Howto::kNone
                                  ? kelf::SymbolKind::kFunction
                                  : kelf::SymbolKind::kObject;
      for (const kelf::LinkedSymbol& sym :
           machine_.SymbolsNamed(entry.symbol)) {
        if (sym.kind == want) {
          candidates.push_back(sym.address);
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
    }
    return candidates;
  };

  // Verifies one candidate of one section right now (serial phases and
  // the failure-diagnostics path). Decodes per attempt in linear mode.
  auto verify_now = [&](PendingSection& entry, uint32_t candidate,
                        const std::map<std::string, uint32_t>& committed,
                        MatchStats& into) -> Attempt {
    Attempt attempt;
    if (entry.howto != kelf::Howto::kNone) {
      ks::Result<LocalMatch> result = VerifyTableCandidate(
          machine_, pre, *entry.section, candidate, committed, into);
      if (result.ok()) {
        attempt.kind = Attempt::Kind::kSuccess;
        attempt.local = std::move(result).value();
      } else {
        attempt.kind = Attempt::Kind::kFailure;
        attempt.failure = result.status();
      }
      return attempt;
    }
    if (!entry.pre_decoded && options_.use_index) {
      entry.pre = DecodePre(entry.section->bytes);
      entry.pre_decoded = true;
      into.pre_bytes_canonicalized += entry.pre.end;
    }
    PreDecoded fresh;
    const PreDecoded* predec = &entry.pre;
    if (!options_.use_index) {
      fresh = DecodePre(entry.section->bytes);
      predec = &fresh;
    }
    ks::Result<LocalMatch> result = [&] {
      if (options_.use_index) {
        RunStream& stream = stream_at(candidate);
        std::lock_guard<std::mutex> lock(stream.mu());
        return VerifyCandidate(machine_, pre, *entry.section, *predec,
                               candidate, stream, committed, into,
                               /*walk_acct=*/false);
      }
      RunStream stream(machine_, candidate);
      std::lock_guard<std::mutex> lock(stream.mu());
      return VerifyCandidate(machine_, pre, *entry.section, *predec,
                             candidate, stream, committed, into,
                             /*walk_acct=*/true);
    }();
    if (result.ok()) {
      attempt.kind = Attempt::Kind::kSuccess;
      attempt.local = std::move(result).value();
    } else {
      attempt.kind = Attempt::Kind::kFailure;
      attempt.failure = result.status();
    }
    return attempt;
  };

  // Re-checks a cached successful verification against the current
  // valuation, reproducing the exact conflict message a re-walk would
  // give. Returns OkStatus when the candidate still matches.
  auto revalidate = [&](const PendingSection& entry, uint32_t candidate,
                        const LocalMatch& local) -> ks::Status {
    tally.revalidations += 1;
    for (const RecoveredSite& site : local.sites) {
      auto it = match.symbol_values.find(site.name);
      if (it != match.symbol_values.end() && it->second != site.value) {
        return ks::Aborted(MismatchMessage(
            pre, *entry.section, site.pre_pos, candidate,
            ks::StrPrintf("symbol '%s' recovered as %s but already valued %s",
                          site.name.c_str(), ks::Hex32(site.value).c_str(),
                          ks::Hex32(it->second).c_str())));
      }
    }
    return ks::OkStatus();
  };

  // Iterate to a fixpoint: each pass matches sections whose candidate set
  // resolves to exactly one successful address; the committed valuation
  // then disambiguates harder sections on later passes. Per pass:
  // (1) serial: compute pass-start candidate lists, prune via the n-gram
  //     prefilter, and collect the uncached (section, candidate) pairs;
  // (2) parallel: verify those pairs against the pass-start valuation —
  //     verification is read-only on the machine and each task writes only
  //     its own slot, so the fan-out is deterministic at any worker count;
  // (3) serial, in section order: gather per-section outcomes against the
  //     *current* valuation (commits propagate within a pass, exactly as
  //     the sequential matcher behaved) and commit unique successes.
  while (!pending.empty()) {
    tally.fixpoint_passes += 1;

    // (1) Schedule.
    struct Task {
      PendingSection* entry;
      uint32_t candidate;
    };
    std::vector<Task> tasks;
    for (PendingSection& entry : pending) {
      entry.candidates = compute_candidates(entry);
      entry.to_verify.clear();
      std::vector<uint32_t> admitted = entry.candidates;
      if (options_.use_index && admitted.size() > 1 &&
          entry.pre.gram_complete) {
        build_gram_table();
        auto bucket = gram_table.find(entry.pre.gram_hash);
        static const std::vector<uint32_t> kEmpty;
        const std::vector<uint32_t>& hits =
            bucket != gram_table.end() ? bucket->second : kEmpty;
        std::vector<uint32_t> survived;
        for (uint32_t candidate : admitted) {
          if (entry.attempts.count(candidate) != 0) {
            survived.push_back(candidate);  // already decided or pruned
            continue;
          }
          if (std::binary_search(hits.begin(), hits.end(), candidate)) {
            tally.index_hits += 1;
            survived.push_back(candidate);
          } else {
            tally.index_misses += 1;
            Attempt pruned;
            pruned.kind = Attempt::Kind::kPruned;
            entry.attempts.emplace(candidate, std::move(pruned));
          }
        }
        admitted = std::move(survived);
      }
      for (uint32_t candidate : admitted) {
        if (entry.attempts.count(candidate) == 0) {
          entry.to_verify.push_back(candidate);
          tasks.push_back(Task{&entry, candidate});
        }
      }
    }

    // (2) Verify uncached pairs in parallel against the pass-start
    // valuation snapshot.
    if (!tasks.empty()) {
      std::vector<Attempt> results(tasks.size());
      std::vector<MatchStats> task_stats(tasks.size());
      const std::map<std::string, uint32_t> snapshot = match.symbol_values;
      ks::ParallelFor(options_.jobs, tasks.size(), [&](size_t i) {
        results[i] = verify_now(*tasks[i].entry, tasks[i].candidate,
                                snapshot, task_stats[i]);
      });
      for (size_t i = 0; i < tasks.size(); ++i) {
        tally.MergeFrom(task_stats[i]);
        tasks[i].entry->attempts.emplace(tasks[i].candidate,
                                         std::move(results[i]));
      }
    }

    // (3) Gather and commit in section order.
    bool progress = false;
    std::vector<PendingSection> still_pending;
    for (PendingSection& entry : pending) {
      const kelf::Section& section = *entry.section;
      // Re-derive the candidate list: a commit earlier in this same pass
      // may have pinned this symbol to a single address.
      std::vector<uint32_t> candidates = compute_candidates(entry);
      if (candidates.empty()) {
        return ks::Aborted(ks::StrPrintf(
            "run-pre: no run candidate for %s (%s in %s) — does the given "
            "source correspond to the running kernel?",
            entry.symbol.c_str(), section.name.c_str(),
            match.unit.c_str()));
      }

      std::vector<std::pair<uint32_t, const LocalMatch*>> successes;
      for (uint32_t candidate : candidates) {
        auto it = entry.attempts.find(candidate);
        if (it == entry.attempts.end()) {
          // Never scheduled: the valuation pinned an address the pass-start
          // candidate list did not contain. Verify it now, against the
          // current valuation. (A kPruned entry stays pruned — the gram
          // mismatch proves the verifier would reject it; the diagnostics
          // path below runs the verifier anyway when everything failed.)
          Attempt attempt =
              verify_now(entry, candidate, match.symbol_values, tally);
          it = entry.attempts.insert_or_assign(candidate,
                                               std::move(attempt)).first;
        } else if (it->second.kind == Attempt::Kind::kSuccess) {
          ks::Status still = revalidate(entry, candidate, it->second.local);
          if (!still.ok()) {
            Attempt failed;
            failed.kind = Attempt::Kind::kFailure;
            failed.failure = std::move(still);
            it->second = std::move(failed);
          }
        }
        if (it->second.kind == Attempt::Kind::kSuccess) {
          successes.emplace_back(candidate, &it->second.local);
        }
      }

      if (successes.empty()) {
        // Report every candidate's address and reason (capped), so an
        // ambiguous-symbol failure names which copy failed why, instead of
        // surfacing only whichever candidate happened to fail last.
        std::string detail;
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (i == kMaxFailureReasons) {
            detail += ks::StrPrintf("\n  ... and %zu more candidate(s)",
                                    candidates.size() - kMaxFailureReasons);
            break;
          }
          uint32_t candidate = candidates[i];
          auto it = entry.attempts.find(candidate);
          if (it == entry.attempts.end() ||
              it->second.kind == Attempt::Kind::kPruned) {
            // Prefilter-pruned: run the verifier after all, purely for the
            // authoritative diagnostic (this is the abort path).
            Attempt attempt =
                verify_now(entry, candidate, match.symbol_values, tally);
            it = entry.attempts.insert_or_assign(candidate,
                                                 std::move(attempt)).first;
          }
          detail += ks::StrPrintf(
              "\n  candidate %s: %s", ks::Hex32(candidate).c_str(),
              it->second.kind == Attempt::Kind::kFailure
                  ? it->second.failure.message().c_str()
                  : "matches (valuation later invalidated it)");
        }
        return ks::Aborted(ks::StrPrintf(
            "run-pre: %s in %s matches no candidate (%zu tried):%s",
            entry.symbol.c_str(), match.unit.c_str(), candidates.size(),
            detail.c_str()));
      }
      if (successes.size() > 1) {
        tally.ambiguity_deferrals += 1;
        still_pending.push_back(std::move(entry));
        continue;  // hope valuation will disambiguate on a later pass
      }

      // Commit.
      uint32_t address = successes[0].first;
      const LocalMatch& local = *successes[0].second;
      for (const auto& [name, value] : local.recovered) {
        auto existing = match.symbol_values.find(name);
        if (existing != match.symbol_values.end() &&
            existing->second != value) {
          return ks::Aborted(ks::StrPrintf(
              "run-pre: symbol '%s' valued inconsistently across sections",
              name.c_str()));
        }
        match.symbol_values[name] = value;
      }
      auto own = match.symbol_values.find(entry.symbol);
      if (own != match.symbol_values.end() && own->second != address) {
        return ks::Aborted(ks::StrPrintf(
            "run-pre: section %s matched at %s but '%s' is valued %s",
            section.name.c_str(), ks::Hex32(address).c_str(),
            entry.symbol.c_str(), ks::Hex32(own->second).c_str()));
      }
      match.symbol_values[entry.symbol] = address;
      MatchedSection matched;
      matched.name = section.name;
      matched.symbol = entry.symbol;
      matched.run_address = address;
      matched.run_size = local.run_size;
      match.sections[section.name] = std::move(matched);
      tally.sections_matched += 1;
      tally.run_bytes_matched += local.run_size;
      switch (entry.howto) {
        case kelf::Howto::kNone:
          break;
        case kelf::Howto::kExtable:
          tally.extable_sections_matched += 1;
          break;
        case kelf::Howto::kBug:
          tally.bug_table_sections_matched += 1;
          break;
        case kelf::Howto::kDate:
        case kelf::Howto::kTime:
          tally.date_time_sections_matched += 1;
          break;
      }
      progress = true;
    }
    if (!progress) {
      std::string names;
      for (const PendingSection& entry : still_pending) {
        if (!names.empty()) {
          names += ", ";
        }
        names += entry.symbol;
      }
      return ks::Aborted(ks::StrPrintf(
          "run-pre: ambiguous symbols could not be resolved in %s: %s",
          match.unit.c_str(), names.c_str()));
    }
    pending = std::move(still_pending);
  }

  // The index's decode work, counted once per stream however many
  // sections and passes shared it.
  for (const auto& [addr, stream] : streams) {
    tally.run_bytes_canonicalized += stream->consumed();
    tally.nop_bytes_skipped += stream->nops_skipped();
  }

  tally.symbols_recovered = match.symbol_values.size();
  span.Annotate("sections", tally.sections_matched);
  span.Annotate("bytes_matched", tally.run_bytes_matched);
  publisher.ok = true;
  return match;
}

}  // namespace ksplice
