#include "ksplice/runpre.h"

#include <algorithm>
#include <set>

#include "base/endian.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"
#include "kvx/isa.h"

namespace ksplice {

namespace {

// Skips no-op instructions from `pos` within `bytes`; returns the first
// non-nop boundary (or the original position on decode failure).
uint32_t SkipNops(const std::vector<uint8_t>& bytes, uint32_t pos) {
  while (pos < bytes.size()) {
    ks::Result<kvx::Insn> insn = kvx::Decode(
        std::span<const uint8_t>(bytes).subspan(pos));
    if (!insn.ok() || !kvx::GetOpInfo(insn->op).is_nop) {
      break;
    }
    pos += insn->len;
  }
  return pos;
}

}  // namespace

ks::Result<RunPreMatcher::LocalMatch> RunPreMatcher::TryMatchText(
    const kelf::ObjectFile& pre, const kelf::Section& section,
    uint32_t run_start, const std::map<std::string, uint32_t>& committed,
    MatchStats& stats) const {
  stats.candidates_tried += 1;
  auto mismatch = [&](uint32_t pre_pos, const std::string& why) {
    return ks::Aborted(ks::StrPrintf(
        "run-pre mismatch in %s %s at pre offset %u (run %s): %s",
        pre.source_name().c_str(), section.name.c_str(), pre_pos,
        ks::Hex32(run_start).c_str(), why.c_str()));
  };

  // Fetch a run window: the run rendering can only be a little shorter
  // (rel32 -> rel8) or longer (padding) than the pre bytes.
  uint32_t window = static_cast<uint32_t>(section.bytes.size()) + 256;
  ks::Result<std::vector<uint8_t>> run_bytes_or =
      machine_.ReadBytes(run_start, window);
  if (!run_bytes_or.ok()) {
    // Clamp at end of memory.
    uint32_t end = static_cast<uint32_t>(machine_.config().memory_bytes);
    if (run_start >= end) {
      return mismatch(0, "candidate address out of range");
    }
    run_bytes_or = machine_.ReadBytes(run_start, end - run_start);
    if (!run_bytes_or.ok()) {
      return mismatch(0, "candidate address unreadable");
    }
  }
  const std::vector<uint8_t>& run = *run_bytes_or;
  const std::vector<uint8_t>& code = section.bytes;

  // Relocation lookup by field offset.
  std::map<uint32_t, const kelf::Relocation*> reloc_at;
  for (const kelf::Relocation& rel : section.relocs) {
    reloc_at[rel.offset] = &rel;
  }

  LocalMatch local;
  std::map<uint32_t, uint32_t> corr;  // pre offset -> run address
  struct BranchCheck {
    uint32_t pre_target;   // section offset
    uint32_t run_target;   // absolute address
    uint32_t at;           // diagnostic: pre offset of the branch
  };
  std::vector<BranchCheck> checks;

  auto recover = [&](const kelf::Relocation& rel, uint32_t value,
                     uint32_t p_run) -> ks::Status {
    stats.reloc_sites_inverted += 1;
    uint32_t s = 0;
    switch (rel.type) {
      case kelf::RelocType::kAbs32:
        s = value - static_cast<uint32_t>(rel.addend);
        break;
      case kelf::RelocType::kPcrel32:
        s = value + p_run - static_cast<uint32_t>(rel.addend);
        break;
    }
    const kelf::Symbol& sym =
        pre.symbols()[static_cast<size_t>(rel.symbol)];
    // Cross-check against the symbol table: run-pre recovery can resolve
    // *which* same-named symbol a site refers to, but the recovered value
    // must still be one of the addresses the kernel knows by that name —
    // otherwise the "already-relocated value" is corrupt run code, not a
    // relocation result. (Addresses inside previously-loaded update
    // modules are in kallsyms too, so stacking still passes.)
    std::vector<kelf::LinkedSymbol> known = machine_.SymbolsNamed(sym.name);
    if (!known.empty()) {
      bool plausible = false;
      for (const kelf::LinkedSymbol& candidate : known) {
        if (candidate.address == s) {
          plausible = true;
        }
      }
      if (!plausible) {
        return ks::Aborted(ks::StrPrintf(
            "relocation site recovers '%s' = %s, which matches no symbol "
            "of that name in the kernel",
            sym.name.c_str(), ks::Hex32(s).c_str()));
      }
    }
    auto committed_it = committed.find(sym.name);
    if (committed_it != committed.end() && committed_it->second != s) {
      return ks::Aborted(ks::StrPrintf(
          "symbol '%s' recovered as %s but already valued %s",
          sym.name.c_str(), ks::Hex32(s).c_str(),
          ks::Hex32(committed_it->second).c_str()));
    }
    auto local_it = local.recovered.find(sym.name);
    if (local_it != local.recovered.end() && local_it->second != s) {
      return ks::Aborted(ks::StrPrintf(
          "symbol '%s' recovered inconsistently (%s vs %s)",
          sym.name.c_str(), ks::Hex32(s).c_str(),
          ks::Hex32(local_it->second).c_str()));
    }
    local.recovered[sym.name] = s;
    return ks::OkStatus();
  };

  uint32_t pre_pos = 0;
  uint32_t run_pos = 0;  // relative to run_start
  while (pre_pos < code.size()) {
    corr[pre_pos] = run_start + run_pos;
    ks::Result<kvx::Insn> pre_insn = kvx::Decode(
        std::span<const uint8_t>(code).subspan(pre_pos));
    if (!pre_insn.ok()) {
      return mismatch(pre_pos, "pre bytes do not decode");
    }
    if (kvx::GetOpInfo(pre_insn->op).is_nop) {
      stats.pre_bytes_walked += pre_insn->len;
      stats.nop_bytes_skipped += pre_insn->len;
      pre_pos += pre_insn->len;
      continue;
    }
    if (run_pos >= run.size()) {
      return mismatch(pre_pos, "run code ends early");
    }
    ks::Result<kvx::Insn> run_insn = kvx::Decode(
        std::span<const uint8_t>(run).subspan(run_pos));
    if (!run_insn.ok()) {
      return mismatch(pre_pos, "run bytes do not decode");
    }
    if (kvx::GetOpInfo(run_insn->op).is_nop) {
      stats.nop_bytes_skipped += run_insn->len;
      run_pos += run_insn->len;
      continue;
    }

    uint32_t run_insn_end = run_start + run_pos + run_insn->len;
    uint32_t pre_insn_end = pre_pos + pre_insn->len;

    if (pre_insn->op == run_insn->op) {
      const kvx::OpInfo& info = kvx::GetOpInfo(pre_insn->op);
      if (info.has_reg1 && pre_insn->reg1 != run_insn->reg1) {
        return mismatch(pre_pos, "register operand differs");
      }
      if (info.has_reg2 && pre_insn->reg2 != run_insn->reg2) {
        return mismatch(pre_pos, "register operand differs");
      }
      if (info.has_imm8 && pre_insn->imm != run_insn->imm) {
        return mismatch(pre_pos, "immediate differs");
      }
      int field = kvx::Imm32FieldOffset(pre_insn->op);
      if (field >= 0) {
        auto rel_it = reloc_at.find(pre_pos + static_cast<uint32_t>(field));
        if (rel_it != reloc_at.end()) {
          uint32_t value = ks::ReadLe32(run.data() + run_pos +
                                        static_cast<uint32_t>(field));
          uint32_t p_run =
              run_start + run_pos + static_cast<uint32_t>(field);
          ks::Status recovered = recover(*rel_it->second, value, p_run);
          if (!recovered.ok()) {
            return mismatch(pre_pos, recovered.message());
          }
        } else if (info.has_rel32) {
          checks.push_back(BranchCheck{
              pre_insn_end + static_cast<uint32_t>(pre_insn->rel),
              run_insn_end + static_cast<uint32_t>(run_insn->rel),
              pre_pos});
        } else if (pre_insn->imm != run_insn->imm) {
          return mismatch(pre_pos, "immediate differs");
        }
      }
      if (info.has_rel8) {
        checks.push_back(BranchCheck{
            pre_insn_end + static_cast<uint32_t>(pre_insn->rel),
            run_insn_end + static_cast<uint32_t>(run_insn->rel), pre_pos});
      }
      stats.pre_bytes_walked += pre_insn->len;
      pre_pos += pre_insn->len;
      run_pos += run_insn->len;
      continue;
    }

    if (kvx::SameBranchFamily(pre_insn->op, run_insn->op)) {
      // Same control transfer, different displacement widths (§4.3: the
      // matcher must know the instruction set well enough to see that the
      // jumps point to corresponding locations).
      int field = kvx::Imm32FieldOffset(pre_insn->op);
      auto rel_it = field >= 0 ? reloc_at.find(pre_pos +
                                               static_cast<uint32_t>(field))
                               : reloc_at.end();
      if (rel_it != reloc_at.end()) {
        // Pre carries a relocation (cross-section branch); the run target
        // *is* the symbol value (pcrel32 addend is always -4).
        uint32_t run_target =
            run_insn_end + static_cast<uint32_t>(run_insn->rel);
        const kelf::Relocation& rel = *rel_it->second;
        if (rel.type != kelf::RelocType::kPcrel32 || rel.addend != -4) {
          return mismatch(pre_pos, "unexpected relocation on branch");
        }
        // Emulate a 4-byte field ending at the run instruction: the stored
        // value would be run_target - run_insn_end at P = run_insn_end - 4,
        // so recover() yields S = run_target.
        ks::Status recovered =
            recover(rel, run_target - run_insn_end, run_insn_end - 4);
        if (!recovered.ok()) {
          return mismatch(pre_pos, recovered.message());
        }
      } else {
        checks.push_back(BranchCheck{
            pre_insn_end + static_cast<uint32_t>(pre_insn->rel),
            run_insn_end + static_cast<uint32_t>(run_insn->rel), pre_pos});
      }
      stats.pre_bytes_walked += pre_insn->len;
      pre_pos += pre_insn->len;
      run_pos += run_insn->len;
      continue;
    }

    return mismatch(pre_pos,
                    ks::StrPrintf("opcode differs (pre %s, run %s)",
                                  kvx::FormatInsn(*pre_insn).c_str(),
                                  kvx::FormatInsn(*run_insn).c_str()));
  }
  corr[pre_pos] = run_start + run_pos;

  // Validate internal branch correspondences, tolerating no-op padding on
  // either side of a target.
  for (const BranchCheck& check : checks) {
    auto it = corr.find(check.pre_target);
    if (it == corr.end()) {
      return mismatch(check.at, "branch targets a non-boundary");
    }
    if (it->second == check.run_target) {
      continue;
    }
    uint32_t norm_pre = SkipNops(code, check.pre_target);
    auto norm_it = corr.find(norm_pre);
    if (norm_it == corr.end()) {
      return mismatch(check.at, "branch target does not correspond");
    }
    uint32_t expect = norm_it->second;
    // Normalize the run side too.
    uint32_t got = check.run_target;
    if (got >= run_start && got < run_start + run.size()) {
      got = run_start + SkipNops(run, got - run_start);
    }
    if (expect != got) {
      return mismatch(check.at, "branch target does not correspond");
    }
  }

  local.run_size = run_pos;
  return local;
}

namespace {

// Aggregates one MatchUnit call's stats into the process-wide registry.
void PublishMatchStats(const MatchStats& stats, bool ok) {
  static ks::Counter& units = ks::Metrics().GetCounter("runpre.units_matched");
  static ks::Counter& failures =
      ks::Metrics().GetCounter("runpre.match_failures");
  static ks::Counter& sections =
      ks::Metrics().GetCounter("runpre.sections_matched");
  static ks::Counter& candidates =
      ks::Metrics().GetCounter("runpre.candidates_tried");
  static ks::Counter& bytes = ks::Metrics().GetCounter("runpre.bytes_matched");
  static ks::Counter& walked =
      ks::Metrics().GetCounter("runpre.pre_bytes_walked");
  static ks::Counter& nops =
      ks::Metrics().GetCounter("runpre.nop_bytes_skipped");
  static ks::Counter& relocs =
      ks::Metrics().GetCounter("runpre.reloc_sites_inverted");
  static ks::Counter& deferrals =
      ks::Metrics().GetCounter("runpre.ambiguity_deferrals");
  static ks::Counter& passes =
      ks::Metrics().GetCounter("runpre.fixpoint_passes");
  (ok ? units : failures).Add(1);
  sections.Add(stats.sections_matched);
  candidates.Add(stats.candidates_tried);
  bytes.Add(stats.run_bytes_matched);
  walked.Add(stats.pre_bytes_walked);
  nops.Add(stats.nop_bytes_skipped);
  relocs.Add(stats.reloc_sites_inverted);
  deferrals.Add(stats.ambiguity_deferrals);
  passes.Add(stats.fixpoint_passes);
}

}  // namespace

ks::Result<UnitMatch> RunPreMatcher::MatchUnit(const kelf::ObjectFile& pre,
                                               MatchStats* stats) const {
  ks::TraceSpan span("runpre.match_unit");
  span.Annotate("unit", pre.source_name());
  MatchStats scratch;
  MatchStats& tally = stats != nullptr ? *stats : scratch;
  tally = MatchStats{};
  // Publish to the registry however this call ends (including every early
  // error return below).
  struct Publisher {
    const MatchStats& tally;
    bool ok = false;
    ~Publisher() { PublishMatchStats(tally, ok); }
  } publisher{tally};

  UnitMatch match;
  match.unit = pre.source_name();

  struct PendingSection {
    int index = 0;
    std::string symbol;
  };
  std::vector<PendingSection> pending;
  for (size_t si = 0; si < pre.sections().size(); ++si) {
    const kelf::Section& section = pre.sections()[si];
    if (section.kind != kelf::SectionKind::kText || section.bytes.empty()) {
      continue;
    }
    std::optional<int> def = pre.DefiningSymbolForSection(
        static_cast<int>(si));
    if (!def.has_value()) {
      return ks::InvalidArgument(ks::StrPrintf(
          "run-pre: section %s of %s has no defining symbol (was the pre "
          "build made with -ffunction-sections?)",
          section.name.c_str(), pre.source_name().c_str()));
    }
    pending.push_back(PendingSection{
        static_cast<int>(si),
        pre.symbols()[static_cast<size_t>(*def)].name});
  }

  // Iterate to a fixpoint: each pass matches sections whose candidate set
  // resolves to exactly one successful address; the committed valuation
  // then disambiguates harder sections on later passes.
  while (!pending.empty()) {
    tally.fixpoint_passes += 1;
    bool progress = false;
    std::vector<PendingSection> still_pending;
    for (const PendingSection& entry : pending) {
      const kelf::Section& section =
          pre.sections()[static_cast<size_t>(entry.index)];

      std::vector<uint32_t> candidates;
      auto valued = match.symbol_values.find(entry.symbol);
      if (valued != match.symbol_values.end()) {
        candidates.push_back(valued->second);
      } else if (redirect_ != nullptr) {
        std::optional<std::pair<uint32_t, uint32_t>> redirected =
            redirect_(match.unit, entry.symbol);
        if (redirected.has_value()) {
          candidates.push_back(redirected->first);
        }
      }
      if (candidates.empty()) {
        for (const kelf::LinkedSymbol& sym :
             machine_.SymbolsNamed(entry.symbol)) {
          if (sym.kind == kelf::SymbolKind::kFunction) {
            candidates.push_back(sym.address);
          }
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(
            std::unique(candidates.begin(), candidates.end()),
            candidates.end());
      }
      if (candidates.empty()) {
        return ks::Aborted(ks::StrPrintf(
            "run-pre: no run candidate for %s (%s in %s) — does the given "
            "source correspond to the running kernel?",
            entry.symbol.c_str(), section.name.c_str(),
            match.unit.c_str()));
      }

      std::vector<std::pair<uint32_t, LocalMatch>> successes;
      std::string last_failure;
      for (uint32_t candidate : candidates) {
        ks::Result<LocalMatch> attempt =
            TryMatchText(pre, section, candidate, match.symbol_values, tally);
        if (attempt.ok()) {
          successes.emplace_back(candidate, std::move(attempt).value());
        } else {
          last_failure = attempt.status().message();
        }
      }
      if (successes.empty()) {
        return ks::Aborted(ks::StrPrintf(
            "run-pre: %s in %s matches no candidate (%zu tried): %s",
            entry.symbol.c_str(), match.unit.c_str(), candidates.size(),
            last_failure.c_str()));
      }
      if (successes.size() > 1) {
        tally.ambiguity_deferrals += 1;
        still_pending.push_back(entry);  // hope valuation will disambiguate
        continue;
      }

      // Commit.
      auto& [address, local] = successes[0];
      for (const auto& [name, value] : local.recovered) {
        auto existing = match.symbol_values.find(name);
        if (existing != match.symbol_values.end() &&
            existing->second != value) {
          return ks::Aborted(ks::StrPrintf(
              "run-pre: symbol '%s' valued inconsistently across sections",
              name.c_str()));
        }
        match.symbol_values[name] = value;
      }
      auto own = match.symbol_values.find(entry.symbol);
      if (own != match.symbol_values.end() && own->second != address) {
        return ks::Aborted(ks::StrPrintf(
            "run-pre: section %s matched at %s but '%s' is valued %s",
            section.name.c_str(), ks::Hex32(address).c_str(),
            entry.symbol.c_str(), ks::Hex32(own->second).c_str()));
      }
      match.symbol_values[entry.symbol] = address;
      MatchedSection matched;
      matched.name = section.name;
      matched.symbol = entry.symbol;
      matched.run_address = address;
      matched.run_size = local.run_size;
      match.sections[section.name] = std::move(matched);
      tally.sections_matched += 1;
      tally.run_bytes_matched += local.run_size;
      progress = true;
    }
    if (!progress) {
      std::string names;
      for (const PendingSection& entry : still_pending) {
        if (!names.empty()) {
          names += ", ";
        }
        names += entry.symbol;
      }
      return ks::Aborted(ks::StrPrintf(
          "run-pre: ambiguous symbols could not be resolved in %s: %s",
          match.unit.c_str(), names.c_str()));
    }
    pending = std::move(still_pending);
  }

  tally.symbols_recovered = match.symbol_values.size();
  span.Annotate("sections", tally.sections_matched);
  span.Annotate("bytes_matched", tally.run_bytes_matched);
  publisher.ok = true;
  return match;
}

}  // namespace ksplice
