// Run-pre matching (paper §4): verify that the pre object code corresponds
// to the code actually running, and recover symbol values — including
// ambiguous local symbols — from already-relocated run bytes.
//
// The matcher is a two-stage design:
//
//  stage 1 (canonicalize + index, the prefilter): pre sections and run
//  candidates are decoded once into instruction records, and a canonical
//  byte form (kvx::AppendCanonicalBytes: nop padding dropped, rel8/rel32
//  displacements and imm32 operand bytes wildcarded) feeds a content-hash
//  n-gram table built once per MatchUnit over every kallsyms function
//  address, so ambiguous-symbol candidate discovery is an index lookup
//  instead of a byte-by-byte scan of every candidate;
//
//  stage 2 (verify, the oracle): surviving candidates run through the
//  precise verifier, which walks pre and run instruction records in step,
//  tolerating rel8-vs-rel32 encodings of the same branch as long as the
//  targets correspond (§4.3), and at each pre relocation site inverts the
//  relocation algebra against the already-relocated run word: S = val +
//  P_run − A (pc-relative) or S = val − A (absolute), accumulating a
//  symbol valuation that must be globally consistent.
//
// The prefilter proposes, the verifier decides: pruning is sound (equal
// canonical streams are a necessary condition for any verifier match), so
// match decisions, recovered valuations, and failure messages are
// byte-identical with the index disabled (MatcherOptions::use_index =
// false, the `--no-index` linear fallback).
//
// A section whose symbol name is ambiguous is matched against every
// surviving candidate, and ambiguity is resolved by code content plus
// valuation constraints propagated from other sections across fixpoint
// passes; a section's successful verifications are carried forward across
// passes (only the valuation consistency of the cached recovery is
// re-checked), so no (section, candidate) pair is ever walked twice.
// Residual ambiguity or any run/pre difference aborts the update (§4.3,
// §6.2 criterion (a)/(b)).

#ifndef KSPLICE_KSPLICE_RUNPRE_H_
#define KSPLICE_KSPLICE_RUNPRE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "kelf/objfile.h"
#include "ksplice/report.h"
#include "kvm/machine.h"

namespace ksplice {

// Where a pre text section was found in the running kernel.
struct MatchedSection {
  std::string name;     // section name, e.g. ".text.foo"
  std::string symbol;   // defining symbol
  uint32_t run_address = 0;
  uint32_t run_size = 0;  // bytes of run code covered by the match
};

// Everything recovered by matching one compilation unit.
struct UnitMatch {
  std::string unit;
  // Symbol name -> run address. Contains the unit's own symbols (sections
  // matched by content) and every symbol recovered from relocation sites,
  // including imports from other units.
  std::map<std::string, uint32_t> symbol_values;
  std::map<std::string, MatchedSection> sections;  // keyed by section name
};

// Stacking hook (§5.4): returns the address/size of the current replacement
// code for (unit, symbol) if that function is already hot-patched.
using PatchRedirect =
    std::function<std::optional<std::pair<uint32_t, uint32_t>>(
        const std::string& unit, const std::string& symbol)>;

// Matching knobs.
struct MatcherOptions {
  // Use the canonical n-gram prefilter and per-MatchUnit decode cache. Off
  // = the linear fallback: every candidate of every section is decoded and
  // walked per attempt (same decisions, an order of magnitude more bytes
  // walked on ambiguous units).
  bool use_index = true;
  // Worker threads for the per-section fan-out inside one fixpoint pass
  // (<= 1 = serial). Verification is read-only on the machine and writes
  // only per-section state, so sections verify concurrently; commits stay
  // sequential in section order, so results are identical at any count.
  int jobs = 1;
};

// The canonical prefix of a code blob: kvx canonical bytes of the leading
// instructions, stopping at `max_bytes` canonical bytes, a decode failure,
// or the end of `code`. Exposed for prefilter tests; the matcher uses the
// same routine for pre sections and for run anchors.
struct CanonicalPrefix {
  std::vector<uint8_t> bytes;
  uint32_t src_consumed = 0;  // original bytes the prefix covers
  bool decode_ok = true;      // false: stopped at an undecodable byte
};
CanonicalPrefix CanonicalizeCode(std::span<const uint8_t> code,
                                 size_t max_bytes);

// The content hash the n-gram prefilter keys on: FNV-1a over the first
// `RunPreMatcher::kGramBytes` canonical bytes. Exposed for tests.
uint64_t CanonicalGramHash(std::span<const uint8_t> canonical_bytes);

// Nop-normalizes a branch target (§4.3): when `target` lies inside
// [window_base, window_base + window.size()), skips no-op instructions
// starting at it and returns the first non-nop boundary; otherwise returns
// `target` unchanged. All arithmetic is 64-bit — window_base near the top
// of the 32-bit address space must not wrap the range check (a wrapped
// uint32_t comparison silently skipped normalization for top-of-memory
// sections). Exposed for the overflow regression test.
uint64_t NormalizeBranchTarget(std::span<const uint8_t> window,
                               uint64_t window_base, uint64_t target);

class RunPreMatcher {
 public:
  // Canonical bytes per prefilter gram. Sections whose canonical form is
  // shorter are never pruned (the gram would not be content-complete).
  static constexpr size_t kGramBytes = 16;

  explicit RunPreMatcher(const kvm::Machine& machine,
                         PatchRedirect redirect = nullptr,
                         MatcherOptions options = {})
      : machine_(machine),
        redirect_(std::move(redirect)),
        options_(options) {}

  // Matches every text section of `pre` against the run image. When
  // `stats` is non-null it is filled with this call's matching statistics
  // (populated on failure too, up to the point of the abort); the same
  // numbers are aggregated into the global metrics registry under the
  // "runpre." prefix either way.
  ks::Result<UnitMatch> MatchUnit(const kelf::ObjectFile& pre,
                                  MatchStats* stats = nullptr) const;

 private:
  const kvm::Machine& machine_;
  PatchRedirect redirect_;
  MatcherOptions options_;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_RUNPRE_H_
