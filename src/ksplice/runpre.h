// Run-pre matching (paper §4): verify that the pre object code corresponds
// to the code actually running, and recover symbol values — including
// ambiguous local symbols — from already-relocated run bytes.
//
// For every text section of a pre object (the helper carries every section
// of each rebuilt unit), the matcher:
//
//  1. collects candidate run addresses for the section's defining symbol
//     from kallsyms (all same-named symbols — locals collide) or, when the
//     function was already hot-patched, from the redirect callback, which
//     points at "the latest Ksplice replacement code already in the
//     kernel" (§5.4);
//  2. walks pre and run code instruction by instruction, using the ISA's
//     length table, skipping no-op padding independently on each side, and
//     tolerating rel8-vs-rel32 encodings of the same branch as long as the
//     targets correspond (§4.3);
//  3. at each pre relocation site, inverts the relocation algebra against
//     the already-relocated run word: S = val + P_run − A (pc-relative) or
//     S = val − A (absolute), accumulating a symbol valuation that must be
//     globally consistent;
//  4. accepts a candidate only if every byte corresponds; a section whose
//     symbol name is ambiguous is matched against every candidate, and
//     ambiguity is resolved by code content plus valuation constraints
//     propagated from other sections. Residual ambiguity or any run/pre
//     difference aborts the update (§4.3, §6.2 criterion (a)/(b)).

#ifndef KSPLICE_KSPLICE_RUNPRE_H_
#define KSPLICE_KSPLICE_RUNPRE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "base/status.h"
#include "kelf/objfile.h"
#include "ksplice/report.h"
#include "kvm/machine.h"

namespace ksplice {

// Where a pre text section was found in the running kernel.
struct MatchedSection {
  std::string name;     // section name, e.g. ".text.foo"
  std::string symbol;   // defining symbol
  uint32_t run_address = 0;
  uint32_t run_size = 0;  // bytes of run code covered by the match
};

// Everything recovered by matching one compilation unit.
struct UnitMatch {
  std::string unit;
  // Symbol name -> run address. Contains the unit's own symbols (sections
  // matched by content) and every symbol recovered from relocation sites,
  // including imports from other units.
  std::map<std::string, uint32_t> symbol_values;
  std::map<std::string, MatchedSection> sections;  // keyed by section name
};

// Stacking hook (§5.4): returns the address/size of the current replacement
// code for (unit, symbol) if that function is already hot-patched.
using PatchRedirect =
    std::function<std::optional<std::pair<uint32_t, uint32_t>>(
        const std::string& unit, const std::string& symbol)>;

class RunPreMatcher {
 public:
  explicit RunPreMatcher(const kvm::Machine& machine,
                         PatchRedirect redirect = nullptr)
      : machine_(machine), redirect_(std::move(redirect)) {}

  // Matches every text section of `pre` against the run image. When
  // `stats` is non-null it is filled with this call's matching statistics
  // (populated on failure too, up to the point of the abort); the same
  // numbers are aggregated into the global metrics registry under the
  // "runpre." prefix either way.
  ks::Result<UnitMatch> MatchUnit(const kelf::ObjectFile& pre,
                                  MatchStats* stats = nullptr) const;

 private:
  struct LocalMatch {
    std::map<std::string, uint32_t> recovered;  // symbol name -> address
    uint32_t run_size = 0;
  };

  // Attempts to match one section at `run_start`; `committed` carries the
  // valuation accumulated so far (a conflicting recovery fails the match).
  // Byte/relocation/no-op tallies accumulate into `stats`.
  ks::Result<LocalMatch> TryMatchText(
      const kelf::ObjectFile& pre, const kelf::Section& section,
      uint32_t run_start, const std::map<std::string, uint32_t>& committed,
      MatchStats& stats) const;

  const kvm::Machine& machine_;
  PatchRedirect redirect_;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_RUNPRE_H_
