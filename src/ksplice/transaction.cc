#include "ksplice/transaction.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <set>
#include <utility>

#include "base/faultinject.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/threadpool.h"
#include "base/trace.h"
#include "ksplice/rendezvous.h"
#include "kvx/isa.h"

namespace ksplice {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Builds the 5-byte trampoline: jmp32 from `from` to `to` (§2: "placing a
// jump instruction ... at the start of the obsolete function").
std::vector<uint8_t> MakeTrampoline(uint32_t from, uint32_t to) {
  kvx::Insn jmp;
  jmp.op = kvx::Op::kJmp32;
  jmp.rel = static_cast<int32_t>(to - (from + kvx::kTrampolineSize));
  return kvx::Encode(jmp);
}

// Reads a table of function pointers out of a module's note sections named
// `section_name` (the ksplice_apply/... hook tables, §5.3).
ks::Result<std::vector<uint32_t>> ReadHookTable(
    const kvm::Machine& machine,
    const std::vector<kelf::PlacedSection>& placements,
    const std::string& section_name) {
  std::vector<uint32_t> hooks;
  for (const kelf::PlacedSection& placement : placements) {
    if (placement.name != section_name) {
      continue;
    }
    for (uint32_t off = 0; off + 4 <= placement.size; off += 4) {
      KS_ASSIGN_OR_RETURN(uint32_t fn,
                          machine.ReadWord(placement.address + off));
      hooks.push_back(fn);
    }
  }
  return hooks;
}

}  // namespace

const char* TxnStageName(TxnStage stage) {
  switch (stage) {
    case TxnStage::kPrepare:
      return "prepare";
    case TxnStage::kMatch:
      return "match";
    case TxnStage::kLoad:
      return "load";
    case TxnStage::kPreApply:
      return "pre_apply";
    case TxnStage::kRendezvous:
      return "rendezvous";
    case TxnStage::kCommit:
      return "commit";
  }
  return "?";
}

namespace {

// Static span names (TraceSpan keeps a const char*).
const char* TxnSpanName(TxnStage stage) {
  switch (stage) {
    case TxnStage::kPrepare:
      return "ksplice.txn.prepare";
    case TxnStage::kMatch:
      return "ksplice.txn.match";
    case TxnStage::kLoad:
      return "ksplice.txn.load";
    case TxnStage::kPreApply:
      return "ksplice.txn.pre_apply";
    case TxnStage::kRendezvous:
      return "ksplice.txn.rendezvous";
    case TxnStage::kCommit:
      return "ksplice.txn.commit";
  }
  return "ksplice.txn.unknown";
}

}  // namespace

UpdateTransaction::UpdateTransaction(UpdateManager* manager,
                                     const ApplyOptions& options)
    : manager_(manager), machine_(manager->machine()), options_(options) {}

ks::Status UpdateTransaction::RunStage(TxnStage stage,
                                       const std::function<ks::Status()>& fn) {
  ks::TraceSpan span(TxnSpanName(stage));
  uint64_t begin = NowNs();
  ks::Status status = fn();
  StageTiming timing;
  timing.stage = TxnStageName(stage);
  timing.wall_ns = NowNs() - begin;
  ks::Metrics()
      .GetHistogram(std::string("ksplice.txn.") + timing.stage + "_ns")
      .Observe(timing.wall_ns);
  batch_.stages.push_back(std::move(timing));
  return status;
}

ks::Status UpdateTransaction::Prepare(
    std::span<const UpdatePackage> packages) {
  KS_FAULT_POINT("ksplice.txn.prepare");
  if (packages.empty()) {
    return ks::InvalidArgument("no packages to apply");
  }
  std::set<std::string> ids;
  std::map<std::pair<std::string, std::string>, std::string> targets;
  for (const UpdatePackage& package : packages) {
    for (const AppliedUpdate& existing : manager_->applied()) {
      if (existing.id == package.id) {
        return ks::AlreadyExists(ks::StrPrintf(
            "update %s is already applied", package.id.c_str()));
      }
    }
    if (!ids.insert(package.id).second) {
      return ks::InvalidArgument(ks::StrPrintf(
          "package %s appears twice in the batch", package.id.c_str()));
    }
    // Quarantine gate (quarantine.h): a package the watchdog reverted
    // after an attributed regression is refused by content hash until the
    // operator forces it; the override clears the entry so a forced
    // re-apply gets a clean slate for the next soak.
    uint64_t package_hash = PackageContentHash(package);
    std::optional<QuarantineEntry> quarantined =
        manager_->quarantine().Find(package_hash);
    if (quarantined.has_value()) {
      if (!options_.force) {
        return ks::FailedPrecondition(ks::StrPrintf(
            "package %s is quarantined (hash %016llx, evidence: %s); "
            "re-apply requires --force",
            package.id.c_str(),
            static_cast<unsigned long long>(package_hash),
            quarantined->evidence.c_str()));
      }
      manager_->quarantine().Remove(package_hash);
      KS_LOG(kInfo) << "force-applying quarantined package " << package.id;
    }
    // Packages inside one batch must be independent: two packages that
    // patch the same function would have to stack, and stacking requires
    // the earlier one to be committed before the later one matches.
    for (const Target& target : package.targets) {
      auto [it, inserted] = targets.emplace(
          std::make_pair(target.unit, target.symbol), package.id);
      if (!inserted) {
        return ks::InvalidArgument(ks::StrPrintf(
            "packages %s and %s both target %s:%s (stacked updates must "
            "apply in separate transactions)",
            it->second.c_str(), package.id.c_str(), target.unit.c_str(),
            target.symbol.c_str()));
      }
    }
    Staged staged;
    staged.package = &package;
    staged.update.id = package.id;
    staged.update.package_hash = package_hash;
    staged.report.id = package.id;
    staged.report.helper_retained = options_.keep_helper;
    staged_.push_back(std::move(staged));
  }
  return ks::OkStatus();
}

ks::Status UpdateTransaction::Match() {
  KS_FAULT_POINT("ksplice.txn.match");
  // Every (package, helper unit) pair is independent: all packages match
  // against the committed registry (batches are disjoint by Prepare), and
  // MatchUnit only reads the machine. Fan the pairs out across the match
  // pool, then merge stats and pick the first failure in input order so
  // the outcome is identical at any worker count.
  struct Task {
    Staged* staged;
    const kelf::ObjectFile* helper;
  };
  std::vector<Task> tasks;
  for (Staged& staged : staged_) {
    for (const kelf::ObjectFile& helper : staged.package->helper_objects) {
      tasks.push_back(Task{&staged, &helper});
    }
  }
  RunPreMatcher matcher(
      *machine_,
      [this](const std::string& unit, const std::string& symbol) {
        return manager_->CurrentCode(unit, symbol);
      },
      MatcherOptions{.use_index = options_.use_index, .jobs = 1});
  std::vector<MatchStats> stats(tasks.size());
  std::vector<ks::Result<UnitMatch>> results(
      tasks.size(), ks::Result<UnitMatch>(ks::Internal("not matched")));
  ks::ParallelFor(options_.jobs, tasks.size(), [&](size_t i) {
    results[i] = matcher.MatchUnit(*tasks[i].helper, &stats[i]);
  });
  for (size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].staged->report.match.MergeFrom(stats[i]);
    if (!results[i].ok()) {
      return ks::Status(results[i].status())
          .WithContext(ks::StrPrintf(
              "applying %s", tasks[i].staged->package->id.c_str()));
    }
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].staged->matches.emplace(tasks[i].helper->source_name(),
                                     std::move(results[i]).value());
  }
  return ks::OkStatus();
}

ks::Status UpdateTransaction::Load() {
  KS_FAULT_POINT("ksplice.txn.load");
  // Sequential, in package order: the module arena layout (and therefore
  // every splice address) must not depend on load interleaving.
  for (Staged& staged : staged_) {
    const UpdatePackage& package = *staged.package;
    auto fail = [&package](ks::Status status) {
      return status.WithContext(
          ks::StrPrintf("applying %s", package.id.c_str()));
    };

    // Helper image (memory accounting; unloadable afterwards, §5.1).
    uint32_t helper_bytes = 0;
    for (const kelf::ObjectFile& helper : package.helper_objects) {
      helper_bytes += static_cast<uint32_t>(helper.Serialize().size());
    }
    ks::Result<kvm::ModuleHandle> helper_handle =
        machine_->LoadBlob(package.id + "-helper", helper_bytes, group_);
    if (!helper_handle.ok()) {
      return fail(helper_handle.status());
    }
    staged.update.helper = *helper_handle;
    staged.update.helper_bytes = helper_bytes;
    staged.report.helper_bytes = helper_bytes;

    // Primary module: scoped imports ("unit::name") resolve via the
    // valuation; plain imports via exported symbols (kvm) or, failing
    // that, via recovered values (globals of a patched unit are also in
    // the valuation and must agree with kallsyms — run-pre checked that).
    const auto& matches = staged.matches;
    auto resolver = [&matches](
                        const std::string& name) -> std::optional<uint32_t> {
      ScopedSymbol scoped = SplitScopedName(name);
      if (!scoped.unit.empty()) {
        auto unit_it = matches.find(scoped.unit);
        if (unit_it == matches.end()) {
          return std::nullopt;
        }
        auto sym_it = unit_it->second.symbol_values.find(scoped.symbol);
        if (sym_it == unit_it->second.symbol_values.end()) {
          return std::nullopt;
        }
        return sym_it->second;
      }
      for (const auto& [unit, match] : matches) {
        auto sym_it = match.symbol_values.find(name);
        if (sym_it != match.symbol_values.end()) {
          return sym_it->second;
        }
      }
      return std::nullopt;
    };
    ks::Result<kvm::ModuleHandle> primary_handle = machine_->LoadModule(
        package.primary_objects, package.id + "-primary", resolver, group_);
    if (!primary_handle.ok()) {
      return ks::Status(primary_handle.status())
          .WithContext("loading primary module");
    }
    staged.update.primary = *primary_handle;

    ks::Result<kvm::ModuleInfo> primary_info =
        machine_->GetModuleInfo(*primary_handle);
    if (!primary_info.ok()) {
      return fail(primary_info.status());
    }
    staged.update.primary_base = primary_info->base;
    staged.update.primary_size = primary_info->size;
    staged.report.primary_bytes = primary_info->size;

    // The import bindings the link chose, for the out-of-order undo
    // dependency check (manager.h).
    ks::Result<std::vector<std::pair<std::string, uint32_t>>> imports =
        machine_->ModuleImports(*primary_handle);
    if (!imports.ok()) {
      return fail(imports.status());
    }
    staged.update.imports = std::move(imports).value();

    // Target placements: where is each obsolete function, and where is its
    // replacement inside the primary module?
    for (const Target& target : package.targets) {
      auto match_it = staged.matches.find(target.unit);
      if (match_it == staged.matches.end()) {
        return fail(ks::Internal(
            ks::StrPrintf("no unit match for %s", target.unit.c_str())));
      }
      auto section_it = match_it->second.sections.find(target.section);
      if (section_it == match_it->second.sections.end()) {
        return fail(ks::Internal(ks::StrPrintf(
            "target section %s was not matched", target.section.c_str())));
      }
      const MatchedSection& matched = section_it->second;

      AppliedFunction fn;
      fn.unit = target.unit;
      fn.symbol = target.symbol;
      fn.code_address = matched.run_address;
      fn.code_size = matched.run_size;
      const AppliedFunction* previous =
          manager_->FindApplied(target.unit, target.symbol);
      fn.orig_address =
          previous != nullptr ? previous->orig_address : matched.run_address;

      // The replacement: the primary module's copy of the symbol,
      // identified by name + unit + module address range.
      bool found = false;
      for (const kelf::LinkedSymbol& sym :
           machine_->SymbolsNamed(target.symbol)) {
        if (sym.unit == target.unit && sym.address >= primary_info->base &&
            sym.address < primary_info->base + primary_info->size) {
          fn.repl_address = sym.address;
          fn.repl_size = sym.size;
          found = true;
          break;
        }
      }
      if (!found) {
        return fail(ks::Internal(ks::StrPrintf(
            "replacement symbol %s missing from primary module",
            target.symbol.c_str())));
      }
      if (fn.code_size < kvx::kTrampolineSize) {
        return fail(ks::FailedPrecondition(ks::StrPrintf(
            "function %s is too small (%u bytes) for a trampoline",
            target.symbol.c_str(), fn.code_size)));
      }
      staged.update.functions.push_back(std::move(fn));
    }

    // Hook tables from the primary module's note sections, through the
    // shared stage/section binding table (package.h).
    ks::Result<std::vector<kelf::PlacedSection>> placements =
        machine_->ModulePlacements(*primary_handle);
    if (!placements.ok()) {
      return fail(placements.status());
    }
    for (const HookStageBinding& binding : HookStageBindings()) {
      ks::Result<std::vector<uint32_t>> table =
          ReadHookTable(*machine_, *placements, binding.section);
      if (!table.ok()) {
        return fail(table.status());
      }
      staged.update.hooks.*binding.table = std::move(table).value();
    }
  }
  return ks::OkStatus();
}

ks::Status UpdateTransaction::PreApply() {
  KS_FAULT_POINT("ksplice.txn.pre_apply");
  for (Staged& staged : staged_) {
    // Mark before running: if a hook fails partway through, the hooks that
    // did run are compensated by this package's post_reverse stage during
    // rollback.
    staged.pre_applied = true;
    ks::Status hooks = manager_->RunHooks(staged.update.hooks.pre_apply);
    if (!hooks.ok()) {
      return hooks.WithContext(
          ks::StrPrintf("applying %s", staged.package->id.c_str()));
    }
  }
  return ks::OkStatus();
}

ks::Status UpdateTransaction::Rendezvous() {
  // One combined quiescence check over every function of every package
  // (§5.2): no thread's pc or conservatively-scanned stack word may fall
  // in any code being replaced.
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  for (const Staged& staged : staged_) {
    for (const AppliedFunction& fn : staged.update.functions) {
      ranges.emplace_back(fn.code_address, fn.code_address + fn.code_size);
    }
  }

  auto body = [this](kvm::Machine& m) -> ks::Status {
    // Package order: each package's apply hooks, then its splices. If
    // anything fails, put every written trampoline back and run the
    // reverse hooks of the packages whose apply hooks already ran —
    // all inside this same stop window, so no thread ever observes the
    // partial state.
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> written;
    size_t hooked = 0;
    auto unwind = [&]() {
      // Unwinding must not itself be fault-injected: the rollback promise
      // is what the injected faults are probing.
      ks::ScopedFaultSuppression suppress;
      for (auto it = written.rbegin(); it != written.rend(); ++it) {
        (void)m.WriteBytes(it->first, it->second);
      }
      for (size_t i = hooked; i-- > 0;) {
        manager_->RunHooksBestEffort(staged_[i].update.hooks.reverse);
      }
    };
    for (Staged& staged : staged_) {
      ks::Status hooks = manager_->RunHooks(staged.update.hooks.apply);
      if (!hooks.ok()) {
        unwind();
        return hooks;
      }
      ++hooked;
      for (AppliedFunction& fn : staged.update.functions) {
        ks::Result<std::vector<uint8_t>> saved =
            m.ReadBytes(fn.orig_address, kvx::kTrampolineSize);
        ks::Status st = saved.ok() ? ks::Faults().Check("ksplice.txn.splice")
                                   : ks::Status(saved.status());
        if (st.ok()) {
          fn.saved_bytes = *saved;
          st = m.WriteBytes(fn.orig_address,
                            MakeTrampoline(fn.orig_address, fn.repl_address));
        }
        if (!st.ok()) {
          unwind();
          return st;
        }
        written.emplace_back(fn.orig_address, fn.saved_bytes);
      }
    }
    return ks::OkStatus();
  };

  RendezvousOutcome outcome;
  ks::Status stopped =
      RunRendezvous(*machine_, options_.rendezvous, ranges, body, "apply",
                    &outcome);
  batch_.attempts = outcome.attempts;
  batch_.retry_ticks = outcome.retry_ticks;
  batch_.pause_ns = outcome.pause_ns;
  batch_.blockers = outcome.blockers;
  if (!stopped.ok()) {
    if (staged_.size() == 1) {
      return stopped.WithContext(
          ks::StrPrintf("applying %s", staged_[0].package->id.c_str()));
    }
    return stopped.WithContext(
        ks::StrPrintf("applying %zu packages", staged_.size()));
  }
  batch_.quiescence_retries = batch_.attempts - 1;
  return ks::OkStatus();
}

ks::Status UpdateTransaction::Commit() {
  // The splice is live: from here on, failures (post_apply hooks) surface
  // as errors but the updates stay registered so they can be undone — the
  // trampolines are not unwound for a cleanup-stage error. The commit
  // fault site follows the same contract, which is why it seeds
  // first_error instead of returning before registration.
  ks::Status first_error = ks::Faults().Check("ksplice.txn.commit");
  for (Staged& staged : staged_) {
    if (first_error.ok()) {
      ks::Status hooks = manager_->RunHooks(staged.update.hooks.post_apply);
      if (!hooks.ok()) {
        first_error = hooks.WithContext("post_apply");
      }
    }
    if (first_error.ok() && !options_.keep_helper) {
      // Only drop the handle once the unload actually happened: a failed
      // unload keeps the helper registered so it can still be reclaimed
      // by UnloadHelper or undo instead of leaking its arena block.
      if (machine_->UnloadModule(staged.update.helper).ok()) {
        staged.update.helper = kvm::ModuleHandle{};
      }
    }

    ApplyReport& report = staged.report;
    report.attempts = batch_.attempts;
    report.quiescence_retries = batch_.quiescence_retries;
    report.pause_ns = batch_.pause_ns;
    report.retry_ticks = batch_.retry_ticks;
    report.blockers = batch_.blockers;
    for (const AppliedFunction& fn : staged.update.functions) {
      SpliceRecord record;
      record.unit = fn.unit;
      record.symbol = fn.symbol;
      record.orig_address = fn.orig_address;
      record.repl_address = fn.repl_address;
      record.code_size = fn.code_size;
      record.repl_size = fn.repl_size;
      record.trampoline_bytes = static_cast<uint32_t>(fn.saved_bytes.size());
      report.trampoline_bytes += record.trampoline_bytes;
      report.functions.push_back(std::move(record));
    }
    batch_.functions_spliced +=
        static_cast<uint32_t>(staged.update.functions.size());

    static ks::Counter& applies =
        ks::Metrics().GetCounter("ksplice.applies");
    static ks::Counter& tramp_bytes =
        ks::Metrics().GetCounter("ksplice.trampoline_bytes");
    static ks::Counter& arena_bytes =
        ks::Metrics().GetCounter("ksplice.helper_bytes");
    applies.Add(1);
    tramp_bytes.Add(report.trampoline_bytes);
    arena_bytes.Add(report.helper_bytes);

    size_t function_count = staged.update.functions.size();
    manager_->Register(std::move(staged.update));
    KS_LOG(kInfo) << "applied " << staged.package->id << " ("
                  << function_count << " functions)";
  }
  static ks::Counter& retries =
      ks::Metrics().GetCounter("ksplice.quiescence_retries");
  static ks::Histogram& pause =
      ks::Metrics().GetHistogram("ksplice.stop_pause_ns");
  retries.Add(static_cast<uint64_t>(batch_.quiescence_retries));
  pause.Observe(batch_.pause_ns);
  return first_error;
}

void UpdateTransaction::Rollback(TxnStage failed) {
  // Compensation code is exempt from fault injection (faultinject.h): a
  // fault injected while undoing a previous fault's damage would leave the
  // machine in exactly the partial state rollback exists to prevent.
  ks::ScopedFaultSuppression suppress;
  ks::TraceSpan span("ksplice.txn.rollback");
  span.Annotate("failed_stage", TxnStageName(failed));
  static ks::Counter& rollbacks =
      ks::Metrics().GetCounter("ksplice.txn_rollbacks");
  rollbacks.Add(1);

  // Compensate completed (or partially completed) pre_apply stages, newest
  // first, while the hooks' module code is still loaded: post_reverse is
  // the stage that undoes pre_apply's setup in a reversed update, so a
  // patch whose pre_apply has side effects pairs it with a post_reverse
  // that clears them (§5.3).
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it) {
    if (it->pre_applied) {
      manager_->RunHooksBestEffort(it->update.hooks.post_reverse);
    }
  }
  // Drop every module this transaction loaded in one group unload.
  (void)machine_->UnloadGroup(group_);
}

ks::Result<BatchApplyReport> UpdateTransaction::Run(
    std::span<const UpdatePackage> packages) {
  group_ = manager_->NextTransactionGroup();

  ks::Status prepared = RunStage(TxnStage::kPrepare, [this, packages] {
    return Prepare(packages);
  });
  if (!prepared.ok()) {
    return prepared;
  }

  struct StageStep {
    TxnStage stage;
    ks::Status (UpdateTransaction::*fn)();
  };
  const StageStep steps[] = {
      {TxnStage::kMatch, &UpdateTransaction::Match},
      {TxnStage::kLoad, &UpdateTransaction::Load},
      {TxnStage::kPreApply, &UpdateTransaction::PreApply},
      {TxnStage::kRendezvous, &UpdateTransaction::Rendezvous},
  };
  for (const StageStep& step : steps) {
    ks::Status status =
        RunStage(step.stage, [this, &step] { return (this->*step.fn)(); });
    if (!status.ok()) {
      Rollback(step.stage);
      return status;
    }
  }

  // No rollback past this point: the splice is committed even if a
  // post_apply hook complains (the updates are registered for undo).
  KS_RETURN_IF_ERROR(
      RunStage(TxnStage::kCommit, [this] { return Commit(); }));

  batch_.packages = static_cast<uint32_t>(staged_.size());
  for (Staged& staged : staged_) {
    staged.report.stages = batch_.stages;
    batch_.updates.push_back(std::move(staged.report));
  }
  return std::move(batch_);
}

}  // namespace ksplice
