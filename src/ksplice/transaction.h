// UpdateTransaction: the staged apply engine.
//
// Applying updates is a transaction over six stages:
//
//   Prepare    validate the batch (unique ids, disjoint targets)
//   Match      run-pre verify every helper unit of every package (§4)
//   Load       helper blobs + primary modules into the module arena, hook
//              tables, target placement resolution (§5.1)
//   PreApply   ksplice_pre_apply hooks, machine running (§5.3)
//   Rendezvous one stop_machine over the whole batch: combined quiescence
//              check (§5.2), apply hooks, splice every trampoline
//   Commit     post_apply hooks, helper unload, registry insertion
//
// Any stage failure rolls back every completed stage, newest first:
// written trampolines are restored inside the same stop window, completed
// pre_apply stages are compensated by running that package's post_reverse
// hooks (the stage that normally undoes pre_apply's setup), and all
// modules the transaction loaded are dropped with one group unload — the
// machine ends byte-identical to its pre-apply state. This closes the old
// core's documented "side effects of pre_apply are NOT rolled back" gap.
//
// A single-package Apply is just a batch of one: same stages, same
// rollback, one function list in the rendezvous.

#ifndef KSPLICE_KSPLICE_TRANSACTION_H_
#define KSPLICE_KSPLICE_TRANSACTION_H_

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "ksplice/manager.h"
#include "ksplice/package.h"
#include "ksplice/report.h"
#include "ksplice/runpre.h"

namespace ksplice {

enum class TxnStage : uint8_t {
  kPrepare = 0,
  kMatch,
  kLoad,
  kPreApply,
  kRendezvous,
  kCommit,
};

const char* TxnStageName(TxnStage stage);

class UpdateTransaction {
 public:
  UpdateTransaction(UpdateManager* manager, const ApplyOptions& options);

  // Runs the transaction over `packages`. On success every package is
  // registered with the manager and the batch report describes the shared
  // rendezvous plus one ApplyReport per package. On failure the machine is
  // rolled back to its pre-apply state (exception: a post_apply hook
  // failure after the splice leaves the updates registered, matching
  // single-apply semantics — the splice itself is not unwound for a
  // cleanup-stage error).
  ks::Result<BatchApplyReport> Run(std::span<const UpdatePackage> packages);

 private:
  // One package's in-flight state, built up across stages.
  struct Staged {
    const UpdatePackage* package = nullptr;
    std::map<std::string, UnitMatch> matches;  // unit -> run-pre valuation
    AppliedUpdate update;
    ApplyReport report;
    bool pre_applied = false;  // pre_apply stage reached (hooks may have
                               // partially run; rollback compensates)
  };

  ks::Status Prepare(std::span<const UpdatePackage> packages);
  ks::Status Match();
  ks::Status Load();
  ks::Status PreApply();
  ks::Status Rendezvous();
  ks::Status Commit();

  // Reverses every completed stage after a failure in `failed`:
  // compensates completed pre_apply stages with post_reverse hooks, then
  // drops all modules this transaction loaded (one group unload).
  void Rollback(TxnStage failed);

  // Runs `stage`, recording its wall time and a trace span.
  ks::Status RunStage(TxnStage stage,
                      const std::function<ks::Status()>& fn);

  UpdateManager* manager_;
  kvm::Machine* machine_;
  ApplyOptions options_;
  std::string group_;  // module-group tag for this transaction's loads
  std::vector<Staged> staged_;
  BatchApplyReport batch_;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_TRANSACTION_H_
