#include "ksplice/watchdog.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "base/faultinject.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"

namespace ksplice {

const char* WatchdogStateName(WatchdogState state) {
  switch (state) {
    case WatchdogState::kMonitoring:
      return "monitoring";
    case WatchdogState::kAttributed:
      return "attributed";
    case WatchdogState::kReverting:
      return "reverting";
    case WatchdogState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

HealthMonitor::HealthMonitor(UpdateManager* manager,
                             const WatchdogOptions& options)
    : manager_(manager), machine_(manager->machine()), options_(options) {
  // Faults taken before the monitor existed predate the updates it is
  // guarding; start the cursors at the current counters so only new
  // signals are attributed.
  seen_faults_ = machine_->FaultCount();
  seen_fixups_ = machine_->ExtableFixups();
}

std::optional<AttributedFault> HealthMonitor::Attribute(
    const kvm::FaultRecord& record) {
  for (const AppliedUpdate& update : manager_->applied()) {
    for (const AppliedFunction& fn : update.functions) {
      if (record.pc >= fn.repl_address &&
          record.pc < fn.repl_address + fn.repl_size) {
        AttributedFault fault;
        fault.update = update.id;
        fault.unit = fn.unit;
        fault.symbol = fn.symbol;
        fault.tid = record.tid;
        fault.pc = record.pc;
        fault.tick = record.tick;
        fault.reason = record.reason;
        return fault;
      }
    }
    // Not inside a replacement function, but inside the update's primary
    // module (a hook, a helper routine, a new global's initializer).
    if (update.primary_size != 0 && record.pc >= update.primary_base &&
        record.pc < update.primary_base + update.primary_size) {
      AttributedFault fault;
      fault.update = update.id;
      fault.tid = record.tid;
      fault.pc = record.pc;
      fault.tick = record.tick;
      fault.reason = record.reason;
      return fault;
    }
  }
  return std::nullopt;
}

void HealthMonitor::MaybeRevert(const AttributedFault& trigger,
                                bool in_window) {
  state_ = WatchdogState::kAttributed;
  if (!in_window || !options_.auto_revert) {
    return;
  }
  if (fault_tally_[trigger.update] <= options_.max_faults) {
    return;
  }
  ks::Result<RevertReport> reverted = Revert(trigger.update, trigger);
  if (reverted.ok()) {
    fault_tally_.erase(trigger.update);
  }
}

void HealthMonitor::ConsumeFaults(bool in_window) {
  uint64_t total = machine_->FaultCount();
  if (total <= seen_faults_) {
    return;
  }
  uint64_t fresh = total - seen_faults_;
  seen_faults_ = total;
  report_.faults_seen += fresh;

  std::vector<kvm::FaultRecord> records = machine_->FaultRecords();
  // The record log is a bounded ring: if more faults landed than it
  // retains, the overflow is reported but cannot be attributed.
  uint64_t available = std::min<uint64_t>(fresh, records.size());
  if (available < fresh) {
    report_.unattributed.push_back(ks::StrPrintf(
        "%llu fault records evicted before sampling",
        static_cast<unsigned long long>(fresh - available)));
  }
  for (size_t i = records.size() - available; i < records.size(); ++i) {
    const kvm::FaultRecord& record = records[i];
    std::optional<AttributedFault> attributed = Attribute(record);
    if (!attributed.has_value()) {
      report_.unattributed.push_back(
          ks::StrPrintf("tid %d at 0x%08x: %s", record.tid, record.pc,
                        record.reason.c_str()));
      continue;
    }
    ++report_.faults_attributed;
    ++fault_tally_[attributed->update];
    manager_->NoteAttributedFault(*attributed);
    report_.attributed.push_back(*attributed);
    MaybeRevert(*attributed, in_window);
  }
}

void HealthMonitor::ConsumeFixups(bool in_window) {
  uint64_t total = machine_->ExtableFixups();
  if (total <= seen_fixups_) {
    return;
  }
  uint64_t fresh = total - seen_fixups_;
  seen_fixups_ = total;
  report_.extable_fixups += fresh;
  if (options_.max_extable_fixups == 0) {
    return;  // fixups are normal recovered loads, not a signal
  }
  if (report_.extable_fixups <= options_.max_extable_fixups) {
    return;
  }
  // Excessive fixup rate: attribute the most recent fixup sites; a hit in
  // an update's replacement code makes the rate that update's regression.
  std::vector<kvm::FaultRecord> records = machine_->ExtableFixupRecords();
  uint64_t available = std::min<uint64_t>(fresh, records.size());
  for (size_t i = records.size() - available; i < records.size(); ++i) {
    kvm::FaultRecord record = records[i];
    record.reason = ks::StrPrintf(
        "extable fixup rate: %llu fixups in the soak window",
        static_cast<unsigned long long>(report_.extable_fixups));
    std::optional<AttributedFault> attributed = Attribute(record);
    if (!attributed.has_value()) {
      continue;
    }
    ++report_.faults_attributed;
    ++fault_tally_[attributed->update];
    manager_->NoteAttributedFault(*attributed);
    report_.attributed.push_back(*attributed);
    MaybeRevert(*attributed, in_window);
    break;  // one regression per threshold crossing
  }
}

void HealthMonitor::CheckStuckThreads(bool in_window) {
  for (const kvm::ThreadInfo& info : machine_->Threads()) {
    if (info.state != kvm::ThreadState::kRunnable &&
        info.state != kvm::ThreadState::kLockWait) {
      stuck_.erase(info.tid);
      continue;
    }
    auto [it, inserted] = stuck_.emplace(info.tid, std::make_pair(info.pc, 1u));
    if (!inserted) {
      if (it->second.first == info.pc) {
        ++it->second.second;
      } else {
        it->second = std::make_pair(info.pc, 1u);
      }
    }
    if (it->second.second < options_.stuck_samples) {
      continue;
    }
    ++report_.stuck_threads;
    it->second.second = 0;  // one report per stuck episode
    kvm::FaultRecord record;
    record.tid = info.tid;
    record.pc = info.pc;
    record.tick = machine_->Ticks();
    record.reason = ks::StrPrintf("stuck pc across %u samples",
                                  options_.stuck_samples);
    std::optional<AttributedFault> attributed = Attribute(record);
    if (!attributed.has_value()) {
      report_.unattributed.push_back(
          ks::StrPrintf("tid %d at 0x%08x: %s", record.tid, record.pc,
                        record.reason.c_str()));
      continue;
    }
    ++report_.faults_attributed;
    ++fault_tally_[attributed->update];
    manager_->NoteAttributedFault(*attributed);
    report_.attributed.push_back(*attributed);
    MaybeRevert(*attributed, in_window);
  }
}

void HealthMonitor::Sample(bool in_window) {
  ++report_.samples;
  ks::Status sample = ks::Faults().Check("ksplice.watchdog.sample");
  if (!sample.ok()) {
    // An aborted sampling pass drops no state: the cursors are untouched,
    // so the next pass attributes everything this one would have.
    --report_.samples;
    return;
  }
  if (machine_->Halted()) {
    report_.panicked = true;
  }
  ConsumeFaults(in_window);
  ConsumeFixups(in_window);
  if (options_.stuck_samples > 0) {
    CheckStuckThreads(in_window);
  }
}

WatchdogReport HealthMonitor::Soak() {
  static ks::Counter& soaks =
      ks::Metrics().GetCounter("ksplice.watchdog.soaks");
  soaks.Add(1);
  report_ = WatchdogReport{};
  report_.window_ticks = options_.soak_ticks;
  state_ = WatchdogState::kMonitoring;
  window_open_ = true;
  uint64_t start = machine_->Ticks();
  uint64_t end = start + options_.soak_ticks;
  uint64_t step = std::max<uint64_t>(options_.sample_ticks, 1);
  while (machine_->Ticks() < end && !machine_->Halted()) {
    uint64_t before = machine_->Ticks();
    (void)machine_->Advance(std::min(step, end - before));
    Sample(/*in_window=*/true);
    if (machine_->Ticks() == before) {
      break;  // nothing can run; the rest of the window would be idle
    }
  }
  window_open_ = false;
  report_.window_closed = true;
  return report_;
}

void HealthMonitor::Poll() { Sample(window_open_); }

ks::Result<RevertReport> HealthMonitor::Revert(
    const std::string& id, const AttributedFault& trigger) {
  const AppliedUpdate* update = nullptr;
  for (const AppliedUpdate& applied : manager_->applied()) {
    if (applied.id == id) {
      update = &applied;
      break;
    }
  }
  if (update == nullptr) {
    return ks::NotFound(
        ks::StrPrintf("update %s is not applied", id.c_str()));
  }
  state_ = WatchdogState::kReverting;
  static ks::Counter& reverts =
      ks::Metrics().GetCounter("ksplice.watchdog.reverts");
  static ks::Counter& failures =
      ks::Metrics().GetCounter("ksplice.watchdog.revert_failures");
  reverts.Add(1);
  KS_LOG(kInfo) << "watchdog reverting " << id << ": " << trigger.reason;

  RevertReport revert;
  revert.id = id;
  revert.package_hash = update->package_hash;
  revert.trigger = trigger;
  revert.detected_tick = machine_->Ticks();
  int max_attempts = std::max(1, options_.max_revert_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    revert.attempts = attempt;
    // The first attempt runs exposed to fault injection — it is the path
    // the revert drill site probes. Retries are recovery of a failed
    // revert and are exempt, the same contract as undo compensation: a
    // chaos plan may fail the revert once but cannot wedge the safety
    // net into a half-reverted machine.
    std::optional<ks::ScopedFaultSuppression> suppress;
    if (attempt > 1) {
      suppress.emplace();
    }
    ks::Status status = ks::Faults().Check("ksplice.watchdog.revert");
    if (status.ok()) {
      ks::Result<UndoReport> undone = manager_->Undo(id, options_.rendezvous);
      if (undone.ok()) {
        revert.reverted = true;
        revert.undo = std::move(undone).value();
        break;
      }
      status = undone.status();
    }
    revert.error = status.message();
    KS_LOG(kWarning) << "revert of " << id << " attempt " << attempt
                     << " failed: " << status.message();
    if (attempt < max_attempts) {
      // Backoff: whatever blocked the undo (a thread in the patched
      // range, a transient failure) needs machine progress to clear.
      uint64_t backoff =
          options_.revert_backoff_ticks * static_cast<uint64_t>(attempt);
      revert.backoff_ticks += backoff;
      (void)machine_->Advance(backoff);
    }
  }

  // Quarantine with the triggering fault as evidence — also on a failed
  // revert, where the undo error rides along as diagnostics and the
  // update stays fully applied (restore-or-abort: never half-reverted).
  QuarantineEntry entry;
  entry.id = id;
  entry.package_hash = revert.package_hash;
  entry.evidence = trigger.reason;
  if (!revert.reverted) {
    entry.evidence += "; revert failed: " + revert.error;
    failures.Add(1);
  }
  entry.tid = trigger.tid;
  entry.pc = trigger.pc;
  entry.tick = trigger.tick;
  manager_->quarantine().Add(std::move(entry));
  revert.quarantined = true;
  state_ = WatchdogState::kQuarantined;
  report_.reverts.push_back(revert);
  return revert;
}

}  // namespace ksplice
