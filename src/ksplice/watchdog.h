// The post-apply safety net: runtime health watchdog + automatic revert.
//
// A successful apply is not the end of an update's risk: a bad patch can
// commit cleanly and only start oopsing under real load. HealthMonitor
// closes that loop. It samples a Machine's health signals over a
// configurable soak window — fault count (BUG traps, oopses), the panic
// flag, the extable fixup rate, and per-thread stuck-PC detection — and
// *attributes* each fault by mapping its PC against every applied
// update's replacement-code ranges (and primary-module range) from the
// UpdateManager registry. An attributed regression inside the window
// drives an automatic revert through the existing undo path, with its own
// attempt/backoff loop on top of the stop_machine retry policy; the
// offending package is then quarantined by content hash (quarantine.h) so
// a re-apply is refused without --force.
//
// State machine (see DESIGN.md "Safety net"):
//
//   Monitoring --attributed fault--> Attributed --> Reverting
//       |                                               |
//       | window closes                   undo ok / all attempts failed
//       v                                               v
//   (report only: post-window faults             Quarantined (with the
//    are evidence, never auto-reverted)           undo error as diagnostics
//                                                 when the revert failed —
//                                                 the update stays FULLY
//                                                 applied, never half)
//
// Failure semantics mirror the undo engine's restore-or-abort contract: a
// failed revert attempt leaves the update completely applied; retries run
// under ScopedFaultSuppression (recovery code is exempt from fault
// injection, the same exemption PR 5 gave manual undo compensation), so
// chaos plans can fail the first attempt but cannot wedge the safety net.

#ifndef KSPLICE_KSPLICE_WATCHDOG_H_
#define KSPLICE_KSPLICE_WATCHDOG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "base/status.h"
#include "ksplice/manager.h"
#include "ksplice/report.h"

namespace ksplice {

struct WatchdogOptions {
  // Soak window length in VM ticks: faults taken while the window is open
  // are eligible for automatic revert; later faults are evidence only.
  uint64_t soak_ticks = 200'000;
  // Machine progress per sampling pass (smaller = tighter detection
  // latency, more sampling overhead).
  uint64_t sample_ticks = 10'000;
  // Attributed faults tolerated per update before the revert fires (0 =
  // any attributed fault is a regression).
  uint64_t max_faults = 0;
  // Extable fixup delta over the window that counts as a regression when
  // the fixups attribute to an update (0 = fixup rate is not a signal;
  // recovered loads are normal kernel behavior).
  uint64_t max_extable_fixups = 0;
  // Consecutive samples a runnable/lock-waiting thread may sit at one PC
  // before it counts as stuck (0 = stuck-PC detection off).
  uint32_t stuck_samples = 0;
  // Drive the automatic revert on an attributed regression (off = detect
  // and report only).
  bool auto_revert = true;
  // Revert attempt budget and the backoff between failed attempts: the
  // machine advances attempt * revert_backoff_ticks before the retry, on
  // the reasoning that whatever blocked the undo (a thread in the patched
  // range, a transient failure) needs machine progress to clear.
  int max_revert_attempts = 3;
  uint64_t revert_backoff_ticks = 20'000;
  // stop_machine retry policy for each undo attempt (rendezvous.h).
  RendezvousOptions rendezvous;
};

enum class WatchdogState : uint8_t {
  kMonitoring = 0,
  kAttributed = 1,
  kReverting = 2,
  kQuarantined = 3,
};

const char* WatchdogStateName(WatchdogState state);

class HealthMonitor {
 public:
  explicit HealthMonitor(UpdateManager* manager,
                         const WatchdogOptions& options = {});

  // Runs one soak window: alternates Advance(sample_ticks) with sampling
  // passes until the window is consumed, the machine halts, or no thread
  // can make progress. Attributed regressions inside the window are
  // auto-reverted (options.auto_revert). Returns the window's report;
  // report() keeps it for later Poll() calls to extend.
  WatchdogReport Soak();

  // One sampling pass over the current signals without advancing the
  // machine. After Soak() returns (window closed), new faults are
  // attributed and recorded as evidence but never auto-reverted.
  void Poll();

  // Reverts `id` now, blaming `trigger`: the revert/quarantine half of the
  // safety net without the sampling half. Public for operator-forced
  // reverts and for drills; Soak() funnels through this. Fails with
  // kNotFound if `id` is not applied. A failed revert still quarantines
  // (with the undo error as diagnostics) and returns the report with
  // reverted == false inside an OK result; only a bad `id` is an error.
  ks::Result<RevertReport> Revert(const std::string& id,
                                  const AttributedFault& trigger);

  WatchdogState state() const { return state_; }
  const WatchdogReport& report() const { return report_; }

 private:
  // Maps a faulting PC into the applied-update registry: a hit in a
  // function's replacement range names (update, unit, symbol); a hit
  // elsewhere in an update's primary module names just the update.
  std::optional<AttributedFault> Attribute(const kvm::FaultRecord& record);

  // One sampling pass; `in_window` gates the auto-revert.
  void Sample(bool in_window);

  // Consumes fault/fixup records the monitor has not seen yet, attributes
  // them, and fires reverts for updates whose tally crossed max_faults.
  void ConsumeFaults(bool in_window);
  void ConsumeFixups(bool in_window);
  void CheckStuckThreads(bool in_window);
  void MaybeRevert(const AttributedFault& trigger, bool in_window);

  UpdateManager* manager_;
  kvm::Machine* machine_;
  WatchdogOptions options_;
  WatchdogState state_ = WatchdogState::kMonitoring;
  WatchdogReport report_;
  bool window_open_ = false;

  // Sampling cursors: counts consumed so far (monotonic machine counters,
  // immune to ring eviction in the record logs).
  uint64_t seen_faults_ = 0;
  uint64_t seen_fixups_ = 0;
  // Per-update attributed-fault tallies for the max_faults threshold.
  std::map<std::string, uint64_t> fault_tally_;
  // tid -> (pc, consecutive samples at that pc) for stuck-PC detection.
  std::map<int, std::pair<uint32_t, uint32_t>> stuck_;
};

}  // namespace ksplice

#endif  // KSPLICE_KSPLICE_WATCHDOG_H_
