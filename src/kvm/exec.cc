// The KVX interpreter: instruction execution and the SYS host bridge.
//
// Flag semantics: CMP and all ALU operations (add/sub/mul/div/mod/and/or/
// xor/shl/shr) set Z (result zero) and LT (signed: for CMP, a < b; for ALU,
// result < 0). MOV, LOAD, STORE, PUSH, POP, and control transfers preserve
// flags — kcc relies on this to materialize comparison results.

#include <algorithm>

#include "base/endian.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "kvm/machine.h"
#include "kvx/isa.h"

namespace kvm {

namespace {

constexpr uint32_t kMaxPrintkLength = 4096;

}  // namespace

template <typename T>
void Machine::CapLog(std::vector<T>& log) {
  if (config_.max_log_lines == 0) {
    return;
  }
  while (log.size() > config_.max_log_lines) {
    log.erase(log.begin());
    ++dropped_log_lines_;
  }
}

void Machine::FaultThread(Thread& thread, std::string reason) {
  thread.state = ThreadState::kFaulted;
  thread.fault = reason;
  fault_log_.push_back(ks::StrPrintf("tid %d at %s: %s", thread.tid,
                                     ks::Hex32(thread.pc).c_str(),
                                     reason.c_str()));
  KS_LOG(kDebug) << "thread fault: " << fault_log_.back();
  CapLog(fault_log_);
  FaultRecord record;
  record.tid = thread.tid;
  record.pc = thread.pc;
  record.tick = ticks_;
  record.reason = std::move(reason);
  fault_records_.push_back(std::move(record));
  CapLog(fault_records_);
  ++total_faults_;
  static ks::Counter& faults = ks::Metrics().GetCounter("kvm.faults");
  faults.Add(1);
}

uint64_t Machine::ExecThread(Thread& thread, int budget) {
  // Per-slice (not per-instruction) accounting keeps the interpreter's
  // inner loop free of atomics.
  static ks::Counter& instructions =
      ks::Metrics().GetCounter("kvm.instructions");
  static ks::Counter& switches =
      ks::Metrics().GetCounter("kvm.context_switches");
  uint64_t retired = 0;
  for (int i = 0; i < budget; ++i) {
    if (thread.state != ThreadState::kRunnable || halted_) {
      break;
    }
    bool keep_going = StepLocked(thread);
    ++retired;
    ++ticks_;
    if (!keep_going) {
      break;
    }
  }
  if (retired > 0) {
    context_switches_ += 1;
    instructions.Add(retired);
    switches.Add(1);
  }
  return retired;
}

bool Machine::StepLocked(Thread& thread) {
  if (!InBounds(thread.pc, 1)) {
    FaultThread(thread, "instruction fetch out of bounds");
    return false;
  }
  uint32_t window = std::min<uint32_t>(
      16, static_cast<uint32_t>(memory_.size()) - thread.pc);
  ks::Result<kvx::Insn> decoded = kvx::Decode(
      std::span<const uint8_t>(memory_.data() + thread.pc, window));
  if (!decoded.ok()) {
    FaultThread(thread, "illegal instruction: " + decoded.status().message());
    return false;
  }
  const kvx::Insn& insn = *decoded;
  uint32_t* regs = thread.regs;
  uint32_t next_pc = thread.pc + insn.len;

  auto set_flags = [&](uint32_t result) {
    thread.flag_zero = result == 0;
    thread.flag_lt = static_cast<int32_t>(result) < 0;
  };
  auto push = [&](uint32_t value) -> bool {
    uint32_t sp = regs[7] - 4;
    if (sp < thread.stack_base) {
      FaultThread(thread, "stack overflow");
      return false;
    }
    ks::WriteLe32(memory_.data() + sp, value);
    regs[7] = sp;
    return true;
  };
  auto pop = [&](uint32_t* value) -> bool {
    uint32_t sp = regs[7];
    if (sp + 4 > thread.stack_top) {
      FaultThread(thread, "stack underflow");
      return false;
    }
    *value = ks::ReadLe32(memory_.data() + sp);
    regs[7] = sp + 4;
    return true;
  };
  auto branch_if = [&](bool condition) {
    if (condition) {
      next_pc = next_pc + static_cast<uint32_t>(insn.rel);
    }
  };

  using kvx::Op;
  switch (insn.op) {
    case Op::kHalt:
      halted_ = true;
      FaultThread(thread, "halt (kernel panic)");
      return false;
    case Op::kNop:
    case Op::kNopW:
    case Op::kNopN:
      break;

    case Op::kMovRI:
      regs[insn.reg1] = insn.imm;
      break;
    case Op::kMovRR:
      regs[insn.reg1] = regs[insn.reg2];
      break;

    case Op::kLoadI: {
      uint32_t addr = regs[insn.reg2];
      if (!InBounds(addr, 4)) {
        FaultThread(thread, ks::StrPrintf("bad load at %s",
                                          ks::Hex32(addr).c_str()));
        return false;
      }
      regs[insn.reg1] = ks::ReadLe32(memory_.data() + addr);
      break;
    }
    case Op::kStoreI: {
      uint32_t addr = regs[insn.reg1];
      if (!InBounds(addr, 4)) {
        FaultThread(thread, ks::StrPrintf("bad store at %s",
                                          ks::Hex32(addr).c_str()));
        return false;
      }
      ks::WriteLe32(memory_.data() + addr, regs[insn.reg2]);
      break;
    }
    case Op::kLoadF: {
      // Faulting load: a bad address dispatches through the exception
      // table instead of killing the thread. The table is keyed by the
      // address of the LOADF instruction itself, and is consulted in
      // guest memory at fault time — so an applied patch that rewrote a
      // fixup word (or a module that registered a new table) takes
      // effect immediately.
      uint32_t addr = regs[insn.reg2];
      if (InBounds(addr, 4)) {
        regs[insn.reg1] = ks::ReadLe32(memory_.data() + addr);
        break;
      }
      std::optional<uint32_t> fixup = ExtableFixupFor(thread.pc);
      if (fixup.has_value()) {
        ++extable_fixups_;
        static ks::Counter& fixups =
            ks::Metrics().GetCounter("kvm.extable_fixups");
        fixups.Add(1);
        FaultRecord record;
        record.tid = thread.tid;
        record.pc = thread.pc;
        record.tick = ticks_;
        record.reason = "extable fixup";
        extable_records_.push_back(std::move(record));
        CapLog(extable_records_);
        next_pc = *fixup;
        break;
      }
      FaultThread(thread,
                  ks::StrPrintf("bad faulting load at %s with no extable entry",
                                ks::Hex32(addr).c_str()));
      return false;
    }
    case Op::kBug: {
      // BUG(): unconditional trap. The bug table turns the trap address
      // into a source location for the fault report.
      std::optional<std::pair<std::string, uint32_t>> entry =
          BugEntryFor(thread.pc);
      if (entry.has_value()) {
        FaultThread(thread,
                    ks::StrPrintf("kernel BUG at %s:%u", entry->first.c_str(),
                                  entry->second));
      } else {
        FaultThread(thread, "bug trap without table entry");
      }
      return false;
    }
    case Op::kLoadBI: {
      uint32_t addr = regs[insn.reg2];
      if (!InBounds(addr, 1)) {
        FaultThread(thread, ks::StrPrintf("bad byte load at %s",
                                          ks::Hex32(addr).c_str()));
        return false;
      }
      regs[insn.reg1] = memory_[addr];
      break;
    }
    case Op::kStoreBI: {
      uint32_t addr = regs[insn.reg1];
      if (!InBounds(addr, 1)) {
        FaultThread(thread, ks::StrPrintf("bad byte store at %s",
                                          ks::Hex32(addr).c_str()));
        return false;
      }
      memory_[addr] = static_cast<uint8_t>(regs[insn.reg2]);
      break;
    }

    case Op::kAddRR:
      regs[insn.reg1] += regs[insn.reg2];
      set_flags(regs[insn.reg1]);
      break;
    case Op::kSubRR:
      regs[insn.reg1] -= regs[insn.reg2];
      set_flags(regs[insn.reg1]);
      break;
    case Op::kMulRR:
      regs[insn.reg1] = static_cast<uint32_t>(
          static_cast<int64_t>(static_cast<int32_t>(regs[insn.reg1])) *
          static_cast<int32_t>(regs[insn.reg2]));
      set_flags(regs[insn.reg1]);
      break;
    case Op::kAndRR:
      regs[insn.reg1] &= regs[insn.reg2];
      set_flags(regs[insn.reg1]);
      break;
    case Op::kOrRR:
      regs[insn.reg1] |= regs[insn.reg2];
      set_flags(regs[insn.reg1]);
      break;
    case Op::kXorRR:
      regs[insn.reg1] ^= regs[insn.reg2];
      set_flags(regs[insn.reg1]);
      break;
    case Op::kCmpRR: {
      uint32_t a = regs[insn.reg1];
      uint32_t b = regs[insn.reg2];
      thread.flag_zero = a == b;
      thread.flag_lt = static_cast<int32_t>(a) < static_cast<int32_t>(b);
      break;
    }
    case Op::kDivRR:
    case Op::kModRR: {
      int32_t divisor = static_cast<int32_t>(regs[insn.reg2]);
      if (divisor == 0) {
        FaultThread(thread, "division by zero");
        return false;
      }
      int64_t a = static_cast<int32_t>(regs[insn.reg1]);
      int64_t result =
          insn.op == Op::kDivRR ? a / divisor : a % divisor;
      regs[insn.reg1] = static_cast<uint32_t>(result);
      set_flags(regs[insn.reg1]);
      break;
    }
    case Op::kAddRI:
      regs[insn.reg1] += insn.imm;
      set_flags(regs[insn.reg1]);
      break;
    case Op::kSubRI:
      regs[insn.reg1] -= insn.imm;
      set_flags(regs[insn.reg1]);
      break;
    case Op::kCmpRI: {
      uint32_t a = regs[insn.reg1];
      thread.flag_zero = a == insn.imm;
      thread.flag_lt =
          static_cast<int32_t>(a) < static_cast<int32_t>(insn.imm);
      break;
    }
    case Op::kAndRI:
      regs[insn.reg1] &= insn.imm;
      set_flags(regs[insn.reg1]);
      break;
    case Op::kShlRR:
      regs[insn.reg1] <<= (regs[insn.reg2] & 31);
      set_flags(regs[insn.reg1]);
      break;
    case Op::kShrRR:
      regs[insn.reg1] >>= (regs[insn.reg2] & 31);
      set_flags(regs[insn.reg1]);
      break;

    case Op::kPush:
      if (!push(regs[insn.reg1])) {
        return false;
      }
      break;
    case Op::kPop:
      if (!pop(&regs[insn.reg1])) {
        return false;
      }
      break;

    case Op::kCall:
      if (!push(next_pc)) {
        return false;
      }
      next_pc += static_cast<uint32_t>(insn.rel);
      break;
    case Op::kCallR:
      if (!push(next_pc)) {
        return false;
      }
      next_pc = regs[insn.reg1];
      break;
    case Op::kRet: {
      uint32_t target;
      if (!pop(&target)) {
        return false;
      }
      if (target == kThreadExitMagic) {
        thread.state = ThreadState::kDone;
        thread.pc = next_pc;
        return false;
      }
      next_pc = target;
      break;
    }

    case Op::kJmp8:
    case Op::kJmp32:
      branch_if(true);
      break;
    case Op::kJz8:
    case Op::kJz32:
      branch_if(thread.flag_zero);
      break;
    case Op::kJnz8:
    case Op::kJnz32:
      branch_if(!thread.flag_zero);
      break;
    case Op::kJlt8:
    case Op::kJlt32:
      branch_if(thread.flag_lt);
      break;
    case Op::kJge8:
    case Op::kJge32:
      branch_if(!thread.flag_lt);
      break;
    case Op::kJgt8:
    case Op::kJgt32:
      branch_if(!thread.flag_lt && !thread.flag_zero);
      break;
    case Op::kJle8:
    case Op::kJle32:
      branch_if(thread.flag_lt || thread.flag_zero);
      break;

    case Op::kSys: {
      // DoSys may block the thread, in which case the SYS instruction is
      // re-executed on wake (the big kernel lock) or execution resumes
      // after it (sleep/yield); DoSys signals which by thread state.
      thread.pc = next_pc;
      bool keep_going = DoSys(thread, static_cast<uint8_t>(insn.imm));
      return keep_going;
    }
  }

  thread.pc = next_pc;
  return true;
}

bool Machine::DoSys(Thread& thread, uint8_t number) {
  using kvx::Sys;
  uint32_t* regs = thread.regs;
  switch (static_cast<Sys>(number)) {
    case Sys::kPrintk: {
      std::string text;
      uint32_t addr = regs[0];
      for (uint32_t i = 0; i < kMaxPrintkLength; ++i) {
        if (!InBounds(addr + i, 1)) {
          FaultThread(thread, "printk string out of bounds");
          return false;
        }
        char c = static_cast<char>(memory_[addr + i]);
        if (c == '\0') {
          break;
        }
        text.push_back(c);
      }
      if (config_.log_printk) {
        KS_LOG(kInfo) << "printk: " << text;
      }
      printk_log_.push_back(std::move(text));
      CapLog(printk_log_);
      return true;
    }
    case Sys::kTicks:
      regs[0] = static_cast<uint32_t>(ticks_);
      return true;
    case Sys::kYield:
      return false;  // stays runnable; slice ends
    case Sys::kSleep:
      thread.state = ThreadState::kSleeping;
      thread.wake_tick = ticks_ + std::max<uint32_t>(regs[0], 1);
      return false;
    case Sys::kTid:
      regs[0] = static_cast<uint32_t>(thread.tid);
      return true;
    case Sys::kRand:
      rand_state_ = rand_state_ * 1103515245u + 12345u;
      regs[0] = (rand_state_ >> 8) & 0x7fffffff;
      return true;
    case Sys::kExit:
      thread.state = ThreadState::kDone;
      return false;
    case Sys::kRecord:
      records_.emplace_back(regs[0], regs[1]);
      return true;
    case Sys::kKthread: {
      // Internal spawn; the recursive lock is already held.
      ks::Result<int> tid = Spawn(regs[0], regs[1]);
      regs[0] = tid.ok() ? static_cast<uint32_t>(*tid) : 0;
      return true;
    }
    case Sys::kLockKernel:
      if (bkl_owner_ == -1) {
        bkl_owner_ = thread.tid;
        return true;
      }
      if (bkl_owner_ == thread.tid) {
        FaultThread(thread, "recursive lock_kernel");
        return false;
      }
      // Re-execute the SYS on wake.
      thread.pc -= kvx::GetOpInfo(kvx::Op::kSys).length;
      thread.state = ThreadState::kLockWait;
      return false;
    case Sys::kUnlockKernel:
      if (bkl_owner_ != thread.tid) {
        FaultThread(thread, "unlock_kernel by non-owner");
        return false;
      }
      bkl_owner_ = -1;
      for (Thread& waiter : threads_) {
        if (waiter.state == ThreadState::kLockWait) {
          waiter.state = ThreadState::kRunnable;
        }
      }
      return true;
    case Sys::kShadowAttach: {
      auto key = std::make_pair(regs[0], regs[1]);
      auto existing = shadows_.find(key);
      if (existing != shadows_.end()) {
        regs[0] = existing->second;
        return true;
      }
      ks::Result<uint32_t> addr = HeapAlloc(regs[2]);
      if (!addr.ok()) {
        regs[0] = 0;
        return true;
      }
      shadows_[key] = *addr;
      regs[0] = *addr;
      return true;
    }
    case Sys::kShadowGet: {
      auto it = shadows_.find(std::make_pair(regs[0], regs[1]));
      regs[0] = it != shadows_.end() ? it->second : 0;
      return true;
    }
    case Sys::kShadowDetach: {
      auto it = shadows_.find(std::make_pair(regs[0], regs[1]));
      if (it != shadows_.end()) {
        (void)HeapFree(it->second);
        shadows_.erase(it);
      }
      return true;
    }
    case Sys::kKmalloc: {
      ks::Result<uint32_t> addr = HeapAlloc(regs[0]);
      regs[0] = addr.ok() ? *addr : 0;
      return true;
    }
    case Sys::kKfree: {
      ks::Status status = HeapFree(regs[0]);
      if (!status.ok()) {
        FaultThread(thread, status.message());
        return false;
      }
      return true;
    }
  }
  FaultThread(thread, ks::StrPrintf("unknown sys %u", number));
  return false;
}

}  // namespace kvm
